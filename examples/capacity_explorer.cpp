/**
 * @file
 * Capacity exploration: how small can the DMU get for a given
 * workload? Sweeps the TAT/DAT and list arrays downward for one
 * benchmark, reporting performance, blocked operations and storage —
 * the sizing study an SoC integrator would run before taping out a
 * DMU for a known workload mix (Section V's methodology applied to one
 * application).
 *
 * Usage: capacity_explorer [workload]   (default: histogram)
 */

#include <iostream>
#include <string>

#include "dmu/geometry.hh"
#include "driver/experiment.hh"
#include "sim/table.hh"

using namespace tdm;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "histogram";
    const auto &info = wl::findWorkload(workload);

    driver::Experiment base;
    base.workload = info.name;
    base.runtime = core::RuntimeType::Tdm;
    base.config.scheduler = "fifo";
    auto ref = driver::run(base);
    if (!ref.completed) {
        std::cout << "reference run failed\n";
        return 1;
    }

    sim::Table t(info.name + ": DMU downsizing");
    t.header({"TAT/DAT", "list arrays", "storage KB", "slowdown",
              "blocked ops", "status"});
    for (unsigned tables : {2048u, 1024u, 512u, 256u, 128u}) {
        for (unsigned lists : {1024u, 256u, 64u}) {
            driver::Experiment e = base;
            e.config.dmu.tatEntries = tables;
            e.config.dmu.datEntries = tables;
            e.config.dmu.readyQueueEntries = tables;
            e.config.dmu.slaEntries = lists;
            e.config.dmu.dlaEntries = lists;
            e.config.dmu.rlaEntries = lists;
            auto s = driver::run(e);
            t.row()
                .cell(static_cast<std::uint64_t>(tables))
                .cell(static_cast<std::uint64_t>(lists))
                .cell(dmu::totalStorageKB(e.config.dmu), 2);
            if (s.completed) {
                t.cell(static_cast<double>(s.makespan)
                           / static_cast<double>(ref.makespan),
                       3)
                    .cell(s.machine.dmuBlockedOps)
                    .cell("ok");
            } else {
                t.cell("-").cell("-").cell("deadlock");
            }
        }
    }
    t.print(std::cout);
    std::cout << "\nreference (2048/1024): " << ref.timeMs << " ms, "
              << dmu::totalStorageKB(cpu::MachineConfig{}.dmu)
              << " KB\n";
    return 0;
}
