/**
 * @file
 * Writing a custom software scheduler — the flexibility TDM exists to
 * preserve (Section III-C3: "the pool of ready tasks can be used by
 * the runtime system to implement any scheduling policy").
 *
 * This example implements a criticality-then-age policy: among ready
 * tasks, prefer the one with more successors (closer to the serialized
 * critical path), breaking ties toward older tasks. It is registered
 * with the runtime and plugged into the machine without any hardware
 * change — exactly the point of the co-design — and compared against
 * the five stock policies on the dedup pipeline.
 */

#include <iostream>
#include <queue>

#include "core/machine.hh"
#include "sim/table.hh"
#include "workloads/registry.hh"

using namespace tdm;

namespace {

/** Criticality-then-age priority policy (user-defined). */
class CriticalFirstScheduler : public rt::Scheduler
{
  public:
    const char *name() const override { return "critical-first"; }

    void push(const rt::ReadyTask &t) override { heap_.push(t); }

    std::optional<rt::ReadyTask>
    pop(sim::CoreId) override
    {
        if (heap_.empty())
            return std::nullopt;
        rt::ReadyTask t = heap_.top();
        heap_.pop();
        return t;
    }

    bool empty() const override { return heap_.empty(); }
    std::size_t size() const override { return heap_.size(); }

    sim::Tick pushExtraCycles() const override { return 60; }
    sim::Tick popExtraCycles() const override { return 60; }

  private:
    struct Less
    {
        bool
        operator()(const rt::ReadyTask &a, const rt::ReadyTask &b) const
        {
            if (a.numSuccessors != b.numSuccessors)
                return a.numSuccessors < b.numSuccessors;
            return a.creationSeq > b.creationSeq;
        }
    };

    std::priority_queue<rt::ReadyTask, std::vector<rt::ReadyTask>, Less>
        heap_;
};

double
runDedup(const std::string &sched)
{
    wl::WorkloadParams p;
    p.tdmOptimal = true;
    rt::TaskGraph g = wl::buildWorkload("dedup", p);
    cpu::MachineConfig cfg;
    cfg.scheduler = sched;
    core::Machine m(cfg, g, core::RuntimeType::Tdm);
    auto res = m.run();
    return res.completed ? res.timeMs : -1.0;
}

} // namespace

int
main()
{
    // Register the custom policy; from here it behaves exactly like a
    // built-in — the DMU never hears about it.
    rt::registerScheduler("critical-first", [](unsigned, std::uint32_t) {
        return std::make_unique<CriticalFirstScheduler>();
    });

    sim::Table t("dedup on TDM, 32 cores");
    t.header({"policy", "time ms"});
    for (const auto &s : rt::allSchedulerNames())
        t.row().cell(s).cell(runDedup(s), 2);
    t.row().cell("critical-first (custom)").cell(
        runDedup("critical-first"), 2);
    t.print(std::cout);
    return 0;
}
