/**
 * @file
 * Quickstart: build a small task graph by hand, run it on a 32-core
 * machine with the TDM runtime, and inspect the results.
 *
 * The public API in five steps:
 *   1. rt::TaskGraph      -- declare data regions + tasks + dependences
 *   2. cpu::MachineConfig -- size the machine (Table I defaults)
 *   3. core::Machine      -- bind graph + runtime model
 *   4. run()              -- simulate
 *   5. MachineResult      -- makespan, phase breakdown, energy, DMU
 */

#include <iostream>

#include "core/machine.hh"

using namespace tdm;

int
main()
{
    // 1. A blocked vector-sum pipeline: produce -> transform -> reduce.
    rt::TaskGraph graph("quickstart");
    const unsigned blocks = 64;
    std::vector<rt::RegionId> in(blocks), mid(blocks);
    for (unsigned b = 0; b < blocks; ++b) {
        in[b] = graph.addRegion(64 * 1024);
        mid[b] = graph.addRegion(64 * 1024);
    }
    rt::RegionId acc = graph.addRegion(4 * 1024);

    graph.beginParallel();
    for (unsigned b = 0; b < blocks; ++b) {
        graph.createTask(sim::usToTicks(150)); // produce block b
        graph.dep(in[b], rt::DepDir::Out);
    }
    for (unsigned b = 0; b < blocks; ++b) {
        graph.createTask(sim::usToTicks(220)); // transform block b
        graph.dep(in[b], rt::DepDir::In);
        graph.dep(mid[b], rt::DepDir::Out);
    }
    for (unsigned b = 0; b < blocks; ++b) {
        graph.createTask(sim::usToTicks(40)); // reduce into acc
        graph.dep(mid[b], rt::DepDir::In);
        graph.dep(acc, rt::DepDir::InOut);
    }

    std::cout << "graph: " << graph.numTasks() << " tasks, critical path "
              << sim::ticksToUs(graph.criticalPathCycles()) << " us\n";

    // 2-4. Default 32-core machine, TDM runtime, FIFO scheduler.
    cpu::MachineConfig cfg;
    cfg.scheduler = "fifo";
    core::Machine machine(cfg, graph, core::RuntimeType::Tdm);
    core::MachineResult res = machine.run();

    // 5. Results.
    std::cout << "completed: " << std::boolalpha << res.completed << '\n'
              << "makespan:  " << res.timeMs << " ms\n"
              << "energy:    " << res.energyJ << " J (avg "
              << res.avgWatts << " W)\n"
              << "master DEPS fraction: "
              << res.master.fraction(cpu::Phase::Deps) << '\n'
              << "worker EXEC fraction: "
              << res.workersTotal.fraction(cpu::Phase::Exec) << '\n'
              << "DMU accesses: " << res.dmuAccesses
              << ", blocked ops: " << res.dmuBlockedOps << '\n';
    return res.completed ? 0 : 1;
}
