/**
 * @file
 * Domain scenario: factorize a 2048x2048 matrix (the paper's Cholesky
 * workload) under every runtime and scheduler combination, and print a
 * ranked comparison — the experiment a runtime engineer would run to
 * choose a policy for a new machine.
 */

#include <algorithm>
#include <iostream>

#include "driver/experiment.hh"
#include "sim/table.hh"

using namespace tdm;

int
main()
{
    struct Entry
    {
        std::string label;
        double time_ms;
        double edp;
    };
    std::vector<Entry> entries;

    driver::Experiment e;
    e.workload = "cholesky";

    for (auto runtime : {core::RuntimeType::Software,
                         core::RuntimeType::Tdm}) {
        e.runtime = runtime;
        for (const auto &sched : rt::allSchedulerNames()) {
            e.config.scheduler = sched;
            auto s = driver::run(e);
            if (!s.completed)
                continue;
            entries.push_back({std::string(core::traitsOf(runtime).name)
                                   + "+" + sched,
                               s.timeMs, s.edp});
        }
    }
    // Fixed-policy hardware baselines for context.
    for (auto runtime : {core::RuntimeType::Carbon,
                         core::RuntimeType::TaskSuperscalar}) {
        e.runtime = runtime;
        e.config.scheduler = "fifo";
        auto s = driver::run(e);
        if (s.completed)
            entries.push_back({core::traitsOf(runtime).name, s.timeMs,
                               s.edp});
    }

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.time_ms < b.time_ms;
              });

    sim::Table t("cholesky 2048x2048, 32 cores: ranked configurations");
    t.header({"rank", "configuration", "time ms", "EDP (J*s)"});
    int rank = 1;
    for (const Entry &en : entries)
        t.row().cell(rank++).cell(en.label).cell(en.time_ms, 2).cell(
            en.edp, 6);
    t.print(std::cout);
    return 0;
}
