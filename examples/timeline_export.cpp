/**
 * @file
 * Reproduce Figure 1's execution timeline: run Cholesky under the
 * software runtime and under TDM, record per-core task execution
 * intervals, print a coarse ASCII timeline, and export Chrome-tracing
 * JSON (open in chrome://tracing or Perfetto).
 *
 * Usage: timeline_export [workload] [sw|tdm] [out.json]
 */

#include <fstream>
#include <iostream>
#include <string>

#include "core/machine.hh"
#include "workloads/registry.hh"

using namespace tdm;

namespace {

void
asciiTimeline(const core::TaskTrace &trace, unsigned cores,
              sim::Tick makespan, unsigned width = 72)
{
    for (unsigned c = 0; c < cores; ++c) {
        std::string row(width, '.');
        for (const core::TraceRecord &r : trace.records()) {
            if (r.core != c)
                continue;
            auto a = static_cast<std::size_t>(
                static_cast<double>(r.start) / makespan * width);
            auto b = static_cast<std::size_t>(
                static_cast<double>(r.end) / makespan * width);
            for (std::size_t i = a; i <= b && i < width; ++i)
                row[i] = '#';
        }
        std::cout << (c == 0 ? "master " : "core")
                  << (c == 0 ? "" : std::to_string(c))
                  << (c == 0 ? "" : "  ") << "\t" << row << '\n';
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "cholesky";
    std::string rt_name = argc > 2 ? argv[2] : "sw";
    std::string out = argc > 3 ? argv[3] : "timeline.json";

    wl::WorkloadParams p;
    core::RuntimeType runtime = core::runtimeFromString(rt_name);
    p.tdmOptimal = core::traitsOf(runtime).usesDmu();
    rt::TaskGraph g = wl::buildWorkload(workload, p);

    cpu::MachineConfig cfg;
    core::Machine m(cfg, g, runtime);
    m.enableTrace();
    auto res = m.run();
    if (!res.completed) {
        std::cerr << "run did not complete\n";
        return 1;
    }

    std::cout << workload << " on " << rt_name << ": " << res.timeMs
              << " ms, avg parallelism "
              << m.trace().avgParallelism(res.makespan) << ", peak "
              << m.trace().peakParallelism() << "\n\n";
    asciiTimeline(m.trace(), cfg.numCores, res.makespan);

    std::ofstream f(out);
    m.trace().writeChromeTrace(f, workload.c_str());
    std::cout << "\nwrote " << m.trace().size() << " task intervals to "
              << out << " (chrome://tracing)\n";
    return 0;
}
