/**
 * @file
 * tdm_run — command-line front end to the simulator.
 *
 * Usage:
 *   tdm_run [options]
 *
 * Options:
 *   --workload NAME      benchmark (default cholesky); see --list
 *   --runtime sw|tdm|carbon|tss   (default tdm)
 *   --scheduler NAME     fifo|lifo|locality|successor|age (default fifo)
 *   --cores N            core count (also fits the mesh; default 32)
 *   --granularity G      benchmark-specific granularity (default: optimal)
 *   --seed S             duration-noise seed (default 1)
 *   --tat N --dat N      alias table entries
 *   --lists N            list-array entries (all three)
 *   --access-cycles N    DMU structure latency
 *   --throttle N         runtime creation throttle
 *   --no-mem             disable the memory hierarchy model
 *   --set KEY=VALUE      set any spec key (campaign_run --keys lists
 *                        them); repeatable, applied in order
 *   --describe           print the canonical experiment spec and exit
 *   --trace FILE         write the run's time-resolved trace as Chrome
 *                        trace-event JSON (open in Perfetto or
 *                        chrome://tracing); enables all categories
 *                        unless --trace-categories narrows them
 *   --trace-categories L comma list of task,sched,dmu,noc,mem,core
 *                        (or all/none); shorthand for
 *                        --set trace.categories=L
 *   --trace-events N     buffered-record cap (--set trace.buffer_events)
 *   --log-level LEVEL    quiet|warn|info|debug (default warn)
 *   --stats              dump the metric tree (gem5 stats.txt format;
 *                        campaign_run --metric-keys lists every key)
 *   --list               list workloads and exit
 *
 * The convenience flags are shorthands over the same spec keys that
 * --set (and *.campaign files) address, so every knob of the machine
 * is reachable from here without recompiling:
 *
 *   tdm_run --runtime tdm --set mesh.link_latency=4 --set mem.mlp=4
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/machine.hh"
#include "dmu/geometry.hh"
#include "driver/report/trace_writer.hh"
#include "driver/spec/spec.hh"
#include "sim/logging.hh"
#include "sim/table.hh"

using namespace tdm;
namespace spc = tdm::driver::spec;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--workload W] [--runtime sw|tdm|carbon|tss]"
                 " [--scheduler S] [--cores N] [--granularity G]"
                 " [--seed S] [--tat N] [--dat N] [--lists N]"
                 " [--access-cycles N] [--throttle N] [--no-mem]"
                 " [--set KEY=VALUE] [--describe] [--trace FILE]"
                 " [--trace-categories LIST] [--trace-events N]"
                 " [--log-level LEVEL] [--stats] [--list]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    driver::Experiment exp;
    exp.runtime = core::RuntimeType::Tdm;
    std::string trace_file;
    bool dump_stats = false;
    bool describe_only = false;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    try {
        auto set = [&](const char *key, const std::string &value) {
            spc::applyKey(exp, key, value);
        };
        for (int i = 1; i < argc; ++i) {
            const char *a = argv[i];
            if (!std::strcmp(a, "--workload")) {
                set("workload", need(i));
            } else if (!std::strcmp(a, "--runtime")) {
                set("runtime", need(i));
            } else if (!std::strcmp(a, "--scheduler")) {
                set("scheduler", need(i));
            } else if (!std::strcmp(a, "--cores")) {
                set("machine.cores", need(i));
                // Fit the mesh around cores + the DMU node.
                unsigned dim = 2;
                while (dim * dim < exp.config.numCores + 1)
                    ++dim;
                const std::string d = std::to_string(dim);
                set("mesh.width", d);
                set("mesh.height", d);
            } else if (!std::strcmp(a, "--granularity")) {
                set("workload.granularity", need(i));
            } else if (!std::strcmp(a, "--seed")) {
                set("workload.seed", need(i));
            } else if (!std::strcmp(a, "--tat")) {
                const std::string n = need(i);
                set("dmu.tat_entries", n);
                set("dmu.ready_queue_entries", n);
            } else if (!std::strcmp(a, "--dat")) {
                set("dmu.dat_entries", need(i));
            } else if (!std::strcmp(a, "--lists")) {
                const std::string n = need(i);
                set("dmu.sla_entries", n);
                set("dmu.dla_entries", n);
                set("dmu.rla_entries", n);
            } else if (!std::strcmp(a, "--access-cycles")) {
                set("dmu.access_cycles", need(i));
            } else if (!std::strcmp(a, "--throttle")) {
                set("machine.throttle_tasks", need(i));
            } else if (!std::strcmp(a, "--no-mem")) {
                set("machine.mem_model", "false");
            } else if (!std::strcmp(a, "--set")) {
                const std::string kv = need(i);
                const std::size_t eq = kv.find('=');
                if (eq == std::string::npos || eq == 0) {
                    std::cerr << "--set expects KEY=VALUE, got '" << kv
                              << "'\n";
                    return 2;
                }
                set(kv.substr(0, eq).c_str(), kv.substr(eq + 1));
            } else if (!std::strcmp(a, "--describe")) {
                describe_only = true;
            } else if (!std::strcmp(a, "--trace")) {
                trace_file = need(i);
            } else if (!std::strcmp(a, "--trace-categories")) {
                set("trace.categories", need(i));
            } else if (!std::strcmp(a, "--trace-events")) {
                set("trace.buffer_events", need(i));
            } else if (!std::strcmp(a, "--log-level")) {
                const std::string lv = need(i);
                sim::LogLevel level;
                if (!sim::parseLogLevel(lv, level)) {
                    std::cerr << "--log-level expects quiet|warn|info"
                                 "|debug, got '" << lv << "'\n";
                    return 2;
                }
                sim::setLogLevel(level);
            } else if (!std::strcmp(a, "--stats")) {
                dump_stats = true;
            } else if (!std::strcmp(a, "--list")) {
                sim::Table t("workloads");
                t.header({"name", "short", "granularity unit", "SW opt",
                          "TDM opt"});
                for (const auto &w : wl::allWorkloads())
                    t.row().cell(w.name).cell(w.shortName)
                        .cell(w.granUnit).cell(w.swOptimal, 0)
                        .cell(w.tdmOptimal, 0);
                t.print(std::cout);
                return 0;
            } else {
                usage(argv[0]);
            }
        }

        if (describe_only) {
            spc::canonicalSpec(exp).dump(std::cout);
            return 0;
        }
    } catch (const spc::SpecError &e) {
        std::cerr << "spec error: " << e.what() << "\n";
        return 2;
    }

    // --trace with no explicit category selection records everything.
    if (!trace_file.empty() && exp.config.trace.categories == 0)
        exp.config.trace.categories = sim::traceCatAll;

    wl::WorkloadParams params = exp.params;
    if (params.granularity == 0.0)
        params.tdmOptimal = core::traitsOf(exp.runtime).usesDmu();
    rt::TaskGraph graph = wl::buildWorkload(exp.workload, params);

    core::Machine m(exp.config, graph, exp.runtime);
    core::MachineResult res = m.run();

    const std::string runtime = core::traitsOf(exp.runtime).name;
    sim::Table t(exp.workload + " on " + runtime + "+"
                 + exp.config.scheduler);
    t.header({"metric", "value"});
    t.row().cell("completed").cell(res.completed ? "yes" : "NO");
    t.row().cell("tasks").cell(res.tasksExecuted);
    t.row().cell("time ms").cell(res.timeMs, 3);
    t.row().cell("energy J").cell(res.energyJ, 4);
    t.row().cell("EDP J*s").cell(res.edp, 6);
    t.row().cell("avg watts").cell(res.avgWatts, 2);
    t.row().cell("master DEPS %").cell(
        100.0 * res.master.fraction(cpu::Phase::Deps), 1);
    t.row().cell("workers EXEC %").cell(
        100.0 * res.workersTotal.fraction(cpu::Phase::Exec), 1);
    t.row().cell("workers IDLE %").cell(
        100.0 * res.workersTotal.fraction(cpu::Phase::Idle), 1);
    if (core::traitsOf(exp.runtime).usesDmu()) {
        t.row().cell("DMU accesses").cell(res.dmuAccesses);
        t.row().cell("DMU blocked ops").cell(res.dmuBlockedOps);
        t.row().cell("DMU storage KB").cell(
            dmu::totalStorageKB(exp.config.dmu), 2);
    }
    t.print(std::cout);

    if (!trace_file.empty()) {
        std::ofstream f(trace_file);
        if (!f) {
            std::cerr << "cannot write " << trace_file << "\n";
            return 1;
        }
        const sim::TraceBuffer tb = m.takeTraceBuffer();
        driver::report::TraceMeta meta;
        meta.processName = exp.workload + " on " + runtime + "+"
                         + exp.config.scheduler;
        meta.numCores = exp.config.numCores;
        meta.graph = &graph;
        driver::report::writeChromeTrace(f, tb, meta);
        std::cout << "trace: " << trace_file << " (" << tb.size()
                  << " events, "
                  << sim::formatTraceCategories(
                         exp.config.trace.categories)
                  << ", " << tb.dropped() << " dropped)\n";
    }
    if (dump_stats)
        m.dumpStats(std::cout);
    return res.completed ? 0 : 1;
}
