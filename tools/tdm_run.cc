/**
 * @file
 * tdm_run — command-line front end to the simulator.
 *
 * Usage:
 *   tdm_run [options]
 *
 * Options:
 *   --workload NAME      benchmark (default cholesky); see --list
 *   --runtime sw|tdm|carbon|tss   (default tdm)
 *   --scheduler NAME     fifo|lifo|locality|successor|age (default fifo)
 *   --cores N            core count (default 32)
 *   --granularity G      benchmark-specific granularity (default: optimal)
 *   --seed S             duration-noise seed (default 1)
 *   --tat N --dat N      alias table entries
 *   --lists N            list-array entries (all three)
 *   --access-cycles N    DMU structure latency
 *   --throttle N         runtime creation throttle
 *   --no-mem             disable the memory hierarchy model
 *   --trace FILE         write a Chrome-tracing JSON timeline
 *   --stats              dump component statistics
 *   --list               list workloads and exit
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/machine.hh"
#include "dmu/geometry.hh"
#include "driver/experiment.hh"
#include "sim/table.hh"

using namespace tdm;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--workload W] [--runtime sw|tdm|carbon|tss]"
                 " [--scheduler S] [--cores N] [--granularity G]"
                 " [--seed S] [--tat N] [--dat N] [--lists N]"
                 " [--access-cycles N] [--throttle N] [--no-mem]"
                 " [--trace FILE] [--stats] [--list]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "cholesky";
    std::string runtime = "tdm";
    std::string scheduler = "fifo";
    std::string trace_file;
    bool dump_stats = false;
    cpu::MachineConfig cfg;
    wl::WorkloadParams params;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--workload")) {
            workload = need(i);
        } else if (!std::strcmp(a, "--runtime")) {
            runtime = need(i);
        } else if (!std::strcmp(a, "--scheduler")) {
            scheduler = need(i);
        } else if (!std::strcmp(a, "--cores")) {
            cfg.numCores = std::stoul(need(i));
            unsigned dim = 2;
            while (dim * dim < cfg.numCores + 1)
                ++dim;
            cfg.mesh.width = cfg.mesh.height = dim;
        } else if (!std::strcmp(a, "--granularity")) {
            params.granularity = std::stod(need(i));
        } else if (!std::strcmp(a, "--seed")) {
            params.seed = std::stoull(need(i));
        } else if (!std::strcmp(a, "--tat")) {
            cfg.dmu.tatEntries = std::stoul(need(i));
            cfg.dmu.readyQueueEntries = cfg.dmu.tatEntries;
        } else if (!std::strcmp(a, "--dat")) {
            cfg.dmu.datEntries = std::stoul(need(i));
        } else if (!std::strcmp(a, "--lists")) {
            unsigned n = std::stoul(need(i));
            cfg.dmu.slaEntries = n;
            cfg.dmu.dlaEntries = n;
            cfg.dmu.rlaEntries = n;
        } else if (!std::strcmp(a, "--access-cycles")) {
            cfg.dmu.accessCycles = std::stoul(need(i));
        } else if (!std::strcmp(a, "--throttle")) {
            cfg.throttleTasks = std::stoul(need(i));
        } else if (!std::strcmp(a, "--no-mem")) {
            cfg.enableMemModel = false;
        } else if (!std::strcmp(a, "--trace")) {
            trace_file = need(i);
        } else if (!std::strcmp(a, "--stats")) {
            dump_stats = true;
        } else if (!std::strcmp(a, "--list")) {
            sim::Table t("workloads");
            t.header({"name", "short", "granularity unit", "SW opt",
                      "TDM opt"});
            for (const auto &w : wl::allWorkloads())
                t.row().cell(w.name).cell(w.shortName).cell(w.granUnit)
                    .cell(w.swOptimal, 0).cell(w.tdmOptimal, 0);
            t.print(std::cout);
            return 0;
        } else {
            usage(argv[0]);
        }
    }

    core::RuntimeType rt_ = core::runtimeFromString(runtime);
    if (params.granularity == 0.0)
        params.tdmOptimal = core::traitsOf(rt_).usesDmu();
    rt::TaskGraph graph = wl::buildWorkload(workload, params);
    cfg.scheduler = scheduler;

    core::Machine m(cfg, graph, rt_);
    if (!trace_file.empty())
        m.enableTrace();
    core::MachineResult res = m.run();

    sim::Table t(workload + " on " + runtime + "+" + scheduler);
    t.header({"metric", "value"});
    t.row().cell("completed").cell(res.completed ? "yes" : "NO");
    t.row().cell("tasks").cell(res.tasksExecuted);
    t.row().cell("time ms").cell(res.timeMs, 3);
    t.row().cell("energy J").cell(res.energyJ, 4);
    t.row().cell("EDP J*s").cell(res.edp, 6);
    t.row().cell("avg watts").cell(res.avgWatts, 2);
    t.row().cell("master DEPS %").cell(
        100.0 * res.master.fraction(cpu::Phase::Deps), 1);
    t.row().cell("workers EXEC %").cell(
        100.0 * res.workersTotal.fraction(cpu::Phase::Exec), 1);
    t.row().cell("workers IDLE %").cell(
        100.0 * res.workersTotal.fraction(cpu::Phase::Idle), 1);
    if (core::traitsOf(rt_).usesDmu()) {
        t.row().cell("DMU accesses").cell(res.dmuAccesses);
        t.row().cell("DMU blocked ops").cell(res.dmuBlockedOps);
        t.row().cell("DMU storage KB").cell(
            dmu::totalStorageKB(cfg.dmu), 2);
    }
    t.print(std::cout);

    if (!trace_file.empty()) {
        std::ofstream f(trace_file);
        m.trace().writeChromeTrace(f, workload.c_str());
        std::cout << "trace: " << trace_file << " ("
                  << m.trace().size() << " intervals)\n";
    }
    if (dump_stats)
        m.dumpStats(std::cout);
    return res.completed ? 0 : 1;
}
