#!/usr/bin/env python3
"""Collect the repo's performance numbers into one JSON document.

Runs the self-gating micro-benchmarks (the bench_micro_* binaries that
embed their seed implementation as an in-binary reference) and times
cold-cache campaign runs, then writes a machine-readable snapshot:

    {
      "schema": 1,
      "label": "PR5",
      "micro": {
        "eventq":      {"geomean_speedup": ..., "scenarios": {...}},
        "regioncache": {"geomean_speedup": ..., "scenarios": {...}}
      },
      "campaigns": {
        "fig13": {"threads": ..., "points": ...,
                  "wall_s": ..., "wall_s_no_graph_share": ...,
                  "graph_share_speedup": ...,
                  "wall_s_no_warm_fork": ...,
                  "warm_fork_speedup": ...}
      }
    }

Committed baselines (BENCH_PR5.json, ...) give future PRs a perf
trajectory to compare against; CI regenerates the document on every
run and uploads it as an artifact.

Usage:
    tools/bench_to_json.py --build-dir build-release --out BENCH.json \
        [--label PR5] [--micro eventq --micro regioncache] \
        [--campaign fig13] [--threads N] [--quick]
"""

import argparse
import json
import platform
import re
import subprocess
import sys
import time
from pathlib import Path

# Per-scenario line of the self-gating benches:
#   "uniform   12345678   23456789   1.90x"  (optional trailing note)
SCENARIO_RE = re.compile(
    r"^(\S+)\s+(\d+)\s+(\d+)\s+([\d.]+)x(\s+\(informational\))?\s*$")
GEOMEAN_RE = re.compile(r"^geomean speedup[^:]*:\s*([\d.]+)x\s*$")
# Trailing campaign_run summary: "fig13: ... 12.345 s". The cache-hit
# source breakdown "(N memory, N disk, N inflight)" is optional so the
# tool still reads logs from builds that predate the result store.
CAMPAIGN_RE = re.compile(
    r"^(?P<name>\S+): (?P<points>\d+) points, (?P<simulated>\d+)"
    r" simulated,"
    r"(?: (?P<forked>\d+) forked \((?P<warmups>\d+) warmups"
    r" shared\),)?"
    r" (?P<hits>\d+) cache hits"
    r"(?: \((?P<memory>\d+) memory, (?P<disk>\d+) disk,"
    r" (?P<inflight>\d+) inflight\))?,"
    r"(?: (?P<graphs>\d+) graphs built \((?P<shared>\d+) shared\),)?"
    r" \d+ failures, (?P<threads>\d+) threads, (?P<wall>[\d.e+-]+) s$")

# Default iteration counts: enough for stable numbers locally, scaled
# down by --quick for CI smoke runs on noisy shared machines.
MICRO_ARGS = {
    "eventq": ["--events"],
    "regioncache": ["--touches"],
}
MICRO_ITER = {"eventq": 1000000, "regioncache": 2000000}
QUICK_ITER = {"eventq": 300000, "regioncache": 500000}


def run(cmd):
    print("+ " + " ".join(cmd), file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"command failed ({proc.returncode}): "
                         + " ".join(cmd))
    return proc.stdout


def run_micro(build_dir, name, iters):
    binary = build_dir / f"bench_micro_{name}"
    if not binary.exists():
        raise SystemExit(f"{binary} not found (build it first)")
    # resolve(): a slashless relative path would go through PATH.
    out = run([str(binary.resolve())] + MICRO_ARGS[name] + [str(iters)])
    scenarios = {}
    geomean = None
    for line in out.splitlines():
        m = SCENARIO_RE.match(line.strip())
        if m:
            scenarios[m.group(1)] = {
                "ref_per_sec": int(m.group(2)),
                "new_per_sec": int(m.group(3)),
                "speedup": float(m.group(4)),
                "gated": m.group(5) is None,
            }
            continue
        m = GEOMEAN_RE.match(line.strip())
        if m:
            geomean = float(m.group(1))
    if geomean is None or not scenarios:
        sys.stderr.write(out)
        raise SystemExit(f"could not parse bench_micro_{name} output")
    return {"iterations": iters, "geomean_speedup": geomean,
            "scenarios": scenarios}


def run_campaign(build_dir, name, threads, extra=()):
    """Cold-cache campaign wall-clock: each invocation is a fresh
    process, so the result cache starts empty."""
    binary = build_dir / "campaign_run"
    if not binary.exists():
        raise SystemExit(f"{binary} not found (build it first)")
    cmd = [str(binary.resolve()), name, "--quiet"] + list(extra)
    if threads:
        cmd += ["--threads", str(threads)]
    t0 = time.monotonic()
    out = run(cmd)
    process_s = time.monotonic() - t0
    for line in out.splitlines():
        m = CAMPAIGN_RE.match(line.strip())
        if m and m.group("name") == name:
            return {
                "points": int(m.group("points")),
                "simulated": int(m.group("simulated")),
                "forked": int(m.group("forked") or 0),
                "warmups_shared": int(m.group("warmups") or 0),
                "graphs_built": int(m.group("graphs") or 0),
                "graphs_shared": int(m.group("shared") or 0),
                "threads": int(m.group("threads")),
                "wall_s": float(m.group("wall")),
                "process_s": round(process_s, 3),
            }
    sys.stderr.write(out)
    raise SystemExit(f"could not parse campaign_run {name} summary")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", type=Path, default=Path("build"))
    ap.add_argument("--out", type=Path, required=True)
    ap.add_argument("--label", default="local")
    ap.add_argument("--micro", action="append",
                    choices=sorted(MICRO_ARGS),
                    help="micro-bench to run (repeatable; default: all)")
    ap.add_argument("--campaign", action="append",
                    help="campaign to time cold-cache (repeatable; "
                         "default: fig13)")
    ap.add_argument("--threads", type=int, default=0,
                    help="campaign worker threads (0: hardware)")
    ap.add_argument("--quick", action="store_true",
                    help="smaller iteration counts for CI smoke runs")
    ap.add_argument("--skip-baseline", action="store_true",
                    help="skip the --no-graph-share A/B campaign run")
    args = ap.parse_args()

    micros = args.micro or sorted(MICRO_ARGS)
    campaigns = args.campaign if args.campaign is not None \
        else ["fig13", "ablation_sensitivity"]
    iters = QUICK_ITER if args.quick else MICRO_ITER

    doc = {
        "schema": 1,
        "label": args.label,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "micro": {},
        "campaigns": {},
    }

    for name in micros:
        doc["micro"][name] = run_micro(args.build_dir, name, iters[name])

    for name in campaigns:
        entry = run_campaign(args.build_dir, name, args.threads)
        if not args.skip_baseline:
            base = run_campaign(args.build_dir, name, args.threads,
                                extra=["--no-graph-share"])
            entry["wall_s_no_graph_share"] = base["wall_s"]
            entry["graph_share_speedup"] = round(
                base["wall_s"] / entry["wall_s"], 3) \
                if entry["wall_s"] else None
            # Warm-fork A/B: --no-warm-fork simulates every point from
            # tick 0. Only campaigns whose points share warm prefixes
            # (e.g. ablation_sensitivity) gain; for warmup-axis sweeps
            # like fig13 the two runs should match.
            cold = run_campaign(args.build_dir, name, args.threads,
                                extra=["--no-warm-fork"])
            entry["wall_s_no_warm_fork"] = cold["wall_s"]
            entry["warm_fork_speedup"] = round(
                cold["wall_s"] / entry["wall_s"], 3) \
                if entry["wall_s"] else None
        doc["campaigns"][name] = entry

    args.out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
