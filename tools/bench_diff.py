#!/usr/bin/env python3
"""Compare a fresh bench_to_json.py snapshot against a committed
baseline and fail on micro-bench regressions.

For every micro-bench present in the baseline, the current geomean
speedup must be at least (1 - tolerance) of the baseline's; the default
tolerance of 0.10 absorbs shared-runner noise while still catching real
regressions. Campaign wall-clock numbers are reported but never gate
(they measure the machine as much as the code). Stdlib only.

Usage: bench_diff.py BASELINE.json CURRENT.json [--tolerance 0.10]
Exits 1 when any gated micro-bench regressed beyond tolerance.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_diff: cannot load {path}: {e}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional geomean drop (default 0.10)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    base_label = base.get("label", args.baseline)
    cur_label = cur.get("label", args.current)

    failures = []
    rows = []
    for name, b in sorted(base.get("micro", {}).items()):
        b_geo = b.get("geomean_speedup")
        c = cur.get("micro", {}).get(name)
        if c is None:
            failures.append(f"{name}: missing from current snapshot")
            continue
        c_geo = c.get("geomean_speedup")
        floor = b_geo * (1.0 - args.tolerance)
        ok = c_geo >= floor
        rows.append((name, b_geo, c_geo, floor, ok))
        if not ok:
            failures.append(
                f"{name}: geomean {c_geo:.3f}x < floor {floor:.3f}x "
                f"(baseline {b_geo:.3f}x - {args.tolerance:.0%})")

    print(f"bench_diff: {base_label} -> {cur_label} "
          f"(tolerance {args.tolerance:.0%})")
    print(f"{'micro':<14} {'baseline':>9} {'current':>9} "
          f"{'floor':>9}  status")
    for name, b_geo, c_geo, floor, ok in rows:
        print(f"{name:<14} {b_geo:>8.3f}x {c_geo:>8.3f}x "
              f"{floor:>8.3f}x  {'ok' if ok else 'REGRESSED'}")

    for name, b in sorted(base.get("campaigns", {}).items()):
        c = cur.get("campaigns", {}).get(name)
        if c is None:
            continue
        print(f"campaign {name}: wall {b.get('wall_s')}s -> "
              f"{c.get('wall_s')}s (informational)")

    if failures:
        for f in failures:
            print(f"bench_diff: FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("bench_diff: OK")


if __name__ == "__main__":
    main()
