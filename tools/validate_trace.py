#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by tdm_run --trace
or campaign_run --trace-dir.

Checks the structural rules Perfetto / chrome://tracing rely on, plus
the simulator's own conventions (task spans, per-core thread tracks,
DMU counter tracks). Stdlib only.

Usage: validate_trace.py TRACE.json [--require-categories task,dmu,...]
Exits 0 when valid, 1 with a message otherwise.
"""

import argparse
import json
import sys

VALID_PHASES = {"X", "i", "C", "M"}


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument(
        "--require-categories",
        default="",
        help="comma list of categories that must appear in the trace",
    )
    args = ap.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    thread_names = {}
    categories = set()
    n_spans = n_instants = n_counters = 0
    counter_names = set()
    span_names = set()

    for k, ev in enumerate(events):
        where = f"traceEvents[{k}]"
        if not isinstance(ev, dict):
            fail(f"{where}: event is not an object")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            fail(f"{where}: bad or missing ph {ph!r}")
        if "name" not in ev:
            fail(f"{where}: missing name")
        if ph == "M":
            if ev["name"] == "thread_name":
                thread_names[ev.get("tid")] = ev["args"]["name"]
            continue
        if "cat" in ev:
            categories.add(ev["cat"])
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: bad or missing ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: complete span with bad dur {dur!r}")
            n_spans += 1
            span_names.add(ev["name"])
        elif ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                fail(f"{where}: instant with bad scope {ev.get('s')!r}")
            n_instants += 1
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                fail(f"{where}: counter without numeric args.value")
            n_counters += 1
            counter_names.add(ev["name"])

    required = {
        c for c in args.require_categories.split(",") if c.strip()
    }
    missing = required - categories
    if missing:
        fail(f"required categories absent: {', '.join(sorted(missing))}")

    # Simulator conventions, gated on the categories actually present.
    if "core" in categories or "task" in categories:
        if not thread_names:
            fail("no per-core thread_name metadata")
    if "task" in categories and "exec" not in span_names:
        fail("task category present but no exec spans")
    if "dmu" in categories:
        dmu_counters = {n for n in counter_names if n.startswith("dmu.")}
        if not dmu_counters:
            fail("dmu category present but no dmu.* counter tracks")

    print(
        f"validate_trace: OK: {len(events)} events "
        f"({n_spans} spans, {n_instants} instants, "
        f"{n_counters} counter samples) on {len(thread_names)} core "
        f"tracks; categories: {', '.join(sorted(categories)) or 'none'}"
    )


if __name__ == "__main__":
    main()
