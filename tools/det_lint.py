#!/usr/bin/env python3
"""Determinism linter for the tdm simulator sources.

The repo's load-bearing contract is bit-for-bit golden determinism:
12 pinned makespans plus pinned trace digests must reproduce on every
platform and every run. This linter flags the source patterns that have
historically broken (or can silently break) that contract:

  unordered-iteration  Iteration over std::unordered_map/unordered_set.
                       Hash-table iteration order is implementation-
                       defined; when such a loop feeds event scheduling,
                       metric export, or fingerprinting, makespans and
                       exports diverge across platforms/libstdc++
                       versions.
  pointer-ordering     Ordering comparisons (<, >, <=, >=) between
                       pointer values. Allocation addresses vary run to
                       run, so any schedule or sort keyed on them is
                       non-reproducible.
  uninit-pod           Scalar/pointer members without an initializer in
                       event- and record-like types (struct/class names
                       ending in Event, Record, or Entry). Uninitialized
                       padding or fields in these types leak
                       indeterminate values into event ordering, trace
                       digests, and hashed keys.
  wall-clock           Wall-clock or libc randomness (steady_clock,
                       system_clock, rand(), random_device, ...) outside
                       src/sim/rng: simulated behavior must derive only
                       from the seeded SplitMix64 RNG.

The matcher is lexical (comment/string-stripped token scanning seeded
by per-file declaration harvesting), driven by the file set in
compile_commands.json when available, so it needs no libclang at the
price of being conservative: anything flagged that is genuinely benign
is suppressed in tools/det_lint_suppressions.txt with a one-line
justification (the CI gate requires zero unsuppressed findings AND a
justification on every suppression).

Usage:
  tools/det_lint.py [--src DIR] [--compile-commands BUILD/compile_commands.json]
                    [--suppressions FILE] [--list-rules]
Exit status: 0 clean, 1 unsuppressed findings or bad suppressions.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

RULES = {
    "unordered-iteration":
        "iteration over an unordered container (order is "
        "implementation-defined and can leak into scheduling, metric "
        "export, or fingerprints)",
    "pointer-ordering":
        "ordering comparison on pointer values (allocation addresses "
        "are not reproducible across runs)",
    "uninit-pod":
        "scalar member without initializer in an event/record type "
        "(indeterminate values leak into ordering, digests, or keys)",
    "wall-clock":
        "wall-clock or libc randomness outside src/sim/rng (simulated "
        "behavior must derive from the seeded RNG only)",
}

# Files whose whole purpose is host-time / host-randomness handling.
WALL_CLOCK_EXEMPT = ("src/sim/rng.hh", "src/sim/rng.cc")


class Finding:
    def __init__(self, path, line, rule, message, source):
        self.path = path          # repo-relative, forward slashes
        self.line = line          # 1-based
        self.rule = rule
        self.message = message
        self.source = source.strip()

    def render(self):
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message}\n"
                f"    {self.source}")


def strip_comments_and_strings(text):
    """Blank out comments, string and char literals, preserving layout
    (every line keeps its length, so line/column numbers survive)."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
            elif c in ('"', "'"):
                mode = c
                out.append(c)
                i += 1
            else:
                out.append(c)
                i += 1
        elif mode == "line":
            if c == "\n":
                mode = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == mode:
                mode = None
                out.append(c)
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def source_line(raw_lines, lineno):
    if 1 <= lineno <= len(raw_lines):
        return raw_lines[lineno - 1]
    return ""


def match_angle_brackets(text, start):
    """Given pos of '<', return pos just past the matching '>'."""
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return -1  # malformed / not a template argument list
        i += 1
    return -1


IDENT = r"[A-Za-z_]\w*"


def harvest_unordered_names(text):
    """Names declared with an unordered_{map,set} type in this file."""
    names = set()
    for m in re.finditer(r"\bunordered_(?:map|set)\s*<", text):
        end = match_angle_brackets(text, m.end() - 1)
        if end < 0:
            continue
        rest = text[end:end + 200]
        dm = re.match(r"\s*&?\s*(" + IDENT + r")\s*[;={,)]", rest)
        if dm:
            names.add(dm.group(1))
    return names


def harvest_pointer_names(text):
    """Names declared as raw pointers in this file (heuristic)."""
    names = set()
    # 'Type *name' / 'Type* name' followed by a declarator terminator.
    # The type token must look like a type (starts upper-case, or is a
    # builtin/std-qualified name) to keep multiplications out.
    decl = re.compile(
        r"\b((?:const\s+)?(?:[A-Z]\w*|std::\w+|void|char|int|unsigned|"
        r"bool|float|double|auto)(?:::\w+|<[^<>;]*>)?)\s*\*\s*"
        r"(?:const\s+)?(" + IDENT + r")\s*(?:[;,)=]|\{)")
    for m in decl.finditer(text):
        names.add(m.group(2))
    return names


def check_unordered_iteration(path, text, raw_lines, findings):
    names = harvest_unordered_names(text)
    # Range-for directly over an unordered temporary/member/local:
    # for (... : expr) where expr's last identifier is a known
    # unordered name, or expr itself calls .begin() on one.
    for m in re.finditer(r"\bfor\s*\(([^;()]*?):([^()]*?)\)", text):
        expr = m.group(2).strip()
        tail = re.search(r"(" + IDENT + r")\s*$", expr)
        if tail and tail.group(1) in names:
            ln = line_of(text, m.start())
            findings.append(Finding(
                path, ln, "unordered-iteration",
                f"range-for over unordered container '{tail.group(1)}'",
                source_line(raw_lines, ln)))
    # Explicit iterator walks: x.begin() on a known unordered name.
    for name in names:
        for m in re.finditer(re.escape(name) + r"\s*\.\s*(?:c?begin)\s*\(",
                             text):
            ln = line_of(text, m.start())
            findings.append(Finding(
                path, ln, "unordered-iteration",
                f"iterator walk over unordered container '{name}'",
                source_line(raw_lines, ln)))


def check_pointer_ordering(path, text, raw_lines, findings):
    ptrs = harvest_pointer_names(text)
    if not ptrs:
        return
    cmp_re = re.compile(
        r"\b(" + IDENT + r")\s*(<=|>=|<|>)\s*(" + IDENT + r")\b")
    for m in cmp_re.finditer(text):
        a, op, b = m.group(1), m.group(2), m.group(3)
        if a in ptrs and b in ptrs:
            # 'a < b' where both are known pointer declarations. Rule
            # out template-argument-lists: 'Foo<Bar>' never has both
            # sides harvested as pointers in practice.
            ln = line_of(text, m.start())
            findings.append(Finding(
                path, ln, "pointer-ordering",
                f"ordering comparison '{a} {op} {b}' on pointer values",
                source_line(raw_lines, ln)))


SCALAR_TYPE = re.compile(
    r"^(?:mutable\s+)?(?:const\s+)?(?:std::)?(?:"
    r"u?int(?:8|16|32|64)_t|size_t|ptrdiff_t|uintptr_t|"
    r"int|unsigned(?:\s+(?:int|long|char|short))?|long(?:\s+long)?|"
    r"short|char|bool|float|double|Tick"
    r")\s+(" + IDENT + r")\s*;\s*$")

POINTER_MEMBER = re.compile(
    r"^(?:mutable\s+)?(?:const\s+)?" + r"[\w:<>,\s]+?\*\s*(" + IDENT
    + r")\s*;\s*$")


def find_struct_bodies(text, name_pattern):
    """Yield (name, body_start, body_end) for struct/class definitions
    whose name matches name_pattern."""
    for m in re.finditer(
            r"\b(?:struct|class)\s+(" + IDENT + r")\s*(?:final\s*)?"
            r"(?::[^({]*?)?\{", text):
        name = m.group(1)
        if not name_pattern.search(name):
            continue
        # Find the matching closing brace.
        depth = 0
        i = m.end() - 1
        while i < len(text):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        yield name, m.end(), i


def ctor_initialized_members(body):
    """Member names appearing in any constructor member-init list."""
    inited = set()
    for m in re.finditer(
            r"\)\s*(?:noexcept\s*)?:\s*((?:" + IDENT
            + r"\s*[({][^)}]*[)}]\s*,?\s*)+)", body):
        for im in re.finditer(r"(" + IDENT + r")\s*[({]", m.group(1)):
            inited.add(im.group(1))
    return inited


def check_uninit_pod(path, text, raw_lines, findings):
    pat = re.compile(r"(?:Event|Record|Entry)$")
    for name, b0, b1 in find_struct_bodies(text, pat):
        body = text[b0:b1]
        inited = ctor_initialized_members(body)
        depth = 0
        for lm in re.finditer(r"[^\n]*\n?", body):
            stmt = lm.group(0)
            opens = stmt.count("{") - stmt.count("}")
            if depth == 0:
                s = stmt.strip()
                member = None
                sm = SCALAR_TYPE.match(s)
                if sm:
                    member = sm.group(1)
                else:
                    pm = POINTER_MEMBER.match(s)
                    if pm and "(" not in s:
                        member = pm.group(1)
                if (member and member not in inited
                        and "static" not in s and "constexpr" not in s
                        and "using" not in s):
                    ln = line_of(text, b0 + lm.start())
                    findings.append(Finding(
                        path, ln, "uninit-pod",
                        f"member '{member}' of {name} has no "
                        "initializer",
                        source_line(raw_lines, ln)))
            depth += opens
            if depth < 0:
                depth = 0


WALL_CLOCK_TOKENS = [
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "time()"),
]


def check_wall_clock(path, text, raw_lines, findings):
    if path in WALL_CLOCK_EXEMPT:
        return
    for regex, label in WALL_CLOCK_TOKENS:
        for m in regex.finditer(text):
            ln = line_of(text, m.start())
            findings.append(Finding(
                path, ln, "wall-clock",
                f"{label} outside src/sim/rng",
                source_line(raw_lines, ln)))


CHECKS = [
    check_unordered_iteration,
    check_pointer_ordering,
    check_uninit_pod,
    check_wall_clock,
]


def gather_files(src_dir, compile_commands):
    """The .cc set from compile_commands (restricted to src_dir) plus
    every header under src_dir; falls back to a plain tree walk."""
    src_dir = os.path.abspath(src_dir)
    files = set()
    if compile_commands and os.path.exists(compile_commands):
        try:
            with open(compile_commands) as f:
                for entry in json.load(f):
                    p = os.path.normpath(
                        os.path.join(entry["directory"], entry["file"]))
                    if p.startswith(src_dir + os.sep):
                        files.add(p)
        except (json.JSONDecodeError, OSError):
            pass  # unreadable database: fall back to the tree walk
    if not files:
        for root, _dirs, names in os.walk(src_dir):
            for n in names:
                if n.endswith(".cc"):
                    files.add(os.path.join(root, n))
    for root, _dirs, names in os.walk(src_dir):
        for n in names:
            if n.endswith(".hh"):
                files.add(os.path.join(root, n))
    return sorted(files)


class Suppression:
    def __init__(self, path_glob, rule, needle, justification, lineno):
        self.path_glob = path_glob
        self.rule = rule
        self.needle = needle
        self.justification = justification
        self.lineno = lineno
        self.used = False

    def matches(self, finding):
        if self.rule != "*" and self.rule != finding.rule:
            return False
        if not fnmatch.fnmatch(finding.path, self.path_glob):
            return False
        return self.needle in finding.source


def load_suppressions(path, errors):
    sups = []
    if not path or not os.path.exists(path):
        return sups
    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "#" not in line:
                errors.append(
                    f"{path}:{lineno}: suppression without a "
                    f"justification ('# why' is required): {line}")
                continue
            spec, justification = line.split("#", 1)
            justification = justification.strip()
            if not justification:
                errors.append(
                    f"{path}:{lineno}: empty justification: {line}")
                continue
            parts = spec.strip().split(":", 2)
            if len(parts) != 3:
                errors.append(
                    f"{path}:{lineno}: expected "
                    f"'path:rule:needle # why': {line}")
                continue
            path_glob, rule, needle = (p.strip() for p in parts)
            if rule != "*" and rule not in RULES:
                errors.append(
                    f"{path}:{lineno}: unknown rule '{rule}' "
                    f"(known: {', '.join(sorted(RULES))})")
                continue
            sups.append(Suppression(path_glob, rule, needle,
                                    justification, lineno))
    return sups


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="determinism linter (see module docstring)")
    ap.add_argument("--src", default="src",
                    help="source tree to lint (default: src)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json giving the exact TU set "
                         "(default: probe build*/compile_commands.json)")
    ap.add_argument("--suppressions",
                    default="tools/det_lint_suppressions.txt",
                    help="annotated suppression file")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}: {RULES[rule]}")
        return 0

    cc = args.compile_commands
    if cc is None:
        for cand in ("build/compile_commands.json",
                     "build-asan/compile_commands.json",
                     "build-release/compile_commands.json"):
            if os.path.exists(cand):
                cc = cand
                break

    errors = []
    sups = load_suppressions(args.suppressions, errors)

    findings = []
    cwd = os.getcwd()
    for path in gather_files(args.src, cc):
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        rel = os.path.relpath(path, cwd).replace(os.sep, "/")
        text = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        for check in CHECKS:
            check(rel, text, raw_lines, findings)

    unsuppressed = []
    for finding in findings:
        hit = next((s for s in sups if s.matches(finding)), None)
        if hit:
            hit.used = True
        else:
            unsuppressed.append(finding)

    for f in unsuppressed:
        print(f.render())
    for s in sups:
        if not s.used:
            print(f"warning: unused suppression "
                  f"{args.suppressions}:{s.lineno}: "
                  f"{s.path_glob}:{s.rule}:{s.needle}", file=sys.stderr)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)

    total = len(findings)
    if unsuppressed or errors:
        print(f"\ndet_lint: {len(unsuppressed)} unsuppressed finding(s) "
              f"({total} total), {len(errors)} suppression error(s)")
        return 1
    print(f"det_lint: clean ({total} finding(s), all suppressed with "
          f"justification)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
