/**
 * @file
 * campaign_run — execute experiment campaigns on the thread-pooled
 * campaign engine: registered ones by name, and arbitrary user-defined
 * studies from *.campaign spec files, no recompile needed.
 *
 * Usage:
 *   campaign_run [options] [CAMPAIGN...]
 *
 * Options:
 *   --list            list registered campaigns and exit
 *   --keys            print the spec key reference (markdown) and exit
 *   --metric-keys     print the metric key reference (markdown) and exit
 *   --trace-keys      print the trace event/counter reference
 *                     (markdown) and exit
 *   --spec FILE       run the campaign defined in FILE (repeatable)
 *   --set KEY=VALUE   override a spec key on every point (repeatable)
 *   --metrics GLOBS   select the metric subtree each point exports
 *                     ("dmu.*,mesh.*"); overrides any `metrics`
 *                     directive in a *.campaign file
 *   --threads N       worker threads (default: hardware concurrency)
 *   --no-cache        disable result-cache deduplication
 *   --no-graph-share  rebuild each point's task graph instead of
 *                     sharing one immutable graph per distinct
 *                     workload (A/B baseline for perf tracking)
 *   --no-warm-fork    simulate every point cold from tick 0 instead
 *                     of forking points that share a warm prefix
 *                     from one warmup snapshot (A/B baseline; forked
 *                     results are bit-identical either way)
 *   --seed-base S     reseed point i with S+i (deterministic per job)
 *   --json FILE       write all results as JSON (with each point's
 *                     full canonical spec)
 *   --csv FILE        write all results as CSV
 *   --trace-dir DIR   write a Chrome trace JSON per simulated point
 *                     whose spec enables trace.categories (e.g.
 *                     --set trace.categories=task,dmu); files are
 *                     named <digest>.json, DIR must exist
 *   --store DIR       persist results in (and serve cache hits from)
 *                     the content-addressed store at DIR — sweeps
 *                     re-run across process restarts cost zero
 *                     simulations
 *   --server ADDR     submit the campaigns to a campaign_serve
 *                     daemon at ADDR (unix:PATH / tcp:HOST:PORT)
 *                     instead of simulating locally; results stream
 *                     back per point and feed the same reports
 *   --log-level LEVEL quiet|warn|info|debug (default info, so
 *                     progress lines show; --quiet drops to warn)
 *   --quiet           suppress per-job progress lines
 *
 * Several campaigns share one engine, so points common to two
 * campaigns (e.g. the SW+FIFO baselines of fig12 and fig13) simulate
 * once and hit the cache the second time:
 *
 *   campaign_run fig12 fig13 --threads 8 --json out.json
 *
 * A text study with an override:
 *
 *   campaign_run --spec examples/sweep_dmu_sizing.campaign \
 *                --set machine.cores=16 --json out.json
 */

#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "driver/campaign/campaign.hh"
#include "driver/campaign/engine.hh"
#include "driver/service/client.hh"
#include "driver/service/store.hh"
#include "driver/report/csv_writer.hh"
#include "driver/report/json_writer.hh"
#include "driver/report/metric_reference.hh"
#include "driver/report/trace_writer.hh"
#include "driver/spec/campaign_file.hh"
#include "driver/spec/grid.hh"
#include "driver/spec/spec.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/table.hh"

using namespace tdm;
namespace cmp = tdm::driver::campaign;
namespace spc = tdm::driver::spec;
namespace svc = tdm::driver::service;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--list] [--keys] [--metric-keys] [--trace-keys]"
                 " [--spec FILE]"
                 " [--set KEY=VALUE] [--metrics GLOBS] [--threads N]"
                 " [--no-cache] [--no-graph-share] [--seed-base S]"
                 " [--json FILE] [--csv FILE] [--trace-dir DIR]"
                 " [--store DIR] [--server ADDR]"
                 " [--log-level LEVEL] [--quiet] [CAMPAIGN...]\n";
    std::exit(2);
}

void
listCampaigns()
{
    sim::Table t("registered campaigns");
    t.header({"name", "points", "description"});
    for (const auto &[name, description] : cmp::campaignList()) {
        t.row()
            .cell(name)
            .cell(static_cast<std::uint64_t>(
                cmp::campaignPointCount(name)))
            .cell(description);
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    cmp::EngineOptions opts;
    opts.threads = 0; // hardware concurrency
    opts.progress = true;
    // Progress goes through sim::inform, so the tool defaults the
    // global level to Info; --quiet and --log-level override it.
    sim::setLogLevel(sim::LogLevel::Info);
    std::string json_file, csv_file;
    std::string store_dir, server_addr;
    std::string metrics_pattern;
    bool metrics_set = false;
    std::vector<std::string> names;
    std::vector<std::string> spec_files;
    std::vector<std::pair<std::string, std::string>> overrides;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--list")) {
            listCampaigns();
            return 0;
        } else if (!std::strcmp(a, "--keys")) {
            spc::writeKeyReference(std::cout);
            return 0;
        } else if (!std::strcmp(a, "--metric-keys")) {
            driver::report::writeMetricReference(std::cout);
            return 0;
        } else if (!std::strcmp(a, "--trace-keys")) {
            driver::report::writeTraceEventReference(std::cout);
            return 0;
        } else if (!std::strcmp(a, "--spec")) {
            spec_files.emplace_back(need(i));
        } else if (!std::strcmp(a, "--set")) {
            const std::string kv = need(i);
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::cerr << "--set expects KEY=VALUE, got '" << kv
                          << "'\n";
                return 2;
            }
            overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
        } else if (!std::strcmp(a, "--metrics")) {
            metrics_pattern = need(i);
            metrics_set = true;
            try {
                if (!metrics_pattern.empty())
                    sim::MetricSet::parsePatterns(metrics_pattern);
            } catch (const sim::MetricError &e) {
                std::cerr << "--metrics: " << e.what() << "\n";
                return 2;
            }
        } else if (!std::strcmp(a, "--threads")) {
            opts.threads = static_cast<unsigned>(
                cmp::parseUintArg(need(i), "--threads", UINT32_MAX));
        } else if (!std::strcmp(a, "--no-cache")) {
            opts.useCache = false;
        } else if (!std::strcmp(a, "--no-graph-share")) {
            opts.shareGraphs = false;
        } else if (!std::strcmp(a, "--no-warm-fork")) {
            opts.warmFork = false;
        } else if (!std::strcmp(a, "--seed-base")) {
            opts.seedBase = cmp::parseUintArg(need(i), "--seed-base");
        } else if (!std::strcmp(a, "--json")) {
            json_file = need(i);
        } else if (!std::strcmp(a, "--csv")) {
            csv_file = need(i);
        } else if (!std::strcmp(a, "--trace-dir")) {
            opts.traceDir = need(i);
        } else if (!std::strcmp(a, "--store")) {
            store_dir = need(i);
        } else if (!std::strcmp(a, "--server")) {
            server_addr = need(i);
        } else if (!std::strcmp(a, "--log-level")) {
            const std::string lv = need(i);
            sim::LogLevel level;
            if (!sim::parseLogLevel(lv, level)) {
                std::cerr << "--log-level expects quiet|warn|info"
                             "|debug, got '" << lv << "'\n";
                return 2;
            }
            sim::setLogLevel(level);
        } else if (!std::strcmp(a, "--quiet")) {
            opts.progress = false;
            if (sim::logLevel() > sim::LogLevel::Warn)
                sim::setLogLevel(sim::LogLevel::Warn);
        } else if (a[0] == '-') {
            usage(argv[0]);
        } else {
            names.emplace_back(a);
        }
    }
    if (names.empty() && spec_files.empty())
        usage(argv[0]);

    // Build every campaign up front so spec/validation errors surface
    // before any simulation starts.
    std::vector<cmp::Campaign> campaigns;
    try {
        for (const std::string &name : names)
            campaigns.push_back(cmp::makeCampaign(name));
        for (const std::string &file : spec_files)
            campaigns.push_back(spc::loadCampaignFile(file).toCampaign());
        for (cmp::Campaign &c : campaigns) {
            if (metrics_set)
                c.metrics = metrics_pattern;
            for (driver::SweepPoint &p : c.points) {
                for (const auto &[key, value] : overrides)
                    spc::applyKey(p.exp, key, value);
                // Re-render labels after overrides: when --set collides
                // with an axis or label key, the label must describe
                // what actually runs (collapsed points then show up as
                // duplicate labels + cache hits, not as a silent lie).
                if (!overrides.empty() && !c.labelTemplate.empty())
                    p.label = spc::renderLabel(c.labelTemplate, p.exp);
            }
        }
    } catch (const spc::SpecError &e) {
        std::cerr << "spec error: " << e.what() << "\n";
        return 2;
    }

    // Three ways to resolve a campaign, one downstream path: local
    // engine, local engine backed by a persistent store, or a remote
    // campaign_serve daemon. All three produce CampaignResults that
    // feed the same tables, summary lines, and JSON/CSV reports.
    if (!server_addr.empty() && !store_dir.empty()) {
        std::cerr << "--server and --store are mutually exclusive "
                     "(the store lives server-side)\n";
        return 2;
    }
    std::unique_ptr<svc::ResultStore> store;
    std::unique_ptr<cmp::CampaignEngine> engine;
    std::unique_ptr<svc::ServiceClient> client;
    std::function<cmp::CampaignResult(const cmp::Campaign &)> runOne;
    try {
        if (!server_addr.empty()) {
            client = std::make_unique<svc::ServiceClient>(server_addr);
            const bool progress = opts.progress;
            runOne = [&, progress](const cmp::Campaign &c) {
                return client->submit(
                    c, [&, progress](const cmp::JobResult &j,
                                     std::size_t index,
                                     std::size_t total) {
                        if (progress)
                            sim::inform("[", index + 1, "/", total,
                                        "] ", j.label, " (",
                                        cmp::jobSourceName(j.source),
                                        ")");
                    });
            };
        } else {
            if (!store_dir.empty()) {
                store = std::make_unique<svc::ResultStore>(store_dir);
                opts.backend = store.get();
            }
            engine = std::make_unique<cmp::CampaignEngine>(opts);
            runOne = [&](const cmp::Campaign &c) {
                return engine->run(c);
            };
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }

    std::vector<cmp::CampaignResult> results;
    std::size_t failures = 0;

    for (const cmp::Campaign &c : campaigns) {
        if (opts.progress)
            sim::inform("== ", c.name, ": ", c.points.size(),
                        " points ==");
        cmp::CampaignResult rep;
        try {
            rep = runOne(c);
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << "\n";
            return 1;
        }

        sim::Table t(c.name + " (" + c.description + ")");
        t.header({"label", "status", "time ms", "energy J", "tasks",
                  "sim ms"});
        for (const cmp::JobResult &j : rep.jobs) {
            t.row()
                .cell(j.label)
                .cell(!j.ok()         ? "FAILED"
                      : j.cacheHit    ? "cached"
                      : j.source == cmp::JobSource::Forked ? "forked"
                                                           : "ok")
                .cell(j.summary.timeMs, 3)
                .cell(j.summary.energyJ, 4)
                .cell(static_cast<std::uint64_t>(j.summary.numTasks))
                .cell(j.wallMs, 1);
        }
        t.print(std::cout);
        std::cout << c.name << ": " << rep.jobs.size() << " points, "
                  << rep.simulated << " simulated, " << rep.fromForked
                  << " forked (" << rep.warmupsShared
                  << " warmups shared), " << rep.cacheHits
                  << " cache hits (" << rep.fromMemory << " memory, "
                  << rep.fromDisk << " disk, " << rep.fromInflight
                  << " inflight), " << rep.graphBuilds
                  << " graphs built (" << rep.graphShares
                  << " shared), " << rep.failures() << " failures, "
                  << rep.threads << " threads, " << rep.wallMs / 1000.0
                  << " s\n\n";
        failures += rep.failures();
        results.push_back(std::move(rep));
    }

    if (!json_file.empty()) {
        std::ofstream f(json_file);
        if (!f) {
            std::cerr << "cannot write " << json_file << "\n";
            return 1;
        }
        driver::report::writeJson(f, results);
        std::cout << "json: " << json_file << "\n";
    }
    if (!csv_file.empty()) {
        std::ofstream f(csv_file);
        if (!f) {
            std::cerr << "cannot write " << csv_file << "\n";
            return 1;
        }
        driver::report::writeCsv(f, results);
        std::cout << "csv: " << csv_file << "\n";
    }
    return failures == 0 ? 0 : 1;
}
