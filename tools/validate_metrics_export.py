#!/usr/bin/env python3
"""Validate a campaign_run --json export against the metrics schema.

Usage: validate_metrics_export.py EXPORT.json SCHEMA.json

The schema (tools/metrics_schema.json) pins the exact metric-key set
every job must export under its metrics pattern, so CI catches renamed
or dropped metrics, jobs that silently export an empty tree, and
derived metrics drifting out of range. Exits non-zero with a per-job
explanation on the first violation.
"""

import json
import sys


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    export = json.load(open(sys.argv[1]))
    schema = json.load(open(sys.argv[2]))

    required = set(schema["required_keys"])
    rules = schema.get("value_rules", {})

    jobs = []
    for c in export["campaigns"]:
        if c.get("metrics_pattern") != schema["metrics_pattern"]:
            fail(
                f"campaign '{c['name']}' exported pattern "
                f"'{c.get('metrics_pattern')}', schema expects "
                f"'{schema['metrics_pattern']}'"
            )
        jobs.extend(c["jobs"])
    if not jobs:
        fail("export contains no jobs")

    for j in jobs:
        label = j.get("label", "?")
        if not j.get("ok"):
            fail(f"job '{label}' failed: {j.get('error')}")
        metrics = j.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            fail(f"job '{label}' exported no metric tree")
        keys = set(metrics)
        if keys != required:
            missing = sorted(required - keys)
            extra = sorted(keys - required)
            fail(
                f"job '{label}' metric keys diverge from schema: "
                f"missing={missing} unexpected={extra} "
                f"(regenerate tools/metrics_schema.json if intentional)"
            )
        for k, v in metrics.items():
            if not isinstance(v, (int, float)):
                fail(f"job '{label}' metric '{k}' is not numeric: {v!r}")
        for k, rule in rules.items():
            v = metrics[k]
            if "min" in rule and v < rule["min"]:
                fail(f"job '{label}' metric '{k}'={v} below {rule['min']}")
            if "max" in rule and v > rule["max"]:
                fail(f"job '{label}' metric '{k}'={v} above {rule['max']}")

    print(f"{len(jobs)} jobs x {len(required)} metric keys validated")


if __name__ == "__main__":
    main()
