/**
 * @file
 * campaign_serve — the campaign-as-a-service daemon: one shared
 * engine, a persistent content-addressed result store, a
 * line-delimited JSON protocol on a local socket, and an optional
 * embedded HTTP dashboard.
 *
 * Usage:
 *   campaign_serve [options]
 *
 * Options:
 *   --listen ADDR   unix:PATH or tcp:HOST:PORT (loopback only);
 *                   default tcp:127.0.0.1:7077. Port 0 binds an
 *                   ephemeral port — the "listening on" line reports
 *                   the actual address, which is how scripts and CI
 *                   discover it.
 *   --http ADDR     serve the live dashboard (HTTP + SSE) on ADDR
 *                   (same unix:/tcp: grammar, loopback only; port 0
 *                   works here too, reported by the "dashboard on"
 *                   line). Off by default: without it the daemon
 *                   starts no HTTP threads and does no per-event work.
 *   --store DIR     persistent result store (created if absent);
 *                   without it the daemon serves from memory only
 *   --threads N     engine worker threads (default: hardware
 *                   concurrency)
 *   --trace-dir DIR write Chrome trace JSON per simulated point whose
 *                   spec enables trace.categories (DIR must exist)
 *   --log-level L   quiet|warn|info|debug (default info)
 *   --quiet         log level warn
 *
 * The daemon runs until a client sends {"op":"shutdown"} or it
 * receives SIGINT/SIGTERM; either way it stops accepting, unwinds its
 * client connections, and exits 0 with the served-totals line — so a
 * ^C'd daemon on a unix socket still removes its socket file.
 * Concurrent clients share the engine's caches and in-flight claim
 * table, so overlapping sweeps cost one simulation per distinct
 * fingerprint — see src/driver/service/ and the README "Campaign
 * service" / "Dashboard" sections.
 *
 *   campaign_serve --listen tcp:127.0.0.1:0 --store /var/tmp/tdm-store \
 *                  --http tcp:127.0.0.1:0
 *   campaign_run --server tcp:127.0.0.1:PORT fig12
 *   tools/campaign_client.py --server tcp:127.0.0.1:PORT sweep.campaign
 */

#include <atomic>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include <pthread.h>
#include <signal.h>

#include "driver/campaign/engine.hh"
#include "driver/service/server.hh"
#include "sim/logging.hh"

using namespace tdm;
namespace svc = tdm::driver::service;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--listen ADDR] [--http ADDR] [--store DIR]"
                 " [--threads N] [--trace-dir DIR] [--log-level LEVEL]"
                 " [--quiet]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string listen = "tcp:127.0.0.1:7077";
    svc::ServerOptions opts;
    opts.engine.threads = 0; // hardware concurrency
    opts.verbose = true;
    sim::setLogLevel(sim::LogLevel::Info);

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--listen")) {
            listen = need(i);
        } else if (!std::strcmp(a, "--http")) {
            opts.httpAddr = need(i);
        } else if (!std::strcmp(a, "--store")) {
            opts.storeDir = need(i);
        } else if (!std::strcmp(a, "--threads")) {
            opts.engine.threads =
                static_cast<unsigned>(driver::campaign::parseUintArg(
                    need(i), "--threads", UINT32_MAX));
        } else if (!std::strcmp(a, "--trace-dir")) {
            opts.engine.traceDir = need(i);
        } else if (!std::strcmp(a, "--log-level")) {
            const std::string lv = need(i);
            sim::LogLevel level;
            if (!sim::parseLogLevel(lv, level)) {
                std::cerr << "--log-level expects quiet|warn|info"
                             "|debug, got '"
                          << lv << "'\n";
                return 2;
            }
            sim::setLogLevel(level);
            opts.verbose = level >= sim::LogLevel::Info;
        } else if (!std::strcmp(a, "--quiet")) {
            sim::setLogLevel(sim::LogLevel::Warn);
            opts.verbose = false;
        } else {
            usage(argv[0]);
        }
    }

    // Graceful SIGINT/SIGTERM: block the signals in every thread
    // (must happen before any thread is spawned — children inherit
    // the mask), then dedicate one thread to sigwait. On delivery it
    // stops the server, which unwinds serve() and lets main run the
    // normal exit path — unix socket files get unlinked, the totals
    // line gets printed, and the exit code is 0, same as a
    // client-requested shutdown.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

    try {
        svc::Address addr = svc::parseAddress(listen);
        svc::CampaignServer server(addr, opts);
        // The discovery lines scripts scrape (ephemeral ports resolve
        // here); flushed before serving so a parent process polling
        // stdout sees them immediately.
        std::cout << "campaign_serve: listening on "
                  << server.address().display() << std::endl;
        if (const svc::Address *http = server.httpAddress())
            std::cout << "campaign_serve: dashboard on "
                      << http->display() << std::endl;

        std::atomic<bool> exiting{false};
        std::thread watcher([&] {
            int sig = 0;
            while (sigwait(&sigs, &sig) == 0) {
                if (exiting.load())
                    return; // poked by main after serve() returned
                sim::inform("campaign_serve: caught ",
                            sig == SIGINT ? "SIGINT" : "SIGTERM",
                            ", shutting down");
                server.stop();
                return;
            }
        });

        server.serve();

        // Unblock the watcher if it is still parked in sigwait (the
        // shutdown came over the protocol, not via a signal).
        exiting.store(true);
        pthread_kill(watcher.native_handle(), SIGTERM);
        watcher.join();

        const svc::StatusInfo info = server.status();
        std::cout << "campaign_serve: served " << info.campaigns
                  << " campaigns, " << info.points << " points ("
                  << info.simulated << " simulated, "
                  << info.fromForked << " forked, "
                  << info.fromMemory << " memory, " << info.fromDisk
                  << " disk, " << info.fromInflight << " inflight)\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "campaign_serve: " << e.what() << "\n";
        return 1;
    }
}
