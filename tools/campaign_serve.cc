/**
 * @file
 * campaign_serve — the campaign-as-a-service daemon: one shared
 * engine, a persistent content-addressed result store, and a
 * line-delimited JSON protocol on a local socket.
 *
 * Usage:
 *   campaign_serve [options]
 *
 * Options:
 *   --listen ADDR   unix:PATH or tcp:HOST:PORT (loopback only);
 *                   default tcp:127.0.0.1:7077. Port 0 binds an
 *                   ephemeral port — the "listening on" line reports
 *                   the actual address, which is how scripts and CI
 *                   discover it.
 *   --store DIR     persistent result store (created if absent);
 *                   without it the daemon serves from memory only
 *   --threads N     engine worker threads (default: hardware
 *                   concurrency)
 *   --trace-dir DIR write Chrome trace JSON per simulated point whose
 *                   spec enables trace.categories (DIR must exist)
 *   --log-level L   quiet|warn|info|debug (default info)
 *   --quiet         log level warn
 *
 * The daemon runs until a client sends {"op":"shutdown"}. Concurrent
 * clients share the engine's caches and in-flight claim table, so
 * overlapping sweeps cost one simulation per distinct fingerprint —
 * see src/driver/service/ and the README "Campaign service" section
 * for the protocol.
 *
 *   campaign_serve --listen tcp:127.0.0.1:0 --store /var/tmp/tdm-store
 *   campaign_run --server tcp:127.0.0.1:PORT fig12
 *   tools/campaign_client.py --server tcp:127.0.0.1:PORT sweep.campaign
 */

#include <cstring>
#include <iostream>
#include <string>

#include "driver/campaign/engine.hh"
#include "driver/service/server.hh"
#include "sim/logging.hh"

using namespace tdm;
namespace svc = tdm::driver::service;

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " [--listen ADDR] [--store DIR] [--threads N]"
                 " [--trace-dir DIR] [--log-level LEVEL] [--quiet]\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string listen = "tcp:127.0.0.1:7077";
    svc::ServerOptions opts;
    opts.engine.threads = 0; // hardware concurrency
    opts.verbose = true;
    sim::setLogLevel(sim::LogLevel::Info);

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--listen")) {
            listen = need(i);
        } else if (!std::strcmp(a, "--store")) {
            opts.storeDir = need(i);
        } else if (!std::strcmp(a, "--threads")) {
            opts.engine.threads =
                static_cast<unsigned>(driver::campaign::parseUintArg(
                    need(i), "--threads", UINT32_MAX));
        } else if (!std::strcmp(a, "--trace-dir")) {
            opts.engine.traceDir = need(i);
        } else if (!std::strcmp(a, "--log-level")) {
            const std::string lv = need(i);
            sim::LogLevel level;
            if (!sim::parseLogLevel(lv, level)) {
                std::cerr << "--log-level expects quiet|warn|info"
                             "|debug, got '"
                          << lv << "'\n";
                return 2;
            }
            sim::setLogLevel(level);
            opts.verbose = level >= sim::LogLevel::Info;
        } else if (!std::strcmp(a, "--quiet")) {
            sim::setLogLevel(sim::LogLevel::Warn);
            opts.verbose = false;
        } else {
            usage(argv[0]);
        }
    }

    try {
        svc::Address addr = svc::parseAddress(listen);
        svc::CampaignServer server(addr, opts);
        // The discovery line scripts scrape (ephemeral ports resolve
        // here); flushed before serving so a parent process polling
        // stdout sees it immediately.
        std::cout << "campaign_serve: listening on "
                  << server.address().display() << std::endl;
        server.serve();
        const svc::StatusInfo info = server.status();
        std::cout << "campaign_serve: served " << info.campaigns
                  << " campaigns, " << info.points << " points ("
                  << info.simulated << " simulated, "
                  << info.fromMemory << " memory, " << info.fromDisk
                  << " disk, " << info.fromInflight << " inflight)\n";
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "campaign_serve: " << e.what() << "\n";
        return 1;
    }
}
