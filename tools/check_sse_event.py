#!/usr/bin/env python3
"""Validate a captured dashboard SSE stream against the checked-in
event schema (tools/sse_event_schema.json). Stdlib only.

Usage:
    check_sse_event.py EVENT_TYPE [< capture]

Reads a raw SSE capture (e.g. `curl -sN .../api/events`) on stdin,
finds the first frame of EVENT_TYPE, and checks that its JSON payload
carries every schema-required field with the right JSON type. Exits 0
on success, 1 on a malformed frame / missing field / type mismatch /
no frame of that type at all.

Schema entries are "field": "type". A dotted field name ("served.forked")
descends into nested objects. A type may also be an object
{"type": "string", "enum": [...]} to additionally pin the value to an
allowed set (e.g. the point source names, so a new source counts as a
contract change, not drift).

CI tails the stream during a live submit and runs this on the capture,
so a field rename or type change in the SSE contract fails the build
instead of silently breaking dashboard consumers.
"""

import json
import os
import sys

TYPE_CHECKS = {
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "string": lambda v: isinstance(v, str),
    "boolean": lambda v: isinstance(v, bool),
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
}


def frames(stream):
    """Yield (event_name, data) for each complete SSE frame."""
    name, data = "", []
    for raw in stream:
        line = raw.rstrip("\r\n")
        if not line:
            if data:
                yield name or "message", "\n".join(data)
            name, data = "", []
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "event":
            name = value
        elif field == "data":
            data.append(value)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    wanted = sys.argv[1]

    schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "sse_event_schema.json")
    with open(schema_path, "r", encoding="utf-8") as f:
        schema = json.load(f)
    if wanted not in schema:
        print(f"check_sse_event: no schema for event type '{wanted}'",
              file=sys.stderr)
        return 1

    for name, data in frames(sys.stdin):
        if name != wanted:
            continue
        try:
            payload = json.loads(data)
        except json.JSONDecodeError as e:
            print(f"check_sse_event: '{wanted}' data is not JSON: {e}",
                  file=sys.stderr)
            return 1
        if not isinstance(payload, dict):
            print(f"check_sse_event: '{wanted}' data is not an object",
                  file=sys.stderr)
            return 1
        bad = False
        for field, kind in schema[wanted].items():
            # Dotted names descend into nested objects.
            value, present = payload, True
            for part in field.split("."):
                if not isinstance(value, dict) or part not in value:
                    present = False
                    break
                value = value[part]
            enum = None
            if isinstance(kind, dict):
                enum = kind.get("enum")
                kind = kind.get("type", "string")
            if not present:
                print(f"check_sse_event: '{wanted}' missing field "
                      f"'{field}'", file=sys.stderr)
                bad = True
            elif not TYPE_CHECKS[kind](value):
                print(f"check_sse_event: '{wanted}.{field}' is "
                      f"{type(value).__name__}, schema says "
                      f"{kind}", file=sys.stderr)
                bad = True
            elif enum is not None and value not in enum:
                print(f"check_sse_event: '{wanted}.{field}' is "
                      f"{value!r}, schema allows {enum}",
                      file=sys.stderr)
                bad = True
        if bad:
            return 1
        print(f"check_sse_event: '{wanted}' frame OK "
              f"({len(schema[wanted])} fields checked)")
        return 0

    print(f"check_sse_event: no '{wanted}' frame in the capture",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
