#!/usr/bin/env python3
"""Reference client for the campaign_serve daemon. Stdlib only.

Speaks the line-delimited JSON protocol documented in the README
"Campaign service" section: one request object per line, a stream of
event objects back. Submit a campaign file, poll daemon status, or ask
it to shut down:

    tools/campaign_client.py --server tcp:127.0.0.1:7077 sweep.campaign
    tools/campaign_client.py --server tcp:127.0.0.1:7077 --status
    tools/campaign_client.py --server tcp:127.0.0.1:7077 --shutdown
    tools/campaign_client.py --watch --http tcp:127.0.0.1:8077

Submissions stream one "point" event per grid point as the shared
engine resolves it (from the in-memory cache, the persistent store, an
in-flight duplicate, or a fresh simulation), then a "done" summary.
--json passes the raw event lines through for scripting; the default
output is a human-readable progress log.

--watch tails the dashboard's /api/events SSE stream (the daemon must
run with --http) and prints every campaign's progress live — a
terminal version of the browser dashboard. Ctrl-C to stop.

Exit status: 0 on success, 1 when the server reports an error or any
point fails, 2 on usage errors.
"""

import argparse
import json
import socket
import sys


def parse_address(text):
    """tcp:HOST:PORT or unix:PATH (loopback only, like the daemon)."""
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise SystemExit("campaign_client: empty unix socket path")
        return ("unix", path)
    if text.startswith("tcp:"):
        rest = text[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not port.isdigit():
            raise SystemExit(
                f"campaign_client: malformed tcp address '{text}' "
                "(want tcp:HOST:PORT)")
        return ("tcp", (host, int(port)))
    raise SystemExit(
        f"campaign_client: unknown address '{text}' "
        "(want tcp:HOST:PORT or unix:PATH)")


def connect(addr):
    kind, target = addr
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.connect(target)
    except OSError as e:
        raise SystemExit(f"campaign_client: cannot connect: {e}")
    return sock


def events(sock):
    """Yield decoded JSON objects, one per server line."""
    with sock.makefile("r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line), line
            except json.JSONDecodeError as e:
                raise SystemExit(
                    f"campaign_client: bad server line: {e}: {line!r}")


def send(sock, request):
    sock.sendall((json.dumps(request) + "\n").encode("utf-8"))


def one_shot(addr, op, raw):
    """Ops with a single response object: ping, status, shutdown."""
    sock = connect(addr)
    send(sock, {"op": op})
    for event, line in events(sock):
        if event.get("event") == "error":
            raise SystemExit(
                f"campaign_client: server error: {event.get('message')}")
        if raw:
            print(line)
        elif op == "status":
            served = event.get("served", {})
            store = event.get("store")
            print(f"campaigns={event.get('campaigns')} "
                  f"points={event.get('points')} "
                  f"simulated={served.get('simulated')} "
                  f"memory={served.get('memory')} "
                  f"disk={served.get('disk')} "
                  f"inflight={served.get('inflight')} "
                  f"forked={served.get('forked')} "
                  f"cache_points={event.get('cache_points')} "
                  f"threads={event.get('threads')} "
                  f"uptime_ms={event.get('uptime_ms')}")
            if store:
                print(f"store dir={store.get('dir')} "
                      f"blobs={store.get('blobs')} "
                      f"bytes={store.get('bytes')} "
                      f"hits={store.get('hits')} "
                      f"stores={store.get('stores')} "
                      f"corrupt={store.get('corrupt')}")
            else:
                print("store (none: memory-only daemon)")
            http = event.get("http")
            if http:
                print(f"http addr={http.get('addr')} "
                      f"requests={http.get('requests')} "
                      f"sse={http.get('sse_subscribers')} "
                      f"published={http.get('events_published')} "
                      f"dropped={http.get('events_dropped')}")
        else:
            print(f"campaign_client: {event.get('event')}")
        return 0
    raise SystemExit("campaign_client: connection closed without reply")


def format_point(event):
    status = "ok" if event.get("ok") else f"FAILED ({event.get('error')})"
    line = (f"[{event.get('index', 0) + 1}/{event.get('total', '?')}] "
            f"{event.get('label')}: {status} "
            f"source={event.get('source')} "
            f"makespan={event.get('makespan')} "
            f"time_ms={event.get('time_ms')}")
    metrics = event.get("metrics") or {}
    if metrics:
        pairs = " ".join(f"{k}={v}" for k, v in sorted(metrics.items()))
        line += " | " + pairs
    return line


def submit(addr, args):
    try:
        with open(args.campaign, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        raise SystemExit(f"campaign_client: {e}")

    request = {"op": "submit", "campaign": text}
    if args.name:
        request["name"] = args.name
    if args.metrics:
        request["metrics"] = args.metrics
    overrides = {}
    for item in args.set or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"campaign_client: --set expects KEY=VALUE, got '{item}'")
        overrides[key.strip()] = value.strip()
    if overrides:
        request["set"] = overrides

    sock = connect(addr)
    send(sock, request)
    failures = 0
    for event, line in events(sock):
        kind = event.get("event")
        if args.json:
            print(line)
        if kind == "error":
            raise SystemExit(
                f"campaign_client: server error: {event.get('message')}")
        if kind == "accepted" and not args.json:
            print(f"accepted: {event.get('name')} "
                  f"({event.get('points')} points)")
        elif kind == "point":
            if not event.get("ok"):
                failures += 1
            if not args.json:
                print(format_point(event))
        elif kind == "done":
            if not args.json:
                print(f"done: {event.get('points')} points, "
                      f"{event.get('simulated')} simulated, "
                      f"{event.get('from_forked')} forked "
                      f"({event.get('warmups_shared')} warmups shared), "
                      f"{event.get('cache_hits')} cache hits "
                      f"({event.get('from_memory')} memory, "
                      f"{event.get('from_disk')} disk, "
                      f"{event.get('from_inflight')} inflight), "
                      f"{event.get('failures')} failures, "
                      f"{event.get('wall_ms')} ms")
            return 1 if failures else 0
    raise SystemExit("campaign_client: connection closed mid-campaign")


def sse_events(sock):
    """Yield (event_name, data) pairs from an open SSE stream."""
    name, data = "", []
    with sock.makefile("rb") as stream:
        # Skip the response head.
        status = stream.readline().decode("latin-1").strip()
        if " 200 " not in status + " ":
            raise SystemExit(f"campaign_client: dashboard said {status}")
        while stream.readline().strip():
            pass
        for raw in stream:
            line = raw.decode("utf-8", "replace").rstrip("\r\n")
            if not line:
                if data:
                    yield name or "message", "\n".join(data)
                name, data = "", []
                continue
            if line.startswith(":"):
                continue  # keepalive comment
            field, _, value = line.partition(":")
            value = value[1:] if value.startswith(" ") else value
            if field == "event":
                name = value
            elif field == "data":
                data.append(value)


def watch(args):
    """Tail the dashboard SSE stream and print live progress."""
    sock = connect(parse_address(args.http))
    request = ("GET /api/events HTTP/1.1\r\n"
               "Host: dashboard\r\nAccept: text/event-stream\r\n\r\n")
    sock.sendall(request.encode("ascii"))
    try:
        for name, data in sse_events(sock):
            if args.json:
                print(f"{name}: {data}")
                sys.stdout.flush()
                continue
            try:
                event = json.loads(data)
            except json.JSONDecodeError:
                continue
            cid = event.get("id")
            if name == "accepted":
                print(f"#{cid} accepted: {event.get('name')} "
                      f"({event.get('points')} points)")
            elif name == "point":
                print(f"#{cid} " + format_point(event))
            elif name == "progress":
                eta = event.get("eta_ms") or 0
                served = event.get("served", {})
                print(f"#{cid} progress: {event.get('done')}"
                      f"/{event.get('total')} "
                      f"(sim={served.get('simulated')} "
                      f"fork={served.get('forked')} "
                      f"mem={served.get('memory')} "
                      f"disk={served.get('disk')} "
                      f"infl={served.get('inflight')})"
                      + (f" eta={eta / 1000.0:.1f}s" if eta else ""))
            elif name == "done":
                print(f"#{cid} done: {event.get('points')} points, "
                      f"{event.get('failures')} failures, "
                      f"{event.get('wall_ms')} ms")
            sys.stdout.flush()
    except KeyboardInterrupt:
        return 0
    print("campaign_client: dashboard stream closed")
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog="exactly one of CAMPAIGN, --status, --shutdown, or "
               "--ping is required")
    ap.add_argument("campaign", nargs="?",
                    help="campaign file to submit (*.campaign)")
    ap.add_argument("--server", metavar="ADDR",
                    help="daemon address: tcp:HOST:PORT or unix:PATH")
    ap.add_argument("--http", metavar="ADDR",
                    help="dashboard address (for --watch): the "
                         "daemon's --http value")
    ap.add_argument("--watch", action="store_true",
                    help="tail the dashboard SSE stream (needs --http)")
    ap.add_argument("--name", help="override the campaign name")
    ap.add_argument("--metrics", metavar="GLOBS",
                    help="comma-separated metric glob selection "
                         "(overrides the file's `metrics =` line)")
    ap.add_argument("--set", action="append", metavar="KEY=VALUE",
                    help="spec override applied to every point "
                         "(repeatable)")
    ap.add_argument("--json", action="store_true",
                    help="print raw server event lines (for scripts)")
    ap.add_argument("--status", action="store_true",
                    help="print daemon counters and exit")
    ap.add_argument("--shutdown", action="store_true",
                    help="ask the daemon to exit")
    ap.add_argument("--ping", action="store_true",
                    help="check liveness and exit")
    args = ap.parse_args()

    modes = [bool(args.campaign), args.status, args.shutdown, args.ping,
             args.watch]
    if sum(modes) != 1:
        ap.error("need exactly one of CAMPAIGN, --status, --shutdown, "
                 "--ping, --watch")
    if args.watch:
        if not args.http:
            ap.error("--watch needs --http ADDR (the daemon's "
                     "dashboard address)")
        return watch(args)
    if not args.server:
        ap.error("--server is required for this mode")

    addr = parse_address(args.server)
    if args.status:
        return one_shot(addr, "status", args.json)
    if args.shutdown:
        return one_shot(addr, "shutdown", args.json)
    if args.ping:
        return one_shot(addr, "ping", args.json)
    return submit(addr, args)


if __name__ == "__main__":
    sys.exit(main())
