#!/usr/bin/env python3
"""Tests for tools/det_lint.py.

Runs the linter over the fixture tree in tests/lint_fixtures — one
seeded violation per rule plus clean counterparts — and asserts the
exact (file, line, rule) findings, the suppression machinery, and the
exit statuses. Wired into ctest as test_det_lint.
"""

import contextlib
import io
import os
import re
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "tools"))

import det_lint  # noqa: E402

FIXTURES = os.path.join("tests", "lint_fixtures")


def run_lint(*argv):
    """Run det_lint.main from the repo root; return (rc, stdout, stderr)."""
    out, err = io.StringIO(), io.StringIO()
    cwd = os.getcwd()
    os.chdir(REPO)
    try:
        with contextlib.redirect_stdout(out), \
             contextlib.redirect_stderr(err):
            rc = det_lint.main(list(argv))
    finally:
        os.chdir(cwd)
    return rc, out.getvalue(), err.getvalue()


def findings_of(stdout):
    """Parse 'path:line: [rule]' headers into (path, line, rule)."""
    hits = []
    for m in re.finditer(r"^(\S+?):(\d+): \[([\w-]+)\]", stdout,
                         re.MULTILINE):
        hits.append((m.group(1), int(m.group(2)), m.group(3)))
    return sorted(hits)


class FixtureFindings(unittest.TestCase):
    """Each rule fires exactly at its seeded site and nowhere else."""

    @classmethod
    def setUpClass(cls):
        cls.rc, cls.out, cls.err = run_lint(
            "--src", FIXTURES, "--suppressions", os.devnull,
            "--compile-commands", os.devnull)
        cls.hits = findings_of(cls.out)

    def expect(self, filename, line, rule):
        path = f"{FIXTURES}/{filename}"
        self.assertIn((path, line, rule), self.hits,
                      f"missing finding; got: {self.hits}")

    def test_exit_status_dirty(self):
        self.assertEqual(self.rc, 1)

    def test_unordered_iteration(self):
        self.expect("unordered_bad.cc", 12, "unordered-iteration")
        self.expect("unordered_bad.cc", 16, "unordered-iteration")

    def test_pointer_ordering(self):
        self.expect("pointer_bad.cc", 11, "pointer-ordering")

    def test_uninit_pod(self):
        self.expect("uninit_bad.cc", 7, "uninit-pod")
        self.expect("uninit_bad.cc", 13, "uninit-pod")

    def test_wall_clock(self):
        self.expect("wallclock_bad.cc", 9, "wall-clock")
        self.expect("wallclock_bad.cc", 10, "wall-clock")

    def test_exact_finding_set(self):
        """No findings beyond the seeded ones — in particular the
        clean counterpart files produce nothing."""
        expected = sorted([
            (f"{FIXTURES}/unordered_bad.cc", 12, "unordered-iteration"),
            (f"{FIXTURES}/unordered_bad.cc", 16, "unordered-iteration"),
            (f"{FIXTURES}/pointer_bad.cc", 11, "pointer-ordering"),
            (f"{FIXTURES}/uninit_bad.cc", 7, "uninit-pod"),
            (f"{FIXTURES}/uninit_bad.cc", 13, "uninit-pod"),
            (f"{FIXTURES}/wallclock_bad.cc", 9, "wall-clock"),
            (f"{FIXTURES}/wallclock_bad.cc", 10, "wall-clock"),
        ])
        self.assertEqual(self.hits, expected)


class SuppressionMachinery(unittest.TestCase):
    def lint_with_suppressions(self, text):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".txt", delete=False) as f:
            f.write(text)
            path = f.name
        try:
            return run_lint("--src", FIXTURES, "--suppressions", path,
                            "--compile-commands", os.devnull)
        finally:
            os.unlink(path)

    def test_full_suppression_is_clean(self):
        rc, out, _err = self.lint_with_suppressions(
            "tests/lint_fixtures/*:*:  # fixtures seed violations on"
            " purpose\n")
        self.assertEqual(rc, 0)
        self.assertIn("all suppressed", out)

    def test_suppression_without_justification_fails(self):
        rc, _out, err = self.lint_with_suppressions(
            "tests/lint_fixtures/*:*:\n")
        self.assertEqual(rc, 1)
        self.assertIn("justification", err)

    def test_unknown_rule_fails(self):
        rc, _out, err = self.lint_with_suppressions(
            "tests/lint_fixtures/*:no-such-rule:x # because\n")
        self.assertEqual(rc, 1)
        self.assertIn("unknown rule", err)

    def test_partial_suppression_leaves_the_rest(self):
        rc, out, _err = self.lint_with_suppressions(
            "tests/lint_fixtures/*:wall-clock: # seeded on purpose\n")
        self.assertEqual(rc, 1)
        hits = findings_of(out)
        self.assertTrue(all(rule != "wall-clock"
                            for _p, _l, rule in hits), hits)
        self.assertTrue(any(rule == "pointer-ordering"
                            for _p, _l, rule in hits), hits)

    def test_unused_suppression_warns(self):
        rc, _out, err = self.lint_with_suppressions(
            "tests/lint_fixtures/*:*: # catch-all\n"
            "no/such/file.cc:wall-clock:zzz # never matches\n")
        self.assertEqual(rc, 0)
        self.assertIn("unused suppression", err)


class RepoGate(unittest.TestCase):
    def test_src_tree_is_clean(self):
        """The real gate: src/ linted with the checked-in suppression
        file must be clean — exactly what CI enforces."""
        rc, out, err = run_lint()
        self.assertEqual(rc, 0, f"stdout:\n{out}\nstderr:\n{err}")
        # Unused suppressions mean the suppression file has drifted
        # from the code; keep it tight.
        self.assertNotIn("unused suppression", err)

    def test_list_rules(self):
        rc, out, _err = run_lint("--list-rules")
        self.assertEqual(rc, 0)
        for rule in ("unordered-iteration", "pointer-ordering",
                     "uninit-pod", "wall-clock"):
            self.assertIn(rule, out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
