/**
 * @file
 * Micro-benchmarks of the software dependence tracker and the
 * scheduling policies (google-benchmark, host time).
 */

#include <benchmark/benchmark.h>

#include "runtime/scheduler.hh"
#include "runtime/software_tracker.hh"
#include "runtime/task_graph.hh"

using namespace tdm;

namespace {

rt::TaskGraph
chainGraph(unsigned n)
{
    rt::TaskGraph g("chain");
    rt::RegionId r = g.addRegion(4096);
    g.beginParallel();
    for (unsigned i = 0; i < n; ++i) {
        g.createTask(1000);
        g.dep(r, rt::DepDir::InOut);
    }
    return g;
}

void
BM_TrackerCreateFinish(benchmark::State &state)
{
    const unsigned n = 4096;
    rt::TaskGraph g = chainGraph(n);
    for (auto _ : state) {
        rt::SoftwareTracker t(g);
        for (rt::TaskId i = 0; i < n; ++i) {
            t.create(i);
            t.finish(i);
        }
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TrackerCreateFinish);

void
BM_SchedulerPushPop(benchmark::State &state)
{
    const std::string names[] = {"fifo", "lifo", "locality", "successor",
                                 "age"};
    const std::string &name = names[state.range(0)];
    auto s = rt::makeScheduler(name, 32);
    rt::ReadyTask t;
    std::uint64_t i = 0;
    for (auto _ : state) {
        t.id = static_cast<rt::TaskId>(i);
        t.creationSeq = i * 2654435761u % 4096;
        t.numSuccessors = static_cast<std::uint32_t>(i % 4);
        t.producerHint = static_cast<sim::CoreId>(i % 32);
        s->push(t);
        if (s->size() > 512)
            benchmark::DoNotOptimize(s->pop(i % 32));
        if (i % 2 == 1)
            benchmark::DoNotOptimize(s->pop(i % 32));
        ++i;
    }
    state.SetLabel(name);
}
BENCHMARK(BM_SchedulerPushPop)->DenseRange(0, 4);

} // namespace

BENCHMARK_MAIN();
