/**
 * @file
 * Figure 2: execution time breakdown (DEPS / SCHED / EXEC / IDLE) of
 * the master and worker threads under the pure software runtime with a
 * FIFO scheduler, at each benchmark's software-optimal granularity.
 *
 * Paper reference points: master DEPS is dominant for Cholesky (84%),
 * QR (92%) and significant for streamcluster (40%); workers average
 * ~65% EXEC and ~32% IDLE.
 */

#include <iostream>

#include "driver/experiment.hh"
#include "driver/report/aggregate.hh"
#include "sim/table.hh"

using namespace tdm;

int
main()
{
    sim::Table t("Figure 2: SW runtime time breakdown (%)");
    t.header({"bench", "M.DEPS", "M.SCHED", "M.EXEC", "M.IDLE",
              "W.DEPS", "W.SCHED", "W.EXEC", "W.IDLE"});

    std::vector<double> wexec, widle;
    for (const auto &w : wl::allWorkloads()) {
        driver::Experiment e;
        e.workload = w.name;
        e.runtime = core::RuntimeType::Software;
        e.config.scheduler = "fifo";
        auto s = driver::run(e);
        if (!s.completed) {
            std::cout << w.shortName << ": run did not complete\n";
            continue;
        }
        const cpu::PhaseBreakdown &m = s.machine.master;
        const cpu::PhaseBreakdown &wk = s.machine.workersTotal;
        t.row()
            .cell(w.shortName)
            .cell(100.0 * m.fraction(cpu::Phase::Deps), 1)
            .cell(100.0 * m.fraction(cpu::Phase::Sched), 1)
            .cell(100.0 * m.fraction(cpu::Phase::Exec), 1)
            .cell(100.0 * m.fraction(cpu::Phase::Idle), 1)
            .cell(100.0 * wk.fraction(cpu::Phase::Deps), 1)
            .cell(100.0 * wk.fraction(cpu::Phase::Sched), 1)
            .cell(100.0 * wk.fraction(cpu::Phase::Exec), 1)
            .cell(100.0 * wk.fraction(cpu::Phase::Idle), 1);
        wexec.push_back(wk.fraction(cpu::Phase::Exec));
        widle.push_back(wk.fraction(cpu::Phase::Idle));
    }
    t.print(std::cout);
    std::cout << "\nworkers avg EXEC "
              << driver::report::percent(driver::report::mean(wexec), 1)
              << " (paper ~65%), avg IDLE "
              << driver::report::percent(driver::report::mean(widle), 1)
              << " (paper ~32%)\n";
    return 0;
}
