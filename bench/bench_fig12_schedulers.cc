/**
 * @file
 * Figure 12: speedup (top) and normalized EDP (bottom) of the five
 * software schedulers under the software runtime and under TDM, all
 * normalized to the software runtime with a FIFO scheduler.
 *
 * The experiment points come from the registered "fig12" campaign and
 * execute on the campaign engine (multi-threaded, cache-deduplicated);
 * pass --threads N to control the pool (default: all hardware threads).
 *
 * Paper reference points: OptSW +4.5%, Age+TDM +9.1%, OptTDM +12.2%
 * average speedup; OptTDM EDP -20.3%; LIFO degrades blackscholes by
 * ~29%; Successor+TDM lifts dedup by ~23%; Locality+TDM beats
 * FIFO+TDM on cholesky by ~4%.
 */

#include <iostream>

#include "driver/campaign/campaign.hh"
#include "driver/campaign/engine.hh"
#include "driver/report/aggregate.hh"
#include "runtime/scheduler.hh"
#include "sim/table.hh"

using namespace tdm;
namespace cmp = tdm::driver::campaign;

int
main(int argc, char **argv)
{
    cmp::CampaignEngine engine(cmp::benchEngineOptions(argc, argv));
    cmp::CampaignResult rep = engine.run(cmp::makeCampaign("fig12"));

    const auto &scheds = rt::allSchedulerNames();

    sim::Table ts("Figure 12 (top): speedup vs SW+FIFO");
    sim::Table te("Figure 12 (bottom): normalized EDP vs SW+FIFO");
    std::vector<std::string> head = {"bench", "OptSW"};
    for (const auto &s : scheds)
        head.push_back(s + "+TDM");
    head.push_back("OptTDM");
    ts.header(head);
    te.header(head);

    std::vector<std::vector<double>> sp_cols(head.size() - 1);
    std::vector<std::vector<double>> edp_cols(head.size() - 1);

    for (const auto &w : wl::allWorkloads()) {
        const auto &base =
            rep.at(cmp::pointLabel(w.name, "sw", "fifo")).summary;

        // Best software scheduler.
        double opt_sw_sp = 0.0, opt_sw_edp = 0.0;
        for (const auto &s : scheds) {
            const auto &r =
                rep.at(cmp::pointLabel(w.name, "sw", s)).summary;
            double sp = driver::speedup(base, r);
            if (sp > opt_sw_sp) {
                opt_sw_sp = sp;
                opt_sw_edp = driver::normalizedEdp(base, r);
            }
        }

        // TDM with each scheduler.
        std::vector<double> sp(scheds.size()), edp(scheds.size());
        double opt_tdm_sp = 0.0, opt_tdm_edp = 0.0;
        for (std::size_t i = 0; i < scheds.size(); ++i) {
            const auto &r =
                rep.at(cmp::pointLabel(w.name, "tdm", scheds[i])).summary;
            sp[i] = driver::speedup(base, r);
            edp[i] = driver::normalizedEdp(base, r);
            if (sp[i] > opt_tdm_sp) {
                opt_tdm_sp = sp[i];
                opt_tdm_edp = edp[i];
            }
        }

        auto &rs = ts.row().cell(w.shortName).cell(opt_sw_sp, 3);
        auto &re = te.row().cell(w.shortName).cell(opt_sw_edp, 3);
        sp_cols[0].push_back(opt_sw_sp);
        edp_cols[0].push_back(opt_sw_edp);
        for (std::size_t i = 0; i < scheds.size(); ++i) {
            rs.cell(sp[i], 3);
            re.cell(edp[i], 3);
            sp_cols[1 + i].push_back(sp[i]);
            edp_cols[1 + i].push_back(edp[i]);
        }
        rs.cell(opt_tdm_sp, 3);
        re.cell(opt_tdm_edp, 3);
        sp_cols.back().push_back(opt_tdm_sp);
        edp_cols.back().push_back(opt_tdm_edp);
    }

    auto &avg_s = ts.row().cell("AVG");
    auto &avg_e = te.row().cell("AVG");
    for (std::size_t c = 0; c < sp_cols.size(); ++c) {
        avg_s.cell(driver::report::geomean(sp_cols[c]), 3);
        avg_e.cell(driver::report::geomean(edp_cols[c]), 3);
    }
    ts.print(std::cout);
    std::cout << '\n';
    te.print(std::cout);
    std::cout << "\npaper AVG: OptSW 1.045, Age+TDM 1.091, "
                 "OptTDM 1.122; OptTDM EDP 0.797\n";
    std::cout << "campaign: " << rep.jobs.size() << " points, "
              << rep.simulated << " simulated, " << rep.cacheHits
              << " cache hits, " << rep.threads << " threads, "
              << rep.wallMs / 1000.0 << " s\n";
    return rep.allOk() ? 0 : 1;
}
