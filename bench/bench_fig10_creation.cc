/**
 * @file
 * Figure 10: percentage of time the master thread spends creating
 * tasks and managing their dependences, software runtime vs TDM.
 *
 * Paper: average reduced from 31.0% to 14.5%; blackscholes improves by
 * 5.2x; idle time drops from 32% to 22% on average.
 */

#include <iostream>

#include "driver/experiment.hh"
#include "driver/report/aggregate.hh"
#include "sim/table.hh"

using namespace tdm;

int
main()
{
    sim::Table t("Figure 10: master task-creation time (% of run)");
    t.header({"bench", "SW", "TDM", "reduction"});

    std::vector<double> sw_frac, tdm_frac, sw_idle, tdm_idle;
    for (const auto &w : wl::allWorkloads()) {
        driver::Experiment e;
        e.workload = w.name;
        e.config.scheduler = "fifo";
        e.runtime = core::RuntimeType::Software;
        auto s_sw = driver::run(e);
        e.runtime = core::RuntimeType::Tdm;
        auto s_tdm = driver::run(e);
        if (!s_sw.completed || !s_tdm.completed)
            continue;
        double a = s_sw.machine.masterCreationFraction * 100.0;
        double b = s_tdm.machine.masterCreationFraction * 100.0;
        t.row().cell(w.shortName).cell(a, 1).cell(b, 1).cell(
            b > 0 ? a / b : 0.0, 2);
        sw_frac.push_back(a);
        tdm_frac.push_back(b);
        sw_idle.push_back(
            s_sw.machine.chipTotal.fraction(cpu::Phase::Idle));
        tdm_idle.push_back(
            s_tdm.machine.chipTotal.fraction(cpu::Phase::Idle));
    }
    t.print(std::cout);
    std::cout << "\naverage creation time: SW "
              << driver::report::mean(sw_frac) << "% -> TDM "
              << driver::report::mean(tdm_frac)
              << "%  (paper: 31.0% -> 14.5%)\n";
    std::cout << "average idle time: SW "
              << driver::report::mean(sw_idle) * 100.0 << "% -> TDM "
              << driver::report::mean(tdm_idle) * 100.0
              << "%  (paper: 32% -> 22%)\n";
    return 0;
}
