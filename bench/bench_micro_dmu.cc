/**
 * @file
 * Micro-benchmarks of the DMU model itself (google-benchmark): cost of
 * the four operations and of list-array walks, in host time. These
 * gauge simulator throughput, not simulated latency.
 */

#include <benchmark/benchmark.h>

#include "dmu/dmu.hh"

using namespace tdm;

namespace {

constexpr std::uint64_t desc(std::uint64_t i)
{
    return 0x8ab000000000ULL + i * 0x140;
}

constexpr std::uint64_t addr(std::uint64_t i)
{
    return 0x100000000ULL + i * 16384;
}

void
BM_CreateCommitFinish(benchmark::State &state)
{
    dmu::Dmu d{dmu::DmuConfig{}};
    std::uint64_t i = 0;
    for (auto _ : state) {
        d.createTask(desc(i));
        d.commitTask(desc(i));
        unsigned acc = 0;
        benchmark::DoNotOptimize(d.getReadyTask(acc));
        d.finishTask(desc(i));
        ++i;
    }
}
BENCHMARK(BM_CreateCommitFinish);

void
BM_AddDependenceChain(benchmark::State &state)
{
    // Alternating writer/reader on one region: every op touches the
    // last-writer path.
    dmu::Dmu d{dmu::DmuConfig{}};
    std::uint64_t i = 0;
    for (auto _ : state) {
        d.createTask(desc(i));
        d.addDependence(desc(i), addr(0), 16384, i % 2 == 0);
        d.commitTask(desc(i));
        if (i >= 4) {
            unsigned acc = 0;
            while (auto info = d.getReadyTask(acc))
                d.finishTask(info->descAddr);
        }
        ++i;
    }
}
BENCHMARK(BM_AddDependenceChain);

void
BM_FanOutReaders(benchmark::State &state)
{
    // One writer, N readers; measures reader-list growth and wake-up.
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        dmu::Dmu d{dmu::DmuConfig{}};
        d.createTask(desc(0));
        d.addDependence(desc(0), addr(0), 16384, true);
        d.commitTask(desc(0));
        for (int r = 1; r <= n; ++r) {
            d.createTask(desc(r));
            d.addDependence(desc(r), addr(0), 16384, false);
            d.commitTask(desc(r));
        }
        unsigned acc = 0;
        d.getReadyTask(acc);
        benchmark::DoNotOptimize(d.finishTask(desc(0)));
        for (int r = 1; r <= n; ++r)
            d.finishTask(desc(r));
    }
    state.SetItemsProcessed(state.iterations() * (n + 1));
}
BENCHMARK(BM_FanOutReaders)->Arg(8)->Arg(64)->Arg(512);

void
BM_ListArrayPush(benchmark::State &state)
{
    dmu::ListArray la("bench", 1024, 8);
    dmu::ListHead h = la.allocList();
    std::uint16_t v = 0;
    for (auto _ : state) {
        unsigned acc = 0;
        if (!la.push(h, v++, acc)) {
            state.PauseTiming();
            la.clear(h);
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_ListArrayPush);

void
BM_AliasTableLookup(benchmark::State &state)
{
    dmu::AliasTable t("bench", 2048, 8, true, 0);
    for (std::uint64_t i = 0; i < 1024; ++i)
        t.insert(addr(i), 16384);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.lookup(addr(i % 1024), 16384));
        ++i;
    }
}
BENCHMARK(BM_AliasTableLookup);

} // namespace

BENCHMARK_MAIN();
