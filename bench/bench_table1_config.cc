/**
 * @file
 * Table I: configuration of the simulated machine, plus the DMU
 * structure inventory.
 */

#include <iostream>

#include "cpu/machine_config.hh"
#include "dmu/geometry.hh"
#include "sim/table.hh"

using namespace tdm;

int
main()
{
    cpu::MachineConfig cfg;
    std::cout << "== Table I: simulated machine configuration ==\n";
    cfg.describe().dump(std::cout);

    std::cout << "\n== DMU structures ==\n";
    sim::Table t;
    t.header({"structure", "entries", "bits/entry", "assoc", "KB"});
    for (const auto &s : dmu::sramSpecs(cfg.dmu)) {
        t.row()
            .cell(s.name)
            .cell(static_cast<std::uint64_t>(s.entries))
            .cell(static_cast<std::uint64_t>(s.bitsPerEntry))
            .cell(static_cast<std::uint64_t>(s.assoc))
            .cell(s.storageKB(), 2);
    }
    t.print(std::cout);
    return 0;
}
