/**
 * @file
 * Figure 13: speedup (top) and normalized EDP (bottom) of Carbon, Task
 * Superscalar and TDM (best scheduler per benchmark) over the software
 * runtime with a FIFO scheduler, plus the hardware-cost comparison of
 * Section VI-C.
 *
 * The experiment points come from the registered "fig13" campaign and
 * execute on the campaign engine (multi-threaded, cache-deduplicated);
 * pass --threads N to control the pool (default: all hardware threads).
 *
 * Paper reference points: Carbon +1.9%, Task Superscalar +8.1%,
 * OptTDM +12.3% average speedup; EDP -5.1% / -14.1% / -20.4%;
 * DMU storage 7.3x below Task Superscalar.
 */

#include <iostream>

#include "core/tss_runtime.hh"
#include "driver/campaign/campaign.hh"
#include "driver/campaign/engine.hh"
#include "driver/report/aggregate.hh"
#include "runtime/scheduler.hh"
#include "sim/table.hh"

using namespace tdm;
namespace cmp = tdm::driver::campaign;

int
main(int argc, char **argv)
{
    cmp::CampaignEngine engine(cmp::benchEngineOptions(argc, argv));
    cmp::CampaignResult rep = engine.run(cmp::makeCampaign("fig13"));

    sim::Table ts("Figure 13 (top): speedup vs SW+FIFO");
    sim::Table te("Figure 13 (bottom): normalized EDP vs SW+FIFO");
    ts.header({"bench", "Carbon", "TaskSS", "OptTDM"});
    te.header({"bench", "Carbon", "TaskSS", "OptTDM"});

    std::vector<double> sp_carbon, sp_tss, sp_tdm;
    std::vector<double> edp_carbon, edp_tss, edp_tdm;

    for (const auto &w : wl::allWorkloads()) {
        const auto &base =
            rep.at(cmp::pointLabel(w.name, "sw", "fifo")).summary;
        const auto &carbon =
            rep.at(cmp::pointLabel(w.name, "carbon", "fifo")).summary;
        const auto &tss =
            rep.at(cmp::pointLabel(w.name, "tss", "fifo")).summary;

        double best_sp = 0.0, best_edp = 0.0;
        for (const auto &s : rt::allSchedulerNames()) {
            const auto &r =
                rep.at(cmp::pointLabel(w.name, "tdm", s)).summary;
            double sp = driver::speedup(base, r);
            if (sp > best_sp) {
                best_sp = sp;
                best_edp = driver::normalizedEdp(base, r);
            }
        }

        double c_sp = driver::speedup(base, carbon);
        double t_sp = driver::speedup(base, tss);
        ts.row().cell(w.shortName).cell(c_sp, 3).cell(t_sp, 3).cell(
            best_sp, 3);
        te.row()
            .cell(w.shortName)
            .cell(driver::normalizedEdp(base, carbon), 3)
            .cell(driver::normalizedEdp(base, tss), 3)
            .cell(best_edp, 3);
        sp_carbon.push_back(c_sp);
        sp_tss.push_back(t_sp);
        sp_tdm.push_back(best_sp);
        edp_carbon.push_back(driver::normalizedEdp(base, carbon));
        edp_tss.push_back(driver::normalizedEdp(base, tss));
        edp_tdm.push_back(best_edp);
    }
    ts.row()
        .cell("AVG")
        .cell(driver::report::geomean(sp_carbon), 3)
        .cell(driver::report::geomean(sp_tss), 3)
        .cell(driver::report::geomean(sp_tdm), 3);
    te.row()
        .cell("AVG")
        .cell(driver::report::geomean(edp_carbon), 3)
        .cell(driver::report::geomean(edp_tss), 3)
        .cell(driver::report::geomean(edp_tdm), 3);
    ts.print(std::cout);
    std::cout << '\n';
    te.print(std::cout);

    std::cout << "\npaper AVG speedups: Carbon 1.019, TaskSS 1.081, "
                 "TDM 1.123; EDP 0.949 / 0.859 / 0.796\n";

    cpu::MachineConfig cfg;
    std::cout << "\n== Hardware cost (Section VI-C) ==\n";
    sim::Table th;
    th.header({"runtime", "storage KB", "area mm^2"});
    for (auto type : core::allRuntimeTypes()) {
        auto spec = core::runtimeSpec(type, cfg);
        th.row().cell(spec.displayName).cell(spec.hwStorageKB, 2).cell(
            spec.hwAreaMm2, 3);
    }
    th.print(std::cout);
    auto tdm_spec = core::runtimeSpec(core::RuntimeType::Tdm, cfg);
    auto tss_spec =
        core::runtimeSpec(core::RuntimeType::TaskSuperscalar, cfg);
    std::cout << "TaskSS/TDM storage ratio: "
              << tss_spec.hwStorageKB / tdm_spec.hwStorageKB
              << "x (paper: 7.3x)\n";
    std::cout << "campaign: " << rep.jobs.size() << " points, "
              << rep.simulated << " simulated, " << rep.cacheHits
              << " cache hits, " << rep.threads << " threads, "
              << rep.wallMs / 1000.0 << " s\n";
    return rep.allOk() ? 0 : 1;
}
