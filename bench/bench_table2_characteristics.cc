/**
 * @file
 * Table II: number of tasks and average task duration per benchmark at
 * the optimal granularity for the software runtime and for TDM.
 */

#include <iostream>

#include "sim/table.hh"
#include "workloads/registry.hh"

using namespace tdm;

int
main()
{
    sim::Table t("Table II: benchmark characteristics");
    t.header({"benchmark", "SW #tasks", "SW dur(us)", "TDM #tasks",
              "TDM dur(us)"});

    double sw_tasks = 0, sw_us = 0, tdm_tasks = 0, tdm_us = 0;
    unsigned n = 0;
    for (const auto &w : wl::allWorkloads()) {
        rt::TaskGraph sw = w.build(wl::WorkloadParams{});
        wl::WorkloadParams tp;
        tp.tdmOptimal = true;
        rt::TaskGraph tdm = w.build(tp);
        t.row()
            .cell(w.name)
            .cell(static_cast<std::uint64_t>(sw.numTasks()))
            .cell(sw.avgTaskUs(), 0)
            .cell(static_cast<std::uint64_t>(tdm.numTasks()))
            .cell(tdm.avgTaskUs(), 0);
        sw_tasks += sw.numTasks();
        sw_us += sw.avgTaskUs();
        tdm_tasks += tdm.numTasks();
        tdm_us += tdm.avgTaskUs();
        ++n;
    }
    t.row()
        .cell("Average")
        .cell(sw_tasks / n, 0)
        .cell(sw_us / n, 0)
        .cell(tdm_tasks / n, 0)
        .cell(tdm_us / n, 0);
    t.print(std::cout);
    std::cout << "\npaper averages: SW 6584 tasks / 4976 us, "
                 "TDM 8056 tasks / 4771 us\n";
    return 0;
}
