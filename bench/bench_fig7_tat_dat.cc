/**
 * @file
 * Figure 7: performance with different TAT and DAT sizes (512..4096),
 * normalized to an ideal DMU with unlimited entries and equal latency.
 * Shown for the sensitive benchmarks (cholesky, ferret, histogram,
 * LU, QR) plus the geometric mean over all nine.
 *
 * The study is declared as a spec grid (the same API behind *.campaign
 * files) and executes on the campaign engine; pass --threads N to
 * control the pool (default: all hardware threads).
 *
 * Paper reference point: 2048-entry TAT and DAT lose only ~0.9% vs the
 * ideal on average.
 */

#include <iostream>
#include <string>

#include "driver/campaign/engine.hh"
#include "driver/report/aggregate.hh"
#include "driver/spec/grid.hh"
#include "sim/table.hh"

using namespace tdm;
namespace cmp = tdm::driver::campaign;
namespace spc = tdm::driver::spec;

namespace {

/**
 * Shared methodology (Section V-A): the Age policy executes tasks in
 * creation order whatever the creation run-ahead, so alias-table
 * capacity is the only variable (FIFO would conflate capacity with its
 * own window-order effects). Unlimited list arrays, no creation
 * throttle, and no memory model, so capacity stalls are isolated.
 */
spc::Grid
baseGrid()
{
    return spc::Grid()
        .set("runtime", "tdm")
        .set("scheduler", "age")
        .set("dmu.sla_entries", "65536")
        .set("dmu.dla_entries", "65536")
        .set("dmu.rla_entries", "65536")
        .set("machine.throttle_tasks", "1073741824")
        .set("machine.mem_model", "false")
        .label("{workload}/tat{dmu.tat_entries}/dat{dmu.dat_entries}");
}

std::string
pointLabel(const std::string &wl_name, unsigned tat, unsigned dat)
{
    return wl_name + "/tat" + std::to_string(tat) + "/dat"
         + std::to_string(dat);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<unsigned> sizes = {512, 1024, 2048, 4096};
    const unsigned ideal = 65536;
    const std::vector<std::string> shown = {"cholesky", "ferret",
                                            "histogram", "lu", "qr"};

    std::vector<std::string> workloads;
    for (const auto &w : wl::allWorkloads())
        workloads.push_back(w.name);

    // The Ready Queue tracks the TAT size, so the two zip together.
    std::vector<std::vector<std::string>> tatRows, idealRow;
    for (unsigned tat : sizes)
        tatRows.push_back({std::to_string(tat), std::to_string(tat)});
    idealRow.push_back({std::to_string(ideal), std::to_string(ideal)});

    spc::Grid grid = baseGrid()
        .axis("workload", workloads)
        .zip({"dmu.tat_entries", "dmu.ready_queue_entries"}, tatRows)
        .axis("dmu.dat_entries", spc::valueStrings({512, 1024, 2048,
                                                    4096}));
    spc::Grid idealGrid = baseGrid()
        .axis("workload", workloads)
        .zip({"dmu.tat_entries", "dmu.ready_queue_entries"}, idealRow)
        .axis("dmu.dat_entries", spc::valueStrings({65536}));

    cmp::CampaignEngine engine(cmp::benchEngineOptions(argc, argv));
    cmp::CampaignResult rep =
        engine.run(grid.toCampaign("fig7", "TAT/DAT sizing sweep"));
    cmp::CampaignResult idealRep = engine.run(
        idealGrid.toCampaign("fig7_ideal", "unlimited-DMU baseline"));

    auto makespan = [](const cmp::JobResult &j) {
        return j.summary.completed
                   ? static_cast<double>(j.summary.makespan)
                   : -1.0;
    };

    for (unsigned tat : sizes) {
        sim::Table t("Figure 7: perf vs ideal, TAT="
                     + std::to_string(tat));
        std::vector<std::string> head = {"bench"};
        for (unsigned dat : sizes)
            head.push_back("DAT " + std::to_string(dat));
        t.header(head);
        auto relPerf = [&](const std::string &name, unsigned dat) {
            const double base = makespan(
                idealRep.at(pointLabel(name, ideal, ideal)));
            const double v =
                makespan(rep.at(pointLabel(name, tat, dat)));
            return v > 0 && base > 0 ? base / v : 0.0;
        };
        for (const auto &name : shown) {
            auto &row = t.row().cell(wl::findWorkload(name).shortName);
            for (unsigned dat : sizes)
                row.cell(relPerf(name, dat), 3);
        }
        auto &avg = t.row().cell("AVG(all 9)");
        for (unsigned dat : sizes) {
            std::vector<double> v;
            for (const auto &name : workloads)
                v.push_back(relPerf(name, dat));
            avg.cell(driver::report::geomean(v), 3);
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper: TAT=DAT=2048 -> 0.991 of ideal on average\n";
    std::cout << "campaign: " << rep.jobs.size() + idealRep.jobs.size()
              << " points, " << rep.simulated + idealRep.simulated
              << " simulated, " << rep.threads << " threads\n";
    return rep.allOk() && idealRep.allOk() ? 0 : 1;
}
