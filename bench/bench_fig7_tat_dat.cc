/**
 * @file
 * Figure 7: performance with different TAT and DAT sizes (512..4096),
 * normalized to an ideal DMU with unlimited entries and equal latency.
 * Shown for the sensitive benchmarks (cholesky, ferret, histogram,
 * LU, QR) plus the geometric mean over all nine.
 *
 * Paper reference point: 2048-entry TAT and DAT lose only ~0.9% vs the
 * ideal on average.
 */

#include <iostream>
#include <map>

#include "driver/experiment.hh"
#include "driver/report.hh"
#include "sim/table.hh"

using namespace tdm;

namespace {

double
runWith(const std::string &wl_name, unsigned tat, unsigned dat)
{
    driver::Experiment e;
    e.workload = wl_name;
    e.runtime = core::RuntimeType::Tdm;
    // The Age policy executes tasks in creation order whatever the
    // creation run-ahead, so alias-table capacity is the only variable
    // (FIFO would conflate capacity with its own window-order effects:
    // a small TAT accidentally improves FIFO's schedule on cholesky).
    e.scheduler = "age";
    e.config.dmu.tatEntries = tat;
    e.config.dmu.datEntries = dat;
    e.config.dmu.readyQueueEntries = tat;
    // Paper methodology (Section V-A): unlimited list arrays, and no
    // software creation throttle, so the alias tables are the only
    // capacity limit.
    e.config.dmu.slaEntries = 65536;
    e.config.dmu.dlaEntries = 65536;
    e.config.dmu.rlaEntries = 65536;
    e.config.throttleTasks = 1u << 30;
    // Isolate capacity stalls: deep creation run-ahead perturbs L2
    // locality in our region-cache model, which would mask (and for
    // cholesky even invert) the structural effect the paper measures.
    e.config.enableMemModel = false;
    auto s = driver::run(e);
    return s.completed ? static_cast<double>(s.makespan) : -1.0;
}

} // namespace

int
main()
{
    const std::vector<unsigned> sizes = {512, 1024, 2048, 4096};
    const unsigned ideal = 65536;
    const std::vector<std::string> shown = {"cholesky", "ferret",
                                            "histogram", "lu", "qr"};

    // Relative performance per benchmark per (tat, dat).
    std::map<std::string, std::map<std::pair<unsigned, unsigned>,
                                   double>> perf;
    for (const auto &w : wl::allWorkloads()) {
        double base = runWith(w.name, ideal, ideal);
        for (unsigned tat : sizes) {
            for (unsigned dat : sizes) {
                double t = runWith(w.name, tat, dat);
                perf[w.name][{tat, dat}] =
                    t > 0 && base > 0 ? base / t : 0.0;
            }
        }
    }

    for (unsigned tat : sizes) {
        sim::Table t("Figure 7: perf vs ideal, TAT="
                     + std::to_string(tat));
        std::vector<std::string> head = {"bench"};
        for (unsigned dat : sizes)
            head.push_back("DAT " + std::to_string(dat));
        t.header(head);
        for (const auto &name : shown) {
            auto &row = t.row().cell(wl::findWorkload(name).shortName);
            for (unsigned dat : sizes)
                row.cell(perf[name][{tat, dat}], 3);
        }
        auto &avg = t.row().cell("AVG(all 9)");
        for (unsigned dat : sizes) {
            std::vector<double> v;
            for (const auto &w : wl::allWorkloads())
                v.push_back(perf[w.name][{tat, dat}]);
            avg.cell(driver::geomean(v), 3);
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "paper: TAT=DAT=2048 -> 0.991 of ideal on average\n";
    return 0;
}
