/**
 * @file
 * Figure 8: performance with different successor / dependence / reader
 * list-array sizes, normalized to an ideal DMU with unlimited entries.
 *
 * Paper reference points: 128 entries in any list array is clearly
 * suboptimal; 1024 entries saturate (~1.1% below ideal on average).
 */

#include <iostream>

#include "driver/experiment.hh"
#include "driver/report/aggregate.hh"
#include "sim/table.hh"

using namespace tdm;

namespace {

double
runWith(const std::string &wl_name, unsigned sla, unsigned dla,
        unsigned rla)
{
    driver::Experiment e;
    e.workload = wl_name;
    e.runtime = core::RuntimeType::Tdm;
    e.config.scheduler = "fifo";
    e.config.dmu.slaEntries = sla;
    e.config.dmu.dlaEntries = dla;
    e.config.dmu.rlaEntries = rla;
    // Paper methodology (Section V-A): no software creation throttle;
    // the TAT/DAT (2048) and the list arrays bound the run-ahead.
    e.config.throttleTasks = 1u << 30;
    e.config.enableMemModel = false; // isolate capacity stalls (fig 7)
    auto s = driver::run(e);
    return s.completed ? static_cast<double>(s.makespan) : -1.0;
}

} // namespace

int
main()
{
    const std::vector<unsigned> sizes = {128, 512, 1024, 2048};
    const unsigned ideal = 65536;
    // List-array pressure comes from in-flight successor/reader lists:
    // the dense-graph benchmarks are the interesting ones.
    const std::vector<std::string> used = {"cholesky", "histogram", "lu",
                                           "qr", "dedup"};

    std::vector<double> base;
    for (const auto &name : used)
        base.push_back(runWith(name, ideal, ideal, ideal));

    auto avg_perf = [&](unsigned sla, unsigned dla, unsigned rla) {
        std::vector<double> v;
        for (std::size_t i = 0; i < used.size(); ++i) {
            double t = runWith(used[i], sla, dla, rla);
            v.push_back(t > 0 ? base[i] / t : 0.0);
        }
        return driver::report::geomean(v);
    };

    sim::Table t1("Figure 8a: all three list arrays sized equally");
    t1.header({"entries", "perf vs ideal"});
    for (unsigned s : sizes)
        t1.row().cell(static_cast<std::uint64_t>(s)).cell(
            avg_perf(s, s, s), 3);
    t1.print(std::cout);

    std::cout << '\n';
    sim::Table t2("Figure 8b: one array varied, others at 1024");
    t2.header({"entries", "vary SLA", "vary DLA", "vary RLA"});
    for (unsigned s : sizes) {
        t2.row()
            .cell(static_cast<std::uint64_t>(s))
            .cell(avg_perf(s, 1024, 1024), 3)
            .cell(avg_perf(1024, s, 1024), 3)
            .cell(avg_perf(1024, 1024, s), 3);
    }
    t2.print(std::cout);
    std::cout << "\npaper: 128 entries suboptimal anywhere; 1024 "
                 "entries ~0.989 of ideal on average\n";
    return 0;
}
