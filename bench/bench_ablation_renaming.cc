/**
 * @file
 * Ablation: task/dependence ID renaming (Section III-B1). The alias
 * tables translate 64-bit runtime identifiers into small internal IDs;
 * the paper credits this with shrinking the list arrays by 5.8x and
 * replacing associative lookups with direct accesses. This bench
 * recomputes the list-array storage with and without renaming, and the
 * total DMU storage both ways.
 */

#include <iostream>

#include "dmu/geometry.hh"
#include "sim/table.hh"

using namespace tdm;

int
main()
{
    dmu::DmuConfig cfg;

    // With renaming: IDs are log2(table entries) bits, list pointers
    // log2(list entries) bits (the shipped geometry).
    double with_kb = 0.0;
    for (const auto &s : dmu::sramSpecs(cfg)) {
        if (s.name == "SLA" || s.name == "DLA" || s.name == "RLA")
            with_kb += s.storageKB();
    }

    // Without renaming: lists store the 64-bit identifiers the runtime
    // uses (descriptor / dependence addresses), and the Next field must
    // be pointer-sized too.
    unsigned elems = cfg.elemsPerEntry;
    double raw_bits_per_entry = elems * 64.0 + 64.0;
    double raw_kb = 3.0 * cfg.slaEntries * raw_bits_per_entry / 8.0
                  / 1024.0;

    sim::Table t("Ablation: internal ID renaming (Section III-B1)");
    t.header({"design", "list-array KB", "lookup style"});
    t.row().cell("with renaming (11-bit IDs)").cell(with_kb, 2).cell(
        "1 assoc lookup + direct accesses");
    t.row().cell("without renaming (64-bit)").cell(raw_kb, 2).cell(
        "associative lookup per access");
    t.print(std::cout);

    std::cout << "list-array storage reduction: " << raw_kb / with_kb
              << "x (paper: 5.8x)\n\n";

    // Whole-DMU comparison: without renaming the alias tables vanish
    // but every table/list entry holds 64-bit identifiers.
    double total_with = dmu::totalStorageKB(cfg);
    double task_tbl_raw =
        cfg.taskTableEntries() * (48.0 + 2 * 64 + 2 * 64 + 2) / 8.0
        / 1024.0;
    double dep_tbl_raw = cfg.depTableEntries() * (64.0 + 64.0) / 8.0
                       / 1024.0;
    double rq_raw = cfg.readyQueueEntries * 64.0 / 8.0 / 1024.0;
    double total_raw = task_tbl_raw + dep_tbl_raw + raw_kb + rq_raw;
    std::cout << "total DMU storage: " << total_with
              << " KB with renaming (incl. 37.5 KB of alias tables) vs "
              << total_raw << " KB without\n";
    return 0;
}
