/**
 * @file
 * Figure 11: average number of occupied DAT sets (out of 256) with
 * static index-bit selection (starting at bits 0/4/8/12/16) versus the
 * proposed dynamic selection that starts at log2(dependence size).
 *
 * Paper reference points: static occupancy swings from ~1% to ~88%
 * depending on the benchmark's block size; DYN maximizes occupancy for
 * every benchmark.
 */

#include <iostream>

#include "driver/experiment.hh"
#include "sim/table.hh"

using namespace tdm;

namespace {

double
occupancy(const std::string &wl_name, bool dynamic, unsigned bit)
{
    driver::Experiment e;
    e.workload = wl_name;
    e.runtime = core::RuntimeType::Tdm;
    e.config.scheduler = "fifo";
    e.config.dmu.dynamicDatIndex = dynamic;
    e.config.dmu.staticDatIndexBit = bit;
    auto s = driver::run(e);
    return s.machine.datAvgOccupiedSets;
}

} // namespace

int
main()
{
    const std::vector<unsigned> bits = {0, 4, 8, 12, 16};
    const std::vector<std::string> shown = {
        "blackscholes", "cholesky", "fluidanimate", "histogram", "qr"};

    sim::Table t("Figure 11: avg occupied DAT sets (of 256)");
    std::vector<std::string> head = {"bench"};
    for (unsigned b : bits)
        head.push_back("bit " + std::to_string(b));
    head.push_back("DYN");
    t.header(head);

    for (const auto &name : shown) {
        auto &row = t.row().cell(wl::findWorkload(name).shortName);
        for (unsigned b : bits)
            row.cell(occupancy(name, false, b), 1);
        row.cell(occupancy(name, true, 0), 1);
    }
    t.print(std::cout);
    std::cout << "\npaper: static selection occupancy ranges 1%-88% and "
                 "the best bit differs per benchmark; DYN maximizes "
                 "occupancy everywhere\n";
    return 0;
}
