/**
 * @file
 * Table III: DMU storage and area requirements per structure, plus the
 * hardware-cost comparison against Task Superscalar and Carbon
 * (Section VI-C).
 */

#include <iostream>

#include "dmu/geometry.hh"
#include "hwbaselines/carbon.hh"
#include "hwbaselines/task_superscalar.hh"
#include "power/cacti_model.hh"
#include "sim/table.hh"

using namespace tdm;

int
main()
{
    dmu::DmuConfig cfg;
    pwr::CactiModel model(22);

    sim::Table t("Table III: DMU storage (KB) and area (mm^2)");
    t.header({"structure", "storage KB", "area mm^2", "read pJ",
              "leak mW"});
    for (const auto &s : dmu::sramSpecs(cfg)) {
        auto e = model.estimate(s);
        t.row()
            .cell(s.name)
            .cell(e.storageKB, 2)
            .cell(e.areaMm2, 3)
            .cell(e.readEnergyPj, 2)
            .cell(e.leakageMw, 3);
    }
    t.row()
        .cell("Total")
        .cell(dmu::totalStorageKB(cfg), 2)
        .cell(dmu::totalAreaMm2(cfg), 3)
        .cell("")
        .cell(dmu::totalLeakageMw(cfg), 3);
    t.print(std::cout);
    std::cout << "paper totals: 105.25 KB, 0.17 mm^2\n\n";

    hw::TssConfig tss;
    sim::Table t2("Task Superscalar structures (Section VI-C)");
    t2.header({"structure", "storage KB"});
    for (const auto &s : hw::tssSramSpecs(tss))
        t2.row().cell(s.name).cell(s.storageKB(), 2);
    t2.row().cell("Total").cell(hw::tssStorageKB(tss), 2);
    t2.print(std::cout);
    std::cout << "storage ratio TaskSS/DMU: "
              << hw::tssStorageKB(tss) / dmu::totalStorageKB(cfg)
              << "x (paper: 7.3x)\n";
    std::cout << "Carbon queues (32 cores): "
              << hw::carbonStorageKB(hw::CarbonConfig{}, 32) << " KB\n";
    return 0;
}
