/**
 * @file
 * Figure 9: performance degradation when the access time of all DMU
 * structures grows from 1 to 16 cycles, normalized to zero-latency
 * structures.
 *
 * Paper reference points: 0.2% average degradation at 1 cycle, 0.9% at
 * 16 cycles; only LU and QR are mildly sensitive.
 */

#include <iostream>

#include "driver/experiment.hh"
#include "driver/report/aggregate.hh"
#include "sim/table.hh"

using namespace tdm;

namespace {

double
runWith(const std::string &wl_name, unsigned cycles)
{
    driver::Experiment e;
    e.workload = wl_name;
    e.runtime = core::RuntimeType::Tdm;
    e.config.scheduler = "fifo";
    e.config.dmu.accessCycles = cycles;
    auto s = driver::run(e);
    return s.completed ? static_cast<double>(s.makespan) : -1.0;
}

} // namespace

int
main()
{
    const std::vector<unsigned> lats = {1, 4, 16};
    sim::Table t("Figure 9: speedup vs zero-latency DMU structures");
    t.header({"bench", "1 cycle", "4 cycles", "16 cycles"});

    std::vector<std::vector<double>> cols(lats.size());
    for (const auto &w : wl::allWorkloads()) {
        double base = runWith(w.name, 0);
        auto &row = t.row().cell(w.shortName);
        for (std::size_t i = 0; i < lats.size(); ++i) {
            double v = runWith(w.name, lats[i]);
            double rel = v > 0 && base > 0 ? base / v : 0.0;
            row.cell(rel, 4);
            cols[i].push_back(rel);
        }
    }
    auto &avg = t.row().cell("AVG");
    for (auto &c : cols)
        avg.cell(driver::report::geomean(c), 4);
    t.print(std::cout);
    std::cout << "\npaper AVG: 0.998 at 1 cycle, 0.991 at 16 cycles\n";
    return 0;
}
