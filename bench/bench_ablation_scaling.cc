/**
 * @file
 * Ablation: centralized-DMU scalability (Section III-D argues the
 * single DMU is not a bottleneck because its per-task service time is
 * orders of magnitude below task durations). We sweep the core count
 * and compare the software runtime against TDM, reporting the TDM
 * speedup and the DMU's busy fraction.
 */

#include <iostream>

#include "driver/experiment.hh"
#include "driver/report.hh"
#include "sim/table.hh"

using namespace tdm;

namespace {

driver::RunSummary
runWith(const std::string &wl_name, core::RuntimeType rt_,
        unsigned cores)
{
    driver::Experiment e;
    e.workload = wl_name;
    e.runtime = rt_;
    e.scheduler = "fifo";
    e.config.numCores = cores;
    // Mesh must fit cores + the DMU node.
    unsigned dim = 2;
    while (dim * dim < cores + 1)
        ++dim;
    e.config.mesh.width = dim;
    e.config.mesh.height = dim;
    return driver::run(e);
}

} // namespace

int
main()
{
    const std::vector<unsigned> core_counts = {8, 16, 32, 64};
    const std::vector<std::string> workloads = {"cholesky", "qr",
                                                "streamcluster"};
    for (const auto &w : workloads) {
        sim::Table t(w + ": TDM speedup vs SW across core counts");
        t.header({"cores", "SW ms", "TDM ms", "speedup"});
        for (unsigned c : core_counts) {
            auto sw = runWith(w, core::RuntimeType::Software, c);
            auto tdm = runWith(w, core::RuntimeType::Tdm, c);
            t.row().cell(static_cast<std::uint64_t>(c));
            if (sw.completed && tdm.completed) {
                t.cell(sw.timeMs, 2).cell(tdm.timeMs, 2).cell(
                    driver::speedup(sw, tdm), 3);
            } else {
                t.cell("n/a").cell("n/a").cell("n/a");
            }
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    std::cout << "expectation: the TDM advantage grows with the core "
                 "count (creation-bound masters throttle more workers), "
                 "and the centralized DMU never saturates\n";
    return 0;
}
