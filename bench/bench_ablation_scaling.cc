/**
 * @file
 * Ablation: centralized-DMU scalability (Section III-D argues the
 * single DMU is not a bottleneck because its per-task service time is
 * orders of magnitude below task durations). We sweep the core count
 * and compare the software runtime against TDM, reporting the TDM
 * speedup and the DMU's busy fraction.
 *
 * The experiment points come from the registered "ablation_scaling"
 * campaign and execute on the campaign engine; pass --threads N to
 * control the pool (default: all hardware threads).
 */

#include <iostream>
#include <memory>

#include "driver/campaign/campaign.hh"
#include "driver/campaign/engine.hh"
#include "driver/report/aggregate.hh"
#include "sim/logging.hh"
#include "sim/table.hh"

using namespace tdm;
namespace cmp = tdm::driver::campaign;

int
main(int argc, char **argv)
{
    cmp::CampaignEngine engine(cmp::benchEngineOptions(argc, argv));
    const cmp::Campaign c = cmp::makeCampaign("ablation_scaling");
    cmp::CampaignResult rep = engine.run(c);

    // The campaign orders points workload-major, core-count-minor,
    // SW before TDM ("cholesky/c8/sw", "cholesky/c8/tdm", ...); walk
    // the pairs so the tables can never drift from the definition.
    std::unique_ptr<sim::Table> t;
    std::string cur_wl;
    for (std::size_t i = 0; i + 1 < rep.jobs.size(); i += 2) {
        const auto &sw = rep.jobs[i];
        const auto &tdm = rep.jobs[i + 1];
        const std::string wl = sw.label.substr(0, sw.label.find('/'));
        const std::string cores = sw.label.substr(
            wl.size() + 2, sw.label.rfind('/') - wl.size() - 2);
        // Guard the pairing against future edits to the campaign
        // definition (extra runtimes, reordered loops).
        if (sw.label != wl + "/c" + cores + "/sw"
            || tdm.label != wl + "/c" + cores + "/tdm")
            sim::fatal("ablation_scaling points are no longer (sw, tdm) "
                       "pairs: got '", sw.label, "', '", tdm.label, "'");
        if (wl != cur_wl) {
            if (t) {
                t->print(std::cout);
                std::cout << '\n';
            }
            cur_wl = wl;
            t = std::make_unique<sim::Table>(
                wl + ": TDM speedup vs SW across core counts");
            t->header({"cores", "SW ms", "TDM ms", "speedup"});
        }
        t->row().cell(cores);
        if (sw.summary.completed && tdm.summary.completed) {
            t->cell(sw.summary.timeMs, 2)
                .cell(tdm.summary.timeMs, 2)
                .cell(driver::speedup(sw.summary, tdm.summary), 3);
        } else {
            t->cell("n/a").cell("n/a").cell("n/a");
        }
    }
    if (t) {
        t->print(std::cout);
        std::cout << '\n';
    }
    std::cout << "expectation: the TDM advantage grows with the core "
                 "count (creation-bound masters throttle more workers), "
                 "and the centralized DMU never saturates\n";
    std::cout << "campaign: " << rep.jobs.size() << " points, "
              << rep.simulated << " simulated, " << rep.cacheHits
              << " cache hits, " << rep.threads << " threads, "
              << rep.wallMs / 1000.0 << " s\n";
    return rep.allOk() ? 0 : 1;
}
