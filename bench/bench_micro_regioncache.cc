/**
 * @file
 * Microbenchmark of the region-LRU hot path: touches/second of the
 * flat intrusive-list + open-addressed-index RegionCache versus the
 * seed implementation (std::list nodes + an iterator unordered_map,
 * embedded below) measured in the same binary.
 *
 * Three access shapes exercise the paths the memory model hits:
 *  - hot-hits:  a resident working set touched round-robin — every
 *               touch is a hit that relinks the MRU (the seed paid a
 *               node alloc + two hash ops per hit);
 *  - thrash:    a working set twice the capacity swept sequentially —
 *               every touch misses and evicts (alloc/free churn);
 *  - sharer:    a skewed producer/consumer pattern with periodic
 *               invalidations, like writes broadcast to peer L1s.
 *
 * Both caches run the exact same deterministic schedule and must end
 * with identical hit/miss/eviction counters, byte occupancy and touch
 * outcomes; the benchmark aborts on divergence. No Google Benchmark
 * dependency so CI can always run it as a smoke test.
 *
 * Usage: bench_micro_regioncache [--touches N] [--min-speedup X]
 *   --touches N      touches per scenario per cache (default 2000000)
 *   --min-speedup X  exit non-zero unless the geometric-mean speedup
 *                    of the flat cache is at least X
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <unordered_map>

#include "mem/region_cache.hh"

using tdm::mem::RegionId;

namespace {

// ---------------------------------------------------------------------
// Reference cache: the seed implementation, verbatim in spirit — a
// std::list of nodes with an unordered_map of list iterators, paying a
// node allocation and two map rehash-path operations per touch.
// ---------------------------------------------------------------------

class RefRegionCache
{
  public:
    explicit RefRegionCache(std::uint64_t capacityBytes)
        : capacity_(capacityBytes)
    {
    }

    bool
    touch(RegionId id, std::uint64_t bytes)
    {
        auto it = map_.find(id);
        if (it != map_.end()) {
            used_ -= it->second->bytes;
            lru_.erase(it->second);
            map_.erase(it);
            std::uint64_t eff = std::min(bytes, capacity_);
            evictFor(eff);
            lru_.push_front(Node{id, eff});
            map_[id] = lru_.begin();
            used_ += eff;
            ++hits_;
            return true;
        }
        std::uint64_t eff = std::min(bytes, capacity_);
        evictFor(eff);
        lru_.push_front(Node{id, eff});
        map_[id] = lru_.begin();
        used_ += eff;
        ++misses_;
        return false;
    }

    bool contains(RegionId id) const { return map_.count(id) != 0; }

    bool
    invalidate(RegionId id)
    {
        auto it = map_.find(id);
        if (it == map_.end())
            return false;
        used_ -= it->second->bytes;
        lru_.erase(it->second);
        map_.erase(it);
        return true;
    }

    std::uint64_t usedBytes() const { return used_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::size_t residentRegions() const { return map_.size(); }

  private:
    struct Node
    {
        RegionId id;
        std::uint64_t bytes;
    };

    void
    evictFor(std::uint64_t bytes)
    {
        while (used_ + bytes > capacity_ && !lru_.empty()) {
            Node &victim = lru_.back();
            used_ -= victim.bytes;
            map_.erase(victim.id);
            lru_.pop_back();
            ++evictions_;
        }
    }

    std::uint64_t capacity_;
    std::uint64_t used_ = 0;
    std::list<Node> lru_;
    std::unordered_map<RegionId, std::list<Node>::iterator> map_;
    std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

// ---------------------------------------------------------------------
// Deterministic schedule shared by both caches.
// ---------------------------------------------------------------------

std::uint64_t
lcg(std::uint64_t x)
{
    return x * 6364136223846793005ull + 1442695040888963407ull;
}

struct Shape
{
    const char *name;
    std::uint64_t capacityBytes;
    std::uint64_t numRegions;
    std::uint64_t regionBytes;
    unsigned invalidateEvery; ///< 0: never
    bool skewed;              ///< 3/4 of touches land in the hot half
};

// The paper's machine: 32 KB L1s and a 4 MB L2 over ~16-256 KB tile
// regions. hot-hits models a resident L1 set, thrash an L2-overflowing
// sweep, sharer the write-invalidate traffic between peer L1s.
constexpr Shape shapes[] = {
    {"hot-hits", 32 * 1024, 7, 4096, 0, false},
    {"thrash", 32 * 1024, 16, 4096, 0, false},
    {"sharer", 4 * 1024 * 1024, 64, 65536, 13, true},
};

struct Result
{
    double touchesPerSec;
    std::uint64_t checksum;
    std::uint64_t hits, misses, evictions, used, resident;
};

template <typename Cache>
Result
runScenario(const Shape &shape, std::uint64_t touches)
{
    Cache cache(shape.capacityBytes);
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    std::uint64_t checksum = 0;

    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < touches; ++i) {
        rng = lcg(rng);
        std::uint64_t r = rng >> 33;
        RegionId id;
        if (shape.skewed) {
            // Three in four touches hit the hot half of the region set.
            std::uint64_t half = shape.numRegions / 2;
            id = (r & 3) ? r % half : half + r % half;
        } else {
            id = r % shape.numRegions;
        }
        checksum += cache.touch(id, shape.regionBytes) ? 1 : 0;
        if (shape.invalidateEvery && i % shape.invalidateEvery == 0) {
            rng = lcg(rng);
            checksum +=
                cache.invalidate((rng >> 33) % shape.numRegions) ? 2 : 0;
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();

    return Result{static_cast<double>(touches) / secs, checksum,
                  cache.hits(), cache.misses(), cache.evictions(),
                  cache.usedBytes(), cache.residentRegions()};
}

bool
sameOutcome(const Result &a, const Result &b)
{
    return a.checksum == b.checksum && a.hits == b.hits
        && a.misses == b.misses && a.evictions == b.evictions
        && a.used == b.used && a.resident == b.resident;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t touches = 2000000;
    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--touches") && i + 1 < argc)
            touches = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc)
            min_speedup = std::strtod(argv[++i], nullptr);
        else {
            std::fprintf(stderr,
                         "usage: %s [--touches N] [--min-speedup X]\n",
                         argv[0]);
            return 64;
        }
    }

    std::printf("region-LRU microbenchmark: %llu touches/scenario\n",
                static_cast<unsigned long long>(touches));
    std::printf("%-10s %15s %15s %9s\n", "scenario", "ref touch/s",
                "flat touch/s", "speedup");

    double log_sum = 0.0;
    int scenarios = 0;
    for (const Shape &shape : shapes) {
        Result ref = runScenario<RefRegionCache>(shape, touches);
        Result flat =
            runScenario<tdm::mem::RegionCache>(shape, touches);
        if (!sameOutcome(ref, flat)) {
            std::fprintf(
                stderr,
                "DIVERGENCE in %s: ref (h=%llu m=%llu e=%llu u=%llu "
                "r=%llu c=%llu) vs flat (h=%llu m=%llu e=%llu u=%llu "
                "r=%llu c=%llu)\n",
                shape.name, static_cast<unsigned long long>(ref.hits),
                static_cast<unsigned long long>(ref.misses),
                static_cast<unsigned long long>(ref.evictions),
                static_cast<unsigned long long>(ref.used),
                static_cast<unsigned long long>(ref.resident),
                static_cast<unsigned long long>(ref.checksum),
                static_cast<unsigned long long>(flat.hits),
                static_cast<unsigned long long>(flat.misses),
                static_cast<unsigned long long>(flat.evictions),
                static_cast<unsigned long long>(flat.used),
                static_cast<unsigned long long>(flat.resident),
                static_cast<unsigned long long>(flat.checksum));
            return 2;
        }
        double speedup = flat.touchesPerSec / ref.touchesPerSec;
        log_sum += std::log(speedup);
        ++scenarios;
        std::printf("%-10s %15.0f %15.0f %8.2fx\n", shape.name,
                    ref.touchesPerSec, flat.touchesPerSec, speedup);
    }
    double geomean = std::exp(log_sum / scenarios);
    std::printf("geomean speedup: %.2fx\n", geomean);

    if (min_speedup > 0.0 && geomean < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: geomean speedup %.2fx below required %.2fx\n",
                     geomean, min_speedup);
        return 1;
    }
    return 0;
}
