/**
 * @file
 * Figure 6: execution time with different task granularities under the
 * software runtime, normalized to the optimal granularity of each
 * benchmark (growing granularity along the axis, as in the paper).
 */

#include <algorithm>
#include <iostream>

#include "driver/experiment.hh"
#include "sim/table.hh"

using namespace tdm;

int
main()
{
    std::cout << "== Figure 6: exec time vs task granularity "
                 "(SW runtime, normalized to best) ==\n";
    for (const auto &w : wl::allWorkloads()) {
        if (w.granSweep.empty())
            continue; // dedup/ferret: granularity fixed by pipeline
        std::vector<double> times;
        for (double g : w.granSweep) {
            driver::Experiment e;
            e.workload = w.name;
            e.runtime = core::RuntimeType::Software;
            e.config.scheduler = "fifo";
            e.params.granularity = g;
            auto s = driver::run(e);
            times.push_back(s.completed ? s.timeMs : -1.0);
        }
        double best = 1e300;
        for (double t : times)
            if (t > 0)
                best = std::min(best, t);
        sim::Table t(w.name + " (" + w.granUnit + ")");
        t.header({"granularity", "time ms", "normalized"});
        for (std::size_t i = 0; i < times.size(); ++i) {
            t.row().cell(w.granSweep[i], 0);
            if (times[i] > 0)
                t.cell(times[i], 2).cell(times[i] / best, 3);
            else
                t.cell("n/a").cell("n/a");
        }
        t.print(std::cout);
        std::cout << '\n';
    }
    return 0;
}
