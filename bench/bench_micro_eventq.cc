/**
 * @file
 * Microbenchmark of the discrete-event kernel: events/second of the
 * intrusive pooled-event calendar queue versus a reference
 * std::function + std::priority_queue kernel (the seed implementation,
 * embedded below) measured in the same binary.
 *
 * Three schedule shapes exercise the calendar's levels:
 *  - uniform:    self-rescheduling actors with delays inside the
 *                near-future window (ring inserts, mostly appends);
 *  - bursty:     many events piling onto the same tick (tie ordering,
 *                single-bucket chains);
 *  - far-future: delays far beyond the window (overflow heap and
 *                migration).
 *
 * Both kernels run the exact same deterministic schedule and must
 * finish at the same tick; the benchmark aborts on divergence. No
 * Google Benchmark dependency so CI can always run it as a smoke test.
 *
 * Usage: bench_micro_eventq [--events N] [--min-speedup X]
 *   --events N       events per scenario per kernel (default 1000000)
 *   --min-speedup X  exit non-zero unless the geometric-mean speedup
 *                    of the pooled kernel is at least X
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <queue>
#include <vector>

#include "sim/event_queue.hh"

using tdm::sim::Tick;

namespace {

// ---------------------------------------------------------------------
// Reference kernel: the seed implementation, verbatim in spirit — a
// type-erased std::function per event pushed through a binary heap.
// ---------------------------------------------------------------------

class RefEventQueue
{
  public:
    using Fn = std::function<void()>;

    Tick now() const { return curTick_; }

    void
    scheduleIn(Tick delay, Fn fn)
    {
        heap_.push(Entry{curTick_ + delay, nextSeq_++, std::move(fn)});
    }

    std::uint64_t executed() const { return executed_; }

    Tick
    run()
    {
        while (!heap_.empty()) {
            Entry e = std::move(const_cast<Entry &>(heap_.top()));
            heap_.pop();
            curTick_ = e.when;
            ++executed_;
            e.fn();
        }
        return curTick_;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Fn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

// ---------------------------------------------------------------------
// Deterministic schedule shared by both kernels.
// ---------------------------------------------------------------------

constexpr unsigned numActors = 64;

std::uint64_t
lcg(std::uint64_t x)
{
    return x * 6364136223846793005ull + 1442695040888963407ull;
}

struct Shape
{
    const char *name;
    Tick minDelay;
    Tick spanDelay; ///< delay = minDelay + rng % spanDelay
    bool gated;     ///< counts toward the --min-speedup geomean
};

constexpr Shape shapes[] = {
    // The three canonical schedules (gated): near ring, tie ordering,
    // and coarse-wheel migration.
    {"uniform", 1, 2000, true},        // inside the 32768-tick window
    {"bursty", 1, 1, true},            // all actors collide per tick
    {"far-future", 40000, 360000, true}, // coarse wheel + migration
    // Delays crossing into the far overflow heap (> ~2.13M ticks
    // ahead). With only ~64 pending events a flat binary heap is near
    // optimal, so the calendar does not win this shape outright; lazy
    // heap migration (events drop straight from the heap into the
    // ring, never transiting the coarse wheel) keeps it close enough
    // to gate, pinning the tier against future regressions.
    {"heap-xtier", 1000000, 4000000, true},
};

// Each event carries the payload the machine model's continuations
// carry (core id, segment start, completion tick): three words beyond
// the owner pointer. That is what pushes the reference kernel's
// lambdas past std::function's small-buffer optimization — exactly the
// per-event heap allocation the seed simulator paid.

/** Self-rescheduling actor for the pooled typed-event kernel. */
struct Actor
{
    tdm::sim::EventQueue *eq;
    std::uint64_t remaining;
    std::uint64_t rng;
    Tick minDelay;
    Tick spanDelay;
    std::uint64_t checksum = 0;

    void
    hop(std::uint64_t core, Tick seg_start, Tick completion)
    {
        checksum += core + seg_start + completion;
        if (remaining == 0)
            return;
        --remaining;
        rng = lcg(rng);
        Tick d = minDelay + rng % spanDelay;
        eq->postIn<&Actor::hop>(d, this, rng % 32, eq->now(),
                                eq->now() + d);
    }
};

/** The same actor against the reference kernel, lambda-style. */
struct RefActor
{
    RefEventQueue *eq;
    std::uint64_t remaining;
    std::uint64_t rng;
    Tick minDelay;
    Tick spanDelay;
    std::uint64_t checksum = 0;

    void
    hop(std::uint64_t core, Tick seg_start, Tick completion)
    {
        checksum += core + seg_start + completion;
        if (remaining == 0)
            return;
        --remaining;
        rng = lcg(rng);
        Tick d = minDelay + rng % spanDelay;
        std::uint64_t c = rng % 32;
        Tick ss = eq->now(), cp = eq->now() + d;
        eq->scheduleIn(d, [this, c, ss, cp] { hop(c, ss, cp); });
    }
};

struct Result
{
    double eventsPerSec;
    Tick finalTick;
    std::uint64_t executed;
    std::uint64_t checksum;
};

template <typename Queue, typename TheActor>
Result
runScenario(const Shape &shape, std::uint64_t events)
{
    Queue eq;
    std::vector<TheActor> actors(numActors);
    std::uint64_t per = events / numActors;
    for (unsigned a = 0; a < numActors; ++a) {
        actors[a] = TheActor{&eq, per, 0x9e3779b97f4a7c15ull + a,
                             shape.minDelay, shape.spanDelay};
    }
    auto t0 = std::chrono::steady_clock::now();
    // Kick every actor off at its first hop; then drain.
    for (TheActor &a : actors)
        a.hop(0, 0, 0);
    Tick end = eq.run();
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    std::uint64_t check = 0;
    for (const TheActor &a : actors)
        check += a.checksum;
    return Result{static_cast<double>(eq.executed()) / secs, end,
                  eq.executed(), check};
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t events = 1000000;
    double min_speedup = 0.0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--events") && i + 1 < argc)
            events = std::strtoull(argv[++i], nullptr, 10);
        else if (!std::strcmp(argv[i], "--min-speedup") && i + 1 < argc)
            min_speedup = std::strtod(argv[++i], nullptr);
        else {
            std::fprintf(stderr,
                         "usage: %s [--events N] [--min-speedup X]\n",
                         argv[0]);
            return 64;
        }
    }

    std::printf("event-kernel microbenchmark: %llu events/scenario, "
                "%u actors\n",
                static_cast<unsigned long long>(events), numActors);
    std::printf("%-12s %15s %15s %9s\n", "scenario", "ref ev/s",
                "pooled ev/s", "speedup");

    double log_sum = 0.0;
    int scenarios = 0;
    for (const Shape &shape : shapes) {
        Result ref =
            runScenario<RefEventQueue, RefActor>(shape, events);
        Result pooled =
            runScenario<tdm::sim::EventQueue, Actor>(shape, events);
        if (ref.finalTick != pooled.finalTick
            || ref.executed != pooled.executed
            || ref.checksum != pooled.checksum) {
            std::fprintf(stderr,
                         "DIVERGENCE in %s: ref (tick %llu, %llu ev) vs "
                         "pooled (tick %llu, %llu ev)\n",
                         shape.name,
                         static_cast<unsigned long long>(ref.finalTick),
                         static_cast<unsigned long long>(ref.executed),
                         static_cast<unsigned long long>(pooled.finalTick),
                         static_cast<unsigned long long>(pooled.executed));
            return 2;
        }
        double speedup = pooled.eventsPerSec / ref.eventsPerSec;
        if (shape.gated) {
            log_sum += std::log(speedup);
            ++scenarios;
        }
        std::printf("%-12s %15.0f %15.0f %8.2fx%s\n", shape.name,
                    ref.eventsPerSec, pooled.eventsPerSec, speedup,
                    shape.gated ? "" : "  (informational)");
    }
    double geomean = std::exp(log_sum / scenarios);
    std::printf("geomean speedup (gated scenarios): %.2fx\n", geomean);

    if (min_speedup > 0.0 && geomean < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: geomean speedup %.2fx below required %.2fx\n",
                     geomean, min_speedup);
        return 1;
    }
    return 0;
}
