/**
 * @file
 * Tests for the per-core phase accounting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cpu/phase_stats.hh"

using namespace tdm;

TEST(PhaseBreakdown, FractionsSumToOne)
{
    cpu::PhaseBreakdown b;
    b.deps = 10;
    b.sched = 20;
    b.exec = 30;
    b.idle = 40;
    EXPECT_EQ(b.total(), 100u);
    EXPECT_EQ(b.busy(), 60u);
    double sum = b.fraction(cpu::Phase::Deps)
               + b.fraction(cpu::Phase::Sched)
               + b.fraction(cpu::Phase::Exec)
               + b.fraction(cpu::Phase::Idle);
    EXPECT_DOUBLE_EQ(sum, 1.0);
    EXPECT_DOUBLE_EQ(b.fraction(cpu::Phase::Idle), 0.4);
}

TEST(PhaseBreakdown, EmptyFractionIsZero)
{
    cpu::PhaseBreakdown b;
    EXPECT_DOUBLE_EQ(b.fraction(cpu::Phase::Exec), 0.0);
}

TEST(PhaseStats, AccumulatesPerCore)
{
    cpu::PhaseStats s(4);
    s.add(0, cpu::Phase::Deps, 100);
    s.add(0, cpu::Phase::Deps, 50);
    s.add(1, cpu::Phase::Exec, 200);
    s.add(3, cpu::Phase::Idle, 300);
    EXPECT_EQ(s.core(0).deps, 150u);
    EXPECT_EQ(s.core(1).exec, 200u);
    EXPECT_EQ(s.master().deps, 150u);

    cpu::PhaseBreakdown workers = s.workersTotal();
    EXPECT_EQ(workers.exec, 200u);
    EXPECT_EQ(workers.idle, 300u);
    EXPECT_EQ(workers.deps, 0u); // master excluded

    cpu::PhaseBreakdown chip = s.chipTotal();
    EXPECT_EQ(chip.total(), 650u);
}

TEST(PhaseStats, DumpContainsAllCores)
{
    cpu::PhaseStats s(2);
    s.add(1, cpu::Phase::Sched, 42);
    std::ostringstream oss;
    s.dump(oss);
    EXPECT_NE(oss.str().find("core0"), std::string::npos);
    EXPECT_NE(oss.str().find("sched=42"), std::string::npos);
}

TEST(PhaseStats, PhaseNames)
{
    EXPECT_STREQ(cpu::toString(cpu::Phase::Deps), "DEPS");
    EXPECT_STREQ(cpu::toString(cpu::Phase::Sched), "SCHED");
    EXPECT_STREQ(cpu::toString(cpu::Phase::Exec), "EXEC");
    EXPECT_STREQ(cpu::toString(cpu::Phase::Idle), "IDLE");
}

TEST(PhaseStatsDeath, OutOfRangeCore)
{
    cpu::PhaseStats s(2);
    EXPECT_DEATH(s.add(2, cpu::Phase::Exec, 1), "out of range");
}
