/**
 * @file
 * Tests of the fitted CACTI-style model and the DMU storage geometry.
 * The headline check is Table III: the default DMU configuration must
 * reproduce the paper's storage (105.25 KB total) exactly and the area
 * (0.17 mm^2) closely.
 */

#include <gtest/gtest.h>

#include "dmu/geometry.hh"
#include "power/cacti_model.hh"

using namespace tdm;

TEST(Cacti, AreaScalesWithBits)
{
    pwr::CactiModel m(22);
    pwr::SramSpec small{"s", 256, 32, 1, 0};
    pwr::SramSpec big{"b", 4096, 32, 1, 0};
    EXPECT_GT(m.estimate(big).areaMm2, m.estimate(small).areaMm2);
}

TEST(Cacti, AssociativityCostsArea)
{
    pwr::CactiModel m(22);
    pwr::SramSpec direct{"d", 2048, 75, 1, 0};
    pwr::SramSpec assoc{"a", 2048, 75, 8, 64};
    EXPECT_GT(m.estimate(assoc).areaMm2, m.estimate(direct).areaMm2);
    EXPECT_GT(m.estimate(assoc).readEnergyPj,
              m.estimate(direct).readEnergyPj);
}

TEST(Cacti, NodeScaling)
{
    pwr::SramSpec s{"s", 2048, 92, 1, 0};
    double a22 = pwr::CactiModel(22).estimate(s).areaMm2;
    double a44 = pwr::CactiModel(44).estimate(s).areaMm2;
    EXPECT_NEAR(a44 / a22, 4.0, 1e-9);
}

// ---- Table III: storage per structure (KB) ----

TEST(DmuGeometry, TableIIIStorageExact)
{
    dmu::DmuConfig cfg; // paper defaults
    auto specs = dmu::sramSpecs(cfg);
    ASSERT_EQ(specs.size(), 8u);

    // Paper: TaskTable 23.00, DepTable 5.25, TAT 18.75, DAT 18.75,
    // SLA 12.25, DLA 12.25, RLA 12.25, ReadyQ 2.75 (KB).
    EXPECT_DOUBLE_EQ(specs[0].storageKB(), 23.00); // TaskTable
    EXPECT_DOUBLE_EQ(specs[1].storageKB(), 5.25);  // DepTable
    EXPECT_DOUBLE_EQ(specs[2].storageKB(), 18.75); // TAT
    EXPECT_DOUBLE_EQ(specs[3].storageKB(), 18.75); // DAT
    EXPECT_DOUBLE_EQ(specs[4].storageKB(), 12.25); // SLA
    EXPECT_DOUBLE_EQ(specs[5].storageKB(), 12.25); // DLA
    EXPECT_DOUBLE_EQ(specs[6].storageKB(), 12.25); // RLA
    EXPECT_DOUBLE_EQ(specs[7].storageKB(), 2.75);  // ReadyQ

    EXPECT_DOUBLE_EQ(dmu::totalStorageKB(cfg), 105.25);
}

TEST(DmuGeometry, TableIIIAreaClose)
{
    dmu::DmuConfig cfg;
    pwr::CactiModel m(22);
    auto specs = dmu::sramSpecs(cfg);

    // Paper: 0.026, 0.013, 0.031, 0.031, 0.019, 0.019, 0.019, 0.012.
    const double expected[] = {0.026, 0.013, 0.031, 0.031,
                               0.019, 0.019, 0.019, 0.012};
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_NEAR(m.estimate(specs[i]).areaMm2, expected[i], 0.003)
            << specs[i].name;
    }
    EXPECT_NEAR(dmu::totalAreaMm2(cfg), 0.17, 0.01);
}

TEST(DmuGeometry, IdWidthsFollowTableSizes)
{
    dmu::DmuConfig cfg;
    EXPECT_EQ(cfg.taskIdBits(), 11u);
    EXPECT_EQ(cfg.depIdBits(), 11u);
    EXPECT_EQ(cfg.slaPtrBits(), 10u);

    dmu::DmuConfig big;
    big.tatEntries = 4096;
    EXPECT_EQ(big.taskIdBits(), 12u);
}

TEST(DmuGeometry, StorageShrinksWithSmallerTables)
{
    dmu::DmuConfig small;
    small.tatEntries = 512;
    small.datEntries = 512;
    small.slaEntries = 128;
    small.dlaEntries = 128;
    small.rlaEntries = 128;
    small.readyQueueEntries = 512;
    EXPECT_LT(dmu::totalStorageKB(small), dmu::totalStorageKB({}));
}

TEST(DmuGeometry, LeakageIsMilliwattScale)
{
    // The paper reports DMU power below 0.01% of a ~30 W chip.
    double mw = dmu::totalLeakageMw(dmu::DmuConfig{});
    EXPECT_GT(mw, 0.1);
    EXPECT_LT(mw, 10.0);
}
