/**
 * @file
 * Tests for the execution timeline recorder and its machine
 * integration: every task appears exactly once, per-core intervals
 * never overlap, and parallelism statistics are sane.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>

#include "core/machine.hh"
#include "workloads/registry.hh"

using namespace tdm;

TEST(TaskTrace, ParallelismStats)
{
    core::TaskTrace t;
    t.record(0, 0, 0, 100, 0);
    t.record(1, 1, 0, 100, 0);
    t.record(2, 0, 100, 200, 0);
    EXPECT_DOUBLE_EQ(t.avgParallelism(200), 1.5);
    EXPECT_EQ(t.peakParallelism(), 2u);
}

TEST(TaskTrace, PeakCountsBackToBackOnce)
{
    core::TaskTrace t;
    t.record(0, 0, 0, 100, 0);
    t.record(1, 0, 100, 200, 0); // same core, adjacent
    EXPECT_EQ(t.peakParallelism(), 1u);
}

TEST(TaskTrace, ChromeExportWellFormed)
{
    core::TaskTrace t;
    t.record(3, 2, 2000, 4000, 7);
    std::ostringstream oss;
    t.writeChromeTrace(oss, "demo");
    std::string s = oss.str();
    EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(s.find("task3/k7"), std::string::npos);
    EXPECT_NE(s.find("\"tid\":2"), std::string::npos);
    EXPECT_EQ(s.front(), '{');
    EXPECT_EQ(s.back(), '}');
}

TEST(TaskTraceMachine, EveryTaskTracedOnce)
{
    wl::WorkloadParams p;
    p.granularity = 262144; // small cholesky
    rt::TaskGraph g = wl::buildWorkload("cholesky", p);
    cpu::MachineConfig cfg;
    cfg.numCores = 8;
    core::Machine m(cfg, g, core::RuntimeType::Tdm);
    m.enableTrace();
    auto res = m.run();
    ASSERT_TRUE(res.completed);

    ASSERT_EQ(m.trace().size(), g.numTasks());
    std::vector<unsigned> seen(g.numTasks(), 0);
    for (const auto &r : m.trace().records()) {
        ASSERT_LT(r.task, g.numTasks());
        ++seen[r.task];
        EXPECT_LT(r.start, r.end);
        EXPECT_LE(r.end, res.makespan);
        EXPECT_LT(r.core, cfg.numCores);
    }
    for (unsigned s : seen)
        EXPECT_EQ(s, 1u);
}

TEST(TaskTraceMachine, PerCoreIntervalsDisjoint)
{
    wl::WorkloadParams p;
    p.granularity = 262144;
    rt::TaskGraph g = wl::buildWorkload("cholesky", p);
    cpu::MachineConfig cfg;
    cfg.numCores = 8;
    core::Machine m(cfg, g, core::RuntimeType::Software);
    m.enableTrace();
    ASSERT_TRUE(m.run().completed);

    std::map<sim::CoreId, std::vector<std::pair<sim::Tick, sim::Tick>>>
        per_core;
    for (const auto &r : m.trace().records())
        per_core[r.core].emplace_back(r.start, r.end);
    for (auto &[core_id, ivals] : per_core) {
        std::sort(ivals.begin(), ivals.end());
        for (std::size_t i = 1; i < ivals.size(); ++i)
            EXPECT_LE(ivals[i - 1].second, ivals[i].first)
                << "overlap on core " << core_id;
    }
}

TEST(TaskTraceMachine, ParallelismBoundedByCores)
{
    wl::WorkloadParams p;
    p.granularity = 262144;
    rt::TaskGraph g = wl::buildWorkload("cholesky", p);
    cpu::MachineConfig cfg;
    cfg.numCores = 8;
    core::Machine m(cfg, g, core::RuntimeType::Tdm);
    m.enableTrace();
    auto res = m.run();
    ASSERT_TRUE(res.completed);
    EXPECT_LE(m.trace().peakParallelism(), cfg.numCores);
    EXPECT_LE(m.trace().avgParallelism(res.makespan), cfg.numCores);
    EXPECT_GT(m.trace().avgParallelism(res.makespan), 1.0);
}

TEST(TaskTraceMachine, RespectsDependenceOrder)
{
    // In a chain graph, trace intervals must be strictly ordered.
    rt::TaskGraph g("chain");
    rt::RegionId r = g.addRegion(1024);
    g.beginParallel();
    for (int i = 0; i < 10; ++i) {
        g.createTask(sim::usToTicks(20));
        g.dep(r, rt::DepDir::InOut);
    }
    cpu::MachineConfig cfg;
    cfg.numCores = 4;
    core::Machine m(cfg, g, core::RuntimeType::Tdm);
    m.enableTrace();
    ASSERT_TRUE(m.run().completed);
    std::vector<sim::Tick> start(10), end(10);
    for (const auto &rec : m.trace().records()) {
        start[rec.task] = rec.start;
        end[rec.task] = rec.end;
    }
    for (int i = 1; i < 10; ++i)
        EXPECT_GE(start[i], end[i - 1]);
}
