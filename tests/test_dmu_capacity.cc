/**
 * @file
 * Tests of DMU capacity blocking: full structures must block creation
 * operations without side effects, and finish_task must unblock them —
 * the mechanism behind Figures 7 and 8.
 */

#include <gtest/gtest.h>

#include "dmu/dmu.hh"

using namespace tdm;

namespace {

constexpr std::uint64_t desc(int i) { return 0x9000000000ULL + i * 0x140; }
constexpr std::uint64_t addr(int i) { return 0x200000000ULL + i * 4096; }

void
makeSimpleTask(dmu::Dmu &d, int id, int region)
{
    ASSERT_FALSE(d.createTask(desc(id)).blocked);
    ASSERT_FALSE(
        d.addDependence(desc(id), addr(region), 4096, false).blocked);
    d.commitTask(desc(id));
}

} // namespace

TEST(DmuCapacity, TatFullBlocksCreate)
{
    dmu::DmuConfig cfg;
    cfg.tatEntries = 8;
    cfg.tatAssoc = 8;
    cfg.datEntries = 64;
    cfg.datAssoc = 8;
    cfg.slaEntries = 64;
    cfg.dlaEntries = 64;
    cfg.rlaEntries = 64;
    cfg.readyQueueEntries = 8;
    dmu::Dmu d(cfg);
    for (int i = 0; i < 8; ++i)
        makeSimpleTask(d, i, i);
    auto res = d.createTask(desc(8));
    EXPECT_TRUE(res.blocked);
    EXPECT_EQ(res.reason, dmu::BlockReason::TatFull);
    EXPECT_EQ(d.blockedOps(), 1u);

    // Finishing one task unblocks creation.
    d.finishTask(desc(0));
    EXPECT_FALSE(d.createTask(desc(8)).blocked);
}

TEST(DmuCapacity, BlockedCreateHasNoSideEffects)
{
    dmu::DmuConfig cfg;
    cfg.tatEntries = 4;
    cfg.tatAssoc = 4;
    cfg.readyQueueEntries = 4;
    dmu::Dmu d(cfg);
    for (int i = 0; i < 4; ++i)
        makeSimpleTask(d, i, i);
    unsigned sla_used = d.sla().entriesInUse();
    unsigned dla_used = d.dla().entriesInUse();
    auto res = d.createTask(desc(4));
    EXPECT_TRUE(res.blocked);
    EXPECT_EQ(d.sla().entriesInUse(), sla_used);
    EXPECT_EQ(d.dla().entriesInUse(), dla_used);
    EXPECT_EQ(d.tasksInFlight(), 4u);
}

TEST(DmuCapacity, DatFullBlocksAddDependence)
{
    dmu::DmuConfig cfg;
    cfg.datEntries = 4;
    cfg.datAssoc = 4;
    dmu::Dmu d(cfg);
    ASSERT_FALSE(d.createTask(desc(0)).blocked);
    for (int r = 0; r < 4; ++r)
        ASSERT_FALSE(
            d.addDependence(desc(0), addr(r), 4096, false).blocked);
    auto res = d.addDependence(desc(0), addr(4), 4096, false);
    EXPECT_TRUE(res.blocked);
    EXPECT_EQ(res.reason, dmu::BlockReason::DatFull);
}

TEST(DmuCapacity, DatSetConflictBlocksEvenWhenIdsRemain)
{
    // 8 entries, 8-way = 1 set... use 16/8 = 2 sets and fill one set.
    dmu::DmuConfig cfg;
    cfg.datEntries = 16;
    cfg.datAssoc = 8;
    cfg.dynamicDatIndex = false;
    cfg.staticDatIndexBit = 0; // aligned regions all map to set 0
    dmu::Dmu d(cfg);
    ASSERT_FALSE(d.createTask(desc(0)).blocked);
    for (int r = 0; r < 8; ++r)
        ASSERT_FALSE(
            d.addDependence(desc(0), addr(r), 4096, false).blocked);
    auto res = d.addDependence(desc(0), addr(8), 4096, false);
    EXPECT_TRUE(res.blocked);
    EXPECT_EQ(res.reason, dmu::BlockReason::DatFull);
    EXPECT_EQ(d.depsInFlight(), 8u);

    // The dynamic index avoids exactly this conflict.
    cfg.dynamicDatIndex = true;
    dmu::Dmu d2(cfg);
    ASSERT_FALSE(d2.createTask(desc(0)).blocked);
    for (int r = 0; r < 9; ++r)
        EXPECT_FALSE(
            d2.addDependence(desc(0), addr(r), 4096, false).blocked);
}

TEST(DmuCapacity, SlaExhaustionBlocks)
{
    dmu::DmuConfig cfg;
    cfg.slaEntries = 2;
    cfg.elemsPerEntry = 2;
    dmu::Dmu d(cfg);
    // Every in-flight task owns one successor-list entry; two tasks
    // exhaust a 2-entry SLA.
    ASSERT_FALSE(d.createTask(desc(0)).blocked);
    d.commitTask(desc(0));
    ASSERT_FALSE(d.createTask(desc(1)).blocked);
    d.commitTask(desc(1));
    auto res = d.createTask(desc(2));
    EXPECT_TRUE(res.blocked);
    EXPECT_EQ(res.reason, dmu::BlockReason::SlaFull);
    // Retiring a task frees its list and unblocks creation.
    unsigned acc = 0;
    d.getReadyTask(acc);
    d.getReadyTask(acc);
    d.finishTask(desc(0));
    EXPECT_FALSE(d.createTask(desc(2)).blocked);
}

TEST(DmuCapacity, RlaGrowthBlocksReaders)
{
    dmu::DmuConfig cfg;
    cfg.rlaEntries = 2;
    cfg.elemsPerEntry = 2;
    cfg.slaEntries = 64;
    cfg.dlaEntries = 64;
    dmu::Dmu d(cfg);
    // Many readers of one region: the reader list needs continuation
    // entries beyond the RLA capacity.
    int i = 0;
    bool blocked = false;
    for (; i < 8; ++i) {
        ASSERT_FALSE(d.createTask(desc(i)).blocked);
        auto res = d.addDependence(desc(i), addr(0), 4096, false);
        if (res.blocked) {
            EXPECT_EQ(res.reason, dmu::BlockReason::RlaFull);
            blocked = true;
            break;
        }
        d.commitTask(desc(i));
    }
    EXPECT_TRUE(blocked);
    EXPECT_GE(i, 2);
}

TEST(DmuCapacity, CapacityEpochAdvancesOnFinish)
{
    dmu::Dmu d(dmu::DmuConfig{});
    makeSimpleTask(d, 0, 0);
    auto e0 = d.capacityEpoch();
    d.finishTask(desc(0));
    EXPECT_GT(d.capacityEpoch(), e0);
}
