/**
 * @file
 * Unit tests for the memory hierarchy model: residency levels,
 * invalidation on writes, and the locality effect the Locality
 * scheduler exploits.
 */

#include <gtest/gtest.h>

#include "mem/memory_model.hh"

using namespace tdm;

namespace {

mem::MemConfig
smallConfig()
{
    mem::MemConfig c;
    c.l1Bytes = 4 * 1024;
    c.l2Bytes = 64 * 1024;
    return c;
}

} // namespace

TEST(MemoryModel, ColdAccessGoesToDram)
{
    mem::MemoryModel m(smallConfig(), 2);
    EXPECT_EQ(m.levelOf(0, 1), 3);
    mem::MemAccess a{1, 1024, false};
    m.taskAccessTime(0, std::span(&a, 1));
    EXPECT_EQ(m.levelOf(0, 1), 1);
    EXPECT_EQ(m.levelOf(1, 1), 2); // other core: L2
}

TEST(MemoryModel, DramCostsMoreThanL1)
{
    mem::MemoryModel m(smallConfig(), 2);
    mem::MemAccess a{1, 2048, false};
    sim::Tick cold = m.taskAccessTime(0, std::span(&a, 1));
    sim::Tick warm = m.taskAccessTime(0, std::span(&a, 1));
    EXPECT_GT(cold, warm);
}

TEST(MemoryModel, WriteInvalidatesOtherL1s)
{
    mem::MemoryModel m(smallConfig(), 2);
    mem::MemAccess rd{1, 1024, false};
    m.taskAccessTime(0, std::span(&rd, 1));
    m.taskAccessTime(1, std::span(&rd, 1));
    EXPECT_EQ(m.levelOf(0, 1), 1);
    EXPECT_EQ(m.levelOf(1, 1), 1);
    mem::MemAccess wr{1, 1024, true};
    m.taskAccessTime(0, std::span(&wr, 1));
    EXPECT_EQ(m.levelOf(0, 1), 1);
    EXPECT_EQ(m.levelOf(1, 1), 2); // invalidated from core 1's L1
}

TEST(MemoryModel, ConsumerOnProducerCoreIsFaster)
{
    // The locality-scheduler effect: running the consumer where the
    // producer ran hits in L1; elsewhere it pays L2.
    mem::MemoryModel m(smallConfig(), 2);
    mem::MemAccess wr{1, 2048, true};
    m.taskAccessTime(0, std::span(&wr, 1));

    mem::MemAccess rd{1, 2048, false};
    sim::Tick same_core = m.taskAccessTime(0, std::span(&rd, 1));

    mem::MemoryModel m2(smallConfig(), 2);
    m2.taskAccessTime(0, std::span(&wr, 1));
    sim::Tick other_core = m2.taskAccessTime(1, std::span(&rd, 1));
    EXPECT_GT(other_core, same_core);
}

TEST(MemoryModel, CountsLineTraffic)
{
    mem::MemoryModel m(smallConfig(), 1);
    mem::MemAccess a{1, 640, false}; // 10 lines
    m.taskAccessTime(0, std::span(&a, 1));
    EXPECT_EQ(m.l1LineAccesses(), 10u);
    EXPECT_EQ(m.dramLineAccesses(), 10u);
    m.taskAccessTime(0, std::span(&a, 1));
    EXPECT_EQ(m.l1LineAccesses(), 20u);
    EXPECT_EQ(m.dramLineAccesses(), 10u); // second touch hits L1
}

TEST(MemoryModel, ZeroByteAccessIsFree)
{
    mem::MemoryModel m(smallConfig(), 1);
    mem::MemAccess a{1, 0, false};
    EXPECT_EQ(m.taskAccessTime(0, std::span(&a, 1)), 0u);
}
