/**
 * @file
 * Fuzz-style robustness tests for the spec/campaign text parsers.
 *
 * The *.campaign parser and the spec key/value layer take arbitrary
 * user text; their error contract is "throw SpecError with context or
 * succeed" — never crash, never leak, never throw anything else. This
 * test feeds them a corpus of handcrafted malformed inputs plus a few
 * thousand deterministic mutations (byte flips, truncations, splices)
 * of a valid campaign file. CI runs it under ASan/UBSan, which turns
 * any parser over-read, bad index, or leak-on-throw into a failure;
 * in plain builds it still pins the exception contract.
 *
 * The mutation stream uses a fixed-seed xorshift generator, NOT
 * rand(): the corpus must be identical on every run and platform so a
 * failure here reproduces everywhere.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "driver/spec/campaign_file.hh"
#include "driver/spec/spec.hh"

using namespace tdm::driver;

namespace {

/** Deterministic xorshift64* stream; fixed seed, same corpus forever. */
class FuzzRng
{
  public:
    explicit FuzzRng(std::uint64_t seed) : state_(seed | 1) {}

    std::uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    std::size_t pick(std::size_t n) { return next() % n; }

  private:
    std::uint64_t state_;
};

const char kValidCampaign[] =
    "# fuzz seed corpus\n"
    "[meta]\n"
    "name = fuzz_seed\n"
    "description = seed file the mutator corrupts\n"
    "label = {workload}/c{machine.cores}\n"
    "\n"
    "set runtime = tdm\n"
    "set scheduler = age\n"
    "axis machine.cores = 8, 16\n"
    "zip workload, workload.granularity = cholesky, 262144 | qr, 128\n"
    "metrics = dmu.*, makespan\n";

/**
 * The contract under test: parse either succeeds or throws SpecError.
 * Successful parses additionally expand small grids so value
 * validation runs too. Returns true when the input parsed.
 */
bool
parseMustNotCrash(const std::string &text)
{
    std::istringstream in(text);
    try {
        spec::FileCampaign fc = spec::parseCampaignFile(in, "fuzz");
        if (fc.grid.size() <= 64)
            (void)fc.toCampaign();
        return true;
    } catch (const spec::SpecError &) {
        return false; // rejected cleanly: fine
    }
    // Anything else escapes and fails the test.
}

} // namespace

TEST(SpecFuzz, HandcraftedMalformedCampaignFiles)
{
    const std::vector<std::string> nasty = {
        "",
        "\n\n\n",
        "[meta\nname = x\n",
        "[meta]\n[meta]\nname = x\n",
        "[unknown-section]\nset runtime = tdm\n",
        "name = before-any-section\n",
        "set\n",
        "set =\n",
        "set = tdm\n",
        "set runtime\n",
        "set runtime = \n",
        "set runtime tdm\n",
        "set no.such.key = 5\n",
        "set runtime = no-such-runtime\n",
        "set machine.cores = -4\n",
        "set machine.cores = 1e999\n",
        "set machine.cores = 0x10\n",
        "axis = 1, 2\n",
        "axis machine.cores =\n",
        "axis machine.cores = ,\n",
        "axis machine.cores = 8,, 16\n",
        "zip workload = cholesky, qr\n", // arity 1 row of 2
        "zip a, b = 1 | 2, 3, 4\n",
        "zip workload, workload.granularity = cholesky\n",
        "metrics =\n",
        "metrics = [[[\n",
        "label = {unclosed\n",
        "set runtime = tdm \\", // continuation into EOF
        "set runtime = \\\n\\\n\\\n",
        std::string("set runtime = tdm\n") + std::string(1 << 16, 'x'),
        std::string(1 << 16, '\\'),
        std::string("axis machine.cores = ") +
            std::string(4096, ',') + "\n",
        std::string("set runtime = t\0dm\n", 19),
        "\xff\xfe set runtime = tdm\n",
        "set runtime = tdm\r\nset scheduler = age\r\n",
        "# comment only\n# and more\n",
    };
    for (std::size_t i = 0; i < nasty.size(); ++i) {
        SCOPED_TRACE("nasty[" + std::to_string(i) + "]");
        EXPECT_NO_FATAL_FAILURE(parseMustNotCrash(nasty[i]));
    }
    // And the seed corpus itself must be valid, or the mutation runs
    // below are fuzzing garbage against garbage.
    ASSERT_TRUE(parseMustNotCrash(kValidCampaign));
}

TEST(SpecFuzz, MutatedCampaignFiles)
{
    const std::string seedText(kValidCampaign);
    FuzzRng rng(0x7dab5eed);
    const char garbage[] = "=,|\\{}[]#\n\t\0\x80\xff ";

    int parsedOk = 0;
    for (int round = 0; round < 3000; ++round) {
        std::string text = seedText;
        const int edits = 1 + static_cast<int>(rng.pick(4));
        for (int e = 0; e < edits; ++e) {
            switch (rng.pick(4)) {
            case 0: // flip one byte to a syntax-relevant character
                text[rng.pick(text.size())] =
                    garbage[rng.pick(sizeof(garbage) - 1)];
                break;
            case 1: // truncate
                text.resize(rng.pick(text.size()) + 1);
                break;
            case 2: // splice a random slice of the file into itself
            {
                const std::size_t from = rng.pick(text.size());
                const std::size_t len =
                    rng.pick(text.size() - from) + 1;
                const std::string slice = text.substr(from, len);
                text.insert(rng.pick(text.size()), slice);
                break;
            }
            default: // delete a slice
            {
                const std::size_t from = rng.pick(text.size());
                text.erase(from, rng.pick(text.size() - from) + 1);
                if (text.empty())
                    text.push_back('\n');
                break;
            }
            }
        }
        if (parseMustNotCrash(text))
            ++parsedOk;
    }
    // Sanity on the corpus shape: mutations must produce both
    // accepted and rejected inputs, or the fuzz is one-sided.
    EXPECT_GT(parsedOk, 0);
    EXPECT_LT(parsedOk, 3000);
}

TEST(SpecFuzz, MalformedSpecKeyValues)
{
    // applyKey is the other text doorway: every key/value from CLI
    // --set flags and campaign lines lands here. Same contract:
    // SpecError or success.
    FuzzRng rng(0xc0ffee);
    std::vector<std::string> keys = {"runtime", "scheduler",
                                     "machine.cores", "workload",
                                     "workload.granularity",
                                     "dmu.tat_entries"};
    const std::vector<std::string> values = {
        "", " ", "0", "-1", "999999999999999999999", "1.5", "nan",
        "inf", "-inf", "1e309", "true", "false", "yes", "tdm", "fifo",
        "cholesky", "no-such-thing", "0x41", "8 ", " 8", "8\t",
        std::string(65536, '9'), std::string("a\0b", 3), "\xff\xfe",
        "{label}", "*", "..", "=",
    };
    // Mutated keys too: near-misses drive the suggestion machinery.
    for (int i = 0; i < 200; ++i) {
        std::string k = keys[rng.pick(keys.size())];
        k[rng.pick(k.size())] =
            static_cast<char>('a' + rng.pick(26));
        keys.push_back(k);
    }

    int applied = 0;
    for (const auto &key : keys) {
        for (const auto &value : values) {
            Experiment exp;
            try {
                spec::applyKey(exp, key, value);
                ++applied;
            } catch (const spec::SpecError &) {
                // rejected cleanly: fine
            }
        }
    }
    EXPECT_GT(applied, 0); // some (key, value) pairs are valid
}
