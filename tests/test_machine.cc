/**
 * @file
 * End-to-end machine tests: all four runtime models execute task
 * graphs to completion, respect dependence semantics, account time
 * consistently, and reproduce the qualitative behaviours the paper
 * builds on (TDM cuts creation cost; locality scheduling helps
 * consumer placement).
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "workloads/registry.hh"

using namespace tdm;

namespace {

cpu::MachineConfig
testConfig(unsigned cores = 8)
{
    cpu::MachineConfig cfg;
    cfg.numCores = cores;
    return cfg;
}

/** A small fork-join graph with a serial creation-heavy prologue. */
rt::TaskGraph
forkJoinGraph(unsigned n, sim::Tick dur = sim::usToTicks(200),
              bool fragmented = false)
{
    rt::TaskGraph g("forkjoin");
    std::vector<rt::RegionId> r;
    for (unsigned i = 0; i < n; ++i)
        r.push_back(g.addRegion(4096));
    g.beginParallel();
    for (unsigned i = 0; i < n; ++i) {
        g.createTask(dur);
        g.dep(r[i], rt::DepDir::InOut, fragmented);
    }
    return g;
}

rt::TaskGraph
chainGraph(unsigned n, sim::Tick dur = sim::usToTicks(50))
{
    rt::TaskGraph g("chain");
    rt::RegionId r = g.addRegion(64 * 1024);
    g.beginParallel();
    for (unsigned i = 0; i < n; ++i) {
        g.createTask(dur);
        g.dep(r, rt::DepDir::InOut);
    }
    return g;
}

class MachineAllRuntimes
    : public ::testing::TestWithParam<core::RuntimeType>
{};

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Runtimes, MachineAllRuntimes,
    ::testing::Values(core::RuntimeType::Software, core::RuntimeType::Tdm,
                      core::RuntimeType::Carbon,
                      core::RuntimeType::TaskSuperscalar),
    [](const ::testing::TestParamInfo<core::RuntimeType> &info) {
        return core::traitsOf(info.param).name;
    });

TEST_P(MachineAllRuntimes, CompletesForkJoin)
{
    rt::TaskGraph g = forkJoinGraph(64);
    core::Machine m(testConfig(), g, GetParam());
    auto res = m.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.tasksExecuted, 64u);
    EXPECT_GT(res.makespan, 0u);
}

TEST_P(MachineAllRuntimes, CompletesChain)
{
    rt::TaskGraph g = chainGraph(40);
    core::Machine m(testConfig(), g, GetParam());
    auto res = m.run();
    EXPECT_TRUE(res.completed);
    // A chain serializes: makespan at least the total compute time.
    EXPECT_GE(res.makespan, g.totalComputeCycles());
}

TEST_P(MachineAllRuntimes, CompletesCholeskyMini)
{
    wl::WorkloadParams p;
    p.granularity = 262144; // 8x8 tiles -> 120 tasks
    rt::TaskGraph g = wl::buildWorkload("cholesky", p);
    core::Machine m(testConfig(), g, GetParam());
    auto res = m.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.tasksExecuted, g.numTasks());
    EXPECT_GE(res.makespan, g.criticalPathCycles());
}

TEST_P(MachineAllRuntimes, CompletesMultiRegionGraph)
{
    rt::TaskGraph g("rounds");
    rt::RegionId shared = g.addRegion(4096);
    std::vector<rt::RegionId> loc;
    for (int i = 0; i < 8; ++i)
        loc.push_back(g.addRegion(4096));
    for (int round = 0; round < 5; ++round) {
        g.beginParallel(sim::usToTicks(10));
        for (int i = 0; i < 8; ++i) {
            g.createTask(sim::usToTicks(100));
            g.dep(shared, rt::DepDir::In);
            g.dep(loc[i], rt::DepDir::Out);
        }
    }
    core::Machine m(testConfig(), g, GetParam());
    auto res = m.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.tasksExecuted, 40u);
}

TEST_P(MachineAllRuntimes, Deterministic)
{
    wl::WorkloadParams p;
    p.granularity = 262144;
    rt::TaskGraph g1 = wl::buildWorkload("cholesky", p);
    rt::TaskGraph g2 = wl::buildWorkload("cholesky", p);
    core::Machine m1(testConfig(), g1, GetParam());
    core::Machine m2(testConfig(), g2, GetParam());
    EXPECT_EQ(m1.run().makespan, m2.run().makespan);
}

TEST_P(MachineAllRuntimes, PhaseTimeAddsUpToMakespan)
{
    rt::TaskGraph g = forkJoinGraph(64);
    cpu::MachineConfig cfg = testConfig();
    core::Machine m(cfg, g, GetParam());
    auto res = m.run();
    ASSERT_TRUE(res.completed);
    // Every core's accounted time must not exceed the makespan, and
    // the chip total must be close to cores x makespan (small slack
    // for segments cut off at the end of the run).
    sim::Tick chip = res.chipTotal.total();
    sim::Tick full = res.makespan * cfg.numCores;
    EXPECT_LE(chip, full + cfg.numCores * 1000);
    EXPECT_GE(static_cast<double>(chip), 0.95 * full);
}

TEST_P(MachineAllRuntimes, EnergyAndEdpPositive)
{
    rt::TaskGraph g = forkJoinGraph(32);
    core::Machine m(testConfig(), g, GetParam());
    auto res = m.run();
    EXPECT_GT(res.energyJ, 0.0);
    EXPECT_GT(res.edp, 0.0);
    EXPECT_GT(res.avgWatts, 0.0);
}

// ---- runtime-specific behaviours ----

TEST(Machine, TdmReducesCreationTimeVsSw)
{
    // Creation-heavy: many tasks with fragmented deps (expensive in
    // software, cheap for the DMU).
    rt::TaskGraph g1 = forkJoinGraph(256, sim::usToTicks(60), true);
    rt::TaskGraph g2 = forkJoinGraph(256, sim::usToTicks(60), true);
    core::Machine sw(testConfig(), g1, core::RuntimeType::Software);
    core::Machine tdm(testConfig(), g2, core::RuntimeType::Tdm);
    auto rs = sw.run();
    auto rt_ = tdm.run();
    ASSERT_TRUE(rs.completed);
    ASSERT_TRUE(rt_.completed);
    EXPECT_LT(rt_.master.deps, rs.master.deps);
    EXPECT_LT(rt_.makespan, rs.makespan);
}

TEST(Machine, DmuEmptyAfterRun)
{
    rt::TaskGraph g = forkJoinGraph(64);
    core::Machine m(testConfig(), g, core::RuntimeType::Tdm);
    auto res = m.run();
    ASSERT_TRUE(res.completed);
    ASSERT_NE(m.dmuUnit(), nullptr);
    EXPECT_EQ(m.dmuUnit()->tasksInFlight(), 0u);
    EXPECT_EQ(m.dmuUnit()->depsInFlight(), 0u);
}

TEST(Machine, UndersizedDmuBlocksButCompletes)
{
    // A TAT smaller than the task count forces the master to stall on
    // capacity; workers drain tasks and the run still completes.
    rt::TaskGraph g = forkJoinGraph(100);
    cpu::MachineConfig cfg = testConfig();
    cfg.dmu.tatEntries = 16;
    cfg.dmu.tatAssoc = 8;
    cfg.dmu.readyQueueEntries = 16;
    core::Machine m(cfg, g, core::RuntimeType::Tdm);
    auto res = m.run();
    EXPECT_TRUE(res.completed);
    EXPECT_GT(res.dmuBlockedOps, 0u);
}

TEST(Machine, ImpossibleDmuDeadlocksGracefully)
{
    // A single task with more dependences than the DAT can ever hold
    // can never be created: the run must end incomplete, not hang.
    rt::TaskGraph g("impossible");
    std::vector<rt::RegionId> r;
    for (int i = 0; i < 8; ++i)
        r.push_back(g.addRegion(4096));
    g.beginParallel();
    g.createTask(1000);
    for (int i = 0; i < 8; ++i)
        g.dep(r[i], rt::DepDir::In);
    cpu::MachineConfig cfg = testConfig();
    cfg.dmu.datEntries = 4;
    cfg.dmu.datAssoc = 4;
    core::Machine m(cfg, g, core::RuntimeType::Tdm);
    auto res = m.run();
    EXPECT_FALSE(res.completed);
}

TEST(Machine, CarbonUsesSteals)
{
    // All creation-ready tasks land on the master's queue; other cores
    // must steal them.
    rt::TaskGraph g = forkJoinGraph(64);
    core::Machine m(testConfig(), g, core::RuntimeType::Carbon);
    auto res = m.run();
    ASSERT_TRUE(res.completed);
    EXPECT_GT(res.steals, 0u);
}

TEST(Machine, MemoryModelAddsStallTime)
{
    rt::TaskGraph g1 = forkJoinGraph(32);
    rt::TaskGraph g2 = forkJoinGraph(32);
    cpu::MachineConfig with = testConfig();
    cpu::MachineConfig without = testConfig();
    without.enableMemModel = false;
    core::Machine m1(with, g1, core::RuntimeType::Software);
    core::Machine m2(without, g2, core::RuntimeType::Software);
    auto r1 = m1.run();
    auto r2 = m2.run();
    EXPECT_GT(r1.chipTotal.exec, r2.chipTotal.exec);
}

TEST(Machine, WorkersMostlyExecuteOnBalancedLoad)
{
    rt::TaskGraph g = forkJoinGraph(512, sim::usToTicks(500));
    core::Machine m(testConfig(), g, core::RuntimeType::Tdm);
    auto res = m.run();
    ASSERT_TRUE(res.completed);
    // Workers should spend the bulk of their time executing.
    EXPECT_GT(res.workersTotal.fraction(cpu::Phase::Exec), 0.5);
}
