/**
 * @file
 * Unit tests for the five scheduling policies.
 */

#include <gtest/gtest.h>

#include "runtime/ready_pool.hh"
#include "runtime/scheduler.hh"

using namespace tdm;

namespace {

rt::ReadyTask
task(rt::TaskId id, std::uint32_t succ = 0,
     sim::CoreId hint = sim::invalidCore)
{
    rt::ReadyTask t;
    t.id = id;
    t.numSuccessors = succ;
    t.producerHint = hint;
    t.creationSeq = id;
    return t;
}

} // namespace

TEST(SchedulerFactory, AllPoliciesConstruct)
{
    for (const std::string &name : rt::allSchedulerNames()) {
        auto s = rt::makeScheduler(name, 4);
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->name(), name);
        EXPECT_TRUE(s->empty());
    }
    EXPECT_EQ(rt::allSchedulerNames().size(), 5u);
}

TEST(Fifo, PopsInReadyOrder)
{
    auto s = rt::makeScheduler("fifo", 4);
    s->push(task(3));
    s->push(task(1));
    s->push(task(2));
    EXPECT_EQ(s->pop(0)->id, 3u);
    EXPECT_EQ(s->pop(0)->id, 1u);
    EXPECT_EQ(s->pop(0)->id, 2u);
    EXPECT_FALSE(s->pop(0).has_value());
}

TEST(Lifo, PopsNewestFirst)
{
    auto s = rt::makeScheduler("lifo", 4);
    s->push(task(1));
    s->push(task(2));
    s->push(task(3));
    EXPECT_EQ(s->pop(0)->id, 3u);
    EXPECT_EQ(s->pop(0)->id, 2u);
    EXPECT_EQ(s->pop(0)->id, 1u);
}

TEST(Locality, PrefersOwnProducerList)
{
    auto s = rt::makeScheduler("locality", 4);
    s->push(task(1, 0, 2));                  // produced on core 2
    s->push(task(2, 0, sim::invalidCore));   // global
    s->push(task(3, 0, 1));                  // produced on core 1
    EXPECT_EQ(s->pop(2)->id, 1u); // core 2 takes its successor
    EXPECT_EQ(s->pop(2)->id, 2u); // falls back to global
    EXPECT_EQ(s->pop(2)->id, 3u); // finally steals core 1's task
    EXPECT_TRUE(s->empty());
}

TEST(Locality, StealsFromFullestList)
{
    auto s = rt::makeScheduler("locality", 4);
    s->push(task(1, 0, 1));
    s->push(task(2, 0, 3));
    s->push(task(3, 0, 3));
    auto t = s->pop(0); // no own work, no global: steals from core 3
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->id, 2u);
}

TEST(Locality, OwnerPopsNewestThiefStealsOldest)
{
    // Section VI rationale: the owner's newest successor is the one
    // whose inputs are hottest in its cache; a thief should take the
    // oldest (coldest) entry so the owner keeps its hot work.
    auto s = rt::makeScheduler("locality", 4);
    s->push(task(1, 0, 2)); // oldest on core 2
    s->push(task(2, 0, 2));
    s->push(task(3, 0, 2)); // newest on core 2
    // Owner pops newest-first (LIFO over its own list).
    EXPECT_EQ(s->pop(2)->id, 3u);
    // A thief takes the oldest remaining entry of the victim's list.
    EXPECT_EQ(s->pop(0)->id, 1u);
    // The owner still finds its (now) newest entry next.
    EXPECT_EQ(s->pop(2)->id, 2u);
    EXPECT_TRUE(s->empty());
}

TEST(Successor, HighPriorityAboveThreshold)
{
    auto s = rt::makeScheduler("successor", 4, /*threshold=*/1);
    s->push(task(1, 1)); // low (not above threshold)
    s->push(task(2, 5)); // high
    s->push(task(3, 0)); // low
    EXPECT_EQ(s->pop(0)->id, 2u);
    EXPECT_EQ(s->pop(0)->id, 1u);
    EXPECT_EQ(s->pop(0)->id, 3u);
}

TEST(Successor, ThresholdConfigurable)
{
    auto s = rt::makeScheduler("successor", 4, /*threshold=*/0);
    s->push(task(1, 0)); // low
    s->push(task(2, 1)); // high with threshold 0
    EXPECT_EQ(s->pop(0)->id, 2u);
}

TEST(Age, OldestCreationFirst)
{
    auto s = rt::makeScheduler("age", 4);
    // Ready order differs from creation order.
    s->push(task(5));
    s->push(task(2));
    s->push(task(9));
    s->push(task(1));
    EXPECT_EQ(s->pop(0)->id, 1u);
    EXPECT_EQ(s->pop(0)->id, 2u);
    EXPECT_EQ(s->pop(0)->id, 5u);
    EXPECT_EQ(s->pop(0)->id, 9u);
}

TEST(ReadyPool, CountsAndPeak)
{
    rt::ReadyPool pool(rt::makeScheduler("fifo", 2));
    pool.push(task(1));
    pool.push(task(2));
    EXPECT_EQ(pool.size(), 2u);
    EXPECT_EQ(pool.peakSize(), 2u);
    EXPECT_TRUE(pool.pop(0).has_value());
    EXPECT_TRUE(pool.pop(0).has_value());
    EXPECT_FALSE(pool.pop(0).has_value());
    EXPECT_EQ(pool.pushes(), 2u);
    EXPECT_EQ(pool.pops(), 2u);
    EXPECT_EQ(pool.emptyPops(), 1u);
}

TEST(SchedulerDeath, UnknownPolicyFatal)
{
    EXPECT_DEATH((void)rt::makeScheduler("best", 4), "unknown scheduler");
}
