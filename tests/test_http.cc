/**
 * @file
 * Dashboard tests: the HTTP request parser (partial reads, hostile
 * input), SSE framing, progress-bus backpressure, and the live
 * HTTP+SSE stack mounted on a real campaign server — concurrent
 * dashboard clients during a live sweep, byte-identical metrics
 * through /api/campaign/<id>/points, and the zero-overhead contract
 * (a sweep with no HTTP consumers is byte-identical to a no-HTTP
 * run).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "driver/campaign/engine.hh"
#include "driver/report/json_writer.hh"
#include "driver/service/client.hh"
#include "driver/service/http_server.hh"
#include "driver/service/progress_bus.hh"
#include "driver/service/server.hh"
#include "driver/service/sse.hh"
#include "driver/service/socket.hh"

using namespace tdm;
using namespace tdm::driver;
namespace svc = tdm::driver::service;
namespace fs = std::filesystem;

// ---- HTTP parser ---------------------------------------------------------

namespace {

svc::HttpParser::State
feedAll(svc::HttpParser &p, const std::string &bytes)
{
    return p.feed(bytes.data(), bytes.size());
}

} // namespace

TEST(HttpParser, ParsesRequestFedByteByByte)
{
    const std::string req = "GET /api/status HTTP/1.1\r\n"
                            "Host: localhost\r\n"
                            "Accept: */*\r\n"
                            "\r\n";
    svc::HttpParser p;
    for (std::size_t i = 0; i < req.size(); ++i) {
        const auto st = p.feed(&req[i], 1);
        if (i + 1 < req.size()) {
            ASSERT_EQ(st, svc::HttpParser::State::NeedMore)
                << "at byte " << i;
        }
    }
    ASSERT_EQ(p.state(), svc::HttpParser::State::Done);
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().path, "/api/status");
    ASSERT_EQ(p.request().headers.size(), 2u);
    EXPECT_EQ(p.request().headers[0].first, "host"); // lowercased
    EXPECT_EQ(p.request().headers[0].second, "localhost");
}

TEST(HttpParser, DecodesPathAndQuery)
{
    svc::HttpParser p;
    ASSERT_EQ(feedAll(p, "GET /a%20b?x=1%2B2&y=a+b&flag HTTP/1.1\r\n"
                         "\r\n"),
              svc::HttpParser::State::Done);
    EXPECT_EQ(p.request().path, "/a b");
    EXPECT_EQ(p.request().target, "/a%20b?x=1%2B2&y=a+b&flag");
    EXPECT_EQ(p.request().queryParam("x"), "1+2");
    EXPECT_EQ(p.request().queryParam("y"), "a b"); // '+' is space here
    EXPECT_EQ(p.request().queryParam("flag"), "");
    EXPECT_EQ(p.request().queryParam("absent", "dflt"), "dflt");
}

TEST(HttpParser, AcceptsBareLfLineEndings)
{
    svc::HttpParser p;
    ASSERT_EQ(feedAll(p, "GET / HTTP/1.0\nHost: x\n\n"),
              svc::HttpParser::State::Done);
    EXPECT_EQ(p.request().path, "/");
}

TEST(HttpParser, RejectsMalformedRequests)
{
    struct Case
    {
        const char *bytes;
        int status;
    };
    const Case cases[] = {
        {"GET /\r\n\r\n", 400},                  // no version
        {"GET / HTTP/1.1 extra\r\n\r\n", 400},   // 4 parts
        {"GE T / HTTP/1.1\r\n\r\n", 400},        // 4 parts again
        {"G\x01T / HTTP/1.1\r\n\r\n", 400},      // non-token method
        {"GET / FTP/1.1\r\n\r\n", 400},          // not HTTP at all
        {"GET / HTTP/2.0\r\n\r\n", 505},         // unsupported version
        {"GET * HTTP/1.1\r\n\r\n", 400},         // not origin-form
        {"GET /%zz HTTP/1.1\r\n\r\n", 400},      // bad percent escape
        {"GET /%2 HTTP/1.1\r\n\r\n", 400},       // truncated escape
        {"GET /a?x=%q1 HTTP/1.1\r\n\r\n", 400},  // bad escape in query
        {"GET / HTTP/1.1\r\nBad Header: x\r\n\r\n", 400}, // name space
        {"GET / HTTP/1.1\r\nnocolon\r\n\r\n", 400},
        {"GET / HTTP/1.1\r\nA: 1\r\n B: folded\r\n\r\n", 400},
        {"\r\n\r\n", 400},                       // empty request line
    };
    for (const Case &c : cases) {
        svc::HttpParser p;
        EXPECT_EQ(feedAll(p, c.bytes), svc::HttpParser::State::Error)
            << c.bytes;
        EXPECT_EQ(p.status(), c.status) << c.bytes;
    }
}

TEST(HttpParser, RejectsOversizedHead)
{
    svc::HttpParser p;
    std::string huge = "GET / HTTP/1.1\r\n";
    huge += "X-Pad: " + std::string(svc::HttpParser::kMaxRequestBytes,
                                    'a');
    // No terminating blank line needed: the cap trips first.
    EXPECT_EQ(feedAll(p, huge), svc::HttpParser::State::Error);
    EXPECT_EQ(p.status(), 431);
    // Terminal: further bytes don't resurrect it.
    EXPECT_EQ(feedAll(p, "\r\n\r\n"), svc::HttpParser::State::Error);
}

TEST(HttpParser, RejectsRequestBodies)
{
    svc::HttpParser p1;
    EXPECT_EQ(feedAll(p1, "POST / HTTP/1.1\r\nContent-Length: 5\r\n"
                          "\r\nhello"),
              svc::HttpParser::State::Error);
    EXPECT_EQ(p1.status(), 400);

    svc::HttpParser p2;
    EXPECT_EQ(feedAll(p2, "GET / HTTP/1.1\r\n"
                          "Transfer-Encoding: chunked\r\n\r\n"),
              svc::HttpParser::State::Error);
    EXPECT_EQ(p2.status(), 400);

    // An explicit zero-length body is fine (curl sends this).
    svc::HttpParser p3;
    EXPECT_EQ(feedAll(p3, "GET / HTTP/1.1\r\nContent-Length: 0\r\n"
                          "\r\n"),
              svc::HttpParser::State::Done);
}

TEST(HttpParser, PercentDecodeEdges)
{
    std::string out;
    EXPECT_TRUE(svc::percentDecode("a%2Fb%41", out, false));
    EXPECT_EQ(out, "a/bA");
    EXPECT_TRUE(svc::percentDecode("a+b", out, false));
    EXPECT_EQ(out, "a+b"); // '+' literal outside query context
    EXPECT_FALSE(svc::percentDecode("%", out, false));
    EXPECT_FALSE(svc::percentDecode("%4", out, false));
    EXPECT_FALSE(svc::percentDecode("%gg", out, false));
    EXPECT_FALSE(svc::percentDecode("%00", out, false)); // NUL ban
}

TEST(HttpResponse, RendersHeadAndBody)
{
    const std::string r =
        svc::renderHttpResponse(200, "application/json", "{\"a\":1}\n");
    EXPECT_EQ(r.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(r.find("Content-Length: 8\r\n"), std::string::npos);
    EXPECT_NE(r.find("Connection: close\r\n"), std::string::npos);
    EXPECT_NE(r.find("\r\n\r\n{\"a\":1}\n"), std::string::npos);

    const std::string h = svc::renderHttpResponse(
        404, "application/json", "{\"a\":1}\n", /*head_only=*/true);
    EXPECT_NE(h.find("Content-Length: 8\r\n"), std::string::npos);
    EXPECT_EQ(h.find("{\"a\":1}"), std::string::npos); // body omitted
}

// ---- SSE framing ---------------------------------------------------------

TEST(Sse, FramesSingleLinePayload)
{
    EXPECT_EQ(svc::sseFrame("point", "{\"id\":1}"),
              "event: point\ndata: {\"id\":1}\n\n");
    // Default event type: no event line at all.
    EXPECT_EQ(svc::sseFrame("", "x"), "data: x\n\n");
}

TEST(Sse, SplitsMultiLinePayloadPerSseGrammar)
{
    EXPECT_EQ(svc::sseFrame("log", "line1\nline2"),
              "event: log\ndata: line1\ndata: line2\n\n");
}

// ---- progress bus --------------------------------------------------------

TEST(ProgressBus, FastSubscriberSeesEveryEventInOrder)
{
    svc::ProgressBus bus;
    auto sub = bus.subscribe();
    for (int i = 0; i < 100; ++i)
        bus.publish("e", "{\"n\":" + std::to_string(i) + "}");
    for (int i = 0; i < 100; ++i) {
        svc::BusEvent ev;
        ASSERT_TRUE(sub->next(ev, std::chrono::milliseconds(1000)));
        EXPECT_EQ(ev.json, "{\"n\":" + std::to_string(i) + "}");
    }
    EXPECT_EQ(sub->dropped(), 0u);
    EXPECT_EQ(bus.published(), 100u);
    EXPECT_EQ(bus.dropped(), 0u);
    bus.unsubscribe(sub);
    EXPECT_EQ(bus.subscribers(), 0u);
}

TEST(ProgressBus, SlowSubscriberDropsOldestAndCountsIt)
{
    svc::ProgressBus bus;
    auto slow = bus.subscribe(/*cap=*/4);
    for (int i = 0; i < 10; ++i)
        bus.publish("e", std::to_string(i));
    EXPECT_EQ(slow->dropped(), 6u);
    EXPECT_EQ(slow->queued(), 4u);
    // Freshest-wins: the survivors are the four *newest* events.
    for (int i = 6; i < 10; ++i) {
        svc::BusEvent ev;
        ASSERT_TRUE(slow->next(ev, std::chrono::milliseconds(100)));
        EXPECT_EQ(ev.json, std::to_string(i));
    }
    EXPECT_EQ(bus.dropped(), 6u);
    bus.unsubscribe(slow);
    // The retired subscriber's losses stay on the aggregate counter.
    EXPECT_EQ(bus.dropped(), 6u);
    EXPECT_EQ(bus.published(), 10u);
}

TEST(ProgressBus, SlowConsumerDoesNotStarveFastOne)
{
    svc::ProgressBus bus;
    auto fast = bus.subscribe();
    auto slow = bus.subscribe(/*cap=*/2);
    for (int i = 0; i < 50; ++i)
        bus.publish("e", std::to_string(i));
    for (int i = 0; i < 50; ++i) {
        svc::BusEvent ev;
        ASSERT_TRUE(fast->next(ev, std::chrono::milliseconds(100)));
        EXPECT_EQ(ev.json, std::to_string(i));
    }
    EXPECT_EQ(fast->dropped(), 0u);
    EXPECT_EQ(slow->dropped(), 48u);
    bus.unsubscribe(fast);
    bus.unsubscribe(slow);
}

TEST(ProgressBus, CloseUnblocksBlockedConsumer)
{
    svc::ProgressBus bus;
    auto sub = bus.subscribe();
    std::atomic<bool> returned{false};
    std::thread consumer([&] {
        svc::BusEvent ev;
        const bool got = sub->next(ev, std::chrono::seconds(30));
        EXPECT_FALSE(got);
        returned.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    bus.close();
    consumer.join();
    EXPECT_TRUE(returned.load());
    EXPECT_TRUE(sub->closed());
    // A closed bus rejects new subscriptions as already-closed.
    auto late = bus.subscribe();
    EXPECT_TRUE(late->closed());
}

// ---- live dashboard ------------------------------------------------------

namespace {

Experiment
point(const std::string &sched, unsigned cores)
{
    Experiment e;
    e.workload = "cholesky";
    e.params.granularity = 262144; // 8x8 tiles, 120 tasks: fast
    e.runtime = core::RuntimeType::Tdm;
    e.config.scheduler = sched;
    e.config.numCores = cores;
    return e;
}

campaign::Campaign
grid(const std::string &name, std::vector<SweepPoint> points)
{
    campaign::Campaign c;
    c.name = name;
    c.points = std::move(points);
    c.metrics = "dmu.tat.*";
    return c;
}

std::vector<SweepPoint>
smallGrid()
{
    return {
        {"fifo8", point("fifo", 8)},
        {"age8", point("age", 8)},
        {"fifo16", point("fifo", 16)},
        {"age16", point("age", 16)},
    };
}

/** A job's metrics rendered exactly as every JSON writer renders
 *  them — the byte-identity probe. */
std::string
metricsFragment(const campaign::JobResult &job)
{
    std::ostringstream os;
    os << "\"metrics\":{";
    bool first = true;
    for (const auto &[k, v] : job.summary.metrics().entries()) {
        os << (first ? "" : ",") << "\"" << k << "\":";
        report::jsonNumber(os, v);
        first = false;
    }
    os << "}";
    return os.str();
}

/** In-process daemon with the dashboard enabled. */
class HttpFixture
{
  public:
    explicit HttpFixture(const std::string &store_dir = "")
    {
        svc::ServerOptions opts;
        opts.engine.threads = 2;
        opts.storeDir = store_dir;
        opts.httpAddr = "tcp:127.0.0.1:0";
        server_ = std::make_unique<svc::CampaignServer>(
            svc::parseAddress("tcp:127.0.0.1:0"), opts);
        thread_ = std::thread([this] { server_->serve(); });
    }

    ~HttpFixture() { stop(); }

    void
    stop()
    {
        if (thread_.joinable()) {
            server_->stop();
            thread_.join();
        }
    }

    std::string address() const { return server_->address().display(); }
    const svc::Address &httpAddress() const
    {
        return *server_->httpAddress();
    }
    svc::CampaignServer &server() { return *server_; }

  private:
    std::unique_ptr<svc::CampaignServer> server_;
    std::thread thread_;
};

/** One-shot HTTP exchange; returns the full response bytes. */
std::string
httpRequest(const svc::Address &addr, const std::string &raw)
{
    svc::Socket s = svc::connectTo(addr);
    EXPECT_TRUE(s.sendAll(raw));
    std::string resp;
    char buf[4096];
    long n;
    while ((n = s.readSome(buf, sizeof buf)) > 0)
        resp.append(buf, static_cast<std::size_t>(n));
    return resp;
}

std::string
httpGet(const svc::Address &addr, const std::string &target)
{
    return httpRequest(addr, "GET " + target
                                 + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

/** Read /api/events until a complete "done" frame arrives; flips
 *  @p connected once the stream preamble lands. */
std::string
readSseUntilDone(const svc::Address &addr, std::atomic<bool> &connected)
{
    svc::Socket s = svc::connectTo(addr);
    EXPECT_TRUE(s.sendAll(
        "GET /api/events HTTP/1.1\r\nHost: t\r\n\r\n"));
    std::string resp;
    char buf[4096];
    while (true) {
        const long n = s.readSome(buf, sizeof buf);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<std::size_t>(n));
        if (resp.find(": connected") != std::string::npos)
            connected.store(true);
        const std::size_t done = resp.find("event: done");
        if (done != std::string::npos
            && resp.find("\n\n", done) != std::string::npos)
            break;
    }
    return resp;
}

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0, pos = 0;
    while ((pos = haystack.find(needle, pos)) != std::string::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

} // namespace

TEST(Dashboard, ServesStatusAssetsAndErrors)
{
    HttpFixture fx;
    const svc::Address &http = fx.httpAddress();

    const std::string status = httpGet(http, "/api/status");
    EXPECT_NE(status.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(status.find("\"event\":\"status\""), std::string::npos);
    EXPECT_NE(status.find("\"uptime_ms\":"), std::string::npos);
    EXPECT_NE(status.find("\"http\":{"), std::string::npos);

    const std::string page = httpGet(http, "/");
    EXPECT_NE(page.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(page.find("Content-Type: text/html"), std::string::npos);
    EXPECT_NE(page.find("tdm campaign dashboard"), std::string::npos);

    const std::string js = httpGet(http, "/app.js");
    EXPECT_NE(js.find("Content-Type: application/javascript"),
              std::string::npos);

    const std::string missing = httpGet(http, "/nope");
    EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

    const std::string post = httpRequest(
        http, "POST /api/status HTTP/1.1\r\nHost: t\r\n"
              "Content-Length: 0\r\n\r\n");
    EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);

    const std::string garbage = httpRequest(http, "not http\r\n\r\n");
    EXPECT_NE(garbage.find("HTTP/1.1 400"), std::string::npos);

    // No store configured: the browser endpoints say so, not crash.
    const std::string store = httpGet(http, "/api/store");
    EXPECT_NE(store.find("HTTP/1.1 404"), std::string::npos);
}

TEST(Dashboard, ConcurrentSseClientsSeeLiveSweep)
{
    HttpFixture fx;
    const svc::Address &http = fx.httpAddress();

    std::atomic<bool> connected1{false}, connected2{false};
    std::string capture1, capture2;
    std::thread watcher1(
        [&] { capture1 = readSseUntilDone(http, connected1); });
    std::thread watcher2(
        [&] { capture2 = readSseUntilDone(http, connected2); });
    while (!connected1.load() || !connected2.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

    svc::ServiceClient client(fx.address());
    const campaign::CampaignResult result =
        client.submit(grid("live", smallGrid()));
    ASSERT_TRUE(result.allOk());
    watcher1.join();
    watcher2.join();

    for (const std::string *cap : {&capture1, &capture2}) {
        EXPECT_EQ(countOccurrences(*cap, "event: accepted\n"), 1u);
        EXPECT_EQ(countOccurrences(*cap, "event: point\n"), 4u);
        EXPECT_EQ(countOccurrences(*cap, "event: progress\n"), 4u);
        EXPECT_EQ(countOccurrences(*cap, "event: done\n"), 1u);
        // The SSE stream carries the exact bytes the protocol client
        // got — including every 17-significant-digit metric value.
        for (const campaign::JobResult &job : result.jobs)
            EXPECT_NE(cap->find(metricsFragment(job)),
                      std::string::npos)
                << job.label;
    }

    // The registry's replay serves the same bytes after the fact.
    const std::string points = httpGet(http, "/api/campaign/1/points");
    EXPECT_NE(points.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(points.find("\"name\":\"live\""), std::string::npos);
    EXPECT_NE(points.find("\"active\":false"), std::string::npos);
    for (const campaign::JobResult &job : result.jobs) {
        EXPECT_NE(points.find("\"label\":\"" + job.label + "\""),
                  std::string::npos);
        EXPECT_NE(points.find(metricsFragment(job)), std::string::npos)
            << job.label;
    }

    const std::string campaigns = httpGet(http, "/api/campaigns");
    EXPECT_NE(campaigns.find("\"id\":1"), std::string::npos);
    EXPECT_NE(campaigns.find("\"total\":4"), std::string::npos);
    EXPECT_NE(campaigns.find("\"done\":4"), std::string::npos);

    const std::string unknown =
        httpGet(http, "/api/campaign/999/points");
    EXPECT_NE(unknown.find("HTTP/1.1 404"), std::string::npos);
}

TEST(Dashboard, StoreBrowserServesBlobsAndStats)
{
    const std::string dir =
        (fs::temp_directory_path()
         / ("tdm_http_store_" + std::to_string(::getpid())))
            .string();
    fs::remove_all(dir);
    {
        HttpFixture fx(dir);
        svc::ServiceClient client(fx.address());
        const campaign::CampaignResult result =
            client.submit(grid("seed", smallGrid()));
        ASSERT_TRUE(result.allOk());

        const std::string store =
            httpGet(fx.httpAddress(), "/api/store");
        EXPECT_NE(store.find("HTTP/1.1 200 OK"), std::string::npos);
        EXPECT_NE(store.find("\"blobs\":4"), std::string::npos);
        // Every digest the sweep produced is listed and fetchable.
        for (const campaign::JobResult &job : result.jobs) {
            EXPECT_NE(store.find("\"digest\":\"" + job.digest + "\""),
                      std::string::npos);
            const std::string blob = httpGet(
                fx.httpAddress(), "/api/store/" + job.digest);
            EXPECT_NE(blob.find("HTTP/1.1 200 OK"), std::string::npos);
            // The blob carries the FULL metric tree (no selection);
            // every selected metric must appear byte-identically.
            for (const auto &[k, v] : job.summary.metrics().entries()) {
                std::ostringstream frag;
                frag << "\"" << k << "\":";
                report::jsonNumber(frag, v);
                EXPECT_NE(blob.find(frag.str()), std::string::npos)
                    << job.label << " " << k;
            }
            const std::string raw = httpGet(
                fx.httpAddress(),
                "/api/store/" + job.digest + "?raw=1");
            EXPECT_NE(raw.find("Content-Type: text/plain"),
                      std::string::npos);
        }
        const std::string absent = httpGet(
            fx.httpAddress(), "/api/store/0123456789abcdef");
        EXPECT_NE(absent.find("HTTP/1.1 404"), std::string::npos);
        // Status now reports blob count and on-disk bytes.
        const svc::StatusInfo info = fx.server().status();
        EXPECT_EQ(info.storeBlobs, 4u);
        EXPECT_GT(info.storeBytes, 0u);
    }
    fs::remove_all(dir);
}

TEST(Dashboard, ZeroSubscriberSweepMatchesNoHttpRun)
{
    // Same sweep on a daemon with the dashboard mounted (but no HTTP
    // client attached) and on one without --http at all: every metric
    // byte must match — the dashboard costs nothing it doesn't use.
    std::vector<std::string> withHttp, without;
    {
        HttpFixture fx;
        svc::ServiceClient client(fx.address());
        const campaign::CampaignResult r =
            client.submit(grid("zero", smallGrid()));
        for (const campaign::JobResult &job : r.jobs)
            withHttp.push_back(job.label + "|" + metricsFragment(job));
    }
    {
        svc::ServerOptions opts;
        opts.engine.threads = 2;
        auto server = std::make_unique<svc::CampaignServer>(
            svc::parseAddress("tcp:127.0.0.1:0"), opts);
        std::thread t([&] { server->serve(); });
        svc::ServiceClient client(server->address().display());
        const campaign::CampaignResult r =
            client.submit(grid("zero", smallGrid()));
        for (const campaign::JobResult &job : r.jobs)
            without.push_back(job.label + "|" + metricsFragment(job));
        server->stop();
        t.join();
    }
    EXPECT_EQ(withHttp, without);
}

// ---- HttpServer lifecycle ------------------------------------------------

namespace {

/** A handler that answers 200 `{}` immediately. */
void
okHandler(const svc::HttpRequest &, svc::Socket &sock,
          const std::atomic<bool> &)
{
    sock.sendAll(svc::renderHttpResponse(200, "application/json",
                                         "{}\n"));
}

} // namespace

TEST(HttpServerLifecycle, ReapsFinishedConnectionThreads)
{
    svc::HttpServer server(svc::parseAddress("tcp:127.0.0.1:0"),
                           okHandler);
    for (int i = 0; i < 40; ++i) {
        const std::string resp = httpGet(server.address(), "/");
        ASSERT_NE(resp.find("HTTP/1.1 200"), std::string::npos);
    }
    // Every accept first joins connections whose handler returned, so
    // the tracked set follows live connections (none now), not the 40
    // requests served; only the most recent few may still be winding
    // down. A grow-only thread list would report 40 here.
    EXPECT_LE(server.trackedConnections(), 5u);
    EXPECT_EQ(server.requests(), 40u);
    server.stop();
    EXPECT_EQ(server.trackedConnections(), 0u);
}

TEST(HttpServerLifecycle, ConcurrentStopIsSafe)
{
    svc::HttpServer server(
        svc::parseAddress("tcp:127.0.0.1:0"),
        [](const svc::HttpRequest &, svc::Socket &sock,
           const std::atomic<bool> &stopping) {
            // The SSE shape: hold the connection until shutdown.
            while (!stopping.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            sock.sendAll(svc::renderHttpResponse(
                200, "text/plain", "bye\n"));
        });
    svc::Socket client = svc::connectTo(server.address());
    ASSERT_TRUE(
        client.sendAll("GET /hold HTTP/1.1\r\nHost: t\r\n\r\n"));
    while (server.requests() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // The shutdown protocol op and the signal watcher can race into
    // stop(); every caller must block until the one teardown is done,
    // and none may double-join a thread.
    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i)
        stoppers.emplace_back([&] { server.stop(); });
    for (std::thread &t : stoppers)
        t.join();
    EXPECT_EQ(server.trackedConnections(), 0u);
}

TEST(HttpServerLifecycle, IdleClientGets408)
{
    svc::HttpServer server(svc::parseAddress("tcp:127.0.0.1:0"),
                           okHandler, /*head_timeout_sec=*/1);
    // Connect, send nothing: the connection must not pin a thread
    // until daemon shutdown.
    svc::Socket s = svc::connectTo(server.address());
    std::string resp;
    char buf[512];
    long n;
    while ((n = s.readSome(buf, sizeof buf)) > 0)
        resp.append(buf, static_cast<std::size_t>(n));
    EXPECT_NE(resp.find("HTTP/1.1 408"), std::string::npos);
}

TEST(HttpServerLifecycle, TricklingClientGets408)
{
    svc::HttpServer server(svc::parseAddress("tcp:127.0.0.1:0"),
                           okHandler, /*head_timeout_sec=*/1);
    // One header byte every 100 ms keeps each recv() fresh, so only
    // the overall head deadline can cut this client off.
    svc::Socket s = svc::connectTo(server.address());
    std::atomic<bool> stop{false};
    std::thread trickler([&] {
        const std::string head = "GET / HTTP/1.1\r\nHost: t\r\n";
        std::size_t i = 0;
        while (!stop.load() && i < head.size()) {
            if (!s.sendAll(std::string(1, head[i])))
                break; // server closed on us — expected
            ++i;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
    });
    std::string resp;
    char buf[512];
    long n;
    while ((n = s.readSome(buf, sizeof buf)) > 0)
        resp.append(buf, static_cast<std::size_t>(n));
    stop.store(true);
    trickler.join();
    EXPECT_NE(resp.find("HTTP/1.1 408"), std::string::npos);
}

TEST(Dashboard, SseSessionsUnblockOnServerStop)
{
    auto fx = std::make_unique<HttpFixture>();
    std::atomic<bool> connected{false};
    std::string capture;
    std::thread watcher([&] {
        capture = readSseUntilDone(fx->httpAddress(), connected);
    });
    while (!connected.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    fx->stop(); // must close the stream, not strand the reader
    watcher.join();
    EXPECT_EQ(capture.find("event: done"), std::string::npos);
    fx.reset();
}
