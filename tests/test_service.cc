/**
 * @file
 * Campaign-service tests: the wire protocol (JSON parsing, request
 * validation, point-event round-trips) and the live server/client
 * stack — concurrent clients deduplicating onto one engine, and a
 * cold-restarted server replaying a sweep entirely from its
 * persistent store with byte-identical metrics.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "driver/campaign/engine.hh"
#include "driver/service/client.hh"
#include "driver/service/protocol.hh"
#include "driver/service/server.hh"
#include "driver/service/store.hh"
#include "driver/report/json_writer.hh"

using namespace tdm;
using namespace tdm::driver;
namespace svc = tdm::driver::service;
namespace fs = std::filesystem;

// ---- protocol: JSON parser ----------------------------------------------

TEST(ServiceJson, ParsesNestedDocument)
{
    svc::JsonValue v;
    std::string err;
    ASSERT_TRUE(svc::parseJson(
        R"({"op":"submit","n":3,"f":-1.5e2,"b":true,"null":null,)"
        R"("arr":[1,"two",{"three":3}],"esc":"a\"b\\c\n\u0041"})",
        v, err))
        << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("op")->asString(), "submit");
    EXPECT_EQ(v.find("n")->asNumber(), 3.0);
    EXPECT_EQ(v.find("f")->asNumber(), -150.0);
    EXPECT_TRUE(v.find("b")->asBool());
    EXPECT_EQ(v.find("null")->kind, svc::JsonValue::Kind::Null);
    ASSERT_EQ(v.find("arr")->items.size(), 3u);
    EXPECT_EQ(v.find("arr")->items[1].asString(), "two");
    EXPECT_EQ(v.find("arr")->items[2].find("three")->asNumber(), 3.0);
    EXPECT_EQ(v.find("esc")->asString(), "a\"b\\c\nA");
}

TEST(ServiceJson, RejectsMalformedInput)
{
    svc::JsonValue v;
    std::string err;
    for (const char *bad :
         {"", "{", "{\"a\":}", "[1,]", "{\"a\":1}trailing", "\"\\q\"",
          "{\"a\" 1}", "nul", "01", "--1", "\"unterminated"}) {
        EXPECT_FALSE(svc::parseJson(bad, v, err)) << bad;
    }
}

TEST(ServiceJson, NumbersKeepRawTextForExactIntegers)
{
    // u64 values past 2^53 survive because consumers read the raw
    // literal, not the double.
    svc::JsonValue v;
    std::string err;
    ASSERT_TRUE(svc::parseJson("{\"m\":2305843009213706617}", v, err));
    EXPECT_EQ(v.find("m")->text, "2305843009213706617");
}

// ---- protocol: requests --------------------------------------------------

TEST(ServiceProtocol, ParsesSubmitWithPoints)
{
    svc::Request req;
    std::string err;
    ASSERT_TRUE(svc::parseRequest(
        R"({"op":"submit","name":"grid","metrics":"dmu.*",)"
        R"("set":{"machine.cores":16},)"
        R"("points":[{"label":"a","spec":{"workload":"cholesky"}},)"
        R"({"spec":{"workload":"fft","seed":7}}]})",
        req, err))
        << err;
    EXPECT_EQ(req.op, svc::RequestOp::Submit);
    EXPECT_EQ(req.submit.name, "grid");
    EXPECT_EQ(req.submit.metrics, "dmu.*");
    ASSERT_EQ(req.submit.set.size(), 1u);
    EXPECT_EQ(req.submit.set[0].first, "machine.cores");
    EXPECT_EQ(req.submit.set[0].second, "16");
    ASSERT_EQ(req.submit.points.size(), 2u);
    EXPECT_EQ(req.submit.points[0].label, "a");
    EXPECT_EQ(req.submit.points[1].label, "");
    ASSERT_EQ(req.submit.points[1].spec.size(), 2u);
    EXPECT_EQ(req.submit.points[1].spec[1].second, "7");
}

TEST(ServiceProtocol, RejectsInvalidRequests)
{
    svc::Request req;
    std::string err;
    for (const char *bad : {
             "{}",                                   // no op
             R"({"op":"frobnicate"})",               // unknown op
             R"({"op":"submit"})",                   // neither body
             R"({"op":"submit","campaign":"x",)"
             R"("points":[{"spec":{}}]})",           // both bodies
             R"({"op":"submit","points":[]})",       // empty grid
             R"({"op":"submit","points":[{}]})",     // point sans spec
             R"({"op":"submit","campaign":42})",     // wrong type
             R"({"op":"submit","points":[{"spec":)"
             R"({"k":[1]}}]})",                      // non-scalar value
         }) {
        EXPECT_FALSE(svc::parseRequest(bad, req, err)) << bad;
    }
}

TEST(ServiceProtocol, PointEventRoundTrips)
{
    campaign::JobResult job;
    job.label = "cholesky/fifo";
    job.digest = "114b9f71d3add9e3";
    job.source = campaign::JobSource::Disk;
    job.cacheHit = true;
    job.wallMs = 0.0;
    job.summary.completed = true;
    job.summary.makespan = (sim::Tick{1} << 60) + 99; // > 2^53
    job.summary.timeMs = 0.1 + 0.2;
    job.summary.machine.metrics.set("dmu.tat.hit_rate",
                                    0.81481481481481477);
    job.summary.machine.metrics.set("machine.time_ms", 0.1 + 0.2);

    std::ostringstream os;
    svc::writePoint(os, 7, job, 2, 5, "*");
    std::string line = os.str();
    ASSERT_EQ(line.back(), '\n');
    line.pop_back();

    svc::JsonValue event;
    std::string err;
    ASSERT_TRUE(svc::parseJson(line, event, err)) << err;
    campaign::JobResult decoded;
    std::size_t index = 0, total = 0;
    ASSERT_TRUE(svc::decodePointEvent(event, decoded, index, total));
    EXPECT_EQ(index, 2u);
    EXPECT_EQ(total, 5u);
    EXPECT_EQ(decoded.label, job.label);
    EXPECT_EQ(decoded.digest, job.digest);
    EXPECT_EQ(decoded.source, campaign::JobSource::Disk);
    EXPECT_TRUE(decoded.cacheHit);
    EXPECT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.summary.makespan, job.summary.makespan);
    EXPECT_EQ(decoded.summary.timeMs, job.summary.timeMs);
    EXPECT_EQ(decoded.summary.machine.metrics.entries(),
              job.summary.machine.metrics.entries());
}

// ---- live server/client --------------------------------------------------

namespace {

Experiment
point(const std::string &sched, unsigned cores)
{
    Experiment e;
    e.workload = "cholesky";
    e.params.granularity = 262144; // 8x8 tiles, 120 tasks: fast
    e.runtime = core::RuntimeType::Tdm;
    e.config.scheduler = sched;
    e.config.numCores = cores;
    return e;
}

campaign::Campaign
grid(const std::string &name, std::vector<SweepPoint> points)
{
    campaign::Campaign c;
    c.name = name;
    c.points = std::move(points);
    c.metrics = "dmu.tat.*";
    return c;
}

/** The six distinct specs the concurrent clients overlap on. */
std::vector<SweepPoint>
distinctSix()
{
    return {
        {"fifo8", point("fifo", 8)},    {"age8", point("age", 8)},
        {"loc8", point("locality", 8)}, {"fifo16", point("fifo", 16)},
        {"age16", point("age", 16)},    {"fifo4", point("fifo", 4)},
    };
}

/** Render a job's selected metrics exactly as the service does, for
 *  byte-level comparison across server generations. */
std::string
metricBytes(const campaign::JobResult &job)
{
    std::ostringstream os;
    for (const auto &[k, v] : job.summary.metrics().entries()) {
        os << k << "=";
        report::jsonNumber(os, v);
        os << ";";
    }
    return os.str();
}

/** An in-process daemon on an ephemeral loopback port. */
class ServerFixture
{
  public:
    explicit ServerFixture(const std::string &store_dir)
    {
        svc::ServerOptions opts;
        opts.engine.threads = 2;
        opts.storeDir = store_dir;
        server_ = std::make_unique<svc::CampaignServer>(
            svc::parseAddress("tcp:127.0.0.1:0"), opts);
        thread_ = std::thread([this] { server_->serve(); });
    }

    ~ServerFixture() { stop(); }

    void
    stop()
    {
        if (thread_.joinable()) {
            server_->stop();
            thread_.join();
        }
    }

    std::string address() const { return server_->address().display(); }
    svc::CampaignServer &server() { return *server_; }

  private:
    std::unique_ptr<svc::CampaignServer> server_;
    std::thread thread_;
};

} // namespace

TEST(ServiceServer, PingStatusAndErrorReporting)
{
    const std::string dir =
        (fs::temp_directory_path()
         / ("tdm_svc_ping_" + std::to_string(::getpid())))
            .string();
    fs::remove_all(dir);
    ServerFixture fx(dir);

    svc::ServiceClient client(fx.address());
    EXPECT_TRUE(client.ping());
    svc::StatusInfo info = client.status();
    EXPECT_EQ(info.campaigns, 0u);
    EXPECT_TRUE(info.hasStore);
    EXPECT_EQ(info.storeBlobs, 0u);

    // A bad submission is an error event, not a dropped connection —
    // the same socket keeps serving afterwards. Driven over a raw
    // socket: the C++ client validates specs before sending.
    svc::Socket raw =
        svc::connectTo(svc::parseAddress(fx.address()));
    ASSERT_TRUE(raw.sendAll(
        "{\"op\":\"submit\",\"points\":[{\"spec\":"
        "{\"workload\":\"no-such-workload\"}}]}\n"));
    std::string line;
    ASSERT_TRUE(raw.readLine(line));
    EXPECT_NE(line.find("\"event\":\"error\""), std::string::npos)
        << line;
    ASSERT_TRUE(raw.sendAll("{\"op\":\"ping\"}\n"));
    ASSERT_TRUE(raw.readLine(line));
    EXPECT_NE(line.find("\"event\":\"pong\""), std::string::npos);
    // Unparseable garbage likewise answers with an error event.
    ASSERT_TRUE(raw.sendAll("this is not json\n"));
    ASSERT_TRUE(raw.readLine(line));
    EXPECT_NE(line.find("\"event\":\"error\""), std::string::npos);

    fx.stop();
    fs::remove_all(dir);
}

TEST(ServiceServer, ConcurrentClientsSimulateEachPointOnce)
{
    const std::string dir =
        (fs::temp_directory_path()
         / ("tdm_svc_dedup_" + std::to_string(::getpid())))
            .string();
    fs::remove_all(dir);
    ServerFixture fx(dir);

    // Four clients, each submitting an overlapping 4-point slice of
    // the same six distinct specs, all in flight together.
    const auto six = distinctSix();
    constexpr unsigned kClients = 4;
    std::vector<campaign::CampaignResult> results(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            std::vector<SweepPoint> slice;
            for (unsigned i = 0; i < 4; ++i)
                slice.push_back(six[(c + i) % six.size()]);
            svc::ServiceClient client(fx.address());
            results[c] = client.submit(
                grid("overlap-" + std::to_string(c), slice));
        });
    }
    for (std::thread &t : clients)
        t.join();

    std::uint64_t simulated = 0;
    for (const auto &rep : results) {
        ASSERT_EQ(rep.jobs.size(), 4u);
        EXPECT_TRUE(rep.allOk()) << rep.name;
        simulated += rep.simulated;
    }
    // THE dedup invariant: one simulation ever per distinct
    // fingerprint, no matter how the concurrent submissions raced —
    // everything else was served from memory or the in-flight table.
    EXPECT_EQ(simulated, six.size());

    // Identical specs resolved identically for every client.
    for (unsigned c = 1; c < kClients; ++c)
        for (unsigned i = 0; i < 4; ++i)
            for (unsigned j = 0; j < 4; ++j)
                if (results[c].jobs[i].digest
                    == results[0].jobs[j].digest) {
                    EXPECT_EQ(results[c].jobs[i].summary.makespan,
                              results[0].jobs[j].summary.makespan);
                }

    svc::ServiceClient probe(fx.address());
    svc::StatusInfo info = probe.status();
    EXPECT_EQ(info.simulated, six.size());
    EXPECT_EQ(info.storeBlobs, six.size());

    fx.stop();
    fs::remove_all(dir);
}

TEST(ServiceServer, RestartServesSweepEntirelyFromDisk)
{
    const std::string dir =
        (fs::temp_directory_path()
         / ("tdm_svc_restart_" + std::to_string(::getpid())))
            .string();
    fs::remove_all(dir);

    const auto six = distinctSix();
    campaign::CampaignResult first;
    {
        ServerFixture fx(dir);
        svc::ServiceClient client(fx.address());
        first = client.submit(grid("sweep", six));
        ASSERT_TRUE(first.allOk());
        EXPECT_EQ(first.simulated, six.size());
        fx.stop(); // daemon gone; only the store survives
    }

    ServerFixture fx(dir);
    svc::ServiceClient client(fx.address());
    campaign::CampaignResult replay = client.submit(grid("sweep", six));
    ASSERT_TRUE(replay.allOk());

    // Zero simulations: every point came off disk.
    EXPECT_EQ(replay.simulated, 0u);
    EXPECT_EQ(replay.fromDisk, six.size());
    EXPECT_EQ(replay.fromMemory, 0u);

    // And byte-identical metrics: the store's 17-digit round-trip plus
    // the shared jsonNumber formatter make the replayed export
    // indistinguishable from the original.
    for (std::size_t i = 0; i < six.size(); ++i) {
        EXPECT_EQ(replay.jobs[i].digest, first.jobs[i].digest);
        EXPECT_EQ(replay.jobs[i].summary.makespan,
                  first.jobs[i].summary.makespan);
        EXPECT_EQ(metricBytes(replay.jobs[i]), metricBytes(first.jobs[i]))
            << replay.jobs[i].label;
    }

    fx.stop();
    fs::remove_all(dir);
}
