/**
 * @file
 * Property-based equivalence between the DMU and the software tracker:
 * driven with the same randomly generated task graphs, both must
 * produce identical readiness events in identical order. This is the
 * key functional property of the co-design — the hardware must build
 * exactly the TDG the software runtime would.
 */

#include <gtest/gtest.h>

#include <queue>

#include "dmu/dmu.hh"
#include "runtime/software_tracker.hh"
#include "runtime/task_graph.hh"
#include "sim/rng.hh"

using namespace tdm;

namespace {

/** Build a random single-region-barrier task graph. */
rt::TaskGraph
randomGraph(std::uint64_t seed, unsigned num_tasks, unsigned num_regions,
            unsigned max_deps)
{
    sim::Rng rng(seed);
    rt::TaskGraph g("random");
    std::vector<rt::RegionId> regions;
    for (unsigned r = 0; r < num_regions; ++r)
        regions.push_back(g.addRegion(4096 + 4096 * rng.below(8)));
    g.beginParallel();
    for (unsigned t = 0; t < num_tasks; ++t) {
        g.createTask(100 + rng.below(1000));
        unsigned ndeps = 1 + rng.below(max_deps);
        std::vector<bool> used(num_regions, false);
        for (unsigned d = 0; d < ndeps; ++d) {
            unsigned r = static_cast<unsigned>(rng.below(num_regions));
            if (used[r])
                continue; // one dep per region per task
            used[r] = true;
            double p = rng.uniform();
            rt::DepDir dir = p < 0.4 ? rt::DepDir::In
                           : p < 0.7 ? rt::DepDir::Out
                                     : rt::DepDir::InOut;
            g.dep(regions[r], dir);
        }
    }
    return g;
}

/**
 * Replay a graph on both implementations with an interleaved
 * create/execute schedule and compare readiness events step by step.
 */
void
checkEquivalence(const rt::TaskGraph &g, std::uint64_t sched_seed)
{
    dmu::DmuConfig cfg;
    cfg.readyQueueEntries = cfg.tatEntries;
    dmu::Dmu hw(cfg);
    rt::SoftwareTracker sw(g);

    sim::Rng rng(sched_seed);
    std::deque<rt::TaskId> sw_ready, hw_ready;
    std::vector<rt::TaskId> running;
    rt::TaskId next = 0;
    unsigned finished = 0;

    auto hw_make = [&](rt::TaskId id) {
        const rt::Task &t = g.task(id);
        ASSERT_FALSE(hw.createTask(t.descAddr).blocked);
        for (const rt::DepSpec &d : t.deps) {
            const rt::DataRegion &r = g.region(d.region);
            ASSERT_FALSE(hw.addDependence(t.descAddr, r.baseAddr, r.bytes,
                                          d.writes()).blocked);
        }
        auto res = hw.commitTask(t.descAddr);
        for (std::uint64_t desc : res.readyDescAddrs) {
            // Map back to task id via the graph (descriptors ascend).
            for (const rt::Task &tt : g.tasks())
                if (tt.descAddr == desc)
                    hw_ready.push_back(tt.id);
        }
    };

    while (finished < g.numTasks()) {
        bool can_create = next < g.numTasks();
        bool can_run = !sw_ready.empty();
        double p = rng.uniform();
        if (can_create && (p < 0.5 || !can_run)) {
            rt::TaskId id = next++;
            auto w = sw.create(id);
            if (w.readyNow)
                sw_ready.push_back(id);
            hw_make(id);
        } else if (can_run) {
            rt::TaskId id = sw_ready.front();
            sw_ready.pop_front();
            ASSERT_FALSE(hw_ready.empty())
                << "sw has ready task " << id << " but hw has none";
            EXPECT_EQ(hw_ready.front(), id)
                << "readiness order diverged";
            hw_ready.pop_front();

            auto wf = sw.finish(id);
            for (rt::TaskId r : wf.newlyReady)
                sw_ready.push_back(r);
            auto hf = hw.finishTask(g.task(id).descAddr);
            for (std::uint64_t desc : hf.readyDescAddrs)
                for (const rt::Task &tt : g.tasks())
                    if (tt.descAddr == desc)
                        hw_ready.push_back(tt.id);
            ++finished;
        } else {
            FAIL() << "no progress possible: deadlock in test harness";
        }
    }
    EXPECT_TRUE(hw_ready.empty());
    EXPECT_EQ(hw.tasksInFlight(), 0u);
    EXPECT_EQ(hw.depsInFlight(), 0u);
}

struct EquivParam
{
    std::uint64_t seed;
    unsigned tasks;
    unsigned regions;
    unsigned maxDeps;
};

class DmuEquivalence : public ::testing::TestWithParam<EquivParam>
{};

} // namespace

TEST_P(DmuEquivalence, MatchesSoftwareTracker)
{
    const EquivParam &p = GetParam();
    rt::TaskGraph g = randomGraph(p.seed, p.tasks, p.regions, p.maxDeps);
    checkEquivalence(g, p.seed * 31 + 7);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, DmuEquivalence,
    ::testing::Values(
        EquivParam{1, 50, 4, 2}, EquivParam{2, 50, 8, 3},
        EquivParam{3, 100, 4, 2}, EquivParam{4, 100, 16, 4},
        EquivParam{5, 200, 8, 3}, EquivParam{6, 200, 32, 4},
        EquivParam{7, 400, 16, 3}, EquivParam{8, 400, 64, 5},
        EquivParam{9, 800, 24, 3}, EquivParam{10, 800, 12, 2},
        EquivParam{11, 150, 2, 2}, EquivParam{12, 300, 6, 6}),
    [](const ::testing::TestParamInfo<EquivParam> &info) {
        return "seed" + std::to_string(info.param.seed);
    });

TEST(DmuEquivalenceWorkload, CholeskyLikeGraph)
{
    // A miniature cholesky-shaped graph (deterministic kernels).
    rt::TaskGraph g("mini-cho");
    const unsigned n = 4;
    std::vector<rt::RegionId> tile(n * n);
    for (auto &t : tile)
        t = g.addRegion(16384);
    auto at = [&](unsigned i, unsigned j) { return tile[i * n + j]; };
    g.beginParallel();
    for (unsigned j = 0; j < n; ++j) {
        for (unsigned k = 0; k < j; ++k)
            for (unsigned i = j + 1; i < n; ++i) {
                g.createTask(100);
                g.dep(at(i, k), rt::DepDir::In);
                g.dep(at(j, k), rt::DepDir::In);
                g.dep(at(i, j), rt::DepDir::InOut);
            }
        for (unsigned i = j + 1; i < n; ++i) {
            g.createTask(100);
            g.dep(at(i, j), rt::DepDir::In);
            g.dep(at(j, j), rt::DepDir::InOut);
        }
        g.createTask(100);
        g.dep(at(j, j), rt::DepDir::InOut);
        for (unsigned i = j + 1; i < n; ++i) {
            g.createTask(100);
            g.dep(at(j, j), rt::DepDir::In);
            g.dep(at(i, j), rt::DepDir::InOut);
        }
    }
    checkEquivalence(g, 99);
}
