/**
 * @file
 * Unit coverage for the warm-start fork machinery (PR 10): the
 * Snapshot capture/restore primitive, the event queue's pending-image
 * round trip, the spec key-phase classification and its two
 * fingerprints, and ForkGroupRunner's degradation paths. The
 * end-to-end bit-for-bit contract over every golden configuration
 * lives in test_golden_determinism.cc.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/campaign/fingerprint.hh"
#include "driver/experiment.hh"
#include "driver/fork_runner.hh"
#include "driver/spec/spec.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/snapshot.hh"

using namespace tdm;

// ---- Snapshot primitive -----------------------------------------------

TEST(Snapshot, CaptureRestoresFieldsInPlace)
{
    int a = 1;
    std::vector<int> v{1, 2, 3};
    sim::Snapshot s;
    s.capture(a);
    s.capture(v);
    a = 99;
    v.clear();
    s.restore();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(v, (std::vector<int>{1, 2, 3}));
}

TEST(Snapshot, RestoreIsRepeatable)
{
    // Each fork of a warm group restores the same image again; the
    // snapshot must not be consumed by the first restore.
    int a = 7;
    sim::Snapshot s;
    s.capture(a);
    for (int round = 0; round < 3; ++round) {
        a = 1000 + round;
        s.restore();
        EXPECT_EQ(a, 7);
    }
}

TEST(Snapshot, RngRoundTripReplaysTheStream)
{
    sim::Rng rng(12345);
    (void)rng.next();
    (void)rng.next();

    sim::Snapshot s;
    rng.snapshotState(s);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 8; ++i)
        first.push_back(rng.next());

    s.restore();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(rng.next(), first[i]) << "draw " << i;
}

// ---- EventQueue pending-image round trip ------------------------------

namespace {

struct Recorder
{
    std::vector<std::pair<sim::Tick, int>> log;
    sim::EventQueue *eq = nullptr;

    void
    poke(int v)
    {
        log.emplace_back(eq->now(), v);
    }
};

} // namespace

TEST(WarmForkEventQueue, SnapshotRestoreReplaysIdenticalSequence)
{
    sim::EventQueue eq;
    Recorder r{{}, &eq};
    // Enough pending events to spill the small flat-heap tier
    // (smallCap = 32) into the calendar, so the snapshot walks both.
    for (int i = 0; i < 200; ++i)
        eq.post<&Recorder::poke>(10 + 7 * i, &r, i);
    eq.run(300); // consume a prefix: snapshot mid-flight state

    sim::Snapshot s;
    ASSERT_TRUE(eq.snapshotState(s));
    const sim::Tick boundary = eq.now();
    const std::size_t consumed = r.log.size();

    eq.run();
    const auto firstTail = std::vector<std::pair<sim::Tick, int>>(
        r.log.begin() + static_cast<std::ptrdiff_t>(consumed),
        r.log.end());
    ASSERT_FALSE(firstTail.empty());

    // Restore twice: every replay must fire the same events at the
    // same ticks in the same order.
    for (int round = 0; round < 2; ++round) {
        r.log.clear();
        s.restore();
        EXPECT_EQ(eq.now(), boundary);
        eq.run();
        EXPECT_EQ(r.log, firstTail) << "replay " << round;
    }
}

TEST(WarmForkEventQueue, DeclinesSnapshotWithLambdaPending)
{
    // Type-erased lambda payloads cannot be cloned; the queue refuses
    // to capture (and the machine degrades to a cold run) instead of
    // producing a snapshot that silently drops the event.
    sim::EventQueue eq;
    eq.scheduleAt(5, [] {});
    sim::Snapshot s;
    EXPECT_FALSE(eq.snapshotState(s));
    EXPECT_TRUE(s.empty());
    eq.run(); // the lambda still fires normally
    EXPECT_EQ(eq.executed(), 1u);
}

// ---- spec key-phase classification ------------------------------------

TEST(WarmForkSpec, KeyPhasesPinTheForkContract)
{
    // The grouping proof depends on this classification: mem.* keys
    // are first consumed at the warmup/ROI boundary, power.* keys
    // only during finalization, and everything else — including the
    // mem-model toggle, which changes the metric-registry shape — is
    // conservatively Warmup.
    for (const driver::spec::Binding &b : driver::spec::allBindings()) {
        driver::spec::KeyPhase want = driver::spec::KeyPhase::Warmup;
        if (b.key.rfind("mem.", 0) == 0)
            want = driver::spec::KeyPhase::Roi;
        else if (b.key.rfind("power.", 0) == 0)
            want = driver::spec::KeyPhase::Final;
        EXPECT_EQ(b.phase, want) << b.key;
    }
    const driver::spec::Binding *toggle =
        driver::spec::findBinding("machine.mem_model");
    ASSERT_NE(toggle, nullptr);
    EXPECT_EQ(toggle->phase, driver::spec::KeyPhase::Warmup);
}

TEST(WarmForkSpec, FingerprintsProjectByPhase)
{
    driver::Experiment base;
    const sim::Config canonBase =
        driver::campaign::canonicalConfig(base);

    driver::Experiment power = base;
    power.config.power.activeWatts *= 2.0;
    const sim::Config canonPower =
        driver::campaign::canonicalConfig(power);

    driver::Experiment mem = base;
    mem.config.mem.l1Bytes /= 2;
    const sim::Config canonMem = driver::campaign::canonicalConfig(mem);

    driver::Experiment sched = base;
    sched.config.scheduler = "locality";
    const sim::Config canonSched =
        driver::campaign::canonicalConfig(sched);

    // Warm fingerprint: blind to mem.* and power.*, sensitive to
    // anything that shapes the warmup trajectory.
    EXPECT_EQ(driver::spec::warmFingerprint(canonBase),
              driver::spec::warmFingerprint(canonPower));
    EXPECT_EQ(driver::spec::warmFingerprint(canonBase),
              driver::spec::warmFingerprint(canonMem));
    EXPECT_NE(driver::spec::warmFingerprint(canonBase),
              driver::spec::warmFingerprint(canonSched));

    // ROI fingerprint: blind only to power.*.
    EXPECT_EQ(driver::spec::roiFingerprint(canonBase),
              driver::spec::roiFingerprint(canonPower));
    EXPECT_NE(driver::spec::roiFingerprint(canonBase),
              driver::spec::roiFingerprint(canonMem));
    EXPECT_NE(driver::spec::roiFingerprint(canonBase),
              driver::spec::roiFingerprint(canonSched));
}

// ---- ForkGroupRunner degradation --------------------------------------

TEST(ForkGroupRunner, DisabledForkAlwaysRunsCold)
{
    // --no-warm-fork / singleton groups: the runner must be a
    // transparent pass-through to driver::run().
    driver::Experiment e;
    e.workload = "lu";
    const driver::RunSummary cold = driver::run(e);
    const std::string key = driver::spec::roiFingerprint(
        driver::campaign::canonicalConfig(e));

    driver::ForkGroupRunner runner(nullptr, /*enableFork=*/false);
    for (int round = 0; round < 2; ++round) {
        bool forked = true;
        const driver::RunSummary s =
            runner.run(e, key, nullptr, &forked);
        EXPECT_FALSE(forked);
        EXPECT_EQ(s.makespan, cold.makespan);
    }
}

TEST(ForkGroupRunner, ResetForcesAFreshColdLeg)
{
    driver::Experiment e;
    e.workload = "lu";
    const std::string key = driver::spec::roiFingerprint(
        driver::campaign::canonicalConfig(e));

    driver::ForkGroupRunner runner(nullptr);
    bool forked = false;
    const driver::RunSummary first =
        runner.run(e, key, nullptr, &forked);
    EXPECT_FALSE(forked);

    // With snapshots available an identical member forks...
    const driver::RunSummary again =
        runner.run(e, key, nullptr, &forked);
    EXPECT_TRUE(forked);
    EXPECT_EQ(again.makespan, first.makespan);

    // ...but after reset() (the engine's error recovery) the machine
    // is gone and the next member starts cold again.
    runner.reset();
    const driver::RunSummary recovered =
        runner.run(e, key, nullptr, &forked);
    EXPECT_FALSE(forked);
    EXPECT_EQ(recovered.makespan, first.makespan);
}
