/**
 * @file
 * Golden-determinism guard for tracing: the instrumented run IS the
 * plain run.
 *
 * Every pinned makespan from test_golden_determinism.cc must reproduce
 * bit-for-bit with every trace category enabled — tracing is pure
 * observation (inline mask checks and buffer appends; no events, no
 * allocation in the hot path, no reordering). One reference point
 * additionally pins its event count and record digest, so silent
 * changes to what gets recorded (dropped instrumentation, double
 * recording, reordered sampling) show up as a diff here rather than as
 * a mystery in somebody's Perfetto timeline.
 */

#include <gtest/gtest.h>

#include "driver/experiment.hh"
#include "sim/trace.hh"

using namespace tdm;

namespace {

struct Golden
{
    core::RuntimeType runtime;
    const char *workload;
    const char *scheduler;
    sim::Tick makespan;
};

// Same table as test_golden_determinism.cc: the seed kernel's pinned
// makespans.
const Golden goldens[] = {
    {core::RuntimeType::Tdm, "cholesky", "fifo", 142451635ull},
    {core::RuntimeType::Tdm, "cholesky", "locality", 144116539ull},
    {core::RuntimeType::Tdm, "lu", "fifo", 46711567ull},
    {core::RuntimeType::Tdm, "lu", "locality", 45515187ull},
    {core::RuntimeType::Tdm, "dedup", "fifo", 809107314ull},
    {core::RuntimeType::Tdm, "dedup", "locality", 801222268ull},
    {core::RuntimeType::Software, "cholesky", "fifo", 157277791ull},
    {core::RuntimeType::Software, "cholesky", "locality", 160051164ull},
    {core::RuntimeType::Software, "lu", "fifo", 47266035ull},
    {core::RuntimeType::Software, "lu", "locality", 45521241ull},
    {core::RuntimeType::Software, "dedup", "fifo", 809344123ull},
    {core::RuntimeType::Software, "dedup", "locality", 801426713ull},
};

class TracedGolden : public ::testing::TestWithParam<Golden>
{};

} // namespace

TEST_P(TracedGolden, FullTracingLeavesTheMakespanByteIdentical)
{
    const Golden &g = GetParam();
    driver::Experiment e;
    e.workload = g.workload;
    e.runtime = g.runtime;
    e.config.scheduler = g.scheduler;
    e.config.trace.categories = sim::traceCatAll;

    sim::TraceBuffer tb;
    driver::RunSummary s = driver::run(e, nullptr, &tb);
    ASSERT_TRUE(s.completed);
    EXPECT_EQ(s.makespan, g.makespan)
        << "tracing perturbed the simulation for " << g.workload << "/"
        << g.scheduler;
    EXPECT_GT(tb.size(), 0u);
    EXPECT_EQ(tb.dropped(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldens, TracedGolden, ::testing::ValuesIn(goldens),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return std::string(core::traitsOf(info.param.runtime).name) + "_"
             + info.param.workload + "_" + info.param.scheduler;
    });

TEST(TracedGolden, ReferencePointPinsEventCountAndDigest)
{
    // Tdm/cholesky/fifo with every category on. If instrumentation is
    // added, removed or resampled, re-pin these two values in the same
    // commit and say so — an unexplained diff means the simulation (or
    // what the trace claims about it) changed.
    driver::Experiment e;
    e.workload = "cholesky";
    e.runtime = core::RuntimeType::Tdm;
    e.config.scheduler = "fifo";
    e.config.trace.categories = sim::traceCatAll;

    sim::TraceBuffer tb;
    driver::RunSummary s = driver::run(e, nullptr, &tb);
    ASSERT_TRUE(s.completed);
    EXPECT_EQ(s.makespan, 142451635ull);
    EXPECT_EQ(tb.dropped(), 0u);
    EXPECT_EQ(tb.size(), 510791ull);
    EXPECT_EQ(tb.digest(), 15356664645439498864ull);
}
