/**
 * @file
 * Full-stack integration: every benchmark under every runtime model at
 * the paper's configuration must complete, execute every task, respect
 * the critical-path lower bound, and keep time accounting consistent.
 * Also checks the headline cross-runtime relationships on the
 * creation-bound benchmarks.
 */

#include <gtest/gtest.h>

#include "driver/experiment.hh"
#include "driver/report/aggregate.hh"

using namespace tdm;

namespace {

struct IntegrationParam
{
    const char *workload;
    core::RuntimeType runtime;
};

class FullStack : public ::testing::TestWithParam<IntegrationParam>
{};

std::vector<IntegrationParam>
allCombos()
{
    std::vector<IntegrationParam> out;
    for (const auto &w : wl::allWorkloads())
        for (auto rt_ : core::allRuntimeTypes())
            out.push_back({w.name.c_str(), rt_});
    return out;
}

} // namespace

TEST_P(FullStack, CompletesAndAccountsTime)
{
    const IntegrationParam &p = GetParam();
    driver::Experiment e;
    e.workload = p.workload;
    e.runtime = p.runtime;
    e.config.scheduler = "fifo";
    auto s = driver::run(e);
    ASSERT_TRUE(s.completed);
    EXPECT_EQ(s.machine.tasksExecuted, s.numTasks);
    EXPECT_GT(s.timeMs, 0.0);
    EXPECT_GT(s.energyJ, 0.0);

    // Makespan can never beat the dependence-graph critical path.
    wl::WorkloadParams params;
    params.tdmOptimal = core::traitsOf(p.runtime).usesDmu();
    rt::TaskGraph g = wl::buildWorkload(p.workload, params);
    EXPECT_GE(s.makespan, g.criticalPathCycles());
    // ... nor the perfectly parallel work bound.
    EXPECT_GE(s.makespan,
              g.totalComputeCycles() / e.config.numCores);

    // Chip-wide accounted time stays within the physical budget.
    EXPECT_LE(s.machine.chipTotal.busy(),
              s.makespan * e.config.numCores);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllRuntimes, FullStack,
    ::testing::ValuesIn(allCombos()),
    [](const ::testing::TestParamInfo<IntegrationParam> &info) {
        return std::string(info.param.workload) + "_"
             + core::traitsOf(info.param.runtime).name;
    });

TEST(Integration, TdmBeatsSwOnCreationBoundBenchmarks)
{
    for (const char *w : {"cholesky", "qr", "streamcluster"}) {
        driver::Experiment e;
        e.workload = w;
        e.config.scheduler = "fifo";
        e.runtime = core::RuntimeType::Software;
        auto sw = driver::run(e);
        e.runtime = core::RuntimeType::Tdm;
        auto tdm = driver::run(e);
        ASSERT_TRUE(sw.completed && tdm.completed);
        EXPECT_GT(driver::speedup(sw, tdm), 1.05) << w;
    }
}

TEST(Integration, TdmReducesCreationFractionOnAverage)
{
    std::vector<double> sw_frac, tdm_frac;
    for (const auto &w : wl::allWorkloads()) {
        driver::Experiment e;
        e.workload = w.name;
        e.config.scheduler = "fifo";
        e.runtime = core::RuntimeType::Software;
        sw_frac.push_back(
            driver::run(e).machine.masterCreationFraction);
        e.runtime = core::RuntimeType::Tdm;
        tdm_frac.push_back(
            driver::run(e).machine.masterCreationFraction);
    }
    // Figure 10's claim: average creation time drops substantially.
    EXPECT_LT(driver::report::mean(tdm_frac), 0.6 * driver::report::mean(sw_frac));
}

TEST(Integration, FlexibleSchedulingBeatsFixedHardware)
{
    // Section VI-C: the best TDM scheduler outperforms Task
    // Superscalar on benchmarks where policy matters (dedup).
    driver::Experiment e;
    e.workload = "dedup";
    e.config.scheduler = "fifo";
    e.runtime = core::RuntimeType::TaskSuperscalar;
    auto tss = driver::run(e);
    e.runtime = core::RuntimeType::Tdm;
    e.config.scheduler = "successor";
    auto tdm = driver::run(e);
    ASSERT_TRUE(tss.completed && tdm.completed);
    EXPECT_GT(driver::speedup(tss, tdm), 1.05);
}

TEST(Integration, DmuPowerIsNegligible)
{
    // The DMU adds well under 1% to the chip energy (paper: <0.01% of
    // power). Compare TDM energy against the same machine with the
    // accelerator contributions subtracted via the SW run's ratio.
    driver::Experiment e;
    e.workload = "cholesky";
    e.config.scheduler = "fifo";
    e.runtime = core::RuntimeType::Tdm;
    auto s = driver::run(e);
    ASSERT_TRUE(s.completed);
    // DMU dynamic energy: accesses x ~3 pJ; leakage ~2 mW.
    double dmu_j = static_cast<double>(s.machine.dmuAccesses) * 3e-12
                 + 2e-3 * s.timeMs * 1e-3;
    EXPECT_LT(dmu_j / s.energyJ, 0.01);
}
