/**
 * @file
 * Unit tests for the line-level cache and the region cache.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <unordered_map>
#include <utility>

#include "mem/region_cache.hh"
#include "mem/set_assoc_cache.hh"

using namespace tdm;

TEST(SetAssocCache, HitAfterMiss)
{
    mem::SetAssocCache c({1024, 2, 64});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, SameLineDifferentOffsetHits)
{
    mem::SetAssocCache c({1024, 2, 64});
    c.access(0x1000);
    EXPECT_TRUE(c.access(0x103F));
    EXPECT_FALSE(c.access(0x1040)); // next line
}

TEST(SetAssocCache, LruEvictionWithinSet)
{
    // 2 sets x 2 ways, 64B lines: addresses with the same set bits
    // conflict after 2 distinct tags.
    mem::SetAssocCache c({256, 2, 64});
    EXPECT_EQ(c.geometry().numSets(), 2u);
    c.access(0x0000);          // set 0, tag 0
    c.access(0x0080);          // set 0, tag 1
    EXPECT_TRUE(c.access(0x0000)); // refresh tag 0
    c.access(0x0100);          // set 0, tag 2 -> evicts tag 1 (LRU)
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x0080));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(SetAssocCache, InvalidateAndFlush)
{
    mem::SetAssocCache c({1024, 4, 64});
    c.access(0x2000);
    EXPECT_TRUE(c.invalidate(0x2000));
    EXPECT_FALSE(c.invalidate(0x2000));
    EXPECT_FALSE(c.contains(0x2000));
    c.access(0x2000);
    c.access(0x3000);
    c.flush();
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(RegionCache, HitTracking)
{
    mem::RegionCache rc(1024);
    EXPECT_FALSE(rc.touch(1, 256));
    EXPECT_TRUE(rc.touch(1, 256));
    EXPECT_EQ(rc.hits(), 1u);
    EXPECT_EQ(rc.misses(), 1u);
    EXPECT_EQ(rc.usedBytes(), 256u);
}

TEST(RegionCache, LruEvictionByBytes)
{
    mem::RegionCache rc(1000);
    rc.touch(1, 400);
    rc.touch(2, 400);
    rc.touch(1, 400); // 1 becomes MRU
    rc.touch(3, 400); // evicts 2
    EXPECT_TRUE(rc.contains(1));
    EXPECT_FALSE(rc.contains(2));
    EXPECT_TRUE(rc.contains(3));
    EXPECT_EQ(rc.evictions(), 1u);
}

TEST(RegionCache, OversizedRegionOccupiesWholeCache)
{
    mem::RegionCache rc(1000);
    rc.touch(1, 100);
    rc.touch(2, 5000); // larger than capacity: clamped, evicts all
    EXPECT_FALSE(rc.contains(1));
    EXPECT_TRUE(rc.contains(2));
    EXPECT_LE(rc.usedBytes(), 1000u);
}

TEST(RegionCache, InvalidateAndFlush)
{
    mem::RegionCache rc(1024);
    rc.touch(7, 64);
    EXPECT_TRUE(rc.invalidate(7));
    EXPECT_FALSE(rc.invalidate(7));
    rc.touch(8, 64);
    rc.flush();
    EXPECT_EQ(rc.residentRegions(), 0u);
    EXPECT_EQ(rc.usedBytes(), 0u);
}

TEST(RegionCache, ResizeOnRetouch)
{
    mem::RegionCache rc(1024);
    rc.touch(1, 100);
    rc.touch(1, 300);
    EXPECT_EQ(rc.usedBytes(), 300u);
}

namespace {

/** Minimal reference LRU with the pre-flat semantics: a std::list of
 *  (id, bytes) nodes and an iterator map. The fuzz test below drives
 *  it in lockstep with the open-addressed implementation. */
class NaiveLru
{
  public:
    explicit NaiveLru(std::uint64_t cap) : cap_(cap) {}

    bool
    touch(mem::RegionId id, std::uint64_t bytes)
    {
        bool hit = erase(id);
        std::uint64_t eff = std::min(bytes, cap_);
        while (used_ + eff > cap_ && !lru_.empty()) {
            used_ -= lru_.back().second;
            map_.erase(lru_.back().first);
            lru_.pop_back();
            ++evictions_;
        }
        lru_.push_front({id, eff});
        map_[id] = lru_.begin();
        used_ += eff;
        return hit;
    }

    bool erase(mem::RegionId id)
    {
        auto it = map_.find(id);
        if (it == map_.end())
            return false;
        used_ -= it->second->second;
        lru_.erase(it->second);
        map_.erase(it);
        return true;
    }

    bool contains(mem::RegionId id) const { return map_.count(id) != 0; }

    void
    clear()
    {
        lru_.clear();
        map_.clear();
        used_ = 0;
    }

    std::uint64_t used() const { return used_; }
    std::size_t resident() const { return map_.size(); }
    std::uint64_t evictions() const { return evictions_; }

  private:
    std::uint64_t cap_, used_ = 0, evictions_ = 0;
    std::list<std::pair<mem::RegionId, std::uint64_t>> lru_;
    std::unordered_map<
        mem::RegionId,
        std::list<std::pair<mem::RegionId, std::uint64_t>>::iterator>
        map_;
};

} // namespace

TEST(RegionCache, FuzzAgainstNaiveLru)
{
    // Drives the open-addressed index through its interesting regimes
    // — growth/rehash, backward-shift deletion under clustering, slot
    // recycling, whole-cache flushes — and checks every observable
    // against a naive list-based LRU after each operation.
    mem::RegionCache rc(4096);
    NaiveLru ref(4096);
    std::uint64_t rng = 12345;
    auto next = [&] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return rng >> 33;
    };

    for (int op = 0; op < 20000; ++op) {
        std::uint64_t r = next();
        // Skewed id space: heavy reuse plus a long tail so the index
        // churns through inserts and deletes of clustered keys.
        mem::RegionId id = (r & 1) ? r % 13 : r % 4093;
        std::uint64_t bytes = 1 + next() % 2048;
        switch (next() % 8) {
          case 0:
            EXPECT_EQ(rc.invalidate(id), ref.erase(id));
            break;
          case 1:
            EXPECT_EQ(rc.contains(id), ref.contains(id));
            break;
          case 2:
            if (op % 977 == 0) {
                rc.flush();
                ref.clear();
                break;
            }
            [[fallthrough]];
          default:
            EXPECT_EQ(rc.touch(id, bytes), ref.touch(id, bytes));
            EXPECT_EQ(rc.evictions(), ref.evictions());
            break;
        }
        ASSERT_EQ(rc.usedBytes(), ref.used()) << "op " << op;
        ASSERT_EQ(rc.residentRegions(), ref.resident()) << "op " << op;
    }
}
