/**
 * @file
 * Unit tests for the line-level cache and the region cache.
 */

#include <gtest/gtest.h>

#include "mem/region_cache.hh"
#include "mem/set_assoc_cache.hh"

using namespace tdm;

TEST(SetAssocCache, HitAfterMiss)
{
    mem::SetAssocCache c({1024, 2, 64});
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, SameLineDifferentOffsetHits)
{
    mem::SetAssocCache c({1024, 2, 64});
    c.access(0x1000);
    EXPECT_TRUE(c.access(0x103F));
    EXPECT_FALSE(c.access(0x1040)); // next line
}

TEST(SetAssocCache, LruEvictionWithinSet)
{
    // 2 sets x 2 ways, 64B lines: addresses with the same set bits
    // conflict after 2 distinct tags.
    mem::SetAssocCache c({256, 2, 64});
    EXPECT_EQ(c.geometry().numSets(), 2u);
    c.access(0x0000);          // set 0, tag 0
    c.access(0x0080);          // set 0, tag 1
    EXPECT_TRUE(c.access(0x0000)); // refresh tag 0
    c.access(0x0100);          // set 0, tag 2 -> evicts tag 1 (LRU)
    EXPECT_TRUE(c.contains(0x0000));
    EXPECT_FALSE(c.contains(0x0080));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(SetAssocCache, InvalidateAndFlush)
{
    mem::SetAssocCache c({1024, 4, 64});
    c.access(0x2000);
    EXPECT_TRUE(c.invalidate(0x2000));
    EXPECT_FALSE(c.invalidate(0x2000));
    EXPECT_FALSE(c.contains(0x2000));
    c.access(0x2000);
    c.access(0x3000);
    c.flush();
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(RegionCache, HitTracking)
{
    mem::RegionCache rc(1024);
    EXPECT_FALSE(rc.touch(1, 256));
    EXPECT_TRUE(rc.touch(1, 256));
    EXPECT_EQ(rc.hits(), 1u);
    EXPECT_EQ(rc.misses(), 1u);
    EXPECT_EQ(rc.usedBytes(), 256u);
}

TEST(RegionCache, LruEvictionByBytes)
{
    mem::RegionCache rc(1000);
    rc.touch(1, 400);
    rc.touch(2, 400);
    rc.touch(1, 400); // 1 becomes MRU
    rc.touch(3, 400); // evicts 2
    EXPECT_TRUE(rc.contains(1));
    EXPECT_FALSE(rc.contains(2));
    EXPECT_TRUE(rc.contains(3));
    EXPECT_EQ(rc.evictions(), 1u);
}

TEST(RegionCache, OversizedRegionOccupiesWholeCache)
{
    mem::RegionCache rc(1000);
    rc.touch(1, 100);
    rc.touch(2, 5000); // larger than capacity: clamped, evicts all
    EXPECT_FALSE(rc.contains(1));
    EXPECT_TRUE(rc.contains(2));
    EXPECT_LE(rc.usedBytes(), 1000u);
}

TEST(RegionCache, InvalidateAndFlush)
{
    mem::RegionCache rc(1024);
    rc.touch(7, 64);
    EXPECT_TRUE(rc.invalidate(7));
    EXPECT_FALSE(rc.invalidate(7));
    rc.touch(8, 64);
    rc.flush();
    EXPECT_EQ(rc.residentRegions(), 0u);
    EXPECT_EQ(rc.usedBytes(), 0u);
}

TEST(RegionCache, ResizeOnRetouch)
{
    mem::RegionCache rc(1024);
    rc.touch(1, 100);
    rc.touch(1, 300);
    EXPECT_EQ(rc.usedBytes(), 300u);
}
