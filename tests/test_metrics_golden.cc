/**
 * @file
 * Golden metric-namespace test: pins the exact set of dotted metric
 * keys (and a handful of values) one cholesky/TDM/fifo run exports.
 *
 * The key list is the public surface of the observability API —
 * campaign `metrics` selections, README tables and downstream
 * analysis scripts all address it by name. A renamed or dropped key
 * fails here loudly instead of silently exporting nothing. To update
 * after an intentional change: print RunSummary::metrics() keys for
 * this experiment and replace the list.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "driver/experiment.hh"

using namespace tdm;

namespace {

const char *const kGoldenKeys[] = {
    "cpu.chip.deps_ticks",
    "cpu.chip.exec_fraction",
    "cpu.chip.exec_ticks",
    "cpu.chip.idle_fraction",
    "cpu.chip.idle_ticks",
    "cpu.chip.sched_ticks",
    "cpu.master.deps_ticks",
    "cpu.master.exec_fraction",
    "cpu.master.exec_ticks",
    "cpu.master.idle_fraction",
    "cpu.master.idle_ticks",
    "cpu.master.sched_ticks",
    "cpu.workers.deps_ticks",
    "cpu.workers.exec_fraction",
    "cpu.workers.exec_ticks",
    "cpu.workers.idle_fraction",
    "cpu.workers.idle_ticks",
    "cpu.workers.sched_ticks",
    "dmu.accesses",
    "dmu.blocked",
    "dmu.dat.accesses",
    "dmu.dat.avg_occupied_sets",
    "dmu.dat.conflicts",
    "dmu.dat.hit_rate",
    "dmu.dat.hits",
    "dmu.dat.inserts",
    "dmu.dat.live_entries",
    "dmu.dat.lookups",
    "dmu.dat.occupied_sets",
    "dmu.dep_table.accesses",
    "dmu.deps_in_flight",
    "dmu.dla.accesses",
    "dmu.ops",
    "dmu.ready",
    "dmu.ready_queue.accesses",
    "dmu.rla.accesses",
    "dmu.sla.accesses",
    "dmu.task_table.accesses",
    "dmu.tasks_in_flight",
    "dmu.tat.accesses",
    "dmu.tat.avg_occupied_sets",
    "dmu.tat.conflicts",
    "dmu.tat.hit_rate",
    "dmu.tat.hits",
    "dmu.tat.inserts",
    "dmu.tat.live_entries",
    "dmu.tat.lookups",
    "dmu.tat.occupied_sets",
    "machine.completed",
    "machine.makespan_ticks",
    "machine.master_create_ticks",
    "machine.master_creation_fraction",
    "machine.task_cycles.count",
    "machine.task_cycles.max",
    "machine.task_cycles.mean",
    "machine.task_cycles.min",
    "machine.task_cycles.overflow",
    "machine.task_cycles.stdev",
    "machine.task_cycles.underflow",
    "machine.tasks_executed",
    "machine.time_ms",
    "mem.dram_line_accesses",
    "mem.l1_hit_rate",
    "mem.l1_hits",
    "mem.l1_line_accesses",
    "mem.l1_misses",
    "mem.l2_hit_rate",
    "mem.l2_hits",
    "mem.l2_line_accesses",
    "mem.l2_misses",
    "mesh.avg_hop_latency",
    "mesh.avg_hop_latency.count",
    "mesh.avg_hops",
    "mesh.flit_hops",
    "mesh.hop_sum",
    "mesh.max_link_flits",
    "mesh.messages",
    "power.accel_dynamic_pj",
    "power.accel_leakage_mw",
    "power.avg_watts",
    "power.core_active_ticks",
    "power.core_idle_ticks",
    "power.dram_lines",
    "power.edp",
    "power.energy_j",
    "power.l1_lines",
    "power.l2_lines",
    "runtime.pool.empty_pops",
    "runtime.pool.peak_size",
    "runtime.pool.pops",
    "runtime.pool.pushes",
    "window.drain.cpu.chip.deps_ticks",
    "window.drain.cpu.chip.exec_ticks",
    "window.drain.cpu.chip.idle_ticks",
    "window.drain.cpu.chip.sched_ticks",
    "window.drain.cpu.master.deps_ticks",
    "window.drain.cpu.master.exec_ticks",
    "window.drain.cpu.master.idle_ticks",
    "window.drain.cpu.master.sched_ticks",
    "window.drain.cpu.workers.deps_ticks",
    "window.drain.cpu.workers.exec_ticks",
    "window.drain.cpu.workers.idle_ticks",
    "window.drain.cpu.workers.sched_ticks",
    "window.drain.dmu.accesses",
    "window.drain.dmu.blocked",
    "window.drain.dmu.dat.accesses",
    "window.drain.dmu.dat.conflicts",
    "window.drain.dmu.dat.hits",
    "window.drain.dmu.dat.inserts",
    "window.drain.dmu.dat.lookups",
    "window.drain.dmu.dep_table.accesses",
    "window.drain.dmu.dla.accesses",
    "window.drain.dmu.ops",
    "window.drain.dmu.ready_queue.accesses",
    "window.drain.dmu.rla.accesses",
    "window.drain.dmu.sla.accesses",
    "window.drain.dmu.task_table.accesses",
    "window.drain.dmu.tat.accesses",
    "window.drain.dmu.tat.conflicts",
    "window.drain.dmu.tat.hits",
    "window.drain.dmu.tat.inserts",
    "window.drain.dmu.tat.lookups",
    "window.drain.machine.master_create_ticks",
    "window.drain.machine.task_cycles.count",
    "window.drain.machine.task_cycles.mean",
    "window.drain.machine.tasks_executed",
    "window.drain.mem.dram_line_accesses",
    "window.drain.mem.l1_hits",
    "window.drain.mem.l1_line_accesses",
    "window.drain.mem.l1_misses",
    "window.drain.mem.l2_hits",
    "window.drain.mem.l2_line_accesses",
    "window.drain.mem.l2_misses",
    "window.drain.mesh.avg_hop_latency",
    "window.drain.mesh.flit_hops",
    "window.drain.mesh.hop_sum",
    "window.drain.mesh.messages",
    "window.drain.runtime.pool.empty_pops",
    "window.drain.runtime.pool.pops",
    "window.drain.runtime.pool.pushes",
    "window.drain.ticks",
    "window.roi.cpu.chip.deps_ticks",
    "window.roi.cpu.chip.exec_ticks",
    "window.roi.cpu.chip.idle_ticks",
    "window.roi.cpu.chip.sched_ticks",
    "window.roi.cpu.master.deps_ticks",
    "window.roi.cpu.master.exec_ticks",
    "window.roi.cpu.master.idle_ticks",
    "window.roi.cpu.master.sched_ticks",
    "window.roi.cpu.workers.deps_ticks",
    "window.roi.cpu.workers.exec_ticks",
    "window.roi.cpu.workers.idle_ticks",
    "window.roi.cpu.workers.sched_ticks",
    "window.roi.dmu.accesses",
    "window.roi.dmu.blocked",
    "window.roi.dmu.dat.accesses",
    "window.roi.dmu.dat.conflicts",
    "window.roi.dmu.dat.hits",
    "window.roi.dmu.dat.inserts",
    "window.roi.dmu.dat.lookups",
    "window.roi.dmu.dep_table.accesses",
    "window.roi.dmu.dla.accesses",
    "window.roi.dmu.ops",
    "window.roi.dmu.ready_queue.accesses",
    "window.roi.dmu.rla.accesses",
    "window.roi.dmu.sla.accesses",
    "window.roi.dmu.task_table.accesses",
    "window.roi.dmu.tat.accesses",
    "window.roi.dmu.tat.conflicts",
    "window.roi.dmu.tat.hits",
    "window.roi.dmu.tat.inserts",
    "window.roi.dmu.tat.lookups",
    "window.roi.machine.master_create_ticks",
    "window.roi.machine.task_cycles.count",
    "window.roi.machine.task_cycles.mean",
    "window.roi.machine.tasks_executed",
    "window.roi.mem.dram_line_accesses",
    "window.roi.mem.l1_hits",
    "window.roi.mem.l1_line_accesses",
    "window.roi.mem.l1_misses",
    "window.roi.mem.l2_hits",
    "window.roi.mem.l2_line_accesses",
    "window.roi.mem.l2_misses",
    "window.roi.mesh.avg_hop_latency",
    "window.roi.mesh.flit_hops",
    "window.roi.mesh.hop_sum",
    "window.roi.mesh.messages",
    "window.roi.runtime.pool.empty_pops",
    "window.roi.runtime.pool.pops",
    "window.roi.runtime.pool.pushes",
    "window.roi.ticks",
    "window.warmup.cpu.chip.deps_ticks",
    "window.warmup.cpu.chip.exec_ticks",
    "window.warmup.cpu.chip.idle_ticks",
    "window.warmup.cpu.chip.sched_ticks",
    "window.warmup.cpu.master.deps_ticks",
    "window.warmup.cpu.master.exec_ticks",
    "window.warmup.cpu.master.idle_ticks",
    "window.warmup.cpu.master.sched_ticks",
    "window.warmup.cpu.workers.deps_ticks",
    "window.warmup.cpu.workers.exec_ticks",
    "window.warmup.cpu.workers.idle_ticks",
    "window.warmup.cpu.workers.sched_ticks",
    "window.warmup.dmu.accesses",
    "window.warmup.dmu.blocked",
    "window.warmup.dmu.dat.accesses",
    "window.warmup.dmu.dat.conflicts",
    "window.warmup.dmu.dat.hits",
    "window.warmup.dmu.dat.inserts",
    "window.warmup.dmu.dat.lookups",
    "window.warmup.dmu.dep_table.accesses",
    "window.warmup.dmu.dla.accesses",
    "window.warmup.dmu.ops",
    "window.warmup.dmu.ready_queue.accesses",
    "window.warmup.dmu.rla.accesses",
    "window.warmup.dmu.sla.accesses",
    "window.warmup.dmu.task_table.accesses",
    "window.warmup.dmu.tat.accesses",
    "window.warmup.dmu.tat.conflicts",
    "window.warmup.dmu.tat.hits",
    "window.warmup.dmu.tat.inserts",
    "window.warmup.dmu.tat.lookups",
    "window.warmup.machine.master_create_ticks",
    "window.warmup.machine.task_cycles.count",
    "window.warmup.machine.task_cycles.mean",
    "window.warmup.machine.tasks_executed",
    "window.warmup.mem.dram_line_accesses",
    "window.warmup.mem.l1_hits",
    "window.warmup.mem.l1_line_accesses",
    "window.warmup.mem.l1_misses",
    "window.warmup.mem.l2_hits",
    "window.warmup.mem.l2_line_accesses",
    "window.warmup.mem.l2_misses",
    "window.warmup.mesh.avg_hop_latency",
    "window.warmup.mesh.flit_hops",
    "window.warmup.mesh.hop_sum",
    "window.warmup.mesh.messages",
    "window.warmup.runtime.pool.empty_pops",
    "window.warmup.runtime.pool.pops",
    "window.warmup.runtime.pool.pushes",
    "window.warmup.ticks",
    "workload.avg_task_us",
    "workload.num_tasks",
};

driver::RunSummary &
goldenRun()
{
    // One simulation shared by every test in this file.
    static driver::RunSummary s = [] {
        driver::Experiment e;
        e.workload = "cholesky";
        e.runtime = core::RuntimeType::Tdm;
        e.config.scheduler = "fifo";
        return driver::run(e);
    }();
    return s;
}

} // namespace

TEST(MetricGolden, NamespaceIsExactlyThePinnedKeySet)
{
    const driver::RunSummary &s = goldenRun();
    ASSERT_TRUE(s.completed);

    std::vector<std::string> actual;
    for (const auto &[k, v] : s.metrics().entries())
        actual.push_back(k);

    std::vector<std::string> expected(std::begin(kGoldenKeys),
                                      std::end(kGoldenKeys));
    ASSERT_TRUE(std::is_sorted(expected.begin(), expected.end()))
        << "golden list must stay sorted";

    std::vector<std::string> missing, unexpected;
    std::set_difference(expected.begin(), expected.end(),
                        actual.begin(), actual.end(),
                        std::back_inserter(missing));
    std::set_difference(actual.begin(), actual.end(), expected.begin(),
                        expected.end(),
                        std::back_inserter(unexpected));
    EXPECT_TRUE(missing.empty())
        << "metric keys dropped or renamed: "
        << ::testing::PrintToString(missing);
    EXPECT_TRUE(unexpected.empty())
        << "new metric keys not in the golden list (add them): "
        << ::testing::PrintToString(unexpected);
}

TEST(MetricGolden, PinnedValuesAreByteIdentical)
{
    const driver::RunSummary &s = goldenRun();
    const sim::MetricSet &m = s.metrics();

    // Integral counters pin exactly: any drift means the simulation
    // (not just the reporting) changed.
    EXPECT_DOUBLE_EQ(m.at("machine.makespan_ticks"), 142451635.0);
    EXPECT_DOUBLE_EQ(m.at("machine.tasks_executed"), 5984.0);
    EXPECT_DOUBLE_EQ(m.at("workload.num_tasks"), 5984.0);
    EXPECT_DOUBLE_EQ(m.at("dmu.tat.hits"), 28864.0);
    EXPECT_DOUBLE_EQ(m.at("dmu.accesses"), 316052.0);
    EXPECT_DOUBLE_EQ(m.at("machine.completed"), 1.0);
}

TEST(MetricGolden, PhaseWindowsTileTheRun)
{
    const driver::RunSummary &s = goldenRun();
    const sim::MetricSet &m = s.metrics();
    const double total = m.at("window.warmup.ticks")
                       + m.at("window.roi.ticks")
                       + m.at("window.drain.ticks");
    EXPECT_DOUBLE_EQ(total, m.at("machine.makespan_ticks"));

    // Counter deltas over the three windows must sum to the run total.
    const double hits = m.at("window.warmup.dmu.tat.hits")
                      + m.at("window.roi.dmu.tat.hits")
                      + m.at("window.drain.dmu.tat.hits");
    EXPECT_DOUBLE_EQ(hits, m.at("dmu.tat.hits"));

    // Task bodies only start after warmup ends, and most retire in
    // the ROI (creation overlaps execution under TDM).
    EXPECT_DOUBLE_EQ(m.at("window.warmup.machine.tasks_executed"), 0.0);
    EXPECT_GT(m.at("window.roi.machine.tasks_executed"), 0.0);
}
