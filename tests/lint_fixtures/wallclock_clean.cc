// det_lint fixture: seeded, platform-stable randomness — no findings.
#include <cstdint>

// Stand-in for sim::Rng: the deterministic SplitMix64 idiom.
std::uint64_t
nextValue(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}
