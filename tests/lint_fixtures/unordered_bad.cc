// det_lint fixture: seeded unordered-iteration violations.
// Expected findings: line 12 (range-for), line 16 (iterator walk).
#include <string>
#include <unordered_map>
#include <unordered_set>

int
total(const std::unordered_map<std::string, int> &scores)
{
    std::unordered_set<int> seen;
    int sum = 0;
    for (const auto &kv : scores)
        sum += kv.second;
    // Explicit iterator walk over an unordered container.
    std::unordered_map<std::string, int> local = scores;
    for (auto it = local.begin(); it != local.end(); ++it)
        sum += it->second;
    (void)seen;
    return sum;
}
