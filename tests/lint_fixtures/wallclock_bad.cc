// det_lint fixture: seeded wall-clock violations.
// Expected findings: line 9 (steady_clock), line 10 (rand()).
#include <chrono>
#include <cstdlib>

double
jitteredNow()
{
    auto t = std::chrono::steady_clock::now().time_since_epoch();
    double jitter = static_cast<double>(rand()) / RAND_MAX;
    return std::chrono::duration<double>(t).count() + jitter;
}
