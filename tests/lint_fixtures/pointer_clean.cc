// det_lint fixture: deterministic comparisons — no findings.
struct Node
{
    int value = 0;
    int seq = 0;
};

// Equality on pointers is reproducible (identity, not order).
bool
sameNode(Node *a, Node *b)
{
    return a == b;
}

// Ordering on stable payload fields is the deterministic idiom.
bool
before(const Node &a, const Node &b)
{
    if (a.value != b.value)
        return a.value < b.value;
    return a.seq < b.seq;
}
