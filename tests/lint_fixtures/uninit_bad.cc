// det_lint fixture: seeded uninit-pod violations.
// Expected findings: line 7 (scalar member), line 13 (pointer member).
#include <cstdint>

struct WakeEvent
{
    std::uint64_t tick;
};

struct SampleRecord
{
    double value = 0.0;
    const char *label;
};
