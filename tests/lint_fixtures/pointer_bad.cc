// det_lint fixture: seeded pointer-ordering violation.
// Expected finding: line 11 (ordering comparison on pointers).
struct Node
{
    int value = 0;
};

bool
firstAllocated(Node *a, Node *b)
{
    return a < b;
}
