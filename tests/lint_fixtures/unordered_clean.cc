// det_lint fixture: ordered / deterministic iteration — no findings.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

int
total(const std::map<std::string, int> &scores,
      const std::vector<int> &values)
{
    int sum = 0;
    // std::map iterates in key order: deterministic.
    for (const auto &kv : scores)
        sum += kv.second;
    for (int v : values)
        sum += v;
    // An unordered map used for lookup only (no iteration) is fine.
    std::unordered_map<std::string, int> index;
    index.emplace("a", 1);
    sum += index.count("a") ? index.at("a") : 0;
    return sum;
}
