// det_lint fixture: initialized event/record types — no findings.
#include <cstdint>
#include <string>

struct WakeEvent
{
    std::uint64_t tick = 0;
    bool armed = false;
};

struct CtorEvent
{
    std::uint32_t id;
    explicit CtorEvent(std::uint32_t i) : id(i) {}
};

// Non-scalar members default-construct deterministically.
struct LabelRecord
{
    std::string label;
    std::uint32_t hits = 0;
};

// Types whose names do not look event/record-like are out of scope.
struct ScratchBuffer
{
    int raw;
};
