/**
 * @file
 * Unit tests for the Carbon hardware queues and the hardware-cost
 * models of Carbon and Task Superscalar (the 7.3x storage comparison
 * of Section VI-C).
 */

#include <gtest/gtest.h>

#include "dmu/geometry.hh"
#include "hwbaselines/carbon.hh"
#include "hwbaselines/hw_task_queue.hh"
#include "hwbaselines/task_superscalar.hh"

using namespace tdm;

namespace {

rt::ReadyTask
task(rt::TaskId id)
{
    rt::ReadyTask t;
    t.id = id;
    return t;
}

} // namespace

TEST(HwTaskQueues, LocalFifoOrder)
{
    hw::HwTaskQueues q(4, 8);
    q.push(0, task(1));
    q.push(0, task(2));
    EXPECT_EQ(q.popLocal(0)->id, 1u);
    EXPECT_EQ(q.popLocal(0)->id, 2u);
    EXPECT_FALSE(q.popLocal(0).has_value());
}

TEST(HwTaskQueues, StealFromFullestVictim)
{
    hw::HwTaskQueues q(4, 8);
    q.push(1, task(10));
    q.push(2, task(20));
    q.push(2, task(21));
    auto t = q.steal(0);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->id, 20u); // core 2 had the most
    EXPECT_EQ(q.steals(), 1u);
}

TEST(HwTaskQueues, StealExcludesThief)
{
    hw::HwTaskQueues q(2, 8);
    q.push(0, task(1));
    EXPECT_FALSE(q.steal(0).has_value());
    EXPECT_EQ(q.failedSteals(), 1u);
    EXPECT_TRUE(q.steal(1).has_value());
}

TEST(HwTaskQueues, CapacityEnforced)
{
    hw::HwTaskQueues q(1, 2);
    EXPECT_TRUE(q.push(0, task(1)));
    EXPECT_TRUE(q.push(0, task(2)));
    EXPECT_FALSE(q.push(0, task(3)));
    EXPECT_EQ(q.totalSize(), 2u);
}

TEST(HwTaskQueues, AllEmptyTracksState)
{
    hw::HwTaskQueues q(2, 4);
    EXPECT_TRUE(q.allEmpty());
    q.push(1, task(5));
    EXPECT_FALSE(q.allEmpty());
    q.popLocal(1);
    EXPECT_TRUE(q.allEmpty());
}

TEST(TssModel, PaperStorageIs769KB)
{
    hw::TssConfig cfg;
    // 1 KB gateway + 3 x 256 KB (2048 entries x 128 B).
    EXPECT_NEAR(hw::tssStorageKB(cfg), 769.0, 0.5);
}

TEST(TssModel, StorageRatioVsDmuIs7x)
{
    // Section VI-C: "the DMU requires 7.3x lower hardware complexity".
    double tss = hw::tssStorageKB(hw::TssConfig{});
    double dmu = dmu::totalStorageKB(dmu::DmuConfig{});
    EXPECT_NEAR(tss / dmu, 7.3, 0.1);
}

TEST(TssModel, AreaDominatedByCam)
{
    double tss_area = hw::tssAreaMm2(hw::TssConfig{});
    double dmu_area = dmu::totalAreaMm2(dmu::DmuConfig{});
    EXPECT_GT(tss_area, dmu_area * 7.0);
}

TEST(CarbonModel, StorageScalesWithCores)
{
    hw::CarbonConfig cfg;
    EXPECT_DOUBLE_EQ(hw::carbonStorageKB(cfg, 32),
                     2.0 * hw::carbonStorageKB(cfg, 16));
    // Carbon's queues are far cheaper than the DMU or Task Superscalar.
    EXPECT_LT(hw::carbonStorageKB(cfg, 32),
              dmu::totalStorageKB(dmu::DmuConfig{}));
}
