/**
 * @file
 * Tests for the SIM_ASSERT invariant layer (src/sim/assert.hh).
 *
 * Armed builds (Debug, sanitizer, or -DTDM_INVARIANTS=ON) must abort
 * with a diagnostic on a violated invariant; Release builds must
 * compile the whole statement — condition and message arguments — to
 * nothing. Both halves are covered here, so whichever way the suite
 * was configured, the intended behavior for THAT configuration is
 * pinned, and CI's sanitizer jobs cover the armed half while the
 * tier-1 Release job covers the compiled-out half.
 */

#include <gtest/gtest.h>

#include "mem/region_cache.hh"
#include "sim/assert.hh"
#include "sim/event_queue.hh"

using namespace tdm;

TEST(SimAssert, EnabledMatchesBuildConfiguration)
{
#ifdef TDM_INVARIANTS
    EXPECT_EQ(SIM_INVARIANTS_ENABLED, 1);
#else
    EXPECT_EQ(SIM_INVARIANTS_ENABLED, 0);
#endif
}

TEST(SimAssert, PassingConditionIsSilent)
{
    int touched = 0;
    SIM_ASSERT(1 + 1 == 2, "never printed ", touched);
    (void)touched;
    SUCCEED();
}

#if SIM_INVARIANTS_ENABLED

TEST(SimAssertDeathTest, ViolationAborts)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH({ SIM_ASSERT(1 == 2, "forced failure"); },
                 "invariant '1 == 2' violated: forced failure");
}

TEST(SimAssertDeathTest, MessageArgumentsAreOptional)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_DEATH({ SIM_ASSERT(false); }, "invariant 'false' violated");
}

#else // !SIM_INVARIANTS_ENABLED

TEST(SimAssert, DisabledAssertEvaluatesNothing)
{
    // In Release the condition and message args must not even be
    // evaluated — they can be arbitrarily expensive in hot paths.
    int evaluations = 0;
    auto expensive = [&evaluations] {
        ++evaluations;
        return false;
    };
    SIM_ASSERT(expensive(), "cost: ", expensive());
    (void)expensive;
    EXPECT_EQ(evaluations, 0);
}

#endif

TEST(SimAssert, HotPathInvariantsHoldOnCorrectUsage)
{
    // Drive the instrumented structures through normal operation: in
    // armed builds every SIM_ASSERT in the event queue and the region
    // cache fires on each operation and must stay quiet; in Release
    // this doubles as a smoke test that instrumentation didn't change
    // behavior.
    sim::EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 400; ++i) {
        // Mix of near-ring, coarse-wheel and far-heap horizons so
        // tier migration (far -> coarse -> near) runs under the
        // monotonicity checks.
        eq.scheduleAt((i * 7919) % 3000000, [&fired] { ++fired; });
    }
    eq.run();
    EXPECT_EQ(fired, 400);

    mem::RegionCache rc(64 * 1024);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        rc.touch(i % 96, 1024);       // hits, misses, LRU evictions
        rc.touch((i * 31) % 96, 1024);
    }
    EXPECT_GT(rc.misses(), 0u);
}
