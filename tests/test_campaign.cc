/**
 * @file
 * Campaign-engine tests: fingerprint canonicalization, multi-threaded
 * determinism against the sequential sweep path, cache-hit behavior on
 * duplicated points, error propagation, the built-in campaign registry
 * and the JSON/CSV writers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "driver/campaign/campaign.hh"
#include "driver/campaign/engine.hh"
#include "driver/campaign/fingerprint.hh"
#include "driver/graph_cache.hh"
#include "driver/report/csv_writer.hh"
#include "driver/report/json_writer.hh"
#include "driver/sweep.hh"

using namespace tdm;
using namespace tdm::driver;

namespace {

Experiment
smallExperiment(core::RuntimeType rt_, const std::string &sched = "fifo")
{
    Experiment e;
    e.workload = "cholesky";
    e.params.granularity = 262144; // 8x8 tiles, 120 tasks
    e.runtime = rt_;
    e.config.scheduler = sched;
    e.config.numCores = 8;
    return e;
}

/** A small mixed campaign touching every runtime type. */
std::vector<SweepPoint>
mixedPoints()
{
    return {
        {"sw/fifo", smallExperiment(core::RuntimeType::Software)},
        {"sw/lifo", smallExperiment(core::RuntimeType::Software, "lifo")},
        {"tdm/fifo", smallExperiment(core::RuntimeType::Tdm)},
        {"tdm/age", smallExperiment(core::RuntimeType::Tdm, "age")},
        {"tdm/locality",
         smallExperiment(core::RuntimeType::Tdm, "locality")},
        {"carbon", smallExperiment(core::RuntimeType::Carbon)},
        {"tss", smallExperiment(core::RuntimeType::TaskSuperscalar)},
        {"sw/age", smallExperiment(core::RuntimeType::Software, "age")},
    };
}

void
expectSummariesEqual(const RunSummary &a, const RunSummary &b)
{
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.timeMs, b.timeMs);
    EXPECT_EQ(a.energyJ, b.energyJ);
    EXPECT_EQ(a.edp, b.edp);
    EXPECT_EQ(a.avgWatts, b.avgWatts);
    EXPECT_EQ(a.numTasks, b.numTasks);
    EXPECT_EQ(a.machine.tasksExecuted, b.machine.tasksExecuted);
    EXPECT_EQ(a.machine.dmuAccesses, b.machine.dmuAccesses);
    EXPECT_EQ(a.machine.steals, b.machine.steals);
}

} // namespace

TEST(Fingerprint, StableAndCanonical)
{
    Experiment a = smallExperiment(core::RuntimeType::Tdm);
    Experiment b = smallExperiment(core::RuntimeType::Tdm);
    EXPECT_EQ(campaign::fingerprint(a), campaign::fingerprint(b));

    // Short workload names canonicalize to the full name.
    b.workload = "cho";
    EXPECT_EQ(campaign::fingerprint(a), campaign::fingerprint(b));

    // run() implies the TDM-optimal granularity when unset; the
    // fingerprint applies the same normalization.
    Experiment c = smallExperiment(core::RuntimeType::Tdm);
    c.params.granularity = 0.0;
    Experiment d = c;
    d.params.tdmOptimal = true;
    EXPECT_EQ(campaign::fingerprint(c), campaign::fingerprint(d));
}

TEST(Fingerprint, DistinguishesExperiments)
{
    const Experiment base = smallExperiment(core::RuntimeType::Tdm);
    const std::string fp = campaign::fingerprint(base);

    Experiment e = base;
    e.config.scheduler = "age";
    EXPECT_NE(campaign::fingerprint(e), fp);

    e = base;
    e.runtime = core::RuntimeType::Software;
    EXPECT_NE(campaign::fingerprint(e), fp);

    e = base;
    e.params.granularity = 131072;
    EXPECT_NE(campaign::fingerprint(e), fp);

    e = base;
    e.params.seed = 7;
    EXPECT_NE(campaign::fingerprint(e), fp);

    e = base;
    e.config.numCores = 16;
    EXPECT_NE(campaign::fingerprint(e), fp);

    e = base;
    e.config.dmu.accessCycles = 4;
    EXPECT_NE(campaign::fingerprint(e), fp);

    // Software pool costs feed the simulation too (machine.cc uses
    // them in the scheduling phase); they must be fingerprinted.
    e = base;
    e.config.swCosts.poolPopCycles += 1;
    EXPECT_NE(campaign::fingerprint(e), fp);
    e = base;
    e.config.swCosts.schedPollCycles += 1;
    EXPECT_NE(campaign::fingerprint(e), fp);
}

TEST(Fingerprint, DigestIsFixedWidth)
{
    const Experiment e = smallExperiment(core::RuntimeType::Tdm);
    const std::string d = campaign::fingerprintDigest(e);
    EXPECT_EQ(d.size(), 16u);
    EXPECT_EQ(d, campaign::digestOfKey(campaign::fingerprint(e)));
}

TEST(Engine, FourThreadRunMatchesSequentialSweep)
{
    const auto points = mixedPoints();

    auto seq = runSweep(points);

    campaign::EngineOptions opts;
    opts.threads = 4;
    campaign::CampaignEngine engine(opts);
    auto par = engine.run("mixed", points);

    ASSERT_EQ(par.jobs.size(), seq.size());
    EXPECT_EQ(par.threads, 4u);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(par.jobs[i].label, seq[i].label);
        EXPECT_TRUE(par.jobs[i].ok()) << par.jobs[i].label;
        expectSummariesEqual(par.jobs[i].summary, seq[i].summary);
    }
}

TEST(Engine, DeduplicatesIdenticalPointsWithinRun)
{
    std::vector<SweepPoint> points = {
        {"first", smallExperiment(core::RuntimeType::Tdm)},
        {"twin", smallExperiment(core::RuntimeType::Tdm)},
        {"other", smallExperiment(core::RuntimeType::Software)},
    };

    campaign::EngineOptions opts;
    opts.threads = 4;
    campaign::CampaignEngine engine(opts);
    auto rep = engine.run("dup", points);

    EXPECT_EQ(rep.simulated, 2u);
    EXPECT_EQ(rep.cacheHits, 1u);
    EXPECT_FALSE(rep.jobs[0].cacheHit);
    EXPECT_TRUE(rep.jobs[1].cacheHit);
    expectSummariesEqual(rep.jobs[0].summary, rep.jobs[1].summary);
}

TEST(Engine, ReportsCacheHitsOnRerun)
{
    const auto points = mixedPoints();

    campaign::EngineOptions opts;
    opts.threads = 4;
    campaign::CampaignEngine engine(opts);
    auto first = engine.run("mixed", points);
    EXPECT_EQ(first.cacheHits, 0u);
    EXPECT_EQ(first.simulated, points.size());

    auto second = engine.run("mixed", points);
    EXPECT_EQ(second.simulated, 0u);
    EXPECT_EQ(second.cacheHits, points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_TRUE(second.jobs[i].cacheHit);
        expectSummariesEqual(second.jobs[i].summary,
                             first.jobs[i].summary);
    }
    EXPECT_GE(engine.cache().hits(), points.size());
}

TEST(Engine, NoCacheOptionDisablesDedup)
{
    std::vector<SweepPoint> points = {
        {"a", smallExperiment(core::RuntimeType::Software)},
        {"b", smallExperiment(core::RuntimeType::Software)},
    };
    campaign::EngineOptions opts;
    opts.threads = 2;
    opts.useCache = false;
    campaign::CampaignEngine engine(opts);
    auto rep = engine.run("nocache", points);
    // Cache dedup is off, so neither point is *served* from a cache —
    // but warm-start batching still groups the identical specs, so
    // the second point forks the first's snapshot instead of starting
    // cold, and its summary must come out identical.
    EXPECT_EQ(rep.simulated, 1u);
    EXPECT_EQ(rep.fromForked, 1u);
    EXPECT_EQ(rep.warmupsShared, 1u);
    EXPECT_EQ(rep.cacheHits, 0u);
    expectSummariesEqual(rep.jobs[0].summary, rep.jobs[1].summary);

    // With batching off too, both points simulate cold end-to-end —
    // the historical contract.
    opts.warmFork = false;
    campaign::CampaignEngine coldEngine(opts);
    auto coldRep = coldEngine.run("nocache", points);
    EXPECT_EQ(coldRep.simulated, 2u);
    EXPECT_EQ(coldRep.fromForked, 0u);
    EXPECT_EQ(coldRep.cacheHits, 0u);
    expectSummariesEqual(coldRep.jobs[0].summary, rep.jobs[1].summary);
}

TEST(Engine, PropagatesIncompleteRuns)
{
    Experiment doomed = smallExperiment(core::RuntimeType::Tdm);
    doomed.config.maxTicks = 1; // watchdog fires immediately

    std::vector<SweepPoint> points = {
        {"doomed", doomed},
        {"fine", smallExperiment(core::RuntimeType::Software)},
    };

    campaign::EngineOptions opts;
    opts.threads = 4;
    campaign::CampaignEngine engine(opts);
    auto rep = engine.run("errors", points);

    EXPECT_FALSE(rep.allOk());
    EXPECT_EQ(rep.failures(), 1u);
    EXPECT_FALSE(rep.jobs[0].ok());
    EXPECT_FALSE(rep.jobs[0].summary.completed);
    EXPECT_FALSE(rep.jobs[0].error.empty());
    EXPECT_TRUE(rep.jobs[1].ok());

    // The sequential wrapper keeps returning results for failed points.
    auto seq = runSweep(points);
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_FALSE(seq[0].summary.completed);
    EXPECT_TRUE(seq[1].summary.completed);

    // A failed run is cached like any other deterministic outcome.
    auto rerun = engine.run("errors", points);
    EXPECT_EQ(rerun.simulated, 0u);
    EXPECT_EQ(rerun.failures(), 1u);
    EXPECT_FALSE(rerun.jobs[0].error.empty());
}

TEST(Engine, SeedBaseGivesEachPointItsOwnSeed)
{
    std::vector<SweepPoint> points = {
        {"a", smallExperiment(core::RuntimeType::Software)},
        {"b", smallExperiment(core::RuntimeType::Software)},
    };
    campaign::EngineOptions opts;
    opts.threads = 2;
    opts.seedBase = 100;
    campaign::CampaignEngine engine(opts);
    auto rep = engine.run("seeded", points);

    // Identical points reseeded by index are no longer duplicates.
    EXPECT_EQ(rep.simulated, 2u);
    EXPECT_NE(rep.jobs[0].digest, rep.jobs[1].digest);
    EXPECT_NE(rep.jobs[0].summary.makespan, rep.jobs[1].summary.makespan);
}

TEST(GraphCache, KeySeparatesGraphsAndSharesEqualOnes)
{
    // With an explicit granularity the graph is runtime-independent...
    Experiment sw = smallExperiment(core::RuntimeType::Software);
    Experiment tdm = smallExperiment(core::RuntimeType::Tdm);
    EXPECT_EQ(graphKey(sw), graphKey(tdm));

    // ...but a default granularity implies the TDM-optimal one for DMU
    // runtimes: two different graphs, two different keys.
    sw.params.granularity = 0.0;
    tdm.params.granularity = 0.0;
    EXPECT_NE(graphKey(sw), graphKey(tdm));
    EXPECT_TRUE(effectiveParams(tdm).tdmOptimal);
    EXPECT_FALSE(effectiveParams(sw).tdmOptimal);

    // Short names canonicalize; seeds separate.
    Experiment cho = smallExperiment(core::RuntimeType::Tdm);
    cho.workload = "cho";
    EXPECT_EQ(graphKey(cho),
              graphKey(smallExperiment(core::RuntimeType::Tdm)));
    cho.params.seed = 7;
    EXPECT_NE(graphKey(cho),
              graphKey(smallExperiment(core::RuntimeType::Tdm)));

    // The cache hands out one shared instance per distinct key.
    GraphCache cache;
    auto a = cache.obtain(sw);
    auto b = cache.obtain(smallExperiment(core::RuntimeType::Software));
    auto c = cache.obtain(tdm);
    EXPECT_EQ(a.get(), cache.obtain(sw).get());
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(b.get(), c.get());
    EXPECT_EQ(cache.builds(), 3u);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(Engine, SharedGraphRunIsByteIdenticalToPerPointBuilds)
{
    // The tentpole guarantee of graph sharing: a campaign simulated on
    // shared immutable graphs exports exactly what per-point graph
    // builds export — every metric of every job, bit for bit.
    const auto points = mixedPoints();

    campaign::EngineOptions shared_opts;
    shared_opts.threads = 4;
    shared_opts.shareGraphs = true;
    campaign::CampaignEngine shared_engine(shared_opts);
    auto shared = shared_engine.run("mixed", points);

    campaign::EngineOptions rebuild_opts;
    rebuild_opts.threads = 4;
    rebuild_opts.shareGraphs = false;
    campaign::CampaignEngine rebuild_engine(rebuild_opts);
    auto rebuilt = rebuild_engine.run("mixed", points);

    // All eight points use one explicit granularity, so they share a
    // single graph; the rebuild path builds none.
    EXPECT_EQ(shared.graphBuilds, 1u);
    EXPECT_EQ(shared.graphShares, shared.simulated - 1);
    EXPECT_EQ(rebuilt.graphBuilds, 0u);
    EXPECT_EQ(shared_engine.graphCache().size(), 1u);

    ASSERT_EQ(shared.jobs.size(), rebuilt.jobs.size());
    for (std::size_t i = 0; i < shared.jobs.size(); ++i) {
        const campaign::JobResult &a = shared.jobs[i];
        const campaign::JobResult &b = rebuilt.jobs[i];
        ASSERT_TRUE(a.ok()) << a.label;
        EXPECT_EQ(a.summary.makespan, b.summary.makespan) << a.label;
        // The full flattened metric tree — the payload every export
        // writer serializes — must match exactly, key set and values.
        EXPECT_EQ(a.summary.metrics().entries(),
                  b.summary.metrics().entries())
            << a.label;
        EXPECT_EQ(a.spec.serialize(), b.spec.serialize()) << a.label;
    }
}

TEST(Registry, BuiltinCampaigns)
{
    EXPECT_TRUE(campaign::hasCampaign("fig12"));
    EXPECT_TRUE(campaign::hasCampaign("fig13"));
    EXPECT_TRUE(campaign::hasCampaign("ablation_scaling"));
    EXPECT_FALSE(campaign::hasCampaign("nope"));

    auto fig12 = campaign::makeCampaign("fig12");
    EXPECT_EQ(fig12.points.size(), 90u); // 9 workloads x 2 runtimes x 5
    auto fig13 = campaign::makeCampaign("fig13");
    EXPECT_EQ(fig13.points.size(), 72u); // 9 x (3 baselines + 5 TDM)
    auto abl = campaign::makeCampaign("ablation_scaling");
    EXPECT_EQ(abl.points.size(), 24u); // 3 x 4 core counts x 2

    for (const auto &c : {fig12, fig13, abl}) {
        std::set<std::string> labels;
        for (const auto &p : c.points)
            labels.insert(p.label);
        EXPECT_EQ(labels.size(), c.points.size()) << c.name;
    }

    EXPECT_GE(campaign::campaignList().size(), 3u);
}

TEST(Report, JsonAndCsvWriters)
{
    std::vector<SweepPoint> points = {
        {"sw, \"quoted\"", smallExperiment(core::RuntimeType::Software)},
        {"tdm", smallExperiment(core::RuntimeType::Tdm)},
    };
    campaign::CampaignEngine engine;
    auto rep = engine.run("writers", points);

    std::ostringstream json;
    report::writeJson(json, rep);
    const std::string j = json.str();
    EXPECT_NE(j.find("\"name\": \"writers\""), std::string::npos);
    EXPECT_NE(j.find("\"label\": \"sw, \\\"quoted\\\"\""),
              std::string::npos);
    EXPECT_NE(j.find("\"completed\": true"), std::string::npos);
    // Every job carries its full canonical spec.
    EXPECT_NE(j.find("\"spec\": {"), std::string::npos);
    EXPECT_NE(j.find("\"workload\": \"cholesky\""), std::string::npos);
    EXPECT_NE(j.find("\"dmu.tat_entries\": \"2048\""),
              std::string::npos);
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));

    std::ostringstream csv;
    report::writeCsv(csv, rep);
    const std::string c = csv.str();
    // Header + one row per job.
    EXPECT_EQ(std::count(c.begin(), c.end(), '\n'), 3);
    EXPECT_NE(c.find("campaign,label,digest"), std::string::npos);
    EXPECT_NE(c.find("\"sw, \"\"quoted\"\"\""), std::string::npos);
    EXPECT_NE(c.find("writers,tdm,"), std::string::npos);
}

TEST(Report, MetricSelectionFlowsThroughEngineAndWriters)
{
    campaign::Campaign c;
    c.name = "sel";
    c.points = {{"tdm", smallExperiment(core::RuntimeType::Tdm)}};
    c.metrics = "dmu.tat.*";

    campaign::CampaignEngine engine;
    campaign::CampaignResult rep = engine.run(c);
    EXPECT_EQ(rep.metricsPattern, "dmu.tat.*");
    // The full tree rides on the summary; selection happens at export.
    EXPECT_TRUE(
        rep.jobs[0].summary.metrics().contains("mesh.messages"));

    std::ostringstream json;
    report::writeJson(json, rep);
    const std::string j = json.str();
    EXPECT_NE(j.find("\"metrics_pattern\": \"dmu.tat.*\""),
              std::string::npos);
    EXPECT_NE(j.find("\"metrics\": {"), std::string::npos);
    EXPECT_NE(j.find("\"dmu.tat.hits\":"), std::string::npos);
    EXPECT_EQ(j.find("\"mesh.messages\":"), std::string::npos);

    std::ostringstream csv;
    report::writeCsv(csv, rep);
    const std::string cs = csv.str();
    const std::string header = cs.substr(0, cs.find('\n'));
    EXPECT_NE(header.find(",dmu.tat.hits"), std::string::npos);
    EXPECT_EQ(header.find("mesh.messages"), std::string::npos);
}

TEST(Report, CsvFieldQuotesPerRfc4180)
{
    EXPECT_EQ(report::csvField("plain"), "plain");
    EXPECT_EQ(report::csvField("a,b"), "\"a,b\"");
    EXPECT_EQ(report::csvField("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(report::csvField("line\nbreak"), "\"line\nbreak\"");
    // A bare carriage return corrupts rows for CRLF-aware readers just
    // like \n does and must be quoted too (regression: it used to slip
    // through unquoted).
    EXPECT_EQ(report::csvField("crlf\r\nlabel"), "\"crlf\r\nlabel\"");
    EXPECT_EQ(report::csvField("cr\ronly"), "\"cr\ronly\"");
}
