/**
 * @file
 * Golden-determinism guard for the event kernel.
 *
 * The intrusive pooled-event calendar queue must preserve the seed
 * kernel's (tick, seq) execution order bit-for-bit. These makespans
 * were captured from full-machine runs of the creation-bound and
 * pipeline benchmarks under both software-pool schedulers *before* the
 * kernel swap (with the PR's locality-scheduler fix already applied,
 * since that intentionally changes locality schedules) and must never
 * drift: any change here means the kernel reordered events.
 */

#include <gtest/gtest.h>

#include "driver/experiment.hh"

using namespace tdm;

namespace {

struct Golden
{
    core::RuntimeType runtime;
    const char *workload;
    const char *scheduler;
    sim::Tick makespan;
};

const Golden goldens[] = {
    {core::RuntimeType::Tdm, "cholesky", "fifo", 142451635ull},
    {core::RuntimeType::Tdm, "cholesky", "locality", 144116539ull},
    {core::RuntimeType::Tdm, "lu", "fifo", 46711567ull},
    {core::RuntimeType::Tdm, "lu", "locality", 45515187ull},
    {core::RuntimeType::Tdm, "dedup", "fifo", 809107314ull},
    {core::RuntimeType::Tdm, "dedup", "locality", 801222268ull},
    {core::RuntimeType::Software, "cholesky", "fifo", 157277791ull},
    {core::RuntimeType::Software, "cholesky", "locality", 160051164ull},
    {core::RuntimeType::Software, "lu", "fifo", 47266035ull},
    {core::RuntimeType::Software, "lu", "locality", 45521241ull},
    {core::RuntimeType::Software, "dedup", "fifo", 809344123ull},
    {core::RuntimeType::Software, "dedup", "locality", 801426713ull},
};

class GoldenDeterminism : public ::testing::TestWithParam<Golden>
{};

} // namespace

TEST_P(GoldenDeterminism, MakespanIsByteIdenticalToSeedKernel)
{
    const Golden &g = GetParam();
    driver::Experiment e;
    e.workload = g.workload;
    e.runtime = g.runtime;
    e.config.scheduler = g.scheduler;
    driver::RunSummary s = driver::run(e);
    ASSERT_TRUE(s.completed);
    EXPECT_EQ(s.makespan, g.makespan)
        << "event kernel changed the execution order for " << g.workload
        << "/" << g.scheduler;
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldens, GoldenDeterminism, ::testing::ValuesIn(goldens),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return std::string(core::traitsOf(info.param.runtime).name) + "_"
             + info.param.workload + "_" + info.param.scheduler;
    });
