/**
 * @file
 * Golden-determinism guard for the event kernel.
 *
 * The intrusive pooled-event calendar queue must preserve the seed
 * kernel's (tick, seq) execution order bit-for-bit. These makespans
 * were captured from full-machine runs of the creation-bound and
 * pipeline benchmarks under both software-pool schedulers *before* the
 * kernel swap (with the PR's locality-scheduler fix already applied,
 * since that intentionally changes locality schedules) and must never
 * drift: any change here means the kernel reordered events.
 */

#include <gtest/gtest.h>

#include "driver/campaign/engine.hh"
#include "driver/experiment.hh"
#include "driver/sweep.hh"

using namespace tdm;

namespace {

struct Golden
{
    core::RuntimeType runtime;
    const char *workload;
    const char *scheduler;
    sim::Tick makespan;
};

const Golden goldens[] = {
    {core::RuntimeType::Tdm, "cholesky", "fifo", 142451635ull},
    {core::RuntimeType::Tdm, "cholesky", "locality", 144116539ull},
    {core::RuntimeType::Tdm, "lu", "fifo", 46711567ull},
    {core::RuntimeType::Tdm, "lu", "locality", 45515187ull},
    {core::RuntimeType::Tdm, "dedup", "fifo", 809107314ull},
    {core::RuntimeType::Tdm, "dedup", "locality", 801222268ull},
    {core::RuntimeType::Software, "cholesky", "fifo", 157277791ull},
    {core::RuntimeType::Software, "cholesky", "locality", 160051164ull},
    {core::RuntimeType::Software, "lu", "fifo", 47266035ull},
    {core::RuntimeType::Software, "lu", "locality", 45521241ull},
    {core::RuntimeType::Software, "dedup", "fifo", 809344123ull},
    {core::RuntimeType::Software, "dedup", "locality", 801426713ull},
};

class GoldenDeterminism : public ::testing::TestWithParam<Golden>
{};

} // namespace

TEST_P(GoldenDeterminism, MakespanIsByteIdenticalToSeedKernel)
{
    const Golden &g = GetParam();
    driver::Experiment e;
    e.workload = g.workload;
    e.runtime = g.runtime;
    e.config.scheduler = g.scheduler;
    driver::RunSummary s = driver::run(e);
    ASSERT_TRUE(s.completed);
    EXPECT_EQ(s.makespan, g.makespan)
        << "event kernel changed the execution order for " << g.workload
        << "/" << g.scheduler;
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldens, GoldenDeterminism, ::testing::ValuesIn(goldens),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return std::string(core::traitsOf(info.param.runtime).name) + "_"
             + info.param.workload + "_" + info.param.scheduler;
    });

TEST(GoldenDeterminism, SharedGraphCampaignReproducesAllGoldens)
{
    // The same twelve pinned runs through the campaign engine's
    // shared-graph path: each distinct workload graph is built once
    // and read concurrently by four workers, and every makespan must
    // still match the seed kernel bit-for-bit — graph sharing (and the
    // flat LRU/DMU containers underneath) are pure optimizations.
    std::vector<driver::SweepPoint> points;
    for (const Golden &g : goldens) {
        driver::Experiment e;
        e.workload = g.workload;
        e.runtime = g.runtime;
        e.config.scheduler = g.scheduler;
        points.push_back(driver::SweepPoint{
            std::string(core::traitsOf(g.runtime).name) + "/"
                + g.workload + "/" + g.scheduler,
            e});
    }

    driver::campaign::EngineOptions opts;
    opts.threads = 4;
    driver::campaign::CampaignEngine engine(opts);
    auto rep = engine.run("goldens", points);

    // 3 workloads x 2 effective granularities (SW vs TDM-implied).
    EXPECT_EQ(rep.graphBuilds, 6u);
    EXPECT_EQ(rep.graphShares, 6u);

    ASSERT_EQ(rep.jobs.size(), std::size(goldens));
    for (std::size_t i = 0; i < rep.jobs.size(); ++i) {
        ASSERT_TRUE(rep.jobs[i].ok()) << rep.jobs[i].label;
        EXPECT_EQ(rep.jobs[i].summary.makespan, goldens[i].makespan)
            << "shared-graph path changed the simulation for "
            << rep.jobs[i].label;
    }
}
