/**
 * @file
 * Golden-determinism guard for the event kernel.
 *
 * The intrusive pooled-event calendar queue must preserve the seed
 * kernel's (tick, seq) execution order bit-for-bit. These makespans
 * were captured from full-machine runs of the creation-bound and
 * pipeline benchmarks under both software-pool schedulers *before* the
 * kernel swap (with the PR's locality-scheduler fix already applied,
 * since that intentionally changes locality schedules) and must never
 * drift: any change here means the kernel reordered events.
 */

#include <bit>
#include <cstdint>

#include <gtest/gtest.h>

#include "driver/campaign/engine.hh"
#include "driver/campaign/fingerprint.hh"
#include "driver/experiment.hh"
#include "driver/fork_runner.hh"
#include "driver/spec/spec.hh"
#include "driver/sweep.hh"

using namespace tdm;

namespace {

struct Golden
{
    core::RuntimeType runtime;
    const char *workload;
    const char *scheduler;
    sim::Tick makespan;
};

const Golden goldens[] = {
    {core::RuntimeType::Tdm, "cholesky", "fifo", 142451635ull},
    {core::RuntimeType::Tdm, "cholesky", "locality", 144116539ull},
    {core::RuntimeType::Tdm, "lu", "fifo", 46711567ull},
    {core::RuntimeType::Tdm, "lu", "locality", 45515187ull},
    {core::RuntimeType::Tdm, "dedup", "fifo", 809107314ull},
    {core::RuntimeType::Tdm, "dedup", "locality", 801222268ull},
    {core::RuntimeType::Software, "cholesky", "fifo", 157277791ull},
    {core::RuntimeType::Software, "cholesky", "locality", 160051164ull},
    {core::RuntimeType::Software, "lu", "fifo", 47266035ull},
    {core::RuntimeType::Software, "lu", "locality", 45521241ull},
    {core::RuntimeType::Software, "dedup", "fifo", 809344123ull},
    {core::RuntimeType::Software, "dedup", "locality", 801426713ull},
};

class GoldenDeterminism : public ::testing::TestWithParam<Golden>
{};

/** Bit-level equality of two full metric trees: same keys, and every
 *  double payload identical down to the last mantissa bit. */
void
expectMetricsBitIdentical(const sim::MetricSet &cold,
                          const sim::MetricSet &forked, const char *what)
{
    ASSERT_EQ(cold.entries().size(), forked.entries().size()) << what;
    auto it = forked.entries().begin();
    for (const auto &[key, v] : cold.entries()) {
        ASSERT_EQ(key, it->first) << what;
        EXPECT_EQ(std::bit_cast<std::uint64_t>(v),
                  std::bit_cast<std::uint64_t>(it->second))
            << what << ": metric '" << key << "' diverged (cold " << v
            << " vs forked " << it->second << ")";
        ++it;
    }
}

std::string
roiKeyOf(const driver::Experiment &e)
{
    return driver::spec::roiFingerprint(
        driver::campaign::canonicalConfig(e));
}

} // namespace

TEST_P(GoldenDeterminism, MakespanIsByteIdenticalToSeedKernel)
{
    const Golden &g = GetParam();
    driver::Experiment e;
    e.workload = g.workload;
    e.runtime = g.runtime;
    e.config.scheduler = g.scheduler;
    driver::RunSummary s = driver::run(e);
    ASSERT_TRUE(s.completed);
    EXPECT_EQ(s.makespan, g.makespan)
        << "event kernel changed the execution order for " << g.workload
        << "/" << g.scheduler;
}

TEST_P(GoldenDeterminism, ForkedRunsReproduceColdRunsBitForBit)
{
    // The warm-start fork contract (PR 10): a member served from a
    // snapshot — finalize-level for a `power.*`-only variation,
    // warm-level for a `mem.*` variation — must reproduce a cold run
    // of the same experiment bit-for-bit, makespan and the entire
    // metric tree alike. Forking is a pure wall-clock optimization.
    const Golden &g = GetParam();
    driver::Experiment leader;
    leader.workload = g.workload;
    leader.runtime = g.runtime;
    leader.config.scheduler = g.scheduler;

    driver::Experiment powerVar = leader;
    powerVar.config.power.activeWatts *= 2.0;
    driver::Experiment memVar = leader;
    memVar.config.mem.l1Bytes /= 2;

    const driver::RunSummary coldPower = driver::run(powerVar);
    const driver::RunSummary coldMem = driver::run(memVar);
    ASSERT_TRUE(coldPower.completed);
    ASSERT_TRUE(coldMem.completed);

    driver::ForkGroupRunner runner(nullptr);
    bool forked = true;
    const driver::RunSummary lead =
        runner.run(leader, roiKeyOf(leader), nullptr, &forked);
    EXPECT_FALSE(forked) << "first member must run cold";
    ASSERT_TRUE(lead.completed);
    EXPECT_EQ(lead.makespan, g.makespan);

    // Same ROI fingerprint as the leader (power.* keys are Final):
    // served by re-running finalization over the shared trajectory.
    EXPECT_EQ(roiKeyOf(powerVar), roiKeyOf(leader));
    const driver::RunSummary forkPower =
        runner.run(powerVar, roiKeyOf(powerVar), nullptr, &forked);
    EXPECT_TRUE(forked) << "power variant must fork, not re-simulate";
    EXPECT_EQ(forkPower.makespan, coldPower.makespan);
    expectMetricsBitIdentical(coldPower.metrics(), forkPower.metrics(),
                              "finalize fork");

    // Different ROI fingerprint (mem.* keys are Roi): restored at the
    // warmup/ROI boundary, the ROI re-simulated under the variant's
    // cache geometry.
    EXPECT_NE(roiKeyOf(memVar), roiKeyOf(leader));
    const driver::RunSummary forkMem =
        runner.run(memVar, roiKeyOf(memVar), nullptr, &forked);
    EXPECT_TRUE(forked) << "mem variant must warm-fork";
    EXPECT_EQ(forkMem.makespan, coldMem.makespan);
    expectMetricsBitIdentical(coldMem.metrics(), forkMem.metrics(),
                              "warm fork");
}

INSTANTIATE_TEST_SUITE_P(
    AllGoldens, GoldenDeterminism, ::testing::ValuesIn(goldens),
    [](const ::testing::TestParamInfo<Golden> &info) {
        return std::string(core::traitsOf(info.param.runtime).name) + "_"
             + info.param.workload + "_" + info.param.scheduler;
    });

TEST(GoldenDeterminism, SharedGraphCampaignReproducesAllGoldens)
{
    // The same twelve pinned runs through the campaign engine's
    // shared-graph path: each distinct workload graph is built once
    // and read concurrently by four workers, and every makespan must
    // still match the seed kernel bit-for-bit — graph sharing (and the
    // flat LRU/DMU containers underneath) are pure optimizations.
    std::vector<driver::SweepPoint> points;
    for (const Golden &g : goldens) {
        driver::Experiment e;
        e.workload = g.workload;
        e.runtime = g.runtime;
        e.config.scheduler = g.scheduler;
        points.push_back(driver::SweepPoint{
            std::string(core::traitsOf(g.runtime).name) + "/"
                + g.workload + "/" + g.scheduler,
            e});
    }

    driver::campaign::EngineOptions opts;
    opts.threads = 4;
    driver::campaign::CampaignEngine engine(opts);
    auto rep = engine.run("goldens", points);

    // 3 workloads x 2 effective granularities (SW vs TDM-implied).
    EXPECT_EQ(rep.graphBuilds, 6u);
    EXPECT_EQ(rep.graphShares, 6u);

    ASSERT_EQ(rep.jobs.size(), std::size(goldens));
    for (std::size_t i = 0; i < rep.jobs.size(); ++i) {
        ASSERT_TRUE(rep.jobs[i].ok()) << rep.jobs[i].label;
        EXPECT_EQ(rep.jobs[i].summary.makespan, goldens[i].makespan)
            << "shared-graph path changed the simulation for "
            << rep.jobs[i].label;
    }
}
