/**
 * @file
 * Unit tests for the stats package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "sim/stats.hh"

using namespace tdm;

TEST(Scalar, AccumulatesAndResets)
{
    sim::Scalar s;
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Average, MeanOfSamples)
{
    sim::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Distribution, BucketsAndMoments)
{
    sim::Distribution d(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        d.sample(i + 0.5);
    EXPECT_EQ(d.count(), 10u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    for (auto b : d.buckets())
        EXPECT_EQ(b, 1u);
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_EQ(d.overflow(), 0u);
}

TEST(Distribution, UnderflowOverflow)
{
    sim::Distribution d(0.0, 1.0, 4);
    d.sample(-1.0);
    d.sample(2.0);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_DOUBLE_EQ(d.minSample(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 2.0);
}

TEST(Distribution, StdevOfConstantIsZero)
{
    sim::Distribution d(0.0, 10.0, 4);
    d.sample(3.0);
    d.sample(3.0);
    d.sample(3.0);
    EXPECT_NEAR(d.stdev(), 0.0, 1e-12);
}

TEST(Distribution, StdevMatchesSampleFormula)
{
    sim::Distribution d(0.0, 10.0, 4);
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    // Sample (n-1) stdev of the classic sigma=2 data set:
    // sum of squared deviations = 32, n-1 = 7.
    EXPECT_NEAR(d.stdev(), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(Distribution, InitRebuckets)
{
    sim::Distribution d(0.0, 1.0, 2);
    d.sample(0.25);
    d.sample(2.0); // overflow under the original range
    EXPECT_EQ(d.count(), 2u);
    EXPECT_EQ(d.overflow(), 1u);

    // init() re-buckets: new range, new bucket count, all
    // accumulators (moments, extremes, under/overflow) cleared.
    d.init(0.0, 4.0, 8);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.sum(), 0.0);
    EXPECT_NEAR(d.stdev(), 0.0, 1e-12);
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_EQ(d.overflow(), 0u);
    ASSERT_EQ(d.buckets().size(), 8u);
    for (auto b : d.buckets())
        EXPECT_EQ(b, 0u);

    d.sample(2.0); // overflow before, in range after re-bucketing
    EXPECT_EQ(d.overflow(), 0u);
    EXPECT_EQ(d.buckets()[4], 1u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Formula, EvaluatesLazily)
{
    sim::Scalar a, b;
    sim::Formula f([&] { return a.value() / (b.value() + 1.0); });
    a += 10.0;
    b += 4.0;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
    a += 10.0;
    EXPECT_DOUBLE_EQ(f.value(), 4.0);
}

TEST(Formula, UndefinedFormulaIsZero)
{
    sim::Formula f;
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    f.define([] { return 7.0; });
    EXPECT_DOUBLE_EQ(f.value(), 7.0);
}

TEST(Formula, SeesLiveStatValuesNotCaptures)
{
    sim::Average lat;
    sim::Formula f([&] { return lat.mean() * 2.0; });
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    lat.sample(3.0);
    lat.sample(5.0);
    EXPECT_DOUBLE_EQ(f.value(), 8.0);
}

TEST(StatGroup, DumpAndLookup)
{
    sim::StatGroup g("dmu");
    sim::Scalar ops;
    ops += 42.0;
    g.addScalar("ops", &ops, "operations");
    EXPECT_TRUE(g.contains("ops"));
    EXPECT_FALSE(g.contains("nope"));
    EXPECT_DOUBLE_EQ(g.lookup("ops"), 42.0);

    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("dmu.ops 42"), std::string::npos);
    EXPECT_NE(oss.str().find("# operations"), std::string::npos);
}

TEST(StatGroup, UnknownLookupThrowsWithSuggestion)
{
    sim::StatGroup g("dmu");
    sim::Scalar hits;
    g.addScalar("tat_hits", &hits, "");
    // Silent 0 for a typo used to read as idle hardware; now it's a
    // hard error naming the near miss (same policy as spec keys).
    try {
        g.lookup("tat_hist");
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("tat_hist"), std::string::npos);
        EXPECT_NE(msg.find("tat_hits"), std::string::npos);
    }
}
