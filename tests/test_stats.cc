/**
 * @file
 * Unit tests for the stats package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace tdm;

TEST(Scalar, AccumulatesAndResets)
{
    sim::Scalar s;
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Average, MeanOfSamples)
{
    sim::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Distribution, BucketsAndMoments)
{
    sim::Distribution d(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        d.sample(i + 0.5);
    EXPECT_EQ(d.count(), 10u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    for (auto b : d.buckets())
        EXPECT_EQ(b, 1u);
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_EQ(d.overflow(), 0u);
}

TEST(Distribution, UnderflowOverflow)
{
    sim::Distribution d(0.0, 1.0, 4);
    d.sample(-1.0);
    d.sample(2.0);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_DOUBLE_EQ(d.minSample(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 2.0);
}

TEST(Distribution, StdevOfConstantIsZero)
{
    sim::Distribution d(0.0, 10.0, 4);
    d.sample(3.0);
    d.sample(3.0);
    d.sample(3.0);
    EXPECT_NEAR(d.stdev(), 0.0, 1e-12);
}

TEST(Formula, EvaluatesLazily)
{
    sim::Scalar a, b;
    sim::Formula f([&] { return a.value() / (b.value() + 1.0); });
    a += 10.0;
    b += 4.0;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
    a += 10.0;
    EXPECT_DOUBLE_EQ(f.value(), 4.0);
}

TEST(StatGroup, DumpAndLookup)
{
    sim::StatGroup g("dmu");
    sim::Scalar ops;
    ops += 42.0;
    g.addScalar("ops", &ops, "operations");
    EXPECT_TRUE(g.contains("ops"));
    EXPECT_FALSE(g.contains("nope"));
    EXPECT_DOUBLE_EQ(g.lookup("ops"), 42.0);

    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("dmu.ops 42"), std::string::npos);
    EXPECT_NE(oss.str().find("# operations"), std::string::npos);
}
