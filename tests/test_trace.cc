/**
 * @file
 * Time-resolved tracing tests: category parsing, buffer mechanics
 * (chunked append, cap, digest), spec-key plumbing, non-perturbation
 * (identical makespans with tracing on and off), the Chrome trace
 * writer's output shape, and the campaign engine's per-point trace
 * files.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "driver/campaign/engine.hh"
#include "driver/experiment.hh"
#include "driver/report/trace_writer.hh"
#include "driver/spec/spec.hh"
#include "sim/trace.hh"

using namespace tdm;
namespace fs = std::filesystem;

namespace {

driver::Experiment
smallExperiment(core::RuntimeType rt_, const std::string &sched = "fifo")
{
    driver::Experiment e;
    e.workload = "cholesky";
    e.params.granularity = 262144; // 8x8 tiles, 120 tasks
    e.runtime = rt_;
    e.config.scheduler = sched;
    e.config.numCores = 8;
    return e;
}

} // namespace

TEST(TraceCategories, ParseAndFormatRoundTrip)
{
    EXPECT_EQ(sim::parseTraceCategories(""), 0u);
    EXPECT_EQ(sim::parseTraceCategories("none"), 0u);
    EXPECT_EQ(sim::parseTraceCategories("all"), sim::traceCatAll);
    EXPECT_EQ(sim::parseTraceCategories("task"),
              static_cast<std::uint32_t>(sim::TraceCat::Task));
    EXPECT_EQ(sim::parseTraceCategories("task,dmu"),
              static_cast<std::uint32_t>(sim::TraceCat::Task)
                  | static_cast<std::uint32_t>(sim::TraceCat::Dmu));
    // Whitespace and duplicates are tolerated.
    EXPECT_EQ(sim::parseTraceCategories(" task , task ,dmu"),
              sim::parseTraceCategories("task,dmu"));

    EXPECT_EQ(sim::formatTraceCategories(0), "none");
    EXPECT_EQ(sim::formatTraceCategories(sim::traceCatAll), "all");
    const std::uint32_t two = sim::parseTraceCategories("dmu,task");
    EXPECT_EQ(sim::formatTraceCategories(two), "task,dmu"); // bit order
    // format -> parse is the identity on every subset.
    for (std::uint32_t m = 0; m <= sim::traceCatAll; ++m)
        EXPECT_EQ(sim::parseTraceCategories(sim::formatTraceCategories(m)),
                  m)
            << m;

    EXPECT_THROW(sim::parseTraceCategories("bogus"),
                 std::invalid_argument);
    EXPECT_THROW(sim::parseTraceCategories("task,bogus"),
                 std::invalid_argument);
}

TEST(TraceBuffer, DisabledByDefaultAndRecordsWhenOn)
{
    sim::TraceBuffer off;
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.on(sim::TraceCat::Task));
    EXPECT_EQ(off.size(), 0u);

    sim::TraceBuffer buf;
    sim::TraceConfig cfg;
    cfg.categories = sim::parseTraceCategories("task,dmu");
    buf.configure(cfg);
    EXPECT_TRUE(buf.enabled());
    EXPECT_TRUE(buf.on(sim::TraceCat::Task));
    EXPECT_FALSE(buf.on(sim::TraceCat::Noc));

    buf.span(sim::TracePoint::TaskExec, 3, 100, 250, 42, 7);
    buf.instant(sim::TracePoint::TaskRetire, 3, 250, 42);
    buf.counter(sim::TracePoint::DmuReadyQueue, 260,
                (std::uint64_t{1} << 40) + 5);
    ASSERT_EQ(buf.size(), 3u);

    std::vector<sim::TraceRecord> recs;
    buf.forEach([&](const sim::TraceRecord &r) { recs.push_back(r); });
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[0].tick, 100u);
    EXPECT_EQ(recs[0].dur, 150u);
    EXPECT_EQ(recs[0].core, 3u);
    EXPECT_EQ(recs[0].a, 42u);
    EXPECT_EQ(recs[0].b, 7u);
    EXPECT_EQ(recs[1].dur, 0u);
    // 64-bit counter values split across a (low) and b (high).
    EXPECT_EQ(recs[2].a, 5u);
    EXPECT_EQ(recs[2].b, 1u << 8);

    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_TRUE(buf.enabled()); // clear keeps the configuration
}

TEST(TraceBuffer, CapCountsDroppedRecords)
{
    sim::TraceBuffer buf;
    sim::TraceConfig cfg;
    cfg.categories = sim::traceCatAll;
    cfg.bufferEvents = 10;
    buf.configure(cfg);
    for (int i = 0; i < 25; ++i)
        buf.instant(sim::TracePoint::TaskReady, 0, i);
    EXPECT_EQ(buf.size(), 10u);
    EXPECT_EQ(buf.dropped(), 15u);
}

TEST(TraceBuffer, CrossesChunkBoundaries)
{
    sim::TraceBuffer buf;
    sim::TraceConfig cfg;
    cfg.categories = sim::traceCatAll;
    buf.configure(cfg);
    const std::size_t n = sim::TraceBuffer::chunkSize * 2 + 100;
    for (std::size_t i = 0; i < n; ++i)
        buf.instant(sim::TracePoint::TaskReady, 0, i, i);
    EXPECT_EQ(buf.size(), n);
    std::size_t k = 0;
    bool ordered = true;
    buf.forEach([&](const sim::TraceRecord &r) {
        ordered = ordered && r.tick == k && r.a == k;
        ++k;
    });
    EXPECT_EQ(k, n);
    EXPECT_TRUE(ordered);
}

TEST(TraceSpec, KeysBindConfigAndValidate)
{
    driver::Experiment e = smallExperiment(core::RuntimeType::Tdm);
    driver::spec::applyKey(e, "trace.categories", "task,dmu");
    EXPECT_EQ(e.config.trace.categories,
              sim::parseTraceCategories("task,dmu"));
    driver::spec::applyKey(e, "trace.buffer_events", "1000");
    EXPECT_EQ(e.config.trace.bufferEvents, 1000u);

    // The canonical spec round-trips the mask as names, so traced
    // points fingerprint differently from untraced ones (deliberate:
    // a traced re-run must miss the result cache).
    const sim::Config c = driver::spec::canonicalSpec(e);
    EXPECT_EQ(c.getString("trace.categories"), "task,dmu");

    EXPECT_THROW(
        driver::spec::applyKey(e, "trace.categories", "bogus"),
        driver::spec::SpecError);
}

TEST(TraceMachine, TracingDoesNotPerturbTheSimulation)
{
    // The zero-perturbation guarantee: every category on, same
    // makespan and task count bit-for-bit as the untraced run.
    for (core::RuntimeType rt_ :
         {core::RuntimeType::Software, core::RuntimeType::Tdm}) {
        driver::Experiment plain = smallExperiment(rt_);
        const driver::RunSummary base = driver::run(plain);

        driver::Experiment traced = smallExperiment(rt_);
        traced.config.trace.categories = sim::traceCatAll;
        sim::TraceBuffer tb;
        const driver::RunSummary t = driver::run(traced, nullptr, &tb);

        EXPECT_EQ(base.makespan, t.makespan);
        EXPECT_EQ(base.machine.tasksExecuted, t.machine.tasksExecuted);
        EXPECT_EQ(base.machine.steals, t.machine.steals);
        EXPECT_GT(tb.size(), 0u);
        EXPECT_EQ(tb.dropped(), 0u);
    }
}

TEST(TraceMachine, IdenticalRunsGiveIdenticalDigests)
{
    auto capture = [] {
        driver::Experiment e = smallExperiment(core::RuntimeType::Tdm);
        e.config.trace.categories = sim::traceCatAll;
        sim::TraceBuffer tb;
        driver::run(e, nullptr, &tb);
        return tb;
    };
    const sim::TraceBuffer a = capture();
    const sim::TraceBuffer b = capture();
    EXPECT_GT(a.size(), 0u);
    EXPECT_EQ(a.size(), b.size());
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(TraceWriter, EmitsWellFormedChromeTraceJson)
{
    driver::Experiment e = smallExperiment(core::RuntimeType::Tdm);
    e.config.trace.categories = sim::traceCatAll;
    sim::TraceBuffer tb;
    driver::run(e, nullptr, &tb);

    std::ostringstream os;
    driver::report::TraceMeta meta;
    meta.processName = "cholesky on tdm+fifo";
    meta.numCores = e.config.numCores;
    driver::report::writeChromeTrace(os, tb, meta);
    const std::string j = os.str();

    EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos); // spans
    EXPECT_NE(j.find("\"ph\":\"i\""), std::string::npos); // instants
    EXPECT_NE(j.find("\"ph\":\"C\""), std::string::npos); // counters
    EXPECT_NE(j.find("\"name\":\"exec\""), std::string::npos);
    EXPECT_NE(j.find("\"name\":\"dmu.ready_queue\""), std::string::npos);
    EXPECT_NE(j.find("\"name\":\"core 0 (master)\""), std::string::npos);
    // Balanced braces and brackets: cheap structural sanity.
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
    EXPECT_EQ(std::count(j.begin(), j.end(), '['),
              std::count(j.begin(), j.end(), ']'));
}

TEST(TraceWriter, EventReferenceCoversEveryPoint)
{
    std::ostringstream os;
    driver::report::writeTraceEventReference(os);
    const std::string ref = os.str();
    const auto n = static_cast<std::size_t>(sim::TracePoint::NumPoints);
    for (std::size_t i = 0; i < n; ++i) {
        const sim::TracePointInfo &info =
            sim::tracePointInfo(static_cast<sim::TracePoint>(i));
        EXPECT_NE(ref.find(std::string("`") + info.name + "`"),
                  std::string::npos)
            << info.name;
    }
}

TEST(TraceEngine, WritesOneTraceFilePerTracedPoint)
{
    const fs::path dir =
        fs::temp_directory_path()
        / ("tdm_trace_test_" + std::to_string(::getpid()));
    fs::create_directories(dir);

    driver::Experiment traced = smallExperiment(core::RuntimeType::Tdm);
    traced.config.trace.categories =
        sim::parseTraceCategories("task,dmu");
    std::vector<driver::SweepPoint> points = {
        {"traced", traced},
        {"twin", traced}, // duplicate: simulated once, shares the file
        {"untraced", smallExperiment(core::RuntimeType::Software)},
    };

    driver::campaign::EngineOptions opts;
    opts.threads = 2;
    opts.traceDir = dir.string();
    driver::campaign::CampaignEngine engine(opts);
    auto rep = engine.run("tracing", points);

    ASSERT_TRUE(rep.allOk());
    EXPECT_FALSE(rep.jobs[0].tracePath.empty());
    EXPECT_TRUE(fs::exists(rep.jobs[0].tracePath));
    EXPECT_EQ(rep.jobs[1].tracePath, rep.jobs[0].tracePath);
    EXPECT_TRUE(rep.jobs[2].tracePath.empty()); // tracing off
    EXPECT_GT(rep.simMsTotal, 0.0);

    std::ifstream f(rep.jobs[0].tracePath);
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_NE(ss.str().find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(ss.str().find("\"name\":\"exec\""), std::string::npos);

    fs::remove_all(dir);
}
