/**
 * @file
 * Workload-generator tests: Table II task counts and durations, graph
 * well-formedness, and granularity scaling.
 */

#include <gtest/gtest.h>

#include "workloads/registry.hh"

using namespace tdm;

namespace {

/** Check the graph is consistent: deps reference declared regions. */
void
checkWellFormed(const rt::TaskGraph &g)
{
    ASSERT_GT(g.numTasks(), 0u);
    for (const rt::Task &t : g.tasks()) {
        for (const rt::DepSpec &d : t.deps)
            ASSERT_LT(d.region, g.regions().size());
    }
    // Edges only point forward (acyclic by construction); validate via
    // a full derivation.
    auto e = g.buildEdges();
    for (rt::TaskId t = 0; t < g.numTasks(); ++t)
        for (rt::TaskId s : e.successors[t])
            ASSERT_GT(s, t);
}

struct Expectation
{
    const char *name;
    std::uint32_t swTasks;
    double swAvgUs;
    std::uint32_t tdmTasks;
    double tdmAvgUs;
    double tolTasks;  // relative tolerance on counts
    double tolUs;     // relative tolerance on durations
};

class WorkloadTableII : public ::testing::TestWithParam<Expectation>
{};

} // namespace

// Table II of the paper; count tolerances cover our documented
// deviations (e.g. blackscholes 3264 vs 3300).
INSTANTIATE_TEST_SUITE_P(
    TableII, WorkloadTableII,
    ::testing::Values(
        Expectation{"blackscholes", 3300, 1770, 6500, 823, 0.02, 0.10},
        Expectation{"cholesky", 5984, 183, 5984, 183, 0.0, 0.15},
        Expectation{"dedup", 244, 27748, 244, 27748, 0.0, 0.10},
        Expectation{"ferret", 1536, 7667, 1536, 7667, 0.0, 0.10},
        Expectation{"fluidanimate", 2560, 1804, 2560, 1804, 0.0, 0.10},
        Expectation{"histogram", 512, 3824, 512, 3824, 0.0, 0.10},
        Expectation{"lu", 1496, 424, 1496, 424, 0.02, 0.15},
        Expectation{"qr", 1496, 997, 11440, 96, 0.0, 0.40},
        Expectation{"streamcluster", 42115, 376, 42115, 376, 0.01, 0.10}),
    [](const ::testing::TestParamInfo<Expectation> &info) {
        return info.param.name;
    });

TEST_P(WorkloadTableII, SwOptimalMatchesPaper)
{
    const Expectation &e = GetParam();
    rt::TaskGraph g = wl::buildWorkload(e.name, {});
    checkWellFormed(g);
    EXPECT_NEAR(static_cast<double>(g.numTasks()),
                static_cast<double>(e.swTasks),
                e.tolTasks * e.swTasks + 0.5);
    EXPECT_NEAR(g.avgTaskUs(), e.swAvgUs, e.tolUs * e.swAvgUs);
}

TEST_P(WorkloadTableII, TdmOptimalMatchesPaper)
{
    const Expectation &e = GetParam();
    wl::WorkloadParams p;
    p.tdmOptimal = true;
    rt::TaskGraph g = wl::buildWorkload(e.name, p);
    checkWellFormed(g);
    EXPECT_NEAR(static_cast<double>(g.numTasks()),
                static_cast<double>(e.tdmTasks),
                e.tolTasks * e.tdmTasks + 0.5);
    EXPECT_NEAR(g.avgTaskUs(), e.tdmAvgUs, e.tolUs * e.tdmAvgUs);
}

TEST(Workloads, RegistryHasNine)
{
    EXPECT_EQ(wl::allWorkloads().size(), 9u);
    EXPECT_EQ(wl::findWorkload("cho").name, "cholesky");
    EXPECT_EQ(wl::findWorkload("QR").name, "qr");
}

TEST(Workloads, GranularityChangesTaskCount)
{
    wl::WorkloadParams coarse, fine;
    coarse.granularity = 65536; // cholesky tile bytes
    fine.granularity = 4096;
    rt::TaskGraph gc = wl::buildWorkload("cholesky", coarse);
    rt::TaskGraph gf = wl::buildWorkload("cholesky", fine);
    EXPECT_GT(gf.numTasks(), gc.numTasks());
    // Total work is roughly preserved across granularities.
    double wc = sim::ticksToUs(gc.totalComputeCycles());
    double wf = sim::ticksToUs(gf.totalComputeCycles());
    EXPECT_NEAR(wf / wc, 1.0, 0.2);
}

TEST(Workloads, DurationNoiseIsDeterministic)
{
    rt::TaskGraph a = wl::buildWorkload("ferret", {});
    rt::TaskGraph b = wl::buildWorkload("ferret", {});
    ASSERT_EQ(a.numTasks(), b.numTasks());
    for (rt::TaskId t = 0; t < a.numTasks(); ++t)
        EXPECT_EQ(a.task(t).computeCycles, b.task(t).computeCycles);
}

TEST(Workloads, SeedChangesDurations)
{
    wl::WorkloadParams p1, p2;
    p1.seed = 1;
    p2.seed = 2;
    rt::TaskGraph a = wl::buildWorkload("ferret", p1);
    rt::TaskGraph b = wl::buildWorkload("ferret", p2);
    bool any_diff = false;
    for (rt::TaskId t = 0; t < a.numTasks(); ++t)
        any_diff |= a.task(t).computeCycles != b.task(t).computeCycles;
    EXPECT_TRUE(any_diff);
}

TEST(Workloads, DedupIoTasksHaveTwoSuccessors)
{
    // The bounded-window buffer recycling gives I/O tasks 2 successors
    // (the next I/O task and the compute task whose buffer they free).
    rt::TaskGraph g = wl::buildWorkload("dedup", {});
    auto e = g.buildEdges();
    // Task 1 is the first I/O task.
    EXPECT_EQ(e.successors[1].size(), 2u);
}

TEST(Workloads, BlackscholesIsChains)
{
    rt::TaskGraph g = wl::buildWorkload("blackscholes", {});
    auto e = g.buildEdges();
    // Every task has at most one predecessor and one successor.
    for (rt::TaskId t = 0; t < g.numTasks(); ++t) {
        EXPECT_LE(e.successors[t].size(), 1u);
        EXPECT_LE(e.numPreds[t], 1u);
    }
    // 64 chains at the SW-optimal granularity.
    unsigned heads = 0;
    for (rt::TaskId t = 0; t < g.numTasks(); ++t)
        if (e.numPreds[t] == 0)
            ++heads;
    EXPECT_EQ(heads, 64u);
}

TEST(Workloads, StreamclusterHasManyRegions)
{
    rt::TaskGraph g = wl::buildWorkload("streamcluster", {});
    EXPECT_EQ(g.parallelRegions().size(), 658u);
}

TEST(Workloads, QrDepsAreFragmented)
{
    rt::TaskGraph g = wl::buildWorkload("qr", {});
    for (const rt::Task &t : g.tasks())
        for (const rt::DepSpec &d : t.deps)
            EXPECT_TRUE(d.fragmented);
}

TEST(Workloads, HistogramInFlightNearTotal)
{
    rt::TaskGraph g = wl::buildWorkload("histogram", {});
    EXPECT_EQ(g.maxTasksInRegion(), g.numTasks());
}
