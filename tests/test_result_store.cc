/**
 * @file
 * Persistent result-store tests: blob format round-trips, schema
 * invalidation, corruption tolerance, restart reloads, and concurrent
 * publish/fetch. The store's contract is "absent or correct, never
 * wrong": any damaged blob degrades to a miss and a re-simulation.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "driver/service/store.hh"

using namespace tdm;
using namespace tdm::driver;
namespace fs = std::filesystem;

namespace {

/** Fresh per-test directory under the system temp root. */
class StoreDir
{
  public:
    explicit StoreDir(const char *tag)
        : path_(fs::temp_directory_path()
                / (std::string("tdm_store_test_") + tag + "_"
                   + std::to_string(::getpid())))
    {
        fs::remove_all(path_);
    }
    ~StoreDir() { fs::remove_all(path_); }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

/** A summary exercising awkward values: non-representable doubles,
 *  integers past 2^53, and a metric tree. */
RunSummary
sampleSummary()
{
    RunSummary s;
    s.completed = true;
    s.makespan = (sim::Tick{1} << 61) + 12345; // loses bits as double
    s.timeMs = 0.1 + 0.2;                      // classic 0.30000000000000004
    s.energyJ = 1.0 / 3.0;
    s.edp = 6.02214076e23;
    s.avgWatts = 9.886387899638404;
    s.numTasks = 120;
    s.avgTaskUs = 9567.9434499999988;
    s.machine.completed = true;
    s.machine.makespan = s.makespan;
    s.machine.timeMs = s.timeMs;
    s.machine.tasksExecuted = 120;
    s.machine.dmuAccesses = 5844;
    s.machine.steals = 3;
    s.machine.masterCreationFraction = 0.00028830312207622322;
    s.machine.metrics.set("dmu.tat.hit_rate", 0.81481481481481477);
    s.machine.metrics.set("dmu.tat.hits", 528);
    s.machine.metrics.set("machine.time_ms", s.timeMs);
    return s;
}

const std::string kKey = "machine.cores=8;scheduler=fifo;workload=ch;";

} // namespace

TEST(ResultStoreBlob, RoundTripPreservesEveryField)
{
    const RunSummary in = sampleSummary();
    std::ostringstream os;
    service::writeSummaryBlob(os, kKey, in, 2);

    std::istringstream is(os.str());
    std::string key;
    RunSummary out;
    ASSERT_TRUE(service::readSummaryBlob(is, key, out, 2));
    EXPECT_EQ(key, kKey);
    EXPECT_EQ(out.completed, in.completed);
    EXPECT_EQ(out.makespan, in.makespan); // u64, not via double
    EXPECT_EQ(out.timeMs, in.timeMs);     // bit-exact double round-trip
    EXPECT_EQ(out.energyJ, in.energyJ);
    EXPECT_EQ(out.edp, in.edp);
    EXPECT_EQ(out.avgWatts, in.avgWatts);
    EXPECT_EQ(out.numTasks, in.numTasks);
    EXPECT_EQ(out.avgTaskUs, in.avgTaskUs);
    EXPECT_EQ(out.machine.tasksExecuted, in.machine.tasksExecuted);
    EXPECT_EQ(out.machine.masterCreationFraction,
              in.machine.masterCreationFraction);
    EXPECT_EQ(out.machine.metrics.entries(),
              in.machine.metrics.entries());

    // Serialization is a pure function of (key, summary): re-writing
    // the decoded summary yields the identical blob. This is what
    // makes concurrent writers of the same key harmless.
    std::ostringstream os2;
    service::writeSummaryBlob(os2, key, out, 2);
    EXPECT_EQ(os.str(), os2.str());
}

TEST(ResultStoreBlob, WrongSchemaVersionRejected)
{
    std::ostringstream os;
    service::writeSummaryBlob(os, kKey, sampleSummary(), 2);
    std::string key;
    RunSummary out;
    std::istringstream is(os.str());
    EXPECT_FALSE(service::readSummaryBlob(is, key, out, 3));
}

TEST(ResultStoreBlob, TruncatedOrTamperedBlobRejected)
{
    std::ostringstream os;
    service::writeSummaryBlob(os, kKey, sampleSummary(), 2);
    const std::string blob = os.str();

    // Any truncation must fail: there is always a trailing checksum
    // and end marker to lose.
    for (std::size_t cut : {std::size_t{0}, std::size_t{1},
                            blob.size() / 4, blob.size() / 2,
                            blob.size() - 2}) {
        std::istringstream is(blob.substr(0, cut));
        std::string key;
        RunSummary out;
        EXPECT_FALSE(service::readSummaryBlob(is, key, out, 2))
            << "accepted a blob truncated to " << cut << " bytes";
    }

    // Flipping one payload character breaks the checksum.
    std::string tampered = blob;
    const std::size_t pos = tampered.find("makespan");
    ASSERT_NE(pos, std::string::npos);
    tampered[pos] = 'M';
    std::istringstream is(tampered);
    std::string key;
    RunSummary out;
    EXPECT_FALSE(service::readSummaryBlob(is, key, out, 2));

    // Garbage from byte zero.
    std::istringstream garbage("these are not the blobs\nyou seek\n");
    EXPECT_FALSE(service::readSummaryBlob(garbage, key, out, 2));
}

TEST(ResultStore, PublishFetchAndRestartReload)
{
    StoreDir dir("restart");
    const RunSummary in = sampleSummary();
    {
        service::ResultStore store(dir.str());
        EXPECT_EQ(store.size(), 0u);
        EXPECT_FALSE(store.fetch(kKey).has_value());
        EXPECT_EQ(store.misses(), 1u);

        store.publish(kKey, in);
        EXPECT_EQ(store.size(), 1u);
        EXPECT_EQ(store.stores(), 1u);
        auto hit = store.fetch(kKey);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->makespan, in.makespan);
        EXPECT_EQ(hit->timeMs, in.timeMs);

        // Re-publishing an indexed key is a no-op, not a rewrite.
        store.publish(kKey, in);
        EXPECT_EQ(store.stores(), 1u);
    }
    // A new instance over the same directory rebuilds the index from
    // the blobs alone.
    service::ResultStore reopened(dir.str());
    EXPECT_EQ(reopened.size(), 1u);
    auto hit = reopened.fetch(kKey);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->makespan, in.makespan);
    EXPECT_EQ(hit->machine.metrics.entries(),
              in.machine.metrics.entries());
}

TEST(ResultStore, SchemaBumpInvalidatesEverything)
{
    StoreDir dir("schema");
    {
        service::ResultStore v2(dir.str(), 2);
        v2.publish(kKey, sampleSummary());
        EXPECT_EQ(v2.size(), 1u);
    }
    // A store opened under the next schema sees an empty universe —
    // blobs live in a different version directory by construction.
    service::ResultStore v3(dir.str(), 3);
    EXPECT_EQ(v3.size(), 0u);
    EXPECT_FALSE(v3.fetch(kKey).has_value());
    // The old generation's blobs are untouched (rollback-safe).
    service::ResultStore v2again(dir.str(), 2);
    EXPECT_EQ(v2again.size(), 1u);
    EXPECT_TRUE(v2again.fetch(kKey).has_value());
}

TEST(ResultStore, CorruptBlobDegradesToMiss)
{
    StoreDir dir("corrupt");
    service::ResultStore writer(dir.str());
    writer.publish(kKey, sampleSummary());
    const std::string path = writer.pathForKey(kKey);
    ASSERT_TRUE(fs::exists(path));
    {
        std::ofstream out(path, std::ios::trunc);
        out << "tdmstore 1 schema 2\nnope\n";
    }
    // A fresh instance indexes the damaged blob (the scan is
    // name-based), then discovers the damage on fetch: miss, counted
    // as corrupt, and dropped from the index so later fetches are
    // plain misses that a re-publish can heal.
    service::ResultStore store(dir.str());
    EXPECT_EQ(store.size(), 1u);
    EXPECT_FALSE(store.fetch(kKey).has_value());
    EXPECT_EQ(store.corrupt(), 1u);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.fetch(kKey).has_value());
    EXPECT_EQ(store.corrupt(), 1u);

    store.publish(kKey, sampleSummary());
    EXPECT_TRUE(store.fetch(kKey).has_value());
}

TEST(ResultStore, DigestCollisionWithDifferentKeyIsMiss)
{
    StoreDir dir("collision");
    service::ResultStore store(dir.str());
    // Force a blob whose digest-derived name matches kKey but whose
    // stored key differs — what a real 64-bit digest collision would
    // produce. The stored-key check must refuse to serve it.
    {
        std::ofstream out(store.pathForKey(kKey), std::ios::trunc);
        service::writeSummaryBlob(out, "other=spec;", sampleSummary(),
                                  2);
    }
    service::ResultStore reopened(dir.str());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_FALSE(reopened.fetch(kKey).has_value());
    // Not corruption — the blob is intact, just not ours.
    EXPECT_EQ(reopened.corrupt(), 0u);
}

TEST(ResultStore, ConcurrentPublishFetchHammer)
{
    // 8 threads x 600 ops over 16 keys, mixing publishes and fetches
    // of the same keys (same bytes per key, so racing writers are
    // benign by design). Arithmetic pins that every fetch was either
    // a faithful hit or a clean miss.
    constexpr unsigned kThreads = 8;
    constexpr unsigned kOps = 600;
    constexpr unsigned kKeys = 16;

    StoreDir dir("hammer");
    service::ResultStore store(dir.str());

    std::vector<RunSummary> summaries(kKeys);
    for (unsigned k = 0; k < kKeys; ++k) {
        summaries[k] = sampleSummary();
        summaries[k].makespan = 1000 + k;
    }
    auto keyOf = [](unsigned k) {
        return "cores=" + std::to_string(k) + ";";
    };

    std::vector<std::thread> pool;
    pool.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            for (unsigned i = 0; i < kOps; ++i) {
                const unsigned k = (t * 5 + i) % kKeys;
                if (i % 3 == 0) {
                    store.publish(keyOf(k), summaries[k]);
                } else {
                    auto hit = store.fetch(keyOf(k));
                    if (hit) {
                        EXPECT_EQ(hit->makespan, 1000 + k);
                    }
                }
            }
        });
    }
    for (std::thread &t : pool)
        t.join();

    EXPECT_EQ(store.corrupt(), 0u);
    EXPECT_EQ(store.size(), kKeys);
    for (unsigned k = 0; k < kKeys; ++k) {
        auto hit = store.fetch(keyOf(k));
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(hit->makespan, 1000 + k);
    }
}
