/**
 * @file
 * Unit tests for TaskGraph construction and ground-truth edge
 * derivation.
 */

#include <gtest/gtest.h>

#include "runtime/task_graph.hh"

using namespace tdm;

TEST(TaskGraph, RegionsAreContiguous)
{
    rt::TaskGraph g("t");
    rt::RegionId a = g.addRegion(16384);
    rt::RegionId b = g.addRegion(16384);
    EXPECT_EQ(g.region(b).baseAddr, g.region(a).baseAddr + 16384);
}

TEST(TaskGraph, DescriptorsAreDistinct)
{
    rt::TaskGraph g("t");
    g.beginParallel();
    g.createTask(1);
    g.createTask(1);
    EXPECT_NE(g.task(0).descAddr, g.task(1).descAddr);
}

TEST(TaskGraph, RawEdge)
{
    rt::TaskGraph g("t");
    rt::RegionId a = g.addRegion(64);
    g.beginParallel();
    g.createTask(1);
    g.dep(a, rt::DepDir::Out);
    g.createTask(1);
    g.dep(a, rt::DepDir::In);
    auto e = g.buildEdges();
    ASSERT_EQ(e.successors[0].size(), 1u);
    EXPECT_EQ(e.successors[0][0], 1u);
    EXPECT_EQ(e.numPreds[1], 1u);
    EXPECT_EQ(e.edgeCount, 1u);
}

TEST(TaskGraph, WarAndWawEdges)
{
    rt::TaskGraph g("t");
    rt::RegionId a = g.addRegion(64);
    g.beginParallel();
    g.createTask(1); // writer
    g.dep(a, rt::DepDir::Out);
    g.createTask(1); // reader
    g.dep(a, rt::DepDir::In);
    g.createTask(1); // writer again: WAW on 0 is hidden by WAR on 1
    g.dep(a, rt::DepDir::Out);
    auto e = g.buildEdges();
    EXPECT_EQ(e.numPreds[2], 2u); // 0 (last writer) and 1 (reader)
}

TEST(TaskGraph, EdgesDeduplicated)
{
    rt::TaskGraph g("t");
    rt::RegionId a = g.addRegion(64), b = g.addRegion(64);
    g.beginParallel();
    g.createTask(1);
    g.dep(a, rt::DepDir::Out);
    g.dep(b, rt::DepDir::Out);
    g.createTask(1);
    g.dep(a, rt::DepDir::In);
    g.dep(b, rt::DepDir::In);
    auto e = g.buildEdges();
    EXPECT_EQ(e.successors[0].size(), 1u); // one deduplicated edge
    EXPECT_EQ(e.numPreds[1], 1u);
}

TEST(TaskGraph, BarrierResetsDependences)
{
    rt::TaskGraph g("t");
    rt::RegionId a = g.addRegion(64);
    g.beginParallel();
    g.createTask(1);
    g.dep(a, rt::DepDir::Out);
    g.beginParallel();
    g.createTask(1);
    g.dep(a, rt::DepDir::In);
    auto e = g.buildEdges();
    EXPECT_EQ(e.edgeCount, 0u); // barrier between writer and reader
    EXPECT_EQ(g.parallelRegions().size(), 2u);
    EXPECT_EQ(g.parallelRegions()[0].numTasks, 1u);
    EXPECT_EQ(g.parallelRegions()[1].numTasks, 1u);
}

TEST(TaskGraph, CriticalPathOfChain)
{
    rt::TaskGraph g("t");
    rt::RegionId a = g.addRegion(64);
    g.beginParallel();
    for (int i = 0; i < 5; ++i) {
        g.createTask(100);
        g.dep(a, rt::DepDir::InOut);
    }
    EXPECT_EQ(g.criticalPathCycles(), 500u);
}

TEST(TaskGraph, CriticalPathOfForkJoin)
{
    rt::TaskGraph g("t");
    rt::RegionId src = g.addRegion(64);
    std::vector<rt::RegionId> mid;
    for (int i = 0; i < 4; ++i)
        mid.push_back(g.addRegion(64));
    g.beginParallel();
    g.createTask(100); // source
    g.dep(src, rt::DepDir::Out);
    for (int i = 0; i < 4; ++i) {
        g.createTask(50); // parallel middle
        g.dep(src, rt::DepDir::In);
        g.dep(mid[i], rt::DepDir::Out);
    }
    g.createTask(100); // sink
    for (int i = 0; i < 4; ++i)
        g.dep(mid[i], rt::DepDir::In);
    EXPECT_EQ(g.criticalPathCycles(), 250u);
}

TEST(TaskGraph, TotalsAndAverages)
{
    rt::TaskGraph g("t");
    g.beginParallel();
    g.createTask(sim::usToTicks(100));
    g.createTask(sim::usToTicks(300));
    EXPECT_EQ(g.totalComputeCycles(), sim::usToTicks(400));
    EXPECT_DOUBLE_EQ(g.avgTaskUs(), 200.0);
    EXPECT_EQ(g.maxTasksInRegion(), 2u);
}

TEST(TaskGraphDeath, DepWithoutTaskPanics)
{
    rt::TaskGraph g("t");
    rt::RegionId a = g.addRegion(64);
    EXPECT_DEATH(g.dep(a, rt::DepDir::In), "before any createTask");
}
