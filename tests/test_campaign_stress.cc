/**
 * @file
 * Concurrent campaign-engine stress tests — the TSan targets.
 *
 * The campaign engine's concurrency contract: one engine may serve
 * many client threads at once, each run() spawning its own worker
 * pool, all of them hammering the shared ResultCache and GraphCache;
 * results must be byte-identical to a quiet sequential run, with one
 * simulation ever per distinct fingerprint once the cache has seen it.
 * CI builds this test with TDM_SANITIZE=thread, so every lock
 * elision, unsynchronized counter, or racing log write in the engine
 * / cache / logging stack is a loud failure here, not a rare
 * corruption in a long campaign.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include <unistd.h>

#include "driver/campaign/engine.hh"
#include "driver/graph_cache.hh"
#include "driver/service/store.hh"
#include "sim/logging.hh"

using namespace tdm;
using namespace tdm::driver;

namespace {

Experiment
point(core::RuntimeType rt_, const std::string &sched, unsigned cores)
{
    Experiment e;
    e.workload = "cholesky";
    e.params.granularity = 262144; // 8x8 tiles, 120 tasks: fast
    e.runtime = rt_;
    e.config.scheduler = sched;
    e.config.numCores = cores;
    return e;
}

/** Six distinct specs plus two in-list duplicates. */
std::vector<SweepPoint>
stressPoints()
{
    return {
        {"tdm/fifo", point(core::RuntimeType::Tdm, "fifo", 8)},
        {"tdm/age", point(core::RuntimeType::Tdm, "age", 8)},
        {"tdm/locality", point(core::RuntimeType::Tdm, "locality", 8)},
        {"sw/fifo", point(core::RuntimeType::Software, "fifo", 8)},
        {"sw/lifo", point(core::RuntimeType::Software, "lifo", 8)},
        {"tdm/fifo16", point(core::RuntimeType::Tdm, "fifo", 16)},
        {"dup/tdm-fifo", point(core::RuntimeType::Tdm, "fifo", 8)},
        {"dup/sw-fifo", point(core::RuntimeType::Software, "fifo", 8)},
    };
}

} // namespace

TEST(CampaignStress, ConcurrentClientsHammerOneEngine)
{
    // 6 client threads x 4 engine workers each, all against one
    // engine: 24 simulating threads sharing the result cache and the
    // build-once graph store, with progress logging on so the logging
    // stack is exercised concurrently too.
    constexpr unsigned kClients = 6;

    campaign::EngineOptions opts;
    opts.threads = 4;
    opts.progress = true; // worker threads write through sim::inform
    campaign::CampaignEngine engine(opts);

    const auto points = stressPoints();

    std::vector<campaign::CampaignResult> results(kClients);
    {
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (unsigned c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                results[c] = engine.run("stress-" + std::to_string(c),
                                        points);
            });
        }
        for (std::thread &t : clients)
            t.join();
    }

    // Every client sees every point complete...
    for (const auto &rep : results) {
        ASSERT_EQ(rep.jobs.size(), points.size());
        EXPECT_TRUE(rep.allOk()) << rep.name;
    }
    // ...and identical specs produce identical summaries no matter
    // which client or worker simulated them (the determinism
    // contract under maximal contention).
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &first = results[0].jobs[i];
        for (unsigned c = 1; c < kClients; ++c) {
            const auto &other = results[c].jobs[i];
            EXPECT_EQ(first.digest, other.digest) << first.label;
            EXPECT_EQ(first.summary.makespan, other.summary.makespan)
                << first.label;
        }
    }

    // One simulation ever per distinct fingerprint — exactly. The
    // in-flight claim table means clients racing before the cache is
    // warm attach to the winner's simulation instead of repeating it,
    // so 6 distinct specs cost 6 simulations total across all 24
    // simulating threads.
    EXPECT_EQ(engine.cache().size(), 6u);
    std::uint64_t simulated = 0;
    for (const auto &rep : results)
        simulated += rep.simulated;
    EXPECT_EQ(simulated, 6u);

    // The graph store built each distinct (workload, params) graph a
    // bounded number of times (racing duplicate builds are wasted
    // work, never extra instances): 8-core and 16-core points share
    // one 120-task graph.
    EXPECT_EQ(engine.graphCache().size(), 1u);

    // A second concurrent wave must be pure cache hits.
    std::vector<campaign::CampaignResult> rerun(kClients);
    {
        std::vector<std::thread> clients;
        for (unsigned c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                rerun[c] = engine.run("rerun-" + std::to_string(c),
                                      points);
            });
        }
        for (std::thread &t : clients)
            t.join();
    }
    for (const auto &rep : rerun) {
        EXPECT_EQ(rep.simulated, 0u) << rep.name;
        EXPECT_EQ(rep.cacheHits, points.size()) << rep.name;
        for (std::size_t i = 0; i < points.size(); ++i) {
            EXPECT_EQ(rep.jobs[i].summary.makespan,
                      results[0].jobs[i].summary.makespan)
                << rep.jobs[i].label;
        }
    }
}

TEST(CampaignStress, ConcurrentForkedGroupsStayDeterministic)
{
    // Warm-start fork groups under contention: four distinct warmup
    // prefixes (runtime x scheduler), each with a leader plus a
    // `power.*` variant (finalize fork) and a `mem.*` variant (warm
    // fork). Caching is off, so every client drives the full fork
    // machinery itself — four ForkGroupRunners per run, live machine
    // snapshots restored on worker threads — while four clients do
    // the same concurrently. TSan checks the isolation (each group's
    // machine is worker-private); the asserts check the fork paths
    // were actually taken and stayed deterministic.
    constexpr unsigned kClients = 4;

    std::vector<SweepPoint> points;
    for (core::RuntimeType rt_ :
         {core::RuntimeType::Tdm, core::RuntimeType::Software}) {
        for (const char *sched : {"fifo", "locality"}) {
            const std::string tag =
                std::string(core::traitsOf(rt_).name) + "/" + sched;
            Experiment lead = point(rt_, sched, 8);
            points.push_back({tag + "/lead", lead});
            Experiment pw = lead;
            pw.config.power.activeWatts *= 2.0;
            points.push_back({tag + "/power", pw});
            Experiment mm = lead;
            mm.config.mem.l1Bytes /= 2;
            points.push_back({tag + "/mem", mm});
        }
    }

    campaign::EngineOptions opts;
    opts.threads = 4;
    opts.useCache = false;
    campaign::CampaignEngine engine(opts);

    std::vector<campaign::CampaignResult> results(kClients);
    {
        std::vector<std::thread> clients;
        clients.reserve(kClients);
        for (unsigned c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                results[c] = engine.run("fork-" + std::to_string(c),
                                        points);
            });
        }
        for (std::thread &t : clients)
            t.join();
    }

    // Every client: 4 cold leaders, 8 forked members, 4 shared
    // warmups, zero cache traffic.
    for (const auto &rep : results) {
        ASSERT_EQ(rep.jobs.size(), points.size());
        EXPECT_TRUE(rep.allOk()) << rep.name;
        EXPECT_EQ(rep.simulated, 4u) << rep.name;
        EXPECT_EQ(rep.fromForked, 8u) << rep.name;
        EXPECT_EQ(rep.warmupsShared, 4u) << rep.name;
        EXPECT_EQ(rep.cacheHits, 0u) << rep.name;
    }

    // Forked results are deterministic across clients and identical
    // to a fork-disabled (all-cold) reference run.
    campaign::EngineOptions coldOpts;
    coldOpts.threads = 4;
    coldOpts.useCache = false;
    coldOpts.warmFork = false;
    campaign::CampaignEngine coldEngine(coldOpts);
    const campaign::CampaignResult cold =
        coldEngine.run("fork-cold-ref", points);
    EXPECT_EQ(cold.fromForked, 0u);

    for (std::size_t i = 0; i < points.size(); ++i) {
        for (const auto &rep : results) {
            EXPECT_EQ(rep.jobs[i].summary.makespan,
                      cold.jobs[i].summary.makespan)
                << rep.jobs[i].label;
        }
    }
}

TEST(CampaignStress, ResultCacheConcurrentLookupStore)
{
    // Raw cache hammer: 8 threads x 4000 ops over 32 keys, mixing
    // lookups and stores of the same keys. TSan checks the locking;
    // the arithmetic checks no operation was lost or double-counted.
    constexpr unsigned kThreads = 8;
    constexpr unsigned kOps = 4000;
    constexpr unsigned kKeys = 32;

    campaign::ResultCache cache;
    std::atomic<std::uint64_t> lookups{0};

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            for (unsigned i = 0; i < kOps; ++i) {
                const std::string key =
                    "key-" + std::to_string((t * 7 + i) % kKeys);
                if (i % 3 == 0) {
                    RunSummary s;
                    s.completed = true;
                    s.makespan = (t * 7 + i) % kKeys;
                    cache.store(key, s);
                } else {
                    auto hit = cache.lookup(key);
                    if (hit) {
                        EXPECT_TRUE(hit->completed);
                        EXPECT_LT(hit->makespan, kKeys);
                    }
                    lookups.fetch_add(1);
                }
            }
        });
    }
    for (std::thread &t : pool)
        t.join();

    EXPECT_LE(cache.size(), kKeys);
    EXPECT_EQ(cache.hits() + cache.misses(), lookups.load());
}

TEST(CampaignStress, ResultStoreConcurrentPublishFetch)
{
    // The persistent store behind a concurrently shared engine: 8
    // threads publish and fetch the same 24 keys (identical bytes per
    // key, so racing writers are benign). TSan checks the index lock;
    // the final sweep checks no entry was lost or damaged.
    constexpr unsigned kThreads = 8;
    constexpr unsigned kOps = 400;
    constexpr unsigned kKeys = 24;

    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path()
        / ("tdm_store_stress_" + std::to_string(::getpid()));
    fs::remove_all(dir);

    {
        service::ResultStore store(dir.string());
        std::vector<RunSummary> summaries(kKeys);
        for (unsigned k = 0; k < kKeys; ++k) {
            summaries[k].completed = true;
            summaries[k].makespan = 77000 + k;
            summaries[k].machine.metrics.set("machine.time_ms",
                                             0.5 * k);
        }
        auto keyOf = [](unsigned k) {
            return "stress.key=" + std::to_string(k) + ";";
        };

        std::vector<std::thread> pool;
        pool.reserve(kThreads);
        for (unsigned t = 0; t < kThreads; ++t) {
            pool.emplace_back([&, t] {
                for (unsigned i = 0; i < kOps; ++i) {
                    const unsigned k = (t * 11 + i) % kKeys;
                    if (i % 4 == 0) {
                        store.publish(keyOf(k), summaries[k]);
                    } else if (auto hit = store.fetch(keyOf(k))) {
                        EXPECT_EQ(hit->makespan, 77000 + k);
                    }
                }
            });
        }
        for (std::thread &t : pool)
            t.join();

        EXPECT_EQ(store.corrupt(), 0u);
        EXPECT_EQ(store.size(), kKeys);
        for (unsigned k = 0; k < kKeys; ++k) {
            auto hit = store.fetch(keyOf(k));
            ASSERT_TRUE(hit.has_value());
            EXPECT_EQ(hit->makespan, 77000 + k);
            EXPECT_EQ(hit->machine.metrics.get("machine.time_ms"),
                      0.5 * k);
        }
    }
    fs::remove_all(dir);
}

TEST(CampaignStress, GraphCacheConcurrentObtainSharesOneInstance)
{
    // 8 threads obtain the same 3 distinct graphs over and over; all
    // consumers of a key must receive pointer-identical instances
    // (first publisher wins), and builds() must count distinct keys,
    // not racing duplicate builds.
    constexpr unsigned kThreads = 8;
    constexpr unsigned kRounds = 25;

    GraphCache cache;
    std::vector<Experiment> exps = {
        point(core::RuntimeType::Tdm, "fifo", 8),
        point(core::RuntimeType::Software, "fifo", 8),
        point(core::RuntimeType::Tdm, "fifo", 8),
    };
    exps[1].params.granularity = 1048576; // distinct graph
    exps[2].params.seed = 7;              // distinct graph

    std::vector<std::vector<const rt::TaskGraph *>> seen(
        kThreads, std::vector<const rt::TaskGraph *>(exps.size(),
                                                     nullptr));
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t] {
            for (unsigned r = 0; r < kRounds; ++r) {
                for (std::size_t e = 0; e < exps.size(); ++e) {
                    auto g = cache.obtain(exps[e]);
                    ASSERT_NE(g, nullptr);
                    if (!seen[t][e])
                        seen[t][e] = g.get();
                    else
                        EXPECT_EQ(seen[t][e], g.get());
                }
            }
        });
    }
    for (std::thread &t : pool)
        t.join();

    for (std::size_t e = 0; e < exps.size(); ++e)
        for (unsigned t = 1; t < kThreads; ++t)
            EXPECT_EQ(seen[0][e], seen[t][e]);
    EXPECT_EQ(cache.size(), exps.size());
    EXPECT_EQ(cache.builds(), exps.size());
}

TEST(CampaignStress, LogLevelTogglesWhileWorkersLog)
{
    // The global log level is set by CLIs while campaign workers are
    // reporting progress; it must be safely readable mid-write (it
    // used to be a plain global — a TSan-visible race).
    const sim::LogLevel before = sim::logLevel();
    std::atomic<bool> stop{false};

    std::thread toggler([&] {
        for (int i = 0; i < 2000; ++i)
            sim::setLogLevel(i % 2 ? sim::LogLevel::Info
                                   : sim::LogLevel::Warn);
        stop.store(true);
    });
    std::vector<std::thread> loggers;
    for (int t = 0; t < 4; ++t) {
        loggers.emplace_back([&] {
            while (!stop.load())
                sim::inform("stress log line");
        });
    }
    toggler.join();
    for (std::thread &t : loggers)
        t.join();
    sim::setLogLevel(before);
    SUCCEED();
}
