/**
 * @file
 * Unit tests for the metric registry: scoped registration, key-path
 * addressing with near-miss errors, glob selection, flattening, and
 * snapshot/window phase deltas.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/metrics.hh"
#include "sim/suggest.hh"

using namespace tdm;

namespace {

/** Registry with one metric of every kind under dmu/mesh scopes. */
struct Rig
{
    sim::MetricRegistry reg;
    sim::Scalar hits, misses;
    std::uint64_t accesses = 0;
    sim::Average occupancy;
    sim::Distribution latency{0.0, 100.0, 10};
    sim::Formula hitRate;
    double level = 0.0;

    Rig()
    {
        hitRate.define([this] {
            const double total = hits.value() + misses.value();
            return total ? hits.value() / total : 0.0;
        });
        sim::MetricContext dmu = reg.context("dmu");
        sim::MetricContext tat = dmu.scope("tat");
        tat.counter("hits", &hits, "TAT hits");
        tat.counter("misses", &misses, "TAT misses");
        tat.formula("hit_rate", &hitRate, "TAT hit rate");
        dmu.counter("accesses", &accesses, "DMU accesses");
        sim::MetricContext mesh = reg.context("mesh");
        mesh.average("occupancy", &occupancy, "link occupancy");
        mesh.distribution("latency", &latency, "packet latency");
        mesh.gauge("level", [this] { return level; }, "queue level");
    }
};

} // namespace

TEST(MetricContext, ScopedKeysAndValues)
{
    Rig r;
    r.hits += 3.0;
    r.misses += 1.0;
    r.accesses = 9;
    EXPECT_TRUE(r.reg.contains("dmu.tat.hits"));
    EXPECT_DOUBLE_EQ(r.reg.value("dmu.tat.hits"), 3.0);
    EXPECT_DOUBLE_EQ(r.reg.value("dmu.accesses"), 9.0);
    EXPECT_DOUBLE_EQ(r.reg.value("dmu.tat.hit_rate"), 0.75);
    EXPECT_EQ(r.reg.size(), 7u);
}

TEST(MetricRegistry, UnknownKeyThrowsWithSuggestion)
{
    Rig r;
    try {
        r.reg.value("dmu.tat.hit");
        FAIL() << "expected MetricError";
    } catch (const sim::MetricError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("dmu.tat.hit"), std::string::npos);
        EXPECT_NE(msg.find("dmu.tat.hits"), std::string::npos);
    }
}

TEST(MetricRegistry, DuplicateAndEmptyKeysThrow)
{
    Rig r;
    sim::Scalar s;
    EXPECT_THROW(r.reg.context("dmu").scope("tat").counter("hits", &s,
                                                           ""),
                 sim::MetricError);
    EXPECT_THROW(r.reg.context("").counter("", &s, ""),
                 sim::MetricError);
}

TEST(MetricRegistry, ValuesFlattenSubkeys)
{
    Rig r;
    r.occupancy.sample(2.0);
    r.occupancy.sample(4.0);
    r.latency.sample(10.0);
    r.latency.sample(-5.0);  // underflow
    r.latency.sample(500.0); // overflow
    const sim::MetricSet v = r.reg.values();
    EXPECT_DOUBLE_EQ(v.at("mesh.occupancy"), 3.0);
    EXPECT_DOUBLE_EQ(v.at("mesh.occupancy.count"), 2.0);
    EXPECT_DOUBLE_EQ(v.at("mesh.latency.count"), 3.0);
    EXPECT_DOUBLE_EQ(v.at("mesh.latency.underflow"), 1.0);
    EXPECT_DOUBLE_EQ(v.at("mesh.latency.overflow"), 1.0);
    EXPECT_DOUBLE_EQ(v.at("mesh.latency.min"), -5.0);
    EXPECT_DOUBLE_EQ(v.at("mesh.latency.max"), 500.0);
}

TEST(MetricSet, AtThrowsGetDefaults)
{
    sim::MetricSet s;
    s.set("dmu.accesses", 5.0);
    EXPECT_DOUBLE_EQ(s.at("dmu.accesses"), 5.0);
    EXPECT_DOUBLE_EQ(s.get("nope", 7.0), 7.0);
    EXPECT_THROW(s.at("dmu.acesses"), sim::MetricError);
}

TEST(MetricSet, GlobMatching)
{
    using MS = sim::MetricSet;
    EXPECT_TRUE(MS::globMatch("dmu.*", "dmu.tat.hits"));
    EXPECT_TRUE(MS::globMatch("*", "anything.at.all"));
    EXPECT_TRUE(MS::globMatch("*.hits", "dmu.tat.hits"));
    EXPECT_TRUE(MS::globMatch("dmu.?at.hits", "dmu.tat.hits"));
    EXPECT_FALSE(MS::globMatch("dmu.*", "mesh.latency"));
    EXPECT_FALSE(MS::globMatch("dmu", "dmu.tat.hits"));
}

TEST(MetricSet, SelectFiltersByCommaGlobs)
{
    Rig r;
    const sim::MetricSet all = r.reg.values();
    const sim::MetricSet sel = all.select("dmu.tat.*, mesh.occupancy");
    EXPECT_TRUE(sel.contains("dmu.tat.hits"));
    EXPECT_TRUE(sel.contains("dmu.tat.hit_rate"));
    EXPECT_TRUE(sel.contains("mesh.occupancy"));
    EXPECT_FALSE(sel.contains("dmu.accesses"));
    EXPECT_FALSE(sel.contains("mesh.latency.mean"));

    // Empty pattern = everything; empty token = hard error.
    EXPECT_EQ(all.select("").size(), all.size());
    EXPECT_THROW(all.select("dmu.*,,mesh.*"), sim::MetricError);
}

TEST(MetricRegistry, WindowDeltasCountersAndMeans)
{
    Rig r;
    r.hits += 10.0;
    r.occupancy.sample(100.0); // pre-window sample must not leak in
    const sim::MetricSnapshot t0 = r.reg.snapshot();

    r.hits += 5.0;
    r.accesses += 7;
    r.occupancy.sample(2.0);
    r.occupancy.sample(4.0);
    r.latency.sample(30.0);
    r.level = 42.0;
    const sim::MetricSnapshot t1 = r.reg.snapshot();

    const sim::MetricSet w = r.reg.window(t0, t1);
    EXPECT_DOUBLE_EQ(w.at("dmu.tat.hits"), 5.0);
    EXPECT_DOUBLE_EQ(w.at("dmu.accesses"), 7.0);
    EXPECT_DOUBLE_EQ(w.at("mesh.occupancy"), 3.0); // window-local mean
    EXPECT_DOUBLE_EQ(w.at("mesh.latency.count"), 1.0);
    EXPECT_DOUBLE_EQ(w.at("mesh.latency.mean"), 30.0);
    // Gauges and formulas are excluded from windows.
    EXPECT_FALSE(w.contains("mesh.level"));
    EXPECT_FALSE(w.contains("dmu.tat.hit_rate"));
}

TEST(MetricRegistry, EmptyWindowMeansAreZero)
{
    Rig r;
    r.occupancy.sample(9.0);
    const sim::MetricSnapshot t0 = r.reg.snapshot();
    const sim::MetricSnapshot t1 = r.reg.snapshot();
    const sim::MetricSet w = r.reg.window(t0, t1);
    EXPECT_DOUBLE_EQ(w.at("mesh.occupancy"), 0.0);
    EXPECT_DOUBLE_EQ(w.at("mesh.latency.count"), 0.0);
}

TEST(MetricRegistry, DumpIsGem5Style)
{
    Rig r;
    r.hits += 2.0;
    std::ostringstream oss;
    r.reg.dump(oss);
    EXPECT_NE(oss.str().find("dmu.tat.hits 2 # TAT hits"),
              std::string::npos);
    // Flattened distribution subkeys appear as their own lines.
    EXPECT_NE(oss.str().find("mesh.latency.count 0"),
              std::string::npos);
}

TEST(Suggest, ClosestMatchesOrdersByDistance)
{
    const std::vector<std::string> cands = {"dmu.tat.hits",
                                            "dmu.tat.misses",
                                            "mesh.latency"};
    const auto near = sim::closestMatches("dmu.tat.hit", cands);
    ASSERT_FALSE(near.empty());
    EXPECT_EQ(near[0], "dmu.tat.hits");
    EXPECT_EQ(sim::suggestHint("zzzzqq", cands), "");
}
