/**
 * @file
 * Unit tests of the DMU's operational semantics (Algorithms 1 and 2):
 * RAW/WAR/WAW ordering, readiness delivery through the Ready Queue,
 * and resource cleanup.
 */

#include <gtest/gtest.h>

#include "dmu/dmu.hh"

using namespace tdm;

namespace {

constexpr std::uint64_t desc(int i) { return 0x8ab000000000ULL + i * 0x140; }
constexpr std::uint64_t addr(int i) { return 0x100000000ULL + i * 16384; }

dmu::DmuConfig
smallConfig()
{
    dmu::DmuConfig c;
    c.tatEntries = 64;
    c.tatAssoc = 8;
    c.datEntries = 64;
    c.datAssoc = 8;
    c.slaEntries = 64;
    c.dlaEntries = 64;
    c.rlaEntries = 64;
    c.readyQueueEntries = 64;
    return c;
}

/** create + deps + commit helper. */
dmu::DmuResult
makeTask(dmu::Dmu &d, int id,
         std::initializer_list<std::pair<int, bool>> deps)
{
    EXPECT_FALSE(d.createTask(desc(id)).blocked);
    for (auto [r, out] : deps)
        EXPECT_FALSE(
            d.addDependence(desc(id), addr(r), 16384, out).blocked);
    return d.commitTask(desc(id));
}

std::vector<std::uint64_t>
drainReady(dmu::Dmu &d)
{
    std::vector<std::uint64_t> out;
    unsigned acc = 0;
    while (auto info = d.getReadyTask(acc))
        out.push_back(info->descAddr);
    return out;
}

} // namespace

TEST(Dmu, IndependentTaskReadyAtCommit)
{
    dmu::Dmu d(smallConfig());
    auto res = makeTask(d, 0, {{0, false}});
    ASSERT_EQ(res.readyDescAddrs.size(), 1u);
    EXPECT_EQ(res.readyDescAddrs[0], desc(0));
    auto ready = drainReady(d);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], desc(0));
    EXPECT_TRUE(drainReady(d).empty());
}

TEST(Dmu, RawDependence)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, true}});   // writer
    auto r = makeTask(d, 1, {{1, false}}); // reader
    EXPECT_TRUE(r.readyDescAddrs.empty()); // blocked on RAW

    drainReady(d); // pop task 0
    auto fin = d.finishTask(desc(0));
    ASSERT_EQ(fin.readyDescAddrs.size(), 1u);
    EXPECT_EQ(fin.readyDescAddrs[0], desc(1));
}

TEST(Dmu, WawDependence)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, true}});
    auto r = makeTask(d, 1, {{1, true}});
    EXPECT_TRUE(r.readyDescAddrs.empty());
    drainReady(d);
    auto fin = d.finishTask(desc(0));
    ASSERT_EQ(fin.readyDescAddrs.size(), 1u);
}

TEST(Dmu, WarDependence)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, false}}); // reader, ready at commit
    auto w = makeTask(d, 1, {{1, true}}); // writer must wait
    EXPECT_TRUE(w.readyDescAddrs.empty());
    drainReady(d);
    auto fin = d.finishTask(desc(0));
    ASSERT_EQ(fin.readyDescAddrs.size(), 1u);
    EXPECT_EQ(fin.readyDescAddrs[0], desc(1));
}

TEST(Dmu, MultipleReadersRunConcurrently)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, true}});
    makeTask(d, 1, {{1, false}});
    makeTask(d, 2, {{1, false}});
    makeTask(d, 3, {{1, false}});
    drainReady(d);
    auto fin = d.finishTask(desc(0));
    EXPECT_EQ(fin.readyDescAddrs.size(), 3u); // all readers wake at once
}

TEST(Dmu, WriterWaitsForAllReaders)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, false}});
    makeTask(d, 1, {{1, false}});
    auto w = makeTask(d, 2, {{1, true}});
    EXPECT_TRUE(w.readyDescAddrs.empty());
    drainReady(d);
    EXPECT_TRUE(d.finishTask(desc(0)).readyDescAddrs.empty());
    auto fin = d.finishTask(desc(1));
    ASSERT_EQ(fin.readyDescAddrs.size(), 1u);
    EXPECT_EQ(fin.readyDescAddrs[0], desc(2));
}

TEST(Dmu, DiamondGraph)
{
    //      0
    //    /   \.
    //   1     2
    //    \   /
    //      3
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, true}});
    makeTask(d, 1, {{1, false}, {2, true}});
    makeTask(d, 2, {{1, false}, {3, true}});
    makeTask(d, 3, {{2, false}, {3, false}});
    drainReady(d);
    auto f0 = d.finishTask(desc(0));
    EXPECT_EQ(f0.readyDescAddrs.size(), 2u);
    EXPECT_TRUE(d.finishTask(desc(1)).readyDescAddrs.empty());
    auto f2 = d.finishTask(desc(2));
    ASSERT_EQ(f2.readyDescAddrs.size(), 1u);
    EXPECT_EQ(f2.readyDescAddrs[0], desc(3));
}

TEST(Dmu, SuccessorCountsTracked)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, true}});
    makeTask(d, 1, {{1, false}});
    makeTask(d, 2, {{1, false}});
    EXPECT_EQ(d.succCountOf(desc(0)), 2u);
    EXPECT_EQ(d.succCountOf(desc(1)), 0u);
}

TEST(Dmu, GetReadyReturnsSuccessorCount)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, true}});
    makeTask(d, 1, {{1, false}});
    unsigned acc = 0;
    auto info = d.getReadyTask(acc);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->descAddr, desc(0));
    EXPECT_EQ(info->numSuccessors, 1u);
}

TEST(Dmu, ResourcesFreedAfterFinish)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, true}, {2, false}});
    makeTask(d, 1, {{1, false}});
    EXPECT_EQ(d.tasksInFlight(), 2u);
    EXPECT_EQ(d.depsInFlight(), 2u);
    drainReady(d);
    d.finishTask(desc(0));
    d.finishTask(desc(1));
    EXPECT_EQ(d.tasksInFlight(), 0u);
    EXPECT_EQ(d.depsInFlight(), 0u);
    EXPECT_EQ(d.sla().entriesInUse(), 0u);
    EXPECT_EQ(d.dla().entriesInUse(), 0u);
    EXPECT_EQ(d.rla().entriesInUse(), 0u);
    EXPECT_EQ(d.tat().liveEntries(), 0u);
    EXPECT_EQ(d.dat().liveEntries(), 0u);
}

TEST(Dmu, FinishedWriterLeavesNoStaleEdge)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, true}});
    drainReady(d);
    d.finishTask(desc(0));
    // A reader arriving after the writer finished must be ready now.
    auto r = makeTask(d, 1, {{1, false}});
    EXPECT_EQ(r.readyDescAddrs.size(), 1u);
}

TEST(Dmu, ReadyOrderIsFifo)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{0, false}});
    makeTask(d, 1, {{1, false}});
    makeTask(d, 2, {{2, false}});
    auto ready = drainReady(d);
    ASSERT_EQ(ready.size(), 3u);
    EXPECT_EQ(ready[0], desc(0));
    EXPECT_EQ(ready[1], desc(1));
    EXPECT_EQ(ready[2], desc(2));
}

TEST(Dmu, AccessCountsAccumulate)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, true}});
    const auto &c = d.accessCounts();
    EXPECT_GT(c.tat, 0u);
    EXPECT_GT(c.dat, 0u);
    EXPECT_GT(c.taskTable, 0u);
    EXPECT_GT(c.total(), 5u);
}

TEST(Dmu, UncommittedTaskNotReadyEarly)
{
    // A task whose predecessors all finish before commit_task must not
    // enter the Ready Queue until committed.
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {{1, true}});
    drainReady(d);

    EXPECT_FALSE(d.createTask(desc(1)).blocked);
    EXPECT_FALSE(d.addDependence(desc(1), addr(1), 16384, false).blocked);
    // Writer finishes while task 1 is still being created.
    auto fin = d.finishTask(desc(0));
    EXPECT_TRUE(fin.readyDescAddrs.empty());
    EXPECT_TRUE(drainReady(d).empty());
    // Commit finally publishes it.
    auto c = d.commitTask(desc(1));
    ASSERT_EQ(c.readyDescAddrs.size(), 1u);
    EXPECT_EQ(c.readyDescAddrs[0], desc(1));
}

TEST(DmuDeath, DoubleCreatePanics)
{
    dmu::Dmu d(smallConfig());
    makeTask(d, 0, {});
    EXPECT_DEATH(d.createTask(desc(0)), "live descriptor");
}

TEST(DmuDeath, UnknownFinishPanics)
{
    dmu::Dmu d(smallConfig());
    EXPECT_DEATH(d.finishTask(desc(9)), "unknown task");
}
