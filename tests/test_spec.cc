/**
 * @file
 * Spec-API tests: binding-registry round-trips, validation errors with
 * near-miss suggestions, grid/zip expansion, the campaign text format,
 * and the golden check that the spec-built fig12/fig13/ablation
 * campaigns are byte-identical (labels and fingerprints) to the
 * historical hand-coded loops.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "driver/campaign/campaign.hh"
#include "driver/campaign/fingerprint.hh"
#include "driver/spec/campaign_file.hh"
#include "driver/spec/grid.hh"
#include "driver/spec/spec.hh"
#include "runtime/scheduler.hh"
#include "workloads/registry.hh"

using namespace tdm;
using namespace tdm::driver;
namespace spc = tdm::driver::spec;

namespace {

/** A valid non-default sample value for a binding, from its type. */
std::string
sampleValue(const spc::Binding &b)
{
    switch (b.kind) {
    case spc::ValueKind::Uint:
        return std::to_string(std::stoull(b.defaultValue) + 1);
    case spc::ValueKind::Double: {
        double d = std::stod(b.defaultValue);
        return spc::formatDouble(d * 2.0 + 0.125);
    }
    case spc::ValueKind::Bool:
        return b.defaultValue == "true" ? "false" : "true";
    case spc::ValueKind::Workload:
        return b.defaultValue == "lu" ? "qr" : "lu";
    case spc::ValueKind::Runtime:
        return b.defaultValue == "tdm" ? "carbon" : "tdm";
    case spc::ValueKind::Scheduler:
        return b.defaultValue == "age" ? "locality" : "age";
    case spc::ValueKind::Categories:
        return b.defaultValue == "task,dmu" ? "all" : "task,dmu";
    }
    return "";
}

} // namespace

TEST(Spec, DescribeOfDefaultsYieldsDefaults)
{
    const sim::Config d = spc::describe(Experiment{});
    EXPECT_EQ(d.entries().size(), spc::allBindings().size());
    for (const spc::Binding &b : spc::allBindings())
        EXPECT_EQ(d.getString(b.key), b.defaultValue) << b.key;

    // apply() of the described defaults reproduces the defaults.
    const sim::Config back = spc::describe(spc::apply(d));
    EXPECT_EQ(back.entries(), d.entries());
}

TEST(Spec, RoundTripsEveryRegisteredKey)
{
    const sim::Config defaults = spc::describe(Experiment{});
    for (const spc::Binding &b : spc::allBindings()) {
        const std::string sample = sampleValue(b);
        ASSERT_NE(sample, b.defaultValue) << b.key;

        sim::Config s = defaults;
        s.set(b.key, sample);
        const Experiment e = spc::apply(s);
        const sim::Config back = spc::describe(e);
        EXPECT_EQ(back.entries(), s.entries())
            << "describe(apply(spec)) != spec when setting " << b.key;
        EXPECT_EQ(back.getString(b.key), sample) << b.key;
    }
}

TEST(Spec, ShortWorkloadNamesCanonicalizeOnApply)
{
    Experiment e;
    spc::applyKey(e, "workload", "cho");
    EXPECT_EQ(e.workload, "cholesky");
    spc::applyKey(e, "workload", "str");
    EXPECT_EQ(e.workload, "streamcluster");
}

TEST(Spec, UnknownKeySuggestsNearMisses)
{
    Experiment e;
    try {
        spc::applyKey(e, "machine.core", "8");
        FAIL() << "expected SpecError";
    } catch (const spc::SpecError &err) {
        EXPECT_NE(std::string(err.what()).find("machine.cores"),
                  std::string::npos)
            << err.what();
    }
}

TEST(Spec, BadValuesAreHardErrors)
{
    Experiment e;
    EXPECT_THROW(spc::applyKey(e, "machine.cores", "banana"),
                 spc::SpecError);
    EXPECT_THROW(spc::applyKey(e, "machine.cores", "-3"),
                 spc::SpecError);
    EXPECT_THROW(spc::applyKey(e, "machine.cores", "12abc"),
                 spc::SpecError);
    EXPECT_THROW(spc::applyKey(e, "workload.noise", "0.1.2"),
                 spc::SpecError);
    EXPECT_THROW(spc::applyKey(e, "workload.tdm_optimal", "maybe"),
                 spc::SpecError);
    EXPECT_THROW(spc::applyKey(e, "workload", "nope"), spc::SpecError);
    EXPECT_THROW(spc::applyKey(e, "runtime", "hardware"),
                 spc::SpecError);
    EXPECT_THROW(spc::applyKey(e, "scheduler", "zzz"), spc::SpecError);
    EXPECT_THROW(spc::applyKey(e, "no.such.key", "1"), spc::SpecError);
    // Out of range for the field width (unsigned).
    EXPECT_THROW(spc::applyKey(e, "machine.cores", "4294967296"),
                 spc::SpecError);
    // Nothing was modified by the failed applications.
    EXPECT_EQ(spc::describe(e).entries(),
              spc::describe(Experiment{}).entries());
}

TEST(Spec, CanonicalSpecAppliesRunNormalization)
{
    Experiment e;
    e.workload = "cho";
    e.runtime = core::RuntimeType::Tdm;
    const sim::Config c = spc::canonicalSpec(e);
    EXPECT_EQ(c.getString("workload"), "cholesky");
    // DMU runtime at default granularity implies the TDM optimum.
    EXPECT_EQ(c.getString("workload.tdm_optimal"), "true");

    // An explicit granularity makes the flag moot.
    e.params.granularity = 262144;
    e.params.tdmOptimal = true;
    EXPECT_EQ(spc::canonicalSpec(e).getString("workload.tdm_optimal"),
              "false");

    // The fingerprint is exactly the canonical spec serialization.
    EXPECT_EQ(campaign::fingerprint(e), spc::canonicalSpec(e).serialize());
}

TEST(Spec, FormatDoubleRoundTripsAndStaysShort)
{
    EXPECT_EQ(spc::formatDouble(0.05), "0.05");
    EXPECT_EQ(spc::formatDouble(262144.0), "262144");
    EXPECT_EQ(spc::formatDouble(0.0), "0");
    for (double v : {0.1, 1.0 / 3.0, 8.0, 2e-9, 123456789.125}) {
        double back = 0.0;
        ASSERT_TRUE(
            sim::Config::tryParseDouble(spc::formatDouble(v), back));
        EXPECT_EQ(back, v);
    }
}

TEST(Spec, ClosestMatchesRanksByDistance)
{
    const std::vector<std::string> cand = {"fig12", "fig13",
                                           "ablation_scaling"};
    const auto near = spc::closestMatches("fig21", cand);
    ASSERT_FALSE(near.empty());
    EXPECT_EQ(near[0], "fig12");
    // Substring relation surfaces long keys from short queries.
    const auto sub = spc::closestMatches(
        "tat", {"dmu.tat_entries", "power.active_w"});
    ASSERT_EQ(sub.size(), 1u);
    EXPECT_EQ(sub[0], "dmu.tat_entries");
}

TEST(Grid, ProductExpansionOrderAndLabels)
{
    spc::Grid g;
    g.set("runtime", "tdm")
        .axis("workload", {"cholesky", "qr"})
        .axis("machine.cores", spc::valueStrings({8, 16}))
        .label("{workload}/c{machine.cores}/{scheduler}");
    EXPECT_EQ(g.size(), 4u);

    const auto pts = g.points();
    ASSERT_EQ(pts.size(), 4u);
    // First-declared axis outermost.
    EXPECT_EQ(pts[0].label, "cholesky/c8/fifo");
    EXPECT_EQ(pts[1].label, "cholesky/c16/fifo");
    EXPECT_EQ(pts[2].label, "qr/c8/fifo");
    EXPECT_EQ(pts[3].label, "qr/c16/fifo");
    EXPECT_EQ(pts[1].exp.config.numCores, 16u);
    EXPECT_EQ(pts[2].exp.workload, "qr");
    EXPECT_EQ(pts[0].exp.runtime, core::RuntimeType::Tdm);
}

TEST(Grid, ZipAxisVariesKeysTogether)
{
    spc::Grid g;
    g.zip({"machine.cores", "mesh.width", "mesh.height"},
          {{"8", "3", "3"}, {"64", "9", "9"}})
        .axis("runtime", {"sw", "tdm"});
    EXPECT_EQ(g.size(), 4u);
    const auto pts = g.points();
    EXPECT_EQ(pts[0].exp.config.numCores, 8u);
    EXPECT_EQ(pts[0].exp.config.mesh.width, 3u);
    EXPECT_EQ(pts[3].exp.config.numCores, 64u);
    EXPECT_EQ(pts[3].exp.config.mesh.height, 9u);
    EXPECT_EQ(pts[3].exp.runtime, core::RuntimeType::Tdm);
    // Default label: axis values joined with '/'.
    EXPECT_EQ(pts[0].label, "8/3/3/sw");

    EXPECT_THROW(spc::Grid().zip({"machine.cores"}, {{"8", "3"}}),
                 spc::SpecError);
}

TEST(Grid, InvalidKeysAndLabelTemplatesThrow)
{
    EXPECT_THROW(spc::Grid().set("nope", "1").points(), spc::SpecError);
    EXPECT_THROW(spc::Grid().axis("machine.cores", {"8", "x"}).points(),
                 spc::SpecError);
    EXPECT_THROW(
        spc::Grid().label("{machine.core}").points(), spc::SpecError);
    EXPECT_THROW(spc::Grid().label("{oops").points(), spc::SpecError);
}

// The golden check behind the redesign: the grid-declared builtins
// expand to byte-identical labels and fingerprints as the historical
// hand-coded loops (reproduced verbatim below).
namespace golden {

SweepPoint
point(const std::string &workload, core::RuntimeType runtime,
      const std::string &scheduler)
{
    Experiment e;
    e.workload = workload;
    e.runtime = runtime;
    e.config.scheduler = scheduler;
    return SweepPoint{campaign::pointLabel(
                          workload, core::traitsOf(runtime).name,
                          scheduler),
                      e};
}

std::vector<SweepPoint>
fig12()
{
    std::vector<SweepPoint> pts;
    for (const auto &w : wl::allWorkloads()) {
        for (const auto &s : rt::allSchedulerNames())
            pts.push_back(point(w.name, core::RuntimeType::Software, s));
        for (const auto &s : rt::allSchedulerNames())
            pts.push_back(point(w.name, core::RuntimeType::Tdm, s));
    }
    return pts;
}

std::vector<SweepPoint>
fig13()
{
    std::vector<SweepPoint> pts;
    for (const auto &w : wl::allWorkloads()) {
        pts.push_back(point(w.name, core::RuntimeType::Software, "fifo"));
        pts.push_back(point(w.name, core::RuntimeType::Carbon, "fifo"));
        pts.push_back(
            point(w.name, core::RuntimeType::TaskSuperscalar, "fifo"));
        for (const auto &s : rt::allSchedulerNames())
            pts.push_back(point(w.name, core::RuntimeType::Tdm, s));
    }
    return pts;
}

std::vector<SweepPoint>
ablationScaling()
{
    static const unsigned coreCounts[] = {8, 16, 32, 64};
    static const char *workloads[] = {"cholesky", "qr", "streamcluster"};

    std::vector<SweepPoint> pts;
    for (const char *w : workloads) {
        for (unsigned cores : coreCounts) {
            for (core::RuntimeType rt_ : {core::RuntimeType::Software,
                                          core::RuntimeType::Tdm}) {
                SweepPoint p = point(w, rt_, "fifo");
                p.exp.config.numCores = cores;
                unsigned dim = 2;
                while (dim * dim < cores + 1)
                    ++dim;
                p.exp.config.mesh.width = dim;
                p.exp.config.mesh.height = dim;
                p.label = std::string(w) + "/c" + std::to_string(cores)
                        + "/" + core::traitsOf(rt_).name;
                pts.push_back(std::move(p));
            }
        }
    }
    return pts;
}

void
expectIdentical(const std::string &name,
                const std::vector<SweepPoint> &want)
{
    const campaign::Campaign c = campaign::makeCampaign(name);
    ASSERT_EQ(c.points.size(), want.size()) << name;
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(c.points[i].label, want[i].label)
            << name << " point " << i;
        EXPECT_EQ(campaign::fingerprint(c.points[i].exp),
                  campaign::fingerprint(want[i].exp))
            << name << " point " << i << " (" << want[i].label << ")";
    }
}

} // namespace golden

TEST(GoldenBuiltins, Fig12MatchesHandCodedLoops)
{
    golden::expectIdentical("fig12", golden::fig12());
}

TEST(GoldenBuiltins, Fig13MatchesHandCodedLoops)
{
    golden::expectIdentical("fig13", golden::fig13());
}

TEST(GoldenBuiltins, AblationScalingMatchesHandCodedLoops)
{
    golden::expectIdentical("ablation_scaling",
                            golden::ablationScaling());
}

TEST(CampaignRegistry, PointCountIsCheapAndExact)
{
    EXPECT_EQ(campaign::campaignPointCount("fig12"), 90u);
    EXPECT_EQ(campaign::campaignPointCount("fig13"), 72u);
    EXPECT_EQ(campaign::campaignPointCount("ablation_scaling"), 24u);
}

TEST(CampaignFile, ParsesMetaSetAxisZip)
{
    std::istringstream in(R"(# comment
[meta]
name = demo
description = a demo study
label = {workload}/tat{dmu.tat_entries}

set runtime = tdm           # trailing comment
set scheduler = age
zip workload, workload.granularity = cholesky, 262144 | qr, 128
axis dmu.tat_entries = 512, \
                       2048
)");
    const spc::FileCampaign fc = spc::parseCampaignFile(in, "demo");
    EXPECT_EQ(fc.name, "demo");
    EXPECT_EQ(fc.description, "a demo study");
    EXPECT_EQ(fc.grid.size(), 4u);

    const campaign::Campaign c = fc.toCampaign();
    ASSERT_EQ(c.points.size(), 4u);
    EXPECT_EQ(c.points[0].label, "cholesky/tat512");
    EXPECT_EQ(c.points[1].label, "cholesky/tat2048");
    EXPECT_EQ(c.points[2].label, "qr/tat512");
    EXPECT_EQ(c.points[0].exp.runtime, core::RuntimeType::Tdm);
    EXPECT_EQ(c.points[0].exp.config.scheduler, "age");
    EXPECT_EQ(c.points[2].exp.params.granularity, 128.0);
    std::set<std::string> labels;
    for (const auto &p : c.points)
        labels.insert(p.label);
    EXPECT_EQ(labels.size(), c.points.size());
}

TEST(CampaignFile, CommentEndingInBackslashDoesNotSwallowNextLine)
{
    // Regression: continuation joining used to run before comment
    // stripping, so a '#'-comment ending in '\' silently consumed the
    // following directive.
    std::istringstream in(
        "set runtime = tdm  # tried sw \\\n"
        "set scheduler = age\n");
    const spc::FileCampaign fc = spc::parseCampaignFile(in, "c");
    const auto pts = fc.grid.points();
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].exp.runtime, core::RuntimeType::Tdm);
    EXPECT_EQ(pts[0].exp.config.scheduler, "age");
}

TEST(CampaignFile, LabelTemplatePropagatesForReRendering)
{
    std::istringstream in(
        "[meta]\n"
        "label = c{machine.cores}\n"
        "axis machine.cores = 8, 16\n");
    const campaign::Campaign c =
        spc::parseCampaignFile(in, "c").toCampaign();
    EXPECT_EQ(c.labelTemplate, "c{machine.cores}");
    ASSERT_EQ(c.points.size(), 2u);
    EXPECT_EQ(c.points[0].label, "c8");

    // The campaign_run --set path: after mutating a point, the
    // template re-renders a truthful label.
    Experiment e = c.points[0].exp;
    spc::applyKey(e, "machine.cores", "32");
    EXPECT_EQ(spc::renderLabel(c.labelTemplate, e), "c32");
}

TEST(CampaignFile, MetricsDirectivePropagatesToCampaign)
{
    std::istringstream in(
        "set runtime = tdm\n"
        "metrics = dmu.*, mesh.avg_hop_latency\n");
    const campaign::Campaign c =
        spc::parseCampaignFile(in, "c").toCampaign();
    EXPECT_EQ(c.metrics, "dmu.*, mesh.avg_hop_latency");

    // Without the directive the pattern stays empty (= export all).
    std::istringstream none("set runtime = tdm\n");
    EXPECT_EQ(spc::parseCampaignFile(none, "c").toCampaign().metrics,
              "");
}

TEST(CampaignFile, MetricsDirectiveValidatesGlobTokens)
{
    auto parse = [](const std::string &text) {
        std::istringstream in(text);
        return spc::parseCampaignFile(in, "bad.campaign");
    };
    EXPECT_THROW(parse("metrics =\n"), spc::SpecError);
    // Junk between the keyword and '=' must not parse (it would
    // silently select the wrong subtree).
    EXPECT_THROW(parse("metrics dmu.* = mesh.*\n"), spc::SpecError);
    EXPECT_THROW(parse("metrics pattern = dmu.*\n"), spc::SpecError);
    try {
        parse("set runtime = tdm\nmetrics = dmu.*,,mesh.*\n");
        FAIL() << "expected SpecError";
    } catch (const spc::SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("bad.campaign:2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CampaignFile, ErrorsCarryFileAndLineContext)
{
    auto parse = [](const std::string &text) {
        std::istringstream in(text);
        return spc::parseCampaignFile(in, "bad.campaign");
    };
    try {
        parse("set dmu.tat_entrees = 512\n");
        FAIL() << "expected SpecError";
    } catch (const spc::SpecError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("bad.campaign:1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("dmu.tat_entries"), std::string::npos) << msg;
    }
    EXPECT_THROW(parse("frobnicate workload = x\n"), spc::SpecError);
    EXPECT_THROW(parse("axis machine.cores\n"), spc::SpecError);
    EXPECT_THROW(parse("zip a, b = 1 | 2, 3\n"), spc::SpecError);
    EXPECT_THROW(parse("[meta]\nbogus = 1\n"), spc::SpecError);
    EXPECT_THROW(parse("[metadata]\n"), spc::SpecError);
    // Values are validated at expansion.
    EXPECT_THROW(parse("axis machine.cores = 8, x\n").grid.points(),
                 spc::SpecError);
}
