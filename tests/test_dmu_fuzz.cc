/**
 * @file
 * Randomized stress tests of the DMU under tight capacities: blocked
 * operations must have no side effects, resources must be conserved,
 * and after draining everything the unit must be completely empty.
 */

#include <gtest/gtest.h>

#include <deque>

#include "dmu/dmu.hh"
#include "sim/rng.hh"

using namespace tdm;

namespace {

constexpr std::uint64_t desc(std::uint64_t i)
{
    return 0xb000000000ULL + i * 0x140;
}

constexpr std::uint64_t addr(std::uint64_t i)
{
    return 0x400000000ULL + i * 8192;
}

struct FuzzParam
{
    std::uint64_t seed;
    unsigned tat, dat, lists, elems;
    unsigned regions;
    unsigned steps;
};

class DmuFuzz : public ::testing::TestWithParam<FuzzParam>
{};

struct Snapshot
{
    unsigned tasks, deps, sla, dla, rla;
    std::size_t ready;
};

Snapshot
snap(const dmu::Dmu &d)
{
    return {d.tasksInFlight(), d.depsInFlight(), d.sla().entriesInUse(),
            d.dla().entriesInUse(), d.rla().entriesInUse(),
            d.readyCount()};
}

bool
operator==(const Snapshot &a, const Snapshot &b)
{
    return a.tasks == b.tasks && a.deps == b.deps && a.sla == b.sla
        && a.dla == b.dla && a.rla == b.rla && a.ready == b.ready;
}

} // namespace

TEST_P(DmuFuzz, InvariantsUnderPressure)
{
    const FuzzParam &p = GetParam();
    dmu::DmuConfig cfg;
    cfg.tatEntries = p.tat;
    cfg.tatAssoc = std::min(8u, p.tat);
    cfg.datEntries = p.dat;
    cfg.datAssoc = std::min(8u, p.dat);
    cfg.slaEntries = p.lists;
    cfg.dlaEntries = p.lists;
    cfg.rlaEntries = p.lists;
    cfg.elemsPerEntry = p.elems;
    cfg.readyQueueEntries = p.tat;
    dmu::Dmu d(cfg);

    sim::Rng rng(p.seed);
    std::uint64_t next_task = 0;
    // Tasks popped from the Ready Queue, executing, not yet finished.
    // (The runtime contract: only dispatched tasks may finish.)
    std::deque<std::uint64_t> running;
    std::uint64_t created_ok = 0, blocked_seen = 0;

    for (unsigned step = 0; step < p.steps; ++step) {
        bool do_create = rng.uniform() < 0.55;
        if (do_create) {
            // Try to create a task with 1..3 deps; on any block, give
            // up on the whole task after verifying no state change.
            std::uint64_t id = next_task;
            Snapshot before = snap(d);
            auto cres = d.createTask(desc(id));
            if (cres.blocked) {
                ++blocked_seen;
                EXPECT_TRUE(snap(d) == before);
            } else {
                ++next_task;
                unsigned ndeps = 1 + rng.below(3);
                for (unsigned k = 0; k < ndeps; ++k) {
                    std::uint64_t r = rng.below(p.regions);
                    bool out = rng.uniform() < 0.5;
                    Snapshot b2 = snap(d);
                    auto ares =
                        d.addDependence(desc(id), addr(r), 8192, out);
                    if (ares.blocked) {
                        ++blocked_seen;
                        EXPECT_TRUE(snap(d) == b2);
                        break;
                    }
                }
                d.commitTask(desc(id));
                ++created_ok;
            }
        }
        // Dispatch: pop a ready task now and then.
        if (rng.uniform() < 0.6) {
            unsigned acc = 0;
            if (auto info = d.getReadyTask(acc))
                running.push_back((info->descAddr - 0xb000000000ULL)
                                  / 0x140);
        }
        // Finish a running task half of the time.
        if (!running.empty() && rng.uniform() < 0.5) {
            std::uint64_t id = running.front();
            running.pop_front();
            d.finishTask(desc(id));
        }
    }
    // Drain everything: keep dispatching and finishing until empty.
    while (d.tasksInFlight() > 0) {
        unsigned acc = 0;
        while (auto info = d.getReadyTask(acc))
            running.push_back((info->descAddr - 0xb000000000ULL)
                              / 0x140);
        ASSERT_FALSE(running.empty()) << "ready tasks vanished";
        d.finishTask(desc(running.front()));
        running.pop_front();
    }
    EXPECT_EQ(d.tasksInFlight(), 0u);
    EXPECT_EQ(d.depsInFlight(), 0u);
    EXPECT_EQ(d.sla().entriesInUse(), 0u);
    EXPECT_EQ(d.dla().entriesInUse(), 0u);
    EXPECT_EQ(d.rla().entriesInUse(), 0u);
    EXPECT_EQ(d.tat().liveEntries(), 0u);
    EXPECT_EQ(d.dat().liveEntries(), 0u);
    EXPECT_GT(created_ok, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Pressure, DmuFuzz,
    ::testing::Values(
        FuzzParam{1, 16, 16, 16, 2, 8, 2000},
        FuzzParam{2, 8, 8, 8, 2, 4, 2000},
        FuzzParam{3, 32, 16, 8, 4, 12, 3000},
        FuzzParam{4, 64, 64, 64, 8, 24, 4000},
        FuzzParam{5, 16, 64, 32, 2, 6, 3000},
        FuzzParam{6, 64, 16, 16, 4, 4, 3000},
        FuzzParam{7, 8, 32, 64, 8, 16, 2000},
        FuzzParam{8, 128, 128, 32, 2, 40, 5000}),
    [](const ::testing::TestParamInfo<FuzzParam> &info) {
        return "seed" + std::to_string(info.param.seed);
    });
