/**
 * @file
 * Tests for the runtime-model descriptors: traits, axes, names, and
 * the hardware-cost figures used in Section VI-C.
 */

#include <gtest/gtest.h>

#include "core/tss_runtime.hh"
#include "cpu/machine_config.hh"

using namespace tdm;

TEST(RuntimeTraits, AxesMatchThePaperTable)
{
    using core::DepMode;
    using core::RuntimeType;
    using core::SchedMode;
    const auto &sw = core::traitsOf(RuntimeType::Software);
    EXPECT_EQ(sw.dep, DepMode::Software);
    EXPECT_EQ(sw.sched, SchedMode::SoftwarePool);
    EXPECT_TRUE(sw.flexibleScheduling());
    EXPECT_FALSE(sw.usesDmu());

    const auto &tdm = core::traitsOf(RuntimeType::Tdm);
    EXPECT_EQ(tdm.dep, DepMode::Hardware);
    EXPECT_EQ(tdm.sched, SchedMode::SoftwarePool);
    EXPECT_TRUE(tdm.flexibleScheduling());
    EXPECT_TRUE(tdm.usesDmu());

    const auto &carbon = core::traitsOf(RuntimeType::Carbon);
    EXPECT_EQ(carbon.dep, DepMode::Software);
    EXPECT_EQ(carbon.sched, SchedMode::HardwareQueues);
    EXPECT_FALSE(carbon.flexibleScheduling());

    const auto &tss = core::traitsOf(RuntimeType::TaskSuperscalar);
    EXPECT_EQ(tss.dep, DepMode::Hardware);
    EXPECT_EQ(tss.sched, SchedMode::HardwareFifo);
    EXPECT_FALSE(tss.flexibleScheduling());
}

TEST(RuntimeTraits, RoundTripNames)
{
    for (auto t : core::allRuntimeTypes()) {
        const auto &tr = core::traitsOf(t);
        EXPECT_EQ(core::runtimeFromString(tr.name), t);
    }
    EXPECT_EQ(core::allRuntimeTypes().size(), 4u);
}

TEST(RuntimeTraitsDeath, UnknownNameFatal)
{
    EXPECT_DEATH((void)core::runtimeFromString("gpu"), "unknown runtime");
}

TEST(RuntimeSpecs, HardwareCostOrdering)
{
    cpu::MachineConfig cfg;
    auto sw = core::runtimeSpec(core::RuntimeType::Software, cfg);
    auto tdm = core::runtimeSpec(core::RuntimeType::Tdm, cfg);
    auto carbon = core::runtimeSpec(core::RuntimeType::Carbon, cfg);
    auto tss = core::runtimeSpec(core::RuntimeType::TaskSuperscalar, cfg);

    EXPECT_DOUBLE_EQ(sw.hwStorageKB, 0.0);
    EXPECT_LT(carbon.hwStorageKB, tdm.hwStorageKB);
    EXPECT_LT(tdm.hwStorageKB, tss.hwStorageKB);
    EXPECT_NEAR(tss.hwStorageKB / tdm.hwStorageKB, 7.3, 0.1);

    EXPECT_EQ(sw.displayName, "SW");
    EXPECT_EQ(tdm.displayName, "TDM");
    EXPECT_FALSE(tdm.description.empty());
}

TEST(RuntimeSpecs, TdmStorageTracksDmuConfig)
{
    cpu::MachineConfig small;
    small.dmu.tatEntries = 512;
    small.dmu.datEntries = 512;
    cpu::MachineConfig big;
    EXPECT_LT(core::runtimeSpec(core::RuntimeType::Tdm, small).hwStorageKB,
              core::runtimeSpec(core::RuntimeType::Tdm, big).hwStorageKB);
}

TEST(MachineConfigDescribe, TableIFieldsPresent)
{
    cpu::MachineConfig cfg;
    sim::Config c = cfg.describe();
    EXPECT_EQ(c.getUint("chip.cores"), 32u);
    EXPECT_EQ(c.getUint("dmu.tat_entries"), 2048u);
    EXPECT_EQ(c.getUint("dmu.dat_assoc"), 8u);
    EXPECT_EQ(c.getUint("l1d.size_kb"), 32u);
    EXPECT_EQ(c.getUint("l2.size_mb"), 4u);
    EXPECT_TRUE(c.getBool("dmu.dynamic_dat_index"));
    EXPECT_EQ(c.getString("sched.policy"), "fifo");
}
