/**
 * @file
 * Unit tests for the 2D mesh NoC model.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"

using namespace tdm;

TEST(Mesh, HopCountIsManhattan)
{
    noc::Mesh m(noc::MeshConfig{6, 6, 1, 1, 16, 0.0});
    EXPECT_EQ(m.hops(0, 0), 0u);
    EXPECT_EQ(m.hops(0, 5), 5u);
    EXPECT_EQ(m.hops(0, 35), 10u);
    EXPECT_EQ(m.hops(7, 14), 2u); // (1,1) -> (2,2)
}

TEST(Mesh, CenterNode)
{
    noc::Mesh m(noc::MeshConfig{6, 6, 1, 1, 16, 0.0});
    EXPECT_EQ(m.centerNode(), 21u); // (3,3)
}

TEST(Mesh, CoresSkipCenterNode)
{
    noc::Mesh m(noc::MeshConfig{6, 6, 1, 1, 16, 0.0});
    noc::NodeId center = m.centerNode();
    for (sim::CoreId c = 0; c < 32; ++c)
        EXPECT_NE(m.nodeOfCore(c), center);
    EXPECT_EQ(m.nodeOfCore(0), 0u);
    EXPECT_EQ(m.nodeOfCore(20), 20u);
    EXPECT_EQ(m.nodeOfCore(21), 22u); // shifted past the center
}

TEST(Mesh, LatencyGrowsWithDistanceAndSize)
{
    noc::Mesh m(noc::MeshConfig{6, 6, 1, 1, 16, 0.0});
    sim::Tick near = m.latency(0, 1, 16);
    sim::Tick far = m.latency(0, 35, 16);
    EXPECT_GT(far, near);
    sim::Tick small = m.latency(0, 35, 16);
    sim::Tick big = m.latency(0, 35, 160);
    EXPECT_GT(big, small);
}

TEST(Mesh, ZeroHopLatencyIsRouterOnly)
{
    noc::Mesh m(noc::MeshConfig{4, 4, 2, 1, 16, 0.0});
    EXPECT_EQ(m.latency(5, 5, 16), 2u);
}

TEST(Mesh, TransferAccumulatesTraffic)
{
    noc::Mesh m(noc::MeshConfig{4, 4, 1, 1, 16, 0.0});
    EXPECT_EQ(m.messages(), 0u);
    m.transfer(0, 3, 16); // 3 hops, 1 flit
    EXPECT_EQ(m.messages(), 1u);
    EXPECT_EQ(m.flitHops(), 3u);
    m.transfer(0, 3, 32); // 2 flits
    EXPECT_EQ(m.flitHops(), 9u);
    EXPECT_GE(m.maxLinkFlits(), 3u);
}
