/**
 * @file
 * Tests for the energy accounting: core active/idle split, cache and
 * accelerator contributions, EDP arithmetic, and the paper's
 * "constant power" property (power varies little across schedulers, so
 * EDP follows time squared).
 */

#include <gtest/gtest.h>

#include "power/core_power.hh"
#include "power/energy_accountant.hh"

using namespace tdm;

TEST(CorePower, ActiveCostsMoreThanIdle)
{
    pwr::CorePowerParams p;
    sim::Tick one_ms = sim::usToTicks(1000);
    EXPECT_GT(pwr::coreEnergyJ(p, one_ms, 0),
              pwr::coreEnergyJ(p, 0, one_ms));
}

TEST(CorePower, EnergyScalesLinearly)
{
    pwr::CorePowerParams p;
    sim::Tick t = sim::usToTicks(500);
    double e1 = pwr::coreEnergyJ(p, t, t);
    double e2 = pwr::coreEnergyJ(p, 2 * t, 2 * t);
    EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
}

TEST(EnergyAccountant, TotalsAddUp)
{
    pwr::CorePowerParams p;
    p.uncoreWatts = 0.0;
    pwr::EnergyAccountant a(p);
    sim::Tick span = sim::usToTicks(1000);
    a.addCoreTime(span, 0);
    double base = a.totalJoules(span);
    EXPECT_NEAR(base, p.activeWatts * 0.001, 1e-9);

    a.addCacheLines(1000, 0, 0);
    EXPECT_NEAR(a.totalJoules(span) - base, 1000 * p.l1LineNj * 1e-9,
                1e-12);
}

TEST(EnergyAccountant, AcceleratorContributions)
{
    pwr::EnergyAccountant a;
    sim::Tick span = sim::usToTicks(1000); // 1 ms
    double before = a.totalJoules(span);
    a.addAcceleratorPj(1e6); // 1 uJ
    EXPECT_NEAR(a.totalJoules(span) - before, 1e-6, 1e-12);
    a.setAcceleratorLeakageMw(2.0);
    EXPECT_NEAR(a.totalJoules(span) - before, 1e-6 + 2e-3 * 1e-3, 1e-9);
}

TEST(EnergyAccountant, EdpIsEnergyTimesDelay)
{
    pwr::EnergyAccountant a;
    sim::Tick span = sim::usToTicks(2000);
    a.addCoreTime(span, 0);
    double e = a.totalJoules(span);
    EXPECT_NEAR(a.edp(span), e * 0.002, 1e-12);
    EXPECT_NEAR(a.avgWatts(span), e / 0.002, 1e-9);
}

TEST(EnergyAccountant, ConstantPowerMakesEdpQuadratic)
{
    // If a run gets S times faster at roughly constant power, EDP
    // improves by about S^2 — the relation the paper's 12.3% speedup /
    // 20.4% EDP numbers satisfy.
    pwr::CorePowerParams p;
    p.idleWatts = p.activeWatts; // constant power
    p.uncoreWatts = 0.0;

    auto edp_of = [&](double ms) {
        pwr::EnergyAccountant a(p);
        sim::Tick span = sim::usToTicks(ms * 1000.0);
        a.addCoreTime(span / 2, span - span / 2);
        return a.edp(span);
    };
    double ratio = edp_of(100.0) / edp_of(89.0); // 12.3% speedup
    EXPECT_NEAR(ratio, (100.0 / 89.0) * (100.0 / 89.0), 1e-6);
    EXPECT_NEAR(1.0 - 1.0 / ratio, 0.208, 0.01); // ~20% EDP reduction
}
