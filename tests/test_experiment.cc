/**
 * @file
 * Driver-level tests: experiments, sweeps and report helpers.
 */

#include <gtest/gtest.h>

#include "driver/experiment.hh"
#include "driver/report/aggregate.hh"
#include "driver/spec/grid.hh"
#include "driver/sweep.hh"

using namespace tdm;

namespace {

driver::Experiment
smallExperiment(core::RuntimeType rt_, const std::string &sched = "fifo")
{
    driver::Experiment e;
    e.workload = "cholesky";
    e.params.granularity = 262144; // 8x8 tiles, 120 tasks
    e.runtime = rt_;
    e.config.scheduler = sched;
    e.config.numCores = 8;
    return e;
}

} // namespace

TEST(Experiment, RunsAllRuntimes)
{
    for (core::RuntimeType rt_ : core::allRuntimeTypes()) {
        auto s = driver::run(smallExperiment(rt_));
        EXPECT_TRUE(s.completed) << core::traitsOf(rt_).name;
        EXPECT_EQ(s.numTasks, 120u);
        EXPECT_GT(s.timeMs, 0.0);
    }
}

TEST(Experiment, RunsAllSchedulers)
{
    for (const std::string &sched : rt::allSchedulerNames()) {
        auto s = driver::run(
            smallExperiment(core::RuntimeType::Tdm, sched));
        EXPECT_TRUE(s.completed) << sched;
    }
}

TEST(Experiment, SpeedupHelpers)
{
    auto base = driver::run(smallExperiment(core::RuntimeType::Software));
    auto test = driver::run(smallExperiment(core::RuntimeType::Tdm));
    double sp = driver::speedup(base, test);
    EXPECT_GT(sp, 0.5);
    EXPECT_LT(sp, 5.0);
    double edp = driver::normalizedEdp(base, test);
    EXPECT_GT(edp, 0.0);
}

TEST(Experiment, TdmImpliesTdmOptimalGranularity)
{
    driver::Experiment e;
    e.workload = "qr";
    e.runtime = core::RuntimeType::Tdm;
    e.config.numCores = 8;
    e.params.granularity = 128; // N=8 -> small graph; explicit wins
    auto s = driver::run(e);
    EXPECT_TRUE(s.completed);
    EXPECT_EQ(s.numTasks, 204u); // 8 + 2*28 + 140
}

TEST(Sweep, RunsLabeledPoints)
{
    auto results = driver::runSweep(
        smallExperiment(core::RuntimeType::Software), {"a", "b"},
        [](std::size_t i, driver::Experiment &e) {
            e.config.dmu.accessCycles = i == 0 ? 1 : 4;
        });
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].label, "a");
    EXPECT_TRUE(results[1].summary.completed);
}

TEST(Sweep, RunsGridPoints)
{
    // The declarative form of the mutator sweep above: the axis is a
    // spec key, the points come straight out of the grid.
    auto points = driver::spec::Grid()
                      .set("workload", "cholesky")
                      .set("workload.granularity", "262144")
                      .set("machine.cores", "8")
                      .axis("dmu.access_cycles", {"1", "4"})
                      .label("dmu{dmu.access_cycles}")
                      .points();
    auto results = driver::runSweep(points);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].label, "dmu1");
    EXPECT_EQ(results[1].label, "dmu4");
    EXPECT_TRUE(results[0].summary.completed);
    EXPECT_TRUE(results[1].summary.completed);
    // A faster DMU can't be slower.
    EXPECT_LE(results[0].summary.makespan, results[1].summary.makespan);
}

TEST(Report, Geomean)
{
    EXPECT_DOUBLE_EQ(driver::report::geomean({1.0, 4.0}), 2.0);
    EXPECT_DOUBLE_EQ(driver::report::geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(driver::report::geomean({2.0, 0.0, 8.0}), 4.0);
}

TEST(Report, MeanAndPercent)
{
    EXPECT_DOUBLE_EQ(driver::report::mean({1.0, 3.0}), 2.0);
    EXPECT_EQ(driver::report::percent(0.123), "12.3%");
    EXPECT_EQ(driver::report::percent(-0.204), "-20.4%");
}
