/**
 * @file
 * Unit tests for the software dependence tracker.
 */

#include <gtest/gtest.h>

#include "runtime/software_tracker.hh"
#include "runtime/task_graph.hh"

using namespace tdm;

namespace {

rt::TaskGraph
chainGraph()
{
    rt::TaskGraph g("chain");
    rt::RegionId r = g.addRegion(1024);
    g.beginParallel();
    for (int i = 0; i < 4; ++i) {
        g.createTask(1000);
        g.dep(r, rt::DepDir::InOut);
    }
    return g;
}

} // namespace

TEST(Tracker, ChainReadiness)
{
    rt::TaskGraph g = chainGraph();
    rt::SoftwareTracker t(g);
    EXPECT_TRUE(t.create(0).readyNow);
    EXPECT_FALSE(t.create(1).readyNow);
    EXPECT_FALSE(t.create(2).readyNow);

    auto f0 = t.finish(0);
    ASSERT_EQ(f0.newlyReady.size(), 1u);
    EXPECT_EQ(f0.newlyReady[0], 1u);
    auto f1 = t.finish(1);
    ASSERT_EQ(f1.newlyReady.size(), 1u);
    EXPECT_EQ(f1.newlyReady[0], 2u);
}

TEST(Tracker, CountsWorkObservables)
{
    rt::TaskGraph g("w");
    rt::RegionId a = g.addRegion(64), b = g.addRegion(64);
    g.beginParallel();
    g.createTask(1);
    g.dep(a, rt::DepDir::In);
    g.dep(b, rt::DepDir::In);
    g.createTask(1);
    g.dep(a, rt::DepDir::Out);

    rt::SoftwareTracker t(g);
    auto w0 = t.create(0);
    EXPECT_EQ(w0.depLookups, 2u);
    EXPECT_EQ(w0.edgeInserts, 0u);
    auto w1 = t.create(1);
    EXPECT_EQ(w1.depLookups, 1u);
    EXPECT_EQ(w1.readerScans, 1u); // scanned task 0 as reader
    EXPECT_EQ(w1.edgeInserts, 1u); // WAR edge
}

TEST(Tracker, FragmentedDepsCounted)
{
    rt::TaskGraph g("f");
    rt::RegionId a = g.addRegion(64);
    g.beginParallel();
    g.createTask(1);
    g.dep(a, rt::DepDir::In, /*fragmented=*/true);
    rt::SoftwareTracker t(g);
    EXPECT_EQ(t.create(0).fragmentSplits, 1u);
}

TEST(Tracker, SuccCountMatchesEdges)
{
    rt::TaskGraph g("s");
    rt::RegionId a = g.addRegion(64);
    g.beginParallel();
    g.createTask(1);
    g.dep(a, rt::DepDir::Out);
    for (int i = 0; i < 3; ++i) {
        g.createTask(1);
        g.dep(a, rt::DepDir::In);
    }
    rt::SoftwareTracker t(g);
    for (rt::TaskId i = 0; i < 4; ++i)
        t.create(i);
    EXPECT_EQ(t.succCount(0), 3u);
    EXPECT_EQ(t.predCount(3), 1u);
}

TEST(Tracker, ResetRegionForgetsState)
{
    rt::TaskGraph g("r");
    rt::RegionId a = g.addRegion(64);
    g.beginParallel();
    g.createTask(1);
    g.dep(a, rt::DepDir::Out);
    g.beginParallel();
    g.createTask(1);
    g.dep(a, rt::DepDir::In);

    rt::SoftwareTracker t(g);
    t.create(0);
    t.finish(0);
    t.resetRegion();
    // After the barrier, the reader of `a` must be ready immediately.
    EXPECT_TRUE(t.create(1).readyNow);
}

TEST(Tracker, InFlightAccounting)
{
    rt::TaskGraph g = chainGraph();
    rt::SoftwareTracker t(g);
    t.create(0);
    t.create(1);
    EXPECT_EQ(t.inFlight(), 2u);
    t.finish(0);
    EXPECT_EQ(t.inFlight(), 1u);
}

TEST(TrackerDeath, DoubleCreatePanics)
{
    rt::TaskGraph g = chainGraph();
    rt::SoftwareTracker t(g);
    t.create(0);
    EXPECT_DEATH(t.create(0), "double create");
}
