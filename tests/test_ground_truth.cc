/**
 * @file
 * Three-way ground-truth checks: the graph-level edge derivation
 * (TaskGraph::buildEdges), the software tracker, and the DMU must agree
 * on the dependence structure of every benchmark graph — same edge
 * sets, same predecessor counts (after deduplication), and the same
 * total order constraints.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dmu/dmu.hh"
#include "runtime/software_tracker.hh"
#include "workloads/registry.hh"

using namespace tdm;

namespace {

using EdgeSet = std::set<std::pair<rt::TaskId, rt::TaskId>>;

/** Edges from the analytic derivation, restricted to one region. */
EdgeSet
graphEdges(const rt::TaskGraph &g, std::uint32_t par_region)
{
    rt::TdgEdges e = g.buildEdges();
    EdgeSet out;
    const rt::ParallelRegion &pr = g.parallelRegions()[par_region];
    for (rt::TaskId t = pr.firstTask; t < pr.firstTask + pr.numTasks;
         ++t) {
        for (rt::TaskId s : e.successors[t])
            out.emplace(t, s);
    }
    return out;
}

/** Edges accumulated by registering every task with the tracker. */
EdgeSet
trackerEdges(const rt::TaskGraph &g, std::uint32_t par_region)
{
    rt::SoftwareTracker tr(g);
    EdgeSet out;
    const rt::ParallelRegion &pr = g.parallelRegions()[par_region];
    for (rt::TaskId t = pr.firstTask; t < pr.firstTask + pr.numTasks;
         ++t)
        tr.create(t);
    for (rt::TaskId t = pr.firstTask; t < pr.firstTask + pr.numTasks;
         ++t) {
        for (rt::TaskId s : tr.successors(t))
            out.emplace(t, s);
    }
    return out;
}

/** Pick a benchmark configuration small enough for the DMU tables. */
rt::TaskGraph
smallGraph(const std::string &name)
{
    wl::WorkloadParams p;
    if (name == "cholesky")
        p.granularity = 262144; // 120 tasks
    else if (name == "qr")
        p.granularity = 128; // 204 tasks
    else if (name == "lu")
        p.granularity = 262144; // 140 tasks
    else if (name == "histogram")
        p.granularity = 2 * 1024 * 1024; // 64 tasks
    else if (name == "blackscholes")
        p.granularity = 8; // 32 chains
    else if (name == "fluidanimate")
        p.granularity = 16;
    else if (name == "dedup")
        p.granularity = 40;
    else if (name == "ferret")
        p.granularity = 48;
    else if (name == "streamcluster")
        p.granularity = 1024;
    return wl::buildWorkload(name, p);
}

class GroundTruth : public ::testing::TestWithParam<const char *>
{};

} // namespace

TEST_P(GroundTruth, TrackerMatchesAnalyticEdges)
{
    rt::TaskGraph g = smallGraph(GetParam());
    for (std::uint32_t r = 0;
         r < std::min<std::size_t>(g.parallelRegions().size(), 3); ++r) {
        EXPECT_EQ(trackerEdges(g, r), graphEdges(g, r))
            << "region " << r;
    }
}

TEST_P(GroundTruth, DmuMatchesAnalyticEdges)
{
    rt::TaskGraph g = smallGraph(GetParam());
    const rt::ParallelRegion &pr = g.parallelRegions()[0];

    dmu::DmuConfig cfg;
    // Oversize the unit: this test creates the whole region before
    // finishing anything, so capacity must cover every task at once.
    cfg.tatEntries = 4096;
    cfg.datEntries = 4096;
    cfg.slaEntries = 8192;
    cfg.dlaEntries = 8192;
    cfg.rlaEntries = 8192;
    cfg.readyQueueEntries = 4096;
    dmu::Dmu d(cfg);
    for (rt::TaskId t = pr.firstTask; t < pr.firstTask + pr.numTasks;
         ++t) {
        const rt::Task &task = g.task(t);
        ASSERT_FALSE(d.createTask(task.descAddr).blocked);
        for (const rt::DepSpec &dep : task.deps) {
            const rt::DataRegion &region = g.region(dep.region);
            ASSERT_FALSE(d.addDependence(task.descAddr, region.baseAddr,
                                         region.bytes, dep.writes())
                             .blocked);
        }
        d.commitTask(task.descAddr);
    }
    // Compare predecessor counts (deduplicated) against the analytic
    // derivation: count distinct predecessors via the edge set.
    EdgeSet expect = graphEdges(g, 0);
    std::vector<std::set<rt::TaskId>> preds(g.numTasks());
    for (const auto &[from, to] : expect)
        preds[to].insert(from);

    // Execute in a topological order and verify each task only becomes
    // ready when all its analytic predecessors have finished.
    std::vector<bool> finished(g.numTasks(), false);
    unsigned done = 0;
    unsigned acc = 0;
    std::vector<std::uint64_t> batch;
    while (done < pr.numTasks) {
        batch.clear();
        while (auto info = d.getReadyTask(acc))
            batch.push_back(info->descAddr);
        ASSERT_FALSE(batch.empty()) << "DMU stalled with "
                                    << (pr.numTasks - done) << " left";
        for (std::uint64_t desc : batch) {
            rt::TaskId id = rt::invalidTask;
            for (const rt::Task &task : g.tasks())
                if (task.descAddr == desc)
                    id = task.id;
            ASSERT_NE(id, rt::invalidTask);
            for (rt::TaskId p : preds[id])
                EXPECT_TRUE(finished[p])
                    << "task " << id << " ready before pred " << p;
            d.finishTask(desc);
            finished[id] = true;
            ++done;
        }
    }
    EXPECT_EQ(d.tasksInFlight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, GroundTruth,
    ::testing::Values("blackscholes", "cholesky", "dedup", "ferret",
                      "fluidanimate", "histogram", "lu", "qr",
                      "streamcluster"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });
