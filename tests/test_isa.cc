/**
 * @file
 * Unit tests for the TDM ISA encoding.
 */

#include <gtest/gtest.h>

#include "core/isa.hh"

using namespace tdm;

TEST(Isa, EncodeDecodeRoundTrip)
{
    core::TdmInst inst;
    inst.opcode = core::TdmOpcode::AddDependence;
    inst.rTask = 3;
    inst.rAddr = 4;
    inst.rSize = 5;
    inst.isOutput = true;
    auto word = core::encode(inst);
    auto back = core::decode(word);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, inst);
}

TEST(Isa, RoundTripAllOpcodes)
{
    using core::TdmOpcode;
    for (auto op : {TdmOpcode::CreateTask, TdmOpcode::AddDependence,
                    TdmOpcode::CommitTask, TdmOpcode::FinishTask,
                    TdmOpcode::GetReadyTask}) {
        core::TdmInst inst;
        inst.opcode = op;
        if (op == TdmOpcode::GetReadyTask) {
            inst.rDest = 7;
            inst.rDest2 = 8;
        } else {
            inst.rTask = 9;
        }
        auto back = core::decode(core::encode(inst));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->opcode, op);
    }
}

TEST(Isa, RejectsForeignWords)
{
    EXPECT_FALSE(core::decode(0x00000000).has_value());
    EXPECT_FALSE(core::decode(0xFFFFFFFF).has_value());
    // Right major opcode, invalid minor opcode.
    EXPECT_FALSE(core::decode(core::tdmMajorOpcode << 24).has_value());
}

TEST(Isa, Disassembly)
{
    core::TdmInst inst;
    inst.opcode = core::TdmOpcode::AddDependence;
    inst.rTask = 3;
    inst.rAddr = 4;
    inst.rSize = 5;
    inst.isOutput = true;
    EXPECT_EQ(core::disassemble(inst), "add_dependence x3, x4, x5, out");

    core::TdmInst get;
    get.opcode = core::TdmOpcode::GetReadyTask;
    get.rDest = 1;
    get.rDest2 = 2;
    EXPECT_EQ(core::disassemble(get), "get_ready_task x1, x2");

    core::TdmInst fin;
    fin.opcode = core::TdmOpcode::FinishTask;
    fin.rTask = 6;
    EXPECT_EQ(core::disassemble(fin), "finish_task x6");
}

TEST(Isa, MnemonicsStable)
{
    EXPECT_STREQ(core::mnemonic(core::TdmOpcode::CreateTask),
                 "create_task");
    EXPECT_STREQ(core::mnemonic(core::TdmOpcode::CommitTask),
                 "commit_task");
}
