/**
 * @file
 * Machine edge cases: minimal graphs, empty regions, tiny machines,
 * sequential-only programs, and configuration corner cases.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "workloads/registry.hh"

using namespace tdm;

namespace {

cpu::MachineConfig
tiny()
{
    cpu::MachineConfig cfg;
    cfg.numCores = 2;
    cfg.mesh.width = 2;
    cfg.mesh.height = 2;
    return cfg;
}

} // namespace

TEST(MachineEdge, SingleTaskGraph)
{
    for (auto rt_ : core::allRuntimeTypes()) {
        rt::TaskGraph g("one");
        rt::RegionId r = g.addRegion(1024);
        g.beginParallel();
        g.createTask(sim::usToTicks(100));
        g.dep(r, rt::DepDir::Out);
        core::Machine m(tiny(), g, rt_);
        auto res = m.run();
        EXPECT_TRUE(res.completed) << core::traitsOf(rt_).name;
        EXPECT_EQ(res.tasksExecuted, 1u);
        EXPECT_GE(res.makespan, sim::usToTicks(100));
    }
}

TEST(MachineEdge, TaskWithNoDeps)
{
    rt::TaskGraph g("nodeps");
    g.beginParallel();
    g.createTask(sim::usToTicks(50));
    g.createTask(sim::usToTicks(50));
    core::Machine m(tiny(), g, core::RuntimeType::Tdm);
    auto res = m.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.tasksExecuted, 2u);
}

TEST(MachineEdge, EmptyParallelRegionBetweenWork)
{
    rt::TaskGraph g("gap");
    rt::RegionId r = g.addRegion(1024);
    g.beginParallel();
    g.createTask(sim::usToTicks(50));
    g.dep(r, rt::DepDir::Out);
    g.beginParallel(sim::usToTicks(500)); // sequential-only section
    g.beginParallel();
    g.createTask(sim::usToTicks(50));
    g.dep(r, rt::DepDir::In);
    core::Machine m(tiny(), g, core::RuntimeType::Software);
    auto res = m.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.tasksExecuted, 2u);
    // The sequential section appears as master EXEC time.
    EXPECT_GE(res.master.exec, sim::usToTicks(500));
}

TEST(MachineEdge, PrologueCountsAsMasterExec)
{
    rt::TaskGraph g("pro");
    g.beginParallel(sim::usToTicks(300));
    g.createTask(sim::usToTicks(10));
    core::Machine m(tiny(), g, core::RuntimeType::Tdm);
    auto res = m.run();
    ASSERT_TRUE(res.completed);
    EXPECT_GE(res.master.exec, sim::usToTicks(300));
}

TEST(MachineEdge, TwoCoreMachineRunsRealBenchmark)
{
    wl::WorkloadParams p;
    p.granularity = 262144;
    rt::TaskGraph g = wl::buildWorkload("cholesky", p);
    core::Machine m(tiny(), g, core::RuntimeType::Tdm);
    auto res = m.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.tasksExecuted, g.numTasks());
}

TEST(MachineEdge, ThrottleOfOneStillCompletes)
{
    cpu::MachineConfig cfg = tiny();
    cfg.throttleTasks = 1; // pathological: one task in flight at a time
    rt::TaskGraph g("chain");
    rt::RegionId r = g.addRegion(1024);
    g.beginParallel();
    for (int i = 0; i < 20; ++i) {
        g.createTask(sim::usToTicks(10));
        g.dep(r, rt::DepDir::InOut);
    }
    core::Machine m(cfg, g, core::RuntimeType::Tdm);
    auto res = m.run();
    EXPECT_TRUE(res.completed);
    EXPECT_EQ(res.tasksExecuted, 20u);
}

TEST(MachineEdge, ManyRegionsManyBarriers)
{
    rt::TaskGraph g("barriers");
    rt::RegionId r = g.addRegion(1024);
    for (int round = 0; round < 50; ++round) {
        g.beginParallel(sim::usToTicks(5));
        g.createTask(sim::usToTicks(20));
        g.dep(r, rt::DepDir::InOut);
    }
    for (auto rt_ : core::allRuntimeTypes()) {
        core::Machine m(tiny(), g, rt_);
        auto res = m.run();
        EXPECT_TRUE(res.completed) << core::traitsOf(rt_).name;
        EXPECT_EQ(res.tasksExecuted, 50u);
    }
}

TEST(MachineEdge, HigherDmuLatencySlowsButCompletes)
{
    wl::WorkloadParams p;
    p.granularity = 262144;
    rt::TaskGraph g1 = wl::buildWorkload("cholesky", p);
    rt::TaskGraph g2 = wl::buildWorkload("cholesky", p);
    cpu::MachineConfig fast = tiny();
    cpu::MachineConfig slow = tiny();
    slow.dmu.accessCycles = 64;
    core::Machine mf(fast, g1, core::RuntimeType::Tdm);
    core::Machine ms(slow, g2, core::RuntimeType::Tdm);
    auto rf = mf.run();
    auto rs = ms.run();
    ASSERT_TRUE(rf.completed && rs.completed);
    EXPECT_GE(rs.makespan, rf.makespan);
}

TEST(MachineEdge, SchedulerPolicyChangesNoHardware)
{
    // Same DMU accesses regardless of software policy on a fixed graph
    // shape would be too strong (drain order varies), but the DMU
    // access count must stay within a tight band: scheduling is
    // software-only.
    wl::WorkloadParams p;
    p.granularity = 262144;
    std::vector<std::uint64_t> accesses;
    for (const auto &s : rt::allSchedulerNames()) {
        rt::TaskGraph g = wl::buildWorkload("cholesky", p);
        cpu::MachineConfig cfg;
        cfg.numCores = 8;
        cfg.scheduler = s;
        core::Machine m(cfg, g, core::RuntimeType::Tdm);
        auto res = m.run();
        ASSERT_TRUE(res.completed);
        accesses.push_back(res.dmuAccesses);
    }
    auto [lo, hi] = std::minmax_element(accesses.begin(), accesses.end());
    EXPECT_LT(static_cast<double>(*hi) / static_cast<double>(*lo), 1.05);
}

TEST(MachineEdgeDeath, OneCoreMachineRejected)
{
    rt::TaskGraph g("x");
    g.beginParallel();
    g.createTask(100);
    cpu::MachineConfig cfg = tiny();
    cfg.numCores = 1;
    EXPECT_DEATH(core::Machine(cfg, g, core::RuntimeType::Software),
                 "at least 2 cores");
}
