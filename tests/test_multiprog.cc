/**
 * @file
 * Tests of the multiprogramming extension (Section III-D): TAT and DAT
 * entries are tagged with the OS process id, so two processes can use
 * the DMU concurrently — even with identical virtual addresses —
 * without interfering and without save/restore at context switches.
 */

#include <gtest/gtest.h>

#include "dmu/dmu.hh"

using namespace tdm;

namespace {

constexpr std::uint64_t desc(int i) { return 0xa000000000ULL + i * 0x140; }
constexpr std::uint64_t addr(int i) { return 0x300000000ULL + i * 4096; }

dmu::DmuConfig
smallConfig()
{
    dmu::DmuConfig c;
    c.tatEntries = 64;
    c.datEntries = 64;
    c.slaEntries = 64;
    c.dlaEntries = 64;
    c.rlaEntries = 64;
    c.readyQueueEntries = 64;
    return c;
}

} // namespace

TEST(Multiprog, SameAddressesDifferentPids)
{
    dmu::Dmu d(smallConfig());
    // Two processes create tasks with the *same* descriptor address.
    EXPECT_FALSE(d.createTask(desc(0), /*pid=*/1).blocked);
    EXPECT_FALSE(d.createTask(desc(0), /*pid=*/2).blocked);
    EXPECT_EQ(d.tasksInFlight(), 2u);

    // Same dependence address in both processes: independent regions.
    EXPECT_FALSE(d.addDependence(desc(0), addr(0), 4096, true, 1).blocked);
    EXPECT_FALSE(d.addDependence(desc(0), addr(0), 4096, true, 2).blocked);
    EXPECT_EQ(d.depsInFlight(), 2u);

    auto c1 = d.commitTask(desc(0), 1);
    auto c2 = d.commitTask(desc(0), 2);
    // No cross-process WAW edge: both tasks are immediately ready.
    EXPECT_EQ(c1.readyDescAddrs.size(), 1u);
    EXPECT_EQ(c2.readyDescAddrs.size(), 1u);

    d.finishTask(desc(0), 1);
    d.finishTask(desc(0), 2);
    EXPECT_EQ(d.tasksInFlight(), 0u);
    EXPECT_EQ(d.depsInFlight(), 0u);
}

TEST(Multiprog, DependencesIsolatedPerProcess)
{
    dmu::Dmu d(smallConfig());
    // Process 1: writer on addr(5).
    d.createTask(desc(1), 1);
    d.addDependence(desc(1), addr(5), 4096, true, 1);
    d.commitTask(desc(1), 1);
    // Process 2: reader on the same virtual address — must NOT order
    // after process 1's writer.
    d.createTask(desc(2), 2);
    d.addDependence(desc(2), addr(5), 4096, false, 2);
    auto c = d.commitTask(desc(2), 2);
    EXPECT_EQ(c.readyDescAddrs.size(), 1u);

    // Within process 1 the RAW edge still exists.
    d.createTask(desc(3), 1);
    d.addDependence(desc(3), addr(5), 4096, false, 1);
    auto c3 = d.commitTask(desc(3), 1);
    EXPECT_TRUE(c3.readyDescAddrs.empty());

    unsigned acc = 0;
    while (d.getReadyTask(acc))
        ;
    auto fin = d.finishTask(desc(1), 1);
    ASSERT_EQ(fin.readyDescAddrs.size(), 1u);
    EXPECT_EQ(fin.readyDescAddrs[0], desc(3));
}

TEST(Multiprog, InterleavedLifecycles)
{
    dmu::Dmu d(smallConfig());
    // Two processes interleave chains on one address each.
    for (int i = 0; i < 4; ++i) {
        d.createTask(desc(10 + i), 1);
        d.addDependence(desc(10 + i), addr(1), 4096, true, 1);
        d.commitTask(desc(10 + i), 1);
        d.createTask(desc(20 + i), 2);
        d.addDependence(desc(20 + i), addr(1), 4096, true, 2);
        d.commitTask(desc(20 + i), 2);
    }
    // Each process has an independent WAW chain: exactly one ready
    // task per process.
    EXPECT_EQ(d.readyCount(), 2u);
    // Drain both chains.
    for (int i = 0; i < 4; ++i) {
        d.finishTask(desc(10 + i), 1);
        d.finishTask(desc(20 + i), 2);
    }
    EXPECT_EQ(d.tasksInFlight(), 0u);
    EXPECT_EQ(d.depsInFlight(), 0u);
}

TEST(Multiprog, AliasTablePidMatch)
{
    dmu::AliasTable t("tat", 16, 4, true, 0);
    auto a = t.insert(0x1000, 64, 7);
    ASSERT_EQ(a.status, dmu::AliasInsertStatus::Ok);
    EXPECT_FALSE(t.lookup(0x1000, 64, 8).has_value());
    EXPECT_TRUE(t.lookup(0x1000, 64, 7).has_value());

    auto b = t.insert(0x1000, 64, 8); // same addr, other process
    ASSERT_EQ(b.status, dmu::AliasInsertStatus::Ok);
    EXPECT_NE(a.id, b.id);
    t.erase(0x1000, 64, 7);
    EXPECT_FALSE(t.lookup(0x1000, 64, 7).has_value());
    EXPECT_TRUE(t.lookup(0x1000, 64, 8).has_value());
}
