/**
 * @file
 * Unit tests for the TAT/DAT alias tables, including the dynamic
 * index-bit selection that Figure 11 evaluates.
 */

#include <gtest/gtest.h>

#include "dmu/alias_table.hh"

using namespace tdm;

TEST(AliasTable, InsertLookupErase)
{
    dmu::AliasTable t("tat", 64, 8, true, 0);
    auto r = t.insert(0x1000, 64);
    ASSERT_EQ(r.status, dmu::AliasInsertStatus::Ok);
    auto id = t.lookup(0x1000, 64);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(*id, r.id);
    t.erase(0x1000, 64);
    EXPECT_FALSE(t.lookup(0x1000, 64).has_value());
    EXPECT_EQ(t.liveEntries(), 0u);
}

TEST(AliasTable, IdsAreRecycled)
{
    // The free-id queue is a FIFO: once all ids have been handed out,
    // an erase makes exactly that id available again.
    dmu::AliasTable t("tat", 2, 2, true, 0);
    auto a = t.insert(0x100, 64);
    auto b = t.insert(0x5000, 64);
    ASSERT_EQ(a.status, dmu::AliasInsertStatus::Ok);
    ASSERT_EQ(b.status, dmu::AliasInsertStatus::Ok);
    t.erase(0x100, 64);
    auto c = t.insert(0x9000, 64);
    EXPECT_EQ(c.status, dmu::AliasInsertStatus::Ok);
    EXPECT_EQ(c.id, a.id);
}

TEST(AliasTable, SetConflictWhenWaysExhausted)
{
    // 8 entries, 2-way => 4 sets. With a 64-byte index granularity,
    // addresses 64*4 apart map to the same set.
    dmu::AliasTable t("dat", 8, 2, false, 6);
    std::uint64_t stride = 64 * 4;
    EXPECT_EQ(t.insert(0 * stride, 64).status,
              dmu::AliasInsertStatus::Ok);
    EXPECT_EQ(t.insert(1 * stride, 64).status,
              dmu::AliasInsertStatus::Ok);
    EXPECT_FALSE(t.canInsert(2 * stride, 64));
    EXPECT_EQ(t.insert(2 * stride, 64).status,
              dmu::AliasInsertStatus::SetConflict);
    EXPECT_EQ(t.conflicts(), 1u);
}

TEST(AliasTable, NoFreeIdWhenFull)
{
    dmu::AliasTable t("tat", 4, 4, false, 6);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(t.insert(0x40 * (i + 1), 64).status,
                  dmu::AliasInsertStatus::Ok);
    EXPECT_EQ(t.insert(0x4000, 64).status,
              dmu::AliasInsertStatus::NoFreeId);
}

TEST(AliasTable, StaticLowIndexBitsCollapseAlignedRegions)
{
    // 16 KB-aligned dependence addresses share their low 14 bits, so a
    // static index at bit 0 maps everything to one set (Section V-E).
    dmu::AliasTable bad("dat", 256, 8, false, 0);
    for (std::uint64_t i = 0; i < 16; ++i)
        ASSERT_NE(bad.insert(0x100000 + i * 16384, 16384).status,
                  dmu::AliasInsertStatus::NoFreeId);
    EXPECT_EQ(bad.occupiedSets(), 1u);
}

TEST(AliasTable, DynamicIndexSpreadsAlignedRegions)
{
    dmu::AliasTable good("dat", 256, 8, true, 0);
    for (std::uint64_t i = 0; i < 16; ++i)
        ASSERT_EQ(good.insert(0x100000 + i * 16384, 16384).status,
                  dmu::AliasInsertStatus::Ok);
    EXPECT_EQ(good.occupiedSets(), 16u);
}

TEST(AliasTable, DynamicIndexAvoidsConflictBlocking)
{
    // 64 contiguous 16 KB tiles in a 64-entry 8-way table: dynamic
    // indexing fills all 8 sets evenly; a bit-0 static index dies after
    // 8 inserts.
    dmu::AliasTable dynamic("dat", 64, 8, true, 0);
    dmu::AliasTable stat("dat", 64, 8, false, 0);
    unsigned dyn_ok = 0, stat_ok = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        std::uint64_t addr = 0x200000 + i * 16384;
        if (dynamic.insert(addr, 16384).status
            == dmu::AliasInsertStatus::Ok)
            ++dyn_ok;
        if (stat.insert(addr, 16384).status == dmu::AliasInsertStatus::Ok)
            ++stat_ok;
    }
    EXPECT_EQ(dyn_ok, 64u);
    EXPECT_EQ(stat_ok, 8u);
}

TEST(AliasTable, OccupancySamplesAveraged)
{
    dmu::AliasTable t("dat", 64, 8, true, 0);
    t.insert(0x1000, 4096);
    EXPECT_GT(t.avgOccupiedSets(), 0.0);
    EXPECT_LE(t.avgOccupiedSets(), 8.0);
}
