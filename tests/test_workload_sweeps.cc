/**
 * @file
 * Property tests over every benchmark's whole granularity sweep: the
 * generated graphs stay well-formed, total work is roughly preserved
 * across granularities, task counts move monotonically with
 * granularity, and dependence structure survives (no orphaned
 * regions, barriers consistent).
 */

#include <gtest/gtest.h>

#include "workloads/registry.hh"

using namespace tdm;

namespace {

class SweepProps : public ::testing::TestWithParam<const char *>
{};

} // namespace

TEST_P(SweepProps, GraphsWellFormedAcrossSweep)
{
    const wl::WorkloadInfo &w = wl::findWorkload(GetParam());
    std::vector<double> grans = w.granSweep;
    if (grans.empty())
        grans = {w.swOptimal};
    for (double g : grans) {
        wl::WorkloadParams p;
        p.granularity = g;
        rt::TaskGraph graph = w.build(p);
        ASSERT_GT(graph.numTasks(), 0u) << "gran " << g;
        for (const rt::Task &t : graph.tasks()) {
            EXPECT_GT(t.computeCycles, 0u);
            for (const rt::DepSpec &d : t.deps)
                ASSERT_LT(d.region, graph.regions().size());
        }
        // Parallel regions tile the task range exactly.
        std::uint32_t covered = 0;
        for (const rt::ParallelRegion &pr : graph.parallelRegions()) {
            EXPECT_EQ(pr.firstTask, covered);
            covered += pr.numTasks;
        }
        EXPECT_EQ(covered, graph.numTasks());
        // Acyclic by construction: all edges point forward.
        auto e = graph.buildEdges();
        for (rt::TaskId t = 0; t < graph.numTasks(); ++t)
            for (rt::TaskId s : e.successors[t])
                ASSERT_GT(s, t);
    }
}

TEST_P(SweepProps, WorkRoughlyConservedAcrossSweep)
{
    const wl::WorkloadInfo &w = wl::findWorkload(GetParam());
    if (w.granSweep.size() < 2)
        GTEST_SKIP() << "fixed-granularity benchmark";
    std::vector<double> work;
    for (double g : w.granSweep) {
        wl::WorkloadParams p;
        p.granularity = g;
        work.push_back(sim::ticksToUs(w.build(p).totalComputeCycles()));
    }
    double lo = *std::min_element(work.begin(), work.end());
    double hi = *std::max_element(work.begin(), work.end());
    EXPECT_LT(hi / lo, 1.5) << "total work should not depend strongly "
                               "on granularity";
}

TEST_P(SweepProps, FinerGranularityMeansMoreTasks)
{
    const wl::WorkloadInfo &w = wl::findWorkload(GetParam());
    if (w.granSweep.size() < 2)
        GTEST_SKIP();
    // granSweep is ordered finest -> coarsest for byte/points units and
    // coarsest -> finest for partitions; just check strict motion.
    std::vector<std::uint32_t> counts;
    for (double g : w.granSweep) {
        wl::WorkloadParams p;
        p.granularity = g;
        counts.push_back(w.build(p).numTasks());
    }
    bool increasing = true, decreasing = true;
    for (std::size_t i = 1; i < counts.size(); ++i) {
        increasing &= counts[i] >= counts[i - 1];
        decreasing &= counts[i] <= counts[i - 1];
    }
    EXPECT_TRUE(increasing || decreasing);
    EXPECT_NE(counts.front(), counts.back());
}

TEST_P(SweepProps, CriticalPathShrinksWithFinerTasks)
{
    const wl::WorkloadInfo &w = wl::findWorkload(GetParam());
    if (w.granSweep.size() < 2)
        GTEST_SKIP();
    wl::WorkloadParams fine, coarse;
    // Pick the sweep ends by task count.
    std::uint32_t n_front, n_back;
    {
        wl::WorkloadParams p;
        p.granularity = w.granSweep.front();
        n_front = w.build(p).numTasks();
        p.granularity = w.granSweep.back();
        n_back = w.build(p).numTasks();
    }
    fine.granularity =
        n_front > n_back ? w.granSweep.front() : w.granSweep.back();
    coarse.granularity =
        n_front > n_back ? w.granSweep.back() : w.granSweep.front();
    sim::Tick cp_fine = w.build(fine).criticalPathCycles();
    sim::Tick cp_coarse = w.build(coarse).criticalPathCycles();
    // Finer tasks never lengthen the dependence critical path by much;
    // for the matrix kernels they shorten it substantially.
    EXPECT_LE(static_cast<double>(cp_fine),
              1.10 * static_cast<double>(cp_coarse));
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SweepProps,
    ::testing::Values("blackscholes", "cholesky", "dedup", "ferret",
                      "fluidanimate", "histogram", "lu", "qr",
                      "streamcluster"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });
