/**
 * @file
 * Unit tests for the inode-style list arrays.
 */

#include <gtest/gtest.h>

#include "dmu/list_array.hh"

using namespace tdm;

TEST(ListArray, AllocAndPushWithinOneEntry)
{
    dmu::ListArray la("t", 16, 4);
    dmu::ListHead h = la.allocList();
    ASSERT_NE(h, dmu::invalidHwId);
    unsigned acc = 0;
    EXPECT_TRUE(la.push(h, 10, acc));
    EXPECT_TRUE(la.push(h, 11, acc));
    EXPECT_EQ(la.size(h), 2u);
    EXPECT_EQ(la.entriesInUse(), 1u);
}

TEST(ListArray, ChainsAcrossEntries)
{
    dmu::ListArray la("t", 16, 4);
    dmu::ListHead h = la.allocList();
    unsigned acc = 0;
    for (std::uint16_t i = 0; i < 10; ++i)
        ASSERT_TRUE(la.push(h, i, acc));
    EXPECT_EQ(la.size(h), 10u);
    EXPECT_EQ(la.entriesInUse(), 3u); // ceil(10/4)

    std::vector<std::uint16_t> seen;
    la.forEach(h, [&](std::uint16_t v) { seen.push_back(v); });
    for (std::uint16_t i = 0; i < 10; ++i)
        EXPECT_EQ(seen[i], i);
}

TEST(ListArray, TraversalCostGrowsWithChainLength)
{
    dmu::ListArray la("t", 64, 4);
    dmu::ListHead h = la.allocList();
    unsigned acc_first = 0;
    la.push(h, 0, acc_first);
    unsigned acc = 0;
    for (std::uint16_t i = 1; i < 12; ++i)
        la.push(h, i, acc);
    unsigned acc_last = 0;
    la.push(h, 99, acc_last);
    EXPECT_GT(acc_last, acc_first); // tail is 3 entries deep
}

TEST(ListArray, PushFailsWhenNoContinuationEntry)
{
    dmu::ListArray la("t", 1, 2);
    dmu::ListHead h = la.allocList();
    unsigned acc = 0;
    EXPECT_TRUE(la.push(h, 1, acc));
    EXPECT_TRUE(la.push(h, 2, acc));
    EXPECT_TRUE(la.pushNeedsEntry(h));
    EXPECT_FALSE(la.push(h, 3, acc)); // no free entries
    EXPECT_EQ(la.size(h), 2u);        // unchanged
}

TEST(ListArray, RemoveLeavesHole)
{
    dmu::ListArray la("t", 8, 4);
    dmu::ListHead h = la.allocList();
    unsigned acc = 0;
    la.push(h, 1, acc);
    la.push(h, 2, acc);
    la.push(h, 3, acc);
    la.remove(h, 2);
    EXPECT_EQ(la.size(h), 2u);
    std::vector<std::uint16_t> seen;
    la.forEach(h, [&](std::uint16_t v) { seen.push_back(v); });
    EXPECT_EQ(seen, (std::vector<std::uint16_t>{1, 3}));
    // The hole is reused by the next push into the same entry.
    la.push(h, 9, acc);
    EXPECT_EQ(la.size(h), 3u);
    EXPECT_EQ(la.entriesInUse(), 1u);
}

TEST(ListArray, ClearKeepsHeadFreesChain)
{
    dmu::ListArray la("t", 8, 2);
    dmu::ListHead h = la.allocList();
    unsigned acc = 0;
    for (std::uint16_t i = 0; i < 6; ++i)
        la.push(h, i, acc);
    EXPECT_EQ(la.entriesInUse(), 3u);
    la.clear(h);
    EXPECT_EQ(la.size(h), 0u);
    EXPECT_EQ(la.entriesInUse(), 1u);
    // Still usable after clear.
    la.push(h, 42, acc);
    EXPECT_EQ(la.size(h), 1u);
}

TEST(ListArray, FreeListRecyclesEntries)
{
    dmu::ListArray la("t", 4, 2);
    dmu::ListHead h1 = la.allocList();
    unsigned acc = 0;
    for (std::uint16_t i = 0; i < 8; ++i)
        la.push(h1, i, acc);
    EXPECT_EQ(la.entriesInUse(), 4u);
    EXPECT_EQ(la.allocList(), dmu::invalidHwId); // full
    la.freeList(h1);
    EXPECT_EQ(la.entriesInUse(), 0u);
    EXPECT_NE(la.allocList(), dmu::invalidHwId);
}

TEST(ListArray, PeakTracksHighWater)
{
    dmu::ListArray la("t", 8, 2);
    dmu::ListHead h = la.allocList();
    unsigned acc = 0;
    for (std::uint16_t i = 0; i < 6; ++i)
        la.push(h, i, acc);
    la.freeList(h);
    EXPECT_EQ(la.peakEntriesInUse(), 3u);
    EXPECT_EQ(la.entriesInUse(), 0u);
}
