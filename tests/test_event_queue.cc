/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

using namespace tdm;

TEST(EventQueue, StartsAtZero)
{
    sim::EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesFireInScheduleOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInUsesRelativeDelay)
{
    sim::EventQueue eq;
    sim::Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleIn(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    sim::EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.scheduleIn(10, chain);
    };
    eq.scheduleAt(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunHonorsLimit)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.scheduleAt(1000, [&] { ++fired; });
    eq.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepExecutesSingleEvent)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.scheduleAt(1, [&] { ++fired; });
    eq.scheduleAt(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    sim::EventQueue eq;
    eq.scheduleAt(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(50, [] {}), "past");
}
