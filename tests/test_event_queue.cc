/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hh"

using namespace tdm;

TEST(EventQueue, StartsAtZero)
{
    sim::EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(30, [&] { order.push_back(3); });
    eq.scheduleAt(10, [&] { order.push_back(1); });
    eq.scheduleAt(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, TiesFireInScheduleOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAt(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInUsesRelativeDelay)
{
    sim::EventQueue eq;
    sim::Tick seen = 0;
    eq.scheduleAt(100, [&] {
        eq.scheduleIn(50, [&] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    sim::EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            eq.scheduleIn(10, chain);
    };
    eq.scheduleAt(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunHonorsLimit)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.scheduleAt(1000, [&] { ++fired; });
    eq.run(100);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

// ---- run(limit) end-time semantics (regression tests) -----------------
//
// Documented behavior: events with when <= limit fire; if events remain
// pending the clock advances to exactly `limit`; if the queue drains the
// clock stays at the last executed event; the clock never moves
// backwards.

TEST(EventQueue, RunDrainBeforeLimitStopsAtLastEvent)
{
    sim::EventQueue eq;
    eq.scheduleAt(40, [] {});
    eq.scheduleAt(70, [] {});
    EXPECT_EQ(eq.run(10000), 70u);
    EXPECT_EQ(eq.now(), 70u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunStopAtLimitClampsClockExactly)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.scheduleAt(10, [&] { ++fired; });
    eq.scheduleAt(500, [&] { ++fired; });
    EXPECT_EQ(eq.run(123), 123u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    // The put-back event keeps its original order and still fires.
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, EventExactlyAtLimitFires)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.scheduleAt(100, [&] { ++fired; });
    eq.scheduleAt(101, [&] { ++fired; });
    EXPECT_EQ(eq.run(100), 100u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, RunNeverMovesClockBackwards)
{
    sim::EventQueue eq;
    eq.scheduleAt(100, [] {});
    eq.run();
    EXPECT_EQ(eq.now(), 100u);
    // A limit in the past executes nothing and leaves now() alone.
    EXPECT_EQ(eq.run(50), 100u);
    EXPECT_EQ(eq.now(), 100u);
    eq.scheduleAt(200, [] {});
    EXPECT_EQ(eq.run(50), 100u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunOnEmptyQueueKeepsClock)
{
    sim::EventQueue eq;
    EXPECT_EQ(eq.run(1000), 0u);
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueue, StepExecutesSingleEvent)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.scheduleAt(1, [&] { ++fired; });
    eq.scheduleAt(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(eq.executed(), 2u);
}

// ---- typed pooled events ----------------------------------------------

namespace {

struct Widget
{
    sim::EventQueue *eq = nullptr;
    std::vector<int> log;

    void poke(int v) { log.push_back(v); }

    void
    pokeTwice(int v)
    {
        log.push_back(v);
        eq->postIn<&Widget::poke>(5, this, v + 1);
    }
};

/** Externally owned event that re-arms itself a fixed number of times. */
struct RepeatEvent : sim::Event
{
    sim::EventQueue *eq;
    int remaining;
    int fired = 0;

    RepeatEvent(sim::EventQueue *q, int n) : eq(q), remaining(n) {}

    void
    fire() override
    {
        ++fired;
        if (--remaining > 0)
            eq->schedule(this, when() + 10);
    }
};

} // namespace

TEST(EventQueue, TypedMemberEventsFire)
{
    sim::EventQueue eq;
    Widget w{&eq, {}};
    eq.post<&Widget::poke>(20, &w, 2);
    eq.post<&Widget::poke>(10, &w, 1);
    eq.post<&Widget::pokeTwice>(30, &w, 3);
    eq.run();
    EXPECT_EQ(w.log, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 35u);
}

TEST(EventQueue, PooledEventsAreRecycled)
{
    sim::EventQueue eq;
    Widget w{&eq, {}};
    for (int round = 0; round < 100; ++round) {
        eq.post<&Widget::poke>(eq.now() + 1, &w, round);
        eq.run();
    }
    EXPECT_EQ(w.log.size(), 100u);
    // Steady state reuses freed blocks instead of touching the heap:
    // after the first allocation every identical post recycles it.
    EXPECT_GE(eq.poolRecycled(), 98u);
    EXPECT_LE(eq.poolFresh(), 2u);
}

namespace {

/** Pooled event that re-arms itself from inside fire(). */
struct PooledRepeat final : sim::Event
{
    sim::EventQueue *eq;
    int *fired;
    int remaining;

    PooledRepeat(sim::EventQueue *q, int *f, int n)
        : eq(q), fired(f), remaining(n)
    {}

    void
    fire() override
    {
        ++*fired;
        if (--remaining > 0)
            eq->schedule(this, when() + 7);
        // On the final firing the queue recycles this object.
    }
};

} // namespace

TEST(EventQueue, PooledEventMayRescheduleItselfFromFire)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.schedule(eq.make<PooledRepeat>(&eq, &fired, 4), 10);
    eq.run();
    EXPECT_EQ(fired, 4);
    EXPECT_EQ(eq.now(), 31u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ExternalEventsSurviveAndReschedule)
{
    sim::EventQueue eq;
    RepeatEvent ev(&eq, 5);
    eq.schedule(&ev, 100);
    eq.run();
    EXPECT_EQ(ev.fired, 5);
    EXPECT_EQ(eq.now(), 140u);
    EXPECT_FALSE(ev.scheduled());
    // Still usable after the queue is done with it.
    eq.schedule(&ev, 200);
    eq.run();
    EXPECT_EQ(ev.fired, 6);
}

// ---- calendar-queue internals: far-future and migration ---------------

TEST(EventQueue, FarFutureEventsFireInOrder)
{
    // Spread events across all three calendar levels: the near ring
    // (< 32768), the coarse wheel (< ~2.13M past the horizon), and the
    // far overflow heap beyond that.
    sim::EventQueue eq;
    std::vector<sim::Tick> order;
    for (sim::Tick t : {sim::Tick{5}, sim::Tick{1000000}, sim::Tick{70000},
                        sim::Tick{9000000}, sim::Tick{33000}, sim::Tick{64},
                        sim::Tick{999999}, sim::Tick{3000000}})
        eq.scheduleAt(t, [&order, t] { order.push_back(t); });
    EXPECT_EQ(eq.pending(), 8u);
    eq.run();
    EXPECT_EQ(order, (std::vector<sim::Tick>{5, 64, 33000, 70000, 999999,
                                             1000000, 3000000, 9000000}));
}

TEST(EventQueue, OverflowHeapTierKeepsScheduleOrder)
{
    // Two events at the same far tick, scheduled from opposite tiers:
    // the first enters the overflow heap (> ~2.13M ahead), the second
    // is scheduled later (higher seq) once the same tick is near. The
    // heap event must still fire first after migrating down through
    // the coarse wheel and ring.
    sim::EventQueue eq;
    std::vector<int> order;
    constexpr sim::Tick far = 5000000;
    eq.scheduleAt(far, [&] { order.push_back(1) ; }); // heap tier
    eq.scheduleAt(far - 10, [&] {
        eq.scheduleAt(far, [&] { order.push_back(2); }); // ring tier
    });
    // A lone intermediate event forces a long horizon jump over mostly
    // empty coarse bands on the way.
    eq.scheduleAt(2500000, [&] { order.push_back(0); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.now(), far);
}

TEST(EventQueue, DistantLoneEventDoesNotStallTheClockAdvance)
{
    // A single event scheduled eons ahead must be reached by jumping
    // the calendar, not by sweeping every band in between.
    sim::EventQueue eq;
    bool fired = false;
    constexpr sim::Tick eon = sim::Tick{1} << 45; // ~3.5e13
    eq.scheduleAt(eon, [&] { fired = true; });
    EXPECT_EQ(eq.run(), eon);
    EXPECT_TRUE(fired);
    // And a finite-limit clamp below a pending far event as well.
    eq.scheduleAt(eon * 2, [] {});
    EXPECT_EQ(eq.run(eon * 2 - 1000), eon * 2 - 1000);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, MigratedOverflowEventKeepsScheduleOrder)
{
    // A far-future event scheduled first must fire before a same-tick
    // event scheduled later (lower sequence number wins), even though
    // one migrates out of the overflow heap and the other is inserted
    // into the ring directly.
    sim::EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(100000, [&] { order.push_back(1); }); // overflow
    eq.scheduleAt(99000, [&] {
        // By now the window covers 100000: this sibling goes straight
        // into the ring next to the migrated event.
        eq.scheduleAt(100000, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, LazyHeapEventTiesSettleAgainstCoarseEvents)
{
    // A far-heap event stays heaped even once the coarse span covers
    // its tick (lazy migration). When the ring drains it must merge
    // with the first coarse band, so a same-tick coarse event
    // scheduled later (higher seq) still fires after it.
    sim::EventQueue eq;
    std::vector<int> order;
    constexpr sim::Tick far = 2200000; // beyond the initial coarse span
    eq.scheduleAt(far, [&] { order.push_back(1); }); // heap tier
    eq.scheduleAt(100000, [&] {
        order.push_back(0);
        // The horizon has advanced: `far` is now inside the coarse
        // span, so these land in the wheel while their sibling above
        // is still heaped.
        eq.scheduleAt(far, [&] { order.push_back(2); });
        eq.scheduleAt(far + 50, [&] { order.push_back(3); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.now(), far + 50);
}

TEST(EventQueue, LazyHeapEventBeforeFirstCoarseBandPopsDirectly)
{
    // Ring empty, coarse wheel occupied, and the heap top strictly
    // earlier than every coarse event: extraction must surface the
    // heap event directly instead of migrating the later band first.
    sim::EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(2200000, [&] { order.push_back(1); }); // heap tier
    eq.scheduleAt(100000, [&] {
        order.push_back(0);
        // A coarse event in a band *after* the heaped event's tick.
        eq.scheduleAt(2210000, [&] { order.push_back(2); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.now(), sim::Tick{2210000});
}

TEST(EventQueue, SmallTierSpillBoundaryKeepsTickSeqOrder)
{
    // Hybrid kernel: below 32 pending events the queue runs a flat
    // binary heap; the 33rd concurrent event spills into the
    // calendar. Crossing the boundary (either direction) must not
    // reorder anything — same (tick, seq) discipline on both sides.
    // Ties straddle the spill point on purpose.
    sim::EventQueue eq;
    struct Fired { sim::Tick when; int idx; };
    std::vector<Fired> fired;
    int idx = 0;
    auto at = [&](sim::Tick t) {
        int my = idx++;
        eq.scheduleAt(t, [&fired, t, my] { fired.push_back({t, my}); });
    };

    // 100 pending events (spilled well past the small tier), with
    // deliberate ties: two events per tick, later ones at earlier
    // ticks so the spill insert is never append-only.
    for (int i = 0; i < 50; ++i) {
        at(1000 - 10 * static_cast<sim::Tick>(i));
        at(1000 - 10 * static_cast<sim::Tick>(i));
    }
    EXPECT_EQ(eq.pending(), 100u);

    // Drain completely (the queue re-enters small mode), then refill
    // across the spill boundary a second time.
    eq.run();
    EXPECT_EQ(eq.pending(), 0u);
    for (int i = 0; i < 80; ++i)
        at(2000 + (i % 7));
    eq.run();

    ASSERT_EQ(fired.size(), 180u);
    for (std::size_t i = 1; i < fired.size(); ++i) {
        ASSERT_GE(fired[i].when, fired[i - 1].when);
        if (fired[i].when == fired[i - 1].when) {
            ASSERT_GT(fired[i].idx, fired[i - 1].idx);
        }
    }
}

TEST(EventQueue, RandomScheduleFiresInTickSeqOrder)
{
    sim::EventQueue eq;
    // Deterministic LCG spanning ring and overflow distances.
    std::uint64_t lcg = 12345;
    auto next = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
    };
    struct Fired { sim::Tick when; int idx; };
    std::vector<Fired> fired;
    int idx = 0;
    for (int i = 0; i < 2000; ++i) {
        // Span all three tiers: ring, coarse wheel, and overflow heap.
        sim::Tick t = next() % 6000000;
        int my = idx++;
        eq.scheduleAt(t, [&fired, t, my] { fired.push_back({t, my}); });
    }
    eq.run();
    ASSERT_EQ(fired.size(), 2000u);
    for (std::size_t i = 1; i < fired.size(); ++i) {
        ASSERT_GE(fired[i].when, fired[i - 1].when);
        if (fired[i].when == fired[i - 1].when) {
            ASSERT_GT(fired[i].idx, fired[i - 1].idx);
        }
    }
}

TEST(EventQueue, PendingEventsFreedOnDestruction)
{
    // Pool and external events left pending must not leak or crash.
    auto eq = std::make_unique<sim::EventQueue>();
    Widget w{eq.get(), {}};
    RepeatEvent ev(eq.get(), 3);
    eq->post<&Widget::poke>(10, &w, 1);   // near ring
    eq->scheduleAt(500000, [] {});        // coarse wheel
    eq->scheduleAt(10000000, [] {});      // overflow heap
    eq->schedule(&ev, 99);
    eq.reset();
    EXPECT_TRUE(w.log.empty()); // nothing fired
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    sim::EventQueue eq;
    eq.scheduleAt(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.scheduleAt(50, [] {}), "past");
}

TEST(EventQueueDeath, DoubleSchedulePanics)
{
    sim::EventQueue eq;
    RepeatEvent ev(&eq, 1);
    eq.schedule(&ev, 10);
    EXPECT_DEATH(eq.schedule(&ev, 20), "already pending");
    // Drain so ev is not pending at ~EventQueue: ev (declared after
    // eq) is destroyed first, and the drain must not touch a dead
    // stack object (UBSan-visible).
    eq.run();
    EXPECT_EQ(ev.fired, 1);
}
