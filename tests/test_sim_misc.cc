/**
 * @file
 * Unit tests for types helpers, Config, Rng and Table.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/table.hh"
#include "sim/types.hh"

using namespace tdm;

TEST(Types, TickConversions)
{
    EXPECT_EQ(sim::usToTicks(1.0), 2000u);    // 2 GHz
    EXPECT_DOUBLE_EQ(sim::ticksToUs(2000), 1.0);
    EXPECT_DOUBLE_EQ(sim::ticksToSeconds(2000000000ULL), 1.0);
}

TEST(Types, BitsFor)
{
    EXPECT_EQ(sim::bitsFor(2048), 11u);
    EXPECT_EQ(sim::bitsFor(1024), 10u);
    EXPECT_EQ(sim::bitsFor(2), 1u);
    EXPECT_EQ(sim::bitsFor(1), 1u);
    EXPECT_EQ(sim::bitsFor(3), 2u);
}

TEST(Types, PowerOfTwoHelpers)
{
    EXPECT_TRUE(sim::isPowerOf2(64));
    EXPECT_FALSE(sim::isPowerOf2(65));
    EXPECT_FALSE(sim::isPowerOf2(0));
    EXPECT_EQ(sim::floorLog2(16384), 14u);
    EXPECT_EQ(sim::floorLog2(1), 0u);
    EXPECT_EQ(sim::divCeil(10, 8), 2);
    EXPECT_EQ(sim::divCeil(16, 8), 2);
}

TEST(Config, TypedRoundTrip)
{
    sim::Config c;
    c.set("a", std::int64_t{-5});
    c.set("b", std::uint64_t{7});
    c.set("c", 2.5);
    c.set("d", true);
    c.set("e", std::string("hello"));
    EXPECT_EQ(c.getInt("a"), -5);
    EXPECT_EQ(c.getUint("b"), 7u);
    EXPECT_DOUBLE_EQ(c.getDouble("c"), 2.5);
    EXPECT_TRUE(c.getBool("d"));
    EXPECT_EQ(c.getString("e"), "hello");
    EXPECT_EQ(c.getInt("missing", 9), 9);
    EXPECT_TRUE(c.contains("a"));
    EXPECT_FALSE(c.contains("zz"));
}

TEST(Config, MergeOverrides)
{
    sim::Config a, b;
    a.set("x", std::int64_t{1});
    a.set("y", std::int64_t{2});
    b.set("y", std::int64_t{3});
    a.merge(b);
    EXPECT_EQ(a.getInt("x"), 1);
    EXPECT_EQ(a.getInt("y"), 3);
}

TEST(Rng, DeterministicAcrossInstances)
{
    sim::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange)
{
    sim::Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, NoiseFactorCentersAroundOne)
{
    sim::Rng r(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.noiseFactor(0.1);
    EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, HashUnitStable)
{
    EXPECT_DOUBLE_EQ(sim::hashUnit(123), sim::hashUnit(123));
    EXPECT_NE(sim::hashUnit(123), sim::hashUnit(124));
}

TEST(Table, RendersAlignedColumns)
{
    sim::Table t("demo");
    t.header({"name", "value"});
    t.row().cell("alpha").cell(std::uint64_t{42});
    t.row().cell("b").cell(3.14159, 2);
    std::ostringstream oss;
    t.print(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}
