/**
 * @file
 * Unit tests for types helpers, Config, Rng and Table.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/config.hh"
#include "sim/rng.hh"
#include "sim/table.hh"
#include "sim/types.hh"

using namespace tdm;

TEST(Types, TickConversions)
{
    EXPECT_EQ(sim::usToTicks(1.0), 2000u);    // 2 GHz
    EXPECT_DOUBLE_EQ(sim::ticksToUs(2000), 1.0);
    EXPECT_DOUBLE_EQ(sim::ticksToSeconds(2000000000ULL), 1.0);
}

TEST(Types, BitsFor)
{
    EXPECT_EQ(sim::bitsFor(2048), 11u);
    EXPECT_EQ(sim::bitsFor(1024), 10u);
    EXPECT_EQ(sim::bitsFor(2), 1u);
    EXPECT_EQ(sim::bitsFor(1), 1u);
    EXPECT_EQ(sim::bitsFor(3), 2u);
}

TEST(Types, PowerOfTwoHelpers)
{
    EXPECT_TRUE(sim::isPowerOf2(64));
    EXPECT_FALSE(sim::isPowerOf2(65));
    EXPECT_FALSE(sim::isPowerOf2(0));
    EXPECT_EQ(sim::floorLog2(16384), 14u);
    EXPECT_EQ(sim::floorLog2(1), 0u);
    EXPECT_EQ(sim::divCeil(10, 8), 2);
    EXPECT_EQ(sim::divCeil(16, 8), 2);
}

TEST(Config, TypedRoundTrip)
{
    sim::Config c;
    c.set("a", std::int64_t{-5});
    c.set("b", std::uint64_t{7});
    c.set("c", 2.5);
    c.set("d", true);
    c.set("e", std::string("hello"));
    EXPECT_EQ(c.getInt("a"), -5);
    EXPECT_EQ(c.getUint("b"), 7u);
    EXPECT_DOUBLE_EQ(c.getDouble("c"), 2.5);
    EXPECT_TRUE(c.getBool("d"));
    EXPECT_EQ(c.getString("e"), "hello");
    EXPECT_EQ(c.getInt("missing", 9), 9);
    EXPECT_TRUE(c.contains("a"));
    EXPECT_FALSE(c.contains("zz"));
}

TEST(Config, MalformedValuesAreHardErrors)
{
    sim::Config c;
    c.set("i", std::string("12abc"));
    c.set("neg", std::string("-3"));
    c.set("d", std::string("0.1.2"));
    c.set("b", std::string("maybe"));
    c.set("huge", std::string("99999999999999999999999999"));
    c.set("empty", std::string(""));
    // These used to parse as a silent 0/garbage via strtoll.
    EXPECT_THROW(c.getInt("i"), std::invalid_argument);
    EXPECT_THROW(c.getUint("i"), std::invalid_argument);
    EXPECT_THROW(c.getUint("neg"), std::invalid_argument);
    EXPECT_THROW(c.getDouble("d"), std::invalid_argument);
    EXPECT_THROW(c.getBool("b"), std::invalid_argument);
    EXPECT_THROW(c.getInt("huge"), std::invalid_argument);
    EXPECT_THROW(c.getInt("empty"), std::invalid_argument);
    // Missing keys still fall back to the default.
    EXPECT_EQ(c.getInt("missing", 7), 7);
}

TEST(Config, StrictParsersAcceptTheFullValue)
{
    std::int64_t i = 0;
    std::uint64_t u = 0;
    double d = 0.0;
    bool b = false;
    EXPECT_TRUE(sim::Config::tryParseInt("-42", i));
    EXPECT_EQ(i, -42);
    EXPECT_TRUE(sim::Config::tryParseInt("0x10", i)); // hex still works
    EXPECT_EQ(i, 16);
    EXPECT_FALSE(sim::Config::tryParseInt("4 2", i));
    EXPECT_TRUE(sim::Config::tryParseUint("4398046511104", u));
    EXPECT_EQ(u, 4398046511104ull);
    EXPECT_FALSE(sim::Config::tryParseUint("-1", u));
    EXPECT_TRUE(sim::Config::tryParseDouble("2.5e-3", d));
    EXPECT_DOUBLE_EQ(d, 2.5e-3);
    EXPECT_FALSE(sim::Config::tryParseDouble("2.5x", d));
    EXPECT_TRUE(sim::Config::tryParseBool("0", b));
    EXPECT_FALSE(b);
    EXPECT_FALSE(sim::Config::tryParseBool("yes", b));
}

TEST(Config, MergeOverrides)
{
    sim::Config a, b;
    a.set("x", std::int64_t{1});
    a.set("y", std::int64_t{2});
    b.set("y", std::int64_t{3});
    a.merge(b);
    EXPECT_EQ(a.getInt("x"), 1);
    EXPECT_EQ(a.getInt("y"), 3);
}

TEST(Rng, DeterministicAcrossInstances)
{
    sim::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange)
{
    sim::Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, NoiseFactorCentersAroundOne)
{
    sim::Rng r(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.noiseFactor(0.1);
    EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, HashUnitStable)
{
    EXPECT_DOUBLE_EQ(sim::hashUnit(123), sim::hashUnit(123));
    EXPECT_NE(sim::hashUnit(123), sim::hashUnit(124));
}

TEST(Table, RendersAlignedColumns)
{
    sim::Table t("demo");
    t.header({"name", "value"});
    t.row().cell("alpha").cell(std::uint64_t{42});
    t.row().cell("b").cell(3.14159, 2);
    std::ostringstream oss;
    t.print(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}
