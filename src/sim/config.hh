/**
 * @file
 * Flat string-keyed configuration store with typed accessors.
 *
 * Experiments describe their parameters as Config entries; bench binaries
 * print them alongside results so every table is self-describing.
 */

#ifndef TDM_SIM_CONFIG_HH
#define TDM_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace tdm::sim {

/** Ordered key→value configuration with typed getters. */
class Config
{
  public:
    Config() = default;

    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, std::uint64_t value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    bool contains(const std::string &key) const;

    /**
     * Typed getters. A missing key returns @p dflt; a present but
     * malformed value throws std::invalid_argument naming the key (it
     * used to parse as a silent 0/garbage via strtoll).
     */
    std::string getString(const std::string &key,
                          const std::string &dflt = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t dflt = 0) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t dflt = 0) const;
    double getDouble(const std::string &key, double dflt = 0.0) const;
    bool getBool(const std::string &key, bool dflt = false) const;

    /**
     * Strict scalar parsers behind the typed getters: the whole string
     * must form one in-range value (base 10 or 0x-prefixed hex for the
     * integer forms; "true"/"false"/"1"/"0" for bools). Return false
     * instead of throwing so callers can attach their own context.
     */
    static bool tryParseInt(const std::string &s, std::int64_t &out);
    static bool tryParseUint(const std::string &s, std::uint64_t &out);
    static bool tryParseDouble(const std::string &s, double &out);
    static bool tryParseBool(const std::string &s, bool &out);

    /** Merge @p other on top of this config (other wins). */
    void merge(const Config &other);

    /** Write "key = value" lines. */
    void dump(std::ostream &os) const;

    /**
     * Canonical single-line "k=v;k=v;..." form (keys sorted by the
     * underlying map). Equal configs serialize identically, which makes
     * this usable as a cache key.
     */
    std::string serialize() const;

    const std::map<std::string, std::string> &entries() const {
        return map_;
    }

  private:
    std::map<std::string, std::string> map_;
};

} // namespace tdm::sim

#endif // TDM_SIM_CONFIG_HH
