/**
 * @file
 * Flat string-keyed configuration store with typed accessors.
 *
 * Experiments describe their parameters as Config entries; bench binaries
 * print them alongside results so every table is self-describing.
 */

#ifndef TDM_SIM_CONFIG_HH
#define TDM_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace tdm::sim {

/** Ordered key→value configuration with typed getters. */
class Config
{
  public:
    Config() = default;

    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, std::uint64_t value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    bool contains(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &dflt = "") const;
    std::int64_t getInt(const std::string &key, std::int64_t dflt = 0) const;
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t dflt = 0) const;
    double getDouble(const std::string &key, double dflt = 0.0) const;
    bool getBool(const std::string &key, bool dflt = false) const;

    /** Merge @p other on top of this config (other wins). */
    void merge(const Config &other);

    /** Write "key = value" lines. */
    void dump(std::ostream &os) const;

    /**
     * Canonical single-line "k=v;k=v;..." form (keys sorted by the
     * underlying map). Equal configs serialize identically, which makes
     * this usable as a cache key.
     */
    std::string serialize() const;

    const std::map<std::string, std::string> &entries() const {
        return map_;
    }

  private:
    std::map<std::string, std::string> map_;
};

} // namespace tdm::sim

#endif // TDM_SIM_CONFIG_HH
