/**
 * @file
 * In-memory machine-state snapshots for warm-start forking.
 *
 * A Snapshot is an ordered list of capture actions recorded against
 * live component state. `capture(field)` copies the field's current
 * value into the snapshot (a slab copy in memory — there is no file
 * format) and, on `restore()`, assigns it back in place. Restoring in
 * place keeps every external pointer into the component — notably the
 * typed metric-registry pointers — valid across a restore.
 *
 * Components expose a `void snapshotState(sim::Snapshot &s)` hook that
 * records their restorable fields; the machine model composes the
 * hooks of every component into one snapshot at the warmup/ROI
 * boundary. State that cannot be captured by plain copy-assignment
 * (the event queue's pending-event image, registry shape checks) goes
 * through `captureCustom`, which takes an explicit restore action.
 *
 * A snapshot is restorable any number of times: each fork of a warm
 * group restores the same image before applying its own post-warmup
 * parameters.
 */

#ifndef TDM_SIM_SNAPSHOT_HH
#define TDM_SIM_SNAPSHOT_HH

#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace tdm::sim {

class Snapshot
{
  public:
    Snapshot() = default;
    Snapshot(const Snapshot &) = delete;
    Snapshot &operator=(const Snapshot &) = delete;
    Snapshot(Snapshot &&) = default;
    Snapshot &operator=(Snapshot &&) = default;

    /**
     * Record @p field: its current value is copied now, and assigned
     * back into the same object on every restore(). The referenced
     * object must outlive the snapshot.
     */
    template <typename T>
    void capture(T &field)
    {
        T saved = field;
        T *target = &field;
        actions_.push_back(
            [saved = std::move(saved), target] { *target = saved; });
    }

    /**
     * Record an arbitrary restore action for state that plain
     * copy-assignment cannot express. The action runs, in capture
     * order, on every restore() and must itself be repeatable.
     */
    void captureCustom(std::function<void()> restoreFn)
    {
        actions_.push_back(std::move(restoreFn));
    }

    /** Re-apply every captured value, in capture order. */
    void restore() const;

    bool empty() const { return actions_.empty(); }
    std::size_t size() const { return actions_.size(); }
    void clear() { actions_.clear(); }

  private:
    std::vector<std::function<void()>> actions_;
};

} // namespace tdm::sim

#endif // TDM_SIM_SNAPSHOT_HH
