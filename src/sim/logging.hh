/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - an internal simulator bug; aborts.
 * fatal()  - a user error (bad configuration, invalid argument); exits.
 * warn()   - questionable but survivable condition.
 * inform() - status message.
 *
 * All take printf-free, ostream-composable message pieces.
 */

#ifndef TDM_SIM_LOGGING_HH
#define TDM_SIM_LOGGING_HH

#include <sstream>
#include <string>

namespace tdm::sim {

/** Verbosity levels for the global logger. */
enum class LogLevel { Quiet, Warn, Info, Debug };

/** Get/set the global verbosity (default: Warn). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Parse "quiet"/"warn"/"info"/"debug" (the CLIs' --log-level values);
 *  false on anything else. */
bool parseLogLevel(const std::string &name, LogLevel &out);

namespace detail {

[[noreturn]] void panicImpl(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void fatalImpl(const std::string &msg, const char *file,
                            int line);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Report an internal simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concat(std::forward<Args>(args)...),
                      __builtin_FILE(), __builtin_LINE());
}

/** Report an unrecoverable user error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concat(std::forward<Args>(args)...),
                      __builtin_FILE(), __builtin_LINE());
}

/** Report a survivable but suspicious condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Verbose debugging output (enabled at LogLevel::Debug). */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace tdm::sim

#endif // TDM_SIM_LOGGING_HH
