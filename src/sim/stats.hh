/**
 * @file
 * Lightweight statistics package, loosely modelled on gem5's.
 *
 * Stats are named values registered with a StatGroup. A group can dump
 * all of its stats to a stream. Supported kinds: Scalar (counter /
 * accumulator), Average (mean of samples), Distribution (fixed-width
 * histogram plus moments), and Formula (lazily evaluated function of
 * other stats).
 */

#ifndef TDM_SIM_STATS_HH
#define TDM_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace tdm::sim {

class StatGroup;

/** A named scalar accumulator. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Mean of a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    void reset() { sum_ = 0.0; count_ = 0; }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Histogram over [min, max) with a fixed number of equal-width buckets,
 * tracking mean/stdev and underflow/overflow.
 */
class Distribution
{
  public:
    Distribution() : Distribution(0.0, 1.0, 8) {}

    Distribution(double lo, double hi, unsigned buckets);

    void init(double lo, double hi, unsigned buckets);
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double stdev() const;
    double minSample() const { return min_; }
    double maxSample() const { return max_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    void reset();

  private:
    double lo_ = 0.0, hi_ = 1.0, width_ = 1.0;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0, overflow_ = 0;
    double sum_ = 0.0, sumSq_ = 0.0;
    double min_ = 0.0, max_ = 0.0;
    std::uint64_t count_ = 0;
};

/** Lazily evaluated stat computed from other stats. */
class Formula
{
  public:
    Formula() = default;
    explicit Formula(std::function<double()> fn) : fn_(std::move(fn)) {}

    void define(std::function<double()> fn) { fn_ = std::move(fn); }
    double value() const { return fn_ ? fn_() : 0.0; }

  private:
    std::function<double()> fn_;
};

/**
 * A named collection of stats; owns nothing, registers pointers.
 *
 * Groups are the unit of dumping; nesting is expressed through dotted
 * names ("dmu.tat.hits").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    void addScalar(const std::string &n, const Scalar *s,
                   const std::string &desc = "");
    void addAverage(const std::string &n, const Average *a,
                    const std::string &desc = "");
    void addDistribution(const std::string &n, const Distribution *d,
                         const std::string &desc = "");
    void addFormula(const std::string &n, const Formula *f,
                    const std::string &desc = "");

    /**
     * Look up a stat's current value by name. An unknown name throws
     * std::out_of_range naming the closest registered stats (it used
     * to return a silent 0, which made typos read as idle hardware).
     */
    double lookup(const std::string &n) const;

    /** True if a stat with this name is registered. */
    bool contains(const std::string &n) const;

    /** Write "name value # desc" lines, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

  private:
    enum class Kind { ScalarK, AverageK, DistK, FormulaK };

    struct Item
    {
        Kind kind;
        const void *ptr;
        std::string desc;
    };

    std::string name_;
    std::map<std::string, Item> items_;
};

} // namespace tdm::sim

#endif // TDM_SIM_STATS_HH
