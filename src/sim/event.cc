#include "sim/event.hh"

namespace tdm::sim {

// Out-of-line virtual anchors the vtable in this translation unit.
const char *
Event::name() const
{
    return "event";
}

} // namespace tdm::sim
