#include "sim/suggest.hh"

#include <algorithm>
#include <utility>

namespace tdm::sim {

std::size_t
editDistance(const std::string &a, const std::string &b, std::size_t cap)
{
    if (a.size() > b.size() + cap || b.size() > a.size() + cap)
        return cap + 1;
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t prev = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t cur = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
            prev = cur;
        }
    }
    return row[b.size()];
}

std::vector<std::string>
closestMatches(const std::string &name,
               const std::vector<std::string> &candidates,
               std::size_t limit)
{
    constexpr std::size_t kCap = 3;
    std::vector<std::pair<std::size_t, std::string>> scored;
    for (const std::string &c : candidates) {
        std::size_t d = editDistance(name, c, kCap);
        const bool related =
            d <= kCap
            || (name.size() >= 3 && c.find(name) != std::string::npos)
            || c.rfind(name + ".", 0) == 0 || name.rfind(c, 0) == 0;
        if (related)
            scored.emplace_back(d, c);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<std::string> out;
    for (const auto &[d, c] : scored) {
        out.push_back(c);
        if (out.size() >= limit)
            break;
    }
    return out;
}

std::string
suggestHint(const std::string &name,
            const std::vector<std::string> &candidates)
{
    const std::vector<std::string> near = closestMatches(name, candidates);
    if (near.empty())
        return "";
    std::string out = "; did you mean: ";
    for (std::size_t i = 0; i < near.size(); ++i)
        out += (i ? ", " : "") + near[i];
    return out + "?";
}

} // namespace tdm::sim
