/**
 * @file
 * Debug-gated simulation invariant checks.
 *
 * SIM_ASSERT(cond, msg...) verifies an internal invariant at the hot
 * spots the flat-container rewrites made fragile (event-queue (tick,
 * seq) monotonicity, RegionCache slab/index consistency, DMU occupancy
 * accounting, FixedRing bounds). A violated invariant panics with the
 * stringified condition plus the caller-supplied context.
 *
 * The checks are compiled only when TDM_INVARIANTS is defined — which
 * the build system does for Debug builds and for every TDM_SANITIZE
 * preset — and compile to nothing in Release, so the micro-bench
 * perf gates never pay for them. Expressions passed as arguments are
 * not evaluated when the checks are off; do not give them side
 * effects.
 *
 * SIM_ASSERT is for *simulator bugs* (broken internal bookkeeping),
 * not user errors: misconfiguration should keep using sim::fatal, and
 * conditions that must hold even in Release (e.g. FixedRing overflow
 * turning into memory corruption) should keep their unconditional
 * panic.
 */

#ifndef TDM_SIM_ASSERT_HH
#define TDM_SIM_ASSERT_HH

#include "sim/logging.hh"

/** True in builds whose SIM_ASSERT checks are live (for tests). */
#ifdef TDM_INVARIANTS
#define SIM_INVARIANTS_ENABLED 1
#else
#define SIM_INVARIANTS_ENABLED 0
#endif

#if SIM_INVARIANTS_ENABLED

/**
 * Check an internal invariant; panic with context when it fails.
 * Usage: SIM_ASSERT(a <= b, "window base ", a, " past horizon ", b);
 */
#define SIM_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) [[unlikely]]                                       \
            ::tdm::sim::panic("invariant '", #cond,                     \
                              "' violated" __VA_OPT__(": ", __VA_ARGS__)); \
    } while (false)

#else

#define SIM_ASSERT(cond, ...) do { } while (false)

#endif

#endif // TDM_SIM_ASSERT_HH
