/**
 * @file
 * Fixed-capacity FIFO ring buffer.
 *
 * The hot-path replacement for the std::deque freelists and hardware
 * FIFOs in the DMU model: one contiguous buffer sized at construction,
 * never reallocated, so steady-state push/pop performs no heap
 * traffic. Order semantics are exactly std::deque's push_back /
 * pop_front, which the DMU's determinism depends on (free ids recycle
 * in FIFO order).
 */

#ifndef TDM_SIM_FIXED_RING_HH
#define TDM_SIM_FIXED_RING_HH

#include <cstddef>
#include <vector>

#include "sim/assert.hh"
#include "sim/logging.hh"

namespace tdm::sim {

/**
 * Bounded FIFO over a contiguous slab.
 */
template <typename T>
class FixedRing
{
  public:
    FixedRing() = default;

    explicit FixedRing(std::size_t capacity) { reset(capacity); }

    /** (Re)size to @p capacity and drop all elements. */
    void
    reset(std::size_t capacity)
    {
        buf_.assign(capacity, T{});
        head_ = 0;
        count_ = 0;
    }

    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == buf_.size(); }
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return buf_.size(); }

    /** Append at the tail; the ring is sized so this never overflows
     *  in correct use — overflow is a modelling bug, not a condition. */
    void
    push_back(const T &v)
    {
        if (full())
            panic("FixedRing overflow (capacity ", buf_.size(), ")");
        // head_ stays reduced modulo the capacity; a wild head turns
        // wrap() into an out-of-bounds index.
        SIM_ASSERT(head_ < buf_.size(), "head ", head_,
                   " outside capacity ", buf_.size());
        SIM_ASSERT(count_ < buf_.size(), "count ", count_,
                   " at or over capacity ", buf_.size());
        buf_[wrap(head_ + count_)] = v;
        ++count_;
    }

    const T &
    front() const
    {
        if (empty())
            panic("FixedRing::front on empty ring");
        return buf_[head_];
    }

    /** Remove and return the oldest element. */
    T
    pop_front()
    {
        if (empty())
            panic("FixedRing underflow");
        SIM_ASSERT(head_ < buf_.size() && count_ <= buf_.size(),
                   "head ", head_, " / count ", count_,
                   " inconsistent with capacity ", buf_.size());
        T v = buf_[head_];
        head_ = wrap(head_ + 1);
        --count_;
        return v;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        return i >= buf_.size() ? i - buf_.size() : i;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace tdm::sim

#endif // TDM_SIM_FIXED_RING_HH
