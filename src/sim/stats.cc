#include "sim/stats.hh"

#include <cmath>
#include <iomanip>
#include <stdexcept>

#include "sim/logging.hh"
#include "sim/suggest.hh"

namespace tdm::sim {

Distribution::Distribution(double lo, double hi, unsigned buckets)
{
    init(lo, hi, buckets);
}

void
Distribution::init(double lo, double hi, unsigned buckets)
{
    if (hi <= lo)
        panic("Distribution: hi <= lo (", hi, " <= ", lo, ")");
    if (buckets == 0)
        panic("Distribution: zero buckets");
    lo_ = lo;
    hi_ = hi;
    width_ = (hi - lo) / buckets;
    buckets_.assign(buckets, 0);
    reset();
}

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }
    sum_ += v;
    sumSq_ += v * v;
    ++count_;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }
}

double
Distribution::stdev() const
{
    if (count_ < 2)
        return 0.0;
    double n = static_cast<double>(count_);
    double var = (sumSq_ - sum_ * sum_ / n) / (n - 1);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = 0;
    sum_ = sumSq_ = 0.0;
    min_ = max_ = 0.0;
    count_ = 0;
}

void
StatGroup::addScalar(const std::string &n, const Scalar *s,
                     const std::string &desc)
{
    items_[n] = Item{Kind::ScalarK, s, desc};
}

void
StatGroup::addAverage(const std::string &n, const Average *a,
                      const std::string &desc)
{
    items_[n] = Item{Kind::AverageK, a, desc};
}

void
StatGroup::addDistribution(const std::string &n, const Distribution *d,
                           const std::string &desc)
{
    items_[n] = Item{Kind::DistK, d, desc};
}

void
StatGroup::addFormula(const std::string &n, const Formula *f,
                      const std::string &desc)
{
    items_[n] = Item{Kind::FormulaK, f, desc};
}

bool
StatGroup::contains(const std::string &n) const
{
    return items_.count(n) != 0;
}

double
StatGroup::lookup(const std::string &n) const
{
    auto it = items_.find(n);
    if (it == items_.end()) {
        std::vector<std::string> names;
        names.reserve(items_.size());
        for (const auto &[k, item] : items_)
            names.push_back(k);
        throw std::out_of_range("stat group '" + name_
                                + "': unknown stat '" + n + "'"
                                + suggestHint(n, names));
    }
    switch (it->second.kind) {
      case Kind::ScalarK:
        return static_cast<const Scalar *>(it->second.ptr)->value();
      case Kind::AverageK:
        return static_cast<const Average *>(it->second.ptr)->mean();
      case Kind::DistK:
        return static_cast<const Distribution *>(it->second.ptr)->mean();
      case Kind::FormulaK:
        return static_cast<const Formula *>(it->second.ptr)->value();
    }
    return 0.0;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[n, item] : items_) {
        os << name_ << '.' << n << ' ';
        switch (item.kind) {
          case Kind::ScalarK:
            os << static_cast<const Scalar *>(item.ptr)->value();
            break;
          case Kind::AverageK: {
            auto *a = static_cast<const Average *>(item.ptr);
            os << a->mean() << " (n=" << a->count() << ')';
            break;
          }
          case Kind::DistK: {
            auto *d = static_cast<const Distribution *>(item.ptr);
            os << "mean=" << d->mean() << " stdev=" << d->stdev()
               << " min=" << d->minSample() << " max=" << d->maxSample()
               << " (n=" << d->count() << ')';
            break;
          }
          case Kind::FormulaK:
            os << static_cast<const Formula *>(item.ptr)->value();
            break;
        }
        if (!item.desc.empty())
            os << " # " << item.desc;
        os << '\n';
    }
}

} // namespace tdm::sim
