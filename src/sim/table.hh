/**
 * @file
 * ASCII table writer used by bench binaries to print paper-style tables.
 */

#ifndef TDM_SIM_TABLE_HH
#define TDM_SIM_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace tdm::sim {

/**
 * Column-aligned text table. Add a header, then rows of cells; numeric
 * helpers format with fixed precision.
 */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Start a new row. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &s);

    /** Append a formatted numeric cell. */
    Table &cell(double v, int precision = 3);
    Table &cell(std::uint64_t v);
    Table &cell(std::int64_t v);
    Table &cell(int v);

    /** Render the table. */
    void print(std::ostream &os) const;

    /** Rendered rows (for tests). */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tdm::sim

#endif // TDM_SIM_TABLE_HH
