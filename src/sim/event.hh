/**
 * @file
 * Intrusive simulation events.
 *
 * An Event is a schedulable object with a virtual fire() hook and the
 * kernel bookkeeping (tick, sequence number, intrusive link) embedded
 * in the object itself, so scheduling never allocates on the side. Two
 * ownership models coexist:
 *
 *  - Pool events are allocated from the owning EventQueue's size-class
 *    freelists via EventQueue::make() / post() and are automatically
 *    destroyed and recycled after they fire. This is the hot path: a
 *    steady-state simulation reuses the same few blocks of memory for
 *    all of its events.
 *  - External events are ordinary objects owned by model code; the
 *    queue fires them but never frees them, so they can be members of
 *    a model class and rescheduled from inside fire().
 *
 * BoundEvent is the statically-typed replacement for the old
 * std::function lambdas: it binds a member-function pointer plus its
 * arguments at schedule time and invokes them directly on fire(), with
 * no type erasure and no per-event heap allocation.
 */

#ifndef TDM_SIM_EVENT_HH
#define TDM_SIM_EVENT_HH

#include <cstdint>
#include <tuple>
#include <type_traits>
#include <utility>

#include "sim/types.hh"

namespace tdm::sim {

class EventQueue;

/**
 * Base class of everything schedulable on an EventQueue.
 */
class Event
{
  public:
    Event() = default;
    Event &operator=(const Event &) = delete;
    virtual ~Event() = default;

    /** Invoked by the kernel when simulated time reaches when(). */
    virtual void fire() = 0;

    /** Debug name; override for more useful traces. */
    virtual const char *name() const;

    /**
     * Heap-allocated copy of this event for snapshot images, or
     * nullptr when the event is not clonable (type-erased payloads).
     * A non-clonable pending event makes the whole queue state
     * unsnapshottable and the caller falls back to a cold run.
     */
    virtual Event *clone() const { return nullptr; }

    /** Tick this event is (or was last) scheduled for. */
    Tick when() const { return when_; }

    /** Schedule sequence number; breaks same-tick ties. */
    std::uint64_t seq() const { return seq_; }

    /** True while the event sits in an event queue. */
    bool scheduled() const { return scheduled_; }

  protected:
    /**
     * Copy for clone(): carries the schedule keys (tick, sequence) so
     * a restored image replays in the original fire order, but resets
     * the intrusive link and marks the copy heap-owned — clones live
     * outside the size-class pools and are freed with plain delete.
     */
    Event(const Event &other)
        : when_(other.when_), seq_(other.seq_), poolClass_(heapClass)
    {}

  private:
    friend class EventQueue;

    /** Size-class marker of externally owned (non-pooled) events. */
    static constexpr std::uint16_t notPooled = 0xffff;
    /** Size-class marker of heap events too large for the pool. */
    static constexpr std::uint16_t heapClass = 0xfffe;
    /**
     * Flag bit on pooled size classes: the event needs no destructor
     * call before its memory is recycled (trivial payload).
     */
    static constexpr std::uint16_t trivialBit = 0x8000;

    Event *next_ = nullptr; ///< intrusive bucket / freelist link
    Tick when_ = 0;
    std::uint64_t seq_ = 0; ///< schedule order, breaks same-tick ties
    std::uint16_t poolClass_ = notPooled;
    bool scheduled_ = false;
};

/**
 * An event that calls `(owner->*MemFn)(args...)` when it fires.
 *
 * The argument pack is stored by value inside the event; member
 * functions that want to avoid a copy at fire time can take their
 * parameters by (non-const) reference and will be handed the stored
 * copies directly.
 */
template <auto MemFn, typename Owner, typename... Args>
class BoundEvent final : public Event
{
  public:
    explicit BoundEvent(Owner *owner, Args... args)
        : owner_(owner), args_(std::move(args)...)
    {}

    void
    fire() override
    {
        std::apply([this](Args &...a) { (owner_->*MemFn)(a...); }, args_);
    }

    const char *name() const override { return "bound"; }

    Event *
    clone() const override
    {
        if constexpr ((std::is_copy_constructible_v<Args> && ...))
            return new BoundEvent(*this);
        else
            return nullptr;
    }

    /**
     * True when recycling the event needs no destructor call — the
     * pool can skip the virtual-dtor dispatch on the hot path.
     */
    static constexpr bool trivialPayload =
        (std::is_trivially_destructible_v<Args> && ...);

  private:
    Owner *owner_;
    [[no_unique_address]] std::tuple<Args...> args_;
};

} // namespace tdm::sim

#endif // TDM_SIM_EVENT_HH
