/**
 * @file
 * Fundamental simulation types and unit helpers.
 *
 * The simulator counts time in processor cycles ("ticks") of the simulated
 * 2.0 GHz cores. Helpers convert between wall-clock units and ticks.
 */

#ifndef TDM_SIM_TYPES_HH
#define TDM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace tdm::sim {

/** Simulated time, in core clock cycles. */
using Tick = std::uint64_t;

/** Sentinel for "no tick" / "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Identifier of a core (0-based). */
using CoreId = std::uint32_t;

/** Sentinel core id. */
constexpr CoreId invalidCore = std::numeric_limits<CoreId>::max();

/** Simulated clock frequency, cycles per second. */
constexpr double clockFreqHz = 2.0e9;

/** Convert microseconds of simulated time to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * (clockFreqHz / 1.0e6));
}

/** Convert ticks to microseconds of simulated time. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / (clockFreqHz / 1.0e6);
}

/** Convert ticks to seconds of simulated time. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / clockFreqHz;
}

/** Integer ceiling division. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    return (a + b - 1) / b;
}

/** Number of bits needed to represent values in [0, n-1]. */
constexpr unsigned
bitsFor(std::uint64_t n)
{
    unsigned bits = 0;
    std::uint64_t v = 1;
    while (v < n) {
        v <<= 1;
        ++bits;
    }
    return bits == 0 ? 1 : bits;
}

/** True iff n is a power of two (n > 0). */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(n) for n > 0. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned r = 0;
    while (n >>= 1)
        ++r;
    return r;
}

} // namespace tdm::sim

#endif // TDM_SIM_TYPES_HH
