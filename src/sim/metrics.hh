/**
 * @file
 * First-class metric registry: addressable, phase-windowed statistics.
 *
 * Components register typed metrics once, through a scoped
 * MetricContext, under dotted key paths mirroring the experiment-spec
 * grammar ("dmu.tat.hits", "mesh.avg_hop_latency"). The registry is
 * then queryable by key (unknown keys throw with near-miss
 * suggestions, same policy as spec keys), dumpable in gem5 stats.txt
 * format, and snapshottable: two snapshots delimit a phase window
 * (warmup / ROI / drain) whose per-metric deltas the registry computes
 * without the components knowing windows exist.
 *
 * Kinds:
 *  - Counter      monotone accumulator (Scalar, raw uint64, or probe
 *                 function); windows report the delta.
 *  - Average      mean of samples; windows report the window-local mean.
 *  - Distribution histogram + moments; flattens to .mean/.stdev/.count/
 *                 .min/.max/.underflow/.overflow subkeys; windows
 *                 report window-local mean and count.
 *  - Gauge        instantaneous level (function); excluded from windows.
 *  - Formula      derived value (ratio of totals); excluded from
 *                 windows, since a windowed ratio of deltas is a
 *                 different quantity than a delta of ratios.
 *
 * A MetricSet is the flat, exportable key→value view (what RunSummary,
 * the result cache and the JSON/CSV writers carry); select() filters
 * it with comma-separated glob patterns ("dmu.*,mesh.*").
 */

#ifndef TDM_SIM_METRICS_HH
#define TDM_SIM_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace tdm::sim {

/** User error addressing the registry: unknown key, bad pattern,
 *  duplicate registration. */
class MetricError : public std::runtime_error
{
  public:
    explicit MetricError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Behavior class of a metric. */
enum class MetricKind { Counter, Average, Distribution, Gauge, Formula };

/** "counter", "average", ... for messages and the key reference. */
const char *metricKindName(MetricKind kind);

/**
 * Flat, ordered key→value map: the exportable form of a registry (or
 * of one phase window of it).
 */
class MetricSet
{
  public:
    void set(const std::string &key, double v) { map_[key] = v; }

    /** Value of @p key; throws MetricError with near-miss suggestions
     *  when absent. */
    double at(const std::string &key) const;

    /** Value of @p key, @p dflt when absent. */
    double get(const std::string &key, double dflt = 0.0) const;

    bool contains(const std::string &key) const {
        return map_.count(key) != 0;
    }
    bool empty() const { return map_.empty(); }
    std::size_t size() const { return map_.size(); }

    const std::map<std::string, double> &entries() const { return map_; }

    /**
     * Subset matching @p patterns: comma-separated globs over full
     * dotted keys ('*' crosses dots, so "dmu.*" selects the whole
     * subtree). An empty pattern selects everything. Throws
     * MetricError on an empty glob token.
     */
    MetricSet select(const std::string &patterns) const;

    /** Glob match of one @p pattern ('*' any run, '?' any char)
     *  against @p key. */
    static bool globMatch(const std::string &pattern,
                          const std::string &key);

    /** Parse a comma-separated pattern list (validates tokens). */
    static std::vector<std::string>
    parsePatterns(const std::string &patterns);

  private:
    std::map<std::string, double> map_;
};

class MetricRegistry;
class Snapshot;

/**
 * Scoped registration handle: prepends its prefix to every registered
 * name, and spawns child scopes. Components take one by value —
 * `void regMetrics(sim::MetricContext ctx)` — and never see the
 * registry or each other's prefixes.
 */
class MetricContext
{
  public:
    /** Child context for a sub-component ("dmu" -> "dmu.tat"). */
    MetricContext scope(const std::string &name) const;

    const std::string &prefix() const { return prefix_; }

    void counter(const std::string &name, const Scalar *s,
                 const std::string &desc);
    void counter(const std::string &name, const std::uint64_t *v,
                 const std::string &desc);
    /** Monotone probe: reads a counter the component keeps in another
     *  form. Must be non-decreasing for window deltas to make sense. */
    void counterFn(const std::string &name, std::function<double()> fn,
                   const std::string &desc);
    void average(const std::string &name, const Average *a,
                 const std::string &desc);
    void distribution(const std::string &name, const Distribution *d,
                      const std::string &desc);
    void gauge(const std::string &name, std::function<double()> fn,
               const std::string &desc);
    void formula(const std::string &name, const Formula *f,
                 const std::string &desc);
    void formulaFn(const std::string &name, std::function<double()> fn,
                   const std::string &desc);

  private:
    friend class MetricRegistry;
    MetricContext(MetricRegistry *reg, std::string prefix)
        : reg_(reg), prefix_(std::move(prefix)) {}

    std::string join(const std::string &name) const;

    MetricRegistry *reg_;
    std::string prefix_;
};

/** Registered identity of one metric (for the key reference). */
struct MetricInfo
{
    std::string key;
    MetricKind kind;
    std::string desc;
};

/**
 * Opaque accumulator-state capture used for windowed reporting; only
 * meaningful against the registry that produced it.
 */
class MetricSnapshot
{
  private:
    friend class MetricRegistry;
    std::map<std::string, std::vector<double>> state_;
};

/**
 * The registry. Owns no metric storage — components keep their
 * counters; the registry keeps typed pointers (or probe functions)
 * under dotted keys. Everything registered must outlive the registry's
 * last use.
 */
class MetricRegistry
{
  public:
    /** Root-level scope ("dmu", "mesh", ...). An empty name addresses
     *  the root itself. */
    MetricContext context(const std::string &scope = "");

    bool contains(const std::string &key) const;

    /** Current value of @p key (counter value / mean / gauge /
     *  formula); throws MetricError with suggestions when unknown. */
    double value(const std::string &key) const;

    /** All registered keys, sorted (primary keys, unflattened). */
    std::vector<std::string> keys() const;

    /** Identity of every metric, sorted by key. */
    std::vector<MetricInfo> list() const;

    std::size_t size() const { return map_.size(); }

    /** Flat end-state view: distributions and averages flatten into
     *  subkeys (see file header). */
    MetricSet values() const;

    /** Capture the accumulator state of every windowable metric. */
    MetricSnapshot snapshot() const;

    /**
     * Per-metric deltas between two snapshots of THIS registry:
     * counters difference, averages/distributions window-local mean
     * (and .count for distributions). Gauges and formulas are
     * excluded.
     */
    MetricSet window(const MetricSnapshot &from,
                     const MetricSnapshot &to) const;

    /** Write "key value # desc" lines, gem5 stats.txt style, sorted. */
    void dump(std::ostream &os) const;

    /**
     * Warm-start fork hook: records the registry's key shape, and each
     * restore verifies the live shape still matches (throws
     * MetricError otherwise). The registry itself holds typed pointers
     * into components, so a forked run rebuilds it rather than
     * restoring it; this check pins the contract that rebuilding under
     * fork-compatible configurations is shape-invariant.
     */
    void snapshotState(Snapshot &s);

  private:
    friend class MetricContext;

    struct Entry
    {
        MetricKind kind;
        const Scalar *scalar = nullptr;
        const std::uint64_t *u64 = nullptr;
        const Average *avg = nullptr;
        const Distribution *dist = nullptr;
        const Formula *formula = nullptr;
        std::function<double()> fn;
        std::string desc;
    };

    void add(const std::string &key, Entry e);
    double valueOf(const Entry &e) const;
    std::vector<double> stateOf(const Entry &e) const;
    void flattenInto(MetricSet &out, const std::string &key,
                     const Entry &e) const;
    [[noreturn]] void throwUnknown(const std::string &key) const;

    std::map<std::string, Entry> map_;
};

} // namespace tdm::sim

#endif // TDM_SIM_METRICS_HH
