#include "sim/config.hh"

#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace tdm::sim {

void
Config::set(const std::string &key, const std::string &value)
{
    map_[key] = value;
}

void
Config::set(const std::string &key, std::int64_t value)
{
    map_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, std::uint64_t value)
{
    map_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    std::ostringstream oss;
    oss << value;
    map_[key] = oss.str();
}

void
Config::set(const std::string &key, bool value)
{
    map_[key] = value ? "true" : "false";
}

bool
Config::contains(const std::string &key) const
{
    return map_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    auto it = map_.find(key);
    return it == map_.end() ? dflt : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t dflt) const
{
    auto it = map_.find(key);
    if (it == map_.end())
        return dflt;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t dflt) const
{
    auto it = map_.find(key);
    if (it == map_.end())
        return dflt;
    return std::strtoull(it->second.c_str(), nullptr, 0);
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    auto it = map_.find(key);
    if (it == map_.end())
        return dflt;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    auto it = map_.find(key);
    if (it == map_.end())
        return dflt;
    return it->second == "true" || it->second == "1";
}

void
Config::merge(const Config &other)
{
    for (const auto &[k, v] : other.map_)
        map_[k] = v;
}

void
Config::dump(std::ostream &os) const
{
    for (const auto &[k, v] : map_)
        os << k << " = " << v << '\n';
}

std::string
Config::serialize() const
{
    std::ostringstream oss;
    for (const auto &[k, v] : map_)
        oss << k << '=' << v << ';';
    return oss.str();
}

} // namespace tdm::sim
