#include "sim/config.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "sim/logging.hh"

namespace tdm::sim {

namespace {

[[noreturn]] void
badValue(const std::string &key, const std::string &value,
         const char *expected)
{
    throw std::invalid_argument("config key '" + key + "': expected "
                                + expected + ", got '" + value + "'");
}

} // namespace

bool
Config::tryParseInt(const std::string &s, std::int64_t &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 0);
    if (end != s.c_str() + s.size() || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
Config::tryParseUint(const std::string &s, std::uint64_t &out)
{
    // strtoull silently wraps negative inputs; reject them up front.
    if (s.empty() || s[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (end != s.c_str() + s.size() || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
Config::tryParseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size() || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
Config::tryParseBool(const std::string &s, bool &out)
{
    if (s == "true" || s == "1") {
        out = true;
        return true;
    }
    if (s == "false" || s == "0") {
        out = false;
        return true;
    }
    return false;
}

void
Config::set(const std::string &key, const std::string &value)
{
    map_[key] = value;
}

void
Config::set(const std::string &key, std::int64_t value)
{
    map_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, std::uint64_t value)
{
    map_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    std::ostringstream oss;
    oss << value;
    map_[key] = oss.str();
}

void
Config::set(const std::string &key, bool value)
{
    map_[key] = value ? "true" : "false";
}

bool
Config::contains(const std::string &key) const
{
    return map_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &dflt) const
{
    auto it = map_.find(key);
    return it == map_.end() ? dflt : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t dflt) const
{
    auto it = map_.find(key);
    if (it == map_.end())
        return dflt;
    std::int64_t v;
    if (!tryParseInt(it->second, v))
        badValue(key, it->second, "an integer");
    return v;
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t dflt) const
{
    auto it = map_.find(key);
    if (it == map_.end())
        return dflt;
    std::uint64_t v;
    if (!tryParseUint(it->second, v))
        badValue(key, it->second, "a nonnegative integer");
    return v;
}

double
Config::getDouble(const std::string &key, double dflt) const
{
    auto it = map_.find(key);
    if (it == map_.end())
        return dflt;
    double v;
    if (!tryParseDouble(it->second, v))
        badValue(key, it->second, "a number");
    return v;
}

bool
Config::getBool(const std::string &key, bool dflt) const
{
    auto it = map_.find(key);
    if (it == map_.end())
        return dflt;
    bool v;
    if (!tryParseBool(it->second, v))
        badValue(key, it->second, "true/false/1/0");
    return v;
}

void
Config::merge(const Config &other)
{
    for (const auto &[k, v] : other.map_)
        map_[k] = v;
}

void
Config::dump(std::ostream &os) const
{
    for (const auto &[k, v] : map_)
        os << k << " = " << v << '\n';
}

std::string
Config::serialize() const
{
    std::ostringstream oss;
    for (const auto &[k, v] : map_)
        oss << k << '=' << v << ';';
    return oss.str();
}

} // namespace tdm::sim
