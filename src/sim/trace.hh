/**
 * @file
 * Category-gated time-resolved tracing.
 *
 * Instrumentation points throughout the machine record fixed-size
 * binary TraceRecords into a per-run TraceBuffer. The design contract
 * is zero overhead when tracing is off and zero simulation
 * perturbation when it is on:
 *
 *  - Every instrumentation site guards itself with
 *    `if (tbuf_.on(TraceCat::X))` — a single inline load + mask test
 *    against the enabled-category bitmask (0 by default).
 *  - Recording appends a 24-byte record to a chunked slab buffer:
 *    no per-record allocation (chunks are reserved whole), no I/O,
 *    and no reads of any state the simulation itself depends on.
 *  - The buffer is bounded (TraceConfig::bufferEvents); past the cap
 *    records are counted as dropped, never reallocated or cycled, so
 *    a runaway trace can't disturb timing either.
 *
 * Rendering to Chrome trace-event JSON (Perfetto / chrome://tracing)
 * lives in driver/report/trace_writer — the sim layer stays free of
 * any output-format knowledge.
 */

#ifndef TDM_SIM_TRACE_HH
#define TDM_SIM_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tdm::sim {

/** Trace categories; one bit each so a mask selects any subset. */
enum class TraceCat : std::uint32_t
{
    Task  = 1u << 0, ///< task lifecycle: create/ready/exec/retire
    Sched = 1u << 1, ///< scheduling segments + ready-pool depth
    Dmu   = 1u << 2, ///< DMU structure occupancy and blocked ops
    Noc   = 1u << 3, ///< NoC round trips
    Mem   = 1u << 4, ///< region-cache misses
    Core  = 1u << 5, ///< per-core idle spans + idle-core count
};

/** Mask with every category enabled. */
constexpr std::uint32_t traceCatAll = 0x3f;

/** Short lowercase name of one category ("task", "dmu", ...). */
const char *traceCatName(TraceCat cat);

/**
 * Parse a category list: a comma-separated subset of
 * task,sched,dmu,noc,mem,core, or "all", or "none"/"" (empty mask).
 * Throws std::invalid_argument naming the bad token.
 */
std::uint32_t parseTraceCategories(const std::string &list);

/** Canonical rendering: "none", "all", or "task,dmu" in bit order.
 *  Round-trips through parseTraceCategories. */
std::string formatTraceCategories(std::uint32_t mask);

/** Tracing knobs (part of the machine configuration / spec). */
struct TraceConfig
{
    /** Enabled-category bitmask; 0 disables tracing entirely. */
    std::uint32_t categories = 0;

    /** Hard cap on buffered records; further records are counted as
     *  dropped (≈24 bytes each: the default bounds a trace at 96 MB,
     *  far beyond any fig13-size run). */
    std::uint64_t bufferEvents = std::uint64_t{1} << 22;
};

/** Event shape of a trace point (drives JSON rendering). */
enum class TraceKind : std::uint8_t
{
    Span,    ///< an interval on a core track (start + duration)
    Instant, ///< a point event on a core track
    Counter, ///< a sampled process-wide counter value
};

/**
 * Every instrumentation point in the machine. The stable identity of
 * a record; tracePointInfo() carries the name/category/kind/doc used
 * by the writer and the generated trace-event reference.
 */
enum class TracePoint : std::uint16_t
{
    // task
    TaskCreate,  ///< creation segment (alloc + dependences + commit)
    TaskReady,   ///< task delivered to the scheduler
    TaskExec,    ///< task body (compute + memory stall)
    TaskFinish,  ///< finalization segment (tracker / finish_task)
    TaskRetire,  ///< task fully retired
    // sched
    SchedPop,      ///< pool pop / hardware-queue pop segment
    SchedSteal,    ///< Carbon steal attempt
    SchedGetReady, ///< get_ready_task dispatch / drain segment
    PoolDepth,     ///< software ready-pool depth
    // core
    CoreIdle,  ///< core parked with no work
    IdleCores, ///< number of currently parked cores
    // dmu
    DmuTasksInFlight, ///< tasks resident in the Task Table
    DmuDepsInFlight,  ///< dependences resident in the Dep Table
    DmuReadyQueue,    ///< Ready Queue depth
    DmuTatLive,       ///< live Task Alias Table entries
    DmuDatLive,       ///< live Dependence Alias Table entries
    DmuSlaUsed,       ///< successor list-array entries in use
    DmuDlaUsed,       ///< dependence list-array entries in use
    DmuRlaUsed,       ///< reader list-array entries in use
    DmuBlocked,       ///< an ISA op blocked on a full structure
    // noc
    NocRoundTrip, ///< one DMU-op request/response mesh round trip
    // mem
    MemRegionMiss, ///< task footprint access missed in L1/L2

    NumPoints,
};

/** Writer-facing metadata of one trace point. */
struct TracePointInfo
{
    const char *name; ///< event name in the rendered trace
    TraceCat cat;
    TraceKind kind;
    const char *doc;
};

const TracePointInfo &tracePointInfo(TracePoint p);

/** Core field of records not tied to any core (counters). */
constexpr std::uint16_t traceNoCore = 0xffff;

/**
 * One fixed-size (24-byte) trace record. Spans store their start tick
 * in `tick` and their length in `dur`; instants use `tick` alone;
 * counters store the sampled value split across a (low) / b (high).
 */
struct TraceRecord
{
    Tick tick = 0;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t dur = 0;
    std::uint16_t point = 0; ///< TracePoint
    std::uint16_t core = 0;  ///< track; traceNoCore for counters
};

static_assert(sizeof(TraceRecord) == 24, "records must stay fixed-size");

/**
 * The per-run record buffer: a slab of fixed-size chunks, each
 * reserved whole on first touch so steady-state appends never
 * allocate, bounded by TraceConfig::bufferEvents.
 */
class TraceBuffer
{
  public:
    /** Records per chunk (32 Ki records = 768 KB). */
    static constexpr std::size_t chunkSize = std::size_t{1} << 15;

    /** Arm the buffer: set the category mask and cap, drop any
     *  previously recorded data. */
    void configure(const TraceConfig &cfg);

    /** Any category enabled? */
    bool enabled() const { return mask_ != 0; }

    /**
     * The instrumentation gate: one inline load + mask test. Every
     * call site guards with this, so a disabled trace costs exactly
     * this check and nothing else.
     */
    bool
    on(TraceCat cat) const
    {
        return (mask_ & static_cast<std::uint32_t>(cat)) != 0;
    }

    /** Record a [start, end) interval on @p core's track. */
    void
    span(TracePoint p, std::uint16_t core, Tick start, Tick end,
         std::uint32_t a = 0, std::uint32_t b = 0)
    {
        const Tick len = end - start;
        append(TraceRecord{
            start, a, b,
            len > UINT32_MAX ? UINT32_MAX
                             : static_cast<std::uint32_t>(len),
            static_cast<std::uint16_t>(p), core});
    }

    /** Record a point event on @p core's track. */
    void
    instant(TracePoint p, std::uint16_t core, Tick t,
            std::uint32_t a = 0, std::uint32_t b = 0)
    {
        append(TraceRecord{t, a, b, 0, static_cast<std::uint16_t>(p),
                           core});
    }

    /** Sample a process-wide counter value at tick @p t. */
    void
    counter(TracePoint p, Tick t, std::uint64_t value)
    {
        append(TraceRecord{
            t, static_cast<std::uint32_t>(value),
            static_cast<std::uint32_t>(value >> 32), 0,
            static_cast<std::uint16_t>(p), traceNoCore});
    }

    /** Records currently held (dropped ones excluded). */
    std::size_t size() const { return size_; }

    /** Records refused once the cap was hit. */
    std::uint64_t dropped() const { return dropped_; }

    /** Visit every record in recording order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const std::vector<TraceRecord> &chunk : chunks_)
            for (const TraceRecord &r : chunk)
                fn(r);
    }

    /**
     * FNV-1a digest over every record's fields: a stable fingerprint
     * of the trace stream, independent of chunking and rendering
     * (the trace-determinism golden tests pin this).
     */
    std::uint64_t digest() const;

    /** Drop all records; the mask and cap stay armed. */
    void clear();

  private:
    void append(const TraceRecord &r);

    std::uint32_t mask_ = 0;
    std::uint64_t cap_ = 0;
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<std::vector<TraceRecord>> chunks_;
};

} // namespace tdm::sim

#endif // TDM_SIM_TRACE_HH
