/**
 * @file
 * "Did you mean" suggestion helpers shared by every name registry in
 * the simulator (spec keys, campaign names, stat and metric keys).
 *
 * The policy (PR 3): unknown names are hard errors, and the error
 * message names the closest registered candidates so typos are a
 * one-round-trip fix.
 */

#ifndef TDM_SIM_SUGGEST_HH
#define TDM_SIM_SUGGEST_HH

#include <cstddef>
#include <string>
#include <vector>

namespace tdm::sim {

/** Edit distance, capped: anything beyond @p cap returns cap + 1. */
std::size_t editDistance(const std::string &a, const std::string &b,
                         std::size_t cap);

/**
 * Candidates most similar to @p name (edit distance <= 3 or sharing a
 * prefix), closest first, at most @p limit — for "did you mean"
 * messages on unknown names.
 */
std::vector<std::string>
closestMatches(const std::string &name,
               const std::vector<std::string> &candidates,
               std::size_t limit = 3);

/** closestMatches rendered as "; did you mean: a, b?" — empty when
 *  nothing is close. */
std::string suggestHint(const std::string &name,
                        const std::vector<std::string> &candidates);

} // namespace tdm::sim

#endif // TDM_SIM_SUGGEST_HH
