#include "sim/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace tdm::sim {

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &s)
{
    if (rows_.empty())
        rows_.emplace_back();
    rows_.back().push_back(s);
    return *this;
}

Table &
Table::cell(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return cell(oss.str());
}

Table &
Table::cell(std::uint64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(std::int64_t v)
{
    return cell(std::to_string(v));
}

Table &
Table::cell(int v)
{
    return cell(std::to_string(v));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string c = i < cells.size() ? cells[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << c;
        }
        os << '\n';
    };

    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        line(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        line(r);
}

} // namespace tdm::sim
