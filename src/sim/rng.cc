#include "sim/rng.hh"

#include <cmath>

#include "sim/snapshot.hh"

namespace tdm::sim {

std::uint64_t
hashMix(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
hashUnit(std::uint64_t key)
{
    return static_cast<double>(hashMix(key) >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::next()
{
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    return next() % n;
}

double
Rng::noiseFactor(double sigma)
{
    // Sum of 4 uniforms approximates a Gaussian; exponentiate a centered
    // variate to obtain multiplicative noise with mean close to 1.
    double g = 0.0;
    for (int i = 0; i < 4; ++i)
        g += uniform();
    g = (g - 2.0) * std::sqrt(3.0); // ~N(0,1)
    return std::exp(sigma * g - 0.5 * sigma * sigma);
}

void
Rng::snapshotState(Snapshot &s)
{
    s.capture(state_);
}

} // namespace tdm::sim
