#include "sim/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace tdm::sim {

namespace {

/**
 * The verbosity is set once by a CLI and then read from every campaign
 * worker thread; a plain global here is a data race (TSan-verified).
 * Relaxed ordering suffices: level changes need no synchronization
 * with the messages themselves.
 */
std::atomic<LogLevel> globalLevel{LogLevel::Warn};

/**
 * One emission lock so concurrent workers' messages interleave at
 * line granularity, not character granularity — and so TSan builds of
 * the campaign engine see a clean stream, not racing stream state.
 */
std::mutex &
emitMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    if (name == "quiet")
        out = LogLevel::Quiet;
    else if (name == "warn")
        out = LogLevel::Warn;
    else if (name == "info")
        out = LogLevel::Info;
    else if (name == "debug")
        out = LogLevel::Debug;
    else
        return false;
    return true;
}

namespace detail {

void
panicImpl(const std::string &msg, const char *file, int line)
{
    {
        std::lock_guard<std::mutex> lock(emitMutex());
        std::cerr << "panic: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    {
        std::lock_guard<std::mutex> lock(emitMutex());
        std::cerr << "fatal: " << msg << " @ " << file << ":" << line
                  << std::endl;
    }
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn) {
        std::lock_guard<std::mutex> lock(emitMutex());
        std::cerr << "warn: " << msg << std::endl;
    }
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info) {
        std::lock_guard<std::mutex> lock(emitMutex());
        std::cerr << "info: " << msg << std::endl;
    }
}

void
debugImpl(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(emitMutex());
    std::cerr << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace tdm::sim
