#include "sim/logging.hh"

#include <cstdlib>
#include <iostream>

namespace tdm::sim {

namespace {
LogLevel globalLevel = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    if (name == "quiet")
        out = LogLevel::Quiet;
    else if (name == "warn")
        out = LogLevel::Warn;
    else if (name == "info")
        out = LogLevel::Info;
    else if (name == "debug")
        out = LogLevel::Debug;
    else
        return false;
    return true;
}

namespace detail {

void
panicImpl(const std::string &msg, const char *file, int line)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Info)
        std::cerr << "info: " << msg << std::endl;
}

void
debugImpl(const std::string &msg)
{
    std::cerr << "debug: " << msg << std::endl;
}

} // namespace detail

} // namespace tdm::sim
