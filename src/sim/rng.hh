/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64 core).
 *
 * Used for workload heterogeneity so that runs are reproducible across
 * platforms independent of libstdc++'s distributions.
 */

#ifndef TDM_SIM_RNG_HH
#define TDM_SIM_RNG_HH

#include <cstdint>

namespace tdm::sim {

class Snapshot;

/** SplitMix64 PRNG: tiny, fast, and platform-stable. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /**
     * Lognormal-ish multiplicative noise factor with the given relative
     * sigma, mean ~1.0. Used to perturb task durations.
     */
    double noiseFactor(double sigma);

    /** Capture the generator state for warm-start forking. */
    void snapshotState(Snapshot &s);

  private:
    std::uint64_t state_;
};

/** Stateless hash of a 64-bit key to [0,1); stable across runs. */
double hashUnit(std::uint64_t key);

/** Stateless 64-bit mix (SplitMix64 finalizer). */
std::uint64_t hashMix(std::uint64_t key);

} // namespace tdm::sim

#endif // TDM_SIM_RNG_HH
