#include "sim/snapshot.hh"

namespace tdm::sim {

void
Snapshot::restore() const
{
    for (const auto &a : actions_)
        a();
}

} // namespace tdm::sim
