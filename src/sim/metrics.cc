#include "sim/metrics.hh"

#include <memory>

#include "sim/snapshot.hh"
#include "sim/suggest.hh"

namespace tdm::sim {

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Average: return "average";
      case MetricKind::Distribution: return "distribution";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Formula: return "formula";
    }
    return "?";
}

// ---------------------------------------------------------------------
// MetricSet
// ---------------------------------------------------------------------

double
MetricSet::at(const std::string &key) const
{
    auto it = map_.find(key);
    if (it != map_.end())
        return it->second;
    std::vector<std::string> names;
    names.reserve(map_.size());
    for (const auto &[k, v] : map_)
        names.push_back(k);
    throw MetricError("unknown metric key '" + key + "'"
                      + suggestHint(key, names));
}

double
MetricSet::get(const std::string &key, double dflt) const
{
    auto it = map_.find(key);
    return it == map_.end() ? dflt : it->second;
}

bool
MetricSet::globMatch(const std::string &pattern, const std::string &key)
{
    // Iterative glob with single-star backtracking: '*' matches any
    // run of characters (dots included, so "dmu.*" covers the whole
    // subtree), '?' any single character.
    std::size_t p = 0, k = 0;
    std::size_t starP = std::string::npos, starK = 0;
    while (k < key.size()) {
        if (p < pattern.size()
            && (pattern[p] == '?' || pattern[p] == key[k])) {
            ++p;
            ++k;
        } else if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starK = k;
        } else if (starP != std::string::npos) {
            p = starP + 1;
            k = ++starK;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

std::vector<std::string>
MetricSet::parsePatterns(const std::string &patterns)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t next = patterns.find(',', pos);
        std::string tok = patterns.substr(pos, next - pos);
        const std::size_t a = tok.find_first_not_of(" \t");
        const std::size_t b = tok.find_last_not_of(" \t");
        tok = a == std::string::npos ? "" : tok.substr(a, b - a + 1);
        if (tok.empty())
            throw MetricError("empty glob in metric selection '"
                              + patterns + "'");
        out.push_back(tok);
        if (next == std::string::npos)
            break;
        pos = next + 1;
    }
    return out;
}

MetricSet
MetricSet::select(const std::string &patterns) const
{
    if (patterns.empty())
        return *this;
    const std::vector<std::string> globs = parsePatterns(patterns);
    MetricSet out;
    for (const auto &[k, v] : map_) {
        for (const std::string &g : globs) {
            if (globMatch(g, k)) {
                out.set(k, v);
                break;
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// MetricContext
// ---------------------------------------------------------------------

MetricContext
MetricContext::scope(const std::string &name) const
{
    return MetricContext(reg_, join(name));
}

std::string
MetricContext::join(const std::string &name) const
{
    if (prefix_.empty())
        return name;
    if (name.empty())
        return prefix_;
    return prefix_ + "." + name;
}

void
MetricContext::counter(const std::string &name, const Scalar *s,
                       const std::string &desc)
{
    MetricRegistry::Entry e;
    e.kind = MetricKind::Counter;
    e.scalar = s;
    e.desc = desc;
    reg_->add(join(name), std::move(e));
}

void
MetricContext::counter(const std::string &name, const std::uint64_t *v,
                       const std::string &desc)
{
    MetricRegistry::Entry e;
    e.kind = MetricKind::Counter;
    e.u64 = v;
    e.desc = desc;
    reg_->add(join(name), std::move(e));
}

void
MetricContext::counterFn(const std::string &name,
                         std::function<double()> fn,
                         const std::string &desc)
{
    MetricRegistry::Entry e;
    e.kind = MetricKind::Counter;
    e.fn = std::move(fn);
    e.desc = desc;
    reg_->add(join(name), std::move(e));
}

void
MetricContext::average(const std::string &name, const Average *a,
                       const std::string &desc)
{
    MetricRegistry::Entry e;
    e.kind = MetricKind::Average;
    e.avg = a;
    e.desc = desc;
    reg_->add(join(name), std::move(e));
}

void
MetricContext::distribution(const std::string &name,
                            const Distribution *d,
                            const std::string &desc)
{
    MetricRegistry::Entry e;
    e.kind = MetricKind::Distribution;
    e.dist = d;
    e.desc = desc;
    reg_->add(join(name), std::move(e));
}

void
MetricContext::gauge(const std::string &name, std::function<double()> fn,
                     const std::string &desc)
{
    MetricRegistry::Entry e;
    e.kind = MetricKind::Gauge;
    e.fn = std::move(fn);
    e.desc = desc;
    reg_->add(join(name), std::move(e));
}

void
MetricContext::formula(const std::string &name, const Formula *f,
                       const std::string &desc)
{
    MetricRegistry::Entry e;
    e.kind = MetricKind::Formula;
    e.formula = f;
    e.desc = desc;
    reg_->add(join(name), std::move(e));
}

void
MetricContext::formulaFn(const std::string &name,
                         std::function<double()> fn,
                         const std::string &desc)
{
    MetricRegistry::Entry e;
    e.kind = MetricKind::Formula;
    e.fn = std::move(fn);
    e.desc = desc;
    reg_->add(join(name), std::move(e));
}

// ---------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------

MetricContext
MetricRegistry::context(const std::string &scope)
{
    return MetricContext(this, scope);
}

void
MetricRegistry::add(const std::string &key, Entry e)
{
    if (key.empty())
        throw MetricError("metric registered with an empty key");
    if (map_.count(key))
        throw MetricError("metric key '" + key
                          + "' registered twice");
    map_.emplace(key, std::move(e));
}

void
MetricRegistry::throwUnknown(const std::string &key) const
{
    throw MetricError("unknown metric key '" + key + "'"
                      + suggestHint(key, keys()));
}

bool
MetricRegistry::contains(const std::string &key) const
{
    return map_.count(key) != 0;
}

double
MetricRegistry::valueOf(const Entry &e) const
{
    switch (e.kind) {
      case MetricKind::Counter:
        if (e.scalar)
            return e.scalar->value();
        if (e.u64)
            return static_cast<double>(*e.u64);
        return e.fn();
      case MetricKind::Average:
        return e.avg->mean();
      case MetricKind::Distribution:
        return e.dist->mean();
      case MetricKind::Gauge:
        return e.fn();
      case MetricKind::Formula:
        return e.formula ? e.formula->value() : e.fn();
    }
    return 0.0;
}

double
MetricRegistry::value(const std::string &key) const
{
    auto it = map_.find(key);
    if (it == map_.end())
        throwUnknown(key);
    return valueOf(it->second);
}

std::vector<std::string>
MetricRegistry::keys() const
{
    std::vector<std::string> out;
    out.reserve(map_.size());
    for (const auto &[k, e] : map_)
        out.push_back(k);
    return out;
}

std::vector<MetricInfo>
MetricRegistry::list() const
{
    std::vector<MetricInfo> out;
    out.reserve(map_.size());
    for (const auto &[k, e] : map_)
        out.push_back(MetricInfo{k, e.kind, e.desc});
    return out;
}

void
MetricRegistry::flattenInto(MetricSet &out, const std::string &key,
                            const Entry &e) const
{
    switch (e.kind) {
      case MetricKind::Counter:
      case MetricKind::Gauge:
      case MetricKind::Formula:
        out.set(key, valueOf(e));
        break;
      case MetricKind::Average:
        out.set(key, e.avg->mean());
        out.set(key + ".count", static_cast<double>(e.avg->count()));
        break;
      case MetricKind::Distribution: {
        const Distribution *d = e.dist;
        out.set(key + ".mean", d->mean());
        out.set(key + ".stdev", d->stdev());
        out.set(key + ".min", d->minSample());
        out.set(key + ".max", d->maxSample());
        out.set(key + ".count", static_cast<double>(d->count()));
        out.set(key + ".underflow",
                static_cast<double>(d->underflow()));
        out.set(key + ".overflow", static_cast<double>(d->overflow()));
        break;
      }
    }
}

MetricSet
MetricRegistry::values() const
{
    MetricSet out;
    for (const auto &[k, e] : map_)
        flattenInto(out, k, e);
    return out;
}

std::vector<double>
MetricRegistry::stateOf(const Entry &e) const
{
    switch (e.kind) {
      case MetricKind::Counter:
        return {valueOf(e)};
      case MetricKind::Average:
        return {e.avg->sum(), static_cast<double>(e.avg->count())};
      case MetricKind::Distribution:
        return {e.dist->sum(), static_cast<double>(e.dist->count())};
      case MetricKind::Gauge:
      case MetricKind::Formula:
        return {};
    }
    return {};
}

MetricSnapshot
MetricRegistry::snapshot() const
{
    MetricSnapshot snap;
    for (const auto &[k, e] : map_) {
        std::vector<double> st = stateOf(e);
        if (!st.empty())
            snap.state_.emplace(k, std::move(st));
    }
    return snap;
}

MetricSet
MetricRegistry::window(const MetricSnapshot &from,
                       const MetricSnapshot &to) const
{
    MetricSet out;
    for (const auto &[k, s1] : to.state_) {
        auto it = map_.find(k);
        if (it == map_.end())
            continue; // snapshot from another registry; be lenient
        auto it0 = from.state_.find(k);
        static const std::vector<double> zeros(2, 0.0);
        const std::vector<double> &s0 =
            it0 != from.state_.end() ? it0->second : zeros;
        switch (it->second.kind) {
          case MetricKind::Counter:
            out.set(k, s1[0] - (s0.empty() ? 0.0 : s0[0]));
            break;
          case MetricKind::Average: {
            const double dsum = s1[0] - s0[0];
            const double dcnt = s1[1] - (s0.size() > 1 ? s0[1] : 0.0);
            out.set(k, dcnt > 0.0 ? dsum / dcnt : 0.0);
            break;
          }
          case MetricKind::Distribution: {
            const double dsum = s1[0] - s0[0];
            const double dcnt = s1[1] - (s0.size() > 1 ? s0[1] : 0.0);
            out.set(k + ".mean", dcnt > 0.0 ? dsum / dcnt : 0.0);
            out.set(k + ".count", dcnt);
            break;
          }
          case MetricKind::Gauge:
          case MetricKind::Formula:
            break;
        }
    }
    return out;
}

void
MetricRegistry::dump(std::ostream &os) const
{
    MetricSet flat;
    for (const auto &[k, e] : map_)
        flattenInto(flat, k, e);
    for (const auto &[k, v] : flat.entries()) {
        os << k << ' ' << v;
        auto it = map_.find(k);
        // Subkeys (.mean, .count, ...) inherit the metric's kind but
        // carry no description of their own.
        if (it != map_.end() && !it->second.desc.empty())
            os << " # " << it->second.desc;
        else if (it == map_.end()) {
            const std::size_t dot = k.rfind('.');
            auto parent = dot == std::string::npos
                              ? map_.end()
                              : map_.find(k.substr(0, dot));
            if (parent != map_.end() && k.substr(dot + 1) == "mean"
                && !parent->second.desc.empty())
                os << " # " << parent->second.desc;
        }
        os << '\n';
    }
}

void
MetricRegistry::snapshotState(Snapshot &s)
{
    auto shape = std::make_shared<std::vector<std::string>>(keys());
    s.captureCustom([this, shape] {
        if (keys() != *shape)
            throw MetricError(
                "metric registry shape changed across a warm-start "
                "restore: forked configurations must register an "
                "identical key set");
    });
}

} // namespace tdm::sim
