#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace tdm::sim {

void
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    if (when < curTick_)
        panic("scheduling event in the past: ", when, " < ", curTick_);
    heap_.push(Entry{when, nextSeq_++, std::move(fn)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top returns const&; move out via const_cast, the
    // entry is popped immediately afterwards.
    Entry e = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    curTick_ = e.when;
    ++executed_;
    e.fn();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        if (!step())
            break;
    }
    if (curTick_ < limit && heap_.empty())
        return curTick_;
    if (!heap_.empty())
        curTick_ = limit;
    return curTick_;
}

} // namespace tdm::sim
