#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <memory>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace tdm::sim {

namespace {

/** Max-heap comparator that surfaces the earliest (tick, seq) first. */
struct Later
{
    template <typename E>
    bool
    operator()(const E &a, const E &b) const
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }
};

} // namespace

EventQueue::~EventQueue()
{
    // Drain pending events (retiring pool events into the freelists),
    // then release the freelists themselves.
    clearPending();
    for (void *&head : freeLists_) {
        while (head) {
            void *next = *static_cast<void **>(head);
            ::operator delete(head);
            head = next;
        }
    }
}

void
EventQueue::clearPending()
{
    auto drain = [this](std::vector<Bucket> &wheel) {
        for (Bucket &b : wheel) {
            Event *ev = b.head;
            while (ev) {
                Event *next = ev->next_;
                ev->scheduled_ = false;
                retire(ev);
                ev = next;
            }
            b.head = b.tail = nullptr;
        }
    };
    drain(ring_);
    drain(coarse_);
    for (const OverflowEntry &e : overflow_) {
        e.ev->scheduled_ = false;
        retire(e.ev);
    }
    overflow_.clear();
    for (const SmallEntry &e : small_) {
        e.ev->scheduled_ = false;
        retire(e.ev);
    }
    small_.clear();
    std::fill(std::begin(occupied_), std::end(occupied_), 0ull);
    std::fill(std::begin(coarseOccupied_), std::end(coarseOccupied_),
              0ull);
    ringCount_ = 0;
    coarseCount_ = 0;
    peekValid_ = false;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (when < curTick_)
        panic("scheduling event in the past: ", when, " < ", curTick_);
    if (ev->scheduled_)
        panic("event '", ev->name(), "' scheduled while already pending");
    ev->when_ = when;
    ev->seq_ = nextSeq_++;
    ev->scheduled_ = true;
    enqueue(ev);
}

void
EventQueue::enqueue(Event *ev)
{
    if (smallMode_) {
        if (small_.size() < smallCap) {
            small_.push_back(SmallEntry{ev->when_, ev->seq_, ev});
            std::push_heap(small_.begin(), small_.end(), Later{});
            return;
        }
        spillSmall();
    }
    // windowBase_ <= curTick_ <= ev->when_ holds outside of the
    // extract path, so these subtractions cannot underflow.
    if (ev->when_ < nearHorizon_) {
        insertRing(ev);
    } else if (ev->when_ - nearHorizon_ < coarseSpan) {
        // Coarse bands are unsorted O(1) appends; order is recovered
        // by the sorted ring insert at migration time.
        std::size_t idx = bandOf(ev->when_);
        Bucket &b = coarse_[idx];
        ev->next_ = nullptr;
        if (!b.head) {
            b.head = b.tail = ev;
            coarseOccupied_[idx >> 6] |= 1ull << (idx & 63);
        } else {
            b.tail->next_ = ev;
            b.tail = ev;
        }
        ++coarseCount_;
    } else {
        ev->next_ = nullptr;
        overflow_.push_back(OverflowEntry{ev->when_, ev->seq_, ev});
        std::push_heap(overflow_.begin(), overflow_.end(), Later{});
    }
}

void
EventQueue::spillSmall()
{
    // The calendar has been idle since the queue last drained (or
    // since construction): its window may trail the clock arbitrarily.
    // Catch it up first — cheap, because with an empty calendar the
    // horizon slide is a pure bitmap skip — then route every held
    // event through normal enqueueing.
    smallMode_ = false;
    advanceWindowTo(curTick_);
    std::vector<SmallEntry> held;
    held.swap(small_);
    for (const SmallEntry &e : held)
        enqueue(e.ev);
}

void
EventQueue::insertRing(Event *ev)
{
    // Every ring event must lie inside the near window: the bucket
    // index is time-unique only over [windowBase_, windowBase_ +
    // windowSpan), and nextPendingTick() relies on "first occupied
    // bucket == global minimum". A violation here means a tier
    // migration routed an event into the wrong generation.
    SIM_ASSERT(ev->when_ >= windowBase_
                   && ev->when_ - windowBase_ < windowSpan,
               "tick ", ev->when_, " outside near window [", windowBase_,
               ", ", windowBase_ + windowSpan, ")");
    peekValid_ = false;
    std::size_t idx = bucketOf(ev->when_);
    Bucket &b = ring_[idx];
    if (!b.head) {
        ev->next_ = nullptr;
        b.head = b.tail = ev;
        occupied_[idx >> 6] |= 1ull << (idx & 63);
    } else if (!before(ev, b.tail)) {
        // Monotone schedules (the common case) append in O(1).
        ev->next_ = nullptr;
        b.tail->next_ = ev;
        b.tail = ev;
    } else if (before(ev, b.head)) {
        ev->next_ = b.head;
        b.head = ev;
    } else {
        Event *p = b.head;
        while (!before(ev, p->next_))
            p = p->next_;
        ev->next_ = p->next_;
        p->next_ = ev;
    }
    ++ringCount_;
}

void
EventQueue::advanceWindowTo(Tick t)
{
    Tick new_base = (t >> bucketShift) << bucketShift;
    if (new_base <= windowBase_)
        return;
    windowBase_ = new_base;
    Tick new_h = ((new_base + windowSpan) >> coarseShift) << coarseShift;
    if (new_h > nearHorizon_)
        slideHorizon(new_h);
}

void
EventQueue::slideHorizon(Tick new_h)
{
    // Migrate whole coarse bands the horizon passed over. Bands are
    // single-generation (the coarse span exactly covers the wheel), so
    // every chained event lies in [band start, band start + width).
    // Empty stretches are skipped via the occupancy bitmap, keeping a
    // horizon jump O(occupied bands), not O(tick distance) — a lone
    // event scheduled eons ahead must not make run() sweep the gap.
    while (coarseCount_ > 0 && nearHorizon_ < new_h) {
        std::size_t start = bandOf(nearHorizon_);
        std::size_t idx = nextSetBit(coarseOccupied_, start);
        Tick band_start =
            nearHorizon_ + (static_cast<Tick>((idx - start) & coarseMask)
                            << coarseShift);
        if (band_start >= new_h)
            break; // next occupied band is beyond the target horizon
        Event *ev = coarse_[idx].head;
        coarse_[idx].head = coarse_[idx].tail = nullptr;
        coarseOccupied_[idx >> 6] &= ~(1ull << (idx & 63));
        while (ev) {
            Event *next = ev->next_;
            insertRing(ev);
            --coarseCount_;
            ev = next;
        }
        nearHorizon_ = band_start + coarseWidth;
    }
    nearHorizon_ = new_h;
    // Far-heap events the horizon passed over go straight into the
    // near ring; everything else stays heaped, even once it falls
    // inside the coarse span. The wheel is never an intermediate hop
    // for heap events (lazy migration): each pays one heap pop and one
    // ring insert total, and a horizon slide touches only the events
    // it actually uncovers instead of a coarse-span lookahead.
    // extractNext() and nextPendingTick() merge the heap with the
    // first coarse band on demand, so the relaxed invariant is just
    // "heap top >= nearHorizon_".
    while (!overflow_.empty() && overflow_.front().when < nearHorizon_) {
        std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
        Event *ev = overflow_.back().ev;
        overflow_.pop_back();
        insertRing(ev);
    }
}

void
EventQueue::pullCoarse()
{
    // The near ring is empty: jump the window (never the clock) to the
    // first non-empty coarse band and migrate it in.
    std::size_t start = bandOf(nearHorizon_);
    std::size_t idx = nextSetBit(coarseOccupied_, start);
    Tick band_start = nearHorizon_
                    + (static_cast<Tick>((idx - start) & coarseMask)
                       << coarseShift);
    windowBase_ = band_start; // band-aligned, hence bucket-aligned
    nearHorizon_ = band_start;
    slideHorizon(band_start + windowSpan);
}

Tick
EventQueue::nextPendingTick() const
{
    if (smallMode_)
        return small_.empty() ? maxTick : small_.front().when;
    if (ringCount_ > 0) {
        // All ring events lie in [windowBase_, nearHorizon_), a range
        // the ring maps to distinct buckets in time order, so the
        // first occupied bucket's head is the global minimum (coarse
        // and far events are at or beyond the horizon by invariant).
        Tick from = curTick_ > windowBase_ ? curTick_ : windowBase_;
        std::size_t idx = nextSetBit(occupied_, bucketOf(from));
        peekIdx_ = idx;
        peekValid_ = true;
        return ring_[idx].head->when_;
    }
    if (coarseCount_ > 0) {
        // First non-empty band; its unsorted chain needs a min-scan.
        std::size_t idx = nextSetBit(coarseOccupied_,
                                     bandOf(nearHorizon_));
        Tick min = maxTick;
        for (Event *ev = coarse_[idx].head; ev; ev = ev->next_) {
            if (ev->when_ < min)
                min = ev->when_;
        }
        // Lazily migrated far-heap events may precede the first band.
        if (!overflow_.empty() && overflow_.front().when < min)
            min = overflow_.front().when;
        return min;
    }
    if (!overflow_.empty())
        return overflow_.front().when;
    return maxTick;
}

Event *
EventQueue::extractNext()
{
    if (smallMode_) {
        std::pop_heap(small_.begin(), small_.end(), Later{});
        Event *ev = small_.back().ev;
        small_.pop_back();
        ev->next_ = nullptr;
        return ev;
    }
    if (ringCount_ == 0) {
        bool pop_heap = coarseCount_ == 0;
        if (!pop_heap && !overflow_.empty()) {
            // The heap may now hold events earlier than the first
            // coarse band (lazy migration). Strictly earlier means no
            // (tick, seq) tie with any band event is possible — band
            // events are all >= band_start — so the top pops directly.
            // An equal tick must instead merge through the ring, where
            // the sorted insert settles seq order.
            std::size_t start = bandOf(nearHorizon_);
            std::size_t idx = nextSetBit(coarseOccupied_, start);
            Tick band_start =
                nearHorizon_ + (static_cast<Tick>((idx - start)
                                                  & coarseMask)
                                << coarseShift);
            pop_heap = overflow_.front().when < band_start;
        }
        if (pop_heap) {
            // The heap top is the global minimum. The window catches
            // up when the event fires.
            std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
            Event *ev = overflow_.back().ev;
            overflow_.pop_back();
            ev->next_ = nullptr;
            return ev;
        }
        pullCoarse();
    }
    std::size_t idx;
    if (peekValid_) {
        idx = peekIdx_;
        peekValid_ = false;
    } else {
        Tick from = curTick_ > windowBase_ ? curTick_ : windowBase_;
        idx = nextSetBit(occupied_, bucketOf(from));
    }
    Bucket &b = ring_[idx];
    Event *ev = b.head;
    b.head = ev->next_;
    if (!b.head) {
        b.tail = nullptr;
        occupied_[idx >> 6] &= ~(1ull << (idx & 63));
    }
    ev->next_ = nullptr;
    --ringCount_;
    return ev;
}

template <std::size_t Words>
std::size_t
EventQueue::nextSetBit(const std::uint64_t (&bits)[Words],
                       std::size_t start)
{
    std::size_t word = start >> 6;
    std::uint64_t w = bits[word] & (~0ull << (start & 63));
    for (std::size_t i = 0; i <= Words; ++i) {
        if (w)
            return (word << 6)
                 + static_cast<std::size_t>(std::countr_zero(w));
        word = (word + 1) & (Words - 1);
        w = bits[word];
    }
    panic("event wheel bitmap inconsistent with its count");
}

void
EventQueue::fireExtracted(Event *ev)
{
    // The determinism contract: extraction surfaces events in strictly
    // increasing (tick, seq) order regardless of the tier (near ring,
    // coarse band, far heap) each one migrated through.
    SIM_ASSERT(ev->when_ >= curTick_, "event at tick ", ev->when_,
               " fired with clock already at ", curTick_);
#if SIM_INVARIANTS_ENABLED
    SIM_ASSERT(!anyFired_ || ev->when_ > lastFiredWhen_
                   || (ev->when_ == lastFiredWhen_
                       && ev->seq_ > lastFiredSeq_),
               "(tick ", ev->when_, ", seq ", ev->seq_,
               ") fired after (tick ", lastFiredWhen_, ", seq ",
               lastFiredSeq_, ")");
    lastFiredWhen_ = ev->when_;
    lastFiredSeq_ = ev->seq_;
    anyFired_ = true;
#endif
    curTick_ = ev->when_;
    if (!smallMode_)
        advanceWindowTo(curTick_);
    ++executed_;
    ev->scheduled_ = false;
    ev->fire();
    // fire() may have rescheduled the event (self-re-arming pattern);
    // a pooled event that did so is still linked in the queue and must
    // not be recycled yet — it retires after its final firing.
    if (!ev->scheduled_)
        retire(ev);
    // Hybrid hysteresis: the calendar re-enters the flat-heap fast
    // path only when it drains completely, so long runs spill at most
    // once.
    if (!smallMode_ && pending() == 0)
        smallMode_ = true;
}

bool
EventQueue::step()
{
    if (empty())
        return false;
    fireExtracted(extractNext());
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    for (;;) {
        Tick next = nextPendingTick();
        if (next == maxTick) {
            // Drained: the clock stays at the last executed event.
            return curTick_;
        }
        if (next > limit) {
            // Stop at the horizon: advance the clock to exactly
            // `limit` — never backwards.
            peekValid_ = false;
            if (limit > curTick_) {
                curTick_ = limit;
                advanceWindowTo(limit);
            }
            return curTick_;
        }
        fireExtracted(extractNext());
    }
}

void
EventQueue::retire(Event *ev)
{
    std::uint16_t cls = ev->poolClass_;
    if (cls == Event::notPooled)
        return; // externally owned
    if (cls == Event::heapClass) {
        ev->~Event();
        ::operator delete(ev);
        return;
    }
    // Pooled: events with trivial payloads skip the virtual-dtor
    // dispatch entirely before their memory is recycled.
    if (!(cls & Event::trivialBit))
        ev->~Event();
    releaseRaw(ev, cls & ~Event::trivialBit);
}

void *
EventQueue::allocRaw(std::size_t cls, std::size_t bytes)
{
    void *&head = freeLists_[cls];
    if (head) {
        void *mem = head;
        head = *static_cast<void **>(mem);
        ++poolRecycled_;
        return mem;
    }
    ++poolFresh_;
    return ::operator new(bytes);
}

void
EventQueue::releaseRaw(void *mem, std::size_t cls)
{
    *static_cast<void **>(mem) = freeLists_[cls];
    freeLists_[cls] = mem;
}

void
EventQueue::scheduleAt(Tick when, EventFn fn)
{
    schedule(make<LambdaEvent>(std::move(fn)), when);
}

/**
 * Restorable image of a queue: heap-owned clones of every pending
 * event (kept as masters and re-cloned on each restore, so one image
 * serves any number of forks) plus the scalar kernel state.
 */
struct EventQueue::QueueImage
{
    std::vector<std::unique_ptr<Event>> masters;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    Tick windowBase = 0;
    Tick nearHorizon = 0;
    bool smallMode = true;
#if SIM_INVARIANTS_ENABLED
    Tick lastFiredWhen = 0;
    std::uint64_t lastFiredSeq = 0;
    bool anyFired = false;
#endif
};

bool
EventQueue::snapshotState(Snapshot &s)
{
    auto img = std::make_shared<QueueImage>();
    img->masters.reserve(pending());
    bool ok = true;
    auto cloneOne = [&](Event *ev) {
        Event *copy = ev->clone();
        if (!copy) {
            ok = false;
            return;
        }
        img->masters.emplace_back(copy);
    };
    for (const Bucket &b : ring_)
        for (Event *ev = b.head; ok && ev; ev = ev->next_)
            cloneOne(ev);
    for (const Bucket &b : coarse_)
        for (Event *ev = b.head; ok && ev; ev = ev->next_)
            cloneOne(ev);
    for (const OverflowEntry &e : overflow_) {
        if (!ok)
            break;
        cloneOne(e.ev);
    }
    for (const SmallEntry &e : small_) {
        if (!ok)
            break;
        cloneOne(e.ev);
    }
    if (!ok)
        return false; // a pending event is not clonable: cold run
    img->curTick = curTick_;
    img->nextSeq = nextSeq_;
    img->executed = executed_;
    img->windowBase = windowBase_;
    img->nearHorizon = nearHorizon_;
    img->smallMode = smallMode_;
#if SIM_INVARIANTS_ENABLED
    img->lastFiredWhen = lastFiredWhen_;
    img->lastFiredSeq = lastFiredSeq_;
    img->anyFired = anyFired_;
#endif
    s.captureCustom([this, img] { restoreState(*img); });
    return true;
}

void
EventQueue::restoreState(const QueueImage &img)
{
    clearPending();
    curTick_ = img.curTick;
    nextSeq_ = img.nextSeq;
    executed_ = img.executed;
    windowBase_ = img.windowBase;
    nearHorizon_ = img.nearHorizon;
    smallMode_ = img.smallMode;
#if SIM_INVARIANTS_ENABLED
    lastFiredWhen_ = img.lastFiredWhen;
    lastFiredSeq_ = img.lastFiredSeq;
    anyFired_ = img.anyFired;
#endif
    // Re-clone each master into a live scheduled event. The clone
    // carries the original (tick, seq) key, so routing through the
    // restored window geometry reproduces the original fire order
    // exactly: the ring sorts on insert, coarse bands recover order at
    // migration, and both heaps order by the inline key.
    for (const auto &master : img.masters) {
        Event *ev = master->clone();
        if (!ev)
            panic("snapshot master event lost its clonability");
        ev->scheduled_ = true;
        if (smallMode_) {
            small_.push_back(SmallEntry{ev->when_, ev->seq_, ev});
        } else {
            enqueue(ev);
        }
    }
    if (smallMode_)
        std::make_heap(small_.begin(), small_.end(), Later{});
}

} // namespace tdm::sim
