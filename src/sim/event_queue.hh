/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Events are ordered first by tick and then by schedule sequence, so
 * simulations are bit-reproducible regardless of container internals.
 *
 * The kernel is a three-level hierarchical calendar over intrusive
 * Event objects:
 *
 *  - Near ring: `numBuckets` buckets of `2^bucketShift` ticks each,
 *    covering [windowBase, nearHorizon). Buckets are intrusive singly
 *    linked lists kept sorted by (tick, seq); the common monotone
 *    schedule pattern appends at the tail in O(1). A per-bucket
 *    occupancy bitmap makes "find next non-empty bucket" a couple of
 *    word scans.
 *  - Coarse wheel: `numCoarse` bands of `2^coarseShift` ticks covering
 *    the next ~2M ticks past the near horizon. Bands are unsorted
 *    append-only chains (O(1) insert); when the near window slides
 *    over a band, its events are sort-inserted into the near ring.
 *    The near horizon is kept band-aligned so bands always migrate
 *    whole.
 *  - Far heap: a binary min-heap of (tick, seq, event) triples for
 *    events scheduled beyond the coarse span; entries replicate the
 *    key so heap sifts never dereference events. Heap events migrate
 *    lazily: they stay heaped until the near horizon passes them and
 *    then drop straight into the ring, never transiting the coarse
 *    wheel. The heap may therefore overlap the coarse span in time
 *    (only "heap top >= nearHorizon" is invariant); extraction and
 *    peeking merge the heap with the first coarse band on demand.
 *
 * Small-pending hybrid: below `smallCap` pending events the calendar
 * is bypassed entirely in favor of a flat inline-key binary heap,
 * which skips window maintenance while the pending set is tiny
 * (startup trickles, drain tails, idle service queues). The cap is
 * deliberately below sustained working-set sizes — a few dozen
 * concurrent events is already calendar territory, where O(1) bucket
 * inserts beat heap sifts even for far-future shapes. The queue
 * starts in small mode, spills into the calendar the first time an
 * insert would exceed the cap, and re-enters small mode only when it
 * drains completely — maximal hysteresis, so steady-state large
 * simulations pay one spill total.
 * Fire order is governed by the same strict (tick, seq) key in both
 * structures, so the hybrid is bit-for-bit invisible to models.
 *
 * Pool-allocated events (EventQueue::make() / post()) are recycled
 * through per-size-class freelists after they fire, so a steady-state
 * simulation performs no per-event heap allocation. The legacy
 * scheduleAt(Tick, EventFn) std::function shim remains for cold
 * callers (workloads, tests); it wraps the callback in a pooled event.
 *
 * run(limit) end-time semantics (regression-tested):
 *  - every event with when <= limit fires;
 *  - if events remain pending, now() is advanced to exactly `limit`;
 *  - if the queue drained, now() stays at the tick of the last event
 *    executed (the quiescence time / makespan), which may be < limit;
 *  - the clock never moves backwards: run(limit) with limit < now()
 *    executes nothing and leaves now() unchanged.
 */

#ifndef TDM_SIM_EVENT_QUEUE_HH
#define TDM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <vector>

#include "sim/assert.hh"
#include "sim/event.hh"
#include "sim/types.hh"

namespace tdm::sim {

class Snapshot;

/** Callback type of the compatibility shim. */
using EventFn = std::function<void()>;

/**
 * A deterministic event-driven simulator kernel.
 *
 * Single-threaded: all model code runs inside event callbacks. Ties at
 * the same tick fire in schedule order.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    // ---- typed, pooled scheduling (hot path) -----------------------

    /**
     * Allocate a pooled event of type @p T. The event is destroyed and
     * its memory recycled right after it fires (or when the queue is
     * destroyed with the event still pending).
     */
    template <typename T, typename... CtorArgs>
    T *
    make(CtorArgs &&...args)
    {
        static_assert(std::is_base_of_v<Event, T>);
        static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                      "pool blocks provide only default new alignment");
        constexpr std::size_t cls = classOf(sizeof(T));
        void *mem;
        if constexpr (cls < numClasses)
            mem = allocRaw(cls, classBytes(cls));
        else
            mem = ::operator new(sizeof(T));
        T *ev = new (mem) T(std::forward<CtorArgs>(args)...);
        constexpr bool trivial = [] {
            if constexpr (requires { T::trivialPayload; })
                return T::trivialPayload;
            else
                return false;
        }();
        ev->poolClass_ = cls < numClasses
                             ? static_cast<std::uint16_t>(
                                   cls | (trivial ? Event::trivialBit : 0))
                             : Event::heapClass;
        return ev;
    }

    /**
     * Schedule `(owner->*MemFn)(args...)` at absolute tick @p when via
     * a pooled BoundEvent. This is the hot-path replacement for the
     * lambda shim: statically typed, no type erasure, recycled memory.
     */
    template <auto MemFn, typename Owner, typename... Args>
    void
    post(Tick when, Owner *owner, Args... args)
    {
        using Ev = BoundEvent<MemFn, Owner, Args...>;
        schedule(make<Ev>(owner, std::move(args)...), when);
    }

    /** As post(), @p delay ticks from now. */
    template <auto MemFn, typename Owner, typename... Args>
    void
    postIn(Tick delay, Owner *owner, Args... args)
    {
        post<MemFn>(curTick_ + delay, owner, std::move(args)...);
    }

    /**
     * Schedule @p ev at absolute tick @p when (>= now). Pool events
     * (from make()) are consumed by firing; externally owned events are
     * left untouched afterwards and may be rescheduled.
     */
    void schedule(Event *ev, Tick when);

    // ---- std::function compatibility shim (cold callers) -----------

    /** Schedule @p fn to run at absolute tick @p when (>= now). */
    void scheduleAt(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleIn(Tick delay, EventFn fn) {
        scheduleAt(curTick_ + delay, std::move(fn));
    }

    // ---- execution -------------------------------------------------

    /**
     * Run until the queue drains or @p limit ticks is reached; see the
     * file comment for the exact end-time semantics.
     * @return the final simulated time.
     */
    Tick run(Tick limit = maxTick);

    /** Execute at most one event. @return false if queue was empty. */
    bool step();

    /** Number of pending events. */
    std::size_t
    pending() const
    {
        return small_.size() + ringCount_ + coarseCount_
             + overflow_.size();
    }

    // ---- warm-start snapshots --------------------------------------

    /**
     * Capture the queue's complete state (clock, sequence counter, and
     * a cloned image of every pending event) into @p s, restorable any
     * number of times. Returns false — capturing nothing — when a
     * pending event is not clonable (type-erased lambda payloads);
     * callers then fall back to a cold run.
     */
    bool snapshotState(Snapshot &s);

    /** True when no events remain. */
    bool empty() const { return pending() == 0; }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** Pool blocks handed out that were recycled (telemetry). */
    std::uint64_t poolRecycled() const { return poolRecycled_; }

    /** Pool blocks obtained from the heap (telemetry). */
    std::uint64_t poolFresh() const { return poolFresh_; }

  private:
    // ---- calendar geometry ----
    static constexpr unsigned bucketShift = 6;  ///< 64-tick buckets
    static constexpr unsigned bucketBits = 9;   ///< 512 buckets
    static constexpr std::size_t numBuckets = 1u << bucketBits;
    static constexpr std::size_t bucketMask = numBuckets - 1;
    static constexpr Tick windowSpan = static_cast<Tick>(numBuckets)
                                       << bucketShift; // 32768 ticks

    static constexpr unsigned coarseShift = 12; ///< 4096-tick bands
    static constexpr unsigned coarseBits = 9;   ///< 512 bands
    static constexpr std::size_t numCoarse = 1u << coarseBits;
    static constexpr std::size_t coarseMask = numCoarse - 1;
    static constexpr Tick coarseWidth = Tick{1} << coarseShift;
    static constexpr Tick coarseSpan = static_cast<Tick>(numCoarse)
                                       << coarseShift; // ~2.1M ticks

    struct Bucket
    {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    /** Strict (tick, seq) order. */
    static bool
    before(const Event *a, const Event *b)
    {
        if (a->when_ != b->when_)
            return a->when_ < b->when_;
        return a->seq_ < b->seq_;
    }

    std::size_t bucketOf(Tick t) const {
        return (t >> bucketShift) & bucketMask;
    }
    std::size_t bandOf(Tick t) const {
        return (t >> coarseShift) & coarseMask;
    }

    /** Route @p ev (fields already stamped) to ring/coarse/heap. */
    void enqueue(Event *ev);

    /** Sorted-insert @p ev into its window bucket (O(1) when monotone). */
    void insertRing(Event *ev);

    /**
     * Slide the near window base to cover @p t; migrates coarse bands
     * the horizon passed over into the ring and far-heap events that
     * entered the coarse span into the wheel.
     */
    void advanceWindowTo(Tick t);

    /** Migrate coarse bands / heap entries up to horizon @p new_h. */
    void slideHorizon(Tick new_h);

    /**
     * Jump the near window (not the clock) forward to the first
     * non-empty coarse band and migrate it into the ring. Pre:
     * ringCount_ == 0 && coarseCount_ > 0. Post: ringCount_ > 0.
     */
    void pullCoarse();

    /**
     * Tick of the earliest pending event (maxTick if none) without
     * structural mutation.
     */
    Tick nextPendingTick() const;

    /**
     * Unlink and return the earliest pending event. Pre: not empty.
     * May jump the window (never the clock) to reach coarse events.
     */
    Event *extractNext();

    /** Advance the clock to @p ev, fire it, and recycle it. */
    void fireExtracted(Event *ev);

    /** Destroy a fired/cancelled event according to its ownership. */
    void retire(Event *ev);

    /** Retire every pending event and reset all pending structures. */
    void clearPending();

    /** Leave small mode: catch the calendar window up to the clock and
     *  route the flat heap's events through normal enqueueing. */
    void spillSmall();

    struct QueueImage; ///< cloned pending set + scalar state (.cc)

    /** Replace all queue state with a previously captured image. */
    void restoreState(const QueueImage &img);

    /** First set bit at/after @p start in @p bits (wrapping scan). */
    template <std::size_t Words>
    static std::size_t nextSetBit(const std::uint64_t (&bits)[Words],
                                  std::size_t start);

    // ---- pool ----
    static constexpr std::size_t classGrain = 16;
    static constexpr std::size_t numClasses = 16; ///< up to 256 bytes

    /** Size class of an allocation: 0 covers 1-16 bytes, 15 covers
        241-256; anything larger falls back to the plain heap. */
    static constexpr std::size_t classOf(std::size_t bytes) {
        return (bytes - 1) / classGrain;
    }
    static constexpr std::size_t classBytes(std::size_t cls) {
        return (cls + 1) * classGrain;
    }

    void *allocRaw(std::size_t cls, std::size_t bytes);
    void releaseRaw(void *mem, std::size_t cls);

    /**
     * Far-heap entry: the ordering key is replicated next to the
     * pointer so heap sifts compare without dereferencing the event.
     */
    struct OverflowEntry
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Event *ev = nullptr;
    };

    static constexpr std::size_t numWords = numBuckets / 64;
    static constexpr std::size_t numCoarseWords = numCoarse / 64;

    std::vector<Bucket> ring_ = std::vector<Bucket>(numBuckets);
    std::vector<Bucket> coarse_ = std::vector<Bucket>(numCoarse);
    std::vector<OverflowEntry> overflow_; ///< min-heap by (tick, seq)
    std::size_t ringCount_ = 0;
    std::size_t coarseCount_ = 0;

    // ---- small-pending flat heap ----
    /** Pending count below which the calendar is bypassed. Must stay
     *  below sustained working-set sizes (the 64-actor microbench
     *  showed the calendar ~1.8x faster than the flat heap once the
     *  pending set camps at 64). */
    static constexpr std::size_t smallCap = 32;

    /** Inline-key entry of the small-mode heap (same layout trick as
     *  OverflowEntry: sifts never dereference the event). */
    struct SmallEntry
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Event *ev = nullptr;
    };

    /** True while all pending events live in small_ (calendar empty). */
    bool smallMode_ = true;
    std::vector<SmallEntry> small_; ///< min-heap by (tick, seq)

    Tick windowBase_ = 0;
    /** Band-aligned end of the near window / start of the coarse span. */
    Tick nearHorizon_ = windowSpan;

    /** One bit per bucket/band: set iff non-empty. */
    std::uint64_t occupied_[numWords] = {};
    std::uint64_t coarseOccupied_[numCoarseWords] = {};

    /**
     * One-slot peek cache: the ring bucket found by nextPendingTick(),
     * consumed by the immediately following extractNext(). Invalidated
     * by any ring insert.
     */
    mutable bool peekValid_ = false;
    mutable std::size_t peekIdx_ = 0;

    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;

    void *freeLists_[numClasses] = {};
    std::uint64_t poolRecycled_ = 0;
    std::uint64_t poolFresh_ = 0;

#if SIM_INVARIANTS_ENABLED
    /**
     * Last fired (tick, seq) key: the determinism contract is that the
     * fire order is strictly increasing lexicographically no matter
     * which tier (ring / coarse band / far heap) an event migrated
     * through. Debug/sanitizer builds re-verify this at every fire.
     */
    Tick lastFiredWhen_ = 0;
    std::uint64_t lastFiredSeq_ = 0;
    bool anyFired_ = false;
#endif
};

/** Pooled wrapper firing a type-erased std::function (compat shim). */
class LambdaEvent final : public Event
{
  public:
    explicit LambdaEvent(EventFn fn) : fn_(std::move(fn)) {}
    void fire() override { fn_(); }
    const char *name() const override { return "lambda"; }

  private:
    EventFn fn_;
};

} // namespace tdm::sim

#endif // TDM_SIM_EVENT_QUEUE_HH
