/**
 * @file
 * Deterministic discrete-event simulation kernel.
 *
 * Events are (tick, sequence, callback) triples ordered first by tick and
 * then by insertion sequence, so simulations are bit-reproducible
 * regardless of heap internals.
 */

#ifndef TDM_SIM_EVENT_QUEUE_HH
#define TDM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace tdm::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * A deterministic event-driven simulator kernel.
 *
 * Single-threaded: all model code runs inside event callbacks. Ties at the
 * same tick fire in schedule order.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return curTick_; }

    /** Schedule @p fn to run at absolute tick @p when (>= now). */
    void scheduleAt(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleIn(Tick delay, EventFn fn) {
        scheduleAt(curTick_ + delay, std::move(fn));
    }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /**
     * Run until the queue drains or @p limit ticks is reached.
     * @return the final simulated time.
     */
    Tick run(Tick limit = maxTick);

    /** Execute at most one event. @return false if queue was empty. */
    bool step();

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace tdm::sim

#endif // TDM_SIM_EVENT_QUEUE_HH
