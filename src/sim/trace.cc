#include "sim/trace.hh"

#include <stdexcept>

namespace tdm::sim {

namespace {

struct CatName
{
    TraceCat cat;
    const char *name;
};

constexpr CatName catNames[] = {
    {TraceCat::Task, "task"}, {TraceCat::Sched, "sched"},
    {TraceCat::Dmu, "dmu"},   {TraceCat::Noc, "noc"},
    {TraceCat::Mem, "mem"},   {TraceCat::Core, "core"},
};

constexpr TracePointInfo pointInfos[] = {
    // task
    {"create", TraceCat::Task, TraceKind::Span,
     "task-creation segment on the master: descriptor allocation, "
     "dependence registration, commit"},
    {"ready", TraceCat::Task, TraceKind::Instant,
     "task handed to the scheduler (args: task, successors)"},
    {"exec", TraceCat::Task, TraceKind::Span,
     "task body: compute cycles + memory stall (args: task, kernel)"},
    {"finish", TraceCat::Task, TraceKind::Span,
     "task finalization: tracker wake-ups or finish_task"},
    {"retire", TraceCat::Task, TraceKind::Instant,
     "task fully retired (args: task)"},
    // sched
    {"sched_pop", TraceCat::Sched, TraceKind::Span,
     "ready-pool / hardware-queue pop segment (args: task, or "
     "empty=true on a miss)"},
    {"steal", TraceCat::Sched, TraceKind::Span,
     "Carbon steal attempt after an empty local pop"},
    {"get_ready", TraceCat::Sched, TraceKind::Span,
     "get_ready_task dispatch or post-finish drain segment"},
    {"sched.pool_depth", TraceCat::Sched, TraceKind::Counter,
     "software ready-pool depth after each push"},
    // core
    {"idle", TraceCat::Core, TraceKind::Span,
     "core parked with no runnable work"},
    {"core.idle_cores", TraceCat::Core, TraceKind::Counter,
     "number of currently parked cores"},
    // dmu
    {"dmu.tasks_in_flight", TraceCat::Dmu, TraceKind::Counter,
     "tasks resident in the DMU Task Table"},
    {"dmu.deps_in_flight", TraceCat::Dmu, TraceKind::Counter,
     "dependences resident in the DMU Dep Table"},
    {"dmu.ready_queue", TraceCat::Dmu, TraceKind::Counter,
     "DMU Ready Queue depth"},
    {"dmu.tat_live", TraceCat::Dmu, TraceKind::Counter,
     "live Task Alias Table entries"},
    {"dmu.dat_live", TraceCat::Dmu, TraceKind::Counter,
     "live Dependence Alias Table entries"},
    {"dmu.sla_used", TraceCat::Dmu, TraceKind::Counter,
     "successor list-array entries in use"},
    {"dmu.dla_used", TraceCat::Dmu, TraceKind::Counter,
     "dependence list-array entries in use"},
    {"dmu.rla_used", TraceCat::Dmu, TraceKind::Counter,
     "reader list-array entries in use"},
    {"dmu_blocked", TraceCat::Dmu, TraceKind::Instant,
     "a DMU ISA op blocked on a full structure (args: task, reason)"},
    // noc
    {"noc_round_trip", TraceCat::Noc, TraceKind::Instant,
     "request/response mesh round trip of one DMU op (args: latency, "
     "hops)"},
    // mem
    {"region_miss", TraceCat::Mem, TraceKind::Instant,
     "task footprint accesses missing in cache (args: l1_misses, "
     "l2_misses)"},
};

static_assert(std::size(pointInfos)
                  == static_cast<std::size_t>(TracePoint::NumPoints),
              "every TracePoint needs a TracePointInfo row");

} // namespace

const char *
traceCatName(TraceCat cat)
{
    for (const CatName &c : catNames)
        if (c.cat == cat)
            return c.name;
    return "?";
}

std::uint32_t
parseTraceCategories(const std::string &list)
{
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string tok = list.substr(pos, comma - pos);
        pos = comma + 1;
        // Trim surrounding whitespace ("task, dmu" from hand-written
        // campaign files).
        const std::size_t b = tok.find_first_not_of(" \t");
        const std::size_t e = tok.find_last_not_of(" \t");
        tok = b == std::string::npos ? ""
                                     : tok.substr(b, e - b + 1);
        if (tok.empty() || tok == "none")
            continue;
        if (tok == "all") {
            mask |= traceCatAll;
            continue;
        }
        bool found = false;
        for (const CatName &c : catNames) {
            if (tok == c.name) {
                mask |= static_cast<std::uint32_t>(c.cat);
                found = true;
                break;
            }
        }
        if (!found)
            throw std::invalid_argument(
                "unknown trace category '" + tok
                + "' (task, sched, dmu, noc, mem, core, all, none)");
    }
    return mask;
}

std::string
formatTraceCategories(std::uint32_t mask)
{
    if (mask == 0)
        return "none";
    if ((mask & traceCatAll) == traceCatAll)
        return "all";
    std::string out;
    for (const CatName &c : catNames) {
        if (mask & static_cast<std::uint32_t>(c.cat)) {
            if (!out.empty())
                out += ',';
            out += c.name;
        }
    }
    return out;
}

const TracePointInfo &
tracePointInfo(TracePoint p)
{
    return pointInfos[static_cast<std::size_t>(p)];
}

void
TraceBuffer::configure(const TraceConfig &cfg)
{
    mask_ = cfg.categories;
    cap_ = cfg.bufferEvents;
    clear();
}

void
TraceBuffer::clear()
{
    chunks_.clear();
    size_ = 0;
    dropped_ = 0;
}

void
TraceBuffer::append(const TraceRecord &r)
{
    if (size_ >= cap_) {
        ++dropped_;
        return;
    }
    if (chunks_.empty() || chunks_.back().size() == chunkSize) {
        chunks_.emplace_back();
        chunks_.back().reserve(chunkSize);
    }
    chunks_.back().push_back(r);
    ++size_;
}

std::uint64_t
TraceBuffer::digest() const
{
    // FNV-1a over the record fields (not raw struct bytes, so the
    // digest is layout- and padding-independent).
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    forEach([&](const TraceRecord &r) {
        mix(r.tick);
        mix((static_cast<std::uint64_t>(r.a) << 32) | r.b);
        mix((static_cast<std::uint64_t>(r.dur) << 32)
            | (static_cast<std::uint64_t>(r.point) << 16) | r.core);
    });
    return h;
}

} // namespace tdm::sim
