/**
 * @file
 * DMU configuration and storage geometry.
 *
 * Bit accounting follows Section III-B and Table III of the paper:
 * internal task/dependence IDs are log2(table entries) bits (11 for 2048
 * entries), list-array pointers are log2(list entries) bits (10 for
 * 1024), the alias tables store full 64-bit addresses plus the internal
 * ID, and the Task Table stores a 48-bit canonical descriptor address
 * plus counts and list pointers. With the paper's sizes this reproduces
 * Table III exactly: 23 KB + 5.25 KB + 2x18.75 KB + 3x12.25 KB +
 * 2.75 KB = 105.25 KB.
 */

#ifndef TDM_DMU_GEOMETRY_HH
#define TDM_DMU_GEOMETRY_HH

#include <cstdint>
#include <vector>

#include "power/cacti_model.hh"
#include "sim/types.hh"

namespace tdm::dmu {

/** Hardware-internal task identifier (index into the Task Table). */
using TaskHwId = std::uint16_t;

/** Hardware-internal dependence identifier. */
using DepHwId = std::uint16_t;

/** Sentinel id ("all ones", as the paper encodes invalid elements). */
constexpr std::uint16_t invalidHwId = 0xffff;

/** Sizing and timing parameters of the DMU (defaults follow Table I). */
struct DmuConfig
{
    unsigned tatEntries = 2048;
    unsigned tatAssoc = 8;
    unsigned datEntries = 2048;
    unsigned datAssoc = 8;
    unsigned slaEntries = 1024; ///< successor list array
    unsigned dlaEntries = 1024; ///< dependence list array
    unsigned rlaEntries = 1024; ///< reader list array
    unsigned elemsPerEntry = 8; ///< ids per list-array entry
    unsigned readyQueueEntries = 2048;

    /** Access latency of every DMU SRAM structure, cycles. */
    unsigned accessCycles = 1;

    /**
     * Dynamic index-bit selection for the DAT (Section III-B1): the set
     * index starts at bit log2(dependence size). When false, the index
     * starts at staticIndexBit (Figure 11's static variants).
     */
    bool dynamicDatIndex = true;
    unsigned staticDatIndexBit = 0;

    /** Task Table size is tied to TAT size, Dependence Table to DAT. */
    unsigned taskTableEntries() const { return tatEntries; }
    unsigned depTableEntries() const { return datEntries; }

    unsigned taskIdBits() const { return sim::bitsFor(tatEntries); }
    unsigned depIdBits() const { return sim::bitsFor(datEntries); }
    unsigned slaPtrBits() const { return sim::bitsFor(slaEntries); }
    unsigned dlaPtrBits() const { return sim::bitsFor(dlaEntries); }
    unsigned rlaPtrBits() const { return sim::bitsFor(rlaEntries); }
};

/** Per-structure SRAM specs for area/energy estimation (Table III). */
std::vector<pwr::SramSpec> sramSpecs(const DmuConfig &cfg);

/** Total storage in KB across all structures. */
double totalStorageKB(const DmuConfig &cfg);

/** Total area in mm^2 with the fitted 22nm model. */
double totalAreaMm2(const DmuConfig &cfg);

/** Total leakage in mW. */
double totalLeakageMw(const DmuConfig &cfg);

} // namespace tdm::dmu

#endif // TDM_DMU_GEOMETRY_HH
