#include "dmu/ready_queue.hh"

#include "sim/logging.hh"

namespace tdm::dmu {

ReadyQueue::ReadyQueue(unsigned capacity)
    : capacity_(capacity), fifo_(capacity)
{
    if (capacity_ == 0)
        sim::fatal("ready queue capacity must be nonzero");
}

bool
ReadyQueue::push(TaskHwId id)
{
    if (full())
        return false;
    fifo_.push_back(id);
    peak_ = std::max(peak_, fifo_.size());
    return true;
}

TaskHwId
ReadyQueue::pop()
{
    if (fifo_.empty())
        return invalidHwId;
    TaskHwId id = fifo_.front();
    fifo_.pop_front();
    return id;
}

} // namespace tdm::dmu
