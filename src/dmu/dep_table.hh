/**
 * @file
 * The DMU Dependence Table: last-writer task id and reader-list pointer
 * per in-flight dependence (Figure 4 of the paper).
 */

#ifndef TDM_DMU_DEP_TABLE_HH
#define TDM_DMU_DEP_TABLE_HH

#include <cstdint>
#include <vector>

#include "dmu/geometry.hh"
#include "dmu/list_array.hh"

namespace tdm::dmu {

/** One Dependence Table entry. */
struct DepEntry
{
    TaskHwId lastWriter = invalidHwId; ///< all-ones = invalid
    ListHead readerList = invalidHwId;
    bool valid = false;

    bool hasWriter() const { return lastWriter != invalidHwId; }
};

/**
 * Direct-access dependence information store.
 */
class DepTable
{
  public:
    explicit DepTable(unsigned entries);

    DepEntry &operator[](DepHwId id);
    const DepEntry &operator[](DepHwId id) const;

    void init(DepHwId id, ListHead reader_list);
    void free(DepHwId id);

    unsigned live() const { return live_; }
    unsigned capacity() const {
        return static_cast<unsigned>(entries_.size());
    }

  private:
    std::vector<DepEntry> entries_;
    unsigned live_ = 0;
};

} // namespace tdm::dmu

#endif // TDM_DMU_DEP_TABLE_HH
