#include "dmu/task_table.hh"

#include "sim/logging.hh"

namespace tdm::dmu {

TaskTable::TaskTable(unsigned entries)
{
    entries_.resize(entries);
}

TaskEntry &
TaskTable::operator[](TaskHwId id)
{
    if (id >= entries_.size())
        sim::panic("task table: id ", id, " out of range");
    return entries_[id];
}

const TaskEntry &
TaskTable::operator[](TaskHwId id) const
{
    if (id >= entries_.size())
        sim::panic("task table: id ", id, " out of range");
    return entries_[id];
}

void
TaskTable::init(TaskHwId id, std::uint64_t desc_addr, ListHead succ_list,
                ListHead dep_list)
{
    TaskEntry &e = (*this)[id];
    if (e.valid)
        sim::panic("task table: double init of id ", id);
    e = TaskEntry{desc_addr, 0, 0, succ_list, dep_list, true, false};
    ++live_;
}

void
TaskTable::free(TaskHwId id)
{
    TaskEntry &e = (*this)[id];
    if (!e.valid)
        sim::panic("task table: free of invalid id ", id);
    e.valid = false;
    --live_;
}

} // namespace tdm::dmu
