/**
 * @file
 * The DMU Ready Queue: a hardware FIFO of internal task ids that have
 * become ready (all predecessors satisfied).
 */

#ifndef TDM_DMU_READY_QUEUE_HH
#define TDM_DMU_READY_QUEUE_HH

#include <cstdint>

#include "dmu/geometry.hh"
#include "sim/fixed_ring.hh"

namespace tdm::dmu {

/**
 * Bounded FIFO of task ids over a fixed ring — the hardware FIFO it
 * models is a fixed SRAM, and the ring keeps push/pop allocation-free.
 */
class ReadyQueue
{
  public:
    explicit ReadyQueue(unsigned capacity);

    bool empty() const { return fifo_.empty(); }
    bool full() const { return fifo_.full(); }
    std::size_t size() const { return fifo_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Push a ready task id. @return false if the queue is full. */
    bool push(TaskHwId id);

    /** Pop the oldest ready task id; invalidHwId when empty. */
    TaskHwId pop();

    /** High-water mark. */
    std::size_t peakSize() const { return peak_; }

  private:
    unsigned capacity_;
    sim::FixedRing<TaskHwId> fifo_;
    std::size_t peak_ = 0;
};

} // namespace tdm::dmu

#endif // TDM_DMU_READY_QUEUE_HH
