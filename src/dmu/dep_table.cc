#include "dmu/dep_table.hh"

#include "sim/logging.hh"

namespace tdm::dmu {

DepTable::DepTable(unsigned entries)
{
    entries_.resize(entries);
}

DepEntry &
DepTable::operator[](DepHwId id)
{
    if (id >= entries_.size())
        sim::panic("dep table: id ", id, " out of range");
    return entries_[id];
}

const DepEntry &
DepTable::operator[](DepHwId id) const
{
    if (id >= entries_.size())
        sim::panic("dep table: id ", id, " out of range");
    return entries_[id];
}

void
DepTable::init(DepHwId id, ListHead reader_list)
{
    DepEntry &e = (*this)[id];
    if (e.valid)
        sim::panic("dep table: double init of id ", id);
    e = DepEntry{invalidHwId, reader_list, true};
    ++live_;
}

void
DepTable::free(DepHwId id)
{
    DepEntry &e = (*this)[id];
    if (!e.valid)
        sim::panic("dep table: free of invalid id ", id);
    e.valid = false;
    --live_;
}

} // namespace tdm::dmu
