#include "dmu/list_array.hh"

#include "sim/logging.hh"

namespace tdm::dmu {

ListArray::ListArray(std::string name, unsigned entries,
                     unsigned elems_per_entry)
    : name_(std::move(name)), entries_(entries), elemsPer_(elems_per_entry)
{
    if (entries_ == 0 || elemsPer_ == 0)
        sim::fatal("list array ", name_, ": bad geometry");
    pool_.resize(entries_);
    for (unsigned i = 0; i < entries_; ++i) {
        pool_[i].slots.assign(elemsPer_, invalidHwId);
        pool_[i].next = static_cast<std::uint16_t>(i);
        freeEntries_.push_back(static_cast<std::uint16_t>(i));
    }
}

ListHead
ListArray::allocList()
{
    if (freeEntries_.empty())
        return invalidHwId;
    std::uint16_t e = freeEntries_.front();
    freeEntries_.pop_front();
    Entry &entry = pool_[e];
    entry.allocated = true;
    entry.next = e;
    std::fill(entry.slots.begin(), entry.slots.end(), invalidHwId);
    ++inUse_;
    peak_ = std::max(peak_, inUse_);
    return e;
}

unsigned
ListArray::chainLength(ListHead head) const
{
    unsigned n = 1;
    std::uint16_t cur = head;
    while (pool_[cur].next != cur) {
        cur = pool_[cur].next;
        ++n;
    }
    return n;
}

bool
ListArray::pushNeedsEntry(ListHead head) const
{
    return tailFreeSlots(head) == 0;
}

unsigned
ListArray::tailFreeSlots(ListHead head) const
{
    std::uint16_t cur = head;
    while (pool_[cur].next != cur)
        cur = pool_[cur].next;
    const Entry &tail = pool_[cur];
    unsigned free = 0;
    for (unsigned i = 0; i < elemsPer_; ++i)
        if (tail.slots[i] == invalidHwId)
            ++free;
    return free;
}

unsigned
ListArray::entriesNeededFor(ListHead head, unsigned pushes) const
{
    unsigned free = tailFreeSlots(head);
    if (pushes <= free)
        return 0;
    return (pushes - free + elemsPer_ - 1) / elemsPer_;
}

bool
ListArray::push(ListHead head, std::uint16_t value, unsigned &accesses)
{
    if (head == invalidHwId || !pool_[head].allocated)
        sim::panic("list array ", name_, ": push to invalid list");
    // Walk to the tail; one SRAM access per chain entry.
    std::uint16_t cur = head;
    ++accesses;
    while (pool_[cur].next != cur) {
        cur = pool_[cur].next;
        ++accesses;
    }
    Entry &tail = pool_[cur];
    for (unsigned i = 0; i < elemsPer_; ++i) {
        if (tail.slots[i] == invalidHwId) {
            tail.slots[i] = value;
            return true; // write folded into the tail access
        }
    }
    // Need a continuation entry.
    if (freeEntries_.empty())
        return false;
    std::uint16_t e = freeEntries_.front();
    freeEntries_.pop_front();
    Entry &cont = pool_[e];
    cont.allocated = true;
    cont.next = e;
    std::fill(cont.slots.begin(), cont.slots.end(), invalidHwId);
    cont.slots[0] = value;
    tail.next = e;
    ++inUse_;
    peak_ = std::max(peak_, inUse_);
    ++accesses; // write of the new entry
    return true;
}

unsigned
ListArray::forEach(ListHead head,
                   const std::function<void(std::uint16_t)> &fn) const
{
    if (head == invalidHwId)
        return 0;
    unsigned accesses = 0;
    std::uint16_t cur = head;
    while (true) {
        const Entry &e = pool_[cur];
        ++accesses;
        for (unsigned i = 0; i < elemsPer_; ++i)
            if (e.slots[i] != invalidHwId)
                fn(e.slots[i]);
        if (e.next == cur)
            break;
        cur = e.next;
    }
    return accesses;
}

unsigned
ListArray::size(ListHead head) const
{
    unsigned n = 0;
    forEach(head, [&](std::uint16_t) { ++n; });
    return n;
}

unsigned
ListArray::remove(ListHead head, std::uint16_t value)
{
    if (head == invalidHwId)
        return 0;
    unsigned accesses = 0;
    std::uint16_t cur = head;
    while (true) {
        Entry &e = pool_[cur];
        ++accesses;
        for (unsigned i = 0; i < elemsPer_; ++i) {
            if (e.slots[i] == value) {
                e.slots[i] = invalidHwId;
                return accesses;
            }
        }
        if (e.next == cur)
            break;
        cur = e.next;
    }
    return accesses;
}

unsigned
ListArray::clear(ListHead head)
{
    if (head == invalidHwId)
        return 0;
    unsigned accesses = 1;
    Entry &h = pool_[head];
    std::uint16_t cur = h.next;
    // Free continuation entries.
    while (cur != head) {
        Entry &e = pool_[cur];
        std::uint16_t next = e.next;
        bool last = next == cur;
        e.allocated = false;
        e.next = cur;
        freeEntries_.push_back(cur);
        --inUse_;
        ++accesses;
        if (last)
            break;
        cur = next;
    }
    std::fill(h.slots.begin(), h.slots.end(), invalidHwId);
    h.next = head;
    return accesses;
}

unsigned
ListArray::freeList(ListHead head)
{
    if (head == invalidHwId)
        return 0;
    unsigned accesses = clear(head);
    Entry &h = pool_[head];
    h.allocated = false;
    freeEntries_.push_back(head);
    --inUse_;
    return accesses;
}

} // namespace tdm::dmu
