#include "dmu/list_array.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tdm::dmu {

ListArray::ListArray(std::string name, unsigned entries,
                     unsigned elems_per_entry)
    : name_(std::move(name)), entries_(entries), elemsPer_(elems_per_entry)
{
    if (entries_ == 0 || elemsPer_ == 0)
        sim::fatal("list array ", name_, ": bad geometry");
    slots_.assign(static_cast<std::size_t>(entries_) * elemsPer_,
                  invalidHwId);
    next_.resize(entries_);
    allocated_.assign(entries_, 0);
    freeEntries_.reset(entries_);
    for (unsigned i = 0; i < entries_; ++i) {
        next_[i] = static_cast<std::uint16_t>(i);
        freeEntries_.push_back(static_cast<std::uint16_t>(i));
    }
}

void
ListArray::resetEntry(std::uint16_t entry)
{
    std::uint16_t *s = slotsOf(entry);
    std::fill(s, s + elemsPer_, invalidHwId);
    next_[entry] = entry;
}

ListHead
ListArray::allocList()
{
    if (freeEntries_.empty())
        return invalidHwId;
    std::uint16_t e = freeEntries_.pop_front();
    allocated_[e] = 1;
    resetEntry(e);
    ++inUse_;
    peak_ = std::max(peak_, inUse_);
    return e;
}

unsigned
ListArray::chainLength(ListHead head) const
{
    unsigned n = 1;
    std::uint16_t cur = head;
    while (next_[cur] != cur) {
        cur = next_[cur];
        ++n;
    }
    return n;
}

bool
ListArray::pushNeedsEntry(ListHead head) const
{
    return tailFreeSlots(head) == 0;
}

unsigned
ListArray::tailFreeSlots(ListHead head) const
{
    std::uint16_t cur = head;
    while (next_[cur] != cur)
        cur = next_[cur];
    const std::uint16_t *tail = slotsOf(cur);
    unsigned free = 0;
    for (unsigned i = 0; i < elemsPer_; ++i)
        if (tail[i] == invalidHwId)
            ++free;
    return free;
}

unsigned
ListArray::entriesNeededFor(ListHead head, unsigned pushes) const
{
    unsigned free = tailFreeSlots(head);
    if (pushes <= free)
        return 0;
    return (pushes - free + elemsPer_ - 1) / elemsPer_;
}

bool
ListArray::push(ListHead head, std::uint16_t value, unsigned &accesses)
{
    if (head == invalidHwId || !allocated_[head])
        sim::panic("list array ", name_, ": push to invalid list");
    // Walk to the tail; one SRAM access per chain entry.
    std::uint16_t cur = head;
    ++accesses;
    while (next_[cur] != cur) {
        cur = next_[cur];
        ++accesses;
    }
    std::uint16_t *tail = slotsOf(cur);
    for (unsigned i = 0; i < elemsPer_; ++i) {
        if (tail[i] == invalidHwId) {
            tail[i] = value;
            return true; // write folded into the tail access
        }
    }
    // Need a continuation entry.
    if (freeEntries_.empty())
        return false;
    std::uint16_t e = freeEntries_.pop_front();
    allocated_[e] = 1;
    resetEntry(e);
    slotsOf(e)[0] = value;
    next_[cur] = e;
    ++inUse_;
    peak_ = std::max(peak_, inUse_);
    ++accesses; // write of the new entry
    return true;
}

unsigned
ListArray::size(ListHead head) const
{
    unsigned n = 0;
    forEach(head, [&](std::uint16_t) { ++n; });
    return n;
}

unsigned
ListArray::remove(ListHead head, std::uint16_t value)
{
    if (head == invalidHwId)
        return 0;
    unsigned accesses = 0;
    std::uint16_t cur = head;
    while (true) {
        ++accesses;
        std::uint16_t *s = slotsOf(cur);
        for (unsigned i = 0; i < elemsPer_; ++i) {
            if (s[i] == value) {
                s[i] = invalidHwId;
                return accesses;
            }
        }
        if (next_[cur] == cur)
            break;
        cur = next_[cur];
    }
    return accesses;
}

unsigned
ListArray::clear(ListHead head)
{
    if (head == invalidHwId)
        return 0;
    unsigned accesses = 1;
    std::uint16_t cur = next_[head];
    // Free continuation entries.
    while (cur != head) {
        std::uint16_t next = next_[cur];
        bool last = next == cur;
        allocated_[cur] = 0;
        next_[cur] = cur;
        freeEntries_.push_back(cur);
        --inUse_;
        ++accesses;
        if (last)
            break;
        cur = next;
    }
    std::uint16_t *s = slotsOf(head);
    std::fill(s, s + elemsPer_, invalidHwId);
    next_[head] = head;
    return accesses;
}

unsigned
ListArray::freeList(ListHead head)
{
    if (head == invalidHwId)
        return 0;
    unsigned accesses = clear(head);
    allocated_[head] = 0;
    freeEntries_.push_back(head);
    --inUse_;
    return accesses;
}

} // namespace tdm::dmu
