/**
 * @file
 * The DMU Task Table: direct-mapped SRAM indexed by internal task id,
 * holding descriptor address, predecessor/successor counts and the list
 * pointers (Figure 4 of the paper).
 */

#ifndef TDM_DMU_TASK_TABLE_HH
#define TDM_DMU_TASK_TABLE_HH

#include <cstdint>
#include <vector>

#include "dmu/geometry.hh"
#include "dmu/list_array.hh"

namespace tdm::dmu {

/** One Task Table entry. */
struct TaskEntry
{
    std::uint64_t descAddr = 0;
    std::uint32_t predCount = 0;
    std::uint32_t succCount = 0;
    ListHead succList = invalidHwId;
    ListHead depList = invalidHwId;
    bool valid = false;

    /**
     * Set once the runtime has finished sending the task's dependences
     * (commit_task). A task whose predecessor count drops to zero
     * before it is committed must not enter the Ready Queue yet, or it
     * could be scheduled while its dependence list is still being
     * built.
     */
    bool committed = false;
};

/**
 * Direct-access task information store.
 */
class TaskTable
{
  public:
    explicit TaskTable(unsigned entries);

    TaskEntry &operator[](TaskHwId id);
    const TaskEntry &operator[](TaskHwId id) const;

    /** Initialize an entry for a new task. */
    void init(TaskHwId id, std::uint64_t desc_addr, ListHead succ_list,
              ListHead dep_list);

    /** Invalidate an entry. */
    void free(TaskHwId id);

    unsigned live() const { return live_; }
    unsigned capacity() const {
        return static_cast<unsigned>(entries_.size());
    }

  private:
    std::vector<TaskEntry> entries_;
    unsigned live_ = 0;
};

} // namespace tdm::dmu

#endif // TDM_DMU_TASK_TABLE_HH
