/**
 * @file
 * The Dependence Management Unit (Section III of the paper).
 *
 * Functional + timing model of the DMU: maintains the TAT/DAT alias
 * tables, Task and Dependence Tables, the three list arrays and the
 * Ready Queue, and executes the four ISA operations. Every operation
 * reports the number of SRAM accesses a hardware implementation would
 * perform (list walks cost one access per chained entry), which the
 * machine multiplies by the structure access latency to obtain the DMU
 * processing time.
 *
 * Capacity semantics follow Section III-D: an operation that needs an
 * unavailable entry blocks (no partial side effects here: the needed
 * resources are pre-checked exactly) until a finish_task frees space.
 * finish_task and get_ready_task never block, which guarantees forward
 * progress.
 */

#ifndef TDM_DMU_DMU_HH
#define TDM_DMU_DMU_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "dmu/alias_table.hh"
#include "dmu/dep_table.hh"
#include "dmu/geometry.hh"
#include "dmu/list_array.hh"
#include "dmu/ready_queue.hh"
#include "dmu/task_table.hh"
#include "sim/metrics.hh"

namespace tdm::sim {
class Snapshot;
} // namespace tdm::sim

namespace tdm::dmu {

/** Why an operation blocked. */
enum class BlockReason
{
    None,
    TatFull,     ///< TAT set conflict or no free task id
    DatFull,     ///< DAT set conflict or no free dependence id
    SlaFull,
    DlaFull,
    RlaFull,
};

const char *toString(BlockReason r);

/** Cumulative SRAM accesses per structure (for the energy model). */
struct DmuAccessCounts
{
    std::uint64_t tat = 0, dat = 0;
    std::uint64_t taskTable = 0, depTable = 0;
    std::uint64_t sla = 0, dla = 0, rla = 0;
    std::uint64_t readyQueue = 0;

    std::uint64_t
    total() const
    {
        return tat + dat + taskTable + depTable + sla + dla + rla
             + readyQueue;
    }
};

/** Result of a DMU operation. */
struct DmuResult
{
    bool blocked = false;
    BlockReason reason = BlockReason::None;
    unsigned accesses = 0;

    /** Tasks whose predecessor count reached zero (finish_task). */
    std::vector<std::uint64_t> readyDescAddrs;
};

/** Payload of get_ready_task. */
struct ReadyTaskInfo
{
    std::uint64_t descAddr = 0;
    std::uint32_t numSuccessors = 0;
};

/**
 * The DMU model.
 */
class Dmu
{
  public:
    explicit Dmu(const DmuConfig &cfg);

    /**
     * create_task(task_desc). @p pid is the OS process tag of the
     * multiprogramming extension (Section III-D); single-process
     * callers use the default.
     */
    DmuResult createTask(std::uint64_t desc_addr, std::uint32_t pid = 0);

    /** add_dependence(task_desc, dep_addr, size, direction). */
    DmuResult addDependence(std::uint64_t desc_addr, std::uint64_t dep_addr,
                            std::uint64_t size_bytes, bool is_output,
                            std::uint32_t pid = 0);

    /**
     * commit_task(task_desc): the runtime signals that all of the
     * task's dependences have been registered. If the task has no
     * unresolved predecessors it enters the Ready Queue now. Never
     * blocks. (The paper folds this into the creation sequence; we
     * model it as an explicit cheap operation, see DESIGN.md.)
     */
    DmuResult commitTask(std::uint64_t desc_addr, std::uint32_t pid = 0);

    /** finish_task(task_desc). Never blocks. */
    DmuResult finishTask(std::uint64_t desc_addr, std::uint32_t pid = 0);

    /**
     * get_ready_task() -> (task_desc, #succ). Never blocks.
     * @param accesses SRAM accesses performed.
     */
    std::optional<ReadyTaskInfo> getReadyTask(unsigned &accesses);

    /** Tasks currently tracked. */
    unsigned tasksInFlight() const { return taskTable_.live(); }

    /** Dependences currently tracked. */
    unsigned depsInFlight() const { return depTable_.live(); }

    /** Ready tasks queued. */
    std::size_t readyCount() const { return readyQueue_.size(); }

    /** Monotonic counter bumped whenever capacity is released. */
    std::uint64_t capacityEpoch() const { return capacityEpoch_; }

    const DmuAccessCounts &accessCounts() const { return counts_; }
    const DmuConfig &config() const { return cfg_; }

    const AliasTable &tat() const { return tat_; }
    const AliasTable &dat() const { return dat_; }
    AliasTable &dat() { return dat_; }
    const TaskTable &taskTable() const { return taskTable_; }
    const ListArray &sla() const { return sla_; }
    const ListArray &dla() const { return dla_; }
    const ListArray &rla() const { return rla_; }

    /** Successor count of an in-flight task (tests/verification). */
    std::uint32_t succCountOf(std::uint64_t desc_addr);

    /** Blocked-operation statistics. */
    std::uint64_t blockedOps() const { return blockedOps_; }

    /** Register the DMU's metric tree under @p ctx's scope ("dmu"):
     *  operation/access counters plus tat/dat sub-scopes. */
    void regMetrics(sim::MetricContext ctx);

    /** Capture the complete DMU table state (TAT/DAT alias tables,
     *  task/dep tables, list arrays, ready queue, and counters) for
     *  warm-start forking. */
    void snapshotState(sim::Snapshot &s);

  private:
    TaskHwId requireTask(std::uint64_t desc_addr, std::uint32_t pid,
                         unsigned &accesses);

    DmuConfig cfg_;
    AliasTable tat_;
    AliasTable dat_;
    TaskTable taskTable_;
    DepTable depTable_;
    ListArray sla_;
    ListArray dla_;
    ListArray rla_;
    ReadyQueue readyQueue_;

    /**
     * Shadow metadata: address/size of each live dependence id, needed
     * to invalidate the DAT entry on cleanup. A hardware DMU keeps the
     * address in the DAT entry itself (where we account its bits); the
     * shadow copy here is a modelling convenience, not extra storage.
     */
    std::vector<std::uint64_t> depAddrOf_;
    std::vector<std::uint64_t> depSizeOf_;
    std::vector<std::uint32_t> depPidOf_;
    std::vector<std::uint32_t> taskPidOf_;

    DmuAccessCounts counts_;
    std::uint64_t capacityEpoch_ = 0;
    std::uint64_t blockedOps_ = 0;

    /**
     * Reusable scratch buffer for hardware-id list snapshots taken
     * during add_dependence / finish_task list walks. Hoisted out of
     * the per-operation hot path so steady-state DMU traffic performs
     * no heap allocation (the simulator's, not the modelled DMU's).
     */
    std::vector<std::uint16_t> scratchIds_;

    /**
     * Reusable (list head, push count) scratch for add_dependence's
     * exact SLA capacity pre-check. The handful of target lists per
     * operation makes a linear scan cheaper than the per-call
     * std::unordered_map this replaces — and allocation-free.
     */
    std::vector<std::pair<ListHead, unsigned>> pushScratch_;

    sim::Scalar statOps_, statBlocked_, statAccesses_;
};

} // namespace tdm::dmu

#endif // TDM_DMU_DMU_HH
