#include "dmu/dmu.hh"

#include "sim/assert.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace tdm::dmu {

namespace {

#if SIM_INVARIANTS_ENABLED
/**
 * DMU occupancy accounting, re-verified after every mutating ISA op in
 * debug/sanitizer builds. Every live task owns exactly one TAT
 * translation and every live dependence one DAT translation, so the
 * alias-table and table live counts must track each other exactly —
 * these are the same numbers the occupancy trace counters and the
 * capacity pre-checks read, so a drift here silently corrupts both
 * blocking behavior and exported occupancy.
 */
void
checkOccupancy(const Dmu &dmu)
{
    SIM_ASSERT(dmu.tat().liveEntries() == dmu.taskTable().live(),
               "TAT live ", dmu.tat().liveEntries(),
               " != Task Table live ", dmu.taskTable().live());
    SIM_ASSERT(dmu.dat().liveEntries() == dmu.depsInFlight(),
               "DAT live ", dmu.dat().liveEntries(),
               " != Dep Table live ", dmu.depsInFlight());
    SIM_ASSERT(dmu.sla().entriesInUse() <= dmu.sla().capacity(),
               "SLA occupancy over capacity");
    SIM_ASSERT(dmu.dla().entriesInUse() <= dmu.dla().capacity(),
               "DLA occupancy over capacity");
    SIM_ASSERT(dmu.rla().entriesInUse() <= dmu.rla().capacity(),
               "RLA occupancy over capacity");
    SIM_ASSERT(dmu.readyCount() <= dmu.taskTable().capacity(),
               "more ready tasks than Task Table entries");
}
#else
void checkOccupancy(const Dmu &) {}
#endif

} // namespace

const char *
toString(BlockReason r)
{
    switch (r) {
      case BlockReason::None: return "none";
      case BlockReason::TatFull: return "tat_full";
      case BlockReason::DatFull: return "dat_full";
      case BlockReason::SlaFull: return "sla_full";
      case BlockReason::DlaFull: return "dla_full";
      case BlockReason::RlaFull: return "rla_full";
    }
    return "?";
}

namespace {
/** Index granularity used for descriptor addresses in the TAT. */
constexpr std::uint64_t descIndexBytes = 64;
} // namespace

Dmu::Dmu(const DmuConfig &cfg)
    : cfg_(cfg),
      tat_("tat", cfg.tatEntries, cfg.tatAssoc, true, 0),
      dat_("dat", cfg.datEntries, cfg.datAssoc, cfg.dynamicDatIndex,
           cfg.staticDatIndexBit),
      taskTable_(cfg.taskTableEntries()),
      depTable_(cfg.depTableEntries()),
      sla_("sla", cfg.slaEntries, cfg.elemsPerEntry),
      dla_("dla", cfg.dlaEntries, cfg.elemsPerEntry),
      rla_("rla", cfg.rlaEntries, cfg.elemsPerEntry),
      readyQueue_(cfg.readyQueueEntries)
{
    depAddrOf_.assign(cfg.depTableEntries(), 0);
    depSizeOf_.assign(cfg.depTableEntries(), 0);
    depPidOf_.assign(cfg.depTableEntries(), 0);
    taskPidOf_.assign(cfg.taskTableEntries(), 0);
}

TaskHwId
Dmu::requireTask(std::uint64_t desc_addr, std::uint32_t pid,
                 unsigned &accesses)
{
    auto id = tat_.lookup(desc_addr, descIndexBytes, pid);
    ++accesses;
    ++counts_.tat;
    if (!id)
        sim::panic("DMU: unknown task descriptor 0x", std::hex, desc_addr);
    return static_cast<TaskHwId>(*id);
}

DmuResult
Dmu::createTask(std::uint64_t desc_addr, std::uint32_t pid)
{
    DmuResult res;
    ++statOps_;

    // Pre-check capacity: TAT entry + one SLA list + one DLA list.
    if (!tat_.canInsert(desc_addr, descIndexBytes)) {
        res.blocked = true;
        res.reason = BlockReason::TatFull;
        ++blockedOps_;
        ++statBlocked_;
        return res;
    }
    if (!sla_.hasFree(1)) {
        res.blocked = true;
        res.reason = BlockReason::SlaFull;
        ++blockedOps_;
        ++statBlocked_;
        return res;
    }
    if (!dla_.hasFree(1)) {
        res.blocked = true;
        res.reason = BlockReason::DlaFull;
        ++blockedOps_;
        ++statBlocked_;
        return res;
    }

    auto probe = tat_.lookup(desc_addr, descIndexBytes, pid);
    ++res.accesses;
    ++counts_.tat;
    if (probe)
        sim::panic("DMU: create_task of live descriptor 0x", std::hex,
                   desc_addr);

    auto ins = tat_.insert(desc_addr, descIndexBytes, pid);
    ++res.accesses;
    ++counts_.tat;
    if (ins.status != AliasInsertStatus::Ok)
        sim::panic("DMU: TAT insert failed after capacity check");

    ListHead succ = sla_.allocList();
    ListHead deps = dla_.allocList();
    res.accesses += 2;
    ++counts_.sla;
    ++counts_.dla;
    taskTable_.init(static_cast<TaskHwId>(ins.id), desc_addr, succ, deps);
    taskPidOf_[ins.id] = pid;
    ++res.accesses;
    ++counts_.taskTable;
    statAccesses_ += res.accesses;
    checkOccupancy(*this);
    return res;
}

DmuResult
Dmu::addDependence(std::uint64_t desc_addr, std::uint64_t dep_addr,
                   std::uint64_t size_bytes, bool is_output,
                   std::uint32_t pid)
{
    DmuResult res;
    ++statOps_;

    // ---- Locate the task (non-destructive; retried ops redo it). ----
    auto tid_probe = tat_.lookup(desc_addr, descIndexBytes, pid);
    if (!tid_probe)
        sim::panic("DMU: add_dependence for unknown task");
    TaskHwId task_id = static_cast<TaskHwId>(*tid_probe);
    TaskEntry &task = taskTable_[task_id];

    // ---- Exact capacity pre-check (no side effects if blocked). ----
    auto did_probe = dat_.lookup(dep_addr, size_bytes, pid);
    bool dat_miss = !did_probe;
    if (dat_miss) {
        if (!dat_.canInsert(dep_addr, size_bytes)) {
            res.blocked = true;
            res.reason = BlockReason::DatFull;
            ++blockedOps_;
            ++statBlocked_;
            return res;
        }
        if (!rla_.hasFree(1)) {
            res.blocked = true;
            res.reason = BlockReason::RlaFull;
            ++blockedOps_;
            ++statBlocked_;
            return res;
        }
    }
    unsigned dla_needed = dla_.pushNeedsEntry(task.depList) ? 1 : 0;
    if (dla_needed > 0 && !dla_.hasFree(dla_needed)) {
        res.blocked = true;
        res.reason = BlockReason::DlaFull;
        ++blockedOps_;
        ++statBlocked_;
        return res;
    }
    unsigned sla_needed = 0;
    unsigned rla_needed = 0;
    if (!dat_miss) {
        const DepEntry &dep = depTable_[static_cast<DepHwId>(*did_probe)];
        // Exact SLA demand: group the successor-list pushes this
        // operation performs by target list (the same list can be
        // pushed several times, e.g. a reader registered twice).
        std::vector<std::pair<ListHead, unsigned>> &pushes = pushScratch_;
        pushes.clear();
        auto bump = [&](ListHead head) {
            for (auto &[h, n] : pushes) {
                if (h == head) {
                    ++n;
                    return;
                }
            }
            pushes.emplace_back(head, 1u);
        };
        if (dep.hasWriter() && dep.lastWriter != task_id)
            bump(taskTable_[dep.lastWriter].succList);
        if (is_output) {
            rla_.forEach(dep.readerList, [&](std::uint16_t r) {
                if (r != task_id)
                    bump(taskTable_[static_cast<TaskHwId>(r)].succList);
            });
        } else {
            if (rla_.pushNeedsEntry(dep.readerList))
                ++rla_needed;
        }
        for (const auto &[head, n] : pushes)
            sla_needed += sla_.entriesNeededFor(head, n);
    }
    if (sla_needed > 0 && !sla_.hasFree(sla_needed)) {
        res.blocked = true;
        res.reason = BlockReason::SlaFull;
        ++blockedOps_;
        ++statBlocked_;
        return res;
    }
    if (rla_needed > 0 && !rla_.hasFree(rla_needed)) {
        res.blocked = true;
        res.reason = BlockReason::RlaFull;
        ++blockedOps_;
        ++statBlocked_;
        return res;
    }

    // ---- Execute (Algorithm 1). ----
    ++res.accesses; // TAT lookup
    ++counts_.tat;
    ++res.accesses; // DAT lookup
    ++counts_.dat;

    DepHwId dep_id;
    if (dat_miss) {
        auto ins = dat_.insert(dep_addr, size_bytes, pid);
        if (ins.status != AliasInsertStatus::Ok)
            sim::panic("DMU: DAT insert failed after capacity check");
        dep_id = static_cast<DepHwId>(ins.id);
        ListHead readers = rla_.allocList();
        depTable_.init(dep_id, readers);
        depAddrOf_[dep_id] = dep_addr;
        depSizeOf_[dep_id] = size_bytes;
        depPidOf_[dep_id] = pid;
        res.accesses += 3; // DAT write, RLA alloc, DepTable init
        ++counts_.dat;
        ++counts_.rla;
        ++counts_.depTable;
    } else {
        dep_id = static_cast<DepHwId>(*did_probe);
        ++res.accesses; // DepTable read
        ++counts_.depTable;
    }
    DepEntry &dep = depTable_[dep_id];

    // Insert depID in the dependence list of taskID.
    unsigned acc = 0;
    if (!dla_.push(task.depList, dep_id, acc))
        sim::panic("DMU: DLA push failed after capacity check");
    res.accesses += acc;
    counts_.dla += acc;

    // Order after the last writer (RAW / WAW).
    if (dep.hasWriter() && dep.lastWriter != task_id) {
        TaskEntry &writer = taskTable_[dep.lastWriter];
        acc = 0;
        if (!sla_.push(writer.succList, task_id, acc))
            sim::panic("DMU: SLA push failed after capacity check");
        res.accesses += acc;
        counts_.sla += acc;
        ++writer.succCount;
        ++task.predCount;
        res.accesses += 2; // two Task Table updates
        counts_.taskTable += 2;
    }

    if (!is_output) {
        // Input: register as reader.
        acc = 0;
        if (!rla_.push(dep.readerList, task_id, acc))
            sim::panic("DMU: RLA push failed after capacity check");
        res.accesses += acc;
        counts_.rla += acc;
    } else {
        // Output: order after every reader (WAR), then become the
        // last writer.
        std::vector<std::uint16_t> &readers = scratchIds_;
        readers.clear();
        acc = rla_.forEach(dep.readerList, [&](std::uint16_t r) {
            readers.push_back(r);
        });
        res.accesses += acc;
        counts_.rla += acc;
        for (std::uint16_t r : readers) {
            if (r == task_id)
                continue;
            TaskEntry &reader = taskTable_[static_cast<TaskHwId>(r)];
            acc = 0;
            if (!sla_.push(reader.succList, task_id, acc))
                sim::panic("DMU: SLA push failed after capacity check");
            res.accesses += acc;
            counts_.sla += acc;
            ++reader.succCount;
            ++task.predCount;
            res.accesses += 2;
            counts_.taskTable += 2;
        }
        acc = rla_.clear(dep.readerList);
        res.accesses += acc;
        counts_.rla += acc;
        dep.lastWriter = task_id;
        ++res.accesses; // DepTable write
        ++counts_.depTable;
    }
    statAccesses_ += res.accesses;
    checkOccupancy(*this);
    return res;
}

DmuResult
Dmu::commitTask(std::uint64_t desc_addr, std::uint32_t pid)
{
    DmuResult res;
    ++statOps_;
    TaskHwId task_id = requireTask(desc_addr, pid, res.accesses);
    TaskEntry &task = taskTable_[task_id];
    ++res.accesses; // Task Table read-modify-write
    ++counts_.taskTable;
    if (task.committed)
        sim::panic("DMU: double commit of descriptor 0x", std::hex,
                   desc_addr);
    task.committed = true;
    if (task.predCount == 0) {
        if (!readyQueue_.push(task_id))
            sim::panic("DMU: ready queue overflow");
        ++res.accesses;
        ++counts_.readyQueue;
        res.readyDescAddrs.push_back(task.descAddr);
    }
    statAccesses_ += res.accesses;
    return res;
}

DmuResult
Dmu::finishTask(std::uint64_t desc_addr, std::uint32_t pid)
{
    DmuResult res;
    ++statOps_;

    TaskHwId task_id = requireTask(desc_addr, pid, res.accesses);
    TaskEntry &task = taskTable_[task_id];
    ++res.accesses; // Task Table read
    ++counts_.taskTable;

    // ---- Wake up successors (Algorithm 2, first loop). ----
    std::vector<std::uint16_t> &succs = scratchIds_;
    succs.clear();
    unsigned acc = sla_.forEach(task.succList, [&](std::uint16_t s) {
        succs.push_back(s);
    });
    res.accesses += acc;
    counts_.sla += acc;
    for (std::uint16_t s : succs) {
        TaskEntry &succ = taskTable_[static_cast<TaskHwId>(s)];
        if (succ.predCount == 0)
            sim::panic("DMU: predecessor underflow on task id ", s);
        --succ.predCount;
        ++res.accesses;
        ++counts_.taskTable;
        if (succ.predCount == 0 && succ.committed) {
            if (!readyQueue_.push(static_cast<TaskHwId>(s)))
                sim::panic("DMU: ready queue overflow");
            ++res.accesses;
            ++counts_.readyQueue;
            res.readyDescAddrs.push_back(succ.descAddr);
        }
    }

    // ---- Detach from dependences (Algorithm 2, second loop). ----
    // Reuses the scratch buffer: the successor loop above is done.
    std::vector<std::uint16_t> &deps = scratchIds_;
    deps.clear();
    acc = dla_.forEach(task.depList, [&](std::uint16_t d) {
        deps.push_back(d);
    });
    res.accesses += acc;
    counts_.dla += acc;
    for (std::uint16_t d : deps) {
        DepHwId dep_id = static_cast<DepHwId>(d);
        if (!depTable_[dep_id].valid)
            continue; // already freed via an earlier duplicate entry
        DepEntry &dep = depTable_[dep_id];
        ++res.accesses; // DepTable read
        ++counts_.depTable;
        acc = rla_.remove(dep.readerList, task_id);
        res.accesses += acc;
        counts_.rla += acc;
        if (dep.lastWriter == task_id) {
            dep.lastWriter = invalidHwId;
            ++res.accesses;
            ++counts_.depTable;
        }
        if (!dep.hasWriter() && rla_.size(dep.readerList) == 0) {
            acc = rla_.freeList(dep.readerList);
            res.accesses += acc;
            counts_.rla += acc;
            depTable_.free(dep_id);
            ++res.accesses;
            ++counts_.depTable;
            dat_.erase(depAddrOf_[dep_id], depSizeOf_[dep_id],
                       depPidOf_[dep_id]);
            ++res.accesses;
            ++counts_.dat;
        }
    }

    // ---- Free the task's own resources. ----
    acc = sla_.freeList(task.succList);
    res.accesses += acc;
    counts_.sla += acc;
    acc = dla_.freeList(task.depList);
    res.accesses += acc;
    counts_.dla += acc;
    taskTable_.free(task_id);
    ++res.accesses;
    ++counts_.taskTable;
    tat_.erase(desc_addr, descIndexBytes, pid);
    ++res.accesses;
    ++counts_.tat;

    ++capacityEpoch_;
    statAccesses_ += res.accesses;
    checkOccupancy(*this);
    return res;
}

std::optional<ReadyTaskInfo>
Dmu::getReadyTask(unsigned &accesses)
{
    ++statOps_;
    ++accesses;
    ++counts_.readyQueue;
    TaskHwId id = readyQueue_.pop();
    if (id == invalidHwId) {
        statAccesses_ += 1;
        return std::nullopt;
    }
    const TaskEntry &e = taskTable_[id];
    ++accesses;
    ++counts_.taskTable;
    statAccesses_ += 2;
    return ReadyTaskInfo{e.descAddr, e.succCount};
}

std::uint32_t
Dmu::succCountOf(std::uint64_t desc_addr)
{
    auto id = tat_.lookup(desc_addr, descIndexBytes, 0);
    if (!id)
        sim::panic("DMU: succCountOf unknown descriptor");
    return taskTable_[static_cast<TaskHwId>(*id)].succCount;
}

void
Dmu::regMetrics(sim::MetricContext ctx)
{
    ctx.counter("ops", &statOps_, "DMU operations processed");
    ctx.counter("blocked", &statBlocked_,
                "operations blocked on capacity");
    ctx.counter("accesses", &statAccesses_, "total SRAM accesses");

    // Per-structure SRAM traffic (what the energy model integrates).
    ctx.counter("task_table.accesses", &counts_.taskTable,
                "Task Table SRAM accesses");
    ctx.counter("dep_table.accesses", &counts_.depTable,
                "Dependence Table SRAM accesses");
    ctx.counter("sla.accesses", &counts_.sla,
                "Successor List Array SRAM accesses");
    ctx.counter("dla.accesses", &counts_.dla,
                "Dependence List Array SRAM accesses");
    ctx.counter("rla.accesses", &counts_.rla,
                "Reader List Array SRAM accesses");
    ctx.counter("ready_queue.accesses", &counts_.readyQueue,
                "Ready Queue SRAM accesses");

    ctx.gauge("tasks_in_flight",
              [this] { return static_cast<double>(tasksInFlight()); },
              "tasks currently tracked");
    ctx.gauge("deps_in_flight",
              [this] { return static_cast<double>(depsInFlight()); },
              "dependences currently tracked");
    ctx.gauge("ready",
              [this] { return static_cast<double>(readyCount()); },
              "ready tasks queued");

    sim::MetricContext tat_ctx = ctx.scope("tat");
    tat_ctx.counter("accesses", &counts_.tat, "TAT SRAM accesses");
    tat_.regMetrics(tat_ctx);
    sim::MetricContext dat_ctx = ctx.scope("dat");
    dat_ctx.counter("accesses", &counts_.dat, "DAT SRAM accesses");
    dat_.regMetrics(dat_ctx);
}

void
Dmu::snapshotState(sim::Snapshot &s)
{
    // Every member is a value type (tables index by id, never by
    // pointer), so one whole-object slab copy captures the TAT/DAT,
    // task/dep tables, list arrays, ready queue, shadow vectors,
    // and counters in a single assignment on restore.
    s.capture(*this);
}

} // namespace tdm::dmu
