/**
 * @file
 * Generic list array (Successor / Dependence / Reader List Arrays).
 *
 * An SRAM whose entries hold a fixed number of element slots plus a Next
 * pointer, inspired by UNIX inodes (Figure 5 of the paper): a list
 * starts at a head entry and continues through chained entries. Invalid
 * slots hold all-ones; a Next field pointing at the entry itself marks
 * the end of the chain.
 *
 * Every operation reports the number of SRAM accesses a hardware walk
 * would make, which the DMU converts into cycles.
 *
 * Storage mirrors the modelled SRAM: one contiguous slot slab (entries
 * x elems-per-entry) plus parallel next/allocated arrays, with a fixed
 * ring recycling free entries in FIFO order. List walks visit
 * consecutive memory and alloc/free never touch the heap — this is on
 * the DMU's per-operation hot path. forEach is a template so walk
 * callbacks inline instead of paying a std::function dispatch per
 * chained entry.
 */

#ifndef TDM_DMU_LIST_ARRAY_HH
#define TDM_DMU_LIST_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dmu/geometry.hh"
#include "sim/fixed_ring.hh"

namespace tdm::dmu {

/** Head index of a list in a list array. */
using ListHead = std::uint16_t;

/**
 * One list array.
 */
class ListArray
{
  public:
    ListArray(std::string name, unsigned entries, unsigned elems_per_entry);

    /** Allocate an empty list. @return head entry, or invalidHwId. */
    ListHead allocList();

    /** True when at least @p n entries are free. */
    bool hasFree(unsigned n = 1) const { return freeEntries_.size() >= n; }

    /**
     * Append @p value to the list at @p head.
     * @param accesses incremented by the SRAM accesses performed.
     * @return false if a continuation entry was needed but none is free
     *         (no state change in that case).
     */
    bool push(ListHead head, std::uint16_t value, unsigned &accesses);

    /** Would push() need a new continuation entry? */
    bool pushNeedsEntry(ListHead head) const;

    /** Free element slots in the tail entry (push fills these first). */
    unsigned tailFreeSlots(ListHead head) const;

    /**
     * Continuation entries @p pushes consecutive push() calls on this
     * list would allocate, given the current tail occupancy.
     */
    unsigned entriesNeededFor(ListHead head, unsigned pushes) const;

    /** Visit each element in order; returns SRAM accesses. */
    template <typename Fn>
    unsigned
    forEach(ListHead head, Fn &&fn) const
    {
        if (head == invalidHwId)
            return 0;
        unsigned accesses = 0;
        std::uint16_t cur = head;
        while (true) {
            ++accesses;
            const std::uint16_t *slots = slotsOf(cur);
            for (unsigned i = 0; i < elemsPer_; ++i)
                if (slots[i] != invalidHwId)
                    fn(slots[i]);
            if (next_[cur] == cur)
                break;
            cur = next_[cur];
        }
        return accesses;
    }

    /** Number of elements in the list. */
    unsigned size(ListHead head) const;

    /**
     * Remove the first occurrence of @p value.
     * @return SRAM accesses; element may be absent (no-op).
     */
    unsigned remove(ListHead head, std::uint16_t value);

    /** Empty the list, freeing continuation entries but keeping head. */
    unsigned clear(ListHead head);

    /** Free the whole list including the head entry. */
    unsigned freeList(ListHead head);

    /** Entries currently allocated. */
    unsigned entriesInUse() const { return inUse_; }
    unsigned peakEntriesInUse() const { return peak_; }
    unsigned capacity() const { return entries_; }
    const std::string &name() const { return name_; }

  private:
    const std::uint16_t *
    slotsOf(std::uint16_t entry) const
    {
        return slots_.data()
               + static_cast<std::size_t>(entry) * elemsPer_;
    }

    std::uint16_t *
    slotsOf(std::uint16_t entry)
    {
        return slots_.data()
               + static_cast<std::size_t>(entry) * elemsPer_;
    }

    void resetEntry(std::uint16_t entry);
    unsigned chainLength(ListHead head) const;

    std::string name_;
    unsigned entries_;
    unsigned elemsPer_;
    std::vector<std::uint16_t> slots_; ///< entries_ x elemsPer_ slab
    std::vector<std::uint16_t> next_;  ///< == own index: end of chain
    std::vector<std::uint8_t> allocated_;
    sim::FixedRing<std::uint16_t> freeEntries_;
    unsigned inUse_ = 0;
    unsigned peak_ = 0;
};

} // namespace tdm::dmu

#endif // TDM_DMU_LIST_ARRAY_HH
