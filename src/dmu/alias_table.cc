#include "dmu/alias_table.hh"

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tdm::dmu {

AliasTable::AliasTable(std::string name, unsigned entries, unsigned assoc,
                       bool dynamic_index, unsigned static_bit)
    : name_(std::move(name)), entries_(entries), assoc_(assoc),
      dynamicIndex_(dynamic_index), staticBit_(static_bit)
{
    if (entries == 0 || assoc == 0 || entries % assoc != 0)
        sim::fatal("alias table ", name_, ": bad geometry ", entries, "/",
                   assoc);
    numSets_ = entries / assoc;
    if (!sim::isPowerOf2(numSets_))
        sim::fatal("alias table ", name_, ": sets must be a power of two");
    ways_.assign(entries_, Way{});
    setLive_.assign(numSets_, 0);
    freeIds_.reset(entries_);
    for (unsigned i = 0; i < entries_; ++i)
        freeIds_.push_back(static_cast<std::uint16_t>(i));
}

unsigned
AliasTable::setOf(std::uint64_t addr, std::uint64_t size_bytes) const
{
    unsigned start = dynamicIndex_
        ? (size_bytes > 1 ? sim::floorLog2(size_bytes) : 0)
        : staticBit_;
    return static_cast<unsigned>((addr >> start) & (numSets_ - 1));
}

std::optional<std::uint16_t>
AliasTable::lookup(std::uint64_t addr, std::uint64_t size_bytes,
                   std::uint32_t pid)
{
    ++lookups_;
    ++tick_;
    unsigned set = setOf(addr, size_bytes);
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].addr == addr && base[w].pid == pid) {
            base[w].lastUse = tick_;
            ++hits_;
            return base[w].id;
        }
    }
    return std::nullopt;
}

bool
AliasTable::canInsert(std::uint64_t addr, std::uint64_t size_bytes) const
{
    if (freeIds_.empty())
        return false;
    unsigned set = setOf(addr, size_bytes);
    return setLive_[set] < assoc_;
}

AliasTable::InsertResult
AliasTable::insert(std::uint64_t addr, std::uint64_t size_bytes,
                   std::uint32_t pid)
{
    if (freeIds_.empty())
        return {AliasInsertStatus::NoFreeId, invalidHwId};
    unsigned set = setOf(addr, size_bytes);
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!base[w].valid) {
            std::uint16_t id = freeIds_.pop_front();
            base[w].valid = true;
            base[w].addr = addr;
            base[w].pid = pid;
            base[w].id = id;
            base[w].lastUse = ++tick_;
            if (setLive_[set] == 0)
                ++occupiedSets_;
            ++setLive_[set];
            ++live_;
            ++inserts_;
            occSamples_ += occupiedSets();
            ++occCount_;
            return {AliasInsertStatus::Ok, id};
        }
    }
    ++conflicts_;
    return {AliasInsertStatus::SetConflict, invalidHwId};
}

void
AliasTable::erase(std::uint64_t addr, std::uint64_t size_bytes,
                  std::uint32_t pid)
{
    unsigned set = setOf(addr, size_bytes);
    Way *base = &ways_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].addr == addr && base[w].pid == pid) {
            base[w].valid = false;
            freeIds_.push_back(base[w].id);
            --setLive_[set];
            if (setLive_[set] == 0)
                --occupiedSets_;
            --live_;
            return;
        }
    }
    sim::panic("alias table ", name_, ": erase of absent address ", addr);
}

unsigned
AliasTable::occupiedSets() const
{
    return occupiedSets_;
}

double
AliasTable::avgOccupiedSets() const
{
    return occCount_ ? occSamples_ / static_cast<double>(occCount_) : 0.0;
}

void
AliasTable::regMetrics(sim::MetricContext ctx)
{
    ctx.counter("lookups", &lookups_, "address lookups");
    ctx.counter("hits", &hits_, "lookups that found a live entry");
    ctx.counter("inserts", &inserts_, "successful inserts");
    ctx.counter("conflicts", &conflicts_,
                "failed inserts due to set conflicts");
    ctx.formulaFn("hit_rate",
                  [this] {
                      return lookups_
                                 ? static_cast<double>(hits_)
                                       / static_cast<double>(lookups_)
                                 : 0.0;
                  },
                  "fraction of lookups that hit");
    ctx.gauge("occupied_sets",
              [this] { return static_cast<double>(occupiedSets()); },
              "sets currently holding at least one valid way");
    ctx.formulaFn("avg_occupied_sets",
                  [this] { return avgOccupiedSets(); },
                  "mean occupied sets sampled at every insert");
    ctx.gauge("live_entries",
              [this] { return static_cast<double>(live_); },
              "live translations");
}

} // namespace tdm::dmu
