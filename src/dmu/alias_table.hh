/**
 * @file
 * Task/Dependence Alias Tables (TAT / DAT).
 *
 * A set-associative directory mapping 64-bit addresses to small internal
 * IDs, backed by a queue of free IDs (Section III-B1). The set index is
 * taken from the address starting at a configurable bit; for the DAT the
 * paper's dynamic scheme starts at log2(dependence size), so consecutive
 * blocks of the same array spread over all sets.
 *
 * Capacity is limited both by free IDs and by set conflicts: an insert
 * into a full set fails even if other sets have room, which is exactly
 * the effect Figure 11 measures via set occupancy.
 */

#ifndef TDM_DMU_ALIAS_TABLE_HH
#define TDM_DMU_ALIAS_TABLE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dmu/geometry.hh"
#include "sim/fixed_ring.hh"
#include "sim/metrics.hh"

namespace tdm::dmu {

/** Result of an alias-table insert. */
enum class AliasInsertStatus
{
    Ok,          ///< inserted, id assigned
    SetConflict, ///< all ways of the target set are in use
    NoFreeId,    ///< every internal id is live
};

/**
 * One alias table (used for both TAT and DAT).
 */
class AliasTable
{
  public:
    /**
     * @param name        stats name ("tat"/"dat")
     * @param entries     total entries (sets x ways); power of two
     * @param assoc       ways per set
     * @param dynamic_index use log2(size) as the index start bit
     * @param static_bit  index start bit when not dynamic
     */
    AliasTable(std::string name, unsigned entries, unsigned assoc,
               bool dynamic_index, unsigned static_bit);

    /**
     * Look up an address. @return internal id if present.
     * @param pid operating-system process tag (Section III-D: tagging
     *            TAT and DAT with the process id lets different
     *            processes use the DMU concurrently without
     *            saving/restoring its structures at context switches).
     */
    std::optional<std::uint16_t> lookup(std::uint64_t addr,
                                        std::uint64_t size_bytes,
                                        std::uint32_t pid = 0);

    struct InsertResult
    {
        AliasInsertStatus status;
        std::uint16_t id = invalidHwId;
    };

    /** Insert a new translation; allocates an id from the free queue. */
    InsertResult insert(std::uint64_t addr, std::uint64_t size_bytes,
                        std::uint32_t pid = 0);

    /** Remove a translation and recycle its id. */
    void erase(std::uint64_t addr, std::uint64_t size_bytes,
               std::uint32_t pid = 0);

    /** Would an insert of this address succeed right now? */
    bool canInsert(std::uint64_t addr, std::uint64_t size_bytes) const;

    /** Number of live translations. */
    unsigned liveEntries() const { return live_; }

    /** Number of sets currently holding at least one valid way. */
    unsigned occupiedSets() const;

    unsigned numSets() const { return numSets_; }
    unsigned numEntries() const { return entries_; }

    /** Cumulative statistics. */
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t conflicts() const { return conflicts_; }
    std::uint64_t inserts() const { return inserts_; }

    /** Mean of occupied-set samples taken at every insert. */
    double avgOccupiedSets() const;

    /** Register this table's metrics under @p ctx's scope
     *  ("dmu.tat", "dmu.dat"). */
    void regMetrics(sim::MetricContext ctx);

  private:
    unsigned setOf(std::uint64_t addr, std::uint64_t size_bytes) const;

    struct Way
    {
        std::uint64_t addr = 0;
        std::uint32_t pid = 0;
        std::uint16_t id = invalidHwId;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::string name_;
    unsigned entries_;
    unsigned assoc_;
    unsigned numSets_;
    bool dynamicIndex_;
    unsigned staticBit_;

    std::vector<Way> ways_;
    std::vector<unsigned> setLive_; // valid ways per set
    unsigned occupiedSets_ = 0;    // sets with >= 1 valid way
    /** Free internal ids, recycled in FIFO order (fixed ring: id
     *  allocation on the DMU hot path never touches the heap). */
    sim::FixedRing<std::uint16_t> freeIds_;
    unsigned live_ = 0;
    std::uint64_t tick_ = 0;

    std::uint64_t lookups_ = 0, hits_ = 0, conflicts_ = 0, inserts_ = 0;
    double occSamples_ = 0.0;
    std::uint64_t occCount_ = 0;
};

} // namespace tdm::dmu

#endif // TDM_DMU_ALIAS_TABLE_HH
