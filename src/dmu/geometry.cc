#include "dmu/geometry.hh"

namespace tdm::dmu {

std::vector<pwr::SramSpec>
sramSpecs(const DmuConfig &cfg)
{
    std::vector<pwr::SramSpec> specs;

    // Task Table: 48-bit canonical descriptor address, predecessor and
    // successor counts (task-id wide), successor/dependence list
    // pointers, valid + flags.
    unsigned task_bits = 48 + 2 * cfg.taskIdBits() + cfg.slaPtrBits()
                       + cfg.dlaPtrBits() + 2;
    specs.push_back({"TaskTable", cfg.taskTableEntries(), task_bits, 1, 0});

    // Dependence Table: last-writer task id + reader list pointer
    // (invalid last writer encoded as all-ones id).
    unsigned dep_bits = cfg.taskIdBits() + cfg.rlaPtrBits();
    specs.push_back({"DepTable", cfg.depTableEntries(), dep_bits, 1, 0});

    // Alias tables: full 64-bit address + internal id; associative
    // lookups compare the full address.
    specs.push_back({"TAT", cfg.tatEntries,
                     64 + cfg.taskIdBits(), cfg.tatAssoc, 64});
    specs.push_back({"DAT", cfg.datEntries,
                     64 + cfg.depIdBits(), cfg.datAssoc, 64});

    // List arrays: elemsPerEntry ids + next pointer.
    unsigned sla_bits = cfg.elemsPerEntry * cfg.taskIdBits()
                      + cfg.slaPtrBits();
    specs.push_back({"SLA", cfg.slaEntries, sla_bits, 1, 0});
    unsigned dla_bits = cfg.elemsPerEntry * cfg.depIdBits()
                      + cfg.dlaPtrBits();
    specs.push_back({"DLA", cfg.dlaEntries, dla_bits, 1, 0});
    unsigned rla_bits = cfg.elemsPerEntry * cfg.taskIdBits()
                      + cfg.rlaPtrBits();
    specs.push_back({"RLA", cfg.rlaEntries, rla_bits, 1, 0});

    // Ready Queue: a FIFO of task ids.
    specs.push_back({"ReadyQ", cfg.readyQueueEntries, cfg.taskIdBits(),
                     1, 0});
    return specs;
}

double
totalStorageKB(const DmuConfig &cfg)
{
    double kb = 0.0;
    for (const auto &s : sramSpecs(cfg))
        kb += s.storageKB();
    return kb;
}

double
totalAreaMm2(const DmuConfig &cfg)
{
    pwr::CactiModel model(22);
    double mm2 = 0.0;
    for (const auto &s : sramSpecs(cfg))
        mm2 += model.estimate(s).areaMm2;
    return mm2;
}

double
totalLeakageMw(const DmuConfig &cfg)
{
    pwr::CactiModel model(22);
    double mw = 0.0;
    for (const auto &s : sramSpecs(cfg))
        mw += model.estimate(s).leakageMw;
    return mw;
}

} // namespace tdm::dmu
