/**
 * @file
 * 2D mesh network-on-chip latency model.
 *
 * The chip is laid out as a WxH mesh of nodes; cores occupy nodes in
 * row-major order and the DMU/L2 controller sits at a configurable node
 * (center by default, following the centralized-DMU design of the paper).
 *
 * The model is analytic: a message of S flits from A to B costs
 *   routerLatency * (hops + 1) + linkLatency * hops + (S - 1)
 * cycles (wormhole pipelining), plus a congestion term derived from a
 * running per-link utilization estimate. Per-link traffic counters feed
 * the stats used in tests and benches.
 */

#ifndef TDM_NOC_MESH_HH
#define TDM_NOC_MESH_HH

#include <cstdint>
#include <vector>

#include "sim/metrics.hh"
#include "sim/types.hh"

namespace tdm::noc {

/** Identifier of a mesh node. */
using NodeId = std::uint32_t;

/** Mesh configuration. */
struct MeshConfig
{
    unsigned width = 6;       ///< mesh columns
    unsigned height = 6;      ///< mesh rows
    unsigned routerLatency = 1; ///< cycles per router traversal
    unsigned linkLatency = 1;   ///< cycles per link traversal
    unsigned flitBytes = 16;    ///< payload bytes per flit
    /** weight of the congestion penalty term (0 disables). */
    double congestionWeight = 0.0;
};

/**
 * Analytic 2D mesh with XY dimension-ordered routing.
 */
class Mesh
{
  public:
    explicit Mesh(const MeshConfig &cfg);

    /** Number of nodes. */
    unsigned numNodes() const { return cfg_.width * cfg_.height; }

    /** Node coordinates. */
    unsigned xOf(NodeId n) const { return n % cfg_.width; }
    unsigned yOf(NodeId n) const { return n / cfg_.width; }

    /** Manhattan hop count between two nodes. */
    unsigned hops(NodeId from, NodeId to) const;

    /** Node closest to the mesh center (DMU home). */
    NodeId centerNode() const;

    /** Mesh node hosting core @p core (row-major placement). */
    NodeId nodeOfCore(sim::CoreId core) const;

    /**
     * Latency in cycles of a message of @p bytes payload from @p from to
     * @p to; also records traffic on every traversed link.
     */
    sim::Tick transfer(NodeId from, NodeId to, unsigned bytes);

    /** Latencies of one request/response message pair. */
    struct RoundTrip
    {
        sim::Tick request = 0;  ///< from -> to
        sim::Tick response = 0; ///< to -> from
        unsigned hops = 0;      ///< one-way Manhattan hop count
    };

    /**
     * Model the request and response messages of one remote operation
     * (e.g. a DMU ISA op): records traffic for both directions, in
     * order, and returns the two latencies separately so the caller
     * can interleave the remote processing time.
     */
    RoundTrip roundTrip(NodeId from, NodeId to, unsigned bytes);

    /** Latency without recording traffic (pure query). */
    sim::Tick latency(NodeId from, NodeId to, unsigned bytes) const;

    /** Total flit-hops routed so far. */
    std::uint64_t flitHops() const { return flitHops_; }

    /** Total messages routed. */
    std::uint64_t messages() const { return messages_; }

    /** Traffic (flits) on the busiest link. */
    std::uint64_t maxLinkFlits() const;

    /** Register traffic and latency metrics under @p ctx's scope
     *  ("mesh"). */
    void regMetrics(sim::MetricContext ctx);

  private:
    /** Index of the link leaving @p node in direction @p dir (0..3). */
    std::size_t linkIndex(NodeId node, unsigned dir) const;

    /** Enumerate links on the XY path; calls fn(linkIdx). */
    template <typename Fn>
    void walkPath(NodeId from, NodeId to, Fn &&fn) const;

    MeshConfig cfg_;
    std::vector<std::uint64_t> linkFlits_;
    std::uint64_t flitHops_ = 0;
    std::uint64_t messages_ = 0;
    std::uint64_t hopSum_ = 0;  ///< hops summed over messages
    sim::Average msgLatency_;   ///< per-message end-to-end latency
};

} // namespace tdm::noc

#endif // TDM_NOC_MESH_HH
