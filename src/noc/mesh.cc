#include "noc/mesh.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tdm::noc {

Mesh::Mesh(const MeshConfig &cfg) : cfg_(cfg)
{
    if (cfg_.width == 0 || cfg_.height == 0)
        sim::fatal("mesh dimensions must be nonzero");
    // 4 directed links per node (N/E/S/W); edge links exist but are
    // simply never traversed.
    linkFlits_.assign(static_cast<std::size_t>(numNodes()) * 4, 0);
}

unsigned
Mesh::hops(NodeId from, NodeId to) const
{
    unsigned dx = xOf(from) > xOf(to) ? xOf(from) - xOf(to)
                                      : xOf(to) - xOf(from);
    unsigned dy = yOf(from) > yOf(to) ? yOf(from) - yOf(to)
                                      : yOf(to) - yOf(from);
    return dx + dy;
}

NodeId
Mesh::centerNode() const
{
    unsigned cx = cfg_.width / 2;
    unsigned cy = cfg_.height / 2;
    return cy * cfg_.width + cx;
}

NodeId
Mesh::nodeOfCore(sim::CoreId core) const
{
    // Cores fill the mesh row-major, skipping the center node which is
    // reserved for the DMU / shared-L2 controller.
    NodeId center = centerNode();
    NodeId n = core;
    if (n >= center)
        ++n;
    if (n >= numNodes())
        sim::panic("core ", core, " does not fit in the mesh");
    return n;
}

std::size_t
Mesh::linkIndex(NodeId node, unsigned dir) const
{
    return static_cast<std::size_t>(node) * 4 + dir;
}

template <typename Fn>
void
Mesh::walkPath(NodeId from, NodeId to, Fn &&fn) const
{
    // XY routing: move in X first, then in Y.
    unsigned x = xOf(from), y = yOf(from);
    unsigned tx = xOf(to), ty = yOf(to);
    while (x != tx) {
        unsigned dir = x < tx ? 1u : 3u; // E : W
        fn(linkIndex(y * cfg_.width + x, dir));
        x = x < tx ? x + 1 : x - 1;
    }
    while (y != ty) {
        unsigned dir = y < ty ? 2u : 0u; // S : N
        fn(linkIndex(y * cfg_.width + x, dir));
        y = y < ty ? y + 1 : y - 1;
    }
}

sim::Tick
Mesh::latency(NodeId from, NodeId to, unsigned bytes) const
{
    unsigned h = hops(from, to);
    unsigned flits = std::max(1u, (bytes + cfg_.flitBytes - 1)
                                      / cfg_.flitBytes);
    sim::Tick base = static_cast<sim::Tick>(cfg_.routerLatency) * (h + 1)
                   + static_cast<sim::Tick>(cfg_.linkLatency) * h
                   + (flits - 1);
    if (cfg_.congestionWeight > 0.0 && messages_ > 0) {
        double avgLink = static_cast<double>(flitHops_)
                       / static_cast<double>(linkFlits_.size());
        base += static_cast<sim::Tick>(cfg_.congestionWeight * avgLink
                                       / (messages_ + 1));
    }
    return base;
}

sim::Tick
Mesh::transfer(NodeId from, NodeId to, unsigned bytes)
{
    sim::Tick lat = latency(from, to, bytes);
    unsigned flits = std::max(1u, (bytes + cfg_.flitBytes - 1)
                                      / cfg_.flitBytes);
    walkPath(from, to, [&](std::size_t link) {
        linkFlits_[link] += flits;
        flitHops_ += flits;
    });
    ++messages_;
    hopSum_ += hops(from, to);
    msgLatency_.sample(static_cast<double>(lat));
    return lat;
}

Mesh::RoundTrip
Mesh::roundTrip(NodeId from, NodeId to, unsigned bytes)
{
    RoundTrip rt;
    rt.request = transfer(from, to, bytes);
    rt.response = transfer(to, from, bytes);
    rt.hops = hops(from, to);
    return rt;
}

std::uint64_t
Mesh::maxLinkFlits() const
{
    auto it = std::max_element(linkFlits_.begin(), linkFlits_.end());
    return it == linkFlits_.end() ? 0 : *it;
}

void
Mesh::regMetrics(sim::MetricContext ctx)
{
    ctx.counter("messages", &messages_, "messages routed");
    ctx.counter("flit_hops", &flitHops_, "flit-hops traversed");
    ctx.counter("hop_sum", &hopSum_, "router hops summed over messages");
    ctx.average("avg_hop_latency", &msgLatency_,
                "mean end-to-end message latency in cycles");
    ctx.formulaFn("avg_hops",
                  [this] {
                      return messages_
                                 ? static_cast<double>(hopSum_)
                                       / static_cast<double>(messages_)
                                 : 0.0;
                  },
                  "mean router hops per message");
    ctx.gauge("max_link_flits",
              [this] { return static_cast<double>(maxLinkFlits()); },
              "traffic on the busiest link in flits");
}

} // namespace tdm::noc
