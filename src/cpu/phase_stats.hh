/**
 * @file
 * Per-core execution phase accounting, matching Figure 2's categories:
 * DEPS (task creation + finalization dependence management), SCHED
 * (scheduling/pool operations), EXEC (task bodies and sequential code),
 * IDLE (waiting for work).
 */

#ifndef TDM_CPU_PHASE_STATS_HH
#define TDM_CPU_PHASE_STATS_HH

#include <ostream>
#include <vector>

#include "sim/metrics.hh"
#include "sim/types.hh"

namespace tdm::cpu {

/** Execution phase of a thread. */
enum class Phase { Deps, Sched, Exec, Idle };

const char *toString(Phase p);

/** Accumulated ticks per phase. */
struct PhaseBreakdown
{
    sim::Tick deps = 0;
    sim::Tick sched = 0;
    sim::Tick exec = 0;
    sim::Tick idle = 0;

    sim::Tick total() const { return deps + sched + exec + idle; }
    sim::Tick busy() const { return deps + sched + exec; }

    double fraction(Phase p) const;

    PhaseBreakdown &operator+=(const PhaseBreakdown &o);
};

/**
 * Per-core phase time.
 */
class PhaseStats
{
  public:
    explicit PhaseStats(unsigned num_cores);

    void add(sim::CoreId core, Phase p, sim::Tick ticks);

    const PhaseBreakdown &core(sim::CoreId c) const { return per_[c]; }
    unsigned numCores() const {
        return static_cast<unsigned>(per_.size());
    }

    /** Breakdown of the master thread (core 0 by convention). */
    PhaseBreakdown master() const { return per_[0]; }

    /** Average breakdown over the worker threads (cores 1..N-1). */
    PhaseBreakdown workersTotal() const;

    /** Sum over all cores. */
    PhaseBreakdown chipTotal() const;

    /** Register master/workers/chip per-phase tick counters under
     *  @p ctx's scope ("cpu"). */
    void regMetrics(sim::MetricContext ctx);

    void dump(std::ostream &os) const;

  private:
    std::vector<PhaseBreakdown> per_;
};

} // namespace tdm::cpu

#endif // TDM_CPU_PHASE_STATS_HH
