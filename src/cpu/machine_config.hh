/**
 * @file
 * Full machine configuration, defaults matching Table I of the paper:
 * 32 OoO cores at 2 GHz, 32 KB L1s, 4 MB shared L2, and the selected
 * DMU sizing (2048-entry TAT/DAT, 1024-entry list arrays, 1 cycle per
 * structure access).
 */

#ifndef TDM_CPU_MACHINE_CONFIG_HH
#define TDM_CPU_MACHINE_CONFIG_HH

#include <string>

#include "dmu/geometry.hh"
#include "hwbaselines/carbon.hh"
#include "hwbaselines/task_superscalar.hh"
#include "mem/memory_model.hh"
#include "noc/mesh.hh"
#include "power/core_power.hh"
#include "runtime/cost_model.hh"
#include "sim/config.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace tdm::cpu {

/** Everything needed to build a Machine. */
struct MachineConfig
{
    unsigned numCores = 32;

    /** Software scheduling policy (for SW and TDM runtimes). */
    std::string scheduler = "fifo";
    std::uint32_t succThreshold = 1;

    mem::MemConfig mem{};
    noc::MeshConfig mesh{};
    dmu::DmuConfig dmu{};
    rt::SwCosts swCosts{};
    rt::TdmCosts tdmCosts{};
    hw::CarbonConfig carbon{};
    hw::TssConfig tss{};
    pwr::CorePowerParams power{};
    sim::TraceConfig trace{};

    /** Model the cache hierarchy's effect on task duration. */
    bool enableMemModel = true;

    /**
     * Runtime-system task-creation throttle (Nanos++-style): when this
     * many tasks are in flight, the master executes ready tasks
     * instead of creating new ones, resuming creation when the count
     * drops. Keeps the creation run-ahead bounded below the DMU's
     * capacity in the default configuration (each in-flight task pins
     * one successor-list entry, so the limit must stay well under the
     * 1024-entry list arrays).
     */
    std::uint32_t throttleTasks = 512;

    /** Watchdog: abort runs exceeding this many ticks. */
    sim::Tick maxTicks = static_cast<sim::Tick>(1) << 42;

    /** Payload bytes of a DMU request/response message. */
    unsigned dmuMsgBytes = 24;

    /** Render as a flat config (Table I style). */
    sim::Config describe() const;
};

} // namespace tdm::cpu

#endif // TDM_CPU_MACHINE_CONFIG_HH
