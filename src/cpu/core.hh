/**
 * @file
 * Core-side state of the machine model: the runtime state machine each
 * hardware thread runs, plus the serialized-resource helper used to
 * model the runtime lock and the DMU's sequential operation processing.
 */

#ifndef TDM_CPU_CORE_HH
#define TDM_CPU_CORE_HH

#include <cstdint>

#include "sim/types.hh"

namespace tdm::cpu {

/**
 * A resource that serves one request at a time (runtime lock, DMU
 * pipeline). Callers reserve an interval; the returned completion time
 * includes queueing delay.
 */
class SerialResource
{
  public:
    /**
     * Reserve the resource for @p duration ticks, starting no earlier
     * than @p earliest. @return the completion tick.
     */
    sim::Tick
    acquire(sim::Tick earliest, sim::Tick duration)
    {
        sim::Tick start = earliest > busyUntil_ ? earliest : busyUntil_;
        busyUntil_ = start + duration;
        totalBusy_ += duration;
        return busyUntil_;
    }

    /** Next tick at which the resource is free. */
    sim::Tick busyUntil() const { return busyUntil_; }

    /** Total ticks the resource has been held. */
    sim::Tick totalBusy() const { return totalBusy_; }

  private:
    sim::Tick busyUntil_ = 0;
    sim::Tick totalBusy_ = 0;
};

/** Runtime state of one core. */
struct CoreState
{
    bool idle = false;
    sim::Tick idleSince = 0;

    /** Tasks this core has executed. */
    std::uint64_t tasksRun = 0;

    /** Park the core at tick @p now. */
    void
    parkAt(sim::Tick now)
    {
        idle = true;
        idleSince = now;
    }

    /**
     * Resume the core at tick @p now.
     * @return the ticks spent idle (for phase accounting).
     */
    sim::Tick
    wakeAt(sim::Tick now)
    {
        idle = false;
        return now - idleSince;
    }
};

} // namespace tdm::cpu

#endif // TDM_CPU_CORE_HH
