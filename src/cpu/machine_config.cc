#include "cpu/machine_config.hh"

namespace tdm::cpu {

sim::Config
MachineConfig::describe() const
{
    sim::Config c;
    c.set("chip.cores", static_cast<std::uint64_t>(numCores));
    c.set("chip.freq_ghz", 2.0);
    c.set("core.type", std::string("out-of-order, 4-wide, 128-entry ROB"));
    c.set("l1d.size_kb",
          static_cast<std::uint64_t>(mem.l1Bytes / 1024));
    c.set("l1d.hit_cycles", static_cast<std::uint64_t>(mem.l1HitCycles));
    c.set("l2.size_mb",
          static_cast<std::uint64_t>(mem.l2Bytes / (1024 * 1024)));
    c.set("l2.hit_cycles", static_cast<std::uint64_t>(mem.l2HitCycles));
    c.set("dram.cycles", static_cast<std::uint64_t>(mem.dramCycles));
    c.set("noc.mesh", std::to_string(mesh.width) + "x"
                          + std::to_string(mesh.height));
    c.set("dmu.tat_entries", static_cast<std::uint64_t>(dmu.tatEntries));
    c.set("dmu.tat_assoc", static_cast<std::uint64_t>(dmu.tatAssoc));
    c.set("dmu.dat_entries", static_cast<std::uint64_t>(dmu.datEntries));
    c.set("dmu.dat_assoc", static_cast<std::uint64_t>(dmu.datAssoc));
    c.set("dmu.list_array_entries",
          static_cast<std::uint64_t>(dmu.slaEntries));
    c.set("dmu.elems_per_entry",
          static_cast<std::uint64_t>(dmu.elemsPerEntry));
    c.set("dmu.access_cycles",
          static_cast<std::uint64_t>(dmu.accessCycles));
    c.set("dmu.dynamic_dat_index", dmu.dynamicDatIndex);
    c.set("sched.policy", scheduler);
    return c;
}

} // namespace tdm::cpu
