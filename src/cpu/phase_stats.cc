#include "cpu/phase_stats.hh"

#include "sim/logging.hh"

namespace tdm::cpu {

const char *
toString(Phase p)
{
    switch (p) {
      case Phase::Deps: return "DEPS";
      case Phase::Sched: return "SCHED";
      case Phase::Exec: return "EXEC";
      case Phase::Idle: return "IDLE";
    }
    return "?";
}

double
PhaseBreakdown::fraction(Phase p) const
{
    sim::Tick t = total();
    if (t == 0)
        return 0.0;
    sim::Tick v = 0;
    switch (p) {
      case Phase::Deps: v = deps; break;
      case Phase::Sched: v = sched; break;
      case Phase::Exec: v = exec; break;
      case Phase::Idle: v = idle; break;
    }
    return static_cast<double>(v) / static_cast<double>(t);
}

PhaseBreakdown &
PhaseBreakdown::operator+=(const PhaseBreakdown &o)
{
    deps += o.deps;
    sched += o.sched;
    exec += o.exec;
    idle += o.idle;
    return *this;
}

PhaseStats::PhaseStats(unsigned num_cores) : per_(num_cores) {}

void
PhaseStats::add(sim::CoreId core, Phase p, sim::Tick ticks)
{
    if (core >= per_.size())
        sim::panic("phase stats: core ", core, " out of range");
    switch (p) {
      case Phase::Deps: per_[core].deps += ticks; break;
      case Phase::Sched: per_[core].sched += ticks; break;
      case Phase::Exec: per_[core].exec += ticks; break;
      case Phase::Idle: per_[core].idle += ticks; break;
    }
}

PhaseBreakdown
PhaseStats::workersTotal() const
{
    PhaseBreakdown sum;
    for (std::size_t c = 1; c < per_.size(); ++c)
        sum += per_[c];
    return sum;
}

PhaseBreakdown
PhaseStats::chipTotal() const
{
    PhaseBreakdown sum;
    for (const auto &b : per_)
        sum += b;
    return sum;
}

void
PhaseStats::regMetrics(sim::MetricContext ctx)
{
    // One aggregate scope per Figure-2 row; the per-phase tick sums
    // are monotone, so phase windows report per-window breakdowns.
    struct Group
    {
        const char *name;
        std::function<PhaseBreakdown()> get;
    };
    const Group groups[] = {
        {"master", [this] { return master(); }},
        {"workers", [this] { return workersTotal(); }},
        {"chip", [this] { return chipTotal(); }},
    };
    for (const Group &g : groups) {
        sim::MetricContext sub = ctx.scope(g.name);
        auto get = g.get;
        sub.counterFn("deps_ticks",
                      [get] { return static_cast<double>(get().deps); },
                      "ticks in dependence management (DEPS)");
        sub.counterFn("sched_ticks",
                      [get] { return static_cast<double>(get().sched); },
                      "ticks in scheduling operations (SCHED)");
        sub.counterFn("exec_ticks",
                      [get] { return static_cast<double>(get().exec); },
                      "ticks executing task bodies (EXEC)");
        sub.counterFn("idle_ticks",
                      [get] { return static_cast<double>(get().idle); },
                      "ticks waiting for work (IDLE)");
        sub.formulaFn("exec_fraction",
                      [get] {
                          return get().fraction(Phase::Exec);
                      },
                      "EXEC share of this row's total time");
        sub.formulaFn("idle_fraction",
                      [get] {
                          return get().fraction(Phase::Idle);
                      },
                      "IDLE share of this row's total time");
    }
}

void
PhaseStats::dump(std::ostream &os) const
{
    for (std::size_t c = 0; c < per_.size(); ++c) {
        const PhaseBreakdown &b = per_[c];
        os << "core" << c << " deps=" << b.deps << " sched=" << b.sched
           << " exec=" << b.exec << " idle=" << b.idle << '\n';
    }
}

} // namespace tdm::cpu
