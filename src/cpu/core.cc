#include "cpu/core.hh"

namespace tdm::cpu {

// Header-only; anchors the translation unit.

} // namespace tdm::cpu
