/**
 * @file
 * Chip memory hierarchy model: per-core L1s, a shared L2, and DRAM,
 * all at region granularity.
 *
 * A task's memory time is computed when it starts executing: every
 * dependence region is classified as L1 / L2 / DRAM resident and charged
 *   lines(region) * latency(level) / memLevelParallelism
 * cycles. Writes invalidate the region in all other cores' L1s, which is
 * what makes locality-aware scheduling profitable (a consumer scheduled
 * on the producer's core hits in L1; elsewhere it pays an L2 access).
 */

#ifndef TDM_MEM_MEMORY_MODEL_HH
#define TDM_MEM_MEMORY_MODEL_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mem/region_cache.hh"
#include "sim/metrics.hh"
#include "sim/types.hh"

namespace tdm::mem {

/** One region access performed by a task. */
struct MemAccess
{
    RegionId region = 0;
    std::uint64_t bytes = 0;
    bool write = false;
};

/** Memory hierarchy parameters (defaults follow the paper's Table I). */
struct MemConfig
{
    std::uint64_t l1Bytes = 32 * 1024;       ///< per-core data L1
    std::uint64_t l2Bytes = 4 * 1024 * 1024; ///< shared L2
    unsigned lineBytes = 64;
    unsigned l1HitCycles = 2;
    unsigned l2HitCycles = 14;
    unsigned dramCycles = 110;
    /** Effective memory-level parallelism for streaming task footprints. */
    double mlp = 8.0;
};

/**
 * The full hierarchy. Deterministic and purely functional: all methods
 * return cycle costs; the caller integrates them into the event timeline.
 */
class MemoryModel
{
  public:
    MemoryModel(const MemConfig &cfg, unsigned num_cores);

    /**
     * Charge a task's working set touched from @p core.
     * Updates residency state and returns the stall cycles.
     */
    sim::Tick taskAccessTime(sim::CoreId core,
                             std::span<const MemAccess> accesses);

    /** Classify a region for @p core without modifying state: 1/2/3. */
    int levelOf(sim::CoreId core, RegionId region) const;

    std::uint64_t l1Hits() const { return l1Hits_; }
    std::uint64_t l1Misses() const { return l1Misses_; }
    std::uint64_t l2Hits() const { return l2Hits_; }
    std::uint64_t l2Misses() const { return l2Misses_; }

    /** Line-grain access counts, for the energy model. */
    std::uint64_t l1LineAccesses() const { return l1LineAcc_; }
    std::uint64_t l2LineAccesses() const { return l2LineAcc_; }
    std::uint64_t dramLineAccesses() const { return dramLineAcc_; }

    const MemConfig &config() const { return cfg_; }

    /** Register hit/miss and line-traffic metrics under @p ctx's
     *  scope ("mem"). Counters read the live accounting directly, so
     *  snapshots taken mid-run see current values. */
    void regMetrics(sim::MetricContext ctx);

    /** Capture all cache residency state and traffic counters for
     *  warm-start forking. */
    void snapshotState(sim::Snapshot &s);

  private:
    MemConfig cfg_;
    std::vector<std::unique_ptr<RegionCache>> l1_;
    RegionCache l2_;

    std::uint64_t l1Hits_ = 0, l1Misses_ = 0;
    std::uint64_t l2Hits_ = 0, l2Misses_ = 0;
    std::uint64_t l1LineAcc_ = 0, l2LineAcc_ = 0, dramLineAcc_ = 0;
};

} // namespace tdm::mem

#endif // TDM_MEM_MEMORY_MODEL_HH
