#include "mem/memory_model.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace tdm::mem {

MemoryModel::MemoryModel(const MemConfig &cfg, unsigned num_cores)
    : cfg_(cfg), l2_(cfg.l2Bytes)
{
    if (num_cores == 0)
        sim::fatal("memory model needs at least one core");
    l1_.reserve(num_cores);
    for (unsigned c = 0; c < num_cores; ++c)
        l1_.push_back(std::make_unique<RegionCache>(cfg_.l1Bytes));
}

int
MemoryModel::levelOf(sim::CoreId core, RegionId region) const
{
    if (l1_[core]->contains(region))
        return 1;
    if (l2_.contains(region))
        return 2;
    return 3;
}

sim::Tick
MemoryModel::taskAccessTime(sim::CoreId core,
                            std::span<const MemAccess> accesses)
{
    if (core >= l1_.size())
        sim::panic("core id ", core, " out of range");
    double stall = 0.0;
    for (const MemAccess &a : accesses) {
        if (a.bytes == 0)
            continue;
        std::uint64_t lines = sim::divCeil<std::uint64_t>(a.bytes,
                                                          cfg_.lineBytes);
        int level = levelOf(core, a.region);
        double per_line;
        switch (level) {
          case 1:
            per_line = cfg_.l1HitCycles;
            ++l1Hits_;
            l1LineAcc_ += lines;
            break;
          case 2:
            per_line = cfg_.l2HitCycles;
            ++l1Misses_;
            ++l2Hits_;
            l1LineAcc_ += lines;
            l2LineAcc_ += lines;
            break;
          default:
            per_line = cfg_.dramCycles;
            ++l1Misses_;
            ++l2Misses_;
            l1LineAcc_ += lines;
            l2LineAcc_ += lines;
            dramLineAcc_ += lines;
            break;
        }
        // Hits in L1 are mostly hidden by the OoO core; misses overlap
        // up to the modelled MLP.
        double overlap = level == 1 ? 2.0 : cfg_.mlp;
        stall += static_cast<double>(lines) * per_line / overlap;

        // Update residency.
        l1_[core]->touch(a.region, a.bytes);
        l2_.touch(a.region, a.bytes);
        if (a.write) {
            for (std::size_t c = 0; c < l1_.size(); ++c) {
                if (c != core)
                    l1_[c]->invalidate(a.region);
            }
        }
    }
    return static_cast<sim::Tick>(stall);
}

void
MemoryModel::regMetrics(sim::MetricContext ctx)
{
    ctx.counter("l1_hits", &l1Hits_, "region hits in any L1");
    ctx.counter("l1_misses", &l1Misses_, "region misses in L1");
    ctx.counter("l2_hits", &l2Hits_, "region hits in shared L2");
    ctx.counter("l2_misses", &l2Misses_, "region misses to DRAM");
    ctx.counter("l1_line_accesses", &l1LineAcc_,
                "L1 traffic in cache lines");
    ctx.counter("l2_line_accesses", &l2LineAcc_,
                "L2 traffic in cache lines");
    ctx.counter("dram_line_accesses", &dramLineAcc_,
                "DRAM traffic in cache lines");
    ctx.formulaFn("l1_hit_rate",
                  [this] {
                      const std::uint64_t n = l1Hits_ + l1Misses_;
                      return n ? static_cast<double>(l1Hits_)
                                     / static_cast<double>(n)
                               : 0.0;
                  },
                  "fraction of region classifications that hit in L1");
    ctx.formulaFn("l2_hit_rate",
                  [this] {
                      const std::uint64_t n = l2Hits_ + l2Misses_;
                      return n ? static_cast<double>(l2Hits_)
                                     / static_cast<double>(n)
                               : 0.0;
                  },
                  "fraction of L1-missing classifications that hit in "
                  "L2");
}

void
MemoryModel::snapshotState(sim::Snapshot &s)
{
    for (auto &cache : l1_)
        cache->snapshotState(s);
    l2_.snapshotState(s);
    s.capture(l1Hits_);
    s.capture(l1Misses_);
    s.capture(l2Hits_);
    s.capture(l2Misses_);
    s.capture(l1LineAcc_);
    s.capture(l2LineAcc_);
    s.capture(dramLineAcc_);
}

} // namespace tdm::mem
