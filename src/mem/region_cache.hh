/**
 * @file
 * Region-granularity LRU cache model.
 *
 * Task working sets are described as dependence regions (base address +
 * size); tasks touch whole regions. Simulating line-level caches for
 * 42k tasks x 256 KB footprints is wasteful, so the memory model keeps an
 * LRU over *regions* with a byte-capacity budget. A region larger than
 * the capacity occupies the whole cache (and evicts everything else),
 * matching the streaming behaviour of a real cache at task granularity.
 *
 * The recency structure is an intrusive doubly-linked list threaded
 * through a contiguous slot slab, indexed by an open-addressed hash
 * table (linear probing, backward-shift deletion). A touch is a probe
 * plus a handful of index rewires — no node allocation, no pointer
 * chasing through heap-scattered std::list nodes. The slab and index
 * grow geometrically, so steady-state traffic performs zero heap
 * allocations; bench_micro_regioncache measures this against the old
 * std::list + iterator-map implementation kept there as the reference.
 */

#ifndef TDM_MEM_REGION_CACHE_HH
#define TDM_MEM_REGION_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tdm::sim {
class Snapshot;
} // namespace tdm::sim

namespace tdm::mem {

/** Identifier of a data region (assigned by the workload). */
using RegionId = std::uint64_t;

/**
 * LRU set of regions bounded by total bytes.
 */
class RegionCache
{
  public:
    explicit RegionCache(std::uint64_t capacityBytes);

    /**
     * Touch a region: returns true if it was resident (hit). Allocates
     * it (possibly evicting LRU regions) either way.
     */
    bool touch(RegionId id, std::uint64_t bytes);

    /** Probe without state change. */
    bool contains(RegionId id) const;

    /** Remove a region if present. @return true if it was resident. */
    bool invalidate(RegionId id);

    /** Drop everything. */
    void flush();

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t usedBytes() const { return used_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::size_t residentRegions() const { return live_; }

    /** Capture the full cache state (slab, index, recency list, and
     *  counters) for warm-start forking. */
    void snapshotState(sim::Snapshot &s);

  private:
    static constexpr std::uint32_t npos = 0xffffffffu;

    /** One resident region, linked into the recency list by index. */
    struct Slot
    {
        RegionId id;
        std::uint64_t bytes;
        std::uint32_t prev; ///< toward MRU; npos at the head
        std::uint32_t next; ///< toward LRU; npos at the tail
    };

    /** One open-addressed index cell; slot == npos marks empty. */
    struct Cell
    {
        RegionId key;
        std::uint32_t slot;
    };

    std::size_t homeOf(RegionId id) const;
    /** Index cell holding @p id, or npos. */
    std::uint32_t findCell(RegionId id) const;
    void indexInsert(RegionId id, std::uint32_t slot);
    void indexErase(std::uint32_t cell);
    void growIndex();

    std::uint32_t allocSlot();
    void linkFront(std::uint32_t s);
    void unlink(std::uint32_t s);
    /** Unlink + index-erase + free the slot of a resident region. */
    void dropSlot(std::uint32_t s);
    void evictFor(std::uint64_t bytes);

    std::uint64_t capacity_;
    std::uint64_t used_ = 0;

    std::vector<Slot> slots_;           ///< contiguous slab
    std::vector<std::uint32_t> free_;   ///< recycled slot indices
    std::uint32_t head_ = npos;         ///< most recently used
    std::uint32_t tail_ = npos;         ///< least recently used
    std::size_t live_ = 0;

    std::vector<Cell> cells_;           ///< power-of-two open table
    std::size_t mask_ = 0;

    std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

} // namespace tdm::mem

#endif // TDM_MEM_REGION_CACHE_HH
