/**
 * @file
 * Region-granularity LRU cache model.
 *
 * Task working sets are described as dependence regions (base address +
 * size); tasks touch whole regions. Simulating line-level caches for
 * 42k tasks x 256 KB footprints is wasteful, so the memory model keeps an
 * LRU over *regions* with a byte-capacity budget. A region larger than
 * the capacity occupies the whole cache (and evicts everything else),
 * matching the streaming behaviour of a real cache at task granularity.
 */

#ifndef TDM_MEM_REGION_CACHE_HH
#define TDM_MEM_REGION_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "mem/set_assoc_cache.hh"

namespace tdm::mem {

/** Identifier of a data region (assigned by the workload). */
using RegionId = std::uint64_t;

/**
 * LRU set of regions bounded by total bytes.
 */
class RegionCache
{
  public:
    explicit RegionCache(std::uint64_t capacityBytes);

    /**
     * Touch a region: returns true if it was resident (hit). Allocates
     * it (possibly evicting LRU regions) either way.
     */
    bool touch(RegionId id, std::uint64_t bytes);

    /** Probe without state change. */
    bool contains(RegionId id) const;

    /** Remove a region if present. @return true if it was resident. */
    bool invalidate(RegionId id);

    /** Drop everything. */
    void flush();

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t usedBytes() const { return used_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::size_t residentRegions() const { return map_.size(); }

  private:
    struct Node
    {
        RegionId id;
        std::uint64_t bytes;
    };

    void evictFor(std::uint64_t bytes);

    std::uint64_t capacity_;
    std::uint64_t used_ = 0;
    std::list<Node> lru_; // front = most recent
    std::unordered_map<RegionId, std::list<Node>::iterator> map_;
    std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

} // namespace tdm::mem

#endif // TDM_MEM_REGION_CACHE_HH
