#include "mem/set_assoc_cache.hh"

#include "sim/logging.hh"

namespace tdm::mem {

SetAssocCache::SetAssocCache(const CacheGeometry &geo) : geo_(geo)
{
    if (!sim::isPowerOf2(geo_.lineBytes))
        sim::fatal("cache line size must be a power of two");
    if (geo_.numLines() % geo_.assoc != 0)
        sim::fatal("cache size not divisible by associativity");
    ways_.assign(geo_.numSets() * geo_.assoc, Way{});
}

std::uint64_t
SetAssocCache::setOf(Addr addr) const
{
    return (addr / geo_.lineBytes) % geo_.numSets();
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return (addr / geo_.lineBytes) / geo_.numSets();
}

bool
SetAssocCache::access(Addr addr)
{
    ++tick_;
    std::uint64_t set = setOf(addr);
    Addr tag = tagOf(addr);
    Way *base = &ways_[set * geo_.assoc];
    Way *lru = base;
    for (unsigned w = 0; w < geo_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = tick_;
            ++hits_;
            return true;
        }
        if (!way.valid) {
            lru = &way;
        } else if (lru->valid && way.lastUse < lru->lastUse) {
            lru = &way;
        }
    }
    ++misses_;
    if (lru->valid)
        ++evictions_;
    else
        ++occupancy_;
    lru->valid = true;
    lru->tag = tag;
    lru->lastUse = tick_;
    return false;
}

bool
SetAssocCache::contains(Addr addr) const
{
    std::uint64_t set = setOf(addr);
    Addr tag = tagOf(addr);
    const Way *base = &ways_[set * geo_.assoc];
    for (unsigned w = 0; w < geo_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    std::uint64_t set = setOf(addr);
    Addr tag = tagOf(addr);
    Way *base = &ways_[set * geo_.assoc];
    for (unsigned w = 0; w < geo_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].valid = false;
            --occupancy_;
            return true;
        }
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &w : ways_)
        w.valid = false;
    occupancy_ = 0;
}

} // namespace tdm::mem
