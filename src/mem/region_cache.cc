#include "mem/region_cache.hh"

#include "sim/logging.hh"

namespace tdm::mem {

RegionCache::RegionCache(std::uint64_t capacityBytes)
    : capacity_(capacityBytes)
{
    if (capacity_ == 0)
        sim::fatal("region cache capacity must be nonzero");
}

void
RegionCache::evictFor(std::uint64_t bytes)
{
    while (used_ + bytes > capacity_ && !lru_.empty()) {
        Node &victim = lru_.back();
        used_ -= victim.bytes;
        map_.erase(victim.id);
        lru_.pop_back();
        ++evictions_;
    }
}

bool
RegionCache::touch(RegionId id, std::uint64_t bytes)
{
    auto it = map_.find(id);
    if (it != map_.end()) {
        // Hit: move to MRU; size may have changed (re-declared region).
        used_ -= it->second->bytes;
        lru_.erase(it->second);
        map_.erase(it);
        std::uint64_t eff = std::min(bytes, capacity_);
        evictFor(eff);
        lru_.push_front(Node{id, eff});
        map_[id] = lru_.begin();
        used_ += eff;
        ++hits_;
        return true;
    }
    std::uint64_t eff = std::min(bytes, capacity_);
    evictFor(eff);
    lru_.push_front(Node{id, eff});
    map_[id] = lru_.begin();
    used_ += eff;
    ++misses_;
    return false;
}

bool
RegionCache::contains(RegionId id) const
{
    return map_.count(id) != 0;
}

bool
RegionCache::invalidate(RegionId id)
{
    auto it = map_.find(id);
    if (it == map_.end())
        return false;
    used_ -= it->second->bytes;
    lru_.erase(it->second);
    map_.erase(it);
    return true;
}

void
RegionCache::flush()
{
    lru_.clear();
    map_.clear();
    used_ = 0;
}

} // namespace tdm::mem
