#include "mem/region_cache.hh"

#include <algorithm>

#include "sim/assert.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace tdm::mem {

namespace {

/** splitmix64 finalizer: region ids are small sequential integers, so
 *  they need real mixing before masking into the open table. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

constexpr std::size_t initialCells = 64;

} // namespace

RegionCache::RegionCache(std::uint64_t capacityBytes)
    : capacity_(capacityBytes)
{
    if (capacity_ == 0)
        sim::fatal("region cache capacity must be nonzero");
    cells_.assign(initialCells, Cell{0, npos});
    mask_ = initialCells - 1;
}

std::size_t
RegionCache::homeOf(RegionId id) const
{
    return static_cast<std::size_t>(mix(id)) & mask_;
}

std::uint32_t
RegionCache::findCell(RegionId id) const
{
    std::size_t c = homeOf(id);
    while (cells_[c].slot != npos) {
        if (cells_[c].key == id)
            return static_cast<std::uint32_t>(c);
        c = (c + 1) & mask_;
    }
    return npos;
}

void
RegionCache::indexInsert(RegionId id, std::uint32_t slot)
{
    // Keep the load factor below 1/2 so probe chains stay short.
    if ((live_ + 1) * 2 > cells_.size())
        growIndex();
    std::size_t c = homeOf(id);
    while (cells_[c].slot != npos)
        c = (c + 1) & mask_;
    cells_[c] = Cell{id, slot};
}

void
RegionCache::indexErase(std::uint32_t cell)
{
    // Linear-probing deletion with backward shift (Knuth 6.4, R): pull
    // displaced entries back so lookups never need tombstones.
    std::size_t i = cell;
    std::size_t j = cell;
    cells_[i].slot = npos;
    for (;;) {
        j = (j + 1) & mask_;
        if (cells_[j].slot == npos)
            return;
        std::size_t h = homeOf(cells_[j].key);
        // Move j down iff its home bucket does not lie in (i, j].
        bool between = i < j ? (h > i && h <= j) : (h > i || h <= j);
        if (!between) {
            cells_[i] = cells_[j];
            cells_[j].slot = npos;
            i = j;
        }
    }
}

void
RegionCache::growIndex()
{
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(old.size() * 2, Cell{0, npos});
    mask_ = cells_.size() - 1;
    for (const Cell &c : old) {
        if (c.slot == npos)
            continue;
        std::size_t at = homeOf(c.key);
        while (cells_[at].slot != npos)
            at = (at + 1) & mask_;
        cells_[at] = c;
    }
}

std::uint32_t
RegionCache::allocSlot()
{
    if (!free_.empty()) {
        std::uint32_t s = free_.back();
        free_.pop_back();
        return s;
    }
    slots_.push_back(Slot{});
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
RegionCache::linkFront(std::uint32_t s)
{
    slots_[s].prev = npos;
    slots_[s].next = head_;
    if (head_ != npos)
        slots_[head_].prev = s;
    head_ = s;
    if (tail_ == npos)
        tail_ = s;
}

void
RegionCache::unlink(std::uint32_t s)
{
    Slot &n = slots_[s];
    // Recency-list integrity: a slot is the head iff it has no prev,
    // the tail iff it has no next, and its neighbors point back at it.
    SIM_ASSERT((n.prev == npos) == (head_ == s),
               "slot ", s, " prev/head mismatch");
    SIM_ASSERT((n.next == npos) == (tail_ == s),
               "slot ", s, " next/tail mismatch");
    SIM_ASSERT(n.prev == npos || slots_[n.prev].next == s,
               "slot ", s, " not linked from its prev");
    SIM_ASSERT(n.next == npos || slots_[n.next].prev == s,
               "slot ", s, " not linked from its next");
    if (n.prev != npos)
        slots_[n.prev].next = n.next;
    else
        head_ = n.next;
    if (n.next != npos)
        slots_[n.next].prev = n.prev;
    else
        tail_ = n.prev;
}

void
RegionCache::dropSlot(std::uint32_t s)
{
    unlink(s);
    std::uint32_t cell = findCell(slots_[s].id);
    if (cell == npos)
        sim::panic("region cache: resident region missing from index");
    indexErase(cell);
    free_.push_back(s);
    --live_;
}

void
RegionCache::evictFor(std::uint64_t bytes)
{
    while (used_ + bytes > capacity_ && tail_ != npos) {
        std::uint32_t victim = tail_;
        used_ -= slots_[victim].bytes;
        dropSlot(victim);
        ++evictions_;
    }
}

bool
RegionCache::touch(RegionId id, std::uint64_t bytes)
{
    std::uint64_t eff = std::min(bytes, capacity_);
    std::uint32_t cell = findCell(id);
    if (cell != npos) {
        // Hit: pull the region out of the recency list (so it cannot
        // evict itself), make room for its possibly re-declared size,
        // and relink as MRU — same effective semantics as the old
        // list-erase / re-push-front implementation.
        std::uint32_t s = cells_[cell].slot;
        // Slab/index consistency: the index cell must name a slab slot
        // that actually holds this region.
        SIM_ASSERT(slots_[s].id == id, "index cell for region ", id,
                   " points at slot ", s, " holding region ",
                   slots_[s].id);
        used_ -= slots_[s].bytes;
        unlink(s);
        evictFor(eff);
        slots_[s].bytes = eff;
        linkFront(s);
        used_ += eff;
        ++hits_;
        SIM_ASSERT(used_ <= capacity_, "used ", used_, " over capacity ",
                   capacity_, " after hit on region ", id);
        return true;
    }
    evictFor(eff);
    std::uint32_t s = allocSlot();
    slots_[s].id = id;
    slots_[s].bytes = eff;
    linkFront(s);
    indexInsert(id, s);
    ++live_;
    used_ += eff;
    ++misses_;
    // Occupancy accounting: every slab slot is either live or on the
    // free list, and the index load factor stays below 1/2 (probe
    // chains in findCell terminate only because of this).
    SIM_ASSERT(live_ + free_.size() == slots_.size(),
               "live ", live_, " + free ", free_.size(),
               " != slab size ", slots_.size());
    SIM_ASSERT(live_ * 2 <= cells_.size(), "index over half full: ",
               live_, " live in ", cells_.size(), " cells");
    SIM_ASSERT(used_ <= capacity_, "used ", used_, " over capacity ",
               capacity_, " after miss on region ", id);
    return false;
}

bool
RegionCache::contains(RegionId id) const
{
    return findCell(id) != npos;
}

bool
RegionCache::invalidate(RegionId id)
{
    std::uint32_t cell = findCell(id);
    if (cell == npos)
        return false;
    std::uint32_t s = cells_[cell].slot;
    used_ -= slots_[s].bytes;
    dropSlot(s);
    return true;
}

void
RegionCache::flush()
{
    std::fill(cells_.begin(), cells_.end(), Cell{0, npos});
    free_.clear();
    for (std::uint32_t s = 0; s < slots_.size(); ++s)
        free_.push_back(s);
    head_ = tail_ = npos;
    live_ = 0;
    used_ = 0;
}

void
RegionCache::snapshotState(sim::Snapshot &s)
{
    // Every field is a value type (the recency list links by slot
    // index, not pointer), so one whole-object slab copy captures the
    // resident set, the open-addressed index, and the counters.
    s.capture(*this);
}

} // namespace tdm::mem
