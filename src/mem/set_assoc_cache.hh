/**
 * @file
 * Generic line-granularity set-associative cache with LRU replacement.
 *
 * Used as the reference model for cache-like structures: the unit tests
 * validate the region-granular model against it on small footprints, and
 * the micro-benchmarks exercise it directly.
 */

#ifndef TDM_MEM_SET_ASSOC_CACHE_HH
#define TDM_MEM_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace tdm::mem {

/** Physical/virtual address type. */
using Addr = std::uint64_t;

/** Geometry of a set-associative cache. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 2;
    unsigned lineBytes = 64;

    std::uint64_t numLines() const { return sizeBytes / lineBytes; }
    std::uint64_t numSets() const { return numLines() / assoc; }
};

/**
 * Line-level set-associative LRU cache. Tracks hit/miss/eviction counts.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheGeometry &geo);

    /** Access @p addr; allocate on miss. @return true on hit. */
    bool access(Addr addr);

    /** Probe without modifying state. */
    bool contains(Addr addr) const;

    /** Invalidate the line containing @p addr. @return true if present. */
    bool invalidate(Addr addr);

    /** Invalidate everything. */
    void flush();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

    /** Number of valid lines currently resident. */
    std::uint64_t occupancy() const { return occupancy_; }

    const CacheGeometry &geometry() const { return geo_; }

  private:
    struct Way
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheGeometry geo_;
    std::vector<Way> ways_; // sets * assoc, row-major by set
    std::uint64_t tick_ = 0;
    std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
    std::uint64_t occupancy_ = 0;
};

} // namespace tdm::mem

#endif // TDM_MEM_SET_ASSOC_CACHE_HH
