/**
 * @file
 * Descriptor of the Task Superscalar baseline runtime: dependence
 * tracking and scheduling both in hardware, fixed FIFO policy.
 */

#ifndef TDM_CORE_TSS_RUNTIME_HH
#define TDM_CORE_TSS_RUNTIME_HH

#include "core/sw_runtime.hh"

namespace tdm::core {

/** Spec of the Task Superscalar runtime. */
RuntimeSpec tssRuntimeSpec(const cpu::MachineConfig &cfg);

/** Spec of any runtime type. */
RuntimeSpec runtimeSpec(RuntimeType type, const cpu::MachineConfig &cfg);

} // namespace tdm::core

#endif // TDM_CORE_TSS_RUNTIME_HH
