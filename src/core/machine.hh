/**
 * @file
 * The full-machine model: 32 cores running a task-based runtime over a
 * workload TaskGraph, with one of four runtime systems (Software, TDM,
 * Carbon, Task Superscalar).
 *
 * The model is a deterministic discrete-event simulation at the
 * granularity of runtime operations and task bodies:
 *
 *  - The master thread (core 0) executes each parallel region's
 *    sequential prologue, then creates the region's tasks in program
 *    order. Creation costs follow the runtime model: software
 *    dependence matching under the runtime lock, or descriptor
 *    allocation plus TDM ISA operations (NoC round trip + serialized
 *    DMU processing, with blocking on full structures).
 *  - Worker threads loop: scheduling phase (pool pop under the lock /
 *    hardware queue pop / DMU get_ready_task), execution phase (compute
 *    cycles + memory-hierarchy stall for the task's dependence
 *    footprint), and finalization (software tracker wake-ups or
 *    finish_task + get_ready_task drain).
 *  - Per-core time is attributed to DEPS / SCHED / EXEC / IDLE exactly
 *    as Figure 2 defines them.
 */

#ifndef TDM_CORE_MACHINE_HH
#define TDM_CORE_MACHINE_HH

#include <memory>
#include <optional>
#include <vector>

#include "core/runtime_model.hh"
#include "core/task_trace.hh"
#include "cpu/core.hh"
#include "cpu/machine_config.hh"
#include "cpu/phase_stats.hh"
#include "dmu/dmu.hh"
#include "hwbaselines/hw_task_queue.hh"
#include "mem/memory_model.hh"
#include "noc/mesh.hh"
#include "power/energy_accountant.hh"
#include "runtime/ready_pool.hh"
#include "runtime/software_tracker.hh"
#include "runtime/task_graph.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/snapshot.hh"
#include "sim/trace.hh"

namespace tdm::core {

/** Aggregate result of one machine run. */
struct MachineResult
{
    /** False when the run deadlocked or hit the watchdog. */
    bool completed = false;

    sim::Tick makespan = 0;
    double timeMs = 0.0;

    cpu::PhaseBreakdown master;
    cpu::PhaseBreakdown workersTotal;
    cpu::PhaseBreakdown chipTotal;

    double energyJ = 0.0;
    double edp = 0.0;
    double avgWatts = 0.0;

    std::uint64_t tasksExecuted = 0;
    std::uint64_t dmuBlockedOps = 0;
    std::uint64_t dmuAccesses = 0;
    double datAvgOccupiedSets = 0.0;
    std::uint64_t steals = 0;

    /** Master-thread fraction of time spent creating tasks (Fig. 10). */
    double masterCreationFraction = 0.0;

    /**
     * The full flattened metric tree of the run: every registered
     * component metric by dotted key, plus per-phase-window deltas
     * under "window.{warmup,roi,drain}.*" (completed runs only). The
     * scalar fields above are a fixed-shape view; this carries
     * everything, so exports and queries never need a struct edit.
     */
    sim::MetricSet metrics;
};

/**
 * One simulated machine bound to one task graph and runtime model.
 */
class Machine
{
  public:
    /**
     * Bind to a shared, immutable task graph. The machine only ever
     * reads the graph, so one graph instance can back any number of
     * concurrently running machines (the campaign engine builds each
     * distinct workload graph once and shares it across its worker
     * threads).
     */
    Machine(const cpu::MachineConfig &cfg,
            std::shared_ptr<const rt::TaskGraph> graph,
            RuntimeType runtime);

    /**
     * Borrow @p graph without sharing ownership; the caller keeps it
     * alive for the machine's lifetime (the natural form for tests and
     * examples with a stack-owned graph).
     */
    Machine(const cpu::MachineConfig &cfg, const rt::TaskGraph &graph,
            RuntimeType runtime);

    ~Machine();

    /** Run to completion and summarize. */
    MachineResult run();

    // ---- warm-start forking ----------------------------------------

    /**
     * Arm checkpoint capture for the next run(): a restorable warm
     * snapshot is taken at the warmup/ROI boundary (the tick of the
     * first task-body dispatch, before its memory stall is computed)
     * and a finalize snapshot at the end of the event loop. Runs of
     * spec points that share this machine's warmup-affecting
     * parameters can then fork via runFromWarm()/runFromFinal()
     * instead of replaying the whole trajectory cold.
     */
    void armForkCapture() { forkCaptureArmed_ = true; }

    /** True when run() captured a restorable warmup/ROI snapshot
     *  (false for degenerate graphs that never dispatch a task, or
     *  when a pending event was not clonable). */
    bool hasWarmSnapshot() const { return warmCaptured_; }

    /** True when run() completed and captured a pre-finalize
     *  snapshot. */
    bool hasFinalSnapshot() const { return finalCaptured_; }

    /**
     * Re-run from the warmup/ROI snapshot under @p cfg, which must
     * agree with the captured run on every warmup-affecting parameter
     * (spec::KeyPhase::Warmup keys) and may differ in ROI and finalize
     * parameters (memory hierarchy, power). Restores the full machine
     * state, rebuilds the memory model and metric registry for @p cfg,
     * and replays the interrupted dispatch; the result is bit-for-bit
     * identical to a cold run of @p cfg. Restorable any number of
     * times.
     */
    MachineResult runFromWarm(const cpu::MachineConfig &cfg);

    /**
     * Re-run only the finalize tail (idle accounting + energy model +
     * metric tree) under @p cfg, which may differ from the captured
     * run only in finalize-phase parameters (spec::KeyPhase::Final,
     * the power model). The entire simulated trajectory is shared.
     */
    MachineResult runFromFinal(const cpu::MachineConfig &cfg);

    const cpu::PhaseStats &phases() const { return phases_; }
    const dmu::Dmu *dmuUnit() const { return dmu_.get(); }

    /** Enable/inspect the execution timeline (off by default). */
    void enableTrace() { traceEnabled_ = true; }
    const TaskTrace &trace() const { return trace_; }

    /**
     * The run's time-resolved trace (armed through
     * MachineConfig::trace; empty when trace.categories is 0).
     */
    const sim::TraceBuffer &traceBuffer() const { return tbuf_; }

    /** Move the trace out (it can hold many MB; callers that outlive
     *  the machine take it instead of copying). */
    sim::TraceBuffer takeTraceBuffer() { return std::move(tbuf_); }

    /** Dump component statistics (gem5 stats.txt style). */
    void dumpStats(std::ostream &os);

    /** The machine's metric registry: every component metric,
     *  addressable by dotted key path ("dmu.tat.hits"). */
    const sim::MetricRegistry &metrics() const { return metrics_; }

    const mem::MemoryModel *memory() const { return mem_.get(); }
    const RuntimeTraits &traits() const { return traits_; }
    sim::Tick now() const { return eq_.now(); }

  private:
    // ---- master side ----
    void masterAdvanceRegion();
    void masterCreateNext();
    void masterCreateSw(rt::TaskId id);
    void masterCreateTdm(rt::TaskId id);
    void masterIssueCreateOp(rt::TaskId id, sim::Tick seg_start);
    void masterIssueDepOp(rt::TaskId id, std::size_t dep_idx,
                          sim::Tick seg_start);
    void masterIssueCommitOp(rt::TaskId id, sim::Tick seg_start);
    void masterDoneCreating();

    // ---- worker side ----
    /** Entry point after a wake-up: creation throttle aware. */
    void dispatchEntry(sim::CoreId core);
    void tryDispatch(sim::CoreId core);
    void startExec(sim::CoreId core, const rt::ReadyTask &task);
    void finishTask(sim::CoreId core, rt::TaskId id);
    void finishSw(sim::CoreId core, rt::TaskId id);
    void finishDmu(sim::CoreId core, rt::TaskId id);
    void getReadyLoop(sim::CoreId core, sim::Tick seg_start);
    void afterFinish(sim::CoreId core);

    // ---- typed event continuations (fired by pooled BoundEvents) ---
    /** Initial event: park the workers, enter the first region. */
    void onStart();
    /** Master finished a region's sequential prologue. */
    void onPrologueDone(sim::Tick prologue);
    /** Software-runtime task creation segment retired. */
    void onSwCreateDone(rt::TaskId id, bool ready_now,
                        sim::Tick seg_start, sim::Tick completion);
    /** commit_task whose ready task the master moved into the pool
     *  (@p created is the task whose creation segment this commits;
     *  @p got may be a different task queued by a concurrent finish). */
    void onCommitReadyFetched(rt::TaskId created, rt::TaskId got,
                              std::uint32_t nsucc, sim::Tick seg_start,
                              sim::Tick completion);
    /** commit_task response received (no pool transfer). */
    void onCommitDone(rt::TaskId id, sim::Tick seg_start, sim::Tick done,
                      bool ready_now);
    /** Pool pop (under the runtime lock) completed. */
    void onPoolPopDone(sim::CoreId core, sim::Tick seg_start,
                       sim::Tick completion);
    /** Carbon local hardware-queue pop completed. */
    void onCarbonLocalPop(sim::CoreId core, sim::Tick cost);
    /** Carbon steal attempt completed. */
    void onCarbonSteal(sim::CoreId core, sim::Tick steal_done);
    /** Task Superscalar get_ready_task dispatch completed. */
    void onFifoDispatch(sim::CoreId core, sim::Tick seg_start,
                        sim::Tick done,
                        std::optional<dmu::ReadyTaskInfo> info);
    /** Task body (compute + memory stall) retired. */
    void onExecDone(sim::CoreId core, rt::TaskId id, sim::Tick dur);
    /** Software-tracker finish segment retired. */
    void onSwFinishDone(sim::CoreId core, rt::TaskId id,
                        sim::Tick seg_start, sim::Tick completion,
                        const std::vector<rt::ReadyTask> &ready);
    /** finish_task response received. */
    void onDmuFinishDone(sim::CoreId core, rt::TaskId id,
                         sim::Tick seg_start, sim::Tick done,
                         std::size_t n_ready);
    /** get_ready_task returned a task; push it to the pool and loop. */
    void onGetReadyPush(sim::CoreId core, sim::Tick seg_start,
                        rt::TaskId id, std::uint32_t nsucc,
                        sim::Tick completion);
    /** get_ready_task came back empty; scheduling segment ends. */
    void onGetReadyEmpty(sim::CoreId core, sim::Tick seg_start,
                         sim::Tick done);
    /** The master leaves a completed region for the next one. */
    void advanceToNextRegion();

    // ---- shared plumbing ----
    void deliverReady(const rt::ReadyTask &task);
    void wakeOneIdle();
    void wakeCore(sim::CoreId core);
    void wakeSpecific(sim::CoreId core);
    void goIdle(sim::CoreId core);
    void onTaskExecuted();
    void flushDmuWaiters();

    /**
     * Model a DMU operation issued from @p core at the current tick:
     * request traversal of the mesh, FIFO queueing at the DMU,
     * processing of @p accesses SRAM accesses, and the response.
     * @return the tick at which the issuing core resumes.
     */
    sim::Tick dmuOpLatency(sim::CoreId core, unsigned accesses);

    rt::TaskId taskOfDesc(std::uint64_t desc_addr) const;

    /** Register every component's metrics (constructor tail). */
    void registerMetrics();

    // ---- warm-start fork internals ----
    /** Capture every restorable machine field and delegate to each
     *  component's snapshotState hook. */
    void snapshotState(sim::Snapshot &s);
    /** Take the warm snapshot at the top of the first startExec. */
    void captureWarm(sim::CoreId core, const rt::ReadyTask &task);
    /** Take the pre-finalize snapshot after the event loop drains. */
    void captureFinal();
    /** Summarize the finished (or watchdogged) event loop — the tail
     *  of run(), factored out so forked replays reuse it. */
    MachineResult finalize();

    // ---- tracing helpers (no-ops when the category is off) ----
    /** Sample every DMU occupancy counter at the current tick. */
    void traceDmuCounters();
    /** Record @p core's just-ended idle span + the idle-core count. */
    void traceWake(sim::CoreId core, sim::Tick idle_since);

    /** First task body started: the warmup window ends here. */
    void noteFirstExec();

    /** Last task created: the ROI window ends here (deferred until
     *  the first exec if creation outruns it, keeping the window
     *  boundaries ordered). */
    void noteRoiEnd();

    /**
     * Fill the reusable footprint scratch buffer with @p id's region
     * accesses and return it (avoids a per-task allocation).
     */
    const std::vector<mem::MemAccess> &footprintOf(rt::TaskId id);
    std::uint32_t swSuccCount(rt::TaskId id) const;

    cpu::MachineConfig cfg_;
    std::shared_ptr<const rt::TaskGraph> graphHold_; ///< may share
    const rt::TaskGraph &graph_; ///< always valid; == *graphHold_
    RuntimeTraits traits_;

    sim::EventQueue eq_;
    cpu::PhaseStats phases_;
    noc::Mesh mesh_;
    std::unique_ptr<mem::MemoryModel> mem_;
    std::unique_ptr<rt::SoftwareTracker> tracker_;
    std::unique_ptr<rt::ReadyPool> pool_;
    std::unique_ptr<dmu::Dmu> dmu_;
    std::unique_ptr<hw::HwTaskQueues> hwq_;

    cpu::SerialResource lock_; ///< the runtime's global lock
    cpu::SerialResource dmuPipe_; ///< serialized DMU op processing

    std::vector<cpu::CoreState> cores_;

    /**
     * FIFO of parked cores as an intrusive doubly-linked list threaded
     * through per-core link arrays: O(1) park / wake-oldest /
     * wake-specific with zero allocation (this used to be a std::deque
     * with a linear std::find for the wake-specific path).
     */
    std::vector<sim::CoreId> idleNext_, idlePrev_;
    std::vector<std::uint8_t> idleLinked_;
    sim::CoreId idleHead_ = sim::invalidCore;
    sim::CoreId idleTail_ = sim::invalidCore;

    void idlePushBack(sim::CoreId core);
    void idleUnlink(sim::CoreId core);

    TaskTrace trace_;
    bool traceEnabled_ = false;

    /** Time-resolved trace (armed from cfg_.trace; see sim/trace.hh). */
    sim::TraceBuffer tbuf_;

    /** Parked cores right now (kept unconditionally — one increment
     *  per park/wake — so the core-category counter track never has
     *  to walk the idle list). */
    unsigned idleCount_ = 0;

    // Region / creation progress.
    std::uint32_t curRegion_ = 0;
    rt::TaskId nextToCreate_ = 0;
    std::uint32_t createdInRegion_ = 0;
    std::uint32_t executedInRegion_ = 0;
    bool masterCreating_ = false;
    bool regionDone_ = false;
    bool finished_ = false;

    /**
     * Task descriptors are laid out affinely (TaskGraph::descStride),
     * so desc -> TaskId is pure arithmetic from the first task's
     * address — no hash map on the dispatch/finish hot path. Zero when
     * the graph has no tasks.
     */
    std::uint64_t descBase_ = 0;

    /** A master-side DMU ISA operation parked on a full structure. */
    struct DmuRetry
    {
        bool isCreate;        ///< retry create_task vs add_dependence
        rt::TaskId id;
        std::size_t depIdx;   ///< dependence index (add_dependence)
        sim::Tick segStart;
    };

    // Master blocked on DMU capacity (+ drain scratch: the two vectors
    // ping-pong their warm buffers so flushing never allocates).
    std::vector<DmuRetry> dmuWaiters_;
    std::vector<DmuRetry> dmuWaiterScratch_;

    /** Scratch buffer reused by footprintOf (hot path). */
    std::vector<mem::MemAccess> footprintScratch_;

    std::uint64_t tasksExecuted_ = 0;
    std::uint64_t carbonRr_ = 0; ///< GTU round-robin cursor
    sim::Tick masterCreateTicks_ = 0;
    sim::Tick makespan_ = 0;

    // ---- metric registry + phase windows ----
    sim::MetricRegistry metrics_;
    pwr::EnergyAccountant acct_;
    sim::Distribution taskCycles_{0.0, 1e6, 20};

    std::uint32_t createdTotal_ = 0;
    bool sawFirstExec_ = false;
    bool roiEnded_ = false;
    bool pendingRoiEnd_ = false;
    sim::Tick warmupEndTick_ = 0;
    sim::Tick roiEndTick_ = 0;
    sim::MetricSnapshot snapRunStart_;
    sim::MetricSnapshot snapWarmupEnd_;
    sim::MetricSnapshot snapRoiEnd_;

    // ---- warm-start fork state ----
    bool forkCaptureArmed_ = false;
    bool warmCaptured_ = false;
    bool finalCaptured_ = false;
    sim::Snapshot warmSnap_;
    sim::Snapshot finalSnap_;
    /** The dispatch interrupted by the warm capture; every startExec
     *  call site invokes it in tail position, so replaying it from the
     *  restored clock reproduces the original event suffix exactly. */
    sim::CoreId resumeCore_ = 0;
    rt::ReadyTask resumeTask_{};

    static constexpr sim::CoreId masterCore = 0;
};

} // namespace tdm::core

#endif // TDM_CORE_MACHINE_HH
