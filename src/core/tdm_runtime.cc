#include "core/tdm_runtime.hh"

#include "dmu/geometry.hh"

namespace tdm::core {

RuntimeSpec
tdmRuntimeSpec(const cpu::MachineConfig &cfg)
{
    RuntimeSpec s;
    s.type = RuntimeType::Tdm;
    s.displayName = "TDM";
    s.description = "DMU dependence tracking + software scheduling";
    s.hwStorageKB = dmu::totalStorageKB(cfg.dmu);
    s.hwAreaMm2 = dmu::totalAreaMm2(cfg.dmu);
    return s;
}

} // namespace tdm::core
