#include "core/machine.hh"

#include <algorithm>

#include "dmu/geometry.hh"
#include "sim/logging.hh"

namespace tdm::core {

namespace {

const rt::TaskGraph &
requireGraph(const std::shared_ptr<const rt::TaskGraph> &g)
{
    if (!g)
        sim::fatal("machine needs a non-null task graph");
    return *g;
}

} // namespace

Machine::Machine(const cpu::MachineConfig &cfg, const rt::TaskGraph &graph,
                 RuntimeType runtime)
    : Machine(cfg,
              std::shared_ptr<const rt::TaskGraph>(
                  std::shared_ptr<const rt::TaskGraph>{}, &graph),
              runtime)
{
}

Machine::Machine(const cpu::MachineConfig &cfg,
                 std::shared_ptr<const rt::TaskGraph> graph,
                 RuntimeType runtime)
    : cfg_(cfg), graphHold_(std::move(graph)),
      graph_(requireGraph(graphHold_)), traits_(traitsOf(runtime)),
      phases_(cfg.numCores), mesh_(cfg.mesh), cores_(cfg.numCores),
      acct_(cfg.power)
{
    if (cfg_.numCores < 2)
        sim::fatal("machine needs at least 2 cores (master + worker)");
    if (cfg_.numCores + 1 > mesh_.numNodes())
        sim::fatal("mesh too small for ", cfg_.numCores, " cores + DMU");

    if (cfg_.enableMemModel)
        mem_ = std::make_unique<mem::MemoryModel>(cfg_.mem, cfg_.numCores);

    if (traits_.dep == DepMode::Software) {
        tracker_ = std::make_unique<rt::SoftwareTracker>(graph_);
    } else {
        dmu_ = std::make_unique<dmu::Dmu>(cfg_.dmu);
    }

    switch (traits_.sched) {
      case SchedMode::SoftwarePool:
        pool_ = std::make_unique<rt::ReadyPool>(rt::makeScheduler(
            cfg_.scheduler, cfg_.numCores, cfg_.succThreshold));
        break;
      case SchedMode::HardwareQueues:
        hwq_ = std::make_unique<hw::HwTaskQueues>(
            cfg_.numCores, cfg_.carbon.queueEntriesPerCore);
        break;
      case SchedMode::HardwareFifo:
        break; // DMU Ready Queue is the scheduler
    }

    // Descriptor addresses are an affine function of the task id
    // (TaskGraph::createTask bump-allocates them); verify once so
    // taskOfDesc can be pure arithmetic on the hot path.
    if (!graph_.tasks().empty()) {
        descBase_ = graph_.task(0).descAddr;
        for (const rt::Task &t : graph_.tasks()) {
            if (t.descAddr != descBase_ + static_cast<std::uint64_t>(t.id)
                                              * rt::TaskGraph::descStride)
                sim::panic("task graph descriptor layout is not affine "
                           "(task ", t.id, ")");
        }
    }

    idleNext_.assign(cfg_.numCores, sim::invalidCore);
    idlePrev_.assign(cfg_.numCores, sim::invalidCore);
    idleLinked_.assign(cfg_.numCores, 0);

    tbuf_.configure(cfg_.trace);

    registerMetrics();
}

void
Machine::registerMetrics()
{
    sim::MetricContext m = metrics_.context("machine");
    m.counter("tasks_executed", &tasksExecuted_, "task bodies retired");
    m.counter("master_create_ticks", &masterCreateTicks_,
              "master ticks spent in task-creation segments");
    m.distribution("task_cycles", &taskCycles_,
                   "task body duration (compute + memory stall)");
    m.gauge("completed", [this] { return finished_ ? 1.0 : 0.0; },
            "run reached the end of the task graph");
    m.gauge("makespan_ticks",
            [this] {
                return static_cast<double>(finished_ ? makespan_
                                                     : eq_.now());
            },
            "end-to-end run length in ticks");
    m.formulaFn("time_ms",
                [this] {
                    return sim::ticksToSeconds(finished_ ? makespan_
                                                         : eq_.now())
                           * 1e3;
                },
                "end-to-end run length in milliseconds");
    m.formulaFn("master_creation_fraction",
                [this] {
                    const sim::Tick total =
                        finished_ ? makespan_ : eq_.now();
                    return total ? static_cast<double>(masterCreateTicks_)
                                       / static_cast<double>(total)
                                 : 0.0;
                },
                "fraction of the run the master spent creating tasks");

    phases_.regMetrics(metrics_.context("cpu"));
    mesh_.regMetrics(metrics_.context("mesh"));
    if (mem_)
        mem_->regMetrics(metrics_.context("mem"));
    if (dmu_)
        dmu_->regMetrics(metrics_.context("dmu"));
    if (tracker_)
        tracker_->regMetrics(metrics_.context("runtime.tracker"));
    if (pool_)
        pool_->regMetrics(metrics_.context("runtime.pool"));
    if (hwq_)
        hwq_->regMetrics(metrics_.context("runtime.hwq"));

    sim::MetricContext p = metrics_.context("power");
    acct_.regMetrics(p);
    p.formulaFn("energy_j",
                [this] {
                    return finished_ ? acct_.totalJoules(makespan_)
                                     : 0.0;
                },
                "total chip energy in joules");
    p.formulaFn("edp",
                [this] {
                    return finished_ ? acct_.edp(makespan_) : 0.0;
                },
                "energy-delay product in J*s");
    p.formulaFn("avg_watts",
                [this] {
                    return finished_ ? acct_.avgWatts(makespan_) : 0.0;
                },
                "average chip power in watts");
}

void
Machine::noteFirstExec()
{
    sawFirstExec_ = true;
    warmupEndTick_ = eq_.now();
    snapWarmupEnd_ = metrics_.snapshot();
    if (pendingRoiEnd_) {
        pendingRoiEnd_ = false;
        noteRoiEnd();
    }
}

void
Machine::noteRoiEnd()
{
    if (roiEnded_)
        return;
    if (!sawFirstExec_) {
        // A tiny graph can finish creating before any body starts;
        // defer so the ROI boundary never precedes the warmup one.
        pendingRoiEnd_ = true;
        return;
    }
    roiEnded_ = true;
    roiEndTick_ = eq_.now();
    snapRoiEnd_ = metrics_.snapshot();
}

Machine::~Machine() = default;

rt::TaskId
Machine::taskOfDesc(std::uint64_t desc_addr) const
{
    const std::uint64_t off = desc_addr - descBase_;
    const std::uint64_t idx = off / rt::TaskGraph::descStride;
    if (desc_addr < descBase_ || off % rt::TaskGraph::descStride != 0
        || idx >= graph_.numTasks())
        sim::panic("unknown task descriptor 0x", std::hex, desc_addr);
    return static_cast<rt::TaskId>(idx);
}

const std::vector<mem::MemAccess> &
Machine::footprintOf(rt::TaskId id)
{
    footprintScratch_.clear();
    const rt::Task &t = graph_.task(id);
    footprintScratch_.reserve(t.deps.size());
    for (const rt::DepSpec &d : t.deps) {
        footprintScratch_.push_back(
            mem::MemAccess{d.region, graph_.region(d.region).bytes,
                           d.writes()});
    }
    return footprintScratch_;
}

std::uint32_t
Machine::swSuccCount(rt::TaskId id) const
{
    return tracker_ ? tracker_->succCount(id) : 0;
}

sim::Tick
Machine::dmuOpLatency(sim::CoreId core, unsigned accesses)
{
    noc::NodeId from = mesh_.nodeOfCore(core);
    noc::NodeId dmu_node = mesh_.centerNode();
    noc::Mesh::RoundTrip rt =
        mesh_.roundTrip(from, dmu_node, cfg_.dmuMsgBytes);
    if (tbuf_.on(sim::TraceCat::Noc)) {
        tbuf_.instant(sim::TracePoint::NocRoundTrip,
                      static_cast<std::uint16_t>(core), eq_.now(),
                      static_cast<std::uint32_t>(rt.request
                                                 + rt.response),
                      rt.hops);
    }
    sim::Tick proc = static_cast<sim::Tick>(accesses)
                   * cfg_.dmu.accessCycles;
    sim::Tick done = dmuPipe_.acquire(eq_.now() + rt.request, proc);
    return done + rt.response;
}

void
Machine::traceDmuCounters()
{
    if (!tbuf_.on(sim::TraceCat::Dmu) || !dmu_)
        return;
    const sim::Tick t = eq_.now();
    using TP = sim::TracePoint;
    tbuf_.counter(TP::DmuTasksInFlight, t, dmu_->tasksInFlight());
    tbuf_.counter(TP::DmuDepsInFlight, t, dmu_->depsInFlight());
    tbuf_.counter(TP::DmuReadyQueue, t, dmu_->readyCount());
    tbuf_.counter(TP::DmuTatLive, t, dmu_->tat().liveEntries());
    tbuf_.counter(TP::DmuDatLive, t, dmu_->dat().liveEntries());
    tbuf_.counter(TP::DmuSlaUsed, t, dmu_->sla().entriesInUse());
    tbuf_.counter(TP::DmuDlaUsed, t, dmu_->dla().entriesInUse());
    tbuf_.counter(TP::DmuRlaUsed, t, dmu_->rla().entriesInUse());
}

void
Machine::traceWake(sim::CoreId core, sim::Tick idle_since)
{
    --idleCount_;
    if (tbuf_.on(sim::TraceCat::Core)) {
        tbuf_.span(sim::TracePoint::CoreIdle,
                   static_cast<std::uint16_t>(core), idle_since,
                   eq_.now());
        tbuf_.counter(sim::TracePoint::IdleCores, eq_.now(),
                      idleCount_);
    }
}

// ---------------------------------------------------------------------
// Master: regions and task creation
// ---------------------------------------------------------------------

void
Machine::masterAdvanceRegion()
{
    if (curRegion_ >= graph_.parallelRegions().size()) {
        finished_ = true;
        makespan_ = eq_.now();
        return;
    }
    const rt::ParallelRegion &region =
        graph_.parallelRegions()[curRegion_];
    regionDone_ = false;
    executedInRegion_ = 0;
    createdInRegion_ = 0;
    if (tracker_)
        tracker_->resetRegion();
    if (dmu_ && dmu_->tasksInFlight() != 0)
        sim::panic("DMU not empty at a global synchronization point");

    sim::Tick prologue = region.prologueCycles;
    eq_.postIn<&Machine::onPrologueDone>(prologue, this, prologue);
}

void
Machine::onPrologueDone(sim::Tick prologue)
{
    phases_.add(masterCore, cpu::Phase::Exec, prologue);
    const rt::ParallelRegion &r = graph_.parallelRegions()[curRegion_];
    if (r.numTasks == 0) {
        ++curRegion_;
        masterAdvanceRegion();
    } else {
        masterCreating_ = true;
        masterCreateNext();
    }
}

void
Machine::masterCreateNext()
{
    const rt::ParallelRegion &region =
        graph_.parallelRegions()[curRegion_];
    if (createdInRegion_ == region.numTasks) {
        masterDoneCreating();
        return;
    }
    // Creation throttle: with too many tasks in flight the master
    // behaves as a worker for one task, then reconsiders.
    unsigned inflight = tracker_ ? tracker_->inFlight()
                                 : dmu_->tasksInFlight();
    if (inflight >= cfg_.throttleTasks) {
        tryDispatch(masterCore);
        return;
    }
    rt::TaskId id = region.firstTask + createdInRegion_;
    ++createdInRegion_;
    ++createdTotal_;
    if (traits_.dep == DepMode::Software)
        masterCreateSw(id);
    else
        masterCreateTdm(id);
}

void
Machine::masterCreateSw(rt::TaskId id)
{
    sim::Tick seg_start = eq_.now();
    rt::TrackerCreateWork work = tracker_->create(id);
    const rt::SwCosts &c = cfg_.swCosts;
    double f = graph_.swDepCostFactor;

    // Descriptor allocation and region-map lookups happen outside the
    // runtime lock; edge insertion and pool publication inside it.
    sim::Tick unlocked = c.taskAllocCycles
        + static_cast<sim::Tick>(
              (static_cast<double>(work.depLookups) * c.depLookupCycles
               + static_cast<double>(work.fragmentSplits)
                     * c.fragmentSplitCycles) * f);
    sim::Tick locked = static_cast<sim::Tick>(
        (static_cast<double>(work.edgeInserts) * c.edgeInsertCycles
         + static_cast<double>(work.readerScans) * c.readerScanCycles)
        * f);
    bool ready_now = work.readyNow;
    if (ready_now && pool_) {
        locked += c.poolPushCycles + pool_->policy().pushExtraCycles();
    }
    sim::Tick completion = lock_.acquire(seg_start + unlocked, locked);
    eq_.post<&Machine::onSwCreateDone>(completion, this, id, ready_now,
                                       seg_start, completion);
}

void
Machine::onSwCreateDone(rt::TaskId id, bool ready_now,
                        sim::Tick seg_start, sim::Tick completion)
{
    phases_.add(masterCore, cpu::Phase::Deps, completion - seg_start);
    masterCreateTicks_ += completion - seg_start;
    if (tbuf_.on(sim::TraceCat::Task)) {
        tbuf_.span(sim::TracePoint::TaskCreate, masterCore, seg_start,
                   completion, id);
    }
    if (ready_now) {
        deliverReady(rt::ReadyTask{id, swSuccCount(id), sim::invalidCore,
                                   id, completion});
    }
    masterCreateNext();
}

void
Machine::masterCreateTdm(rt::TaskId id)
{
    sim::Tick seg_start = eq_.now();
    eq_.postIn<&Machine::masterIssueCreateOp>(cfg_.tdmCosts.taskAllocCycles,
                                              this, id, seg_start);
}

void
Machine::masterIssueCreateOp(rt::TaskId id, sim::Tick seg_start)
{
    const rt::Task &t = graph_.task(id);
    dmu::DmuResult res = dmu_->createTask(t.descAddr);
    if (res.blocked) {
        if (tbuf_.on(sim::TraceCat::Dmu)) {
            tbuf_.instant(sim::TracePoint::DmuBlocked, masterCore,
                          eq_.now(), id,
                          static_cast<std::uint32_t>(res.reason));
        }
        dmuWaiters_.push_back(DmuRetry{true, id, 0, seg_start});
        return;
    }
    traceDmuCounters();
    sim::Tick done = dmuOpLatency(masterCore, res.accesses)
                   + cfg_.tdmCosts.issueCycles;
    eq_.post<&Machine::masterIssueDepOp>(done, this, id, std::size_t{0},
                                         seg_start);
}

void
Machine::masterIssueDepOp(rt::TaskId id, std::size_t dep_idx,
                          sim::Tick seg_start)
{
    const rt::Task &t = graph_.task(id);
    if (dep_idx == t.deps.size()) {
        masterIssueCommitOp(id, seg_start);
        return;
    }
    const rt::DepSpec &d = t.deps[dep_idx];
    const rt::DataRegion &region = graph_.region(d.region);
    dmu::DmuResult res = dmu_->addDependence(t.descAddr, region.baseAddr,
                                             region.bytes, d.writes());
    if (res.blocked) {
        if (tbuf_.on(sim::TraceCat::Dmu)) {
            tbuf_.instant(sim::TracePoint::DmuBlocked, masterCore,
                          eq_.now(), id,
                          static_cast<std::uint32_t>(res.reason));
        }
        dmuWaiters_.push_back(DmuRetry{false, id, dep_idx, seg_start});
        return;
    }
    traceDmuCounters();
    sim::Tick done = dmuOpLatency(masterCore, res.accesses)
                   + cfg_.tdmCosts.issueCycles;
    eq_.post<&Machine::masterIssueDepOp>(done, this, id, dep_idx + 1,
                                         seg_start);
}

void
Machine::masterIssueCommitOp(rt::TaskId id, sim::Tick seg_start)
{
    const rt::Task &t = graph_.task(id);
    dmu::DmuResult res = dmu_->commitTask(t.descAddr);
    traceDmuCounters();
    sim::Tick done = dmuOpLatency(masterCore, res.accesses)
                   + cfg_.tdmCosts.issueCycles;
    bool ready_now = !res.readyDescAddrs.empty();

    if (ready_now && traits_.sched == SchedMode::SoftwarePool) {
        // The task entered the hardware Ready Queue at commit; the
        // master immediately requests it with get_ready_task and moves
        // it into the software pool (Section III-C3). The FIFO may
        // hand back a different ready task queued by a concurrent
        // finish — either way one entry moves to the pool.
        unsigned acc = 0;
        auto info = dmu_->getReadyTask(acc);
        if (!info)
            sim::panic("ready task vanished from the Ready Queue");
        traceDmuCounters();
        rt::TaskId got = taskOfDesc(info->descAddr);
        std::uint32_t nsucc = info->numSuccessors;
        sim::Tick fetched = dmuOpLatency(masterCore, acc)
                          + cfg_.tdmCosts.issueCycles;
        sim::Tick hold = cfg_.tdmCosts.poolPushCycles
                       + pool_->policy().pushExtraCycles();
        sim::Tick completion = lock_.acquire(fetched, hold);
        eq_.post<&Machine::onCommitReadyFetched>(completion, this, id,
                                                 got, nsucc, seg_start,
                                                 completion);
    } else {
        eq_.post<&Machine::onCommitDone>(done, this, id, seg_start, done,
                                         ready_now);
    }
}

void
Machine::onCommitReadyFetched(rt::TaskId created, rt::TaskId got,
                              std::uint32_t nsucc, sim::Tick seg_start,
                              sim::Tick completion)
{
    phases_.add(masterCore, cpu::Phase::Deps, completion - seg_start);
    masterCreateTicks_ += completion - seg_start;
    if (tbuf_.on(sim::TraceCat::Task)) {
        tbuf_.span(sim::TracePoint::TaskCreate, masterCore, seg_start,
                   completion, created);
    }
    deliverReady(rt::ReadyTask{got, nsucc, sim::invalidCore, got,
                               completion});
    masterCreateNext();
}

void
Machine::onCommitDone(rt::TaskId id, sim::Tick seg_start, sim::Tick done,
                      bool ready_now)
{
    phases_.add(masterCore, cpu::Phase::Deps, done - seg_start);
    masterCreateTicks_ += done - seg_start;
    if (tbuf_.on(sim::TraceCat::Task)) {
        tbuf_.span(sim::TracePoint::TaskCreate, masterCore, seg_start,
                   done, id);
    }
    if (ready_now && traits_.sched == SchedMode::HardwareFifo)
        wakeOneIdle();
    masterCreateNext();
}

void
Machine::masterDoneCreating()
{
    masterCreating_ = false;
    if (createdTotal_ == graph_.numTasks())
        noteRoiEnd();
    tryDispatch(masterCore);
}

// ---------------------------------------------------------------------
// Workers: dispatch, execute, finish
// ---------------------------------------------------------------------

void
Machine::dispatchEntry(sim::CoreId core)
{
    if (core == masterCore && masterCreating_)
        masterCreateNext();
    else
        tryDispatch(core);
}

void
Machine::tryDispatch(sim::CoreId core)
{
    if (finished_)
        return;
    sim::Tick seg_start = eq_.now();

    switch (traits_.sched) {
      case SchedMode::SoftwarePool: {
        const sim::Tick pop_cost =
            (traits_.dep == DepMode::Software
                 ? cfg_.swCosts.poolPopCycles
                 : cfg_.tdmCosts.poolPopCycles)
            + pool_->policy().popExtraCycles();
        sim::Tick completion = lock_.acquire(seg_start, pop_cost);
        eq_.post<&Machine::onPoolPopDone>(completion, this, core,
                                          seg_start, completion);
        break;
      }
      case SchedMode::HardwareQueues: {
        sim::Tick cost = cfg_.carbon.localOpCycles;
        eq_.postIn<&Machine::onCarbonLocalPop>(cost, this, core, cost);
        break;
      }
      case SchedMode::HardwareFifo: {
        unsigned acc = 0;
        auto info = dmu_->getReadyTask(acc);
        traceDmuCounters();
        sim::Tick done = dmuOpLatency(core, acc)
                       + cfg_.tdmCosts.issueCycles;
        eq_.post<&Machine::onFifoDispatch>(done, this, core, seg_start,
                                           done, info);
        break;
      }
    }
}

void
Machine::onPoolPopDone(sim::CoreId core, sim::Tick seg_start,
                       sim::Tick completion)
{
    auto t = pool_->pop(core);
    phases_.add(core, cpu::Phase::Sched, completion - seg_start);
    if (tbuf_.on(sim::TraceCat::Sched)) {
        tbuf_.span(sim::TracePoint::SchedPop,
                   static_cast<std::uint16_t>(core), seg_start,
                   completion, t ? t->id : UINT32_MAX);
        tbuf_.counter(sim::TracePoint::PoolDepth, completion,
                      pool_->size());
    }
    if (t) {
        startExec(core, *t);
    } else if (core == masterCore && !masterCreating_ && regionDone_) {
        advanceToNextRegion();
    } else {
        goIdle(core);
    }
}

void
Machine::onCarbonLocalPop(sim::CoreId core, sim::Tick cost)
{
    auto t = hwq_->popLocal(core);
    if (t) {
        phases_.add(core, cpu::Phase::Sched, cost);
        if (tbuf_.on(sim::TraceCat::Sched)) {
            tbuf_.span(sim::TracePoint::SchedPop,
                       static_cast<std::uint16_t>(core),
                       eq_.now() - cost, eq_.now(), t->id);
        }
        startExec(core, *t);
        return;
    }
    sim::Tick steal_done = cost + cfg_.carbon.stealCycles;
    eq_.postIn<&Machine::onCarbonSteal>(cfg_.carbon.stealCycles, this,
                                        core, steal_done);
}

void
Machine::onCarbonSteal(sim::CoreId core, sim::Tick steal_done)
{
    auto s = hwq_->steal(core);
    phases_.add(core, cpu::Phase::Sched, steal_done);
    if (tbuf_.on(sim::TraceCat::Sched)) {
        tbuf_.span(sim::TracePoint::SchedSteal,
                   static_cast<std::uint16_t>(core),
                   eq_.now() - steal_done, eq_.now(),
                   s ? s->id : UINT32_MAX);
    }
    if (s) {
        startExec(core, *s);
    } else if (core == masterCore && !masterCreating_ && regionDone_) {
        advanceToNextRegion();
    } else {
        goIdle(core);
    }
}

void
Machine::onFifoDispatch(sim::CoreId core, sim::Tick seg_start,
                        sim::Tick done,
                        std::optional<dmu::ReadyTaskInfo> info)
{
    phases_.add(core, cpu::Phase::Sched, done - seg_start);
    if (tbuf_.on(sim::TraceCat::Sched)) {
        tbuf_.span(sim::TracePoint::SchedGetReady,
                   static_cast<std::uint16_t>(core), seg_start, done,
                   info ? taskOfDesc(info->descAddr) : UINT32_MAX);
    }
    if (info) {
        rt::TaskId id = taskOfDesc(info->descAddr);
        startExec(core, rt::ReadyTask{id, info->numSuccessors,
                                      sim::invalidCore, id, done});
    } else if (core == masterCore && !masterCreating_ && regionDone_) {
        advanceToNextRegion();
    } else {
        goIdle(core);
    }
}

void
Machine::startExec(sim::CoreId core, const rt::ReadyTask &task)
{
    // Warmup/ROI boundary: the first task body is about to run, and
    // nothing ROI-affecting (the memory stall below) has been computed
    // yet. This is the checkpoint warm-start forks restore to.
    if (forkCaptureArmed_ && !sawFirstExec_ && !warmCaptured_)
        captureWarm(core, task);
    const rt::Task &t = graph_.task(task.id);
    sim::Tick stall = 0;
    if (mem_) {
        const auto &fp = footprintOf(task.id);
        if (tbuf_.on(sim::TraceCat::Mem)) {
            const std::uint64_t l1_before = mem_->l1Misses();
            const std::uint64_t l2_before = mem_->l2Misses();
            stall = mem_->taskAccessTime(core, fp);
            const std::uint64_t l1d = mem_->l1Misses() - l1_before;
            const std::uint64_t l2d = mem_->l2Misses() - l2_before;
            if (l1d || l2d) {
                tbuf_.instant(sim::TracePoint::MemRegionMiss,
                              static_cast<std::uint16_t>(core),
                              eq_.now(),
                              static_cast<std::uint32_t>(l1d),
                              static_cast<std::uint32_t>(l2d));
            }
        } else {
            stall = mem_->taskAccessTime(core, fp);
        }
    }
    sim::Tick dur = t.computeCycles + stall;
    ++cores_[core].tasksRun;
    if (!sawFirstExec_)
        noteFirstExec();
    eq_.postIn<&Machine::onExecDone>(dur, this, core, task.id, dur);
}

void
Machine::onExecDone(sim::CoreId core, rt::TaskId id, sim::Tick dur)
{
    phases_.add(core, cpu::Phase::Exec, dur);
    taskCycles_.sample(static_cast<double>(dur));
    if (traceEnabled_) {
        trace_.record(id, core, eq_.now() - dur, eq_.now(),
                      graph_.task(id).kernel);
    }
    if (tbuf_.on(sim::TraceCat::Task)) {
        tbuf_.span(sim::TracePoint::TaskExec,
                   static_cast<std::uint16_t>(core), eq_.now() - dur,
                   eq_.now(), id, graph_.task(id).kernel);
    }
    finishTask(core, id);
}

void
Machine::finishTask(sim::CoreId core, rt::TaskId id)
{
    if (traits_.dep == DepMode::Software)
        finishSw(core, id);
    else
        finishDmu(core, id);
}

void
Machine::finishSw(sim::CoreId core, rt::TaskId id)
{
    sim::Tick seg_start = eq_.now();
    rt::TrackerFinishWork work = tracker_->finish(id);
    const rt::SwCosts &c = cfg_.swCosts;

    std::vector<rt::ReadyTask> ready;
    ready.reserve(work.newlyReady.size());
    for (rt::TaskId r : work.newlyReady) {
        ready.push_back(
            rt::ReadyTask{r, swSuccCount(r), core, r, seg_start});
    }

    sim::Tick unlocked = c.finishBaseCycles;
    sim::Tick locked =
        static_cast<sim::Tick>(work.succVisits) * c.perSuccessorCycles
        + static_cast<sim::Tick>(work.depVisits) * c.perDepCleanupCycles;
    sim::Tick push_cost = 0;
    if (traits_.sched == SchedMode::SoftwarePool) {
        push_cost = static_cast<sim::Tick>(ready.size())
                  * (c.poolPushCycles + pool_->policy().pushExtraCycles());
        locked += push_cost;
    }
    sim::Tick completion = lock_.acquire(seg_start + unlocked, locked);

    if (traits_.sched == SchedMode::HardwareQueues) {
        // Carbon publishes ready tasks to the local hardware queue
        // after the (software) dependence bookkeeping.
        completion += static_cast<sim::Tick>(ready.size())
                    * cfg_.carbon.localOpCycles;
    }
    eq_.post<&Machine::onSwFinishDone>(completion, this, core, id,
                                       seg_start, completion,
                                       std::move(ready));
}

void
Machine::onSwFinishDone(sim::CoreId core, rt::TaskId id,
                        sim::Tick seg_start, sim::Tick completion,
                        const std::vector<rt::ReadyTask> &ready)
{
    phases_.add(core, cpu::Phase::Deps, completion - seg_start);
    if (tbuf_.on(sim::TraceCat::Task)) {
        tbuf_.span(sim::TracePoint::TaskFinish,
                   static_cast<std::uint16_t>(core), seg_start,
                   completion, id);
        tbuf_.instant(sim::TracePoint::TaskRetire,
                      static_cast<std::uint16_t>(core), completion, id);
    }
    for (const rt::ReadyTask &r : ready)
        deliverReady(r);
    onTaskExecuted();
    afterFinish(core);
}

void
Machine::finishDmu(sim::CoreId core, rt::TaskId id)
{
    sim::Tick seg_start = eq_.now();
    const rt::Task &t = graph_.task(id);
    dmu::DmuResult res = dmu_->finishTask(t.descAddr);
    traceDmuCounters();
    flushDmuWaiters();
    sim::Tick done = dmuOpLatency(core, res.accesses)
                   + cfg_.tdmCosts.issueCycles;
    std::size_t n_ready = res.readyDescAddrs.size();
    eq_.post<&Machine::onDmuFinishDone>(done, this, core, id, seg_start,
                                        done, n_ready);
}

void
Machine::onDmuFinishDone(sim::CoreId core, rt::TaskId id,
                         sim::Tick seg_start, sim::Tick done,
                         std::size_t n_ready)
{
    phases_.add(core, cpu::Phase::Deps, done - seg_start);
    if (tbuf_.on(sim::TraceCat::Task)) {
        tbuf_.span(sim::TracePoint::TaskFinish,
                   static_cast<std::uint16_t>(core), seg_start, done,
                   id);
        tbuf_.instant(sim::TracePoint::TaskRetire,
                      static_cast<std::uint16_t>(core), done, id);
    }
    onTaskExecuted();
    if (traits_.sched == SchedMode::SoftwarePool) {
        getReadyLoop(core, done);
    } else {
        // Task Superscalar: tasks stay in the hardware Ready
        // Queue; wake an idle core per newly ready task.
        for (std::size_t i = 0; i < n_ready; ++i)
            wakeOneIdle();
        afterFinish(core);
    }
}

void
Machine::getReadyLoop(sim::CoreId core, sim::Tick seg_start)
{
    unsigned acc = 0;
    auto info = dmu_->getReadyTask(acc);
    traceDmuCounters();
    sim::Tick done = dmuOpLatency(core, acc) + cfg_.tdmCosts.issueCycles;
    if (info) {
        rt::TaskId id = taskOfDesc(info->descAddr);
        sim::Tick hold = cfg_.tdmCosts.poolPushCycles
                       + pool_->policy().pushExtraCycles();
        sim::Tick completion = lock_.acquire(done, hold);
        std::uint32_t nsucc = info->numSuccessors;
        eq_.post<&Machine::onGetReadyPush>(completion, this, core,
                                           seg_start, id, nsucc,
                                           completion);
    } else {
        eq_.post<&Machine::onGetReadyEmpty>(done, this, core, seg_start,
                                            done);
    }
}

void
Machine::onGetReadyPush(sim::CoreId core, sim::Tick seg_start,
                        rt::TaskId id, std::uint32_t nsucc,
                        sim::Tick completion)
{
    deliverReady(rt::ReadyTask{id, nsucc, core, id, completion});
    getReadyLoop(core, seg_start);
}

void
Machine::onGetReadyEmpty(sim::CoreId core, sim::Tick seg_start,
                         sim::Tick done)
{
    phases_.add(core, cpu::Phase::Sched, done - seg_start);
    if (tbuf_.on(sim::TraceCat::Sched)) {
        tbuf_.span(sim::TracePoint::SchedGetReady,
                   static_cast<std::uint16_t>(core), seg_start, done,
                   UINT32_MAX);
    }
    afterFinish(core);
}

void
Machine::afterFinish(sim::CoreId core)
{
    dispatchEntry(core);
}

void
Machine::onStart()
{
    // Workers start parked; the first ready-task deliveries wake them.
    for (sim::CoreId c = 1; c < cfg_.numCores; ++c)
        goIdle(c);
    masterAdvanceRegion();
}

// ---------------------------------------------------------------------
// Shared plumbing
// ---------------------------------------------------------------------

void
Machine::deliverReady(const rt::ReadyTask &task)
{
    if (tbuf_.on(sim::TraceCat::Task)) {
        tbuf_.instant(sim::TracePoint::TaskReady, sim::traceNoCore,
                      eq_.now(), task.id, task.numSuccessors);
    }
    switch (traits_.sched) {
      case SchedMode::SoftwarePool:
        pool_->push(task);
        if (tbuf_.on(sim::TraceCat::Sched)) {
            tbuf_.counter(sim::TracePoint::PoolDepth, eq_.now(),
                          pool_->size());
        }
        break;
      case SchedMode::HardwareQueues: {
        // Successor tasks enqueue locally; creation-ready tasks are
        // distributed round-robin by Carbon's Global Task Unit.
        sim::CoreId to = task.producerHint != sim::invalidCore
                             ? task.producerHint
                             : static_cast<sim::CoreId>(
                                   carbonRr_++ % cfg_.numCores);
        if (!hwq_->pushWithSpill(to, task))
            sim::fatal("Carbon hardware queues overflowed (increase "
                       "queueEntriesPerCore)");
        break;
      }
      case SchedMode::HardwareFifo:
        break; // already in the DMU Ready Queue
    }
    wakeOneIdle();
}

void
Machine::idlePushBack(sim::CoreId core)
{
    idleLinked_[core] = 1;
    idleNext_[core] = sim::invalidCore;
    idlePrev_[core] = idleTail_;
    if (idleTail_ != sim::invalidCore)
        idleNext_[idleTail_] = core;
    else
        idleHead_ = core;
    idleTail_ = core;
}

void
Machine::idleUnlink(sim::CoreId core)
{
    if (!idleLinked_[core])
        return;
    const sim::CoreId prev = idlePrev_[core];
    const sim::CoreId next = idleNext_[core];
    if (prev != sim::invalidCore)
        idleNext_[prev] = next;
    else
        idleHead_ = next;
    if (next != sim::invalidCore)
        idlePrev_[next] = prev;
    else
        idleTail_ = prev;
    idleLinked_[core] = 0;
}

void
Machine::wakeOneIdle()
{
    if (finished_ || idleHead_ == sim::invalidCore)
        return;
    sim::CoreId core = idleHead_;
    idleUnlink(core);
    wakeCore(core);
}

void
Machine::wakeCore(sim::CoreId core)
{
    cpu::CoreState &cs = cores_[core];
    if (!cs.idle)
        return;
    const sim::Tick idle_since = cs.idleSince;
    phases_.add(core, cpu::Phase::Idle, cs.wakeAt(eq_.now()));
    traceWake(core, idle_since);
    eq_.postIn<&Machine::dispatchEntry>(0, this, core);
}

void
Machine::wakeSpecific(sim::CoreId core)
{
    if (!cores_[core].idle)
        return;
    idleUnlink(core);
    wakeCore(core);
}

void
Machine::goIdle(sim::CoreId core)
{
    if (finished_)
        return;
    cores_[core].parkAt(eq_.now());
    idlePushBack(core);
    ++idleCount_;
    if (tbuf_.on(sim::TraceCat::Core)) {
        tbuf_.counter(sim::TracePoint::IdleCores, eq_.now(),
                      idleCount_);
    }
}

void
Machine::onTaskExecuted()
{
    ++tasksExecuted_;
    ++executedInRegion_;
    const rt::ParallelRegion &region =
        graph_.parallelRegions()[curRegion_];
    if (executedInRegion_ == region.numTasks) {
        regionDone_ = true;
        if (cores_[masterCore].idle) {
            // Remove the master from the idle list and resume it.
            idleUnlink(masterCore);
            const sim::Tick idle_since = cores_[masterCore].idleSince;
            phases_.add(masterCore, cpu::Phase::Idle,
                        cores_[masterCore].wakeAt(eq_.now()));
            traceWake(masterCore, idle_since);
            eq_.postIn<&Machine::advanceToNextRegion>(0, this);
        }
    } else if (masterCreating_ && cores_[masterCore].idle) {
        // The master parked on the creation throttle; a finish may
        // have dropped the in-flight count below the limit.
        wakeSpecific(masterCore);
    }
}

void
Machine::advanceToNextRegion()
{
    ++curRegion_;
    masterAdvanceRegion();
}

void
Machine::flushDmuWaiters()
{
    if (dmuWaiters_.empty())
        return;
    std::vector<DmuRetry> &waiters = dmuWaiterScratch_;
    waiters.swap(dmuWaiters_);
    for (const DmuRetry &w : waiters) {
        if (w.isCreate) {
            eq_.postIn<&Machine::masterIssueCreateOp>(0, this, w.id,
                                                      w.segStart);
        } else {
            eq_.postIn<&Machine::masterIssueDepOp>(0, this, w.id,
                                                   w.depIdx, w.segStart);
        }
    }
    waiters.clear();
}

void
Machine::dumpStats(std::ostream &os)
{
    metrics_.dump(os);
}

// ---------------------------------------------------------------------
// Run + results
// ---------------------------------------------------------------------

MachineResult
Machine::run()
{
    snapRunStart_ = metrics_.snapshot();
    eq_.post<&Machine::onStart>(0, this);
    eq_.run(cfg_.maxTicks);
    if (forkCaptureArmed_ && finished_)
        captureFinal();
    return finalize();
}

MachineResult
Machine::finalize()
{
    MachineResult res;
    if (!finished_) {
        if (eq_.empty()) {
            sim::warn("machine deadlocked: runtime blocked on DMU "
                      "capacity with no tasks in flight");
        } else {
            sim::warn("machine hit the tick watchdog before completion");
        }
        res.makespan = eq_.now();
        res.tasksExecuted = tasksExecuted_;
        res.metrics = metrics_.values();
        return res;
    }
    if (tasksExecuted_ != graph_.numTasks())
        sim::panic("executed ", tasksExecuted_, " of ",
                   graph_.numTasks(), " tasks");

    res.completed = true;
    res.makespan = makespan_;
    res.timeMs = sim::ticksToSeconds(makespan_) * 1e3;
    res.tasksExecuted = tasksExecuted_;

    // Complete idle accounting for cores parked at the end.
    for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
        cpu::CoreState &cs = cores_[c];
        if (cs.idle) {
            if (tbuf_.on(sim::TraceCat::Core)) {
                tbuf_.span(sim::TracePoint::CoreIdle,
                           static_cast<std::uint16_t>(c), cs.idleSince,
                           makespan_);
            }
            phases_.add(c, cpu::Phase::Idle, cs.wakeAt(makespan_));
        }
    }
    res.master = phases_.master();
    res.workersTotal = phases_.workersTotal();
    res.chipTotal = phases_.chipTotal();

    // Fraction of the run the master spent creating tasks (Fig. 10).
    res.masterCreationFraction =
        makespan_ > 0 ? static_cast<double>(masterCreateTicks_)
                            / static_cast<double>(makespan_)
                      : 0.0;

    // ---- Energy ----
    pwr::EnergyAccountant &acct = acct_;
    for (sim::CoreId c = 0; c < cfg_.numCores; ++c) {
        const cpu::PhaseBreakdown &b = phases_.core(c);
        sim::Tick busy = std::min<sim::Tick>(b.busy(), makespan_);
        acct.addCoreTime(busy, makespan_ - busy);
    }
    if (mem_) {
        acct.addCacheLines(mem_->l1LineAccesses(), mem_->l2LineAccesses(),
                           mem_->dramLineAccesses());
    }
    if (dmu_) {
        pwr::CactiModel cacti(22);
        auto specs = dmu::sramSpecs(cfg_.dmu);
        const dmu::DmuAccessCounts &n = dmu_->accessCounts();
        const std::uint64_t counts[] = {n.taskTable, n.depTable, n.tat,
                                        n.dat, n.sla, n.dla, n.rla,
                                        n.readyQueue};
        double pj = 0.0;
        for (std::size_t i = 0; i < specs.size(); ++i)
            pj += cacti.estimate(specs[i]).readEnergyPj
                * static_cast<double>(counts[i]);
        if (traits_.type == RuntimeType::TaskSuperscalar) {
            // CAM-heavy lookups of the original pipeline.
            pj *= 3.0;
            acct.setAcceleratorLeakageMw(
                hw::tssStorageKB(cfg_.tss)
                * pwr::CactiModel::leakageMwPerKB);
        } else {
            acct.setAcceleratorLeakageMw(dmu::totalLeakageMw(cfg_.dmu));
        }
        acct.addAcceleratorPj(pj);
        res.dmuBlockedOps = dmu_->blockedOps();
        res.dmuAccesses = n.total();
        res.datAvgOccupiedSets = dmu_->dat().avgOccupiedSets();
    }
    if (hwq_) {
        acct.setAcceleratorLeakageMw(
            hw::carbonStorageKB(cfg_.carbon, cfg_.numCores)
            * pwr::CactiModel::leakageMwPerKB);
        acct.addAcceleratorPj(
            2.0 * static_cast<double>(hwq_->pushes() + hwq_->localPops()
                                      + hwq_->steals()));
        res.steals = hwq_->steals();
    }
    res.energyJ = acct.totalJoules(makespan_);
    res.edp = acct.edp(makespan_);
    res.avgWatts = acct.avgWatts(makespan_);

    // ---- Metric tree + phase windows ----
    // Degenerate graphs may never trigger a boundary; close them at
    // the end so the three windows always tile [0, makespan].
    if (!sawFirstExec_) {
        warmupEndTick_ = makespan_;
        snapWarmupEnd_ = metrics_.snapshot();
    }
    if (!roiEnded_) {
        roiEndTick_ = makespan_;
        snapRoiEnd_ = metrics_.snapshot();
        roiEnded_ = true;
    }
    const sim::MetricSnapshot snapEnd = metrics_.snapshot();

    res.metrics = metrics_.values();
    auto addWindow = [&](const char *name,
                         const sim::MetricSnapshot &from,
                         const sim::MetricSnapshot &to, sim::Tick t0,
                         sim::Tick t1) {
        const std::string prefix = std::string("window.") + name + ".";
        res.metrics.set(prefix + "ticks",
                        static_cast<double>(t1 - t0));
        const sim::MetricSet w = metrics_.window(from, to);
        for (const auto &[k, v] : w.entries())
            res.metrics.set(prefix + k, v);
    };
    addWindow("warmup", snapRunStart_, snapWarmupEnd_, 0,
              warmupEndTick_);
    addWindow("roi", snapWarmupEnd_, snapRoiEnd_, warmupEndTick_,
              roiEndTick_);
    addWindow("drain", snapRoiEnd_, snapEnd, roiEndTick_, makespan_);
    return res;
}

// ---------------------------------------------------------------------
// Warm-start forking
// ---------------------------------------------------------------------

void
Machine::snapshotState(sim::Snapshot &s)
{
    // Every captured member restores by in-place assignment, so the
    // metric registry's typed pointers into these objects stay valid
    // across restores. The memory model and energy accountant are
    // deliberately absent: both are rebuilt per fork from the fork's
    // own configuration (the memory model is provably untouched before
    // the first task body; the accountant only accumulates during
    // finalize).
    s.capture(phases_);
    s.capture(mesh_);
    if (tracker_)
        tracker_->snapshotState(s);
    if (pool_)
        pool_->snapshotState(s);
    if (dmu_)
        dmu_->snapshotState(s);
    if (hwq_)
        hwq_->snapshotState(s);
    s.capture(lock_);
    s.capture(dmuPipe_);
    s.capture(cores_);
    s.capture(idleNext_);
    s.capture(idlePrev_);
    s.capture(idleLinked_);
    s.capture(idleHead_);
    s.capture(idleTail_);
    s.capture(trace_);
    s.capture(tbuf_);
    s.capture(idleCount_);
    s.capture(curRegion_);
    s.capture(nextToCreate_);
    s.capture(createdInRegion_);
    s.capture(executedInRegion_);
    s.capture(masterCreating_);
    s.capture(regionDone_);
    s.capture(finished_);
    s.capture(dmuWaiters_);
    s.capture(dmuWaiterScratch_);
    s.capture(tasksExecuted_);
    s.capture(carbonRr_);
    s.capture(masterCreateTicks_);
    s.capture(makespan_);
    s.capture(taskCycles_);
    s.capture(createdTotal_);
    s.capture(sawFirstExec_);
    s.capture(roiEnded_);
    s.capture(pendingRoiEnd_);
    s.capture(warmupEndTick_);
    s.capture(roiEndTick_);
    s.capture(snapRunStart_);
    s.capture(snapWarmupEnd_);
    s.capture(snapRoiEnd_);
}

void
Machine::captureWarm(sim::CoreId core, const rt::ReadyTask &task)
{
    warmSnap_.clear();
    if (!eq_.snapshotState(warmSnap_)) {
        // A pending event is not clonable (type-erased lambda shim):
        // leave warmCaptured_ false so the group degrades to cold
        // runs. sawFirstExec_ flips right after this, so the capture
        // is attempted exactly once per run.
        warmSnap_.clear();
        return;
    }
    snapshotState(warmSnap_);
    metrics_.snapshotState(warmSnap_);
    resumeCore_ = core;
    resumeTask_ = task;
    warmCaptured_ = true;
}

void
Machine::captureFinal()
{
    // Only what the finalize tail mutates: phase totals (end-of-run
    // idle accounting), the trace buffer, per-core idle flags, the
    // energy accountant, and the window-closing state for degenerate
    // graphs.
    finalSnap_.clear();
    finalSnap_.capture(phases_);
    finalSnap_.capture(tbuf_);
    finalSnap_.capture(cores_);
    finalSnap_.capture(acct_);
    finalSnap_.capture(sawFirstExec_);
    finalSnap_.capture(roiEnded_);
    finalSnap_.capture(warmupEndTick_);
    finalSnap_.capture(roiEndTick_);
    finalSnap_.capture(snapWarmupEnd_);
    finalSnap_.capture(snapRoiEnd_);
    finalCaptured_ = true;
}

MachineResult
Machine::runFromWarm(const cpu::MachineConfig &cfg)
{
    if (!warmCaptured_)
        sim::panic("runFromWarm without a captured warm snapshot");
    warmSnap_.restore();
    cfg_ = cfg;
    // The memory model's only entry point is the stall computation in
    // startExec, which the checkpoint precedes, so it is provably
    // untouched: rebuilding it from the fork's own parameters yields
    // exactly the state a cold run would have here.
    mem_.reset();
    if (cfg_.enableMemModel)
        mem_ = std::make_unique<mem::MemoryModel>(cfg_.mem,
                                                  cfg_.numCores);
    // Fresh registry over the restored component state (the old one
    // held pointers into the replaced memory model). The snapshot's
    // shape hook has already verified the key set is fork-invariant,
    // so the restored phase-window snapshots stay meaningful.
    metrics_ = sim::MetricRegistry();
    registerMetrics();
    acct_ = pwr::EnergyAccountant(cfg_.power);
    finalCaptured_ = false;
    // Replay the interrupted dispatch: every call site invokes
    // startExec in tail position, so re-entering it at the restored
    // clock — with this fork's memory model computing the first
    // stall — reproduces a cold run's event sequence exactly.
    startExec(resumeCore_, resumeTask_);
    eq_.run(cfg_.maxTicks);
    if (forkCaptureArmed_ && finished_)
        captureFinal();
    return finalize();
}

MachineResult
Machine::runFromFinal(const cpu::MachineConfig &cfg)
{
    if (!finalCaptured_)
        sim::panic("runFromFinal without a captured finalize snapshot");
    finalSnap_.restore();
    cfg_ = cfg;
    acct_ = pwr::EnergyAccountant(cfg_.power);
    return finalize();
}

} // namespace tdm::core
