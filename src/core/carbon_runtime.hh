/**
 * @file
 * Descriptor of the Carbon baseline runtime: hardware task queues with
 * a fixed FIFO + work-stealing policy, software dependence tracking.
 */

#ifndef TDM_CORE_CARBON_RUNTIME_HH
#define TDM_CORE_CARBON_RUNTIME_HH

#include "core/sw_runtime.hh"

namespace tdm::core {

/** Spec of the Carbon runtime. */
RuntimeSpec carbonRuntimeSpec(const cpu::MachineConfig &cfg);

} // namespace tdm::core

#endif // TDM_CORE_CARBON_RUNTIME_HH
