/**
 * @file
 * The TDM ISA extension (Section III-A).
 *
 * Five instructions let the runtime cooperate with the DMU (the paper
 * lists four; commit_task completes the creation sequence, see
 * DESIGN.md):
 *
 *   create_task     rT              -- rT: task descriptor address
 *   add_dependence  rT, rA, rS, dir -- rA: dep address, rS: size
 *   commit_task     rT
 *   finish_task     rT
 *   get_ready_task  -> rT, rN       -- rN: number of successors
 *
 * All have barrier semantics: they may not be reordered and younger
 * instructions wait for them to commit (Section III-D).
 *
 * This header defines a concrete encoding in a reserved major-opcode
 * space, plus an assembler-style formatter. The machine model issues
 * these through the instruction stream cost model; the encoding is what
 * a gem5 ISA patch would add.
 */

#ifndef TDM_CORE_ISA_HH
#define TDM_CORE_ISA_HH

#include <cstdint>
#include <optional>
#include <string>

namespace tdm::core {

/** TDM opcode, placed in a reserved hint space. */
enum class TdmOpcode : std::uint8_t
{
    CreateTask = 0x1,
    AddDependence = 0x2,
    CommitTask = 0x3,
    FinishTask = 0x4,
    GetReadyTask = 0x5,
};

const char *mnemonic(TdmOpcode op);

/** A decoded TDM instruction. */
struct TdmInst
{
    TdmOpcode opcode = TdmOpcode::CreateTask;
    std::uint8_t rTask = 0;  ///< register holding the descriptor address
    std::uint8_t rAddr = 0;  ///< dependence address register
    std::uint8_t rSize = 0;  ///< dependence size register
    bool isOutput = false;   ///< dependence direction flag
    std::uint8_t rDest = 0;  ///< destination register (get_ready_task)
    std::uint8_t rDest2 = 0; ///< successor-count destination register

    bool operator==(const TdmInst &) const = default;
};

/**
 * Encode to a 32-bit instruction word:
 *   [31:24] major opcode 0xEB (reserved custom space)
 *   [23:20] TdmOpcode
 *   [19]    direction flag
 *   [18:14] rTask / rDest
 *   [13:9]  rAddr / rDest2
 *   [8:4]   rSize
 *   [3:0]   reserved
 */
std::uint32_t encode(const TdmInst &inst);

/** Decode; nullopt when the word is not a TDM instruction. */
std::optional<TdmInst> decode(std::uint32_t word);

/** Assembler-style rendering, e.g. "add_dependence x3, x4, x5, out". */
std::string disassemble(const TdmInst &inst);

/** Major opcode byte used by the encoding. */
constexpr std::uint32_t tdmMajorOpcode = 0xEB;

} // namespace tdm::core

#endif // TDM_CORE_ISA_HH
