#include "core/sw_runtime.hh"

namespace tdm::core {

RuntimeSpec
swRuntimeSpec(const cpu::MachineConfig &)
{
    RuntimeSpec s;
    s.type = RuntimeType::Software;
    s.displayName = "SW";
    s.description = "software dependence tracking + software scheduling";
    s.hwStorageKB = 0.0;
    s.hwAreaMm2 = 0.0;
    return s;
}

} // namespace tdm::core
