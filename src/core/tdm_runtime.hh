/**
 * @file
 * Descriptor of the TDM runtime: DMU dependence tracking + flexible
 * software scheduling (the paper's contribution).
 */

#ifndef TDM_CORE_TDM_RUNTIME_HH
#define TDM_CORE_TDM_RUNTIME_HH

#include "core/sw_runtime.hh"

namespace tdm::core {

/** Spec of the TDM runtime: the DMU is the dedicated hardware. */
RuntimeSpec tdmRuntimeSpec(const cpu::MachineConfig &cfg);

} // namespace tdm::core

#endif // TDM_CORE_TDM_RUNTIME_HH
