/**
 * @file
 * Task execution timeline recording — the data behind Figure 1's
 * execution timeline. Each record is one task body execution (which
 * core, which interval, which kernel). The trace can be exported as
 * Chrome-tracing JSON (chrome://tracing / Perfetto) for visual
 * inspection, and summarized into parallelism statistics.
 */

#ifndef TDM_CORE_TASK_TRACE_HH
#define TDM_CORE_TASK_TRACE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "runtime/task.hh"
#include "sim/types.hh"

namespace tdm::core {

/** One task execution interval. */
struct TraceRecord
{
    rt::TaskId task = rt::invalidTask;
    sim::CoreId core = sim::invalidCore;
    sim::Tick start = 0;
    sim::Tick end = 0;
    std::uint16_t kernel = 0;
};

/**
 * Execution timeline of one machine run.
 */
class TaskTrace
{
  public:
    void
    record(rt::TaskId task, sim::CoreId core, sim::Tick start,
           sim::Tick end, std::uint16_t kernel)
    {
        records_.push_back(TraceRecord{task, core, start, end, kernel});
    }

    const std::vector<TraceRecord> &records() const { return records_; }
    bool empty() const { return records_.empty(); }
    std::size_t size() const { return records_.size(); }

    /** Sum of execution intervals / makespan: mean busy cores. */
    double avgParallelism(sim::Tick makespan) const;

    /** Peak number of simultaneously executing tasks. */
    unsigned peakParallelism() const;

    /**
     * Export as Chrome-tracing "traceEvents" JSON; one row per core,
     * microsecond timestamps.
     */
    void writeChromeTrace(std::ostream &os,
                          const char *process_name = "tdm") const;

  private:
    std::vector<TraceRecord> records_;
};

} // namespace tdm::core

#endif // TDM_CORE_TASK_TRACE_HH
