#include "core/runtime_model.hh"

#include "sim/logging.hh"

namespace tdm::core {

namespace {

const RuntimeTraits kTraits[] = {
    {RuntimeType::Software, DepMode::Software, SchedMode::SoftwarePool,
     "sw"},
    {RuntimeType::Tdm, DepMode::Hardware, SchedMode::SoftwarePool, "tdm"},
    {RuntimeType::Carbon, DepMode::Software, SchedMode::HardwareQueues,
     "carbon"},
    {RuntimeType::TaskSuperscalar, DepMode::Hardware,
     SchedMode::HardwareFifo, "tss"},
};

} // namespace

const RuntimeTraits &
traitsOf(RuntimeType type)
{
    for (const auto &t : kTraits)
        if (t.type == type)
            return t;
    sim::panic("unknown runtime type");
}

RuntimeType
runtimeFromString(const std::string &name)
{
    for (const auto &t : kTraits)
        if (name == t.name)
            return t.type;
    sim::fatal("unknown runtime: ", name, " (expected sw/tdm/carbon/tss)");
}

const std::vector<RuntimeType> &
allRuntimeTypes()
{
    static const std::vector<RuntimeType> all = {
        RuntimeType::Software,
        RuntimeType::Tdm,
        RuntimeType::Carbon,
        RuntimeType::TaskSuperscalar,
    };
    return all;
}

} // namespace tdm::core
