#include "core/task_trace.hh"

#include <algorithm>

namespace tdm::core {

double
TaskTrace::avgParallelism(sim::Tick makespan) const
{
    if (makespan == 0)
        return 0.0;
    double busy = 0.0;
    for (const TraceRecord &r : records_)
        busy += static_cast<double>(r.end - r.start);
    return busy / static_cast<double>(makespan);
}

unsigned
TaskTrace::peakParallelism() const
{
    // Sweep start/end events in time order.
    std::vector<std::pair<sim::Tick, int>> events;
    events.reserve(records_.size() * 2);
    for (const TraceRecord &r : records_) {
        events.emplace_back(r.start, +1);
        events.emplace_back(r.end, -1);
    }
    std::sort(events.begin(), events.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first < b.first;
                  return a.second < b.second; // ends before starts
              });
    int cur = 0, peak = 0;
    for (const auto &[t, d] : events) {
        cur += d;
        peak = std::max(peak, cur);
    }
    return static_cast<unsigned>(peak);
}

void
TaskTrace::writeChromeTrace(std::ostream &os,
                            const char *process_name) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceRecord &r : records_) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":\"task" << r.task << "/k" << r.kernel
           << "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":"
           << sim::ticksToUs(r.start)
           << ",\"dur\":" << sim::ticksToUs(r.end - r.start)
           << ",\"pid\":\"" << process_name << "\",\"tid\":" << r.core
           << '}';
    }
    os << "]}";
}

} // namespace tdm::core
