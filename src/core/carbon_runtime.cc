#include "core/carbon_runtime.hh"

#include "hwbaselines/carbon.hh"

namespace tdm::core {

RuntimeSpec
carbonRuntimeSpec(const cpu::MachineConfig &cfg)
{
    RuntimeSpec s;
    s.type = RuntimeType::Carbon;
    s.displayName = "Carbon";
    s.description =
        "hardware task queues (fixed FIFO + stealing), software deps";
    s.hwStorageKB = hw::carbonStorageKB(cfg.carbon, cfg.numCores);
    s.hwAreaMm2 = hw::carbonAreaMm2(cfg.carbon, cfg.numCores);
    return s;
}

} // namespace tdm::core
