#include "core/isa.hh"

#include <sstream>

namespace tdm::core {

const char *
mnemonic(TdmOpcode op)
{
    switch (op) {
      case TdmOpcode::CreateTask: return "create_task";
      case TdmOpcode::AddDependence: return "add_dependence";
      case TdmOpcode::CommitTask: return "commit_task";
      case TdmOpcode::FinishTask: return "finish_task";
      case TdmOpcode::GetReadyTask: return "get_ready_task";
    }
    return "?";
}

std::uint32_t
encode(const TdmInst &inst)
{
    std::uint32_t w = tdmMajorOpcode << 24;
    w |= (static_cast<std::uint32_t>(inst.opcode) & 0xF) << 20;
    w |= (inst.isOutput ? 1u : 0u) << 19;
    std::uint32_t r1, r2;
    if (inst.opcode == TdmOpcode::GetReadyTask) {
        r1 = inst.rDest;
        r2 = inst.rDest2;
    } else {
        r1 = inst.rTask;
        r2 = inst.rAddr;
    }
    w |= (r1 & 0x1F) << 14;
    w |= (r2 & 0x1F) << 9;
    w |= (static_cast<std::uint32_t>(inst.rSize) & 0x1F) << 4;
    return w;
}

std::optional<TdmInst>
decode(std::uint32_t word)
{
    if ((word >> 24) != tdmMajorOpcode)
        return std::nullopt;
    std::uint32_t op = (word >> 20) & 0xF;
    if (op < 0x1 || op > 0x5)
        return std::nullopt;
    TdmInst inst;
    inst.opcode = static_cast<TdmOpcode>(op);
    inst.isOutput = ((word >> 19) & 1) != 0;
    std::uint8_t r1 = (word >> 14) & 0x1F;
    std::uint8_t r2 = (word >> 9) & 0x1F;
    inst.rSize = (word >> 4) & 0x1F;
    if (inst.opcode == TdmOpcode::GetReadyTask) {
        inst.rDest = r1;
        inst.rDest2 = r2;
    } else {
        inst.rTask = r1;
        inst.rAddr = r2;
    }
    return inst;
}

std::string
disassemble(const TdmInst &inst)
{
    std::ostringstream oss;
    oss << mnemonic(inst.opcode);
    switch (inst.opcode) {
      case TdmOpcode::CreateTask:
      case TdmOpcode::CommitTask:
      case TdmOpcode::FinishTask:
        oss << " x" << static_cast<int>(inst.rTask);
        break;
      case TdmOpcode::AddDependence:
        oss << " x" << static_cast<int>(inst.rTask) << ", x"
            << static_cast<int>(inst.rAddr) << ", x"
            << static_cast<int>(inst.rSize) << ", "
            << (inst.isOutput ? "out" : "in");
        break;
      case TdmOpcode::GetReadyTask:
        oss << " x" << static_cast<int>(inst.rDest) << ", x"
            << static_cast<int>(inst.rDest2);
        break;
    }
    return oss.str();
}

} // namespace tdm::core
