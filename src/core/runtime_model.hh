/**
 * @file
 * Runtime-system models evaluated by the paper, expressed as two
 * orthogonal axes: where dependence management happens (software
 * tracker vs DMU) and where scheduling happens (software pool vs
 * hardware queues).
 *
 *   Software        = SW deps + SW pool   (the baseline runtime)
 *   Tdm             = DMU deps + SW pool  (this paper)
 *   Carbon          = SW deps + HW distributed queues [10]
 *   TaskSuperscalar = DMU deps + HW FIFO  [11]
 */

#ifndef TDM_CORE_RUNTIME_MODEL_HH
#define TDM_CORE_RUNTIME_MODEL_HH

#include <string>
#include <vector>

namespace tdm::core {

/** Which runtime system drives the machine. */
enum class RuntimeType
{
    Software,
    Tdm,
    Carbon,
    TaskSuperscalar,
};

/** Where dependence management happens. */
enum class DepMode { Software, Hardware };

/** Where task scheduling happens. */
enum class SchedMode
{
    SoftwarePool,     ///< lock-protected pool + pluggable policy
    HardwareQueues,   ///< per-core HW queues + fixed FIFO/steal (Carbon)
    HardwareFifo,     ///< DMU Ready Queue popped directly (Task Supersc.)
};

/** Static description of a runtime model. */
struct RuntimeTraits
{
    RuntimeType type;
    DepMode dep;
    SchedMode sched;
    const char *name;

    bool usesDmu() const { return dep == DepMode::Hardware; }
    bool flexibleScheduling() const {
        return sched == SchedMode::SoftwarePool;
    }
};

/** Traits of each runtime type. */
const RuntimeTraits &traitsOf(RuntimeType type);

/** Parse "sw" / "tdm" / "carbon" / "tss". */
RuntimeType runtimeFromString(const std::string &name);

/** All four runtimes, in the paper's comparison order. */
const std::vector<RuntimeType> &allRuntimeTypes();

} // namespace tdm::core

#endif // TDM_CORE_RUNTIME_MODEL_HH
