/**
 * @file
 * Descriptor of the pure-software baseline runtime (Nanos++-style):
 * dependence tracking and scheduling both in software. This is the
 * normalization baseline of every figure in the paper.
 */

#ifndef TDM_CORE_SW_RUNTIME_HH
#define TDM_CORE_SW_RUNTIME_HH

#include <string>

#include "core/runtime_model.hh"
#include "cpu/machine_config.hh"

namespace tdm::core {

/** Static description of one runtime system's hardware cost. */
struct RuntimeSpec
{
    RuntimeType type;
    std::string displayName;
    std::string description;
    double hwStorageKB = 0.0; ///< dedicated hardware storage
    double hwAreaMm2 = 0.0;   ///< dedicated hardware area
};

/** Spec of the software runtime (no dedicated hardware). */
RuntimeSpec swRuntimeSpec(const cpu::MachineConfig &cfg);

} // namespace tdm::core

#endif // TDM_CORE_SW_RUNTIME_HH
