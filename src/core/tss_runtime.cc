#include "core/tss_runtime.hh"

#include "core/carbon_runtime.hh"
#include "core/tdm_runtime.hh"
#include "hwbaselines/task_superscalar.hh"
#include "sim/logging.hh"

namespace tdm::core {

RuntimeSpec
tssRuntimeSpec(const cpu::MachineConfig &cfg)
{
    RuntimeSpec s;
    s.type = RuntimeType::TaskSuperscalar;
    s.displayName = "TaskSS";
    s.description =
        "hardware dependence tracking + fixed hardware FIFO scheduling";
    s.hwStorageKB = hw::tssStorageKB(cfg.tss);
    s.hwAreaMm2 = hw::tssAreaMm2(cfg.tss);
    return s;
}

RuntimeSpec
runtimeSpec(RuntimeType type, const cpu::MachineConfig &cfg)
{
    switch (type) {
      case RuntimeType::Software:
        return swRuntimeSpec(cfg);
      case RuntimeType::Tdm:
        return tdmRuntimeSpec(cfg);
      case RuntimeType::Carbon:
        return carbonRuntimeSpec(cfg);
      case RuntimeType::TaskSuperscalar:
        return tssRuntimeSpec(cfg);
    }
    sim::panic("unknown runtime type");
}

} // namespace tdm::core
