/**
 * @file
 * LU decomposition of a 2048x2048 blocked sparse matrix: getrf on the
 * diagonal tile, trsm on the row and column panels, gemm on the
 * trailing submatrix. The paper's input is sparse; the dependence
 * structure is that of the dense tiling (every tile task exists), with
 * the kernel cost scaled down to the paper's measured 424 us average
 * (sparse tiles do proportionally less work).
 *
 * Granularity = tile bytes. Table II: 64 KB tiles (M=128) -> N=16 and
 * 1496 tasks.
 */

#include "workloads/workload.hh"

#include <cmath>

#include "sim/logging.hh"

namespace tdm::wl {

namespace {
constexpr unsigned matrixDim = 2048;
constexpr double cyclesPerFlop = 0.205; ///< sparse-density scaling
constexpr double swOptBytes = 65536.0;
constexpr double tdmOptBytes = 65536.0;

enum Kernel : std::uint16_t { Kgetrf = 1, KtrsmRow, KtrsmCol, Kgemm };
} // namespace

rt::TaskGraph
buildLu(const WorkloadParams &p)
{
    double bytes = p.granularity > 0.0
                       ? p.granularity
                       : (p.tdmOptimal ? tdmOptBytes : swOptBytes);
    unsigned m = static_cast<unsigned>(std::lround(
        std::sqrt(bytes / 4.0)));
    if (m == 0 || matrixDim % m != 0)
        sim::fatal("lu: tile bytes ", bytes, " does not tile the matrix");
    unsigned n = matrixDim / m;

    rt::TaskGraph g("lu");
    g.swDepCostFactor = 1.5;

    std::vector<rt::RegionId> tile(static_cast<std::size_t>(n) * n);
    for (auto &t : tile)
        t = g.addRegion(static_cast<std::uint64_t>(m) * m * 4);
    auto at = [&](unsigned i, unsigned j) { return tile[i * n + j]; };

    double m3 = static_cast<double>(m) * m * m;
    double getrf_cyc = 2.0 / 3.0 * m3 * cyclesPerFlop;
    double trsm_cyc = 1.0 * m3 * cyclesPerFlop;
    double gemm_cyc = 2.0 * m3 * cyclesPerFlop;

    g.beginParallel(sim::usToTicks(120.0));
    std::uint64_t key = 0;
    for (unsigned k = 0; k < n; ++k) {
        g.createTask(noisyCycles(getrf_cyc, p.seed, ++key,
                                 p.durationNoise), Kgetrf);
        g.dep(at(k, k), rt::DepDir::InOut);
        for (unsigned j = k + 1; j < n; ++j) {
            g.createTask(noisyCycles(trsm_cyc, p.seed, ++key,
                                     p.durationNoise), KtrsmRow);
            g.dep(at(k, k), rt::DepDir::In);
            g.dep(at(k, j), rt::DepDir::InOut);
        }
        for (unsigned i = k + 1; i < n; ++i) {
            g.createTask(noisyCycles(trsm_cyc, p.seed, ++key,
                                     p.durationNoise), KtrsmCol);
            g.dep(at(k, k), rt::DepDir::In);
            g.dep(at(i, k), rt::DepDir::InOut);
        }
        for (unsigned i = k + 1; i < n; ++i) {
            for (unsigned j = k + 1; j < n; ++j) {
                g.createTask(noisyCycles(gemm_cyc, p.seed, ++key,
                                         p.durationNoise), Kgemm);
                g.dep(at(i, k), rt::DepDir::In);
                g.dep(at(k, j), rt::DepDir::In);
                g.dep(at(i, j), rt::DepDir::InOut);
            }
        }
    }
    return g;
}

} // namespace tdm::wl
