/**
 * @file
 * Tiled QR factorization of a dense 1024x1024 matrix: geqrt on the
 * diagonal tile, tsqrt coupling the diagonal with column tiles, unmqr
 * applying the reflectors along the row, and ssrfb updating the
 * trailing submatrix.
 *
 * QR's dependences are declared on tile views of a column-major dense
 * array; in a Nanos++-style software region map those views are
 * strided/overlapping regions, whose splits make dependence matching
 * extremely expensive (the paper's master thread spends 92% of its
 * time in DEPS). The `fragmented` flag on every dependence models
 * this; the DMU is insensitive to it because the alias table matches
 * base addresses.
 *
 * Granularity = tile elements per side M. Table II: SW optimal M=64
 * (N=16, 1496 tasks of ~1 ms); TDM optimal M=32 (N=32, 11440 tasks of
 * ~96 us).
 */

#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace tdm::wl {

namespace {
constexpr unsigned matrixDim = 1024;
constexpr double cyclesPerFlopUnit = 1.39;
constexpr double swOptM = 64.0;
constexpr double tdmOptM = 32.0;

enum Kernel : std::uint16_t { Kgeqrt = 1, Ktsqrt, Kunmqr, Kssrfb };
} // namespace

rt::TaskGraph
buildQr(const WorkloadParams &p)
{
    unsigned m = static_cast<unsigned>(
        p.granularity > 0.0 ? p.granularity
                            : (p.tdmOptimal ? tdmOptM : swOptM));
    if (m == 0 || matrixDim % m != 0)
        sim::fatal("qr: tile side ", m, " does not tile the matrix");
    unsigned n = matrixDim / m;

    rt::TaskGraph g("qr");
    g.swDepCostFactor = 1.0; // costs come from the fragmented flag

    std::vector<rt::RegionId> tile(static_cast<std::size_t>(n) * n);
    for (auto &t : tile)
        t = g.addRegion(static_cast<std::uint64_t>(m) * m * 4);
    auto at = [&](unsigned i, unsigned j) { return tile[i * n + j]; };

    double m3 = static_cast<double>(m) * m * m;
    double geqrt_cyc = 2.0 * m3 * cyclesPerFlopUnit;
    double tsqrt_cyc = 3.0 * m3 * cyclesPerFlopUnit;
    double unmqr_cyc = 3.0 * m3 * cyclesPerFlopUnit;
    double ssrfb_cyc = 6.0 * m3 * cyclesPerFlopUnit;

    constexpr bool frag = true;
    g.beginParallel(sim::usToTicks(120.0));
    std::uint64_t key = 0;
    for (unsigned k = 0; k < n; ++k) {
        g.createTask(noisyCycles(geqrt_cyc, p.seed, ++key,
                                 p.durationNoise), Kgeqrt);
        g.dep(at(k, k), rt::DepDir::InOut, frag);
        for (unsigned j = k + 1; j < n; ++j) {
            g.createTask(noisyCycles(unmqr_cyc, p.seed, ++key,
                                     p.durationNoise), Kunmqr);
            g.dep(at(k, k), rt::DepDir::In, frag);
            g.dep(at(k, j), rt::DepDir::InOut, frag);
        }
        for (unsigned i = k + 1; i < n; ++i) {
            g.createTask(noisyCycles(tsqrt_cyc, p.seed, ++key,
                                     p.durationNoise), Ktsqrt);
            g.dep(at(k, k), rt::DepDir::InOut, frag);
            g.dep(at(i, k), rt::DepDir::InOut, frag);
            for (unsigned j = k + 1; j < n; ++j) {
                g.createTask(noisyCycles(ssrfb_cyc, p.seed, ++key,
                                         p.durationNoise), Kssrfb);
                g.dep(at(i, k), rt::DepDir::In, frag);
                g.dep(at(k, j), rt::DepDir::In, frag);
                g.dep(at(i, j), rt::DepDir::InOut, frag);
            }
        }
    }
    return g;
}

} // namespace tdm::wl
