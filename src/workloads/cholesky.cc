/**
 * @file
 * Cholesky factorization of a dense 2048x2048 blocked matrix, exactly
 * following the annotated loop nest of Figure 1: sgemm, ssyrk, spotrf
 * and strsm tasks on MxM tiles.
 *
 * Granularity = tile bytes (M*M*4). Table II: 16 KB tiles (M=64) give
 * N=32 tile rows and 5984 tasks of ~183 us.
 */

#include "workloads/workload.hh"

#include <cmath>

#include "sim/logging.hh"

namespace tdm::wl {

namespace {
constexpr unsigned matrixDim = 2048;
constexpr double cyclesPerFlop = 0.80;
constexpr double swOptBytes = 16384.0;
constexpr double tdmOptBytes = 16384.0;

enum Kernel : std::uint16_t { Kgemm = 1, Ksyrk, Kpotrf, Ktrsm };
} // namespace

rt::TaskGraph
buildCholesky(const WorkloadParams &p)
{
    double bytes = p.granularity > 0.0
                       ? p.granularity
                       : (p.tdmOptimal ? tdmOptBytes : swOptBytes);
    unsigned m = static_cast<unsigned>(std::lround(
        std::sqrt(bytes / 4.0)));
    if (m == 0 || matrixDim % m != 0)
        sim::fatal("cholesky: tile bytes ", bytes,
                   " does not tile a 2048x2048 float matrix");
    unsigned n = matrixDim / m;

    rt::TaskGraph g("cholesky");
    g.swDepCostFactor = 5.0; // deep region-tree matching (DESIGN.md)

    // Blocked storage A[N][N][M][M]: contiguous tiles.
    std::vector<rt::RegionId> tile(static_cast<std::size_t>(n) * n);
    for (auto &t : tile)
        t = g.addRegion(static_cast<std::uint64_t>(m) * m * 4);
    auto at = [&](unsigned i, unsigned j) { return tile[i * n + j]; };

    double m3 = static_cast<double>(m) * m * m;
    double gemm_cyc = 2.0 * m3 * cyclesPerFlop;
    double syrk_cyc = 1.0 * m3 * cyclesPerFlop;
    double trsm_cyc = 1.0 * m3 * cyclesPerFlop;
    double potrf_cyc = m3 / 3.0 * cyclesPerFlop;

    g.beginParallel(sim::usToTicks(120.0));
    std::uint64_t key = 0;
    for (unsigned j = 0; j < n; ++j) {
        for (unsigned k = 0; k < j; ++k) {
            for (unsigned i = j + 1; i < n; ++i) {
                g.createTask(noisyCycles(gemm_cyc, p.seed, ++key,
                                         p.durationNoise), Kgemm);
                g.dep(at(i, k), rt::DepDir::In);
                g.dep(at(j, k), rt::DepDir::In);
                g.dep(at(i, j), rt::DepDir::InOut);
            }
        }
        for (unsigned i = j + 1; i < n; ++i) {
            g.createTask(noisyCycles(syrk_cyc, p.seed, ++key,
                                     p.durationNoise), Ksyrk);
            // The paper's listing reads A[j][i]; the lower-triangular
            // factorization consumes the column tile A[i][j] (the
            // listing transposes the index pair), which is what links
            // syrk to the gemm/trsm updates in the TDG of Figure 1.
            g.dep(at(i, j), rt::DepDir::In);
            g.dep(at(j, j), rt::DepDir::InOut);
        }
        g.createTask(noisyCycles(potrf_cyc, p.seed, ++key,
                                 p.durationNoise), Kpotrf);
        g.dep(at(j, j), rt::DepDir::InOut);
        for (unsigned i = j + 1; i < n; ++i) {
            g.createTask(noisyCycles(trsm_cyc, p.seed, ++key,
                                     p.durationNoise), Ktrsm);
            g.dep(at(j, j), rt::DepDir::In);
            g.dep(at(i, j), rt::DepDir::InOut);
        }
    }
    return g;
}

} // namespace tdm::wl
