/**
 * @file
 * Ferret (PARSECSs): 6-stage similarity-search pipeline (load, segment,
 * extract, vectorize, rank, output). The first and last stages are
 * serialized (input reading and output ordering); the middle stages are
 * parallel across query items, each stage consuming the previous
 * stage's output for that item.
 *
 * Table II: 256 items x 6 stages = 1536 tasks of ~7.7 ms.
 */

#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace tdm::wl {

namespace {
constexpr unsigned defaultItems = 256;
constexpr unsigned numStages = 6;
// Per-stage durations in us; rank dominates, as in the real benchmark.
constexpr double stageUs[numStages] = {1100, 4400, 9900, 14300, 13100,
                                       3200};
} // namespace

rt::TaskGraph
buildFerret(const WorkloadParams &p)
{
    unsigned items = p.granularity > 0.0
                         ? static_cast<unsigned>(p.granularity)
                         : defaultItems;
    if (items < 1)
        sim::fatal("ferret: need at least 1 item");

    rt::TaskGraph g("ferret");
    g.swDepCostFactor = 1.0;

    rt::RegionId load_state = g.addRegion(64);
    rt::RegionId out_state = g.addRegion(64);
    // Per item, per stage output buffer.
    std::vector<rt::RegionId> buf(static_cast<std::size_t>(items)
                                  * (numStages - 1));
    for (auto &b : buf)
        b = g.addRegion(96 * 1024);
    auto out_of = [&](unsigned item, unsigned stage) {
        return buf[item * (numStages - 1) + stage];
    };

    g.beginParallel(sim::usToTicks(150.0));
    for (unsigned i = 0; i < items; ++i) {
        for (unsigned s = 0; s < numStages; ++s) {
            std::uint64_t key = static_cast<std::uint64_t>(i) * numStages
                              + s;
            g.createTask(noisyCycles(sim::usToTicks(stageUs[s]), p.seed,
                                     key, p.durationNoise),
                         static_cast<std::uint16_t>(s));
            if (s == 0) {
                g.dep(load_state, rt::DepDir::InOut); // serial input
                g.dep(out_of(i, 0), rt::DepDir::Out);
            } else if (s == numStages - 1) {
                g.dep(out_of(i, s - 1), rt::DepDir::In);
                g.dep(out_state, rt::DepDir::InOut); // serial output
            } else {
                g.dep(out_of(i, s - 1), rt::DepDir::In);
                g.dep(out_of(i, s), rt::DepDir::Out);
            }
        }
    }
    return g;
}

} // namespace tdm::wl
