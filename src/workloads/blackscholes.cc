/**
 * @file
 * Blackscholes (PARSECSs): fork-join option pricing.
 *
 * The option array is split into independent slices; each time-step run
 * re-prices every slice, and a slice's task for run r depends (inout)
 * on the same slice's task for run r-1. The result is S independent
 * chains of R dependent tasks (Section VI-A describes the 64-chain
 * configuration). Granularity = slice size in KB: smaller slices mean
 * more, shorter chains.
 *
 * Table II: SW optimal 4 KB slices -> 64 chains x 51 runs = 3264 tasks
 * of ~1770 us; TDM optimal 2 KB -> 128 chains, ~823 us tasks.
 */

#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace tdm::wl {

namespace {
constexpr double totalKB = 256.0;      ///< option array size
constexpr int numRuns = 51;            ///< pricing iterations
constexpr double cyclesPerKB = 885000; ///< per-task work per slice KB
constexpr double swOptKB = 4.0;
constexpr double tdmOptKB = 2.0;
} // namespace

rt::TaskGraph
buildBlackscholes(const WorkloadParams &p)
{
    double slice_kb = p.granularity > 0.0
                          ? p.granularity
                          : (p.tdmOptimal ? tdmOptKB : swOptKB);
    unsigned chains = static_cast<unsigned>(totalKB / slice_kb);
    if (chains < 1)
        sim::fatal("blackscholes: slice larger than the option array");

    rt::TaskGraph g("blackscholes");
    g.swDepCostFactor = 1.0;

    std::vector<rt::RegionId> slice(chains);
    for (unsigned c = 0; c < chains; ++c)
        slice[c] = g.addRegion(static_cast<std::uint64_t>(
            slice_kb * 1024.0));

    g.beginParallel(sim::usToTicks(50.0));
    double base = slice_kb * cyclesPerKB;
    // Run-major creation order: the master sweeps all slices each run,
    // exactly like the annotated source loop.
    for (int r = 0; r < numRuns; ++r) {
        for (unsigned c = 0; c < chains; ++c) {
            std::uint64_t key = static_cast<std::uint64_t>(r) * chains + c;
            g.createTask(noisyCycles(base, p.seed, key, p.durationNoise),
                         /*kernel=*/0);
            g.dep(slice[c], rt::DepDir::InOut);
        }
    }
    return g;
}

} // namespace tdm::wl
