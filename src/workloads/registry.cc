#include "workloads/registry.hh"

#include "sim/logging.hh"

namespace tdm::wl {

const std::vector<WorkloadInfo> &
allWorkloads()
{
    static const std::vector<WorkloadInfo> all = {
        {"blackscholes", "bla", "slice KB",
         {1, 2, 4, 8}, 4, 2, &buildBlackscholes},
        {"cholesky", "cho", "tile bytes",
         {4096, 16384, 65536, 262144}, 16384, 16384, &buildCholesky},
        {"dedup", "ded", "chunks", {}, 122, 122, &buildDedup},
        {"ferret", "fer", "items", {}, 256, 256, &buildFerret},
        {"fluidanimate", "flu", "partitions",
         {256, 128, 64, 32}, 64, 64, &buildFluidanimate},
        {"histogram", "hist", "tile bytes",
         {4096, 16384, 65536, 262144, 1048576}, 262144, 262144,
         &buildHistogram},
        {"lu", "LU", "tile bytes",
         {4096, 16384, 65536}, 65536, 65536, &buildLu},
        {"qr", "QR", "tile side",
         {16, 32, 64, 128, 256}, 64, 32, &buildQr},
        {"streamcluster", "str", "points/task",
         {64, 128, 256, 512, 1024}, 256, 256, &buildStreamcluster},
    };
    return all;
}

const WorkloadInfo &
findWorkload(const std::string &name)
{
    for (const WorkloadInfo &w : allWorkloads())
        if (w.name == name || w.shortName == name)
            return w;
    sim::fatal("unknown workload: ", name);
}

rt::TaskGraph
buildWorkload(const std::string &name, const WorkloadParams &params)
{
    return findWorkload(name).build(params);
}

} // namespace tdm::wl
