/**
 * @file
 * Dedup (PARSECSs): pipeline parallelism with a serialized I/O stage.
 *
 * Per input chunk, a compute-intensive task (fragment+hash+compress
 * collapsed) produces a compressed buffer, and an I/O-intensive reorder
 * task writes it to the output stream. I/O tasks are serialized by an
 * inout dependence on the output-file region (Section VI-A: "I/O tasks
 * cannot be executed in parallel, enforced by means of control
 * dependencies"). The pipeline recycles input buffers with a bounded
 * window: reorder task i releases (out-deps) the chunk buffer of chunk
 * i+W, which (a) bounds the in-flight footprint exactly like the real
 * benchmark's fixed buffer pool and (b) gives I/O tasks two successors,
 * so the Successor scheduler prioritizes the serialized chain and
 * overlaps I/O with computation.
 *
 * Table II: 244 tasks of ~27.7 ms (122 chunks x 2 stages).
 */

#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace tdm::wl {

namespace {
constexpr unsigned defaultChunks = 122;
constexpr unsigned window = 64;          ///< buffer-pool depth
constexpr double computeUs = 53000.0;    ///< compress stage
constexpr double ioUs = 2450.0;          ///< reorder/write stage

enum Kernel : std::uint16_t { Kcompute = 1, Kio };
} // namespace

rt::TaskGraph
buildDedup(const WorkloadParams &p)
{
    // Dedup's granularity is fixed by the pipeline structure (Fig. 6
    // omits it); granularity, when given, scales the chunk count.
    unsigned chunks = p.granularity > 0.0
                          ? static_cast<unsigned>(p.granularity)
                          : defaultChunks;
    if (chunks < 2)
        sim::fatal("dedup: need at least 2 chunks");

    rt::TaskGraph g("dedup");
    g.swDepCostFactor = 1.0;

    std::vector<rt::RegionId> chunk_buf(chunks);
    std::vector<rt::RegionId> compressed(chunks);
    for (unsigned i = 0; i < chunks; ++i) {
        chunk_buf[i] = g.addRegion(512 * 1024);
        compressed[i] = g.addRegion(256 * 1024);
    }
    rt::RegionId out_file = g.addRegion(64);

    g.beginParallel(sim::usToTicks(200.0));
    for (unsigned i = 0; i < chunks; ++i) {
        g.createTask(noisyCycles(sim::usToTicks(computeUs), p.seed,
                                 2 * i, p.durationNoise), Kcompute);
        g.dep(chunk_buf[i], rt::DepDir::In);
        g.dep(compressed[i], rt::DepDir::Out);

        g.createTask(noisyCycles(sim::usToTicks(ioUs), p.seed,
                                 2 * i + 1, p.durationNoise), Kio);
        g.dep(compressed[i], rt::DepDir::In);
        g.dep(out_file, rt::DepDir::InOut);
        if (i + window < chunks)
            g.dep(chunk_buf[i + window], rt::DepDir::Out);
    }
    return g;
}

} // namespace tdm::wl
