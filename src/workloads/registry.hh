/**
 * @file
 * Registry of the nine benchmarks, in the paper's figure order.
 */

#ifndef TDM_WORKLOADS_REGISTRY_HH
#define TDM_WORKLOADS_REGISTRY_HH

#include "workloads/workload.hh"

namespace tdm::wl {

/** All benchmarks: bla, cho, ded, fer, flu, hist, LU, QR, str. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Find by full or short name; fatal if unknown. */
const WorkloadInfo &findWorkload(const std::string &name);

/** Convenience: build a benchmark's graph by name. */
rt::TaskGraph buildWorkload(const std::string &name,
                            const WorkloadParams &params = {});

} // namespace tdm::wl

#endif // TDM_WORKLOADS_REGISTRY_HH
