/**
 * @file
 * Histogram: cumulative histogram of a 4096x4096 image (Section IV-B).
 * Leaf tasks scan image tiles into private histograms; a binary
 * reduction tree merges them; a final task accumulates the cumulative
 * distribution. Dependences span the whole execution (a merge near the
 * root waits on tasks created much earlier), which is why the paper
 * calls out its pressure on the TAT: almost every task of the
 * benchmark is in flight simultaneously.
 *
 * Granularity = tile bytes. Table II: 256 KB tiles -> 256 leaves + 255
 * merges + 1 final = 512 tasks of ~3.8 ms.
 */

#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace tdm::wl {

namespace {
constexpr std::uint64_t imageBytes = 64ULL * 1024 * 1024;
constexpr double cyclesPerByte = 58.0; ///< multi-pass scan kernel
constexpr double mergeUs = 25.0;
constexpr double swOptBytes = 262144.0;
constexpr double tdmOptBytes = 262144.0;

enum Kernel : std::uint16_t { Kleaf = 1, Kmerge, Kfinal };
} // namespace

rt::TaskGraph
buildHistogram(const WorkloadParams &p)
{
    double tile_bytes = p.granularity > 0.0
                            ? p.granularity
                            : (p.tdmOptimal ? tdmOptBytes : swOptBytes);
    unsigned leaves = static_cast<unsigned>(
        static_cast<double>(imageBytes) / tile_bytes);
    if (leaves < 2 || !sim::isPowerOf2(leaves))
        sim::fatal("histogram: tile size must yield a power-of-two "
                   "number of leaves, got ", leaves);

    rt::TaskGraph g("histogram");
    g.swDepCostFactor = 1.5;

    std::vector<rt::RegionId> tile(leaves);
    for (auto &t : tile)
        t = g.addRegion(static_cast<std::uint64_t>(tile_bytes));
    // One private histogram per tree node (leaves + internal).
    std::vector<rt::RegionId> hist(2 * leaves - 1);
    for (auto &h : hist)
        h = g.addRegion(64); // 10 bins + padding

    g.beginParallel(sim::usToTicks(80.0));
    double leaf_cycles = tile_bytes * cyclesPerByte;
    std::uint64_t key = 0;

    for (unsigned i = 0; i < leaves; ++i) {
        g.createTask(noisyCycles(leaf_cycles, p.seed, ++key,
                                 p.durationNoise), Kleaf);
        g.dep(tile[i], rt::DepDir::In);
        g.dep(hist[i], rt::DepDir::Out);
    }
    // Binary merge tree: level by level.
    unsigned level_base = 0;
    unsigned level_size = leaves;
    unsigned next_node = leaves;
    while (level_size > 1) {
        for (unsigned i = 0; i + 1 < level_size; i += 2) {
            g.createTask(noisyCycles(sim::usToTicks(mergeUs), p.seed,
                                     ++key, p.durationNoise), Kmerge);
            g.dep(hist[level_base + i], rt::DepDir::In);
            g.dep(hist[level_base + i + 1], rt::DepDir::In);
            g.dep(hist[next_node], rt::DepDir::Out);
            ++next_node;
        }
        level_base += level_size;
        level_size /= 2;
    }
    // Cumulative pass over the root histogram.
    g.createTask(noisyCycles(sim::usToTicks(mergeUs * 2), p.seed, ++key,
                             p.durationNoise), Kfinal);
    g.dep(hist[2 * leaves - 2], rt::DepDir::InOut);
    return g;
}

} // namespace tdm::wl
