/**
 * @file
 * Workload generators: analytic task-graph builders for the paper's
 * nine benchmarks (Section IV-B).
 *
 * Each builder reproduces the benchmark's parallelization strategy,
 * dependence structure, task counts and task durations (Table II) at a
 * configurable granularity (Figure 6's sweep axis). Durations carry a
 * small deterministic multiplicative noise so scheduling effects such
 * as load imbalance are visible.
 */

#ifndef TDM_WORKLOADS_WORKLOAD_HH
#define TDM_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "runtime/task_graph.hh"
#include "sim/types.hh"

namespace tdm::wl {

/** Parameters common to all workload builders. */
struct WorkloadParams
{
    /**
     * Task granularity in the benchmark's own unit (block bytes,
     * partitions, points per task, ...). 0 selects the default:
     * the software-optimal granularity, or the TDM-optimal one when
     * tdmOptimal is set (Table II lists both).
     */
    double granularity = 0.0;

    /** Use the TDM-optimal default granularity. */
    bool tdmOptimal = false;

    /** Seed for the deterministic duration noise. */
    std::uint64_t seed = 1;

    /** Relative sigma of task-duration noise. */
    double durationNoise = 0.05;
};

/** Builder function type. */
using BuilderFn = rt::TaskGraph (*)(const WorkloadParams &);

/** Static description of one benchmark. */
struct WorkloadInfo
{
    std::string name;        ///< full name ("cholesky")
    std::string shortName;   ///< figure label ("cho")
    std::string granUnit;    ///< unit of the granularity axis
    std::vector<double> granSweep; ///< Figure 6 sweep values
    double swOptimal = 0.0;  ///< SW-optimal granularity (Table II)
    double tdmOptimal = 0.0; ///< TDM-optimal granularity (Table II)
    BuilderFn build = nullptr;
};

/** Deterministically noisy task duration in cycles. */
sim::Tick noisyCycles(double base_cycles, std::uint64_t seed,
                      std::uint64_t key, double sigma);

/** Resolve the effective granularity of @p params for @p info. */
double effectiveGranularity(const WorkloadInfo &info,
                            const WorkloadParams &params);

// Builders (one per benchmark).
rt::TaskGraph buildBlackscholes(const WorkloadParams &params);
rt::TaskGraph buildCholesky(const WorkloadParams &params);
rt::TaskGraph buildDedup(const WorkloadParams &params);
rt::TaskGraph buildFerret(const WorkloadParams &params);
rt::TaskGraph buildFluidanimate(const WorkloadParams &params);
rt::TaskGraph buildHistogram(const WorkloadParams &params);
rt::TaskGraph buildLu(const WorkloadParams &params);
rt::TaskGraph buildQr(const WorkloadParams &params);
rt::TaskGraph buildStreamcluster(const WorkloadParams &params);

} // namespace tdm::wl

#endif // TDM_WORKLOADS_WORKLOAD_HH
