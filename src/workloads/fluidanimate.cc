/**
 * @file
 * Fluidanimate (PARSECSs): 3D SPH fluid simulation, parallelized as a
 * stencil over spatial partitions. Each frame runs 8 phases (rebuild
 * grid, compute densities, compute forces, ...); a partition's task in
 * phase k updates its own cell block (inout) and reads its neighbor
 * partitions (in), which were last written in the previous phase.
 *
 * Granularity = number of partitions of the 3D volume (Figure 6 sweeps
 * 256/128/64/32). Table II: 64 partitions x 8 phases x 5 frames = 2560
 * tasks of ~1.8 ms.
 */

#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace tdm::wl {

namespace {
constexpr unsigned frames = 5;
constexpr unsigned phasesPerFrame = 8;
constexpr double totalCellsWorkUs = 115500.0; ///< one phase, whole volume
constexpr double swOptParts = 64.0;
constexpr double tdmOptParts = 64.0;
// Relative weight of each phase.
constexpr double phaseWeight[phasesPerFrame] = {0.6, 0.8, 1.6, 1.4,
                                                1.2, 0.9, 0.8, 0.7};
} // namespace

rt::TaskGraph
buildFluidanimate(const WorkloadParams &p)
{
    unsigned parts = static_cast<unsigned>(
        p.granularity > 0.0 ? p.granularity
                            : (p.tdmOptimal ? tdmOptParts : swOptParts));
    if (parts < 2)
        sim::fatal("fluidanimate: need at least 2 partitions");

    // Arrange partitions on a 2D grid (the 3D volume is partitioned
    // along two axes, as PARSECSs does).
    unsigned gx = 1;
    while (gx * gx < parts)
        gx <<= 1;
    unsigned gy = parts / gx;
    if (gx * gy != parts)
        sim::fatal("fluidanimate: partitions must be a power of two");

    rt::TaskGraph g("fluidanimate");
    g.swDepCostFactor = 1.0;

    std::vector<rt::RegionId> cell(parts);
    std::uint64_t bytes_per_part = 16 * 1024 * 1024 / parts;
    for (auto &c : cell)
        c = g.addRegion(bytes_per_part);
    auto at = [&](unsigned x, unsigned y) { return cell[y * gx + x]; };

    double task_us = totalCellsWorkUs / parts;

    g.beginParallel(sim::usToTicks(300.0));
    std::uint64_t key = 0;
    for (unsigned f = 0; f < frames; ++f) {
        for (unsigned ph = 0; ph < phasesPerFrame; ++ph) {
            for (unsigned y = 0; y < gy; ++y) {
                for (unsigned x = 0; x < gx; ++x) {
                    double us = task_us * phaseWeight[ph];
                    g.createTask(noisyCycles(sim::usToTicks(us), p.seed,
                                             ++key, p.durationNoise),
                                 static_cast<std::uint16_t>(ph));
                    g.dep(at(x, y), rt::DepDir::InOut);
                    if (x > 0)
                        g.dep(at(x - 1, y), rt::DepDir::In);
                    if (x + 1 < gx)
                        g.dep(at(x + 1, y), rt::DepDir::In);
                    if (y > 0)
                        g.dep(at(x, y - 1), rt::DepDir::In);
                    if (y + 1 < gy)
                        g.dep(at(x, y + 1), rt::DepDir::In);
                }
            }
        }
    }
    return g;
}

} // namespace tdm::wl
