#include "workloads/workload.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace tdm::wl {

sim::Tick
noisyCycles(double base_cycles, std::uint64_t seed, std::uint64_t key,
            double sigma)
{
    if (base_cycles <= 0.0)
        return 1;
    double u = sim::hashUnit(seed * 0x9e3779b97f4a7c15ULL + key);
    // Map u in [0,1) to a symmetric multiplicative factor.
    double factor = 1.0 + sigma * (2.0 * u - 1.0) * 1.7320508; // +-sqrt(3)
    double v = base_cycles * factor;
    return v < 1.0 ? 1 : static_cast<sim::Tick>(v);
}

double
effectiveGranularity(const WorkloadInfo &info, const WorkloadParams &p)
{
    if (p.granularity > 0.0)
        return p.granularity;
    return p.tdmOptimal ? info.tdmOptimal : info.swOptimal;
}

} // namespace tdm::wl
