/**
 * @file
 * Streamcluster (PARSECSs): online clustering with fork-join rounds.
 * Every round, the master re-evaluates candidate centers sequentially
 * (the parallel-region prologue) and forks one task per point block;
 * each task reads the shared center set and its block and writes a
 * private gain/assignment buffer. A barrier ends the round.
 *
 * Granularity = points per task. Table II: 256 points/task -> 64 tasks
 * per round x 658 rounds = 42112 tasks of ~376 us.
 */

#include "workloads/workload.hh"

#include "sim/logging.hh"

namespace tdm::wl {

namespace {
constexpr unsigned totalPoints = 16384;
constexpr unsigned rounds = 658;
constexpr double cyclesPerPoint = 2937.5; ///< k-median gain evaluation
constexpr double prologueUs = 290.0;      ///< serial center selection
constexpr double bytesPerPoint = 512.0;
constexpr double swOptPoints = 256.0;
constexpr double tdmOptPoints = 256.0;
} // namespace

rt::TaskGraph
buildStreamcluster(const WorkloadParams &p)
{
    unsigned pts = static_cast<unsigned>(
        p.granularity > 0.0 ? p.granularity
                            : (p.tdmOptimal ? tdmOptPoints : swOptPoints));
    if (pts == 0 || totalPoints % pts != 0)
        sim::fatal("streamcluster: points per task must divide ",
                   totalPoints);
    unsigned tasks_per_round = totalPoints / pts;

    rt::TaskGraph g("streamcluster");
    g.swDepCostFactor = 4.5; // per-point multidep registration

    rt::RegionId centers = g.addRegion(128 * 1024);
    std::vector<rt::RegionId> block(tasks_per_round);
    std::vector<rt::RegionId> local(tasks_per_round);
    for (unsigned t = 0; t < tasks_per_round; ++t) {
        block[t] = g.addRegion(static_cast<std::uint64_t>(
            pts * bytesPerPoint));
        local[t] = g.addRegion(4 * 1024);
    }

    double task_cycles = static_cast<double>(pts) * cyclesPerPoint;
    std::uint64_t key = 0;
    for (unsigned r = 0; r < rounds; ++r) {
        g.beginParallel(sim::usToTicks(prologueUs));
        for (unsigned t = 0; t < tasks_per_round; ++t) {
            g.createTask(noisyCycles(task_cycles, p.seed, ++key,
                                     p.durationNoise), 0);
            g.dep(centers, rt::DepDir::In);
            g.dep(block[t], rt::DepDir::In);
            g.dep(local[t], rt::DepDir::Out);
        }
    }
    return g;
}

} // namespace tdm::wl
