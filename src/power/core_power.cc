#include "power/core_power.hh"

namespace tdm::pwr {

double
coreEnergyJ(const CorePowerParams &p, sim::Tick active, sim::Tick idle)
{
    return p.activeWatts * sim::ticksToSeconds(active)
         + p.idleWatts * sim::ticksToSeconds(idle);
}

} // namespace tdm::pwr
