/**
 * @file
 * Whole-chip energy integration and EDP computation.
 */

#ifndef TDM_POWER_ENERGY_ACCOUNTANT_HH
#define TDM_POWER_ENERGY_ACCOUNTANT_HH

#include <cstdint>

#include "power/core_power.hh"
#include "sim/metrics.hh"
#include "sim/types.hh"

namespace tdm::pwr {

/**
 * Accumulates per-component energy over a simulation and produces the
 * total energy and energy-delay product.
 */
class EnergyAccountant
{
  public:
    explicit EnergyAccountant(const CorePowerParams &params = {})
        : params_(params)
    {}

    /** Record core busy/idle time (ticks). */
    void addCoreTime(sim::Tick active, sim::Tick idle);

    /** Record cache traffic in lines. */
    void addCacheLines(std::uint64_t l1, std::uint64_t l2,
                       std::uint64_t dram);

    /** Record accelerator (DMU / HW queue) dynamic energy, picojoules. */
    void addAcceleratorPj(double pj);

    /** Set accelerator leakage (milliwatts, integrated over makespan). */
    void setAcceleratorLeakageMw(double mw) { accelLeakMw_ = mw; }

    /** Total energy in joules for a run of @p makespan ticks. */
    double totalJoules(sim::Tick makespan) const;

    /** Energy-delay product, J*s. */
    double edp(sim::Tick makespan) const;

    /** Average power, watts. */
    double avgWatts(sim::Tick makespan) const;

    const CorePowerParams &params() const { return params_; }

    /** Accumulated core-busy ticks (over all cores). */
    sim::Tick activeTicks() const { return activeTicks_; }

    /** Accelerator dynamic energy accumulated so far, picojoules. */
    double acceleratorPj() const { return accelPj_; }

    /** Register the energy accumulators under @p ctx's scope
     *  ("power"). Whole-run totals (energy, EDP) depend on the final
     *  makespan, so the machine registers those as formulas itself. */
    void regMetrics(sim::MetricContext ctx);

  private:
    CorePowerParams params_;
    sim::Tick activeTicks_ = 0;
    sim::Tick idleTicks_ = 0;
    std::uint64_t l1Lines_ = 0, l2Lines_ = 0, dramLines_ = 0;
    double accelPj_ = 0.0;
    double accelLeakMw_ = 0.0;
};

} // namespace tdm::pwr

#endif // TDM_POWER_ENERGY_ACCOUNTANT_HH
