#include "power/cacti_model.hh"

#include "sim/logging.hh"

namespace tdm::pwr {

CactiModel::CactiModel(unsigned node_nm) : nodeNm_(node_nm)
{
    if (node_nm == 0)
        sim::fatal("invalid process node");
    // Ideal area scaling relative to the fitted 22 nm node.
    double r = static_cast<double>(nodeNm_) / 22.0;
    scale_ = r * r;
}

SramEstimate
CactiModel::estimate(const SramSpec &spec) const
{
    SramEstimate e;
    e.storageKB = spec.storageKB();

    double area = fixedAreaMm2
        + static_cast<double>(spec.totalBits()) * cellAreaMm2PerBit;
    double cmp_energy = 0.0;
    if (spec.assoc > 1) {
        double cmp_bits = static_cast<double>(spec.assoc)
                        * static_cast<double>(spec.compareBits);
        area += cmp_bits * comparatorAreaMm2PerBit;
        cmp_energy = cmp_bits * compareEnergyPj;
    }
    e.areaMm2 = area * scale_;

    double bits = static_cast<double>(spec.bitsPerEntry);
    e.readEnergyPj = fixedEnergyPj + bits * bitEnergyPj + cmp_energy;
    e.writeEnergyPj = fixedEnergyPj + bits * bitEnergyPj * 1.2;
    e.leakageMw = e.storageKB * leakageMwPerKB;
    return e;
}

} // namespace tdm::pwr
