/**
 * @file
 * Closed-form SRAM area / energy model in the spirit of CACTI 6.0.
 *
 * The paper models the DMU structures with CACTI 6.0 at 22 nm and reports
 * their area in Table III. We fit a simple linear model
 *
 *   area = fixedOverhead + bits * cellArea
 *        + assoc * compareBits * comparatorArea   (set-associative only)
 *
 * whose three constants reproduce the paper's Table III values to within
 * a few percent for all eight DMU structures. Energy per access and
 * leakage use the same functional form with independently chosen
 * constants at typical 22 nm / 0.6 V magnitudes.
 */

#ifndef TDM_POWER_CACTI_MODEL_HH
#define TDM_POWER_CACTI_MODEL_HH

#include <cstdint>
#include <string>

namespace tdm::pwr {

/** Description of one SRAM structure. */
struct SramSpec
{
    std::string name;
    std::uint64_t entries = 0;
    unsigned bitsPerEntry = 0;
    unsigned assoc = 1;        ///< 1 = direct / FIFO
    unsigned compareBits = 0;  ///< tag comparator width (assoc > 1)

    std::uint64_t totalBits() const { return entries * bitsPerEntry; }
    double storageKB() const {
        return static_cast<double>(totalBits()) / 8.0 / 1024.0;
    }
};

/** Result of an estimate. */
struct SramEstimate
{
    double storageKB = 0.0;
    double areaMm2 = 0.0;
    double readEnergyPj = 0.0;
    double writeEnergyPj = 0.0;
    double leakageMw = 0.0;
};

/**
 * The fitted model. Constants are exposed for tests.
 */
class CactiModel
{
  public:
    /** @param node_nm process node; only 22 nm constants are fitted. */
    explicit CactiModel(unsigned node_nm = 22);

    SramEstimate estimate(const SramSpec &spec) const;

    /// mm^2 per bit of SRAM storage.
    static constexpr double cellAreaMm2PerBit = 7.95e-8;
    /// mm^2 fixed overhead (decoder, sense amps) per structure.
    static constexpr double fixedAreaMm2 = 0.011;
    /// mm^2 per way-compare-bit for associative lookups.
    static constexpr double comparatorAreaMm2PerBit = 1.5e-5;

    /// pJ fixed per access.
    static constexpr double fixedEnergyPj = 1.0;
    /// pJ per bit read/written.
    static constexpr double bitEnergyPj = 0.015;
    /// pJ per way-compare-bit.
    static constexpr double compareEnergyPj = 0.003;
    /// mW leakage per KB of storage.
    static constexpr double leakageMwPerKB = 0.02;

  private:
    unsigned nodeNm_;
    double scale_; ///< area scale factor relative to 22 nm
};

} // namespace tdm::pwr

#endif // TDM_POWER_CACTI_MODEL_HH
