/**
 * @file
 * McPAT-style core and cache power constants.
 *
 * The paper evaluates power with McPAT (22 nm, 0.6 V, clock gating) and
 * reports that (a) total power varies by less than 1% across schedulers
 * and runtimes and (b) the DMU contributes below 0.01%. What matters for
 * the EDP trends is therefore the ratio of active to gated (idle) core
 * power; absolute values only set the scale.
 */

#ifndef TDM_POWER_CORE_POWER_HH
#define TDM_POWER_CORE_POWER_HH

#include "sim/types.hh"

namespace tdm::pwr {

/** Per-core power parameters at 22 nm / 0.6 V / 2 GHz. */
struct CorePowerParams
{
    double activeWatts = 0.90; ///< OoO core executing instructions
    double idleWatts = 0.62;   ///< clock-gated, leakage + L1 retention

    /** Uncore (shared L2 + NoC + misc) static watts for the chip. */
    double uncoreWatts = 4.0;

    /** nJ per 64B line from each level (dynamic). */
    double l1LineNj = 0.02;
    double l2LineNj = 0.15;
    double dramLineNj = 2.0;
};

/** Energy (joules) consumed by one core over a period. */
double coreEnergyJ(const CorePowerParams &p, sim::Tick active,
                   sim::Tick idle);

} // namespace tdm::pwr

#endif // TDM_POWER_CORE_POWER_HH
