#include "power/energy_accountant.hh"

namespace tdm::pwr {

void
EnergyAccountant::addCoreTime(sim::Tick active, sim::Tick idle)
{
    activeTicks_ += active;
    idleTicks_ += idle;
}

void
EnergyAccountant::addCacheLines(std::uint64_t l1, std::uint64_t l2,
                                std::uint64_t dram)
{
    l1Lines_ += l1;
    l2Lines_ += l2;
    dramLines_ += dram;
}

void
EnergyAccountant::addAcceleratorPj(double pj)
{
    accelPj_ += pj;
}

double
EnergyAccountant::totalJoules(sim::Tick makespan) const
{
    double j = coreEnergyJ(params_, activeTicks_, idleTicks_);
    j += params_.uncoreWatts * sim::ticksToSeconds(makespan);
    j += static_cast<double>(l1Lines_) * params_.l1LineNj * 1e-9;
    j += static_cast<double>(l2Lines_) * params_.l2LineNj * 1e-9;
    j += static_cast<double>(dramLines_) * params_.dramLineNj * 1e-9;
    j += accelPj_ * 1e-12;
    j += accelLeakMw_ * 1e-3 * sim::ticksToSeconds(makespan);
    return j;
}

double
EnergyAccountant::edp(sim::Tick makespan) const
{
    return totalJoules(makespan) * sim::ticksToSeconds(makespan);
}

double
EnergyAccountant::avgWatts(sim::Tick makespan) const
{
    double s = sim::ticksToSeconds(makespan);
    return s > 0.0 ? totalJoules(makespan) / s : 0.0;
}

void
EnergyAccountant::regMetrics(sim::MetricContext ctx)
{
    // Every accumulator here is charged in one post-run pass (the
    // machine integrates phase breakdowns and memory traffic after
    // the event loop ends), so none is live mid-run. Registering them
    // as counters would put them in phase windows and misattribute
    // the whole run's energy to the drain window; gauges report the
    // end-of-run level and stay out of windows.
    ctx.gauge("core_active_ticks",
              [this] { return static_cast<double>(activeTicks_); },
              "core-busy ticks summed over cores");
    ctx.gauge("core_idle_ticks",
              [this] { return static_cast<double>(idleTicks_); },
              "core-idle ticks summed over cores");
    ctx.gauge("l1_lines",
              [this] { return static_cast<double>(l1Lines_); },
              "L1 lines charged for energy");
    ctx.gauge("l2_lines",
              [this] { return static_cast<double>(l2Lines_); },
              "L2 lines charged for energy");
    ctx.gauge("dram_lines",
              [this] { return static_cast<double>(dramLines_); },
              "DRAM lines charged for energy");
    ctx.gauge("accel_dynamic_pj", [this] { return accelPj_; },
              "accelerator dynamic energy in picojoules");
    ctx.gauge("accel_leakage_mw", [this] { return accelLeakMw_; },
              "accelerator leakage power in milliwatts");
}

} // namespace tdm::pwr
