#include "power/energy_accountant.hh"

namespace tdm::pwr {

void
EnergyAccountant::addCoreTime(sim::Tick active, sim::Tick idle)
{
    activeTicks_ += active;
    idleTicks_ += idle;
}

void
EnergyAccountant::addCacheLines(std::uint64_t l1, std::uint64_t l2,
                                std::uint64_t dram)
{
    l1Lines_ += l1;
    l2Lines_ += l2;
    dramLines_ += dram;
}

void
EnergyAccountant::addAcceleratorPj(double pj)
{
    accelPj_ += pj;
}

double
EnergyAccountant::totalJoules(sim::Tick makespan) const
{
    double j = coreEnergyJ(params_, activeTicks_, idleTicks_);
    j += params_.uncoreWatts * sim::ticksToSeconds(makespan);
    j += static_cast<double>(l1Lines_) * params_.l1LineNj * 1e-9;
    j += static_cast<double>(l2Lines_) * params_.l2LineNj * 1e-9;
    j += static_cast<double>(dramLines_) * params_.dramLineNj * 1e-9;
    j += accelPj_ * 1e-12;
    j += accelLeakMw_ * 1e-3 * sim::ticksToSeconds(makespan);
    return j;
}

double
EnergyAccountant::edp(sim::Tick makespan) const
{
    return totalJoules(makespan) * sim::ticksToSeconds(makespan);
}

double
EnergyAccountant::avgWatts(sim::Tick makespan) const
{
    double s = sim::ticksToSeconds(makespan);
    return s > 0.0 ? totalJoules(makespan) / s : 0.0;
}

} // namespace tdm::pwr
