/**
 * @file
 * LIFO scheduler: the most recently readied task runs first.
 */

#ifndef TDM_RUNTIME_SCHED_LIFO_HH
#define TDM_RUNTIME_SCHED_LIFO_HH

#include <vector>

#include "runtime/scheduler.hh"
#include "sim/snapshot.hh"

namespace tdm::rt {

class LifoScheduler : public Scheduler
{
  public:
    const char *name() const override { return "lifo"; }

    void push(const ReadyTask &task) override { stack_.push_back(task); }

    std::optional<ReadyTask>
    pop(sim::CoreId) override
    {
        if (stack_.empty())
            return std::nullopt;
        ReadyTask t = stack_.back();
        stack_.pop_back();
        return t;
    }

    bool empty() const override { return stack_.empty(); }
    std::size_t size() const override { return stack_.size(); }

    void snapshotState(sim::Snapshot &s) override { s.capture(stack_); }

  private:
    std::vector<ReadyTask> stack_;
};

} // namespace tdm::rt

#endif // TDM_RUNTIME_SCHED_LIFO_HH
