/**
 * @file
 * Software dependence tracker — the functional reference for the
 * runtime-managed TDG (what Nanos++ does in software).
 *
 * Semantics intentionally mirror the DMU's Algorithms 1 and 2 at region
 * granularity, so the equivalence property tests can compare the two
 * implementations op by op: same readiness events in the same order.
 *
 * Every operation also reports the observable work a software runtime
 * performs (map lookups, reader scans, fragmented-region splits), which
 * the cost model converts into cycles.
 */

#ifndef TDM_RUNTIME_SOFTWARE_TRACKER_HH
#define TDM_RUNTIME_SOFTWARE_TRACKER_HH

#include <cstdint>
#include <vector>

#include "runtime/task.hh"
#include "runtime/task_graph.hh"
#include "sim/metrics.hh"

namespace tdm::sim {
class Snapshot;
} // namespace tdm::sim

namespace tdm::rt {

/** Work performed while registering one task's dependences. */
struct TrackerCreateWork
{
    unsigned depLookups = 0;    ///< region-map lookups
    unsigned edgeInserts = 0;   ///< TDG edge insertions
    unsigned readerScans = 0;   ///< readers visited by WAR scans
    unsigned fragmentSplits = 0;///< region-map splits (fragmented deps)
    bool readyNow = false;      ///< no unresolved predecessors
};

/** Work performed while retiring a task. */
struct TrackerFinishWork
{
    std::vector<TaskId> newlyReady; ///< in wake-up order
    unsigned succVisits = 0;
    unsigned depVisits = 0;
};

/**
 * The tracker. Owns the in-flight dependence state of one parallel
 * region at a time; resetRegion() is called at barriers.
 */
class SoftwareTracker
{
  public:
    explicit SoftwareTracker(const TaskGraph &graph);

    /** Register a task (program order) and all of its dependences. */
    TrackerCreateWork create(TaskId id);

    /** Retire a finished task, waking successors. */
    TrackerFinishWork finish(TaskId id);

    /** Forget all dependence state (global synchronization point). */
    void resetRegion();

    /** Number of unresolved predecessors of an in-flight task. */
    std::uint32_t predCount(TaskId id) const { return numPreds_[id]; }

    /** Current successors of an in-flight task. */
    const std::vector<TaskId> &successors(TaskId id) const {
        return succs_[id];
    }

    std::uint32_t succCount(TaskId id) const {
        return static_cast<std::uint32_t>(succs_[id].size());
    }

    /** Tasks created but not yet finished. */
    unsigned inFlight() const { return inFlight_; }

    /** Register the tracker's cumulative work counters under @p ctx's
     *  scope ("runtime.tracker"). */
    void regMetrics(sim::MetricContext ctx);

    /** Capture dependence-tracking state (register file, pred
     *  counts, lifecycle bits, and work counters) for warm-start
     *  forking; the task graph itself is immutable and shared. */
    void snapshotState(sim::Snapshot &s);

  private:
    struct RegState
    {
        TaskId lastWriter = invalidTask;
        std::vector<TaskId> readers;
    };

    const TaskGraph &graph_;
    std::vector<RegState> regState_;
    std::vector<std::uint32_t> numPreds_;
    std::vector<std::vector<TaskId>> succs_;
    std::vector<bool> created_;
    std::vector<bool> finished_;
    unsigned inFlight_ = 0;

    // Cumulative work, integrated over per-op TrackerCreateWork /
    // TrackerFinishWork results (those stay per-op for the cost model).
    std::uint64_t creates_ = 0, finishes_ = 0;
    std::uint64_t depLookups_ = 0, edgeInserts_ = 0, readerScans_ = 0,
                  fragmentSplits_ = 0, succVisits_ = 0, depVisits_ = 0;
};

} // namespace tdm::rt

#endif // TDM_RUNTIME_SOFTWARE_TRACKER_HH
