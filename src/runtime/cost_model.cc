#include "runtime/cost_model.hh"

namespace tdm::rt {

// The cost models are header-only aggregates; this translation unit
// exists so the library has a home for future out-of-line helpers.

} // namespace tdm::rt
