#include "runtime/scheduler.hh"

#include <vector>

#include "runtime/sched_age.hh"
#include "runtime/sched_fifo.hh"
#include "runtime/sched_lifo.hh"
#include "runtime/sched_locality.hh"
#include "runtime/sched_successor.hh"
#include "sim/logging.hh"

#include <map>

namespace tdm::rt {

namespace {
std::map<std::string, SchedulerFactory> &
customRegistry()
{
    static std::map<std::string, SchedulerFactory> registry;
    return registry;
}
} // namespace

void
registerScheduler(const std::string &name, SchedulerFactory factory)
{
    customRegistry()[name] = std::move(factory);
}

std::unique_ptr<Scheduler>
makeScheduler(const std::string &name, unsigned num_cores,
              std::uint32_t succ_threshold)
{
    auto it = customRegistry().find(name);
    if (it != customRegistry().end())
        return it->second(num_cores, succ_threshold);
    if (name == "fifo")
        return std::make_unique<FifoScheduler>();
    if (name == "lifo")
        return std::make_unique<LifoScheduler>();
    if (name == "locality")
        return std::make_unique<LocalityScheduler>(num_cores);
    if (name == "successor")
        return std::make_unique<SuccessorScheduler>(succ_threshold);
    if (name == "age")
        return std::make_unique<AgeScheduler>();
    sim::fatal("unknown scheduler policy: ", name);
}

bool
hasScheduler(const std::string &name)
{
    if (customRegistry().count(name) != 0)
        return true;
    for (const std::string &builtin : allSchedulerNames())
        if (name == builtin)
            return true;
    return false;
}

const std::vector<std::string> &
allSchedulerNames()
{
    static const std::vector<std::string> names = {
        "fifo", "lifo", "locality", "successor", "age",
    };
    return names;
}

} // namespace tdm::rt
