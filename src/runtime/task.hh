/**
 * @file
 * Task descriptors and dependence specifications.
 *
 * Mirrors the task model of OpenMP 4.0 / OmpSs as described in Section II
 * of the paper: tasks are created in program order and annotated with
 * input/output/inout dependences on data regions.
 */

#ifndef TDM_RUNTIME_TASK_HH
#define TDM_RUNTIME_TASK_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tdm::rt {

/** Index of a task within its TaskGraph (creation/program order). */
using TaskId = std::uint32_t;

/** Sentinel task id. */
constexpr TaskId invalidTask = 0xffffffffu;

/** Identifier of a data region declared by the workload. */
using RegionId = std::uint32_t;

/** Dependence direction, as written by the programmer. */
enum class DepDir : std::uint8_t { In, Out, InOut };

/** Human-readable name of a direction. */
const char *toString(DepDir dir);

/**
 * One dependence annotation of a task.
 */
struct DepSpec
{
    RegionId region = 0;   ///< data region the dependence names
    DepDir dir = DepDir::In;

    /**
     * Marks a dependence whose region does not exactly match previously
     * registered regions (strided / partially overlapping). A software
     * region-map pays a heavy split/merge cost for these (Nanos++-style);
     * the DMU is unaffected because it matches on the base address.
     */
    bool fragmented = false;

    /** True if this dependence writes the region. */
    bool writes() const { return dir != DepDir::In; }
};

/**
 * A task: compute cost, dependences, and identity. The descriptor
 * address stands in for the 64-bit pointer the real runtime would pass
 * to the DMU.
 */
struct Task
{
    TaskId id = invalidTask;
    std::uint64_t descAddr = 0;   ///< task descriptor address
    sim::Tick computeCycles = 0;  ///< pure compute time of the task body
    std::vector<DepSpec> deps;
    std::uint16_t kernel = 0;     ///< workload-defined kernel tag

    /** Parallel region this task belongs to. */
    std::uint32_t parRegion = 0;
};

} // namespace tdm::rt

#endif // TDM_RUNTIME_TASK_HH
