#include "runtime/task_graph.hh"

#include <algorithm>
#include <unordered_set>

#include "sim/logging.hh"

namespace tdm::rt {

TaskGraph::TaskGraph(std::string name) : name_(std::move(name)) {}

RegionId
TaskGraph::addRegion(std::uint64_t bytes)
{
    if (bytes == 0)
        sim::fatal("region must have nonzero size");
    RegionId id = static_cast<RegionId>(regions_.size());
    regions_.push_back(DataRegion{nextAddr_, bytes});
    nextAddr_ += bytes;
    return id;
}

RegionId
TaskGraph::addRegionAt(std::uint64_t base_addr, std::uint64_t bytes)
{
    if (bytes == 0)
        sim::fatal("region must have nonzero size");
    RegionId id = static_cast<RegionId>(regions_.size());
    regions_.push_back(DataRegion{base_addr, bytes});
    return id;
}

void
TaskGraph::beginParallel(sim::Tick prologue_cycles)
{
    if (!parRegions_.empty()) {
        ParallelRegion &prev = parRegions_.back();
        prev.numTasks =
            static_cast<std::uint32_t>(tasks_.size()) - prev.firstTask;
    }
    parRegions_.push_back(
        ParallelRegion{static_cast<std::uint32_t>(tasks_.size()), 0,
                       prologue_cycles});
}

Task &
TaskGraph::createTask(sim::Tick compute_cycles, std::uint16_t kernel)
{
    if (parRegions_.empty())
        beginParallel();
    Task t;
    t.id = static_cast<TaskId>(tasks_.size());
    t.descAddr = nextDescAddr_;
    nextDescAddr_ += descStride; // bump allocation, like a real heap
    t.computeCycles = compute_cycles;
    t.kernel = kernel;
    t.parRegion = static_cast<std::uint32_t>(parRegions_.size()) - 1;
    tasks_.push_back(std::move(t));
    parRegions_.back().numTasks =
        static_cast<std::uint32_t>(tasks_.size())
        - parRegions_.back().firstTask;
    return tasks_.back();
}

void
TaskGraph::dep(RegionId region, DepDir dir, bool fragmented)
{
    if (tasks_.empty())
        sim::panic("dep() before any createTask()");
    if (region >= regions_.size())
        sim::panic("dep() on undeclared region ", region);
    tasks_.back().deps.push_back(DepSpec{region, dir, fragmented});
}

sim::Tick
TaskGraph::totalComputeCycles() const
{
    sim::Tick total = 0;
    for (const Task &t : tasks_)
        total += t.computeCycles;
    return total;
}

double
TaskGraph::avgTaskUs() const
{
    if (tasks_.empty())
        return 0.0;
    return sim::ticksToUs(totalComputeCycles())
           / static_cast<double>(tasks_.size());
}

TdgEdges
TaskGraph::buildEdges() const
{
    TdgEdges out;
    out.successors.assign(tasks_.size(), {});
    out.numPreds.assign(tasks_.size(), 0);

    struct RegState
    {
        TaskId lastWriter = invalidTask;
        std::vector<TaskId> readers;
    };
    std::vector<RegState> state(regions_.size());

    // Per-task set of predecessors, used to deduplicate edges the way a
    // real runtime does (a task depending twice on the same older task
    // contributes a single TDG edge).
    std::vector<TaskId> preds;
    std::uint32_t region_start = 0;
    std::uint32_t region_idx = 0;

    for (const Task &t : tasks_) {
        if (region_idx < parRegions_.size()
            && t.id >= parRegions_[region_idx].firstTask
                           + parRegions_[region_idx].numTasks) {
            // Barrier: dependence state resets between parallel regions.
            ++region_idx;
            region_start = t.id;
            for (auto &s : state) {
                s.lastWriter = invalidTask;
                s.readers.clear();
            }
        }
        (void)region_start;
        preds.clear();
        for (const DepSpec &d : t.deps) {
            RegState &rs = state[d.region];
            // Reads and writes both order after the last writer (RAW /
            // WAW).
            if (rs.lastWriter != invalidTask)
                preds.push_back(rs.lastWriter);
            if (d.dir == DepDir::In) {
                rs.readers.push_back(t.id);
            } else {
                // WAR: order after every reader since the last write.
                for (TaskId r : rs.readers)
                    preds.push_back(r);
                rs.readers.clear();
                rs.lastWriter = t.id;
            }
        }
        std::sort(preds.begin(), preds.end());
        preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
        for (TaskId p : preds) {
            if (p == t.id)
                continue; // self-dependence via multiple deps; ignore
            out.successors[p].push_back(t.id);
            ++out.numPreds[t.id];
            ++out.edgeCount;
        }
    }
    return out;
}

sim::Tick
TaskGraph::criticalPathCycles() const
{
    TdgEdges edges = buildEdges();
    // Tasks are topologically ordered by construction (edges only point
    // from lower to higher ids), so one forward pass suffices.
    std::vector<sim::Tick> finish(tasks_.size(), 0);
    sim::Tick best = 0;
    for (const Task &t : tasks_) {
        sim::Tick f = finish[t.id] + t.computeCycles;
        finish[t.id] = f;
        best = std::max(best, f);
        for (TaskId s : edges.successors[t.id])
            finish[s] = std::max(finish[s], f);
    }
    return best;
}

std::uint32_t
TaskGraph::maxTasksInRegion() const
{
    std::uint32_t best = 0;
    for (const ParallelRegion &r : parRegions_)
        best = std::max(best, r.numTasks);
    return best;
}

} // namespace tdm::rt
