#include "runtime/sched_lifo.hh"

namespace tdm::rt {
} // namespace tdm::rt
