/**
 * @file
 * Successor (criticality) scheduler (Section VI): tasks whose successor
 * count exceeds a threshold go to a high-priority queue; threads check
 * the high-priority queue first. Both queues are FIFO.
 */

#ifndef TDM_RUNTIME_SCHED_SUCCESSOR_HH
#define TDM_RUNTIME_SCHED_SUCCESSOR_HH

#include <deque>

#include "runtime/scheduler.hh"
#include "sim/snapshot.hh"

namespace tdm::rt {

class SuccessorScheduler : public Scheduler
{
  public:
    explicit SuccessorScheduler(std::uint32_t threshold)
        : threshold_(threshold)
    {}

    const char *name() const override { return "successor"; }

    void
    push(const ReadyTask &task) override
    {
        if (task.numSuccessors > threshold_)
            high_.push_back(task);
        else
            low_.push_back(task);
    }

    std::optional<ReadyTask>
    pop(sim::CoreId) override
    {
        if (!high_.empty()) {
            ReadyTask t = high_.front();
            high_.pop_front();
            return t;
        }
        if (!low_.empty()) {
            ReadyTask t = low_.front();
            low_.pop_front();
            return t;
        }
        return std::nullopt;
    }

    bool empty() const override { return high_.empty() && low_.empty(); }
    std::size_t size() const override { return high_.size() + low_.size(); }

    sim::Tick pushExtraCycles() const override { return 20; }

    void
    snapshotState(sim::Snapshot &s) override
    {
        s.capture(high_);
        s.capture(low_);
    }

  private:
    std::uint32_t threshold_;
    std::deque<ReadyTask> high_;
    std::deque<ReadyTask> low_;
};

} // namespace tdm::rt

#endif // TDM_RUNTIME_SCHED_SUCCESSOR_HH
