#include "runtime/sched_successor.hh"

namespace tdm::rt {
} // namespace tdm::rt
