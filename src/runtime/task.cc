#include "runtime/task.hh"

namespace tdm::rt {

const char *
toString(DepDir dir)
{
    switch (dir) {
      case DepDir::In:
        return "in";
      case DepDir::Out:
        return "out";
      case DepDir::InOut:
        return "inout";
    }
    return "?";
}

} // namespace tdm::rt
