/**
 * @file
 * The application-level task dependence graph (TDG).
 *
 * A workload builds a TaskGraph: it declares data regions (with realistic
 * virtual base addresses, since the DMU's DAT indexes on address bits),
 * opens parallel regions, and creates tasks with dependence annotations
 * in program order. The graph also derives, via sequential reference
 * semantics, the ground-truth dependence edges that both the software
 * tracker and the DMU must reproduce.
 */

#ifndef TDM_RUNTIME_TASK_GRAPH_HH
#define TDM_RUNTIME_TASK_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/task.hh"
#include "sim/types.hh"

namespace tdm::rt {

/** A data region the program declares dependences on. */
struct DataRegion
{
    std::uint64_t baseAddr = 0;
    std::uint64_t bytes = 0;
};

/** A parallel region: tasks between two global synchronization points. */
struct ParallelRegion
{
    std::uint32_t firstTask = 0;
    std::uint32_t numTasks = 0;
    /** Sequential (master-only) cycles executed before the region. */
    sim::Tick prologueCycles = 0;
};

/** Ground-truth edges derived from program order. */
struct TdgEdges
{
    /** successors[t] = tasks that must wait for t (deduplicated). */
    std::vector<std::vector<TaskId>> successors;
    /** Number of predecessors of each task. */
    std::vector<std::uint32_t> numPreds;
    /** Total number of edges. */
    std::uint64_t edgeCount = 0;
};

/**
 * A complete benchmark task graph.
 */
class TaskGraph
{
  public:
    /**
     * Descriptor-address stride: task i's descriptor lives at
     * firstDescAddr + i * descStride (createTask mimics a bump
     * allocator). Consumers exploit the affine layout to map a
     * descriptor address back to its TaskId with arithmetic instead of
     * a hash lookup.
     */
    static constexpr std::uint64_t descStride = 0x140;

    explicit TaskGraph(std::string name);

    const std::string &name() const { return name_; }

    /**
     * Declare a data region of @p bytes; regions are laid out
     * contiguously in a virtual address space, mimicking blocked array
     * storage (consecutive tiles at size-strided addresses).
     */
    RegionId addRegion(std::uint64_t bytes);

    /** Declare a region at an explicit base address. */
    RegionId addRegionAt(std::uint64_t base_addr, std::uint64_t bytes);

    /** Open a new parallel region. */
    void beginParallel(sim::Tick prologue_cycles = 0);

    /** Create a task; returns a reference valid until the next create. */
    Task &createTask(sim::Tick compute_cycles, std::uint16_t kernel = 0);

    /** Add a dependence to the most recently created task. */
    void dep(RegionId region, DepDir dir, bool fragmented = false);

    const std::vector<Task> &tasks() const { return tasks_; }
    const std::vector<DataRegion> &regions() const { return regions_; }
    const std::vector<ParallelRegion> &parallelRegions() const {
        return parRegions_;
    }

    const Task &task(TaskId id) const { return tasks_[id]; }
    const DataRegion &region(RegionId id) const { return regions_[id]; }

    std::uint32_t numTasks() const {
        return static_cast<std::uint32_t>(tasks_.size());
    }

    /** Sum of all task compute cycles. */
    sim::Tick totalComputeCycles() const;

    /** Mean task compute time in microseconds. */
    double avgTaskUs() const;

    /**
     * Derive the ground-truth TDG edges with sequential reference
     * semantics (RAW, WAR, WAW on whole regions), program order.
     */
    TdgEdges buildEdges() const;

    /**
     * Length of the critical path through the TDG in cycles
     * (compute time only). Lower bound on any schedule.
     */
    sim::Tick criticalPathCycles() const;

    /**
     * Maximum number of simultaneously in-flight tasks needed so that
     * no task is created before its region's barrier. Used by capacity
     * sizing tests.
     */
    std::uint32_t maxTasksInRegion() const;

    /** Per-benchmark multiplier on software dependence-matching cost. */
    double swDepCostFactor = 1.0;

  private:
    std::string name_;
    std::vector<Task> tasks_;
    std::vector<DataRegion> regions_;
    std::vector<ParallelRegion> parRegions_;
    std::uint64_t nextAddr_ = 0x100000000ULL; // region allocator cursor
    std::uint64_t nextDescAddr_ = 0x8ab000000000ULL;
};

} // namespace tdm::rt

#endif // TDM_RUNTIME_TASK_GRAPH_HH
