#include "runtime/sched_fifo.hh"

// Header-only implementation; this translation unit anchors the vtable.
namespace tdm::rt {
} // namespace tdm::rt
