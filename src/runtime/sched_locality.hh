/**
 * @file
 * Locality-aware scheduler (Section VI): when a task finishes on a core
 * and readies a successor, that successor is preferred by the same core
 * so it finds its inputs in the local cache. Cores fall back to the
 * global FIFO queue, and finally to stealing another core's local list.
 */

#ifndef TDM_RUNTIME_SCHED_LOCALITY_HH
#define TDM_RUNTIME_SCHED_LOCALITY_HH

#include <deque>
#include <vector>

#include "runtime/scheduler.hh"

namespace tdm::rt {

class LocalityScheduler : public Scheduler
{
  public:
    explicit LocalityScheduler(unsigned num_cores)
        : perCore_(num_cores)
    {}

    const char *name() const override { return "locality"; }

    void
    push(const ReadyTask &task) override
    {
        if (task.producerHint != sim::invalidCore
            && task.producerHint < perCore_.size()) {
            perCore_[task.producerHint].push_back(task);
        } else {
            global_.push_back(task);
        }
        ++size_;
    }

    std::optional<ReadyTask>
    pop(sim::CoreId core) override
    {
        // 1. own successor list
        if (core < perCore_.size() && !perCore_[core].empty())
            return take(perCore_[core]);
        // 2. global queue
        if (!global_.empty())
            return take(global_);
        // 3. steal the oldest entry of the fullest local list
        std::size_t best = perCore_.size();
        std::size_t best_len = 0;
        for (std::size_t c = 0; c < perCore_.size(); ++c) {
            if (perCore_[c].size() > best_len) {
                best = c;
                best_len = perCore_[c].size();
            }
        }
        if (best < perCore_.size())
            return take(perCore_[best]);
        return std::nullopt;
    }

    bool empty() const override { return size_ == 0; }
    std::size_t size() const override { return size_; }

    sim::Tick pushExtraCycles() const override { return 30; }
    sim::Tick popExtraCycles() const override { return 40; }

  private:
    std::optional<ReadyTask>
    take(std::deque<ReadyTask> &q)
    {
        ReadyTask t = q.front();
        q.pop_front();
        --size_;
        return t;
    }

    std::vector<std::deque<ReadyTask>> perCore_;
    std::deque<ReadyTask> global_;
    std::size_t size_ = 0;
};

} // namespace tdm::rt

#endif // TDM_RUNTIME_SCHED_LOCALITY_HH
