/**
 * @file
 * Locality-aware scheduler (Section VI): when a task finishes on a core
 * and readies a successor, that successor is preferred by the same core
 * so it finds its inputs in the local cache. Cores fall back to the
 * global FIFO queue, and finally to stealing another core's local list.
 *
 * Ordering within a local list follows the cache-temperature rationale
 * of Section VI: the owner pops its *newest* successor (whose inputs
 * were produced most recently and are hottest in the local cache),
 * while a thief takes the victim's *oldest* entry (coldest, and hence
 * cheapest to migrate to another core).
 */

#ifndef TDM_RUNTIME_SCHED_LOCALITY_HH
#define TDM_RUNTIME_SCHED_LOCALITY_HH

#include <deque>
#include <vector>

#include "runtime/scheduler.hh"
#include "sim/snapshot.hh"

namespace tdm::rt {

class LocalityScheduler : public Scheduler
{
  public:
    explicit LocalityScheduler(unsigned num_cores)
        : perCore_(num_cores)
    {}

    const char *name() const override { return "locality"; }

    void push(const ReadyTask &task) override;
    std::optional<ReadyTask> pop(sim::CoreId core) override;

    bool empty() const override { return size_ == 0; }
    std::size_t size() const override { return size_; }

    sim::Tick pushExtraCycles() const override { return 30; }
    sim::Tick popExtraCycles() const override { return 40; }

    void
    snapshotState(sim::Snapshot &s) override
    {
        s.capture(perCore_);
        s.capture(global_);
        s.capture(size_);
    }

  private:
    /** Dequeue the oldest entry (front) of @p q. */
    std::optional<ReadyTask> takeOldest(std::deque<ReadyTask> &q);

    /** Dequeue the newest entry (back) of @p q. */
    std::optional<ReadyTask> takeNewest(std::deque<ReadyTask> &q);

    std::vector<std::deque<ReadyTask>> perCore_;
    std::deque<ReadyTask> global_;
    std::size_t size_ = 0;
};

} // namespace tdm::rt

#endif // TDM_RUNTIME_SCHED_LOCALITY_HH
