#include "runtime/software_tracker.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace tdm::rt {

SoftwareTracker::SoftwareTracker(const TaskGraph &graph) : graph_(graph)
{
    regState_.resize(graph.regions().size());
    numPreds_.assign(graph.numTasks(), 0);
    succs_.assign(graph.numTasks(), {});
    created_.assign(graph.numTasks(), false);
    finished_.assign(graph.numTasks(), false);
}

void
SoftwareTracker::resetRegion()
{
    for (auto &s : regState_) {
        s.lastWriter = invalidTask;
        s.readers.clear();
    }
}

TrackerCreateWork
SoftwareTracker::create(TaskId id)
{
    if (created_[id])
        sim::panic("tracker: double create of task ", id);
    created_[id] = true;
    ++inFlight_;

    TrackerCreateWork work;
    const Task &t = graph_.task(id);
    for (const DepSpec &d : t.deps) {
        RegState &rs = regState_[d.region];
        ++work.depLookups;
        if (d.fragmented)
            ++work.fragmentSplits;

        // RAW / WAW: order after the last (unfinished) writer.
        if (rs.lastWriter != invalidTask && rs.lastWriter != id) {
            succs_[rs.lastWriter].push_back(id);
            ++numPreds_[id];
            ++work.edgeInserts;
        }
        if (d.dir == DepDir::In) {
            rs.readers.push_back(id);
        } else {
            // WAR: order after every reader since the last write.
            for (TaskId r : rs.readers) {
                ++work.readerScans;
                if (r == id)
                    continue;
                succs_[r].push_back(id);
                ++numPreds_[id];
                ++work.edgeInserts;
            }
            rs.readers.clear();
            rs.lastWriter = id;
        }
    }
    work.readyNow = numPreds_[id] == 0;
    ++creates_;
    depLookups_ += work.depLookups;
    edgeInserts_ += work.edgeInserts;
    readerScans_ += work.readerScans;
    fragmentSplits_ += work.fragmentSplits;
    return work;
}

TrackerFinishWork
SoftwareTracker::finish(TaskId id)
{
    if (!created_[id] || finished_[id])
        sim::panic("tracker: bad finish of task ", id);
    finished_[id] = true;
    --inFlight_;

    TrackerFinishWork work;
    // Wake successors.
    for (TaskId s : succs_[id]) {
        ++work.succVisits;
        if (numPreds_[s] == 0)
            sim::panic("tracker: predecessor underflow on task ", s);
        --numPreds_[s];
        if (numPreds_[s] == 0)
            work.newlyReady.push_back(s);
    }
    succs_[id].clear();

    // Detach from dependence state, mirroring the DMU cleanup.
    const Task &t = graph_.task(id);
    for (const DepSpec &d : t.deps) {
        ++work.depVisits;
        RegState &rs = regState_[d.region];
        auto it = std::find(rs.readers.begin(), rs.readers.end(), id);
        if (it != rs.readers.end())
            rs.readers.erase(it);
        if (rs.lastWriter == id)
            rs.lastWriter = invalidTask;
    }
    ++finishes_;
    succVisits_ += work.succVisits;
    depVisits_ += work.depVisits;
    return work;
}

void
SoftwareTracker::regMetrics(sim::MetricContext ctx)
{
    ctx.counter("creates", &creates_, "tasks registered");
    ctx.counter("finishes", &finishes_, "tasks retired");
    ctx.counter("dep_lookups", &depLookups_, "region-map lookups");
    ctx.counter("edge_inserts", &edgeInserts_, "TDG edges inserted");
    ctx.counter("reader_scans", &readerScans_,
                "readers visited by WAR scans");
    ctx.counter("fragment_splits", &fragmentSplits_,
                "fragmented-region map splits");
    ctx.counter("succ_visits", &succVisits_,
                "successors visited at finish");
    ctx.counter("dep_visits", &depVisits_,
                "dependences detached at finish");
    ctx.gauge("in_flight",
              [this] { return static_cast<double>(inFlight_); },
              "tasks created but not yet finished");
}

void
SoftwareTracker::snapshotState(sim::Snapshot &s)
{
    s.capture(regState_);
    s.capture(numPreds_);
    s.capture(succs_);
    s.capture(created_);
    s.capture(finished_);
    s.capture(inFlight_);
    s.capture(creates_);
    s.capture(finishes_);
    s.capture(depLookups_);
    s.capture(edgeInserts_);
    s.capture(readerScans_);
    s.capture(fragmentSplits_);
    s.capture(succVisits_);
    s.capture(depVisits_);
}

} // namespace tdm::rt
