#include "runtime/sched_locality.hh"

namespace tdm::rt {

void
LocalityScheduler::push(const ReadyTask &task)
{
    if (task.producerHint != sim::invalidCore
        && task.producerHint < perCore_.size()) {
        perCore_[task.producerHint].push_back(task);
    } else {
        global_.push_back(task);
    }
    ++size_;
}

std::optional<ReadyTask>
LocalityScheduler::pop(sim::CoreId core)
{
    // 1. own successor list: newest first, its inputs are cache-hot.
    if (core < perCore_.size() && !perCore_[core].empty())
        return takeNewest(perCore_[core]);
    // 2. global queue (FIFO)
    if (!global_.empty())
        return takeOldest(global_);
    // 3. steal the oldest (cache-cold) entry of the fullest local list
    std::size_t best = perCore_.size();
    std::size_t best_len = 0;
    for (std::size_t c = 0; c < perCore_.size(); ++c) {
        if (perCore_[c].size() > best_len) {
            best = c;
            best_len = perCore_[c].size();
        }
    }
    if (best < perCore_.size())
        return takeOldest(perCore_[best]);
    return std::nullopt;
}

std::optional<ReadyTask>
LocalityScheduler::takeOldest(std::deque<ReadyTask> &q)
{
    ReadyTask t = q.front();
    q.pop_front();
    --size_;
    return t;
}

std::optional<ReadyTask>
LocalityScheduler::takeNewest(std::deque<ReadyTask> &q)
{
    ReadyTask t = q.back();
    q.pop_back();
    --size_;
    return t;
}

} // namespace tdm::rt
