#include "runtime/sched_locality.hh"

namespace tdm::rt {
} // namespace tdm::rt
