#include "runtime/ready_pool.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace tdm::rt {

ReadyPool::ReadyPool(std::unique_ptr<Scheduler> policy)
    : policy_(std::move(policy))
{
    if (!policy_)
        sim::fatal("ready pool needs a scheduling policy");
}

void
ReadyPool::push(const ReadyTask &task)
{
    policy_->push(task);
    ++pushes_;
    peak_ = std::max(peak_, policy_->size());
}

std::optional<ReadyTask>
ReadyPool::pop(sim::CoreId core)
{
    auto t = policy_->pop(core);
    if (t)
        ++pops_;
    else
        ++emptyPops_;
    return t;
}

void
ReadyPool::regMetrics(sim::MetricContext ctx)
{
    ctx.counter("pushes", &pushes_, "tasks published to the pool");
    ctx.counter("pops", &pops_, "successful pool pops");
    ctx.counter("empty_pops", &emptyPops_,
                "pool pops that found no ready task");
    ctx.gauge("peak_size",
              [this] { return static_cast<double>(peak_); },
              "largest pool population observed");
}

void
ReadyPool::snapshotState(sim::Snapshot &s)
{
    policy_->snapshotState(s);
    s.capture(pushes_);
    s.capture(pops_);
    s.capture(emptyPops_);
    s.capture(peak_);
}

} // namespace tdm::rt
