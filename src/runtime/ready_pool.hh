/**
 * @file
 * The software ready-task pool: a scheduler policy plus bookkeeping
 * counters. The machine model serializes access through the modelled
 * runtime lock; this class is the data structure underneath.
 */

#ifndef TDM_RUNTIME_READY_POOL_HH
#define TDM_RUNTIME_READY_POOL_HH

#include <memory>

#include "runtime/scheduler.hh"
#include "sim/metrics.hh"

namespace tdm::rt {

class ReadyPool
{
  public:
    explicit ReadyPool(std::unique_ptr<Scheduler> policy);

    void push(const ReadyTask &task);
    std::optional<ReadyTask> pop(sim::CoreId core);

    bool empty() const { return policy_->empty(); }
    std::size_t size() const { return policy_->size(); }

    const Scheduler &policy() const { return *policy_; }

    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t pops() const { return pops_; }
    std::uint64_t emptyPops() const { return emptyPops_; }
    std::size_t peakSize() const { return peak_; }

    /** Register pool traffic metrics under @p ctx's scope
     *  ("runtime.pool"). */
    void regMetrics(sim::MetricContext ctx);

    /** Capture the policy container and pool counters for
     *  warm-start forking. */
    void snapshotState(sim::Snapshot &s);

  private:
    std::unique_ptr<Scheduler> policy_;
    std::uint64_t pushes_ = 0, pops_ = 0, emptyPops_ = 0;
    std::size_t peak_ = 0;
};

} // namespace tdm::rt

#endif // TDM_RUNTIME_READY_POOL_HH
