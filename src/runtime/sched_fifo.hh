/**
 * @file
 * FIFO scheduler: tasks run in the order they became ready.
 */

#ifndef TDM_RUNTIME_SCHED_FIFO_HH
#define TDM_RUNTIME_SCHED_FIFO_HH

#include <deque>

#include "runtime/scheduler.hh"
#include "sim/snapshot.hh"

namespace tdm::rt {

class FifoScheduler : public Scheduler
{
  public:
    const char *name() const override { return "fifo"; }

    void push(const ReadyTask &task) override { q_.push_back(task); }

    std::optional<ReadyTask>
    pop(sim::CoreId) override
    {
        if (q_.empty())
            return std::nullopt;
        ReadyTask t = q_.front();
        q_.pop_front();
        return t;
    }

    bool empty() const override { return q_.empty(); }
    std::size_t size() const override { return q_.size(); }

    void snapshotState(sim::Snapshot &s) override { s.capture(q_); }

  private:
    std::deque<ReadyTask> q_;
};

} // namespace tdm::rt

#endif // TDM_RUNTIME_SCHED_FIFO_HH
