/**
 * @file
 * Age scheduler (Section VI): among ready tasks, the one created
 * earliest runs first. Differs from FIFO because readiness order is not
 * creation order.
 */

#ifndef TDM_RUNTIME_SCHED_AGE_HH
#define TDM_RUNTIME_SCHED_AGE_HH

#include <queue>
#include <vector>

#include "runtime/scheduler.hh"
#include "sim/snapshot.hh"

namespace tdm::rt {

class AgeScheduler : public Scheduler
{
  public:
    const char *name() const override { return "age"; }

    void push(const ReadyTask &task) override { heap_.push(task); }

    std::optional<ReadyTask>
    pop(sim::CoreId) override
    {
        if (heap_.empty())
            return std::nullopt;
        ReadyTask t = heap_.top();
        heap_.pop();
        return t;
    }

    bool empty() const override { return heap_.empty(); }
    std::size_t size() const override { return heap_.size(); }

    /** Heap maintenance is costlier than a deque. */
    sim::Tick pushExtraCycles() const override { return 60; }
    sim::Tick popExtraCycles() const override { return 60; }

    void snapshotState(sim::Snapshot &s) override { s.capture(heap_); }

  private:
    struct Older
    {
        bool
        operator()(const ReadyTask &a, const ReadyTask &b) const
        {
            return a.creationSeq > b.creationSeq;
        }
    };

    std::priority_queue<ReadyTask, std::vector<ReadyTask>, Older> heap_;
};

} // namespace tdm::rt

#endif // TDM_RUNTIME_SCHED_AGE_HH
