/**
 * @file
 * Cycle cost models of runtime-system operations.
 *
 * These constants stand in for the measured cost of Nanos++-style
 * runtime activity on the simulated 2 GHz OoO core. They are the main
 * calibration surface of the reproduction: the software dependence-
 * matching costs are chosen so that the software-runtime breakdown
 * reproduces the pattern of Figure 2 (see DESIGN.md §5), and the
 * TDM-side costs follow the ISA/NoC/DMU path of Section III.
 */

#ifndef TDM_RUNTIME_COST_MODEL_HH
#define TDM_RUNTIME_COST_MODEL_HH

#include "runtime/software_tracker.hh"
#include "sim/types.hh"

namespace tdm::rt {

/** Costs of the pure-software runtime path. */
struct SwCosts
{
    /** Allocate + initialize a task descriptor. */
    sim::Tick taskAllocCycles = 1500;

    /** Region-map lookup for one dependence. */
    sim::Tick depLookupCycles = 1200;

    /** Insert one TDG edge / reader registration. */
    sim::Tick edgeInsertCycles = 300;

    /** Visit one reader during a WAR scan. */
    sim::Tick readerScanCycles = 120;

    /** Region-map split/merge for a fragmented dependence. */
    sim::Tick fragmentSplitCycles = 22000;

    /** Fixed part of task finalization. */
    sim::Tick finishBaseCycles = 400;

    /** Per-successor wake-up work at finalization. */
    sim::Tick perSuccessorCycles = 170;

    /** Per-dependence cleanup at finalization. */
    sim::Tick perDepCleanupCycles = 130;

    /** Runtime lock hold time for pool operations. */
    sim::Tick poolPushCycles = 80;
    sim::Tick poolPopCycles = 110;

    /** Checking an empty pool (scheduling poll). */
    sim::Tick schedPollCycles = 90;

    /** Cycles for creating one task given tracker work. */
    sim::Tick
    createCycles(const TrackerCreateWork &w, double dep_factor) const
    {
        double dep_work =
            static_cast<double>(w.depLookups) * depLookupCycles
            + static_cast<double>(w.edgeInserts) * edgeInsertCycles
            + static_cast<double>(w.readerScans) * readerScanCycles
            + static_cast<double>(w.fragmentSplits) * fragmentSplitCycles;
        return taskAllocCycles
             + static_cast<sim::Tick>(dep_work * dep_factor);
    }

    /** Cycles for finishing a task given tracker work. */
    sim::Tick
    finishCycles(const TrackerFinishWork &w) const
    {
        return finishBaseCycles
             + static_cast<sim::Tick>(w.succVisits) * perSuccessorCycles
             + static_cast<sim::Tick>(w.depVisits) * perDepCleanupCycles;
    }
};

/** Costs of the TDM path (software side of the co-design). */
struct TdmCosts
{
    /** Descriptor allocation still happens in software. */
    sim::Tick taskAllocCycles = 1500;

    /** Issue/commit overhead of one TDM ISA instruction (barrier
     *  semantics: the pipeline drains around it). */
    sim::Tick issueCycles = 6;

    /** Software pool costs (scheduling stays in software). */
    sim::Tick poolPushCycles = 80;
    sim::Tick poolPopCycles = 110;
    sim::Tick schedPollCycles = 90;
};

/** Costs of hardware task-queue scheduling (Carbon / Task Superscalar). */
struct HwQueueCosts
{
    /** Enqueue/dequeue instruction on the local hardware queue. */
    sim::Tick localOpCycles = 4;

    /** Probe + steal from a remote queue (Carbon work stealing). */
    sim::Tick stealCycles = 24;
};

} // namespace tdm::rt

#endif // TDM_RUNTIME_COST_MODEL_HH
