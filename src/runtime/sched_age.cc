#include "runtime/sched_age.hh"

namespace tdm::rt {
} // namespace tdm::rt
