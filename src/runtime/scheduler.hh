/**
 * @file
 * Software task schedulers (Section VI of the paper).
 *
 * A scheduler is a pure policy data structure over ready tasks; the
 * machine model wraps it with the runtime lock and charges pool costs.
 * Five policies are provided: FIFO, LIFO, Locality, Successor and Age.
 */

#ifndef TDM_RUNTIME_SCHEDULER_HH
#define TDM_RUNTIME_SCHEDULER_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/task.hh"
#include "sim/types.hh"

namespace tdm::sim {
class Snapshot;
} // namespace tdm::sim

namespace tdm::rt {

/** A ready task as seen by the scheduler. */
struct ReadyTask
{
    TaskId id = invalidTask;

    /** Successor count at the time the task became ready. */
    std::uint32_t numSuccessors = 0;

    /** Core that produced the readiness (finished the last
     *  predecessor), or sim::invalidCore for creation-ready tasks. */
    sim::CoreId producerHint = sim::invalidCore;

    /** Monotonic sequence assigned at creation (program order). */
    std::uint64_t creationSeq = 0;

    /** Tick at which the task became ready. */
    sim::Tick readyTime = 0;
};

/**
 * Scheduling policy interface. Implementations need not be thread-safe:
 * the simulation serializes access through the modelled runtime lock.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual const char *name() const = 0;

    /** Add a ready task. */
    virtual void push(const ReadyTask &task) = 0;

    /** Select a task for @p core; nullopt when none available. */
    virtual std::optional<ReadyTask> pop(sim::CoreId core) = 0;

    virtual bool empty() const = 0;
    virtual std::size_t size() const = 0;

    /** Extra policy cycles on top of the base pool push/pop cost. */
    virtual sim::Tick pushExtraCycles() const { return 0; }
    virtual sim::Tick popExtraCycles() const { return 0; }

    /**
     * Capture the policy's ready-task state for warm-start forking.
     * All built-in policies record their full container state;
     * user-registered policies that keep internal state must override
     * this or forked runs will diverge from cold runs (the default
     * captures nothing).
     */
    virtual void snapshotState(sim::Snapshot &) {}
};

/**
 * Instantiate a scheduler by policy name: "fifo", "lifo", "locality",
 * "successor", "age", or any name registered via registerScheduler().
 *
 * @param num_cores   cores in the machine (locality policy)
 * @param succ_threshold high-priority threshold of the successor policy
 */
std::unique_ptr<Scheduler> makeScheduler(const std::string &name,
                                         unsigned num_cores,
                                         std::uint32_t succ_threshold = 1);

/** Factory signature for user-defined policies. */
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>(
    unsigned num_cores, std::uint32_t succ_threshold)>;

/**
 * Register a user-defined scheduling policy under @p name; TDM's whole
 * point is that this requires no hardware change. Overrides built-ins
 * of the same name.
 */
void registerScheduler(const std::string &name, SchedulerFactory factory);

/** Names of the five built-in policies, in the paper's order. */
const std::vector<std::string> &allSchedulerNames();

/** Whether @p name resolves to a built-in or registered policy. */
bool hasScheduler(const std::string &name);

} // namespace tdm::rt

#endif // TDM_RUNTIME_SCHEDULER_HH
