#include "hwbaselines/carbon.hh"

#include "power/cacti_model.hh"

namespace tdm::hw {

double
carbonStorageKB(const CarbonConfig &cfg, unsigned num_cores)
{
    return static_cast<double>(num_cores) * cfg.queueEntriesPerCore * 8.0
         / 1024.0;
}

double
carbonAreaMm2(const CarbonConfig &cfg, unsigned num_cores)
{
    pwr::CactiModel model(22);
    pwr::SramSpec spec{"carbon_queue", cfg.queueEntriesPerCore, 64, 1, 0};
    double one = model.estimate(spec).areaMm2;
    return one * num_cores;
}

} // namespace tdm::hw
