#include "hwbaselines/task_superscalar.hh"

namespace tdm::hw {

std::vector<pwr::SramSpec>
tssSramSpecs(const TssConfig &cfg)
{
    unsigned bits = cfg.bytesPerEntry * 8;
    std::vector<pwr::SramSpec> specs;
    specs.push_back({"Gateway", cfg.gatewayKB * 1024 / 16, 128, 1, 0});
    // TRS and ORT are CAM-searched by 64-bit identifiers.
    specs.push_back({"TRS", cfg.entries, bits, cfg.entries, 64});
    specs.push_back({"ORT", cfg.entries, bits, cfg.entries, 64});
    specs.push_back({"ReadyQueue", cfg.entries, bits, 1, 0});
    return specs;
}

double
tssStorageKB(const TssConfig &cfg)
{
    double kb = 0.0;
    for (const auto &s : tssSramSpecs(cfg))
        kb += s.storageKB();
    return kb;
}

double
tssAreaMm2(const TssConfig &cfg)
{
    pwr::CactiModel model(22);
    double mm2 = 0.0;
    for (const auto &s : tssSramSpecs(cfg))
        mm2 += model.estimate(s).areaMm2;
    return mm2;
}

} // namespace tdm::hw
