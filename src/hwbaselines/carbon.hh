/**
 * @file
 * Carbon baseline (Kumar et al., ISCA 2007) — hardware scheduling,
 * software dependence management. Conceptually the opposite of TDM
 * (Section VI-C of the paper).
 *
 * The machine model composes Carbon from HwTaskQueues plus the software
 * tracker; this header provides the configuration and the hardware-cost
 * accounting used in the comparison figures.
 */

#ifndef TDM_HWBASELINES_CARBON_HH
#define TDM_HWBASELINES_CARBON_HH

#include "hwbaselines/hw_task_queue.hh"

namespace tdm::hw {

/** Carbon hardware parameters. */
struct CarbonConfig
{
    unsigned queueEntriesPerCore = 256;

    /** Local task-queue ISA operation latency, cycles. */
    unsigned localOpCycles = 4;

    /** Steal probe + transfer latency, cycles. */
    unsigned stealCycles = 24;
};

/** Storage (KB) of Carbon's hardware queues for @p num_cores cores. */
double carbonStorageKB(const CarbonConfig &cfg, unsigned num_cores);

/** Area (mm^2) of Carbon's hardware queues (fitted 22 nm model). */
double carbonAreaMm2(const CarbonConfig &cfg, unsigned num_cores);

} // namespace tdm::hw

#endif // TDM_HWBASELINES_CARBON_HH
