/**
 * @file
 * Distributed hardware task queues with work stealing, as in Carbon
 * (Kumar et al., ISCA 2007): one hardware FIFO per core; a core pops
 * from its local queue and steals from the fullest remote queue when
 * empty. The policy is fixed FIFO + stealing — that fixedness is the
 * drawback TDM addresses.
 */

#ifndef TDM_HWBASELINES_HW_TASK_QUEUE_HH
#define TDM_HWBASELINES_HW_TASK_QUEUE_HH

#include <deque>
#include <optional>
#include <vector>

#include "runtime/scheduler.hh"
#include "sim/metrics.hh"
#include "sim/types.hh"

namespace tdm::sim {
class Snapshot;
} // namespace tdm::sim

namespace tdm::hw {

/**
 * The set of per-core hardware queues.
 */
class HwTaskQueues
{
  public:
    HwTaskQueues(unsigned num_cores, unsigned capacity_per_core);

    /** Enqueue on @p core's local queue. @return false if full. */
    bool push(sim::CoreId core, const rt::ReadyTask &task);

    /**
     * Enqueue on @p core, spilling to the least-loaded queue when the
     * local one is full (the real Carbon overflows to memory).
     * @return false only when every queue is full.
     */
    bool pushWithSpill(sim::CoreId core, const rt::ReadyTask &task);

    /** Pop from the local queue. */
    std::optional<rt::ReadyTask> popLocal(sim::CoreId core);

    /**
     * Steal: pop the oldest task of the fullest remote queue.
     * @param thief the stealing core (excluded from victims)
     */
    std::optional<rt::ReadyTask> steal(sim::CoreId thief);

    bool allEmpty() const;
    std::size_t totalSize() const;
    std::size_t localSize(sim::CoreId core) const {
        return queues_[core].size();
    }

    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t localPops() const { return localPops_; }
    std::uint64_t steals() const { return steals_; }
    std::uint64_t failedSteals() const { return failedSteals_; }

    /** Storage of all queues in KB (entries x 64-bit descriptors). */
    double storageKB() const;

    /** Register queue traffic metrics under @p ctx's scope
     *  ("runtime.hwq"). */
    void regMetrics(sim::MetricContext ctx);

    /** Capture all per-core queues and counters for warm-start
     *  forking. */
    void snapshotState(sim::Snapshot &s);

  private:
    std::vector<std::deque<rt::ReadyTask>> queues_;
    unsigned capacity_;
    std::uint64_t pushes_ = 0, localPops_ = 0, steals_ = 0,
                  failedSteals_ = 0;
};

} // namespace tdm::hw

#endif // TDM_HWBASELINES_HW_TASK_QUEUE_HH
