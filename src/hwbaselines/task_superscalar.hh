/**
 * @file
 * Task Superscalar baseline (Etsion et al., MICRO 2010) — both
 * dependence management and scheduling in hardware, with a fixed FIFO
 * policy.
 *
 * Functionally the machine model composes it from the DMU (dependence
 * tracking) plus direct hardware Ready Queue scheduling. This header
 * provides the hardware-cost model of the original pipeline, which the
 * paper sizes (Section VI-C) at 769 KB for the configuration matched to
 * the DMU: a 1 KB Gateway, a 256 KB TRS, a 256 KB ORT and a 256 KB
 * Ready Queue (2048 entries x 128 B each), yielding the 7.3x storage
 * advantage of the DMU.
 */

#ifndef TDM_HWBASELINES_TASK_SUPERSCALAR_HH
#define TDM_HWBASELINES_TASK_SUPERSCALAR_HH

#include <vector>

#include "power/cacti_model.hh"

namespace tdm::hw {

/** Task Superscalar hardware parameters. */
struct TssConfig
{
    unsigned entries = 2048;      ///< in-flight tasks / dependences
    unsigned bytesPerEntry = 128; ///< TRS/ORT/RQ record size
    unsigned gatewayKB = 1;

    /** get_ready-equivalent hardware scheduling op latency, cycles. */
    unsigned schedOpCycles = 4;
};

/** The structure inventory (for area tables). */
std::vector<pwr::SramSpec> tssSramSpecs(const TssConfig &cfg);

/** Total storage in KB (769 KB at the default configuration). */
double tssStorageKB(const TssConfig &cfg);

/** Total area in mm^2 (fitted 22 nm model, CAM-heavy structures). */
double tssAreaMm2(const TssConfig &cfg);

} // namespace tdm::hw

#endif // TDM_HWBASELINES_TASK_SUPERSCALAR_HH
