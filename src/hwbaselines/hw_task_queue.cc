#include "hwbaselines/hw_task_queue.hh"

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace tdm::hw {

HwTaskQueues::HwTaskQueues(unsigned num_cores, unsigned capacity_per_core)
    : queues_(num_cores), capacity_(capacity_per_core)
{
    if (num_cores == 0 || capacity_per_core == 0)
        sim::fatal("hw task queues: bad geometry");
}

bool
HwTaskQueues::push(sim::CoreId core, const rt::ReadyTask &task)
{
    if (queues_[core].size() >= capacity_)
        return false;
    queues_[core].push_back(task);
    ++pushes_;
    return true;
}

bool
HwTaskQueues::pushWithSpill(sim::CoreId core, const rt::ReadyTask &task)
{
    if (push(core, task))
        return true;
    std::size_t best = queues_.size();
    std::size_t best_len = capacity_;
    for (std::size_t c = 0; c < queues_.size(); ++c) {
        if (queues_[c].size() < best_len) {
            best = c;
            best_len = queues_[c].size();
        }
    }
    if (best == queues_.size())
        return false;
    return push(static_cast<sim::CoreId>(best), task);
}

std::optional<rt::ReadyTask>
HwTaskQueues::popLocal(sim::CoreId core)
{
    auto &q = queues_[core];
    if (q.empty())
        return std::nullopt;
    rt::ReadyTask t = q.front();
    q.pop_front();
    ++localPops_;
    return t;
}

std::optional<rt::ReadyTask>
HwTaskQueues::steal(sim::CoreId thief)
{
    std::size_t best = queues_.size();
    std::size_t best_len = 0;
    for (std::size_t c = 0; c < queues_.size(); ++c) {
        if (c == thief)
            continue;
        if (queues_[c].size() > best_len) {
            best = c;
            best_len = queues_[c].size();
        }
    }
    if (best == queues_.size()) {
        ++failedSteals_;
        return std::nullopt;
    }
    rt::ReadyTask t = queues_[best].front();
    queues_[best].pop_front();
    ++steals_;
    return t;
}

bool
HwTaskQueues::allEmpty() const
{
    for (const auto &q : queues_)
        if (!q.empty())
            return false;
    return true;
}

std::size_t
HwTaskQueues::totalSize() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

double
HwTaskQueues::storageKB() const
{
    // Each entry holds a 64-bit task descriptor pointer.
    return static_cast<double>(queues_.size()) * capacity_ * 8.0 / 1024.0;
}

void
HwTaskQueues::regMetrics(sim::MetricContext ctx)
{
    ctx.counter("pushes", &pushes_, "tasks enqueued");
    ctx.counter("local_pops", &localPops_, "pops from the local queue");
    ctx.counter("steals", &steals_, "successful remote steals");
    ctx.counter("failed_steals", &failedSteals_,
                "steal attempts that found every queue empty");
    ctx.gauge("queued",
              [this] { return static_cast<double>(totalSize()); },
              "tasks currently queued across all cores");
}

void
HwTaskQueues::snapshotState(sim::Snapshot &s)
{
    s.capture(queues_);
    s.capture(pushes_);
    s.capture(localPops_);
    s.capture(steals_);
    s.capture(failedSteals_);
}

} // namespace tdm::hw
