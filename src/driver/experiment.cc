#include "driver/experiment.hh"

#include "sim/logging.hh"

namespace tdm::driver {

RunSummary
run(const Experiment &exp)
{
    wl::WorkloadParams params = exp.params;
    const core::RuntimeTraits &traits = core::traitsOf(exp.runtime);
    if (params.granularity == 0.0 && traits.usesDmu())
        params.tdmOptimal = true;

    rt::TaskGraph graph = wl::buildWorkload(exp.workload, params);

    core::Machine machine(exp.config, graph, exp.runtime);
    core::MachineResult mr = machine.run();

    RunSummary s;
    s.completed = mr.completed;
    s.makespan = mr.makespan;
    s.timeMs = mr.timeMs;
    s.energyJ = mr.energyJ;
    s.edp = mr.edp;
    s.avgWatts = mr.avgWatts;
    s.numTasks = graph.numTasks();
    s.avgTaskUs = graph.avgTaskUs();
    s.machine = mr;
    return s;
}

double
speedup(const RunSummary &base, const RunSummary &test)
{
    if (test.makespan == 0)
        return 0.0;
    return static_cast<double>(base.makespan)
         / static_cast<double>(test.makespan);
}

double
normalizedEdp(const RunSummary &base, const RunSummary &test)
{
    if (base.edp == 0.0)
        return 0.0;
    return test.edp / base.edp;
}

} // namespace tdm::driver
