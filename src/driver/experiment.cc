#include "driver/experiment.hh"

#include "driver/graph_cache.hh"
#include "sim/logging.hh"

namespace tdm::driver {

RunSummary
run(const Experiment &exp)
{
    return run(exp, nullptr);
}

RunSummary
run(const Experiment &exp, std::shared_ptr<const rt::TaskGraph> graph)
{
    return run(exp, std::move(graph), nullptr);
}

RunSummary
run(const Experiment &exp, std::shared_ptr<const rt::TaskGraph> graph,
    sim::TraceBuffer *trace_out)
{
    if (!graph)
        graph = buildGraph(exp);

    core::Machine machine(exp.config, graph, exp.runtime);
    core::MachineResult mr = machine.run();
    if (trace_out)
        *trace_out = machine.takeTraceBuffer();
    return summarize(std::move(mr), *graph);
}

RunSummary
summarize(core::MachineResult mr, const rt::TaskGraph &graph)
{
    // Workload-shape facts live outside the machine's registry; fold
    // them into the tree so exports are self-contained.
    mr.metrics.set("workload.num_tasks",
                   static_cast<double>(graph.numTasks()));
    mr.metrics.set("workload.avg_task_us", graph.avgTaskUs());

    RunSummary s;
    s.machine = std::move(mr);
    const sim::MetricSet &m = s.machine.metrics;
    s.completed = m.get("machine.completed") != 0.0;
    s.makespan = static_cast<sim::Tick>(
        m.get("machine.makespan_ticks"));
    s.timeMs = m.get("machine.time_ms");
    s.energyJ = m.get("power.energy_j");
    s.edp = m.get("power.edp");
    s.avgWatts = m.get("power.avg_watts");
    s.numTasks = graph.numTasks();
    s.avgTaskUs = graph.avgTaskUs();
    return s;
}

double
speedup(const RunSummary &base, const RunSummary &test)
{
    if (test.makespan == 0)
        return 0.0;
    return static_cast<double>(base.makespan)
         / static_cast<double>(test.makespan);
}

double
normalizedEdp(const RunSummary &base, const RunSummary &test)
{
    if (base.edp == 0.0)
        return 0.0;
    return test.edp / base.edp;
}

} // namespace tdm::driver
