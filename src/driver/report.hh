/**
 * @file
 * Small reporting helpers shared by the bench binaries.
 */

#ifndef TDM_DRIVER_REPORT_HH
#define TDM_DRIVER_REPORT_HH

#include <string>
#include <vector>

namespace tdm::driver {

/** Geometric mean; ignores non-positive entries. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** "12.3%" style formatting of a ratio-1. */
std::string percent(double ratio_minus_one, int precision = 1);

} // namespace tdm::driver

#endif // TDM_DRIVER_REPORT_HH
