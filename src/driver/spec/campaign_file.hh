/**
 * @file
 * Text campaign format: whole studies defined at runtime, no recompile.
 *
 * A *.campaign file is line-oriented:
 *
 *     # DMU sizing study
 *     [meta]
 *     name = sweep_dmu_sizing
 *     description = TAT/DAT sizing sweep under TDM
 *     label = {workload}/tat{dmu.tat_entries}/dat{dmu.dat_entries}
 *
 *     set runtime = tdm
 *     set scheduler = age
 *     axis dmu.tat_entries = 512, 1024, 2048
 *     zip workload, workload.granularity = cholesky, 262144 | qr, 128
 *     metrics = dmu.*, mesh.avg_hop_latency
 *
 * Grammar:
 *   - `#` starts a comment; blank lines are ignored; a trailing `\`
 *     continues the statement on the next line.
 *   - `[meta]` opens the header; inside it `name`, `description` and
 *     `label` may be assigned. `name` defaults to the file stem.
 *   - `set KEY = VALUE` fixes a key on every point.
 *   - `axis KEY = v1, v2, ...` adds a product axis.
 *   - `zip K1, K2, ... = v1, v2, ... | v1, v2, ... | ...` adds a tuple
 *     axis: each `|`-separated row assigns all listed keys together.
 *   - `metrics = glob, glob, ...` selects the metric subtree each
 *     point exports (comma-separated globs over dotted metric keys,
 *     e.g. "dmu.*"); without it the full tree is exported.
 *     campaign_run --metrics overrides it.
 *
 * Keys are validated against the binding registry at parse time (with
 * near-miss suggestions); values are validated when the grid expands.
 * All errors are SpecError carrying file:line context.
 */

#ifndef TDM_DRIVER_SPEC_CAMPAIGN_FILE_HH
#define TDM_DRIVER_SPEC_CAMPAIGN_FILE_HH

#include <iosfwd>
#include <string>

#include "driver/spec/grid.hh"

namespace tdm::driver::spec {

/** A parsed campaign file: identity plus the grid it declares. */
struct FileCampaign
{
    std::string name;
    std::string description;
    /** Metric-selection globs from the `metrics` directive ("" =
     *  export everything). */
    std::string metrics;
    Grid grid;

    /** Expand to a runnable campaign. */
    campaign::Campaign toCampaign() const {
        campaign::Campaign c = grid.toCampaign(name, description);
        c.metrics = metrics;
        return c;
    }
};

/** Parse campaign text; @p origin names the source in errors. */
FileCampaign parseCampaignFile(std::istream &in,
                               const std::string &origin);

/** Open and parse @p path; the default name is the file stem. */
FileCampaign loadCampaignFile(const std::string &path);

} // namespace tdm::driver::spec

#endif // TDM_DRIVER_SPEC_CAMPAIGN_FILE_HH
