#include "driver/spec/grid.hh"

namespace tdm::driver::spec {

std::vector<std::string>
valueStrings(std::initializer_list<std::uint64_t> values)
{
    std::vector<std::string> out;
    out.reserve(values.size());
    for (std::uint64_t v : values)
        out.push_back(std::to_string(v));
    return out;
}

Grid &
Grid::set(const std::string &key, const std::string &value)
{
    base_.set(key, value);
    return *this;
}

Grid &
Grid::axis(const std::string &key, std::vector<std::string> values)
{
    TupleAxis a;
    a.keys = {key};
    a.rows.reserve(values.size());
    for (std::string &v : values)
        a.rows.push_back({std::move(v)});
    axes_.push_back(std::move(a));
    return *this;
}

Grid &
Grid::zip(std::vector<std::string> keys,
          std::vector<std::vector<std::string>> rows)
{
    if (keys.empty())
        throw SpecError("zip axis needs at least one key");
    for (const auto &row : rows) {
        if (row.size() != keys.size())
            throw SpecError(
                "zip axis over " + std::to_string(keys.size())
                + " keys got a row with " + std::to_string(row.size())
                + " values");
    }
    axes_.push_back(TupleAxis{std::move(keys), std::move(rows)});
    return *this;
}

Grid &
Grid::label(std::string templ)
{
    label_ = std::move(templ);
    return *this;
}

std::size_t
Grid::size() const
{
    std::size_t n = 1;
    for (const TupleAxis &a : axes_)
        n *= a.rows.size();
    return n;
}

namespace {

std::string
renderLabelFrom(const std::string &templ, const sim::Config &full)
{
    std::string out;
    std::size_t pos = 0;
    while (pos < templ.size()) {
        const std::size_t open = templ.find('{', pos);
        if (open == std::string::npos) {
            out += templ.substr(pos);
            break;
        }
        const std::size_t close = templ.find('}', open);
        if (close == std::string::npos)
            throw SpecError("label template '" + templ
                            + "': unterminated '{'");
        out += templ.substr(pos, open - pos);
        const std::string key = templ.substr(open + 1, close - open - 1);
        if (!full.contains(key))
            throw SpecError("label template references unknown key '"
                            + key + "'");
        out += full.getString(key);
        pos = close + 1;
    }
    return out;
}

} // namespace

std::string
renderLabel(const std::string &templ, const Experiment &exp)
{
    return renderLabelFrom(templ, describe(exp));
}

std::vector<SweepPoint>
Grid::points() const
{
    std::vector<SweepPoint> out;
    const std::size_t total = size();
    out.reserve(total);

    std::vector<std::size_t> idx(axes_.size(), 0);
    for (std::size_t i = 0; i < total; ++i) {
        // First axis outermost: decompose i with the last axis fastest.
        std::size_t rem = i;
        for (std::size_t a = axes_.size(); a-- > 0;) {
            idx[a] = rem % axes_[a].rows.size();
            rem /= axes_[a].rows.size();
        }

        sim::Config spec = base_;
        std::vector<std::string> axisValues;
        for (std::size_t a = 0; a < axes_.size(); ++a) {
            const TupleAxis &ax = axes_[a];
            const auto &row = ax.rows[idx[a]];
            for (std::size_t k = 0; k < ax.keys.size(); ++k) {
                spec.set(ax.keys[k], row[k]);
                axisValues.push_back(row[k]);
            }
        }

        SweepPoint p;
        p.exp = apply(spec);
        if (!label_.empty()) {
            p.label = renderLabelFrom(label_, describe(p.exp));
        } else {
            for (std::size_t v = 0; v < axisValues.size(); ++v)
                p.label += (v ? "/" : "") + axisValues[v];
        }
        out.push_back(std::move(p));
    }
    return out;
}

campaign::Campaign
Grid::toCampaign(const std::string &name,
                 const std::string &description) const
{
    campaign::Campaign c;
    c.name = name;
    c.description = description;
    c.points = points();
    c.labelTemplate = label_;
    return c;
}

} // namespace tdm::driver::spec
