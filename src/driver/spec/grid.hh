/**
 * @file
 * Grid expansion over experiment specs.
 *
 * A Grid is a base spec (fixed `set` keys) plus ordered axes; its
 * cartesian product compiles straight to campaign SweepPoints. Three
 * axis forms cover the built-in figures and arbitrary user studies:
 *
 *   axis(key, values)   one key, one value per point            (product)
 *   zip(keys, rows)     several keys varying together, rows of
 *                       per-key values                          (product
 *                       over rows, not over the keys inside one)
 *
 * The first-declared axis is outermost (slowest varying), matching the
 * nested loops the hand-coded campaigns used. Point labels come from a
 * template such as "{workload}/{runtime}/{scheduler}": each {key} is
 * substituted with the point's canonical value. Without a template the
 * label joins the point's axis values with '/'.
 */

#ifndef TDM_DRIVER_SPEC_GRID_HH
#define TDM_DRIVER_SPEC_GRID_HH

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "driver/campaign/campaign.hh"
#include "driver/spec/spec.hh"

namespace tdm::driver::spec {

/** Render a list of integers as axis value strings. */
std::vector<std::string>
valueStrings(std::initializer_list<std::uint64_t> values);

/** Substitute every {key} in @p templ with @p exp's canonical value;
 *  throws SpecError on an unknown key or unterminated brace. */
std::string renderLabel(const std::string &templ, const Experiment &exp);

class Grid
{
  public:
    /** Fix @p key to @p value on every point. Later set() wins. */
    Grid &set(const std::string &key, const std::string &value);

    /** Add a product axis over one key. */
    Grid &axis(const std::string &key, std::vector<std::string> values);

    /**
     * Add a product axis whose points each assign all of @p keys from
     * one row of @p rows (every row needs one value per key). This is
     * both the "list axis" (explicitly enumerated tuples, e.g. the
     * runtime/scheduler combinations of Fig. 13) and the "zip axis"
     * (lockstep sweeps, e.g. core count with its fitted mesh).
     */
    Grid &zip(std::vector<std::string> keys,
              std::vector<std::vector<std::string>> rows);

    /** Label template, e.g. "{workload}/c{machine.cores}/{runtime}". */
    Grid &label(std::string templ);

    /** Number of points (product of axis row counts); cheap — never
     *  builds an Experiment. */
    std::size_t size() const;

    /**
     * Expand to labeled points in declaration order. Validates every
     * key and value through the binding registry; throws SpecError on
     * the first bad entry.
     */
    std::vector<SweepPoint> points() const;

    /** The base spec (set() keys only, no axes applied). */
    const sim::Config &base() const { return base_; }

    /** The label template ("" when labels default to axis values). */
    const std::string &labelTemplate() const { return label_; }

    /** points() wrapped as a named campaign. */
    campaign::Campaign toCampaign(const std::string &name,
                                  const std::string &description) const;

  private:
    struct TupleAxis
    {
        std::vector<std::string> keys;
        std::vector<std::vector<std::string>> rows;
    };

    sim::Config base_;
    std::vector<TupleAxis> axes_;
    std::string label_;
};

} // namespace tdm::driver::spec

#endif // TDM_DRIVER_SPEC_GRID_HH
