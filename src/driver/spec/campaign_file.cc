#include "driver/spec/campaign_file.hh"

#include <fstream>
#include <sstream>

#include "sim/metrics.hh"

namespace tdm::driver::spec {

namespace {

std::string
trim(const std::string &s)
{
    const std::size_t a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    const std::size_t b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

std::vector<std::string>
splitTrim(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    for (;;) {
        const std::size_t next = s.find(sep, pos);
        out.push_back(trim(s.substr(pos, next - pos)));
        if (next == std::string::npos)
            break;
        pos = next + 1;
    }
    return out;
}

[[noreturn]] void
fail(const std::string &origin, std::size_t line, const std::string &msg)
{
    throw SpecError(origin + ":" + std::to_string(line) + ": " + msg);
}

void
checkKey(const std::string &origin, std::size_t line,
         const std::string &key)
{
    if (key.empty())
        fail(origin, line, "empty key");
    if (findBinding(key))
        return;
    std::vector<std::string> names;
    for (const Binding &b : allBindings())
        names.push_back(b.key);
    fail(origin, line,
         "unknown spec key '" + key + "'" + suggestHint(key, names));
}

} // namespace

FileCampaign
parseCampaignFile(std::istream &in, const std::string &origin)
{
    FileCampaign fc;
    bool inMeta = false;

    std::string raw;
    std::size_t lineNo = 0;
    while (std::getline(in, raw)) {
        ++lineNo;
        const std::size_t startLine = lineNo;

        // Strip each physical line's comment before looking for a
        // continuation backslash — otherwise a comment ending in '\'
        // would silently swallow the next directive.
        auto stripComment = [](const std::string &s) {
            const std::size_t hash = s.find('#');
            return trim(hash == std::string::npos ? s
                                                  : s.substr(0, hash));
        };
        std::string stmt = stripComment(raw);
        while (!stmt.empty() && stmt.back() == '\\') {
            stmt.pop_back();
            std::string next;
            if (!std::getline(in, next))
                fail(origin, lineNo, "dangling '\\' continuation");
            ++lineNo;
            stmt = trim(stmt) + " " + stripComment(next);
        }
        stmt = trim(stmt);
        if (stmt.empty())
            continue;

        if (stmt == "[meta]") {
            inMeta = true;
            continue;
        }
        if (stmt[0] == '[')
            fail(origin, startLine,
                 "unknown section '" + stmt + "' (only [meta] exists)");

        const bool isSet = stmt.rfind("set ", 0) == 0;
        const bool isAxis = stmt.rfind("axis ", 0) == 0;
        const bool isZip = stmt.rfind("zip ", 0) == 0;
        const bool isMetrics = stmt.rfind("metrics", 0) == 0
                               && (stmt.size() == 7 || stmt[7] == ' '
                                   || stmt[7] == '=');
        if (isSet || isAxis || isZip || isMetrics)
            inMeta = false;

        const std::size_t eq = stmt.find('=');
        if (eq == std::string::npos)
            fail(origin, startLine, "expected 'key = value' in '" + stmt
                                    + "'");

        if (inMeta) {
            const std::string key = trim(stmt.substr(0, eq));
            const std::string value = trim(stmt.substr(eq + 1));
            if (key == "name")
                fc.name = value;
            else if (key == "description")
                fc.description = value;
            else if (key == "label")
                fc.grid.label(value);
            else
                fail(origin, startLine,
                     "unknown [meta] key '" + key
                         + "' (name, description, label)");
            continue;
        }

        if (isMetrics) {
            // The keyword must stand alone before '=' — `metrics
            // dmu.* = mesh.*` would otherwise silently select the
            // wrong subtree.
            if (trim(stmt.substr(0, eq)) != "metrics")
                fail(origin, startLine,
                     "expected 'metrics = glob, ...', got '" + stmt
                         + "'");
            const std::string value = trim(stmt.substr(eq + 1));
            if (value.empty())
                fail(origin, startLine, "metrics: empty selection");
            try {
                // Validate glob tokens now; matching is deferred until
                // export, when the run's tree exists.
                sim::MetricSet::parsePatterns(value);
            } catch (const sim::MetricError &e) {
                fail(origin, startLine, e.what());
            }
            fc.metrics = value;
            continue;
        }

        if (isSet) {
            const std::string key = trim(stmt.substr(4, eq - 4));
            const std::string value = trim(stmt.substr(eq + 1));
            checkKey(origin, startLine, key);
            if (value.empty())
                fail(origin, startLine, "set " + key + ": empty value");
            fc.grid.set(key, value);
        } else if (isAxis) {
            const std::string key = trim(stmt.substr(5, eq - 5));
            checkKey(origin, startLine, key);
            const auto values = splitTrim(stmt.substr(eq + 1), ',');
            for (const std::string &v : values)
                if (v.empty())
                    fail(origin, startLine,
                         "axis " + key + ": empty value in list");
            if (values.empty())
                fail(origin, startLine, "axis " + key + ": no values");
            fc.grid.axis(key, values);
        } else if (isZip) {
            const auto keys = splitTrim(stmt.substr(4, eq - 4), ',');
            for (const std::string &k : keys)
                checkKey(origin, startLine, k);
            const auto rowTexts = splitTrim(stmt.substr(eq + 1), '|');
            std::vector<std::vector<std::string>> rows;
            for (const std::string &rt_ : rowTexts) {
                auto row = splitTrim(rt_, ',');
                if (row.size() != keys.size())
                    fail(origin, startLine,
                         "zip over " + std::to_string(keys.size())
                             + " keys got a row with "
                             + std::to_string(row.size()) + " values: '"
                             + rt_ + "'");
                for (const std::string &v : row)
                    if (v.empty())
                        fail(origin, startLine, "zip: empty value");
                rows.push_back(std::move(row));
            }
            if (rows.empty())
                fail(origin, startLine, "zip: no rows");
            fc.grid.zip(keys, std::move(rows));
        } else {
            fail(origin, startLine,
                 "expected 'set', 'axis', 'zip', 'metrics' or "
                 "'[meta]', got '"
                     + stmt + "'");
        }
    }

    return fc;
}

FileCampaign
loadCampaignFile(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        throw SpecError("cannot open campaign file: " + path);
    FileCampaign fc = parseCampaignFile(f, path);
    if (fc.name.empty()) {
        // Default name: the file stem.
        std::size_t slash = path.find_last_of("/\\");
        std::string stem =
            slash == std::string::npos ? path : path.substr(slash + 1);
        const std::size_t dot = stem.rfind('.');
        if (dot != std::string::npos && dot > 0)
            stem.erase(dot);
        fc.name = stem;
    }
    return fc;
}

} // namespace tdm::driver::spec
