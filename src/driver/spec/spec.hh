/**
 * @file
 * Declarative experiment specs: a string-keyed, key-path-addressable
 * view over Experiment + MachineConfig.
 *
 * Every tunable of an experiment registers one typed Binding (key,
 * getter, setter, default, doc), so applying a spec, describing an
 * experiment, validating user input and fingerprinting all share a
 * single source of truth. Keys are dotted paths mirroring the config
 * structs: `machine.cores=64`, `dmu.tat_entries=4096`,
 * `workload=cholesky`, `runtime=tdm`, `scheduler=locality`.
 *
 * A spec itself is a plain sim::Config (ordered key→value strings);
 * `apply()` turns one into an Experiment starting from the defaults,
 * `describe()` does the inverse, and `canonicalSpec()` adds the
 * normalization driver::run() applies — its serialization is the
 * campaign cache key, so fingerprints are human-readable specs.
 */

#ifndef TDM_DRIVER_SPEC_SPEC_HH
#define TDM_DRIVER_SPEC_SPEC_HH

#include <functional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/experiment.hh"
#include "sim/config.hh"

namespace tdm::driver::spec {

/** User error in a spec: unknown key, bad value, malformed file. */
class SpecError : public std::runtime_error
{
  public:
    explicit SpecError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Value type of a binding (drives parsing and validation). */
enum class ValueKind
{
    Uint,      ///< nonnegative integer, range-checked to the field
    Double,    ///< finite decimal number
    Bool,      ///< true/false/1/0
    Workload,  ///< registered workload name (short names canonicalize)
    Runtime,   ///< runtime model name: sw/tdm/carbon/tss
    Scheduler, ///< built-in or registered scheduling policy name
    Categories, ///< trace-category list: task,dmu / all / none
};

/** "uint", "double", ... for messages and the key reference. */
const char *valueKindName(ValueKind kind);

/**
 * Earliest simulation phase whose outcome a key can influence. This is
 * the load-bearing contract behind warm-start forking (Machine fork
 * API, CampaignEngine grouping): two experiments whose Warmup-phase
 * projections agree follow bit-identical trajectories from tick 0 up
 * to the warmup/ROI boundary, so a single warmup leg can be simulated
 * once, snapshotted, and forked for every member.
 *
 *  - Warmup: consumed from tick 0 — task graph shape, runtime costs,
 *    machine geometry, DMU tables, trace config. The conservative
 *    default: anything not provably later-phase is Warmup.
 *  - Roi: first consumed at the first task execution (the warmup/ROI
 *    boundary): the memory-model keys (`mem.*`). Task bodies — and
 *    with them every memory access — only start executing inside the
 *    ROI, so cache geometry and latencies cannot affect the warmup
 *    prefix. (`machine.mem_model` itself stays Warmup: toggling the
 *    model changes which metrics exist, violating the fork contract's
 *    registry-shape invariance.)
 *  - Final: consumed only after the event loop drains, during result
 *    finalization: the energy-accounting keys (`power.*`). Members
 *    differing only here share the entire simulated trajectory.
 */
enum class KeyPhase
{
    Warmup,
    Roi,
    Final,
};

/** "warmup", "roi", "final" for messages and the key reference. */
const char *keyPhaseName(KeyPhase phase);

/** One key-path: typed accessors into an Experiment plus metadata. */
struct Binding
{
    std::string key;
    ValueKind kind;
    std::string doc;

    /** Earliest phase the key influences (see KeyPhase). */
    KeyPhase phase = KeyPhase::Warmup;

    /** Value of the key on a default-constructed Experiment. */
    std::string defaultValue;

    /** Render the key's current value. */
    std::function<std::string(const Experiment &)> get;

    /** Parse + validate + store; throws SpecError on a bad value. */
    std::function<void(Experiment &, const std::string &)> set;
};

/** Every registered binding, in stable registration (group) order. */
const std::vector<Binding> &allBindings();

/** Look up a binding; nullptr when the key is unknown. */
const Binding *findBinding(const std::string &key);

/** Set one key on @p exp; throws SpecError (with near-miss
 *  suggestions) on an unknown key or a bad value. */
void applyKey(Experiment &exp, const std::string &key,
              const std::string &value);

/** Build an Experiment from the defaults plus @p spec's entries. */
Experiment apply(const sim::Config &spec);

/** Full spec of @p exp: every registered key, canonical rendering. */
sim::Config describe(const Experiment &exp);

/**
 * @p exp with driver::run()'s normalization applied: the workload name
 * resolved to its full form, and the TDM-optimal granularity implied
 * when a DMU runtime runs at the default granularity (an explicit
 * granularity makes the flag moot).
 */
Experiment normalized(const Experiment &exp);

/** describe(normalized(exp)): the canonical spec of the experiment. */
sim::Config canonicalSpec(const Experiment &exp);

/**
 * Projection of a canonical spec onto the keys of @p phase, in
 * registry order. Unknown keys in @p canonical are ignored (they
 * cannot influence any phase).
 */
sim::Config phaseSpec(const sim::Config &canonical, KeyPhase phase);

/**
 * Warm-prefix fingerprint of a canonical spec: the serialization of
 * its Warmup-phase projection. Two points with equal fingerprints are
 * guaranteed bit-identical trajectories up to the warmup/ROI boundary
 * and may share one simulated warmup leg (CampaignEngine's fork-group
 * key).
 */
std::string warmFingerprint(const sim::Config &canonical);

/**
 * ROI fingerprint: the serialization of the combined Warmup+Roi
 * projection. Points with equal ROI fingerprints differ only in Final
 * keys and share the entire simulated trajectory (finalize-fork
 * sub-group key).
 */
std::string roiFingerprint(const sim::Config &canonical);

/**
 * Shortest decimal rendering of @p v that parses back to exactly the
 * same double ("0.05", not "0.05000000000000000277..."), so specs stay
 * readable while round-tripping bit-exactly.
 */
std::string formatDouble(double v);

/**
 * Candidates most similar to @p name (edit distance <= 3 or sharing a
 * prefix), closest first, at most @p limit — for "did you mean"
 * messages on unknown keys and campaign names.
 */
std::vector<std::string>
closestMatches(const std::string &name,
               const std::vector<std::string> &candidates,
               std::size_t limit = 3);

/** closestMatches rendered as "; did you mean: a, b?" — empty when
 *  nothing is close. */
std::string suggestHint(const std::string &name,
                        const std::vector<std::string> &candidates);

/** Markdown key-reference table generated from the registry
 *  (campaign_run --keys; the README section is this output). */
void writeKeyReference(std::ostream &os);

} // namespace tdm::driver::spec

#endif // TDM_DRIVER_SPEC_SPEC_HH
