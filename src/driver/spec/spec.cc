#include "driver/spec/spec.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <type_traits>

#include "core/runtime_model.hh"
#include "sim/suggest.hh"
#include "sim/trace.hh"
#include "runtime/scheduler.hh"
#include "workloads/registry.hh"

namespace tdm::driver::spec {

namespace {

[[noreturn]] void
badKeyValue(const std::string &key, const std::string &value,
            const std::string &expected)
{
    throw SpecError("spec key '" + key + "': expected " + expected
                    + ", got '" + value + "'");
}

/** Non-fatal workload lookup by full or short name. */
const wl::WorkloadInfo *
lookupWorkload(const std::string &name)
{
    for (const wl::WorkloadInfo &w : wl::allWorkloads())
        if (w.name == name || w.shortName == name)
            return &w;
    return nullptr;
}

/** Non-fatal runtime lookup by traits name. */
bool
lookupRuntime(const std::string &name, core::RuntimeType &out)
{
    for (core::RuntimeType t : core::allRuntimeTypes()) {
        if (core::traitsOf(t).name == name) {
            out = t;
            return true;
        }
    }
    return false;
}

/**
 * Binding builders. Each takes an accessor lambda
 * (Experiment&) -> Field& so one helper covers every integer width;
 * the getter reuses it through a const_cast (it never mutates).
 */
template <typename Acc>
Binding
uintKey(const char *key, const char *doc, Acc acc)
{
    using Field = std::remove_reference_t<decltype(acc(
        std::declval<Experiment &>()))>;
    Binding b;
    b.key = key;
    b.kind = ValueKind::Uint;
    b.doc = doc;
    b.get = [acc](const Experiment &e) {
        return std::to_string(static_cast<std::uint64_t>(
            acc(const_cast<Experiment &>(e))));
    };
    b.set = [acc, key = std::string(key)](Experiment &e,
                                          const std::string &v) {
        std::uint64_t u = 0;
        if (!sim::Config::tryParseUint(v, u))
            badKeyValue(key, v, "a nonnegative integer");
        const Field f = static_cast<Field>(u);
        if (static_cast<std::uint64_t>(f) != u)
            badKeyValue(key, v,
                        "a value representable by the field");
        acc(e) = f;
    };
    return b;
}

template <typename Acc>
Binding
doubleKey(const char *key, const char *doc, Acc acc)
{
    Binding b;
    b.key = key;
    b.kind = ValueKind::Double;
    b.doc = doc;
    b.get = [acc](const Experiment &e) {
        return formatDouble(acc(const_cast<Experiment &>(e)));
    };
    b.set = [acc, key = std::string(key)](Experiment &e,
                                          const std::string &v) {
        double d = 0.0;
        if (!sim::Config::tryParseDouble(v, d) || !std::isfinite(d))
            badKeyValue(key, v, "a finite number");
        acc(e) = d;
    };
    return b;
}

template <typename Acc>
Binding
boolKey(const char *key, const char *doc, Acc acc)
{
    Binding b;
    b.key = key;
    b.kind = ValueKind::Bool;
    b.doc = doc;
    b.get = [acc](const Experiment &e) {
        return acc(const_cast<Experiment &>(e)) ? std::string("true")
                                                : std::string("false");
    };
    b.set = [acc, key = std::string(key)](Experiment &e,
                                          const std::string &v) {
        bool f = false;
        if (!sim::Config::tryParseBool(v, f))
            badKeyValue(key, v, "true/false/1/0");
        acc(e) = f;
    };
    return b;
}

Binding
workloadKey()
{
    Binding b;
    b.key = "workload";
    b.kind = ValueKind::Workload;
    b.doc = "benchmark to run; full or short name (cholesky / cho)";
    b.get = [](const Experiment &e) {
        const wl::WorkloadInfo *w = lookupWorkload(e.workload);
        if (!w)
            throw SpecError("experiment names unknown workload '"
                            + e.workload + "'");
        return w->name;
    };
    b.set = [](Experiment &e, const std::string &v) {
        const wl::WorkloadInfo *w = lookupWorkload(v);
        if (!w) {
            std::vector<std::string> names;
            for (const wl::WorkloadInfo &info : wl::allWorkloads())
                names.push_back(info.name);
            throw SpecError("spec key 'workload': unknown workload '"
                            + v + "'" + suggestHint(v, names));
        }
        e.workload = w->name; // canonicalize short names immediately
    };
    return b;
}

Binding
runtimeKey()
{
    Binding b;
    b.key = "runtime";
    b.kind = ValueKind::Runtime;
    b.doc = "runtime system: sw, tdm, carbon, or tss";
    b.get = [](const Experiment &e) {
        return std::string(core::traitsOf(e.runtime).name);
    };
    b.set = [](Experiment &e, const std::string &v) {
        core::RuntimeType t;
        if (!lookupRuntime(v, t))
            badKeyValue("runtime", v, "one of sw/tdm/carbon/tss");
        e.runtime = t;
    };
    return b;
}

Binding
schedulerKey()
{
    Binding b;
    b.key = "scheduler";
    b.kind = ValueKind::Scheduler;
    b.doc = "software scheduling policy (fifo, lifo, locality, "
            "successor, age, or a registered custom policy)";
    b.get = [](const Experiment &e) { return e.config.scheduler; };
    b.set = [](Experiment &e, const std::string &v) {
        if (!rt::hasScheduler(v))
            throw SpecError("spec key 'scheduler': unknown policy '"
                            + v + "'"
                            + suggestHint(v, rt::allSchedulerNames()));
        e.config.scheduler = v;
    };
    return b;
}

Binding
traceCategoriesKey()
{
    Binding b;
    b.key = "trace.categories";
    b.kind = ValueKind::Categories;
    b.doc = "time-resolved trace categories: comma list of "
            "task,sched,dmu,noc,mem,core, or all, or none";
    b.get = [](const Experiment &e) {
        return sim::formatTraceCategories(e.config.trace.categories);
    };
    b.set = [](Experiment &e, const std::string &v) {
        try {
            e.config.trace.categories = sim::parseTraceCategories(v);
        } catch (const std::invalid_argument &err) {
            throw SpecError(std::string("spec key 'trace.categories': ")
                            + err.what());
        }
    };
    return b;
}

std::vector<Binding>
buildRegistry()
{
    std::vector<Binding> r;
    auto U = [&](const char *k, const char *d, auto acc) {
        r.push_back(uintKey(k, d, acc));
    };
    auto D = [&](const char *k, const char *d, auto acc) {
        r.push_back(doubleKey(k, d, acc));
    };
    auto B = [&](const char *k, const char *d, auto acc) {
        r.push_back(boolKey(k, d, acc));
    };
    using E = Experiment;

    // CONTRACT: every field driver::run() consumes must have a binding.
    // The canonical spec (and therefore the campaign cache key) is the
    // rendering of this registry — a field added to MachineConfig or
    // WorkloadParams but not bound here makes distinct experiments
    // share a cache key, and sweeps over the new field silently return
    // the first point's numbers (test_spec.cc's round-trip tests and
    // test_campaign.cc's Fingerprint tests are the tripwire).
    r.push_back(workloadKey());
    D("workload.granularity",
      "task granularity in the benchmark's own unit; 0 selects the "
      "per-benchmark optimal default",
      [](E &e) -> double & { return e.params.granularity; });
    B("workload.tdm_optimal",
      "use the TDM-optimal default granularity instead of the "
      "SW-optimal one",
      [](E &e) -> bool & { return e.params.tdmOptimal; });
    U("workload.seed", "seed of the deterministic task-duration noise",
      [](E &e) -> std::uint64_t & { return e.params.seed; });
    D("workload.noise", "relative sigma of task-duration noise",
      [](E &e) -> double & { return e.params.durationNoise; });

    r.push_back(runtimeKey());
    r.push_back(schedulerKey());
    U("scheduler.succ_threshold",
      "successor policy: high-priority successor-count threshold",
      [](E &e) -> std::uint32_t & { return e.config.succThreshold; });

    U("machine.cores", "number of OoO cores",
      [](E &e) -> unsigned & { return e.config.numCores; });
    B("machine.mem_model",
      "model the cache hierarchy's effect on task duration",
      [](E &e) -> bool & { return e.config.enableMemModel; });
    U("machine.throttle_tasks",
      "task-creation throttle: in-flight tasks before the master "
      "switches to executing",
      [](E &e) -> std::uint32_t & { return e.config.throttleTasks; });
    U("machine.max_ticks", "watchdog: abort runs exceeding this tick",
      [](E &e) -> sim::Tick & { return e.config.maxTicks; });
    U("machine.dmu_msg_bytes",
      "payload bytes of a DMU request/response message",
      [](E &e) -> unsigned & { return e.config.dmuMsgBytes; });

    U("mem.l1_bytes", "per-core data L1 size",
      [](E &e) -> std::uint64_t & { return e.config.mem.l1Bytes; });
    U("mem.l2_bytes", "shared L2 size",
      [](E &e) -> std::uint64_t & { return e.config.mem.l2Bytes; });
    U("mem.line_bytes", "cache line size",
      [](E &e) -> unsigned & { return e.config.mem.lineBytes; });
    U("mem.l1_hit_cycles", "L1 hit latency",
      [](E &e) -> unsigned & { return e.config.mem.l1HitCycles; });
    U("mem.l2_hit_cycles", "L2 hit latency",
      [](E &e) -> unsigned & { return e.config.mem.l2HitCycles; });
    U("mem.dram_cycles", "DRAM access latency",
      [](E &e) -> unsigned & { return e.config.mem.dramCycles; });
    D("mem.mlp",
      "effective memory-level parallelism of streaming footprints",
      [](E &e) -> double & { return e.config.mem.mlp; });

    U("mesh.width", "mesh columns (must fit cores + the DMU node)",
      [](E &e) -> unsigned & { return e.config.mesh.width; });
    U("mesh.height", "mesh rows",
      [](E &e) -> unsigned & { return e.config.mesh.height; });
    U("mesh.router_latency", "cycles per router traversal",
      [](E &e) -> unsigned & { return e.config.mesh.routerLatency; });
    U("mesh.link_latency", "cycles per link traversal",
      [](E &e) -> unsigned & { return e.config.mesh.linkLatency; });
    U("mesh.flit_bytes", "payload bytes per flit",
      [](E &e) -> unsigned & { return e.config.mesh.flitBytes; });
    D("mesh.congestion_weight",
      "weight of the congestion penalty term (0 disables)",
      [](E &e) -> double & {
          return e.config.mesh.congestionWeight;
      });

    U("dmu.tat_entries", "Task Alias Table entries",
      [](E &e) -> unsigned & { return e.config.dmu.tatEntries; });
    U("dmu.tat_assoc", "TAT associativity",
      [](E &e) -> unsigned & { return e.config.dmu.tatAssoc; });
    U("dmu.dat_entries", "Dependence Alias Table entries",
      [](E &e) -> unsigned & { return e.config.dmu.datEntries; });
    U("dmu.dat_assoc", "DAT associativity",
      [](E &e) -> unsigned & { return e.config.dmu.datAssoc; });
    U("dmu.sla_entries", "successor list array entries",
      [](E &e) -> unsigned & { return e.config.dmu.slaEntries; });
    U("dmu.dla_entries", "dependence list array entries",
      [](E &e) -> unsigned & { return e.config.dmu.dlaEntries; });
    U("dmu.rla_entries", "reader list array entries",
      [](E &e) -> unsigned & { return e.config.dmu.rlaEntries; });
    U("dmu.elems_per_entry", "ids per list-array entry",
      [](E &e) -> unsigned & { return e.config.dmu.elemsPerEntry; });
    U("dmu.ready_queue_entries", "Ready Queue entries",
      [](E &e) -> unsigned & {
          return e.config.dmu.readyQueueEntries;
      });
    U("dmu.access_cycles",
      "access latency of every DMU SRAM structure",
      [](E &e) -> unsigned & { return e.config.dmu.accessCycles; });
    B("dmu.dynamic_dat_index",
      "dynamic DAT set-index bit selection (Section III-B1)",
      [](E &e) -> bool & { return e.config.dmu.dynamicDatIndex; });
    U("dmu.static_dat_index_bit",
      "static DAT index start bit (when dynamic indexing is off)",
      [](E &e) -> unsigned & {
          return e.config.dmu.staticDatIndexBit;
      });

    U("sw.task_alloc", "SW runtime: task descriptor allocation cycles",
      [](E &e) -> sim::Tick & {
          return e.config.swCosts.taskAllocCycles;
      });
    U("sw.dep_lookup", "SW runtime: per-dependence region-map lookup",
      [](E &e) -> sim::Tick & {
          return e.config.swCosts.depLookupCycles;
      });
    U("sw.edge_insert", "SW runtime: TDG edge insertion",
      [](E &e) -> sim::Tick & {
          return e.config.swCosts.edgeInsertCycles;
      });
    U("sw.reader_scan", "SW runtime: per-reader WAR scan visit",
      [](E &e) -> sim::Tick & {
          return e.config.swCosts.readerScanCycles;
      });
    U("sw.fragment_split", "SW runtime: region-map split/merge",
      [](E &e) -> sim::Tick & {
          return e.config.swCosts.fragmentSplitCycles;
      });
    U("sw.finish_base", "SW runtime: fixed task finalization cost",
      [](E &e) -> sim::Tick & {
          return e.config.swCosts.finishBaseCycles;
      });
    U("sw.per_successor", "SW runtime: per-successor wake-up work",
      [](E &e) -> sim::Tick & {
          return e.config.swCosts.perSuccessorCycles;
      });
    U("sw.per_dep_cleanup", "SW runtime: per-dependence cleanup",
      [](E &e) -> sim::Tick & {
          return e.config.swCosts.perDepCleanupCycles;
      });
    U("sw.pool_push", "SW runtime: pool push lock hold time",
      [](E &e) -> sim::Tick & {
          return e.config.swCosts.poolPushCycles;
      });
    U("sw.pool_pop", "SW runtime: pool pop lock hold time",
      [](E &e) -> sim::Tick & {
          return e.config.swCosts.poolPopCycles;
      });
    U("sw.sched_poll", "SW runtime: empty-pool scheduling poll",
      [](E &e) -> sim::Tick & {
          return e.config.swCosts.schedPollCycles;
      });

    U("tdm.task_alloc", "TDM: software task descriptor allocation",
      [](E &e) -> sim::Tick & {
          return e.config.tdmCosts.taskAllocCycles;
      });
    U("tdm.issue", "TDM: issue/commit overhead of one TDM instruction",
      [](E &e) -> sim::Tick & {
          return e.config.tdmCosts.issueCycles;
      });
    U("tdm.pool_push", "TDM: pool push lock hold time",
      [](E &e) -> sim::Tick & {
          return e.config.tdmCosts.poolPushCycles;
      });
    U("tdm.pool_pop", "TDM: pool pop lock hold time",
      [](E &e) -> sim::Tick & {
          return e.config.tdmCosts.poolPopCycles;
      });
    U("tdm.sched_poll", "TDM: empty-pool scheduling poll",
      [](E &e) -> sim::Tick & {
          return e.config.tdmCosts.schedPollCycles;
      });

    U("carbon.queue_entries", "Carbon: HW queue entries per core",
      [](E &e) -> unsigned & {
          return e.config.carbon.queueEntriesPerCore;
      });
    U("carbon.local_op", "Carbon: local task-queue op latency",
      [](E &e) -> unsigned & {
          return e.config.carbon.localOpCycles;
      });
    U("carbon.steal", "Carbon: steal probe + transfer latency",
      [](E &e) -> unsigned & { return e.config.carbon.stealCycles; });

    U("tss.entries", "Task Superscalar: in-flight task/dep entries",
      [](E &e) -> unsigned & { return e.config.tss.entries; });
    U("tss.bytes_per_entry", "Task Superscalar: record size",
      [](E &e) -> unsigned & { return e.config.tss.bytesPerEntry; });
    U("tss.gateway_kb", "Task Superscalar: gateway storage KB",
      [](E &e) -> unsigned & { return e.config.tss.gatewayKB; });
    U("tss.sched_op", "Task Superscalar: HW scheduling op latency",
      [](E &e) -> unsigned & { return e.config.tss.schedOpCycles; });

    D("power.active_w", "active core watts",
      [](E &e) -> double & { return e.config.power.activeWatts; });
    D("power.idle_w", "idle (clock-gated) core watts",
      [](E &e) -> double & { return e.config.power.idleWatts; });
    D("power.uncore_w", "uncore static watts",
      [](E &e) -> double & { return e.config.power.uncoreWatts; });
    D("power.l1_line_nj", "nJ per 64B line from L1",
      [](E &e) -> double & { return e.config.power.l1LineNj; });
    D("power.l2_line_nj", "nJ per 64B line from L2",
      [](E &e) -> double & { return e.config.power.l2LineNj; });
    D("power.dram_line_nj", "nJ per 64B line from DRAM",
      [](E &e) -> double & { return e.config.power.dramLineNj; });

    // Trace keys ride in the canonical spec on purpose: a traced
    // re-run of a campaign point must miss the result cache (a cache
    // hit would skip the simulation and produce no trace).
    r.push_back(traceCategoriesKey());
    U("trace.buffer_events",
      "hard cap on buffered trace records; further records are "
      "counted as dropped",
      [](E &e) -> std::uint64_t & {
          return e.config.trace.bufferEvents;
      });

    // Phase classification (see KeyPhase in spec.hh). The registry
    // defaults every key to Warmup — the conservative choice — and
    // promotes exactly the two families whose consumers provably run
    // later: `mem.*` feeds mem::MemoryModel, which is only queried
    // when a task body executes (inside the ROI), and `power.*` feeds
    // pwr::EnergyAccountant, which is only consulted in
    // Machine::finalize() after the event loop drains.
    // `machine.mem_model` itself stays Warmup on purpose: toggling it
    // changes which metrics register, breaking the fork contract's
    // registry-shape invariance. test_spec.cc pins this table.
    for (Binding &b : r) {
        if (b.key.rfind("mem.", 0) == 0)
            b.phase = KeyPhase::Roi;
        else if (b.key.rfind("power.", 0) == 0)
            b.phase = KeyPhase::Final;
    }

    const Experiment defaults{};
    for (Binding &b : r)
        b.defaultValue = b.get(defaults);
    return r;
}

} // namespace

const char *
valueKindName(ValueKind kind)
{
    switch (kind) {
    case ValueKind::Uint: return "uint";
    case ValueKind::Double: return "double";
    case ValueKind::Bool: return "bool";
    case ValueKind::Workload: return "workload";
    case ValueKind::Runtime: return "runtime";
    case ValueKind::Scheduler: return "scheduler";
    case ValueKind::Categories: return "categories";
    }
    return "?";
}

const char *
keyPhaseName(KeyPhase phase)
{
    switch (phase) {
    case KeyPhase::Warmup: return "warmup";
    case KeyPhase::Roi: return "roi";
    case KeyPhase::Final: return "final";
    }
    return "?";
}

const std::vector<Binding> &
allBindings()
{
    static const std::vector<Binding> registry = buildRegistry();
    return registry;
}

const Binding *
findBinding(const std::string &key)
{
    for (const Binding &b : allBindings())
        if (b.key == key)
            return &b;
    return nullptr;
}

void
applyKey(Experiment &exp, const std::string &key,
         const std::string &value)
{
    const Binding *b = findBinding(key);
    if (!b) {
        std::vector<std::string> names;
        for (const Binding &bd : allBindings())
            names.push_back(bd.key);
        throw SpecError("unknown spec key '" + key + "'"
                        + suggestHint(key, names)
                        + " (campaign_run --keys lists every key)");
    }
    b->set(exp, value);
}

Experiment
apply(const sim::Config &spec)
{
    Experiment e;
    for (const auto &[key, value] : spec.entries())
        applyKey(e, key, value);
    return e;
}

sim::Config
describe(const Experiment &exp)
{
    sim::Config c;
    for (const Binding &b : allBindings())
        c.set(b.key, b.get(exp));
    return c;
}

Experiment
normalized(const Experiment &exp)
{
    Experiment n = exp;
    const wl::WorkloadInfo *w = lookupWorkload(n.workload);
    if (!w)
        throw SpecError("experiment names unknown workload '"
                        + n.workload + "'");
    n.workload = w->name;
    // Replicate driver::run()'s granularity normalization so an
    // experiment and its normalized twin share a canonical spec.
    if (n.params.granularity == 0.0
        && core::traitsOf(n.runtime).usesDmu())
        n.params.tdmOptimal = true;
    // An explicit granularity makes the optimal-granularity flag moot.
    if (n.params.granularity > 0.0)
        n.params.tdmOptimal = false;
    return n;
}

sim::Config
canonicalSpec(const Experiment &exp)
{
    return describe(normalized(exp));
}

sim::Config
phaseSpec(const sim::Config &canonical, KeyPhase phase)
{
    sim::Config out;
    for (const Binding &b : allBindings()) {
        if (b.phase != phase)
            continue;
        if (canonical.contains(b.key))
            out.set(b.key, canonical.getString(b.key));
    }
    return out;
}

std::string
warmFingerprint(const sim::Config &canonical)
{
    return phaseSpec(canonical, KeyPhase::Warmup).serialize();
}

std::string
roiFingerprint(const sim::Config &canonical)
{
    sim::Config warm = phaseSpec(canonical, KeyPhase::Warmup);
    const sim::Config roi = phaseSpec(canonical, KeyPhase::Roi);
    for (const auto &[k, v] : roi.entries())
        warm.set(k, v);
    return warm.serialize();
}

std::string
formatDouble(double v)
{
    std::string s;
    for (int prec = 1; prec <= 17; ++prec) {
        std::ostringstream oss;
        oss << std::setprecision(prec) << v;
        s = oss.str();
        double back = 0.0;
        if (sim::Config::tryParseDouble(s, back) && back == v)
            return s;
    }
    return s; // non-finite or pathological: last rendering
}

std::vector<std::string>
closestMatches(const std::string &name,
               const std::vector<std::string> &candidates,
               std::size_t limit)
{
    // The shared sim-level helper carries the policy; this wrapper
    // keeps the historical spec:: entry point for existing callers.
    return sim::closestMatches(name, candidates, limit);
}

std::string
suggestHint(const std::string &name,
            const std::vector<std::string> &candidates)
{
    return sim::suggestHint(name, candidates);
}

void
writeKeyReference(std::ostream &os)
{
    os << "| key | type | phase | default | description |\n";
    os << "|---|---|---|---|---|\n";
    for (const Binding &b : allBindings())
        os << "| `" << b.key << "` | " << valueKindName(b.kind)
           << " | " << keyPhaseName(b.phase) << " | `"
           << b.defaultValue << "` | " << b.doc << " |\n";
}

} // namespace tdm::driver::spec
