#include "driver/campaign/campaign.hh"

#include <algorithm>
#include <map>

#include "driver/spec/spec.hh"
#include "sim/logging.hh"

namespace tdm::driver::campaign {

namespace {

struct RegistryEntry
{
    std::string description;
    CampaignFactory factory;
    CampaignCounter counter;
};

std::map<std::string, RegistryEntry> &
registry()
{
    static std::map<std::string, RegistryEntry> reg;
    return reg;
}

} // namespace

namespace detail {
// Defined in builtin.cc; idempotent.
void registerBuiltinCampaigns();
} // namespace detail

void
registerCampaign(const std::string &name, const std::string &description,
                 CampaignFactory factory, CampaignCounter counter)
{
    registry()[name] = RegistryEntry{description, std::move(factory),
                                     std::move(counter)};
}

std::vector<std::pair<std::string, std::string>>
campaignList()
{
    detail::registerBuiltinCampaigns();
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto &[name, entry] : registry())
        out.emplace_back(name, entry.description);
    return out;
}

bool
hasCampaign(const std::string &name)
{
    detail::registerBuiltinCampaigns();
    return registry().count(name) != 0;
}

std::size_t
campaignPointCount(const std::string &name)
{
    detail::registerBuiltinCampaigns();
    auto it = registry().find(name);
    if (it == registry().end())
        sim::fatal("unknown campaign: ", name);
    if (it->second.counter)
        return it->second.counter();
    return it->second.factory().points.size();
}

Campaign
makeCampaign(const std::string &name)
{
    detail::registerBuiltinCampaigns();
    auto it = registry().find(name);
    if (it == registry().end()) {
        std::vector<std::string> names;
        for (const auto &[n, entry] : registry())
            names.push_back(n);
        sim::fatal("unknown campaign: ", name,
                   spec::suggestHint(name, names),
                   " (campaign_run --list shows the registered ones)");
    }
    Campaign c = it->second.factory();
    c.name = name;
    if (c.description.empty())
        c.description = it->second.description;
    return c;
}

std::string
pointLabel(const std::string &workload, const std::string &runtime,
           const std::string &scheduler)
{
    return workload + "/" + runtime + "/" + scheduler;
}

} // namespace tdm::driver::campaign
