#include "driver/campaign/engine.hh"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "driver/campaign/fingerprint.hh"
#include "driver/report/trace_writer.hh"
#include "sim/logging.hh"

namespace tdm::driver::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Attach the standard incompletion error to a filled-in job. */
void
markIncomplete(JobResult &job)
{
    if (job.error.empty() && !job.summary.completed)
        job.error = "experiment did not complete (deadlock or watchdog)";
}

} // namespace

std::size_t
CampaignResult::failures() const
{
    std::size_t n = 0;
    for (const JobResult &j : jobs)
        if (!j.ok())
            ++n;
    return n;
}

const JobResult *
CampaignResult::find(const std::string &label) const
{
    for (const JobResult &j : jobs)
        if (j.label == label)
            return &j;
    return nullptr;
}

const JobResult &
CampaignResult::at(const std::string &label) const
{
    const JobResult *j = find(label);
    if (!j)
        sim::fatal("campaign ", name, ": no point labeled ", label);
    return *j;
}

std::uint64_t
parseUintArg(const char *value, const char *flag, std::uint64_t max)
{
    // strtoull wraps negatives and overflow; reject both explicitly.
    if (!std::isdigit(static_cast<unsigned char>(value[0])))
        sim::fatal(flag, " expects a nonnegative integer, got '", value,
                   "'");
    errno = 0;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(value, &end, 10);
    if (*end != '\0' || errno == ERANGE || v > max)
        sim::fatal(flag, " expects a nonnegative integer <= ", max,
                   ", got '", value, "'");
    return v;
}

EngineOptions
benchEngineOptions(int argc, char **argv)
{
    EngineOptions opts;
    opts.threads = 0; // hardware concurrency
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            opts.threads = static_cast<unsigned>(parseUintArg(
                argv[++i], "--threads", UINT32_MAX));
        else
            sim::fatal("unknown argument: ", argv[i],
                       " (benches accept --threads N)");
    }
    return opts;
}

CampaignEngine::CampaignEngine(EngineOptions opts) : opts_(opts) {}

CampaignResult
CampaignEngine::run(const Campaign &c)
{
    CampaignResult rep = run(c.name, c.points);
    rep.metricsPattern = c.metrics;
    return rep;
}

CampaignResult
CampaignEngine::run(const std::string &name,
                    const std::vector<SweepPoint> &points)
{
    const Clock::time_point t0 = Clock::now();
    const std::size_t n = points.size();

    CampaignResult report;
    report.name = name;
    report.jobs.resize(n);

    unsigned threads = opts_.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());

    // Phase 1 (serial): canonicalize, consult the cache, and claim one
    // owner per distinct fingerprint so duplicates simulate once.
    std::vector<Experiment> exps;
    exps.reserve(n);
    std::vector<std::string> keys(n);
    std::vector<std::size_t> work;          // indices to simulate
    std::vector<std::size_t> dupOf(n, n);   // duplicate -> owner index
    std::unordered_map<std::string, std::size_t> owner;
    for (std::size_t i = 0; i < n; ++i) {
        exps.push_back(points[i].exp);
        if (opts_.seedBase != 0)
            exps.back().params.seed =
                opts_.seedBase + static_cast<std::uint64_t>(i);

        JobResult &job = report.jobs[i];
        job.label = points[i].label;
        job.spec = canonicalConfig(exps.back());
        const std::string &key = keys[i] = job.spec.serialize();
        job.digest = digestOfKey(key);

        if (!opts_.useCache) {
            work.push_back(i);
            continue;
        }
        if (auto hit = cache_.lookup(key)) {
            job.summary = *hit;
            job.cacheHit = true;
            markIncomplete(job);
            continue;
        }
        auto [it, fresh] = owner.emplace(key, i);
        if (fresh)
            work.push_back(i);
        else
            dupOf[i] = it->second;
    }

    // Simulated points resolve their task graph through the engine's
    // build-once graph store from inside the worker loop, so workers
    // share one immutable graph per distinct (workload, effective
    // params) instead of each rebuilding it — and the builds
    // themselves still run with full pool parallelism. A rare
    // concurrent duplicate build is wasted work, never wrong (first
    // publisher wins inside the cache).
    const std::uint64_t graphBuilds0 = graphs_.builds();

    // Phase 2: simulate the unique misses on the worker pool. Results
    // land at their input index, so output order never depends on the
    // execution schedule.
    std::atomic<std::size_t> nextJob{0};
    std::atomic<std::size_t> doneJobs{0};
    std::mutex progressMutex;
    auto workerLoop = [&] {
        for (;;) {
            const std::size_t w = nextJob.fetch_add(1);
            if (w >= work.size())
                return;
            const std::size_t i = work[w];
            JobResult &job = report.jobs[i];
            const bool wantTrace =
                !opts_.traceDir.empty()
                && exps[i].config.trace.categories != 0;
            sim::TraceBuffer tb;
            const Clock::time_point j0 = Clock::now();
            try {
                // A graph-build failure lands in this job's error,
                // exactly as it did when every point built its own.
                std::shared_ptr<const rt::TaskGraph> graph =
                    opts_.shareGraphs ? graphs_.obtain(exps[i])
                                      : nullptr;
                job.summary = driver::run(exps[i], graph,
                                          wantTrace ? &tb : nullptr);
                if (wantTrace) {
                    const std::string path =
                        opts_.traceDir + "/" + job.digest + ".json";
                    std::ofstream f(path);
                    if (!f) {
                        sim::warn("cannot write trace file ", path);
                    } else {
                        report::TraceMeta meta;
                        meta.processName = job.label;
                        meta.numCores = exps[i].config.numCores;
                        meta.graph = graph.get();
                        report::writeChromeTrace(f, tb, meta);
                        job.tracePath = path;
                    }
                }
            } catch (const std::exception &e) {
                job.error = e.what();
                job.threw = true;
            } catch (...) {
                job.error = "unknown error";
                job.threw = true;
            }
            job.wallMs = msSince(j0);
            // Cache any summary the simulator produced — incomplete
            // runs are as deterministic as complete ones. Exceptions
            // left no summary, so those are not cached.
            if (opts_.useCache && job.error.empty())
                cache_.store(keys[i], job.summary);
            markIncomplete(job);
            const std::size_t k = doneJobs.fetch_add(1) + 1;
            if (opts_.progress) {
                std::lock_guard<std::mutex> lock(progressMutex);
                sim::inform("  [", k, "/", work.size(), "] ",
                            job.label, job.ok() ? "" : " FAILED",
                            " (", job.wallMs, " ms)");
            }
        }
    };

    const unsigned poolSize = static_cast<unsigned>(
        std::min<std::size_t>(threads, work.size()));
    if (poolSize <= 1) {
        workerLoop();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(poolSize);
        for (unsigned t = 0; t < poolSize; ++t)
            pool.emplace_back(workerLoop);
        for (std::thread &t : pool)
            t.join();
    }

    // Phase 3: fill within-run duplicates from their owners.
    for (std::size_t i = 0; i < n; ++i) {
        if (dupOf[i] == n)
            continue;
        const JobResult &src = report.jobs[dupOf[i]];
        JobResult &job = report.jobs[i];
        job.summary = src.summary;
        job.error = src.error;
        job.threw = src.threw;
        job.tracePath = src.tracePath;
        job.cacheHit = true;
    }

    report.threads = threads;
    if (opts_.shareGraphs) {
        report.graphBuilds = graphs_.builds() - graphBuilds0;
        const std::uint64_t obtained = work.size();
        report.graphShares = obtained > report.graphBuilds
                                 ? obtained - report.graphBuilds
                                 : 0;
    }
    report.wallMs = msSince(t0);
    for (const JobResult &j : report.jobs) {
        if (j.cacheHit)
            ++report.cacheHits;
        report.simMsTotal += j.wallMs;
    }
    report.simulated = work.size();
    return report;
}

} // namespace tdm::driver::campaign
