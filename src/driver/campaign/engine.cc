#include "driver/campaign/engine.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "driver/campaign/fingerprint.hh"
#include "driver/fork_runner.hh"
#include "driver/report/trace_writer.hh"
#include "driver/spec/spec.hh"
#include "sim/logging.hh"

namespace tdm::driver::campaign {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Attach the standard incompletion error to a filled-in job. */
void
markIncomplete(JobResult &job)
{
    if (job.error.empty() && !job.summary.completed)
        job.error = "experiment did not complete (deadlock or watchdog)";
}

} // namespace

const char *
jobSourceName(JobSource source)
{
    switch (source) {
    case JobSource::Simulated: return "simulated";
    case JobSource::Memory: return "memory";
    case JobSource::Disk: return "disk";
    case JobSource::Inflight: return "inflight";
    case JobSource::Forked: return "forked";
    }
    return "unknown";
}

std::size_t
CampaignResult::failures() const
{
    std::size_t n = 0;
    for (const JobResult &j : jobs)
        if (!j.ok())
            ++n;
    return n;
}

const JobResult *
CampaignResult::find(const std::string &label) const
{
    for (const JobResult &j : jobs)
        if (j.label == label)
            return &j;
    return nullptr;
}

const JobResult &
CampaignResult::at(const std::string &label) const
{
    const JobResult *j = find(label);
    if (!j)
        sim::fatal("campaign ", name, ": no point labeled ", label);
    return *j;
}

std::uint64_t
parseUintArg(const char *value, const char *flag, std::uint64_t max)
{
    // strtoull wraps negatives and overflow; reject both explicitly.
    if (!std::isdigit(static_cast<unsigned char>(value[0])))
        sim::fatal(flag, " expects a nonnegative integer, got '", value,
                   "'");
    errno = 0;
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(value, &end, 10);
    if (*end != '\0' || errno == ERANGE || v > max)
        sim::fatal(flag, " expects a nonnegative integer <= ", max,
                   ", got '", value, "'");
    return v;
}

EngineOptions
benchEngineOptions(int argc, char **argv)
{
    EngineOptions opts;
    opts.threads = 0; // hardware concurrency
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
            opts.threads = static_cast<unsigned>(parseUintArg(
                argv[++i], "--threads", UINT32_MAX));
        else
            sim::fatal("unknown argument: ", argv[i],
                       " (benches accept --threads N)");
    }
    return opts;
}

CampaignEngine::CampaignEngine(EngineOptions opts) : opts_(opts) {}

std::size_t
CampaignEngine::inflightCount() const
{
    std::lock_guard<std::mutex> lock(inflightMutex_);
    return inflight_.size();
}

std::pair<std::shared_ptr<CampaignEngine::Inflight>, bool>
CampaignEngine::claimInflight(const std::string &key)
{
    std::lock_guard<std::mutex> lock(inflightMutex_);
    auto [it, fresh] = inflight_.emplace(key, nullptr);
    if (fresh)
        it->second = std::make_shared<Inflight>();
    return {it->second, fresh};
}

void
CampaignEngine::resolveInflight(const std::string &key,
                                const JobResult &job)
{
    std::shared_ptr<Inflight> inf;
    {
        std::lock_guard<std::mutex> lock(inflightMutex_);
        auto it = inflight_.find(key);
        if (it == inflight_.end())
            return; // claim was never taken (useCache off)
        inf = it->second;
        inflight_.erase(it);
    }
    {
        std::lock_guard<std::mutex> lock(inf->m);
        inf->summary = job.summary;
        inf->error = job.error;
        inf->threw = job.threw;
        inf->tracePath = job.tracePath;
        inf->done = true;
    }
    inf->cv.notify_all();
}

CampaignResult
CampaignEngine::run(const Campaign &c, const JobCallback &onJob)
{
    CampaignResult rep = run(c.name, c.points, onJob);
    rep.metricsPattern = c.metrics;
    return rep;
}

CampaignResult
CampaignEngine::run(const std::string &name,
                    const std::vector<SweepPoint> &points,
                    const JobCallback &onJob)
{
    const Clock::time_point t0 = Clock::now();
    const std::size_t n = points.size();

    CampaignResult report;
    report.name = name;
    report.jobs.resize(n);

    unsigned threads = opts_.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());

    // Serialized per-point completion hook (per-run mutex, so
    // concurrent run() calls on one engine never serialize each
    // other's streams). Stamps the point's position on this run's
    // timeline on the way out — the live-progress feed's x-axis.
    std::mutex emitMutex;
    auto emit = [&](JobResult &job, std::size_t index) {
        job.doneAtMs = msSince(t0);
        if (!onJob)
            return;
        std::lock_guard<std::mutex> lock(emitMutex);
        onJob(job, index, n);
    };

    // Phase 1 (serial intake): canonicalize, consult the in-memory
    // cache then the external backend, and claim one in-flight owner
    // per distinct fingerprint — duplicates within this run AND
    // identical points already simulating in concurrent run() calls
    // attach to the one running job instead of re-simulating.
    std::vector<Experiment> exps;
    exps.reserve(n);
    std::vector<std::string> keys(n);
    std::vector<std::size_t> work; // indices this run simulates
    std::vector<std::pair<std::size_t, std::shared_ptr<Inflight>>>
        attached; // indices waiting on another claimant's simulation
    for (std::size_t i = 0; i < n; ++i) {
        exps.push_back(points[i].exp);
        if (opts_.seedBase != 0)
            exps.back().params.seed =
                opts_.seedBase + static_cast<std::uint64_t>(i);

        JobResult &job = report.jobs[i];
        job.label = points[i].label;
        job.spec = canonicalConfig(exps.back());
        const std::string &key = keys[i] = job.spec.serialize();
        job.digest = digestOfKey(key);

        if (!opts_.useCache) {
            work.push_back(i);
            continue;
        }
        if (auto hit = cache_.lookup(key)) {
            job.summary = *hit;
            job.cacheHit = true;
            job.source = JobSource::Memory;
            markIncomplete(job);
            emit(job, i);
            continue;
        }
        if (opts_.backend) {
            if (auto hit = opts_.backend->fetch(key)) {
                cache_.store(key, *hit); // promote for the next lookup
                job.summary = *hit;
                job.cacheHit = true;
                job.source = JobSource::Disk;
                markIncomplete(job);
                emit(job, i);
                continue;
            }
        }
        auto [claim, owner] = claimInflight(key);
        if (owner) {
            // Close the miss-then-claim window: a concurrent owner may
            // have published to the cache and released the key between
            // our lookup and our claim. Owners always store before
            // releasing, so a second lookup settles it.
            if (auto hit = cache_.lookup(key)) {
                job.summary = *hit;
                job.cacheHit = true;
                job.source = JobSource::Memory;
                markIncomplete(job);
                resolveInflight(key, job); // hand to any attachers
                emit(job, i);
                continue;
            }
            work.push_back(i);
        } else {
            attached.emplace_back(i, std::move(claim));
        }
    }

    // Phase 1.5: warm-start fork grouping. Points this run simulates
    // are bucketed by warm-prefix fingerprint (the Warmup-phase
    // projection of their canonical spec, first-seen order); each
    // bucket is one work unit simulating a single cold warmup leg and
    // forking the rest. Members sort by ROI fingerprint (stably, so
    // ties keep input order) to chain finalize-level forks: points
    // differing only in `power.*` keys sit adjacent and share the
    // whole trajectory. Grouping never changes any result — forked
    // summaries are bit-identical to cold ones — so output order and
    // content stay schedule-independent exactly as before.
    std::vector<std::string> roiKeys(n);
    std::vector<std::vector<std::size_t>> groups;
    if (opts_.warmFork) {
        std::unordered_map<std::string, std::size_t> groupOf;
        for (const std::size_t i : work) {
            const std::string warmKey =
                spec::warmFingerprint(report.jobs[i].spec);
            roiKeys[i] = spec::roiFingerprint(report.jobs[i].spec);
            auto [it, fresh] =
                groupOf.emplace(warmKey, groups.size());
            if (fresh)
                groups.emplace_back();
            groups[it->second].push_back(i);
        }
        for (std::vector<std::size_t> &g : groups)
            std::stable_sort(g.begin(), g.end(),
                             [&](std::size_t a, std::size_t b) {
                                 return roiKeys[a] < roiKeys[b];
                             });
    } else {
        groups.reserve(work.size());
        for (const std::size_t i : work)
            groups.push_back({i});
    }

    // Simulated points resolve their task graph through the engine's
    // build-once graph store from inside the worker loop, so workers
    // share one immutable graph per distinct (workload, effective
    // params) instead of each rebuilding it — and the builds
    // themselves still run with full pool parallelism. A rare
    // concurrent duplicate build is wasted work, never wrong (first
    // publisher wins inside the cache).
    const std::uint64_t graphBuilds0 = graphs_.builds();

    // Phase 2: simulate the unique misses on the worker pool, one
    // fork group per dispatch. Results land at their input index, so
    // output order never depends on the execution schedule.
    std::atomic<std::size_t> nextJob{0};
    std::atomic<std::size_t> doneJobs{0};
    std::mutex progressMutex;
    auto workerLoop = [&] {
        for (;;) {
            const std::size_t g = nextJob.fetch_add(1);
            if (g >= groups.size())
                return;
            const std::vector<std::size_t> &group = groups[g];
            // Created on the group's first member so a graph-build
            // failure leaves it untouched; singleton groups skip the
            // fork machinery (and its capture overhead) entirely.
            std::optional<ForkGroupRunner> runner;
            for (const std::size_t i : group) {
                JobResult &job = report.jobs[i];
                const bool wantTrace =
                    !opts_.traceDir.empty()
                    && exps[i].config.trace.categories != 0;
                sim::TraceBuffer tb;
                const Clock::time_point j0 = Clock::now();
                try {
                    // A graph-build failure lands in this job's
                    // error, exactly as it did when every point built
                    // its own. Members of one group share a graph by
                    // construction (workload keys are Warmup-phase).
                    std::shared_ptr<const rt::TaskGraph> graph =
                        opts_.shareGraphs ? graphs_.obtain(exps[i])
                                          : nullptr;
                    if (!runner)
                        runner.emplace(graph, group.size() > 1);
                    bool forked = false;
                    job.summary =
                        runner->run(exps[i], roiKeys[i],
                                    wantTrace ? &tb : nullptr,
                                    &forked);
                    if (forked)
                        job.source = JobSource::Forked;
                    if (wantTrace) {
                        const std::string path =
                            opts_.traceDir + "/" + job.digest
                            + ".json";
                        std::ofstream f(path);
                        if (!f) {
                            sim::warn("cannot write trace file ",
                                      path);
                        } else {
                            report::TraceMeta meta;
                            meta.processName = job.label;
                            meta.numCores = exps[i].config.numCores;
                            meta.graph = graph.get();
                            report::writeChromeTrace(f, tb, meta);
                            job.tracePath = path;
                        }
                    }
                } catch (const std::exception &e) {
                    job.error = e.what();
                    job.threw = true;
                    if (runner)
                        runner->reset(); // machine may be mid-restore
                } catch (...) {
                    job.error = "unknown error";
                    job.threw = true;
                    if (runner)
                        runner->reset();
                }
                job.wallMs = msSince(j0);
                // Cache any summary the simulator produced —
                // incomplete runs are as deterministic as complete
                // ones. Exceptions left no summary, so those are not
                // cached.
                if (opts_.useCache && job.error.empty()) {
                    cache_.store(keys[i], job.summary);
                    if (opts_.backend)
                        opts_.backend->publish(keys[i], job.summary);
                }
                markIncomplete(job);
                // Hand the outcome to every attached claimant (this
                // run's in-list duplicates and concurrent runs of the
                // same fingerprint) and release the claim. Runs even
                // after an exception so claimants never wait forever.
                if (opts_.useCache)
                    resolveInflight(keys[i], job);
                emit(job, i);
                const std::size_t k = doneJobs.fetch_add(1) + 1;
                if (opts_.progress) {
                    std::lock_guard<std::mutex> lock(progressMutex);
                    sim::inform("  [", k, "/", work.size(), "] ",
                                job.label,
                                job.source == JobSource::Forked
                                    ? " (forked)"
                                    : "",
                                job.ok() ? "" : " FAILED", " (",
                                job.wallMs, " ms)");
                }
            }
        }
    };

    const unsigned poolSize = static_cast<unsigned>(
        std::min<std::size_t>(threads, groups.size()));
    if (poolSize <= 1) {
        workerLoop();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(poolSize);
        for (unsigned t = 0; t < poolSize; ++t)
            pool.emplace_back(workerLoop);
        for (std::thread &t : pool)
            t.join();
    }

    // Phase 3: collect the attached points. Their owners are this
    // run's own workers (in-list duplicates, already joined above) or
    // a concurrent run() on the same engine; owners always resolve
    // their claim — even on exception — so these waits terminate.
    for (auto &[i, inf] : attached) {
        JobResult &job = report.jobs[i];
        {
            std::unique_lock<std::mutex> lock(inf->m);
            inf->cv.wait(lock, [&] { return inf->done; });
            job.summary = inf->summary;
            job.error = inf->error;
            job.threw = inf->threw;
            job.tracePath = inf->tracePath;
        }
        job.cacheHit = true;
        job.source = JobSource::Inflight;
        markIncomplete(job);
        emit(job, i);
    }

    report.threads = threads;
    if (opts_.shareGraphs) {
        report.graphBuilds = graphs_.builds() - graphBuilds0;
        const std::uint64_t obtained = work.size();
        report.graphShares = obtained > report.graphBuilds
                                 ? obtained - report.graphBuilds
                                 : 0;
    }
    report.wallMs = msSince(t0);
    for (const JobResult &j : report.jobs) {
        if (j.cacheHit)
            ++report.cacheHits;
        switch (j.source) {
        case JobSource::Memory: ++report.fromMemory; break;
        case JobSource::Disk: ++report.fromDisk; break;
        case JobSource::Inflight: ++report.fromInflight; break;
        case JobSource::Forked: ++report.fromForked; break;
        case JobSource::Simulated: break;
        }
        report.simMsTotal += j.wallMs;
    }
    // Cold legs = the simulated points minus the ones forking another
    // point's snapshot; a warmup is "shared" when at least one group
    // member actually resumed from it.
    report.simulated = work.size() - report.fromForked;
    for (const std::vector<std::size_t> &g : groups) {
        const bool shared = std::any_of(
            g.begin(), g.end(), [&](std::size_t i) {
                return report.jobs[i].source == JobSource::Forked;
            });
        if (shared)
            ++report.warmupsShared;
    }
    return report;
}

} // namespace tdm::driver::campaign
