#include "driver/campaign/fingerprint.hh"

#include <iomanip>
#include <sstream>

#include "driver/spec/spec.hh"

namespace tdm::driver::campaign {

sim::Config
canonicalConfig(const Experiment &exp)
{
    // The fingerprint IS the canonical spec: the binding registry in
    // driver/spec is the single source of truth for every field the
    // simulation consumes, and its rendering doubles as the
    // human-readable cache key. See the CONTRACT note in spec.cc.
    return spec::canonicalSpec(exp);
}

std::string
fingerprint(const Experiment &exp)
{
    return canonicalConfig(exp).serialize();
}

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char ch : s) {
        h ^= ch;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
digestOfKey(const std::string &key)
{
    std::ostringstream oss;
    oss << std::hex << std::setw(16) << std::setfill('0')
        << fnv1a64(key);
    return oss.str();
}

std::string
fingerprintDigest(const Experiment &exp)
{
    return digestOfKey(fingerprint(exp));
}

} // namespace tdm::driver::campaign
