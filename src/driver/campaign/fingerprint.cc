#include "driver/campaign/fingerprint.hh"

#include <iomanip>
#include <sstream>

#include "core/runtime_model.hh"
#include "workloads/registry.hh"

namespace tdm::driver::campaign {

namespace {

/** Exact, locale-independent rendering of a double. */
std::string
hexDouble(double v)
{
    std::ostringstream oss;
    oss << std::hexfloat << v;
    return oss.str();
}

void
setD(sim::Config &c, const std::string &key, double v)
{
    c.set(key, hexDouble(v));
}

void
setU(sim::Config &c, const std::string &key, std::uint64_t v)
{
    c.set(key, v);
}

} // namespace

sim::Config
canonicalConfig(const Experiment &exp)
{
    // CONTRACT: every field driver::run() consumes must appear below.
    // A field added to MachineConfig or WorkloadParams but not here
    // makes distinct experiments share a cache key, and sweeps over
    // the new field silently return the first point's numbers
    // (test_campaign.cc's Fingerprint tests are the tripwire — extend
    // them together with this function).
    // Replicate driver::run()'s normalization so an experiment and its
    // normalized twin share a fingerprint.
    wl::WorkloadParams params = exp.params;
    const core::RuntimeTraits &traits = core::traitsOf(exp.runtime);
    if (params.granularity == 0.0 && traits.usesDmu())
        params.tdmOptimal = true;
    // An explicit granularity makes the optimal-granularity flag moot.
    if (params.granularity > 0.0)
        params.tdmOptimal = false;

    const cpu::MachineConfig &m = exp.config;

    sim::Config c;
    c.set("wl.name", wl::findWorkload(exp.workload).name);
    setD(c, "wl.granularity", params.granularity);
    c.set("wl.tdm_optimal", params.tdmOptimal);
    setU(c, "wl.seed", params.seed);
    setD(c, "wl.noise", params.durationNoise);

    c.set("rt.type", std::string(traits.name));
    // exp.scheduler overrides config.scheduler in run(); fingerprint the
    // effective one only.
    c.set("sched.policy", exp.scheduler);
    setU(c, "sched.succ_threshold", m.succThreshold);

    setU(c, "chip.cores", m.numCores);
    c.set("chip.mem_model", m.enableMemModel);
    setU(c, "chip.throttle_tasks", m.throttleTasks);
    setU(c, "chip.max_ticks", m.maxTicks);
    setU(c, "chip.dmu_msg_bytes", m.dmuMsgBytes);

    setU(c, "mem.l1_bytes", m.mem.l1Bytes);
    setU(c, "mem.l2_bytes", m.mem.l2Bytes);
    setU(c, "mem.line_bytes", m.mem.lineBytes);
    setU(c, "mem.l1_hit_cycles", m.mem.l1HitCycles);
    setU(c, "mem.l2_hit_cycles", m.mem.l2HitCycles);
    setU(c, "mem.dram_cycles", m.mem.dramCycles);
    setD(c, "mem.mlp", m.mem.mlp);

    setU(c, "mesh.width", m.mesh.width);
    setU(c, "mesh.height", m.mesh.height);
    setU(c, "mesh.router_latency", m.mesh.routerLatency);
    setU(c, "mesh.link_latency", m.mesh.linkLatency);
    setU(c, "mesh.flit_bytes", m.mesh.flitBytes);
    setD(c, "mesh.congestion_weight", m.mesh.congestionWeight);

    setU(c, "dmu.tat_entries", m.dmu.tatEntries);
    setU(c, "dmu.tat_assoc", m.dmu.tatAssoc);
    setU(c, "dmu.dat_entries", m.dmu.datEntries);
    setU(c, "dmu.dat_assoc", m.dmu.datAssoc);
    setU(c, "dmu.sla_entries", m.dmu.slaEntries);
    setU(c, "dmu.dla_entries", m.dmu.dlaEntries);
    setU(c, "dmu.rla_entries", m.dmu.rlaEntries);
    setU(c, "dmu.elems_per_entry", m.dmu.elemsPerEntry);
    setU(c, "dmu.ready_queue_entries", m.dmu.readyQueueEntries);
    setU(c, "dmu.access_cycles", m.dmu.accessCycles);
    c.set("dmu.dynamic_dat_index", m.dmu.dynamicDatIndex);
    setU(c, "dmu.static_dat_index_bit", m.dmu.staticDatIndexBit);

    setU(c, "sw.task_alloc", m.swCosts.taskAllocCycles);
    setU(c, "sw.dep_lookup", m.swCosts.depLookupCycles);
    setU(c, "sw.edge_insert", m.swCosts.edgeInsertCycles);
    setU(c, "sw.reader_scan", m.swCosts.readerScanCycles);
    setU(c, "sw.fragment_split", m.swCosts.fragmentSplitCycles);
    setU(c, "sw.finish_base", m.swCosts.finishBaseCycles);
    setU(c, "sw.per_successor", m.swCosts.perSuccessorCycles);
    setU(c, "sw.per_dep_cleanup", m.swCosts.perDepCleanupCycles);
    setU(c, "sw.pool_push", m.swCosts.poolPushCycles);
    setU(c, "sw.pool_pop", m.swCosts.poolPopCycles);
    setU(c, "sw.sched_poll", m.swCosts.schedPollCycles);

    setU(c, "tdm.task_alloc", m.tdmCosts.taskAllocCycles);
    setU(c, "tdm.issue", m.tdmCosts.issueCycles);
    setU(c, "tdm.pool_push", m.tdmCosts.poolPushCycles);
    setU(c, "tdm.pool_pop", m.tdmCosts.poolPopCycles);
    setU(c, "tdm.sched_poll", m.tdmCosts.schedPollCycles);

    setU(c, "carbon.queue_entries", m.carbon.queueEntriesPerCore);
    setU(c, "carbon.local_op", m.carbon.localOpCycles);
    setU(c, "carbon.steal", m.carbon.stealCycles);

    setU(c, "tss.entries", m.tss.entries);
    setU(c, "tss.bytes_per_entry", m.tss.bytesPerEntry);
    setU(c, "tss.gateway_kb", m.tss.gatewayKB);
    setU(c, "tss.sched_op", m.tss.schedOpCycles);

    setD(c, "power.active_w", m.power.activeWatts);
    setD(c, "power.idle_w", m.power.idleWatts);
    setD(c, "power.uncore_w", m.power.uncoreWatts);
    setD(c, "power.l1_line_nj", m.power.l1LineNj);
    setD(c, "power.l2_line_nj", m.power.l2LineNj);
    setD(c, "power.dram_line_nj", m.power.dramLineNj);

    return c;
}

std::string
fingerprint(const Experiment &exp)
{
    return canonicalConfig(exp).serialize();
}

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char ch : s) {
        h ^= ch;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
digestOfKey(const std::string &key)
{
    std::ostringstream oss;
    oss << std::hex << std::setw(16) << std::setfill('0')
        << fnv1a64(key);
    return oss.str();
}

std::string
fingerprintDigest(const Experiment &exp)
{
    return digestOfKey(fingerprint(exp));
}

} // namespace tdm::driver::campaign
